package erms_test

import (
	"fmt"

	"erms"
)

// ExampleNewSystem shows the minimal plan-and-inspect flow: the Hotel
// Reservation application planned for a uniform 10k req/min per service.
func ExampleNewSystem() {
	sys, err := erms.NewSystem(erms.HotelReservation())
	if err != nil {
		panic(err)
	}
	sys.UseAnalyticModels()
	plan, err := sys.Plan(map[string]float64{
		"search": 10_000, "recommend": 10_000, "reserve": 10_000, "login": 10_000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("scheme:", plan.Scheme)
	fmt.Println("search ranked first at frontend:", plan.Ranks["frontend"]["search"] == 0)
	fmt.Println("every microservice planned:", len(plan.Containers) == 15)
	// Output:
	// scheme: priority
	// search ranked first at frontend: true
	// every microservice planned: true
}

// ExampleApp_Shared lists the multiplexed microservices of an application
// (§2.3): the ones whose scheduling Erms coordinates globally.
func ExampleApp_Shared() {
	fmt.Println(erms.SocialNetwork().Shared())
	fmt.Println(erms.HotelReservation().Shared())
	// Output:
	// [post-storage post-storage-memcached post-storage-mongo]
	// [frontend profile user]
}

// ExampleSystem_Plan compares the shared-microservice schemes on the same
// workload: priority scheduling never needs more containers than FCFS.
func ExampleSystem_Plan() {
	rates := map[string]float64{
		"compose-post": 20_000, "home-timeline": 60_000, "user-timeline": 40_000,
	}
	totals := map[erms.Scheme]int{}
	for _, scheme := range []erms.Scheme{erms.SchemeFCFS, erms.SchemePriority} {
		sys, err := erms.NewSystem(erms.SocialNetwork(), erms.WithScheme(scheme))
		if err != nil {
			panic(err)
		}
		sys.UseAnalyticModels()
		plan, err := sys.Plan(rates)
		if err != nil {
			panic(err)
		}
		totals[scheme] = plan.TotalContainers()
	}
	fmt.Println("priority <= fcfs:", totals[erms.SchemePriority] <= totals[erms.SchemeFCFS])
	// Output:
	// priority <= fcfs: true
}
