module erms

go 1.22
