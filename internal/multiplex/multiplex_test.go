package multiplex

import (
	"math"
	"testing"
	"testing/quick"

	"erms/internal/graph"
	"erms/internal/profiling"
	"erms/internal/scaling"
	"erms/internal/stats"
	"erms/internal/workload"
)

// constModel is a single-interval test model.
type constModel struct{ a, b float64 }

func (m constModel) Knee(_, _ float64) float64                        { return 1e12 }
func (m constModel) Params(bool, float64, float64) (float64, float64) { return m.a, m.b }
func (m constModel) Predict(w, _, _ float64) float64                  { return m.a*w + m.b }

// fig5Inputs builds the §2.3 scenario: svc1 = U -> P, svc2 = H -> P, with U
// more latency-sensitive than H.
func fig5Inputs() (map[string]scaling.Input, map[string]map[string]float64, []string) {
	g1 := graph.New("svc1", "U")
	g1.AddStage(g1.Root, "P")
	g2 := graph.New("svc2", "H")
	g2.AddStage(g2.Root, "P")
	models := map[string]profiling.Model{
		"U": constModel{a: 0.006, b: 2},
		"H": constModel{a: 0.001, b: 2},
		"P": constModel{a: 0.002, b: 1},
	}
	shares := map[string]float64{"U": 0.0002, "H": 0.0002, "P": 0.0002}
	inputs := map[string]scaling.Input{
		"svc1": {Graph: g1, SLA: workload.P95SLA("svc1", 300), Models: models, Shares: shares},
		"svc2": {Graph: g2, SLA: workload.P95SLA("svc2", 300), Models: models, Shares: shares},
	}
	loads := map[string]map[string]float64{
		"svc1": {"U": 40000, "P": 40000},
		"svc2": {"H": 40000, "P": 40000},
	}
	return inputs, loads, []string{"P"}
}

func TestAssignPrioritiesByTarget(t *testing.T) {
	initial := map[string]*scaling.Allocation{
		"svc1": {Targets: map[string]float64{"P": 10}},
		"svc2": {Targets: map[string]float64{"P": 50}},
		"svc3": {Targets: map[string]float64{"P": 30}},
	}
	ranks := AssignPriorities(initial, []string{"P"})
	if ranks["P"]["svc1"] != 0 || ranks["P"]["svc3"] != 1 || ranks["P"]["svc2"] != 2 {
		t.Fatalf("ranks = %+v", ranks["P"])
	}
}

func TestAssignPrioritiesSkipsUninvolved(t *testing.T) {
	initial := map[string]*scaling.Allocation{
		"svc1": {Targets: map[string]float64{"P": 10}},
		"svc2": {Targets: map[string]float64{"Q": 5}},
	}
	ranks := AssignPriorities(initial, []string{"P", "missing"})
	if _, ok := ranks["P"]["svc2"]; ok {
		t.Fatal("svc2 does not use P")
	}
	if _, ok := ranks["missing"]; ok {
		t.Fatal("unused shared microservice should have no ranks")
	}
}

func TestAssignPrioritiesDeterministicTies(t *testing.T) {
	initial := map[string]*scaling.Allocation{
		"b": {Targets: map[string]float64{"P": 10}},
		"a": {Targets: map[string]float64{"P": 10}},
	}
	ranks := AssignPriorities(initial, []string{"P"})
	if ranks["P"]["a"] != 0 || ranks["P"]["b"] != 1 {
		t.Fatalf("tie-break wrong: %+v", ranks["P"])
	}
}

func TestModifiedWorkloadsCumulative(t *testing.T) {
	ranks := map[string]map[string]int{"P": {"svc1": 0, "svc2": 1, "svc3": 2}}
	loads := map[string]map[string]float64{
		"svc1": {"P": 100, "X": 7},
		"svc2": {"P": 200},
		"svc3": {"P": 300},
	}
	got := ModifiedWorkloads(ranks, loads)
	if got["svc1"]["P"] != 100 {
		t.Fatalf("highest priority sees own load: %v", got["svc1"]["P"])
	}
	if got["svc2"]["P"] != 300 {
		t.Fatalf("rank-1 sees cumulative: %v", got["svc2"]["P"])
	}
	if got["svc3"]["P"] != 600 {
		t.Fatalf("lowest sees total: %v", got["svc3"]["P"])
	}
	if got["svc1"]["X"] != 7 {
		t.Fatal("private microservice load changed")
	}
}

func TestFCFSWorkloadsAggregate(t *testing.T) {
	loads := map[string]map[string]float64{
		"svc1": {"P": 100, "X": 7},
		"svc2": {"P": 200},
	}
	got := FCFSWorkloads([]string{"P"}, loads)
	if got["svc1"]["P"] != 300 || got["svc2"]["P"] != 300 {
		t.Fatalf("fcfs workloads = %+v", got)
	}
	if got["svc1"]["X"] != 7 {
		t.Fatal("private microservice load changed")
	}
}

func TestPlanSchemeOrdering(t *testing.T) {
	// The headline claim of §2.3/Theorem 1: priority <= non-sharing <= FCFS
	// in resource usage for the Fig. 5 scenario.
	inputs, loads, shared := fig5Inputs()
	prio, err := PlanScheme(SchemePriority, inputs, loads, shared)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := PlanScheme(SchemeFCFS, inputs, loads, shared)
	if err != nil {
		t.Fatal(err)
	}
	non, err := PlanScheme(SchemeNonShared, inputs, loads, shared)
	if err != nil {
		t.Fatal(err)
	}
	if !(prio.ResourceUsage <= non.ResourceUsage+1e-9) {
		t.Fatalf("priority (%v) should not exceed non-sharing (%v)", prio.ResourceUsage, non.ResourceUsage)
	}
	if !(non.ResourceUsage <= fcfs.ResourceUsage+1e-9) {
		t.Fatalf("non-sharing (%v) should not exceed FCFS (%v)", non.ResourceUsage, fcfs.ResourceUsage)
	}
	// Erms gives svc1 (latency-sensitive U) priority at P.
	if prio.Ranks["P"]["svc1"] != 0 || prio.Ranks["P"]["svc2"] != 1 {
		t.Fatalf("ranks = %+v", prio.Ranks["P"])
	}
}

func TestPlanSchemeContainersMerged(t *testing.T) {
	inputs, loads, shared := fig5Inputs()
	prio, err := PlanScheme(SchemePriority, inputs, loads, shared)
	if err != nil {
		t.Fatal(err)
	}
	// P deploys the max across services; U and H belong to one service each.
	maxP := 0
	for _, alloc := range prio.PerService {
		if n := alloc.Containers["P"]; n > maxP {
			maxP = n
		}
	}
	if prio.Containers["P"] != maxP {
		t.Fatalf("P containers = %d, want max %d", prio.Containers["P"], maxP)
	}
	non, _ := PlanScheme(SchemeNonShared, inputs, loads, shared)
	sumP := 0
	for _, alloc := range non.PerService {
		sumP += alloc.Containers["P"]
	}
	if non.Containers["P"] != sumP {
		t.Fatalf("non-shared P containers = %d, want sum %d", non.Containers["P"], sumP)
	}
	if prio.TotalContainers() <= 0 || prio.TotalContainers() > non.TotalContainers() {
		t.Fatalf("total containers: prio %d vs non %d", prio.TotalContainers(), non.TotalContainers())
	}
}

func TestPlanSchemeErrors(t *testing.T) {
	if _, err := PlanScheme(SchemePriority, nil, nil, nil); err == nil {
		t.Fatal("empty inputs accepted")
	}
	inputs, _, shared := fig5Inputs()
	if _, err := PlanScheme(SchemePriority, inputs, map[string]map[string]float64{}, shared); err == nil {
		t.Fatal("missing loads accepted")
	}
	_, loads, _ := fig5Inputs()
	if _, err := PlanScheme(Scheme(42), inputs, loads, shared); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range []Scheme{SchemePriority, SchemeFCFS, SchemeNonShared, Scheme(9)} {
		if s.String() == "" {
			t.Fatal("empty scheme name")
		}
	}
}

func theoremParams(r *stats.RNG) Theorem1Params {
	p := Theorem1Params{
		AU: 0.002 + 0.01*r.Float64(), BU: 1 + r.Float64(), RU: 0.0001 + 0.0004*r.Float64(),
		AH: 0.0005 + 0.002*r.Float64(), BH: 1 + r.Float64(), RH: 0.0001 + 0.0004*r.Float64(),
		AP: 0.001 + 0.004*r.Float64(), BP: 0.5 + r.Float64(), RP: 0.0001 + 0.0004*r.Float64(),
		Gamma1: 1000 + 50000*r.Float64(), Gamma2: 1000 + 50000*r.Float64(),
	}
	slack := 20 + 200*r.Float64()
	// Enforce the Appendix A symmetric condition.
	p.SLA1 = slack + p.BU + p.BP
	p.SLA2 = slack + p.BH + p.BP
	return p
}

func TestTheorem1Ordering(t *testing.T) {
	// RU^o <= RU^n <= RU^s across random symmetric scenarios.
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 11)
		p := theoremParams(r)
		if !p.Symmetric() {
			return false
		}
		s, err := p.SharingFCFS()
		if err != nil {
			return false
		}
		n, err := p.NonSharing()
		if err != nil {
			return false
		}
		o, err := p.PriorityUsage()
		if err != nil {
			return false
		}
		return o <= n+1e-6 && n <= s+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1EqualityCondition(t *testing.T) {
	// RU^n = RU^s iff a_u·R_u = a_h·R_h (Cauchy-Schwarz equality).
	p := Theorem1Params{
		AU: 0.002, BU: 1, RU: 0.0002,
		AH: 0.002, BH: 1, RH: 0.0002,
		AP: 0.003, BP: 1, RP: 0.0002,
		Gamma1: 10000, Gamma2: 10000,
		SLA1: 100, SLA2: 100,
	}
	s, _ := p.SharingFCFS()
	n, _ := p.NonSharing()
	if math.Abs(s-n)/s > 1e-9 {
		t.Fatalf("equality case: sharing %v vs non-sharing %v", s, n)
	}
}

func TestTheorem1UpperBoundHolds(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 31)
		p := theoremParams(r)
		o, err := p.PriorityUsage()
		if err != nil {
			return false
		}
		ub, err := p.PriorityUpperBound()
		if err != nil {
			return false
		}
		return o <= ub*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1Infeasible(t *testing.T) {
	p := Theorem1Params{BU: 10, BP: 10, SLA1: 5, SLA2: 100, BH: 1}
	if _, err := p.SharingFCFS(); err == nil {
		t.Fatal("infeasible scenario accepted")
	}
	if _, err := p.PriorityUsage(); err == nil {
		t.Fatal("infeasible scenario accepted")
	}
}

func TestFig5QualitativeResult(t *testing.T) {
	// The §2.3 numbers: non-sharing beats FCFS sharing by ~15%, priority
	// beats non-sharing by ~20%. Exact magnitudes depend on parameters; the
	// ordering and "meaningful gap" are the reproduction target.
	p := Theorem1Params{
		AU: 0.008, BU: 2, RU: 0.0002, // U: highly sensitive
		AH: 0.001, BH: 2, RH: 0.0002, // H: insensitive
		AP: 0.002, BP: 1, RP: 0.0002,
		Gamma1: 40000, Gamma2: 40000, // 40k req/min each (§2.3)
		SLA1: 300, SLA2: 301, // SLA 300ms; +1 keeps slacks symmetric
	}
	s, _ := p.SharingFCFS()
	n, _ := p.NonSharing()
	o, _ := p.PriorityUsage()
	if !(o < n && n < s) {
		t.Fatalf("ordering violated: o=%v n=%v s=%v", o, n, s)
	}
	if (s-o)/s < 0.1 {
		t.Fatalf("priority saves only %.1f%% vs FCFS; expected a substantial gap", 100*(s-o)/s)
	}
}

// randomSharedInputs builds a random multi-service topology where every
// service's chain ends at a shared microservice P.
func randomSharedInputs(seed uint64) (map[string]scaling.Input, map[string]map[string]float64, []string) {
	r := stats.NewRNG(seed)
	nSvc := 2 + r.Intn(3)
	models := map[string]profiling.Model{
		"P": constModel{a: 0.001 + 0.004*r.Float64(), b: 0.5 + r.Float64()},
	}
	shares := map[string]float64{"P": 0.0002}
	inputs := map[string]scaling.Input{}
	loads := map[string]map[string]float64{}
	for s := 0; s < nSvc; s++ {
		svc := "svc" + string(rune('a'+s))
		own := "own-" + svc
		g := graph.New(svc, own)
		g.AddStage(g.Root, "P")
		models[own] = constModel{a: 0.0005 + 0.01*r.Float64(), b: 0.5 + 2*r.Float64()}
		shares[own] = 0.0002
		slack := 20 + 150*r.Float64()
		_, bOwn := models[own].Params(true, 0, 0)
		_, bP := models["P"].Params(true, 0, 0)
		inputs[svc] = scaling.Input{
			Graph:  g,
			SLA:    workload.P95SLA(svc, slack+bOwn+bP),
			Models: models,
			Shares: shares,
		}
		rate := 2000 + 40000*r.Float64()
		loads[svc] = map[string]float64{own: rate, "P": rate}
	}
	return inputs, loads, []string{"P"}
}

// TestPrioritySavesOverFCFSOnRandomTopologies checks the §4.3 claim broadly:
// across random shared topologies, priority scheduling essentially never
// costs more resources than FCFS sharing, and saves on average.
func TestPrioritySavesOverFCFSOnRandomTopologies(t *testing.T) {
	worse := 0
	var savings float64
	const n = 150
	for seed := 0; seed < n; seed++ {
		inputs, loads, shared := randomSharedInputs(uint64(seed) + 1)
		prio, err := PlanScheme(SchemePriority, inputs, loads, shared)
		if err != nil {
			t.Fatal(err)
		}
		fcfs, err := PlanScheme(SchemeFCFS, inputs, loads, shared)
		if err != nil {
			t.Fatal(err)
		}
		if prio.ResourceUsage > fcfs.ResourceUsage*1.0001 {
			worse++
		}
		savings += 1 - prio.ResourceUsage/fcfs.ResourceUsage
	}
	if worse > n/20 {
		t.Fatalf("priority cost more than FCFS in %d/%d random topologies", worse, n)
	}
	if savings/n <= 0 {
		t.Fatalf("mean saving = %v, want positive", savings/n)
	}
}
