package multiplex

import (
	"errors"
	"math"
)

// Theorem1Params describes the two-service scenario of Fig. 5 and Appendix
// A: service 1 calls U then shared P; service 2 calls H then shared P. All
// latency models are single-interval: L = a·γ/n + b.
type Theorem1Params struct {
	AU, BU, RU float64 // microservice U (service 1, latency-sensitive)
	AH, BH, RH float64 // microservice H (service 2)
	AP, BP, RP float64 // shared microservice P
	Gamma1     float64 // service 1 workload (req/min)
	Gamma2     float64 // service 2 workload
	SLA1       float64
	SLA2       float64
}

// slacks returns SLA_k minus the path intercepts.
func (p Theorem1Params) slacks() (float64, float64, error) {
	s1 := p.SLA1 - p.BU - p.BP
	s2 := p.SLA2 - p.BH - p.BP
	if s1 <= 0 || s2 <= 0 {
		return 0, 0, errors.New("multiplex: infeasible Theorem 1 scenario")
	}
	return s1, s2, nil
}

// Symmetric reports whether the Appendix A condition
// SLA1 − bU − bP = SLA2 − bH − bP holds (the closed forms assume it).
func (p Theorem1Params) Symmetric() bool {
	s1, s2, err := p.slacks()
	return err == nil && math.Abs(s1-s2) < 1e-9
}

// SharingFCFS evaluates Eq. 17: the optimal resource usage when P's queue is
// FCFS, so both services see the aggregate workload at P.
func (p Theorem1Params) SharingFCFS() (float64, error) {
	s1, _, err := p.slacks()
	if err != nil {
		return 0, err
	}
	num := math.Sqrt(p.AU*p.Gamma1*p.RU+p.AH*p.Gamma2*p.RH) +
		math.Sqrt(p.AP*(p.Gamma1+p.Gamma2)*p.RP)
	return num * num / s1, nil
}

// NonSharing evaluates Eq. 18: each service deploys its own exclusive
// containers of P.
func (p Theorem1Params) NonSharing() (float64, error) {
	s1, _, err := p.slacks()
	if err != nil {
		return 0, err
	}
	t1 := math.Sqrt(p.AU*p.RU) + math.Sqrt(p.AP*p.RP)
	t2 := math.Sqrt(p.AH*p.RH) + math.Sqrt(p.AP*p.RP)
	return (p.Gamma1*t1*t1 + p.Gamma2*t2*t2) / s1, nil
}

// PriorityUpperBound evaluates the Appendix A upper bound on the resource
// usage of the priority-scheduling model (service 1 prioritized at P):
// Eq. 19 bounds RU^o by solving the two constraints independently. We
// compute that construction exactly — solve service 2's constraint
// optimally (it alone fixes n_p, since P absorbs the aggregate workload
// there), then size n_u to satisfy service 1 with that n_p. The result is a
// feasible point of Eq. 13-14, hence a true upper bound on PriorityUsage.
func (p Theorem1Params) PriorityUpperBound() (float64, error) {
	s1, s2, err := p.slacks()
	if err != nil {
		return 0, err
	}
	// Service 2 alone: minimize n_h·R_h + n_p·R_p subject to
	// a_h·γ2/n_h + a_p·(γ1+γ2)/n_p = s2 (Eq. 5 closed form).
	d := math.Sqrt(p.AH*p.Gamma2*p.RH) + math.Sqrt(p.AP*(p.Gamma1+p.Gamma2)*p.RP)
	usage2 := d * d / s2
	np := math.Sqrt(p.AP*(p.Gamma1+p.Gamma2)/p.RP) * d / s2
	// Service 1 with n_p fixed.
	r1 := s1 - p.AP*p.Gamma1/np
	if r1 <= 0 {
		return 0, errors.New("multiplex: independent solve infeasible for service 1")
	}
	nu := p.AU * p.Gamma1 / r1
	return usage2 + nu*p.RU, nil
}

// PriorityUsage numerically solves the true priority-scheduling model
// (Eq. 13-14): minimize n_u·R_u + n_h·R_h + n_p·R_p subject to
//
//	a_u·γ1/n_u + a_p·γ1/n_p     ≤ SLA1 − bU − bP   (service 1, high priority)
//	a_h·γ2/n_h + a_p·(γ1+γ2)/n_p ≤ SLA2 − bH − bP  (service 2 waits behind 1)
//
// by golden-section search over n_p (both constraints bind at the optimum,
// and the objective is unimodal in n_p).
func (p Theorem1Params) PriorityUsage() (float64, error) {
	s1, s2, err := p.slacks()
	if err != nil {
		return 0, err
	}
	// Feasible n_p must leave positive slack in both constraints.
	lo := math.Max(p.AP*p.Gamma1/s1, p.AP*(p.Gamma1+p.Gamma2)/s2) * (1 + 1e-9)
	hi := lo * 1000
	usage := func(np float64) float64 {
		r1 := s1 - p.AP*p.Gamma1/np
		r2 := s2 - p.AP*(p.Gamma1+p.Gamma2)/np
		nu := p.AU * p.Gamma1 / r1
		nh := p.AH * p.Gamma2 / r2
		return nu*p.RU + nh*p.RH + np*p.RP
	}
	const phi = 0.618033988749895
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := usage(x1), usage(x2)
	for i := 0; i < 200 && (b-a)/b > 1e-12; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = usage(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = usage(x2)
		}
	}
	return usage((a + b) / 2), nil
}
