package multiplex

import (
	"errors"
	"math"
)

// ExactProblem is the full multiplexing model of §4.3 (Eq. 13-14),
// generalized to any number of services: minimize Σ_i n_i·R_i subject to,
// for every service k,
//
//	Σ_i A[k][i]/n_i  ≤  Slack[k]
//
// where A[k][i] = a_i·γ̃_{k,i} folds microservice i's latency slope with the
// (priority-modified) workload service k observes there (A[k][i] = 0 when
// service k does not use microservice i), and Slack[k] = SLA_k − Σ b_i over
// k's path. The problem is convex in n; the paper deems solving it directly
// too expensive at scale (§5.3.2) and uses the per-service decomposition
// instead — this solver exists to measure that approximation gap.
type ExactProblem struct {
	// R[i] is the dominant resource share of one container of microservice i.
	R []float64
	// A[k][i] as above; len(A) = services, len(A[k]) = microservices.
	A [][]float64
	// Slack[k] = SLA_k − Σ intercepts along service k's path; must be > 0.
	Slack []float64
}

// ExactSolution is the optimum of an ExactProblem.
type ExactSolution struct {
	// N[i] is the (fractional) container count of microservice i.
	N []float64
	// Usage is Σ N[i]·R[i].
	Usage float64
	// Lambda holds the optimal dual multipliers per service (zero for
	// non-binding SLAs).
	Lambda []float64
	// Iterations is the dual-ascent iteration count used.
	Iterations int
}

func (p *ExactProblem) validate() error {
	k := len(p.A)
	if k == 0 {
		return errors.New("multiplex: exact problem with no services")
	}
	if len(p.Slack) != k {
		return errors.New("multiplex: slack/services length mismatch")
	}
	m := len(p.R)
	if m == 0 {
		return errors.New("multiplex: exact problem with no microservices")
	}
	for ki, row := range p.A {
		if len(row) != m {
			return errors.New("multiplex: ragged A matrix")
		}
		any := false
		for _, a := range row {
			if a < 0 {
				return errors.New("multiplex: negative A entry")
			}
			if a > 0 {
				any = true
			}
		}
		if !any {
			return errors.New("multiplex: service with empty path")
		}
		if p.Slack[ki] <= 0 {
			return ErrExactInfeasible
		}
	}
	for _, r := range p.R {
		if r <= 0 {
			return errors.New("multiplex: non-positive resource share")
		}
	}
	return nil
}

// ErrExactInfeasible reports a non-positive slack (the SLA is below the sum
// of intercepts).
var ErrExactInfeasible = errors.New("multiplex: exact model infeasible (non-positive slack)")

// Solve finds the optimum by dual ascent: for multipliers λ ≥ 0 the
// Lagrangian minimizer is n_i(λ) = sqrt(Σ_k λ_k A[k][i] / R_i), and the
// concave dual g(λ) is maximized by projected gradient steps on the
// constraint residuals. Converges for every feasible convex instance.
func (p *ExactProblem) Solve(maxIters int, tol float64) (*ExactSolution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if maxIters <= 0 {
		maxIters = 20000
	}
	if tol <= 0 {
		tol = 1e-9
	}
	k, m := len(p.A), len(p.R)

	// Initialize λ from the single-service closed forms (Eq. 5): for
	// service k alone, λ_k = (Σ_i sqrt(A_ki R_i) / slack_k)^2.
	lambda := make([]float64, k)
	for ki := 0; ki < k; ki++ {
		var root float64
		for i := 0; i < m; i++ {
			root += math.Sqrt(p.A[ki][i] * p.R[i])
		}
		l := root / p.Slack[ki]
		lambda[ki] = l * l
	}

	n := make([]float64, m)
	residual := make([]float64, k)
	evalN := func() {
		for i := 0; i < m; i++ {
			var s float64
			for ki := 0; ki < k; ki++ {
				s += lambda[ki] * p.A[ki][i]
			}
			if s <= 0 {
				n[i] = 0
				continue
			}
			n[i] = math.Sqrt(s / p.R[i])
		}
	}
	iters := 0
	for ; iters < maxIters; iters++ {
		evalN()
		// Constraint residuals g_k = Σ A/n − slack.
		worst := 0.0
		for ki := 0; ki < k; ki++ {
			var lhs float64
			for i := 0; i < m; i++ {
				if p.A[ki][i] == 0 {
					continue
				}
				if n[i] == 0 {
					lhs = math.Inf(1)
					break
				}
				lhs += p.A[ki][i] / n[i]
			}
			residual[ki] = lhs - p.Slack[ki]
			// Complementary slackness gap: binding when λ>0, satisfied
			// otherwise.
			gap := residual[ki]
			if lambda[ki] == 0 && gap < 0 {
				gap = 0
			}
			if a := math.Abs(gap) / p.Slack[ki]; a > worst {
				worst = a
			}
		}
		if worst < tol {
			break
		}
		// Multiplicative projected update: scale λ_k by how violated the
		// constraint is (residual > 0 needs a larger multiplier).
		for ki := 0; ki < k; ki++ {
			ratio := (residual[ki] + p.Slack[ki]) / p.Slack[ki] // lhs/slack
			if math.IsInf(ratio, 1) {
				ratio = 10
			}
			if ratio < 0.1 {
				ratio = 0.1
			}
			lambda[ki] *= ratio
		}
	}
	evalN()
	sol := &ExactSolution{N: n, Lambda: lambda, Iterations: iters}
	for i := 0; i < m; i++ {
		sol.Usage += n[i] * p.R[i]
	}
	return sol, nil
}
