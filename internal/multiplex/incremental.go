// Incremental, sharded multi-service planning: the per-window fast path
// that makes recomputation proportional to *change* instead of to topology
// size. PlanSchemeCached replans every service every window even when
// nothing about it moved; IncrementalPlanner extends the template cache's
// fingerprints from "recompile" to "skip the replan entirely" and fans the
// remaining work out across shards.
//
// Two structural facts make this sound:
//
//   - A service's final allocation is a pure function of its own plan
//     inputs (graph, SLA, models, shares, caps, utilizations), its own
//     workload, and — through the Eq. 5 cross-service coupling at shared
//     microservices (priority ranks, cumulative/aggregate workloads) — the
//     workloads and initial targets of every service it shares a
//     microservice with. Transitively closing "shares a microservice with"
//     partitions the services into *sharing groups*; nothing outside a
//     service's group can influence its plan.
//
//   - Therefore the dirty closure of any input change is the sharing group
//     of the changed service: a workload change on any service sharing
//     microservice m dirties every service in m's group, and a clean group
//     — every member's template valid and window fingerprint unchanged —
//     can reuse last window's allocations and ranks verbatim.
//
// Sharding pins whole groups to one shard, so each shard runs the full
// initial-targets → priority-ranks → modified-workloads → final-plan
// pipeline for its groups with no cross-shard barrier. The fold back into
// one Plan walks services in globally sorted order (the same order the
// monolithic planner uses), so the output is byte-identical to
// PlanSchemeCached at any shard count — including every float summation
// order. Cached allocations are immutable once stored; callers receive
// clones (copy-on-write at the window boundary), so mutating a returned
// plan cannot corrupt what later windows reuse.
package multiplex

import (
	"errors"
	"fmt"
	"maps"
	"sort"
	"sync/atomic"

	"erms/internal/graph"
	"erms/internal/parallel"
	"erms/internal/scaling"
)

// IncrementalPlanner plans one scheme over one evolving topology, window
// after window, skipping every service whose inputs did not change since
// the last successful window. The zero value is not usable; call
// NewIncrementalPlanner. A planner instance is not safe for concurrent
// PlanScheme calls (the reconciler plans one window at a time); the
// sharded work *inside* one call fans out over internal/parallel.
type IncrementalPlanner struct {
	cache  *scaling.TemplateCache
	shards int // requested; <=0 means one shard per pool worker

	// shareExposure hands callers the cached allocations and rank maps
	// directly instead of per-window clones. See SetShareExposure.
	shareExposure bool

	// Topology snapshot the caches are valid against.
	haveState bool
	scheme    Scheme
	svcs      []string
	idx       map[string]int
	graphs    []*graph.Graph
	shared    []string
	sharedSet map[string]bool

	// Sharing-group partition and its shard pinning.
	groups      [][]int    // group -> member service indices, ascending
	groupMS     [][]string // group -> its shared microservices, sorted
	shardGroups  [][]int    // shard -> group ids, ascending
	numShards    int
	sharedSorted []string         // shared list in sorted order (merge fold order)
	sharedIdx    map[string]int32 // shared ms -> index into sharedSorted
	msSizeHint   int              // Σ graph sizes; pre-sizes the merged map

	// Per-service and per-group window caches.
	svcState   []svcState
	groupClean []bool
	groupRanks []map[string]map[string]int
	// windowRanks holds this window's caller-facing clone of each group's
	// ranks, rebuilt by the shard workers every window (slots are disjoint
	// per shard, so no synchronization is needed).
	windowRanks []map[string]map[string]int

	windows   atomic.Uint64
	skipped   atomic.Uint64
	dirty     atomic.Uint64
	shardRuns atomic.Uint64
}

// msMeta is one microservice's sealed merge contribution: everything the
// serial fold needs, captured at replan time so the per-window merge does
// no cache-map lookups. The sealed values stay valid exactly as long as
// the group is clean — ParamsMatch guards share, the fingerprint guards
// workloads, and finalAlloc (the source of n and raw) only changes on
// replan, which reseals.
type msMeta struct {
	ms        string
	sharedIdx int32 // index into planner.shared; -1 for private
	n         int
	raw       float64
	share     float64
}

// svcState is the cached outcome of the last successful window for one
// service. finalAlloc is immutable once stored — exposure always clones
// (the shard workers build each window's exposed clone in parallel).
type svcState struct {
	fpOK       bool
	fp         uint64
	meta       []msMeta // sealed merge contributions, template ms order
	finalAlloc *scaling.Allocation
	exposed    *scaling.Allocation // this window's caller-facing clone
}

// IncrementalStats is a point-in-time snapshot of planner effectiveness.
type IncrementalStats struct {
	// Windows counts PlanScheme calls that produced a plan or error.
	Windows uint64
	// SkippedServices counts services whose previous allocation was reused
	// verbatim (cumulative across windows).
	SkippedServices uint64
	// DirtyServices counts services replanned because their sharing group
	// was dirtied (cumulative across windows).
	DirtyServices uint64
	// ShardRuns accumulates the number of shards planned per window.
	ShardRuns uint64
	// Shards is the effective shard count of the current partition.
	Shards int
}

// NewIncrementalPlanner creates a planner over the given template cache
// (nil allocates a private cache). shards requests the shard count for the
// group partition; <= 0 sizes it to the parallel worker pool, and it is
// always clamped to the number of sharing groups. Output is byte-identical
// to the monolithic PlanSchemeCached at any shard count.
func NewIncrementalPlanner(cache *scaling.TemplateCache, shards int) *IncrementalPlanner {
	if cache == nil {
		cache = scaling.NewTemplateCache()
	}
	return &IncrementalPlanner{cache: cache, shards: shards}
}

// Cache returns the underlying template cache.
func (p *IncrementalPlanner) Cache() *scaling.TemplateCache { return p.cache }

// SetShareExposure toggles zero-copy plan exposure. When on, PlanScheme
// returns the planner's cached allocations and rank maps directly instead of
// deep clones, so a window where every sharing group is clean does no
// allocation-map copying at all (on the 1000-service scale topology the
// per-window clone is ~150k map entries). The returned *Plan and everything
// reachable from it MUST be treated as read-only: mutating it corrupts the
// caches that later windows reuse (the copy-on-write guarantee of the
// default mode no longer holds). Values are identical either way — only
// ownership changes. Takes effect from the next PlanScheme call.
func (p *IncrementalPlanner) SetShareExposure(on bool) { p.shareExposure = on }

// Stats returns cumulative planner counters.
func (p *IncrementalPlanner) Stats() IncrementalStats {
	if p == nil {
		return IncrementalStats{}
	}
	return IncrementalStats{
		Windows:         p.windows.Load(),
		SkippedServices: p.skipped.Load(),
		DirtyServices:   p.dirty.Load(),
		ShardRuns:       p.shardRuns.Load(),
		Shards:          p.numShards,
	}
}

// Groups returns the current sharing-group partition as sorted service
// names, ordered by each group's first member. Empty until the first
// PlanScheme call. Exposed for the dirty-closure tests and for operators
// inspecting shard pinning.
func (p *IncrementalPlanner) Groups() [][]string {
	out := make([][]string, 0, len(p.groups))
	for _, members := range p.groups {
		g := make([]string, len(members))
		for i, si := range members {
			g[i] = p.svcs[si]
		}
		out = append(out, g)
	}
	return out
}

// planErr orders a per-service failure the way the monolithic planner
// surfaces it: all initial-pass errors precede final-pass errors, and
// within a pass the lowest-sorted-index service wins (parallel.ForEach's
// lowest-indexed-failure contract).
type planErr struct {
	pass int // 0 = first planAll pass, 1 = priority final pass
	svc  int // global sorted service index
	err  error
}

func (e *planErr) before(o *planErr) bool {
	if o == nil {
		return true
	}
	if e.pass != o.pass {
		return e.pass < o.pass
	}
	return e.svc < o.svc
}

// PlanScheme computes the multi-service plan for one window. It is the
// drop-in incremental equivalent of PlanSchemeCached(scheme, inputs,
// loads, shared, cache): byte-identical plans and errors, but windows only
// pay for the services whose sharing groups changed.
func (p *IncrementalPlanner) PlanScheme(scheme Scheme, inputs map[string]scaling.Input, loads map[string]map[string]float64, shared []string) (*Plan, error) {
	if len(inputs) == 0 {
		return nil, errors.New("multiplex: no services")
	}
	svcs := make([]string, 0, len(inputs))
	for svc := range inputs {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	for _, svc := range svcs {
		if _, ok := loads[svc]; !ok {
			return nil, fmt.Errorf("multiplex: no loads for service %s", svc)
		}
	}
	switch scheme {
	case SchemePriority, SchemeFCFS, SchemeNonShared:
	default:
		return nil, fmt.Errorf("multiplex: unknown scheme %v", scheme)
	}

	if p.needsRebuild(scheme, svcs, inputs, shared) {
		p.rebuild(scheme, svcs, inputs, shared)
	}

	// Phase 1 — per shard: detect dirty groups, replan them. Shards touch
	// disjoint group/service slots, so the fan-out is race-free; every
	// shard runs to completion so the surfaced error is deterministic at
	// any shard count.
	shardErrs := make([]*planErr, p.numShards)
	_ = parallel.ForEach(p.numShards, func(s int) error {
		for _, gi := range p.shardGroups[s] {
			if pe := p.planGroup(gi, inputs, loads); pe != nil && pe.before(shardErrs[s]) {
				shardErrs[s] = pe
			}
		}
		return nil
	})
	p.windows.Add(1)
	p.shardRuns.Add(uint64(p.numShards))
	var firstErr *planErr
	for _, pe := range shardErrs {
		if pe != nil && pe.before(firstErr) {
			firstErr = pe
		}
	}
	if firstErr != nil {
		return nil, firstErr.err
	}

	return p.fold(scheme), nil
}

// needsRebuild reports whether the cached partition no longer describes
// the presented topology: different scheme, service set, shared list, or
// any service whose graph *shape* changed (a rebuilt graph with the same
// shape just re-anchors the pointer). Structural change can move
// microservices between services — i.e. re-draw the sharing groups — so it
// conservatively invalidates everything.
func (p *IncrementalPlanner) needsRebuild(scheme Scheme, svcs []string, inputs map[string]scaling.Input, shared []string) bool {
	if !p.haveState || scheme != p.scheme || len(svcs) != len(p.svcs) || len(shared) != len(p.shared) {
		return true
	}
	for i, svc := range svcs {
		if p.svcs[i] != svc {
			return true
		}
	}
	for i, ms := range shared {
		if p.shared[i] != ms {
			return true
		}
	}
	for i, svc := range svcs {
		g := inputs[svc].Graph
		if g == p.graphs[i] {
			continue
		}
		t := p.cache.Template(svc)
		if t == nil || g == nil || !t.StructMatches(g) {
			return true
		}
		// Same shape, fresh pointer: adopt it so the next window's check
		// is a pointer comparison again.
		p.graphs[i] = g
	}
	return false
}

// rebuild derives the sharing groups (union-find over "appears in the same
// shared microservice"), pins each group to a shard, and drops every
// window cache. The next window replans everything.
func (p *IncrementalPlanner) rebuild(scheme Scheme, svcs []string, inputs map[string]scaling.Input, shared []string) {
	n := len(svcs)
	p.scheme = scheme
	p.svcs = append([]string(nil), svcs...)
	p.idx = make(map[string]int, n)
	for i, svc := range p.svcs {
		p.idx[svc] = i
	}
	p.graphs = make([]*graph.Graph, n)
	for i, svc := range p.svcs {
		p.graphs[i] = inputs[svc].Graph
	}
	p.shared = append([]string(nil), shared...)
	p.sharedSorted = append([]string(nil), shared...)
	sort.Strings(p.sharedSorted)
	p.sharedSet = make(map[string]bool, len(shared))
	p.sharedIdx = make(map[string]int32, len(shared))
	for i, ms := range p.sharedSorted {
		p.sharedSet[ms] = true
		p.sharedIdx[ms] = int32(i)
	}
	p.msSizeHint = 0
	for _, g := range p.graphs {
		if g != nil {
			p.msSizeHint += g.Len()
		}
	}

	// Union-find: all services containing a shared microservice join one
	// group. Services are visited in sorted order and microservices in
	// each graph's sorted order, so the partition is deterministic.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	msFirst := make(map[string]int, len(shared)) // shared ms -> first service seen
	for i, svc := range p.svcs {
		g := inputs[svc].Graph
		if g == nil {
			continue
		}
		for _, ms := range g.Microservices() {
			if !p.sharedSet[ms] {
				continue
			}
			if first, ok := msFirst[ms]; ok {
				union(first, i)
			} else {
				msFirst[ms] = i
			}
		}
	}

	// Materialize groups ordered by their smallest member index; members
	// ascend within each group.
	groupOf := make(map[int]int, n)
	p.groups = p.groups[:0]
	for i := 0; i < n; i++ {
		r := find(i)
		gi, ok := groupOf[r]
		if !ok {
			gi = len(p.groups)
			groupOf[r] = gi
			p.groups = append(p.groups, nil)
		}
		p.groups[gi] = append(p.groups[gi], i)
	}
	p.groupMS = make([][]string, len(p.groups))
	for _, ms := range p.shared {
		if first, ok := msFirst[ms]; ok {
			gi := groupOf[find(first)]
			p.groupMS[gi] = append(p.groupMS[gi], ms)
		}
	}
	for gi := range p.groupMS {
		sort.Strings(p.groupMS[gi])
	}

	p.pinShards()

	p.svcState = make([]svcState, n)
	p.groupClean = make([]bool, len(p.groups))
	p.groupRanks = make([]map[string]map[string]int, len(p.groups))
	p.windowRanks = make([]map[string]map[string]int, len(p.groups))
	p.haveState = true
}

// pinShards assigns whole groups to shards: groups in descending size
// (ties by group id) go to the currently least-loaded shard (ties by shard
// id). Deterministic, balanced, and — because a group never splits — each
// shard can run the full priority pipeline for its groups without a
// cross-shard barrier.
func (p *IncrementalPlanner) pinShards() {
	ns := p.shards
	if ns <= 0 {
		ns = parallel.Workers()
	}
	if ns > len(p.groups) {
		ns = len(p.groups)
	}
	if ns < 1 {
		ns = 1
	}
	p.numShards = ns
	order := make([]int, len(p.groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := order[a], order[b]
		if len(p.groups[ga]) != len(p.groups[gb]) {
			return len(p.groups[ga]) > len(p.groups[gb])
		}
		return ga < gb
	})
	p.shardGroups = make([][]int, ns)
	loads := make([]int, ns)
	for _, gi := range order {
		best := 0
		for s := 1; s < ns; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		p.shardGroups[best] = append(p.shardGroups[best], gi)
		loads[best] += len(p.groups[gi])
	}
	for s := range p.shardGroups {
		sort.Ints(p.shardGroups[s])
	}
}

// planGroup checks one sharing group's inputs against the window caches
// and, when anything changed, replans the whole group through the scheme
// pipeline. On success the group's caches are refreshed and marked clean;
// on failure they stay invalid so the next window replans again.
func (p *IncrementalPlanner) planGroup(gi int, inputs map[string]scaling.Input, loads map[string]map[string]float64) *planErr {
	members := p.groups[gi]
	dirty := !p.groupClean[gi]
	for _, si := range members {
		svc := p.svcs[si]
		in := inputs[svc]
		t := p.cache.Template(svc)
		if t == nil || !t.ParamsMatch(in) {
			dirty = true
			break
		}
		fp, ok := t.WindowFingerprint(loads[svc], in.CPUUtil, in.MemUtil)
		if !ok || !p.svcState[si].fpOK || fp != p.svcState[si].fp {
			dirty = true
			break
		}
	}
	if !dirty {
		p.skipped.Add(uint64(len(members)))
		p.exposeGroup(gi)
		return nil
	}
	p.dirty.Add(uint64(len(members)))
	p.groupClean[gi] = false

	// Replay the monolithic pipeline restricted to this group. Every value
	// that crosses services (ranks, cumulative and aggregate workloads) is
	// a pure function of group-internal data, so the restriction is exact:
	// same floats, same fold orders, same errors.
	planOne := func(si int, workloads map[string]float64, pass int) *planErr {
		svc := p.svcs[si]
		in := inputs[svc]
		in.Workloads = workloads
		alloc, err := p.cache.Plan(in)
		if err != nil {
			return &planErr{pass: pass, svc: si, err: fmt.Errorf("multiplex: service %s: %w", svc, err)}
		}
		p.svcState[si].finalAlloc = alloc
		return nil
	}

	switch p.scheme {
	case SchemeNonShared:
		for _, si := range members {
			if pe := planOne(si, loads[p.svcs[si]], 0); pe != nil {
				return pe
			}
		}

	case SchemeFCFS:
		groupLoads := make(map[string]map[string]float64, len(members))
		for _, si := range members {
			groupLoads[p.svcs[si]] = loads[p.svcs[si]]
		}
		fcfs := FCFSWorkloads(p.groupMS[gi], groupLoads)
		for _, si := range members {
			if pe := planOne(si, fcfs[p.svcs[si]], 0); pe != nil {
				return pe
			}
		}

	case SchemePriority:
		// 1. Initial targets from each member's own workload. These feed
		// the ranks but are never exposed, so no clone is needed.
		initial := make(map[string]*scaling.Allocation, len(members))
		for _, si := range members {
			svc := p.svcs[si]
			in := inputs[svc]
			in.Workloads = loads[svc]
			alloc, err := p.cache.Plan(in)
			if err != nil {
				return &planErr{pass: 0, svc: si, err: fmt.Errorf("multiplex: service %s: %w", svc, err)}
			}
			initial[svc] = alloc
		}
		// 2. Ranks at this group's shared microservices — only members
		// have targets there, so the group-local assignment equals the
		// global one. 3. Final plans from modified cumulative workloads.
		ranks := AssignPriorities(initial, p.groupMS[gi])
		p.groupRanks[gi] = ranks
		groupLoads := make(map[string]map[string]float64, len(members))
		for _, si := range members {
			groupLoads[p.svcs[si]] = loads[p.svcs[si]]
		}
		modified := ModifiedWorkloads(ranks, groupLoads)
		for _, si := range members {
			if pe := planOne(si, modified[p.svcs[si]], 1); pe != nil {
				return pe
			}
		}
	}

	// Seal the window: record each member's fingerprint against the
	// (possibly recompiled) template so an unchanged next window skips, and
	// capture each microservice's merge contribution (count, raw, share) so
	// the serial fold needs no cache-map lookups while the group is clean.
	for _, si := range members {
		svc := p.svcs[si]
		t := p.cache.Template(svc)
		st := &p.svcState[si]
		st.fp, st.fpOK = t.WindowFingerprint(loads[svc], inputs[svc].CPUUtil, inputs[svc].MemUtil)
		mss := t.Microservices()
		if cap(st.meta) < len(mss) {
			st.meta = make([]msMeta, len(mss))
		}
		st.meta = st.meta[:len(mss)]
		shares := inputs[svc].Shares
		alloc := st.finalAlloc
		for i, ms := range mss {
			shIdx := int32(-1)
			if j, ok := p.sharedIdx[ms]; ok {
				shIdx = j
			}
			st.meta[i] = msMeta{
				ms:        ms,
				sharedIdx: shIdx,
				n:         alloc.Containers[ms],
				raw:       alloc.ContainersRaw[ms],
				share:     shares[ms],
			}
		}
	}
	p.groupClean[gi] = true
	p.exposeGroup(gi)
	return nil
}

// exposeGroup builds this window's caller-facing copies for one group:
// a deep clone of every member's allocation and, under priority, of the
// group's rank maps. It runs on the shard workers (slots are per-service
// and per-group, so shards never contend), keeping the serial fold down to
// map assembly and the float merge.
func (p *IncrementalPlanner) exposeGroup(gi int) {
	if p.shareExposure {
		// Zero-copy path: the caller promised (SetShareExposure) not to
		// mutate what it gets back, so clean and dirty groups alike hand out
		// the cached structures themselves.
		for _, si := range p.groups[gi] {
			st := &p.svcState[si]
			st.exposed = st.finalAlloc
		}
		if p.scheme == SchemePriority {
			p.windowRanks[gi] = p.groupRanks[gi]
		}
		return
	}
	for _, si := range p.groups[gi] {
		st := &p.svcState[si]
		st.exposed = st.finalAlloc.Clone()
	}
	if p.scheme == SchemePriority {
		ranks := p.groupRanks[gi]
		w := make(map[string]map[string]int, len(ranks))
		for ms, bySvc := range ranks {
			w[ms] = maps.Clone(bySvc)
		}
		p.windowRanks[gi] = w
	}
}

// fold assembles the window's Plan from the per-service caches, walking
// services in globally sorted order so every float summation replays the
// monolithic merge bit for bit. Exposed allocations and rank maps are
// clones; the caches stay immutable.
func (p *IncrementalPlanner) fold(scheme Scheme) *Plan {
	plan := &Plan{
		Scheme:     scheme,
		Containers: make(map[string]int, p.msSizeHint),
		PerService: make(map[string]*scaling.Allocation, len(p.svcs)),
	}
	for i, svc := range p.svcs {
		plan.PerService[svc] = p.svcState[i].exposed
		p.svcState[i].exposed = nil // ownership transferred to the caller
	}
	if scheme == SchemePriority {
		plan.Ranks = make(map[string]map[string]int, len(p.shared))
		for gi := range p.groups {
			for ms, bySvc := range p.windowRanks[gi] {
				plan.Ranks[ms] = bySvc
			}
			p.windowRanks[gi] = nil
		}
	}

	if scheme == SchemeNonShared {
		// The monolithic non-sharing merge sums every microservice — shared
		// ones included — and folds each service's whole ResourceUsage in
		// sorted service order.
		for i := range p.svcs {
			st := &p.svcState[i]
			for _, m := range st.meta {
				plan.Containers[m.ms] += m.n
			}
			plan.ResourceUsage += st.finalAlloc.ResourceUsage
		}
		return plan
	}

	// Priority/FCFS merge: shared microservices deploy the max requirement
	// across services, private ones add. Iteration replays the monolithic
	// merge exactly — sorted services, each service's microservices in
	// sorted order (the sealed meta list) — with the shared-max accumulators
	// held in dense arrays indexed by sorted shared position, so the only
	// per-microservice map operation left is the merged-count assignment.
	rawMax := make([]float64, len(p.sharedSorted))
	shareOf := make([]float64, len(p.sharedSorted))
	touched := make([]bool, len(p.sharedSorted))
	for i := range p.svcs {
		for _, m := range p.svcState[i].meta {
			if m.sharedIdx < 0 {
				plan.Containers[m.ms] += m.n
				plan.ResourceUsage += m.raw * m.share
				continue
			}
			if m.n > plan.Containers[m.ms] {
				plan.Containers[m.ms] = m.n
			}
			j := m.sharedIdx
			if m.raw > rawMax[j] {
				rawMax[j] = m.raw
			}
			shareOf[j] = m.share
			touched[j] = true
		}
	}
	// sharedSorted is sorted, so walking it skips nothing the monolithic
	// sortutil.Keys(rawMax) fold would visit, in the same order.
	for j := range p.sharedSorted {
		if touched[j] {
			plan.ResourceUsage += rawMax[j] * shareOf[j]
		}
	}
	return plan
}
