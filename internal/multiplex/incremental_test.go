package multiplex

import (
	"fmt"
	"testing"

	"erms/internal/apps"
	"erms/internal/graph"
	"erms/internal/parallel"
	"erms/internal/scaling"
	"erms/internal/stats"
	"erms/internal/workload"
)

// planIncremental is the test harness shorthand: one window through the
// incremental planner, failing the test on error.
func planIncremental(t *testing.T, p *IncrementalPlanner, scheme Scheme, inputs map[string]scaling.Input, loads map[string]map[string]float64, shared []string, ctx string) *Plan {
	t.Helper()
	plan, err := p.PlanScheme(scheme, inputs, loads, shared)
	if err != nil {
		t.Fatalf("%s: incremental: %v", ctx, err)
	}
	return plan
}

// TestIncrementalByteIdenticalOnScaleTopology: on the Alibaba-shape
// topology, the incremental planner reproduces the monolithic planner bit
// for bit at shard counts 1 and 4, for every scheme, across repeated and
// mutated windows — and actually skips on the unchanged window.
func TestIncrementalByteIdenticalOnScaleTopology(t *testing.T) {
	inputs, loads, shared := scaleInputs(t, apps.ScaleConfig{
		Seed: 11, Services: 30, MicroservicesPerService: 12, SharingDegree: 5,
	})
	for _, scheme := range []Scheme{SchemePriority, SchemeFCFS, SchemeNonShared} {
		for _, shards := range []int{1, 4} {
			p := NewIncrementalPlanner(nil, shards)
			ctx := fmt.Sprintf("%v shards=%d", scheme, shards)

			want, err := PlanScheme(scheme, inputs, loads, shared)
			if err != nil {
				t.Fatalf("%s: oracle: %v", ctx, err)
			}
			got := planIncremental(t, p, scheme, inputs, loads, shared, ctx+" w1")
			requirePlanBitIdentical(t, want, got, ctx+" cold window")

			// Unchanged window: everything skips, output still identical.
			before := p.Stats()
			got = planIncremental(t, p, scheme, inputs, loads, shared, ctx+" w2")
			requirePlanBitIdentical(t, want, got, ctx+" warm window")
			after := p.Stats()
			if skipped := after.SkippedServices - before.SkippedServices; skipped != uint64(len(inputs)) {
				t.Fatalf("%s: warm window skipped %d services, want all %d", ctx, skipped, len(inputs))
			}

			// Mutated window: bump one service's workload; output must match
			// a from-scratch oracle run on the new loads.
			loads["scale-svc-00000"]["pool-00000"] *= 1.25
			want, err = PlanScheme(scheme, inputs, loads, shared)
			if err != nil {
				t.Fatalf("%s: oracle after mutation: %v", ctx, err)
			}
			got = planIncremental(t, p, scheme, inputs, loads, shared, ctx+" w3")
			requirePlanBitIdentical(t, want, got, ctx+" dirty window")
			loads["scale-svc-00000"]["pool-00000"] /= 1.25
		}
	}
}

// TestIncrementalDirtyClosure pins the dirty-closure rule exactly: a
// change to one service dirties its whole sharing group — every service
// it shares a microservice with, transitively — and nothing else.
//
// With Services % SharingDegree == 0 the scale topology's sharing groups
// are aligned blocks of SharingDegree consecutive services, so the
// expected closure of a single-service change is its block of 3.
func TestIncrementalDirtyClosure(t *testing.T) {
	const services, degree = 12, 3
	inputs, loads, shared := scaleInputs(t, apps.ScaleConfig{
		Seed: 7, Services: services, MicroservicesPerService: 8, SharingDegree: degree,
	})
	p := NewIncrementalPlanner(nil, 4)
	planIncremental(t, p, SchemePriority, inputs, loads, shared, "cold")

	groups := p.Groups()
	if len(groups) != services/degree {
		t.Fatalf("got %d sharing groups, want %d: %v", len(groups), services/degree, groups)
	}
	for gi, g := range groups {
		if len(g) != degree {
			t.Fatalf("group %d has %d members, want %d: %v", gi, len(g), degree, g)
		}
		for i, svc := range g {
			if want := fmt.Sprintf("scale-svc-%05d", gi*degree+i); svc != want {
				t.Fatalf("group %d member %d = %s, want %s (aligned blocks)", gi, i, svc, want)
			}
		}
	}

	svcName := func(i int) string { return fmt.Sprintf("scale-svc-%05d", i) }
	cases := []struct {
		name   string
		mutate func()
		dirty  int // services expected to replan
	}{
		{"workload change svc 0 dirties group 0", func() {
			for ms := range loads[svcName(0)] {
				loads[svcName(0)][ms] *= 1.1
			}
		}, degree},
		{"workload change svc 7 dirties group 2", func() {
			loads[svcName(7)][svcName(7)+"-entry"] *= 1.3
		}, degree},
		{"SLA change dirties only the service's group", func() {
			in := inputs[svcName(4)]
			in.SLA = workload.P95SLA(svcName(4), in.SLA.Threshold*1.05)
			inputs[svcName(4)] = in
		}, degree},
		{"private-share change dirties only the owner's group", func() {
			// The entry microservice is private to svc 9; its share lives in
			// the global map but only svc 9's template captures it.
			inputs[svcName(9)].Shares[svcName(9)+"-entry"] *= 1.01
		}, degree},
		{"no change dirties nothing", func() {}, 0},
	}
	for _, tc := range cases {
		tc.mutate()
		before := p.Stats()
		planIncremental(t, p, SchemePriority, inputs, loads, shared, tc.name)
		after := p.Stats()
		dirty := int(after.DirtyServices - before.DirtyServices)
		skipped := int(after.SkippedServices - before.SkippedServices)
		if dirty != tc.dirty || skipped != services-tc.dirty {
			t.Fatalf("%s: dirty=%d skipped=%d, want dirty=%d skipped=%d",
				tc.name, dirty, skipped, tc.dirty, services-tc.dirty)
		}
	}
}

// TestIncrementalCopyOnWrite: mutating a returned plan must not corrupt
// the planner's caches — the next (unchanged, fully skipped) window still
// returns the pristine result.
func TestIncrementalCopyOnWrite(t *testing.T) {
	inputs, loads, shared := scaleInputs(t, apps.ScaleConfig{
		Seed: 3, Services: 10, MicroservicesPerService: 6, SharingDegree: 2,
	})
	want, err := PlanScheme(SchemePriority, inputs, loads, shared)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	p := NewIncrementalPlanner(nil, 2)
	got := planIncremental(t, p, SchemePriority, inputs, loads, shared, "w1")

	// Vandalize everything the caller can reach.
	for _, alloc := range got.PerService {
		for ms := range alloc.Targets {
			alloc.Targets[ms] = -1
			alloc.ContainersRaw[ms] = -1
			alloc.Containers[ms] = -1
		}
		alloc.ResourceUsage = -1
	}
	for _, bySvc := range got.Ranks {
		for svc := range bySvc {
			bySvc[svc] = 99
		}
	}
	for ms := range got.Containers {
		got.Containers[ms] = -1
	}

	before := p.Stats()
	again := planIncremental(t, p, SchemePriority, inputs, loads, shared, "w2")
	after := p.Stats()
	if skipped := after.SkippedServices - before.SkippedServices; skipped != uint64(len(inputs)) {
		t.Fatalf("window after vandalism replanned: skipped %d, want %d", skipped, len(inputs))
	}
	requirePlanBitIdentical(t, want, again, "post-vandalism window")
}

// TestIncrementalErrorMatchesMonolithic: an infeasible service surfaces
// the same wrapped error as the monolithic planner (same service, same
// text), the window fails closed, and the planner recovers once the input
// is fixed — the failed group stays dirty, not poisoned.
func TestIncrementalErrorMatchesMonolithic(t *testing.T) {
	inputs, loads, shared := scaleInputs(t, apps.ScaleConfig{
		Seed: 5, Services: 8, MicroservicesPerService: 6, SharingDegree: 2,
	})
	p := NewIncrementalPlanner(nil, 3)
	planIncremental(t, p, SchemePriority, inputs, loads, shared, "w1")

	const victim = "scale-svc-00003"
	good := inputs[victim]
	bad := good
	bad.SLA = workload.P95SLA(victim, 1e-9) // below minimum attainable latency
	inputs[victim] = bad

	_, wantErr := PlanSchemeCached(SchemePriority, inputs, loads, shared, scaling.NewTemplateCache())
	if wantErr == nil {
		t.Fatal("monolithic planner accepted an infeasible SLA")
	}
	_, gotErr := p.PlanScheme(SchemePriority, inputs, loads, shared)
	if gotErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("error mismatch:\n  incremental: %v\n  monolithic:  %v", gotErr, wantErr)
	}

	inputs[victim] = good
	want, err := PlanScheme(SchemePriority, inputs, loads, shared)
	if err != nil {
		t.Fatalf("oracle after repair: %v", err)
	}
	got := planIncremental(t, p, SchemePriority, inputs, loads, shared, "repaired")
	requirePlanBitIdentical(t, want, got, "window after repaired input")
}

// TestIncrementalOracleUnderRandomMutations is the property test: random
// per-window mutation sequences — workload scaling, SLA changes, share
// and cap edits, graph rebuilds (same shape, new pointer) and structural
// graph edits — against a from-scratch PlanScheme oracle. Plans must be
// bit-identical after every window, at a random shard count per sequence.
func TestIncrementalOracleUnderRandomMutations(t *testing.T) {
	schemes := []Scheme{SchemePriority, SchemeFCFS, SchemeNonShared}
	for seed := uint64(1); seed <= 12; seed++ {
		r := stats.NewRNG(seed)
		inputs, loads, shared := randomSharedInputs(seed)
		scheme := schemes[seed%3]
		shards := 1 + r.Intn(4)
		p := NewIncrementalPlanner(nil, shards)

		// extraStage tracks the structural edit per service: whether the
		// service's chain currently has a third, private stage.
		extraStage := map[string]bool{}
		rebuild := func(svc string) {
			own := "own-" + svc
			g := graph.New(svc, own)
			stage := g.AddStage(g.Root, "P")
			if extraStage[svc] {
				extra := "extra-" + svc
				g.AddStage(stage[0], extra)
				in := inputs[svc]
				if _, ok := in.Models[extra]; !ok {
					in.Models[extra] = constModel{a: 0.001, b: 0.4}
					in.Shares[extra] = 0.0002
				}
				loads[svc][extra] = loads[svc][own]
			} else {
				delete(loads[svc], "extra-"+svc)
			}
			in := inputs[svc]
			in.Graph = g
			// A structural edit moves intercepts; re-derive a feasible SLA.
			_, bOwn := in.Models[own].Params(true, 0, 0)
			_, bP := in.Models["P"].Params(true, 0, 0)
			base := 60 + 100*r.Float64() + bOwn + bP
			if extraStage[svc] {
				base += 0.4 + 5
			}
			in.SLA = workload.P95SLA(svc, base)
			inputs[svc] = in
		}
		svcAt := func(i int) string { return "svc" + string(rune('a'+i%len(inputs))) }

		for window := 0; window < 18; window++ {
			if window > 0 {
				svc := svcAt(r.Intn(len(inputs)))
				switch r.Intn(6) {
				case 0: // workload edit
					for ms := range loads[svc] {
						loads[svc][ms] *= 0.5 + 1.5*r.Float64()
					}
				case 1: // SLA edit (upward — stays feasible)
					in := inputs[svc]
					in.SLA = workload.P95SLA(svc, in.SLA.Threshold*(1+0.2*r.Float64()))
					inputs[svc] = in
				case 2: // share edit on the service's private microservice
					inputs[svc].Shares["own-"+svc] *= 1 + 0.1*r.Float64()
				case 3: // cap toggle on the shared microservice
					in := inputs[svc]
					if in.MaxPerContainer == nil {
						in.MaxPerContainer = map[string]float64{"P": 1e12}
					} else {
						in.MaxPerContainer = nil
					}
					inputs[svc] = in
				case 4: // graph rebuild, same structure, fresh pointer
					rebuild(svc)
				case 5: // structural edit: toggle a third stage
					extraStage[svc] = !extraStage[svc]
					rebuild(svc)
				}
			}
			ctx := fmt.Sprintf("seed %d %v shards=%d window %d", seed, scheme, shards, window)
			want, err := PlanScheme(scheme, inputs, loads, shared)
			if err != nil {
				t.Fatalf("%s: oracle: %v", ctx, err)
			}
			got := planIncremental(t, p, scheme, inputs, loads, shared, ctx)
			requirePlanBitIdentical(t, want, got, ctx)
		}
	}
}

// TestIncrementalAcrossWorkersAndShards: the full cross-product of worker
// pool sizes and shard counts renders one identical plan — the sharded
// fan-out must not leak scheduling order into the fold.
func TestIncrementalAcrossWorkersAndShards(t *testing.T) {
	inputs, loads, shared := scaleInputs(t, apps.ScaleConfig{
		Seed: 13, Services: 20, MicroservicesPerService: 10, SharingDegree: 4,
	})
	defer parallel.SetWorkers(0)
	want, err := PlanScheme(SchemePriority, inputs, loads, shared)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 2, 4, 16} {
			parallel.SetWorkers(workers)
			p := NewIncrementalPlanner(nil, shards)
			ctx := fmt.Sprintf("workers=%d shards=%d", workers, shards)
			got := planIncremental(t, p, SchemePriority, inputs, loads, shared, ctx)
			requirePlanBitIdentical(t, want, got, ctx+" cold")
			got = planIncremental(t, p, SchemePriority, inputs, loads, shared, ctx)
			requirePlanBitIdentical(t, want, got, ctx+" warm")
		}
	}
}

// TestIncrementalShareExposureOracle: with zero-copy exposure opted in, the
// planner returns values bit-identical to both the monolithic oracle and its
// own cloning mode — across cold, clean, and dirtied windows — while clean
// windows hand back the cached allocation pointers themselves (no per-window
// clone).
func TestIncrementalShareExposureOracle(t *testing.T) {
	inputs, loads, shared := scaleInputs(t, apps.ScaleConfig{
		Seed: 19, Services: 12, MicroservicesPerService: 8, SharingDegree: 3,
	})
	for _, scheme := range []Scheme{SchemePriority, SchemeFCFS, SchemeNonShared} {
		ctx := fmt.Sprintf("%v", scheme)
		p := NewIncrementalPlanner(nil, 2)
		p.SetShareExposure(true)

		want, err := PlanScheme(scheme, inputs, loads, shared)
		if err != nil {
			t.Fatalf("%s: oracle: %v", ctx, err)
		}
		w1 := planIncremental(t, p, scheme, inputs, loads, shared, ctx+" w1")
		requirePlanBitIdentical(t, want, w1, ctx+" cold window (shared exposure)")

		// Clean window: same values, and the very same allocation objects —
		// the point of the opt-in is that nothing is cloned.
		before := p.Stats()
		w2 := planIncremental(t, p, scheme, inputs, loads, shared, ctx+" w2")
		requirePlanBitIdentical(t, want, w2, ctx+" warm window (shared exposure)")
		if skipped := p.Stats().SkippedServices - before.SkippedServices; skipped != uint64(len(inputs)) {
			t.Fatalf("%s: warm window skipped %d services, want all %d", ctx, skipped, len(inputs))
		}
		for svc := range w1.PerService {
			if w1.PerService[svc] != w2.PerService[svc] {
				t.Fatalf("%s: %s: clean window cloned the allocation despite shared exposure", ctx, svc)
			}
		}

		// Dirty window: replanning a group swaps in fresh objects for its
		// members; values still match a from-scratch oracle.
		loads["scale-svc-00000"]["pool-00000"] *= 1.5
		want, err = PlanScheme(scheme, inputs, loads, shared)
		if err != nil {
			t.Fatalf("%s: oracle after mutation: %v", ctx, err)
		}
		w3 := planIncremental(t, p, scheme, inputs, loads, shared, ctx+" w3")
		requirePlanBitIdentical(t, want, w3, ctx+" dirty window (shared exposure)")
		loads["scale-svc-00000"]["pool-00000"] /= 1.5

		// Cloning mode on the same inputs agrees bit for bit, window by
		// window — exposure mode changes ownership, never values.
		pc := NewIncrementalPlanner(nil, 2)
		cl := planIncremental(t, pc, scheme, inputs, loads, shared, ctx+" clone w1")
		requirePlanBitIdentical(t, cl, w1, ctx+" clone vs shared")
	}
}
