package multiplex

import (
	"fmt"
	"testing"

	"erms/internal/apps"
	"erms/internal/scaling"
)

// BenchmarkIncrementalVsCompiled is the BENCH_6 pair: per-window planning
// on the full Alibaba-scale topology (1000 services × 50 microservices ×
// sharing degree 10) with 10% of services changing workload every window.
// "compiled" is the PR-5 monolithic planner over a warmed template cache —
// it replans all 1000 services each window; "incremental" skips the 900
// unchanged services (the dirty closure of the mutated 10% is exactly the
// mutated services, since sharing groups here are aligned blocks) and
// fans the dirty sharing groups out across shards. bench.sh folds the two
// into BENCH_6.json and gates compiled/incremental >= 5x.
func BenchmarkIncrementalVsCompiled(b *testing.B) {
	const services, dirtyFrac = 1000, 0.10
	inputs, loads, shared := scaleInputs(b, apps.ScaleConfig{
		Seed: 42, Services: services, MicroservicesPerService: 50, SharingDegree: 10,
	})
	nDirty := int(dirtyFrac * services)
	victims := make([]string, nDirty)
	base := make([]map[string]float64, nDirty)
	for i := 0; i < nDirty; i++ {
		victims[i] = fmt.Sprintf("scale-svc-%05d", i)
		byMS := loads[victims[i]]
		cp := make(map[string]float64, len(byMS))
		for ms, g := range byMS {
			cp[ms] = g
		}
		base[i] = cp
	}
	// mutate gives the dirty 10% a fresh workload multiplier derived from
	// the iteration counter, so every window's fingerprints really change.
	mutate := func(iter int) {
		mult := 1 + 0.01*float64(iter%7+1)
		for i, svc := range victims {
			for ms, g := range base[i] {
				loads[svc][ms] = g * mult
			}
		}
	}

	b.Run("compiled", func(b *testing.B) {
		cache := scaling.NewTemplateCache()
		if _, err := PlanSchemeCached(SchemePriority, inputs, loads, shared, cache); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mutate(i)
			b.StartTimer()
			if _, err := PlanSchemeCached(SchemePriority, inputs, loads, shared, cache); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		p := NewIncrementalPlanner(nil, 0)
		if _, err := p.PlanScheme(SchemePriority, inputs, loads, shared); err != nil {
			b.Fatal(err)
		}
		cold := p.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mutate(i)
			b.StartTimer()
			if _, err := p.PlanScheme(SchemePriority, inputs, loads, shared); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		// Sanity: post-warmup windows must skip the unchanged 90%, or the
		// benchmark silently degrades into the compiled one.
		warm := p.Stats()
		skipped := warm.SkippedServices - cold.SkippedServices
		dirty := warm.DirtyServices - cold.DirtyServices
		if skipped <= dirty {
			b.Fatalf("incremental planner did not skip: %d skipped vs %d dirty over %d windows",
				skipped, dirty, warm.Windows-cold.Windows)
		}
	})
}
