// Package multiplex implements Erms' handling of shared microservices
// (§2.3, §4.3, §5.3.2): priority assignment from initial latency targets,
// the modified cumulative workloads that encode priority scheduling in the
// scaling model, and the three deployment schemes the paper compares —
// priority scheduling, FCFS sharing, and non-sharing — plus the Theorem 1
// resource-usage calculators of Appendix A.
package multiplex

import (
	"errors"
	"fmt"
	"sort"

	"erms/internal/parallel"
	"erms/internal/scaling"
	"erms/internal/sortutil"
)

// AssignPriorities ranks the services at every shared microservice by their
// initial latency target: the service with the lower target gets the higher
// priority (rank 0), because a low target signals latency-sensitive
// microservices whose requests should be handled first (§5.3.2). Ties break
// by service name for determinism.
func AssignPriorities(initial map[string]*scaling.Allocation, shared []string) map[string]map[string]int {
	ranks := make(map[string]map[string]int, len(shared))
	for _, ms := range shared {
		type st struct {
			svc    string
			target float64
		}
		var list []st
		for svc, alloc := range initial {
			if t, ok := alloc.Targets[ms]; ok {
				list = append(list, st{svc, t})
			}
		}
		if len(list) == 0 {
			continue
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].target != list[j].target {
				return list[i].target < list[j].target
			}
			return list[i].svc < list[j].svc
		})
		m := make(map[string]int, len(list))
		for i, s := range list {
			m[s.svc] = i
		}
		ranks[ms] = m
	}
	return ranks
}

// ModifiedWorkloads computes the priority-scheduling workloads of §5.3.2:
// at shared microservice i, the service with priority rank k models the
// cumulative workload Σ_{l ≤ k} γ_{l,i} — its requests wait behind all
// higher-priority traffic. Non-shared microservices keep their own load.
// loads[svc][ms] is each service's own call rate at each microservice.
//
// The cumulative sums are hoisted out of the per-service loop: each shared
// microservice orders its services by rank (dense 0..n-1 as produced by
// AssignPriorities; out-of-range ranks are ignored) and prefix-sums once —
// O(services) per microservice rather than O(services²), and the fold runs
// in rank order so the float sums are bit-stable regardless of map
// iteration order.
func ModifiedWorkloads(ranks map[string]map[string]int, loads map[string]map[string]float64) map[string]map[string]float64 {
	cums := make(map[string]map[string]float64, len(ranks))
	for ms, rank := range ranks {
		byRank := make([]string, len(rank))
		for svc, r := range rank {
			if r >= 0 && r < len(byRank) {
				byRank[r] = svc
			}
		}
		cum := 0.0
		c := make(map[string]float64, len(rank))
		for _, svc := range byRank {
			if svc == "" {
				continue
			}
			cum += loads[svc][ms]
			c[svc] = cum
		}
		cums[ms] = c
	}
	out := make(map[string]map[string]float64, len(loads))
	for svc, byMS := range loads {
		m := make(map[string]float64, len(byMS))
		for ms, own := range byMS {
			m[ms] = own
			if cum, ok := cums[ms][svc]; ok {
				m[ms] = cum
			}
		}
		out[svc] = m
	}
	return out
}

// FCFSWorkloads models default FCFS sharing: every service sees the full
// aggregate workload at each shared microservice (all traffic can delay all
// traffic).
func FCFSWorkloads(shared []string, loads map[string]map[string]float64) map[string]map[string]float64 {
	sharedSet := make(map[string]bool, len(shared))
	for _, ms := range shared {
		sharedSet[ms] = true
	}
	// Fold service contributions in sorted order so each total is bit-stable
	// run to run.
	totals := make(map[string]float64)
	for _, svc := range sortutil.Keys(loads) {
		for ms, g := range loads[svc] {
			if sharedSet[ms] {
				totals[ms] += g
			}
		}
	}
	out := make(map[string]map[string]float64, len(loads))
	for svc, byMS := range loads {
		m := make(map[string]float64, len(byMS))
		for ms, own := range byMS {
			if sharedSet[ms] {
				m[ms] = totals[ms]
			} else {
				m[ms] = own
			}
		}
		out[svc] = m
	}
	return out
}

// Scheme names the shared-microservice deployment schemes of §2.3.
type Scheme int

// The three schemes compared in Fig. 5 and §6.4.
const (
	// SchemePriority is Erms' priority scheduling with recomputed targets.
	SchemePriority Scheme = iota
	// SchemeFCFS shares containers with first-come-first-serve queues.
	SchemeFCFS
	// SchemeNonShared partitions containers per service.
	SchemeNonShared
)

func (s Scheme) String() string {
	switch s {
	case SchemePriority:
		return "priority"
	case SchemeFCFS:
		return "fcfs-sharing"
	case SchemeNonShared:
		return "non-sharing"
	default:
		return "unknown"
	}
}

// Plan is a multi-service allocation under one scheme.
type Plan struct {
	Scheme Scheme
	// PerService holds each service's final allocation.
	PerService map[string]*scaling.Allocation
	// Ranks holds the priority rank per shared microservice per service
	// (only for SchemePriority).
	Ranks map[string]map[string]int
	// Containers is the merged deployment: for shared microservices under
	// priority/FCFS, the max requirement across services; under non-sharing
	// (and for private microservices always), the per-service sum is
	// deployed as disjoint groups but reported against the one microservice
	// name.
	Containers map[string]int
	// ResourceUsage is the merged Σ n_i·R_i with raw (fractional) n.
	ResourceUsage float64
}

// TotalContainers sums merged container counts.
func (p *Plan) TotalContainers() int {
	t := 0
	for _, n := range p.Containers {
		t += n
	}
	return t
}

// PlanScheme computes a multi-service allocation under the given scheme.
//
// inputs[svc] carries each service's graph, SLA, models, shares and the
// cluster utilization; its Workloads field is ignored and replaced according
// to the scheme. loads[svc][ms] is the service's own call rate at each of
// its microservices (requests/minute). shared lists the microservices
// multiplexed across services.
func PlanScheme(scheme Scheme, inputs map[string]scaling.Input, loads map[string]map[string]float64, shared []string) (*Plan, error) {
	return PlanSchemeCached(scheme, inputs, loads, shared, nil)
}

// PlanSchemeCached is PlanScheme backed by a template cache: each service's
// per-window scaling plan replays its compiled template instead of
// re-running validation and the Algorithm-1 reduction. The output is
// bit-identical to PlanScheme's — a nil cache degrades to the naive path.
// Distinct services plan concurrently without contention (the cache is
// keyed by service and each template carries its own lock).
func PlanSchemeCached(scheme Scheme, inputs map[string]scaling.Input, loads map[string]map[string]float64, shared []string, cache *scaling.TemplateCache) (*Plan, error) {
	if len(inputs) == 0 {
		return nil, errors.New("multiplex: no services")
	}
	for svc := range inputs {
		if _, ok := loads[svc]; !ok {
			return nil, fmt.Errorf("multiplex: no loads for service %s", svc)
		}
	}
	sharedSet := make(map[string]bool, len(shared))
	for _, ms := range shared {
		sharedSet[ms] = true
	}

	// Per-service latency-target decomposition: each service's scaling plan
	// is independent (scaling.Plan is pure and only reads the shared maps),
	// so the services fan out across the worker pool. Results merge keyed by
	// a sorted name list, so output is identical at any worker count.
	svcs := make([]string, 0, len(inputs))
	for svc := range inputs {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	planAll := func(workloads map[string]map[string]float64) (map[string]*scaling.Allocation, error) {
		allocs, err := parallel.Map(len(svcs), func(i int) (*scaling.Allocation, error) {
			svc := svcs[i]
			in := inputs[svc]
			in.Workloads = workloads[svc]
			// cache.Plan on a nil cache is the naive scaling.Plan.
			alloc, err := cache.Plan(in)
			if err != nil {
				return nil, fmt.Errorf("multiplex: service %s: %w", svc, err)
			}
			return alloc, nil
		})
		if err != nil {
			return nil, err
		}
		out := make(map[string]*scaling.Allocation, len(svcs))
		for i, svc := range svcs {
			out[svc] = allocs[i]
		}
		return out, nil
	}

	plan := &Plan{Scheme: scheme, Containers: make(map[string]int)}
	var err error
	switch scheme {
	case SchemeNonShared:
		// Each service plans with its own workload and deploys its own
		// exclusive containers, even at shared microservices.
		plan.PerService, err = planAll(copyLoads(loads))
		if err != nil {
			return nil, err
		}
		for _, svc := range sortutil.Keys(plan.PerService) {
			alloc := plan.PerService[svc]
			for ms, n := range alloc.Containers {
				plan.Containers[ms] += n
			}
			plan.ResourceUsage += alloc.ResourceUsage
		}
		return plan, nil

	case SchemeFCFS:
		plan.PerService, err = planAll(FCFSWorkloads(shared, loads))
		if err != nil {
			return nil, err
		}

	case SchemePriority:
		// 1. Initial targets from each service's own workload.
		initial, err := planAll(copyLoads(loads))
		if err != nil {
			return nil, err
		}
		// 2. Priorities from initial targets; 3. final plan from modified
		// cumulative workloads.
		plan.Ranks = AssignPriorities(initial, shared)
		plan.PerService, err = planAll(ModifiedWorkloads(plan.Ranks, loads))
		if err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("multiplex: unknown scheme %v", scheme)
	}

	// Merge (priority/FCFS): shared microservices deploy the max requirement
	// across services; private ones belong to exactly one service. Iterate
	// services and microservices in sorted order so the usage float sum is
	// bit-stable run to run.
	rawMax := make(map[string]float64)
	shareOf := make(map[string]float64)
	for _, svc := range sortutil.Keys(plan.PerService) {
		alloc := plan.PerService[svc]
		for _, ms := range sortutil.Keys(alloc.Containers) {
			n := alloc.Containers[ms]
			if !sharedSet[ms] {
				plan.Containers[ms] += n
				plan.ResourceUsage += alloc.ContainersRaw[ms] * inputs[svc].Shares[ms]
				continue
			}
			if n > plan.Containers[ms] {
				plan.Containers[ms] = n
			}
			if alloc.ContainersRaw[ms] > rawMax[ms] {
				rawMax[ms] = alloc.ContainersRaw[ms]
			}
			shareOf[ms] = inputs[svc].Shares[ms]
		}
	}
	for _, ms := range sortutil.Keys(rawMax) {
		plan.ResourceUsage += rawMax[ms] * shareOf[ms]
	}
	return plan, nil
}

func copyLoads(loads map[string]map[string]float64) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(loads))
	for svc, byMS := range loads {
		m := make(map[string]float64, len(byMS))
		for ms, g := range byMS {
			m[ms] = g
		}
		out[svc] = m
	}
	return out
}
