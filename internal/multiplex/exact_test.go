package multiplex

import (
	"math"
	"testing"
	"testing/quick"

	"erms/internal/stats"
)

// exactFromTheorem builds the 2-service Eq. 13-14 instance of Theorem 1:
// microservices [U, H, P]; service 1 = U + P(γ1), service 2 = H + P(γ1+γ2).
func exactFromTheorem(p Theorem1Params) *ExactProblem {
	return &ExactProblem{
		R: []float64{p.RU, p.RH, p.RP},
		A: [][]float64{
			{p.AU * p.Gamma1, 0, p.AP * p.Gamma1},
			{0, p.AH * p.Gamma2, p.AP * (p.Gamma1 + p.Gamma2)},
		},
		Slack: []float64{p.SLA1 - p.BU - p.BP, p.SLA2 - p.BH - p.BP},
	}
}

func TestExactMatchesGoldenSectionOnTwoServices(t *testing.T) {
	r := stats.NewRNG(3)
	for trial := 0; trial < 40; trial++ {
		p := theoremParams(r)
		want, err := p.PriorityUsage()
		if err != nil {
			continue
		}
		sol, err := exactFromTheorem(p).Solve(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sol.Usage-want)/want > 1e-4 {
			t.Fatalf("trial %d: exact %v vs golden-section %v", trial, sol.Usage, want)
		}
	}
}

func TestExactSingleServiceMatchesClosedForm(t *testing.T) {
	// One service, three microservices: Eq. 5's closed form.
	a := []float64{2.0, 0.5, 1.2}
	rr := []float64{0.3, 0.2, 0.5}
	slack := 10.0
	prob := &ExactProblem{
		R:     rr,
		A:     [][]float64{a},
		Slack: []float64{slack},
	}
	sol, err := prob.Solve(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var root float64
	for i := range a {
		root += math.Sqrt(a[i] * rr[i])
	}
	want := root * root / slack
	if math.Abs(sol.Usage-want)/want > 1e-6 {
		t.Fatalf("usage %v, closed form %v", sol.Usage, want)
	}
	// Constraint binds.
	var lhs float64
	for i := range a {
		lhs += a[i] / sol.N[i]
	}
	if math.Abs(lhs-slack)/slack > 1e-6 {
		t.Fatalf("constraint lhs %v != slack %v", lhs, slack)
	}
}

func TestExactFeasibilityAndOptimality(t *testing.T) {
	// Across random instances: the solution satisfies every constraint and
	// random feasible perturbations cost at least as much.
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 11)
		services := 2 + r.Intn(3)
		micro := 3 + r.Intn(5)
		prob := &ExactProblem{
			R:     make([]float64, micro),
			A:     make([][]float64, services),
			Slack: make([]float64, services),
		}
		for i := range prob.R {
			prob.R[i] = 0.0001 + 0.001*r.Float64()
		}
		for k := range prob.A {
			prob.A[k] = make([]float64, micro)
			for i := range prob.A[k] {
				if r.Float64() < 0.6 {
					prob.A[k][i] = 10 + 500*r.Float64()
				}
			}
			// Ensure non-empty path.
			prob.A[k][r.Intn(micro)] = 10 + 500*r.Float64()
			prob.Slack[k] = 20 + 200*r.Float64()
		}
		sol, err := prob.Solve(0, 0)
		if err != nil {
			return false
		}
		for k := range prob.A {
			var lhs float64
			for i := range prob.A[k] {
				if prob.A[k][i] == 0 {
					continue
				}
				if sol.N[i] <= 0 {
					return false
				}
				lhs += prob.A[k][i] / sol.N[i]
			}
			if lhs > prob.Slack[k]*1.001 {
				return false
			}
		}
		// Perturb: scale all n by 0.99 (violates some binding constraint) or
		// 1.01 (feasible but costs more).
		bigger := 0.0
		for i := range sol.N {
			bigger += sol.N[i] * 1.01 * prob.R[i]
		}
		return bigger >= sol.Usage
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExactBeatsHeuristicUpperBound(t *testing.T) {
	// The exact optimum is never worse than the independent-solve upper
	// bound (Appendix A's construction).
	r := stats.NewRNG(17)
	for trial := 0; trial < 40; trial++ {
		p := theoremParams(r)
		ub, err := p.PriorityUpperBound()
		if err != nil {
			continue
		}
		sol, err := exactFromTheorem(p).Solve(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Usage > ub*(1+1e-6) {
			t.Fatalf("trial %d: exact %v exceeds upper bound %v", trial, sol.Usage, ub)
		}
	}
}

func TestExactValidation(t *testing.T) {
	if _, err := (&ExactProblem{}).Solve(0, 0); err == nil {
		t.Fatal("empty problem accepted")
	}
	bad := &ExactProblem{R: []float64{1}, A: [][]float64{{1}}, Slack: []float64{-1}}
	if _, err := bad.Solve(0, 0); err != ErrExactInfeasible {
		t.Fatalf("err = %v", err)
	}
	ragged := &ExactProblem{R: []float64{1, 2}, A: [][]float64{{1}}, Slack: []float64{1}}
	if _, err := ragged.Solve(0, 0); err == nil {
		t.Fatal("ragged accepted")
	}
	empty := &ExactProblem{R: []float64{1}, A: [][]float64{{0}}, Slack: []float64{1}}
	if _, err := empty.Solve(0, 0); err == nil {
		t.Fatal("empty path accepted")
	}
}
