package multiplex

import (
	"fmt"
	"math"
	"testing"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/parallel"
	"erms/internal/profiling"
	"erms/internal/scaling"
)

// requirePlanBitIdentical fails unless two multi-service plans agree bit for
// bit in every field — the contract of the cached path and of the
// determinism guarantee across worker counts.
func requirePlanBitIdentical(t *testing.T, want, got *Plan, ctx string) {
	t.Helper()
	if want.Scheme != got.Scheme {
		t.Fatalf("%s: scheme %v != %v", ctx, got.Scheme, want.Scheme)
	}
	if math.Float64bits(want.ResourceUsage) != math.Float64bits(got.ResourceUsage) {
		t.Fatalf("%s: usage %v != %v (bit-level)", ctx, got.ResourceUsage, want.ResourceUsage)
	}
	if len(want.Containers) != len(got.Containers) {
		t.Fatalf("%s: %d merged containers != %d", ctx, len(got.Containers), len(want.Containers))
	}
	for ms, n := range want.Containers {
		if got.Containers[ms] != n {
			t.Fatalf("%s: containers[%s] = %d, want %d", ctx, ms, got.Containers[ms], n)
		}
	}
	if len(want.Ranks) != len(got.Ranks) {
		t.Fatalf("%s: ranks size diverged", ctx)
	}
	for ms, bySvc := range want.Ranks {
		for svc, r := range bySvc {
			if got.Ranks[ms][svc] != r {
				t.Fatalf("%s: rank[%s][%s] = %d, want %d", ctx, ms, svc, got.Ranks[ms][svc], r)
			}
		}
	}
	if len(want.PerService) != len(got.PerService) {
		t.Fatalf("%s: per-service size diverged", ctx)
	}
	for svc, wa := range want.PerService {
		ga := got.PerService[svc]
		if ga == nil {
			t.Fatalf("%s: missing per-service alloc %s", ctx, svc)
		}
		if math.Float64bits(wa.ResourceUsage) != math.Float64bits(ga.ResourceUsage) {
			t.Fatalf("%s: %s usage diverged", ctx, svc)
		}
		for ms, v := range wa.Targets {
			if math.Float64bits(ga.Targets[ms]) != math.Float64bits(v) {
				t.Fatalf("%s: %s target[%s] diverged", ctx, svc, ms)
			}
		}
		for ms, v := range wa.ContainersRaw {
			if math.Float64bits(ga.ContainersRaw[ms]) != math.Float64bits(v) {
				t.Fatalf("%s: %s raw[%s] diverged", ctx, svc, ms)
			}
		}
		for ms, v := range wa.Containers {
			if ga.Containers[ms] != v {
				t.Fatalf("%s: %s containers[%s] diverged", ctx, svc, ms)
			}
		}
	}
}

// TestPlanSchemeCachedBitIdentical: for every scheme, the template-cached
// path reproduces the naive PlanScheme bit for bit, on both the cold
// (compile) and warm (hit) window.
func TestPlanSchemeCachedBitIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		inputs, loads, shared := randomSharedInputs(seed)
		for _, scheme := range []Scheme{SchemePriority, SchemeFCFS, SchemeNonShared} {
			want, err := PlanScheme(scheme, inputs, loads, shared)
			if err != nil {
				t.Fatalf("seed %d %v: naive: %v", seed, scheme, err)
			}
			cache := scaling.NewTemplateCache()
			for round := 0; round < 2; round++ {
				got, err := PlanSchemeCached(scheme, inputs, loads, shared, cache)
				if err != nil {
					t.Fatalf("seed %d %v round %d: cached: %v", seed, scheme, round, err)
				}
				requirePlanBitIdentical(t, want, got,
					fmt.Sprintf("seed %d %v round %d", seed, scheme, round))
			}
			if st := cache.Stats(); st.Invalidations != 0 || st.Hits == 0 {
				t.Fatalf("seed %d %v: stats %+v, want hits and no invalidations", seed, scheme, st)
			}
		}
	}
}

// scaleInputs builds the multi-service planner workload over the exact-shape
// Alibaba-scale topology.
func scaleInputs(tb testing.TB, cfg apps.ScaleConfig) (map[string]scaling.Input, map[string]map[string]float64, []string) {
	tb.Helper()
	app := apps.ScaleTopology(cfg)
	cl := cluster.NewPaperCluster()
	threads := make(map[string]int, len(app.Containers))
	shares := make(map[string]float64, len(app.Containers))
	for ms, spec := range app.Containers {
		threads[ms] = spec.Threads
		shares[ms] = cl.DominantShare(spec)
	}
	models := profiling.AnalyticModels(app.Profiles, threads, cluster.DefaultInterference)
	inputs := make(map[string]scaling.Input, len(app.Graphs))
	loads := make(map[string]map[string]float64, len(app.Graphs))
	for _, g := range app.Graphs {
		byMS := make(map[string]float64, g.Len())
		for _, ms := range g.Microservices() {
			byMS[ms] = 9000 * float64(len(g.NodesFor(ms)))
		}
		inputs[g.Service] = scaling.Input{
			Graph:   g,
			SLA:     app.SLAs[g.Service],
			Models:  models,
			Shares:  shares,
			CPUUtil: 0.35,
			MemUtil: 0.25,
		}
		loads[g.Service] = byMS
	}
	return inputs, loads, app.Shared()
}

// TestPlanSchemeByteIdenticalAcrossWorkers pins the parallel determinism
// contract on the scale topology: workers=1 and workers=4 produce
// bit-identical plans, cached and uncached.
func TestPlanSchemeByteIdenticalAcrossWorkers(t *testing.T) {
	inputs, loads, shared := scaleInputs(t, apps.ScaleConfig{
		Seed: 9, Services: 24, MicroservicesPerService: 16, SharingDegree: 6,
	})
	defer parallel.SetWorkers(0)
	run := func(workers int, cache *scaling.TemplateCache) *Plan {
		parallel.SetWorkers(workers)
		p, err := PlanSchemeCached(SchemePriority, inputs, loads, shared, cache)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return p
	}
	naive1 := run(1, nil)
	naive4 := run(4, nil)
	requirePlanBitIdentical(t, naive1, naive4, "naive w1-vs-w4")

	cache := scaling.NewTemplateCache()
	warm := run(4, cache) // cold window compiles
	requirePlanBitIdentical(t, naive1, warm, "cached-cold vs naive")
	cached1 := run(1, cache)
	cached4 := run(4, cache)
	requirePlanBitIdentical(t, naive1, cached1, "cached w1 vs naive")
	requirePlanBitIdentical(t, cached1, cached4, "cached w1-vs-w4")
}

// BenchmarkPlanScale measures full multi-service priority planning (two
// planAll passes + rank assignment + merge) on Alibaba-scale topologies,
// naive versus template-cached.
func BenchmarkPlanScale(b *testing.B) {
	sizes := []apps.ScaleConfig{
		{Seed: 42, Services: 50, MicroservicesPerService: 50, SharingDegree: 10},
		{Seed: 42, Services: 200, MicroservicesPerService: 50, SharingDegree: 10},
	}
	for _, cfg := range sizes {
		inputs, loads, shared := scaleInputs(b, cfg)
		name := fmt.Sprintf("svcs=%d", cfg.Services)
		b.Run(name+"/naive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := PlanScheme(SchemePriority, inputs, loads, shared); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/cached", func(b *testing.B) {
			cache := scaling.NewTemplateCache()
			if _, err := PlanSchemeCached(SchemePriority, inputs, loads, shared, cache); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := PlanSchemeCached(SchemePriority, inputs, loads, shared, cache); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
