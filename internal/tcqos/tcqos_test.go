package tcqos

import (
	"math"
	"testing"

	"erms/internal/sim"
	"erms/internal/stats"
)

func TestFIFOOrderAndLimit(t *testing.T) {
	q := NewFIFO(2)
	if !q.Enqueue(Item{FlowMark: 1}) || !q.Enqueue(Item{FlowMark: 2}) {
		t.Fatal("enqueue failed")
	}
	if q.Enqueue(Item{FlowMark: 3}) {
		t.Fatal("over-limit enqueue accepted")
	}
	it, ok := q.Dequeue()
	if !ok || it.FlowMark != 1 {
		t.Fatalf("dequeue = %+v", it)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	q.Dequeue()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
}

func TestFIFOUnbounded(t *testing.T) {
	q := NewFIFO(0)
	for i := 0; i < 1000; i++ {
		if !q.Enqueue(Item{}) {
			t.Fatal("unbounded queue dropped")
		}
	}
}

func TestPfifoFastStrictBands(t *testing.T) {
	q := NewPfifoFast(0)
	// TOS 2 -> band 2 (lowest), TOS 6 -> band 0 (highest), TOS 0 -> band 1.
	q.Enqueue(Item{FlowMark: 30, TOS: 2})
	q.Enqueue(Item{FlowMark: 10, TOS: 6})
	q.Enqueue(Item{FlowMark: 20, TOS: 0})
	var order []uint32
	for {
		it, ok := q.Dequeue()
		if !ok {
			break
		}
		order = append(order, it.FlowMark)
	}
	if len(order) != 3 || order[0] != 10 || order[1] != 20 || order[2] != 30 {
		t.Fatalf("order = %v", order)
	}
}

func TestPfifoFastLimitAndBandLen(t *testing.T) {
	q := NewPfifoFast(2)
	q.Enqueue(Item{TOS: 6})
	q.Enqueue(Item{TOS: 6})
	if q.Enqueue(Item{TOS: 6}) {
		t.Fatal("limit ignored")
	}
	if q.BandLen(0) != 2 || q.Len() != 2 {
		t.Fatalf("band0=%d len=%d", q.BandLen(0), q.Len())
	}
	// Out-of-range TOS defaults to 0.
	q2 := NewPfifoFast(0)
	q2.Enqueue(Item{TOS: 99})
	if q2.BandLen(DefaultPriomap[0]) != 1 {
		t.Fatal("bad TOS not defaulted")
	}
}

func TestPfifoFastSetPriomap(t *testing.T) {
	q := NewPfifoFast(0)
	var m [16]int
	m[5] = 2
	if err := q.SetPriomap(m); err != nil {
		t.Fatal(err)
	}
	var bad [16]int
	bad[0] = 7
	if err := q.SetPriomap(bad); err == nil {
		t.Fatal("invalid priomap accepted")
	}
}

func TestPrioWithMarkFilter(t *testing.T) {
	filter := MarkFilter(map[uint32]int{100: 0, 200: 1}, 1)
	q, err := NewPrio(2, filter, 0)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(Item{FlowMark: 200})
	q.Enqueue(Item{FlowMark: 999}) // default band 1
	q.Enqueue(Item{FlowMark: 100})
	it, _ := q.Dequeue()
	if it.FlowMark != 100 {
		t.Fatalf("first out = %v, want mark 100 (band 0)", it.FlowMark)
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestPrioValidation(t *testing.T) {
	if _, err := NewPrio(0, func(Item) int { return 0 }, 0); err == nil {
		t.Fatal("zero bands accepted")
	}
	if _, err := NewPrio(2, nil, 0); err == nil {
		t.Fatal("nil classifier accepted")
	}
	// Band clamping.
	q, _ := NewPrio(2, func(Item) int { return 99 }, 0)
	q.Enqueue(Item{FlowMark: 1})
	if it, ok := q.Dequeue(); !ok || it.FlowMark != 1 {
		t.Fatal("clamped band lost the item")
	}
	q2, _ := NewPrio(2, func(Item) int { return -5 }, 0)
	q2.Enqueue(Item{FlowMark: 2})
	if it, ok := q2.Dequeue(); !ok || it.FlowMark != 2 {
		t.Fatal("negative band lost the item")
	}
}

func TestDeltaPrioDistribution(t *testing.T) {
	filter := MarkFilter(map[uint32]int{1: 0, 2: 1}, 1)
	q, err := NewDeltaPrio(2, filter, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	hi := 0
	for i := 0; i < n; i++ {
		q.Enqueue(Item{FlowMark: 1})
		q.Enqueue(Item{FlowMark: 2})
		it, ok := q.Dequeue()
		if !ok {
			t.Fatal("dequeue failed")
		}
		if it.FlowMark == 1 {
			hi++
		}
		// Drain the remainder to reset.
		q.Dequeue()
	}
	frac := float64(hi) / n
	if math.Abs(frac-0.8) > 0.01 {
		t.Fatalf("high-priority share = %v, want ~0.8", frac)
	}
}

func TestDeltaPrioStrictWhenZero(t *testing.T) {
	filter := MarkFilter(map[uint32]int{1: 0, 2: 1}, 1)
	q, _ := NewDeltaPrio(2, filter, 0, 1)
	for i := 0; i < 100; i++ {
		q.Enqueue(Item{FlowMark: 2})
		q.Enqueue(Item{FlowMark: 1})
		it, _ := q.Dequeue()
		if it.FlowMark != 1 {
			t.Fatal("strict priority violated at delta 0")
		}
		q.Dequeue()
	}
	if _, err := NewDeltaPrio(2, filter, 1.0, 1); err == nil {
		t.Fatal("delta 1 accepted")
	}
}

func TestDeltaPrioEmpty(t *testing.T) {
	q, _ := NewDeltaPrio(2, MarkFilter(nil, 0), 0.05, 1)
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
	if q.Len() != 0 {
		t.Fatal("len != 0")
	}
}

func TestServiceMarksStable(t *testing.T) {
	sm := NewServiceMarks()
	a := sm.Mark("svc-a")
	b := sm.Mark("svc-b")
	if a == b {
		t.Fatal("marks collide")
	}
	if sm.Mark("svc-a") != a {
		t.Fatal("marks not stable")
	}
	table := sm.BandTable(map[string]int{"svc-a": 0, "svc-b": 1})
	if table[a] != 0 || table[b] != 1 {
		t.Fatalf("band table = %v", table)
	}
}

// TestDeltaPrioMatchesSimPolicy verifies that the tc-based enforcement and
// the simulator's scheduling policy implement the same discipline: for the
// same two-class workload and δ, the high-priority service probability
// matches sim.PriorityPolicy.
func TestDeltaPrioMatchesSimPolicy(t *testing.T) {
	const delta = 0.1
	r := stats.NewRNG(5)
	pol := sim.PriorityPolicy{Delta: delta}
	queue := []*sim.Job{{Priority: 1}, {Priority: 0}}
	simHi := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if queue[pol.Pick(queue, r)].Priority == 0 {
			simHi++
		}
	}
	filter := MarkFilter(map[uint32]int{1: 0, 2: 1}, 1)
	q, _ := NewDeltaPrio(2, filter, delta, 9)
	tcHi := 0
	for i := 0; i < n; i++ {
		q.Enqueue(Item{FlowMark: 2})
		q.Enqueue(Item{FlowMark: 1})
		it, _ := q.Dequeue()
		if it.FlowMark == 1 {
			tcHi++
		}
		q.Dequeue()
	}
	if diff := math.Abs(float64(simHi)-float64(tcHi)) / n; diff > 0.01 {
		t.Fatalf("sim policy %.3f vs tc qdisc %.3f", float64(simHi)/n, float64(tcHi)/n)
	}
}
