// Package tcqos models the Linux traffic-control machinery Erms uses to
// enforce priority scheduling in each container's network layer (§5.5): the
// pfifo_fast queuing discipline, a configurable prio qdisc with filters
// that map flow marks to bands, and the δ-probabilistic band selection Erms
// layers on top so low-priority services are not starved (§5.3.2).
//
// In the real system Erms binds a virtual network interface to each
// container and attaches these qdiscs to its ingress; here the same
// disciplines drive the simulated containers' request queues, so the
// enforcement path is exercised end to end.
package tcqos

import (
	"errors"

	"erms/internal/stats"
)

// Item is one queued unit (a request or packet) carrying a flow mark and an
// optional traffic-class hint in [0, 15] (the Linux TOS→priority range).
type Item struct {
	FlowMark uint32
	TOS      int
	Payload  any
}

// Qdisc is a queuing discipline: enqueue may drop (returning false) and
// dequeue returns items in discipline order.
type Qdisc interface {
	Enqueue(Item) bool
	Dequeue() (Item, bool)
	Len() int
}

// FIFO is a bounded first-in-first-out queue. Limit <= 0 means unbounded.
type FIFO struct {
	limit int
	items []Item
}

// NewFIFO creates a FIFO with the given capacity (<= 0 for unbounded).
func NewFIFO(limit int) *FIFO { return &FIFO{limit: limit} }

// Enqueue appends the item; it returns false (tail drop) when full.
func (q *FIFO) Enqueue(it Item) bool {
	if q.limit > 0 && len(q.items) >= q.limit {
		return false
	}
	q.items = append(q.items, it)
	return true
}

// Dequeue removes the oldest item.
func (q *FIFO) Dequeue() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

// Len returns the number of queued items.
func (q *FIFO) Len() int { return len(q.items) }

// DefaultPriomap is Linux's pfifo_fast priority→band map (man tc-pfifo_fast):
// TOS priorities 0-15 mapped onto bands 0 (highest) to 2 (lowest).
var DefaultPriomap = [16]int{1, 2, 2, 2, 1, 2, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1}

// PfifoFast is the Linux default qdisc: three strict-priority bands with a
// shared packet limit, band chosen by the item's TOS via the priomap.
type PfifoFast struct {
	bands   [3]*FIFO
	priomap [16]int
	limit   int
	queued  int
}

// NewPfifoFast creates a pfifo_fast qdisc with the Linux default priomap
// and the given total packet limit (<= 0 for unbounded).
func NewPfifoFast(limit int) *PfifoFast {
	q := &PfifoFast{priomap: DefaultPriomap, limit: limit}
	for i := range q.bands {
		q.bands[i] = NewFIFO(0)
	}
	return q
}

// SetPriomap overrides the priority→band map; bands must be in [0, 2].
func (q *PfifoFast) SetPriomap(m [16]int) error {
	for _, b := range m {
		if b < 0 || b > 2 {
			return errors.New("tcqos: priomap band out of range")
		}
	}
	q.priomap = m
	return nil
}

// Enqueue places the item in the band selected by its TOS.
func (q *PfifoFast) Enqueue(it Item) bool {
	if q.limit > 0 && q.queued >= q.limit {
		return false
	}
	tos := it.TOS
	if tos < 0 || tos > 15 {
		tos = 0
	}
	q.bands[q.priomap[tos]].Enqueue(it)
	q.queued++
	return true
}

// Dequeue serves bands in strict priority order: band 0 first.
func (q *PfifoFast) Dequeue() (Item, bool) {
	for _, b := range q.bands {
		if it, ok := b.Dequeue(); ok {
			q.queued--
			return it, true
		}
	}
	return Item{}, false
}

// Len returns the total queued items.
func (q *PfifoFast) Len() int { return q.queued }

// BandLen returns the occupancy of one band.
func (q *PfifoFast) BandLen(band int) int { return q.bands[band].Len() }

// Filter maps an item to a band index; Erms installs one filter per flow
// mark (per service) on each shared microservice's interface.
type Filter func(Item) int

// MarkFilter builds a filter from a flow-mark→band table, with a default
// band for unknown marks.
func MarkFilter(bands map[uint32]int, def int) Filter {
	return func(it Item) int {
		if b, ok := bands[it.FlowMark]; ok {
			return b
		}
		return def
	}
}

// Prio is a configurable-band strict-priority qdisc with a classifier
// filter (tc's `prio` qdisc with `handle ... fw` filters).
type Prio struct {
	bands    []*FIFO
	classify Filter
	queued   int
	limit    int
}

// NewPrio creates a prio qdisc with n bands and the given classifier.
func NewPrio(n int, classify Filter, limit int) (*Prio, error) {
	if n < 1 {
		return nil, errors.New("tcqos: prio needs at least one band")
	}
	if classify == nil {
		return nil, errors.New("tcqos: prio needs a classifier")
	}
	q := &Prio{classify: classify, limit: limit}
	for i := 0; i < n; i++ {
		q.bands = append(q.bands, NewFIFO(0))
	}
	return q, nil
}

// Enqueue classifies the item into its band (clamped to the band range).
func (q *Prio) Enqueue(it Item) bool {
	if q.limit > 0 && q.queued >= q.limit {
		return false
	}
	b := q.classify(it)
	if b < 0 {
		b = 0
	}
	if b >= len(q.bands) {
		b = len(q.bands) - 1
	}
	q.bands[b].Enqueue(it)
	q.queued++
	return true
}

// Dequeue serves strictly by band order.
func (q *Prio) Dequeue() (Item, bool) {
	for _, b := range q.bands {
		if it, ok := b.Dequeue(); ok {
			q.queued--
			return it, true
		}
	}
	return Item{}, false
}

// Len returns the total queued items.
func (q *Prio) Len() int { return q.queued }

// DeltaPrio wraps a band set with Erms' probabilistic priority dequeue
// (§5.3.2): among non-empty bands ordered best-first, band k is served with
// probability δ^k·(1−δ), the last one with the residual — δ=0 degenerates
// to strict priority. This is the discipline the real system realizes with
// tc plus per-flow marks.
type DeltaPrio struct {
	prio  *Prio
	delta float64
	rng   *stats.RNG
}

// NewDeltaPrio builds the probabilistic-priority qdisc.
func NewDeltaPrio(bands int, classify Filter, delta float64, seed uint64) (*DeltaPrio, error) {
	if delta < 0 || delta >= 1 {
		return nil, errors.New("tcqos: delta must be in [0, 1)")
	}
	p, err := NewPrio(bands, classify, 0)
	if err != nil {
		return nil, err
	}
	return &DeltaPrio{prio: p, delta: delta, rng: stats.NewRNG(seed)}, nil
}

// Enqueue delegates to the underlying prio bands.
func (q *DeltaPrio) Enqueue(it Item) bool { return q.prio.Enqueue(it) }

// Len returns the total queued items.
func (q *DeltaPrio) Len() int { return q.prio.queued }

// Dequeue samples the band geometrically among the non-empty bands.
func (q *DeltaPrio) Dequeue() (Item, bool) {
	var nonEmpty []*FIFO
	for _, b := range q.prio.bands {
		if b.Len() > 0 {
			nonEmpty = append(nonEmpty, b)
		}
	}
	if len(nonEmpty) == 0 {
		return Item{}, false
	}
	idx := len(nonEmpty) - 1
	u := q.rng.Float64()
	acc := 0.0
	for k := 0; k < len(nonEmpty)-1; k++ {
		p := (1 - q.delta) * pow(q.delta, k)
		acc += p
		if u < acc {
			idx = k
			break
		}
	}
	it, ok := nonEmpty[idx].Dequeue()
	if ok {
		q.prio.queued--
	}
	return it, ok
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// ServiceMarks assigns stable flow marks to services and produces the
// mark→band table from Erms' priority ranks, mirroring how the deployment
// module installs tc filters on a shared microservice's virtual interface.
type ServiceMarks struct {
	marks map[string]uint32
	next  uint32
}

// NewServiceMarks creates an empty mark registry.
func NewServiceMarks() *ServiceMarks {
	return &ServiceMarks{marks: make(map[string]uint32), next: 1}
}

// Mark returns the (stable) flow mark of a service, assigning one on first
// use.
func (sm *ServiceMarks) Mark(service string) uint32 {
	if m, ok := sm.marks[service]; ok {
		return m
	}
	m := sm.next
	sm.next++
	sm.marks[service] = m
	return m
}

// BandTable converts per-service priority ranks into a flow-mark→band map
// for MarkFilter.
func (sm *ServiceMarks) BandTable(ranks map[string]int) map[uint32]int {
	out := make(map[uint32]int, len(ranks))
	for svc, rank := range ranks {
		out[sm.Mark(svc)] = rank
	}
	return out
}
