package apps

import (
	"erms/internal/graph"
	"erms/internal/sim"
	"erms/internal/workload"
)

// mediaWorkers are the mid-tier handlers of the compose-review pipeline;
// each is backed by a cache and a database, giving 2 + 12*3 = 38 unique
// microservices in a single online service (§6.1: Media Service has 38
// microservices and 1 service, hence no sharing).
var mediaWorkers = []struct {
	name   string
	baseMs float64
	stage  int
}{
	{"unique-id-media", 0.4, 0},
	{"movie-id", 0.9, 0},
	{"text-review", 1.6, 0},
	{"user-review", 1.1, 0},
	{"rating", 0.8, 0},
	{"review-storage", 1.8, 1},
	{"movie-review", 1.2, 2},
	{"user-review-update", 1.2, 2},
	{"movie-info", 1.4, 2},
	{"cast-info", 1.3, 2},
	{"plot", 1.0, 2},
	{"page", 1.5, 2},
}

// MediaService builds the Media Service application: 38 unique
// microservices in one compose-review service.
func MediaService() *App {
	g := graph.New("compose-review", "nginx-media")
	cr := g.AddStage(g.Root, "compose-review")[0]

	profiles := map[string]sim.ServiceProfile{
		"nginx-media":    {BaseMs: 0.3, CV: 0.3},
		"compose-review": {BaseMs: 1.3, CV: 0.5},
	}

	// Group workers into their pipeline stages.
	byStage := make(map[int][]string)
	maxStage := 0
	for _, w := range mediaWorkers {
		byStage[w.stage] = append(byStage[w.stage], w.name)
		if w.stage > maxStage {
			maxStage = w.stage
		}
		profiles[w.name] = sim.ServiceProfile{BaseMs: w.baseMs, CV: 0.5}
		profiles[w.name+"-memcached"] = sim.ServiceProfile{BaseMs: 0.3, CV: 0.3}
		profiles[w.name+"-mongo"] = sim.ServiceProfile{BaseMs: 2.2, CV: 0.6}
	}
	for s := 0; s <= maxStage; s++ {
		nodes := g.AddStage(cr, byStage[s]...)
		for _, n := range nodes {
			g.AddSequential(n, n.Microservice+"-memcached", n.Microservice+"-mongo")
		}
	}

	slas := map[string]workload.SLA{
		"compose-review": workload.P95SLA("compose-review", 200),
	}
	return newApp("media-service", []*graph.Graph{g}, profiles, slas)
}
