package apps

import (
	"fmt"
	"testing"
)

func TestScaleTopologyExactShape(t *testing.T) {
	cases := []ScaleConfig{
		{Seed: 1, Services: 20, MicroservicesPerService: 10, SharingDegree: 4},
		{Seed: 2, Services: 30, MicroservicesPerService: 7, SharingDegree: 5, MaxStageWidth: 2},
		{Seed: 3, Services: 8, MicroservicesPerService: 12, SharingDegree: 8},  // degree == services
		{Seed: 4, Services: 10, MicroservicesPerService: 5, SharingDegree: 3}, // remainder pool entry
	}
	for _, cfg := range cases {
		app := ScaleTopology(cfg)
		if err := app.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(app.Graphs) != cfg.Services {
			t.Fatalf("%s: %d services, want %d", app.Name, len(app.Graphs), cfg.Services)
		}
		for _, g := range app.Graphs {
			if g.Len() != cfg.MicroservicesPerService {
				t.Fatalf("%s/%s: %d nodes, want %d", app.Name, g.Service, g.Len(), cfg.MicroservicesPerService)
			}
		}
		slots := cfg.Services * (cfg.MicroservicesPerService - 1)
		wantPool := (slots + cfg.SharingDegree - 1) / cfg.SharingDegree
		deg := app.SharingDegree()
		var poolSeen, entries int
		for ms, d := range deg {
			if len(ms) >= 5 && ms[:5] == "pool-" {
				poolSeen++
				// Every pool microservice is shared by exactly SharingDegree
				// services, except the final remainder entry which may carry
				// fewer (but at least one).
				if d != cfg.SharingDegree {
					if rem := slots % cfg.SharingDegree; rem != 0 && d == rem && ms == deg_lastPool(wantPool) {
						continue
					}
					t.Fatalf("%s: %s shared by %d services, want %d", app.Name, ms, d, cfg.SharingDegree)
				}
			} else {
				entries++
				if d != 1 {
					t.Fatalf("%s: entry %s shared by %d services", app.Name, ms, d)
				}
			}
		}
		if poolSeen != wantPool {
			t.Fatalf("%s: %d pool microservices, want %d", app.Name, poolSeen, wantPool)
		}
		if entries != cfg.Services {
			t.Fatalf("%s: %d private entries, want %d", app.Name, entries, cfg.Services)
		}
	}
}

// deg_lastPool names the final (remainder-absorbing) pool microservice.
func deg_lastPool(poolSize int) string {
	return fmt.Sprintf("pool-%05d", poolSize-1)
}

func TestScaleTopologyDeterministic(t *testing.T) {
	cfg := ScaleConfig{Seed: 7, Services: 12, MicroservicesPerService: 9, SharingDegree: 4}
	a, b := ScaleTopology(cfg), ScaleTopology(cfg)
	if a.Name != b.Name || len(a.Graphs) != len(b.Graphs) {
		t.Fatal("shape diverged between identical configs")
	}
	for i := range a.Graphs {
		if a.Graphs[i].DOT() != b.Graphs[i].DOT() {
			t.Fatalf("graph %d structure diverged", i)
		}
	}
	for ms, p := range a.Profiles {
		if q, ok := b.Profiles[ms]; !ok || p != q {
			t.Fatalf("profile %s diverged", ms)
		}
	}
	for svc, s := range a.SLAs {
		if b.SLAs[svc] != s {
			t.Fatalf("SLA %s diverged", svc)
		}
	}
}

func TestScaleTopologyDefaults(t *testing.T) {
	app := ScaleTopology(ScaleConfig{Seed: 1})
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(app.Graphs) != 100 {
		t.Fatalf("default services = %d, want 100", len(app.Graphs))
	}
	if app.Graphs[0].Len() != 50 {
		t.Fatalf("default graph size = %d, want 50", app.Graphs[0].Len())
	}
}
