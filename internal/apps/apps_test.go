package apps

import (
	"strings"
	"testing"

	"erms/internal/graph"
	"erms/internal/workload"
)

func TestSocialNetworkShape(t *testing.T) {
	a := SocialNetwork()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Microservices()); got != 36 {
		t.Fatalf("unique microservices = %d, want 36 (§6.1)", got)
	}
	if got := len(a.Services()); got != 3 {
		t.Fatalf("services = %d, want 3", got)
	}
	shared := a.Shared()
	if len(shared) != 3 {
		t.Fatalf("shared microservices = %v, want 3 (§6.1)", shared)
	}
	// The shared chain is post-storage and its backends.
	want := map[string]bool{"post-storage": true, "post-storage-memcached": true, "post-storage-mongo": true}
	for _, ms := range shared {
		if !want[ms] {
			t.Fatalf("unexpected shared microservice %s", ms)
		}
	}
	// post-storage is in all three graphs.
	if a.SharingDegree()["post-storage"] != 3 {
		t.Fatalf("post-storage degree = %d", a.SharingDegree()["post-storage"])
	}
}

func TestMediaServiceShape(t *testing.T) {
	a := MediaService()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Microservices()); got != 38 {
		t.Fatalf("unique microservices = %d, want 38 (§6.1)", got)
	}
	if got := len(a.Services()); got != 1 {
		t.Fatalf("services = %d, want 1", got)
	}
	if got := a.Shared(); len(got) != 0 {
		t.Fatalf("single-service app cannot share: %v", got)
	}
}

func TestHotelReservationShape(t *testing.T) {
	a := HotelReservation()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Microservices()); got != 15 {
		t.Fatalf("unique microservices = %d, want 15 (§6.1)", got)
	}
	if got := len(a.Services()); got != 4 {
		t.Fatalf("services = %d, want 4", got)
	}
	if got := a.Shared(); len(got) != 3 {
		t.Fatalf("shared = %v, want 3 (§6.1)", got)
	}
	if a.SharingDegree()["frontend"] != 4 {
		t.Fatalf("frontend degree = %d", a.SharingDegree()["frontend"])
	}
}

func TestAppAccessors(t *testing.T) {
	a := HotelReservation()
	if a.Graph("search") == nil || a.Graph("nope") != nil {
		t.Fatal("Graph lookup broken")
	}
	for _, svc := range a.Services() {
		if err := a.SLAs[svc].Validate(); err != nil {
			t.Fatalf("SLA for %s: %v", svc, err)
		}
	}
	for _, ms := range a.Microservices() {
		if a.Containers[ms].Threads <= 0 {
			t.Fatalf("container spec missing for %s", ms)
		}
	}
}

func TestValidateDetectsProblems(t *testing.T) {
	a := HotelReservation()
	delete(a.Profiles, "search")
	if err := a.Validate(); err == nil {
		t.Fatal("missing profile accepted")
	}
	b := HotelReservation()
	delete(b.SLAs, "login")
	if err := b.Validate(); err == nil {
		t.Fatal("missing SLA accepted")
	}
	c := HotelReservation()
	delete(c.Containers, "user")
	if err := c.Validate(); err == nil {
		t.Fatal("missing container spec accepted")
	}
	d := &App{Name: "empty"}
	if err := d.Validate(); err == nil {
		t.Fatal("empty app accepted")
	}
}

func TestAlibabaTaobaoScale(t *testing.T) {
	a := Alibaba(TaobaoConfig(1))
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Services()); got != 500 {
		t.Fatalf("services = %d", got)
	}
	// Average graph size ~50.
	total := 0
	for _, g := range a.Graphs {
		total += g.Len()
	}
	avg := float64(total) / float64(len(a.Graphs))
	if avg < 35 || avg > 70 {
		t.Fatalf("average graph size = %v, want ~50", avg)
	}
	// 300+ shared microservices (§6.5).
	if got := len(a.Shared()); got < 300 {
		t.Fatalf("shared microservices = %d, want 300+", got)
	}
}

func TestAlibabaDeterministic(t *testing.T) {
	a := Alibaba(AlibabaConfig{Seed: 7, Services: 20, MeanGraphSize: 20})
	b := Alibaba(AlibabaConfig{Seed: 7, Services: 20, MeanGraphSize: 20})
	if len(a.Microservices()) != len(b.Microservices()) {
		t.Fatal("generator not deterministic")
	}
	for i, g := range a.Graphs {
		if g.Len() != b.Graphs[i].Len() {
			t.Fatalf("graph %d size differs", i)
		}
	}
	c := Alibaba(AlibabaConfig{Seed: 8, Services: 20, MeanGraphSize: 20})
	if len(a.Microservices()) == len(c.Microservices()) {
		// Sizes could coincide, but node-for-node equality should not hold;
		// compare total nodes as a cheap proxy.
		ta, tc := 0, 0
		for i := range a.Graphs {
			ta += a.Graphs[i].Len()
			tc += c.Graphs[i].Len()
		}
		if ta == tc {
			t.Fatal("different seeds produced identical apps")
		}
	}
}

func TestAlibabaSharingHeavyTail(t *testing.T) {
	// At the Fig. 2 scale (reduced), a substantial fraction of microservices
	// must be shared by >100 services.
	cfg := Fig2Config(3)
	cfg.Services = 400 // keep the test fast; threshold scales proportionally
	cfg.MeanGraphSize = 150
	cfg.PoolSize = 800
	a := Alibaba(cfg)
	deg := a.SharingDegree()
	over := 0
	for _, d := range deg {
		if d > 40 { // 10% of services, matching >100-of-1000 proportionally
			over++
		}
	}
	frac := float64(over) / float64(len(deg))
	if frac < 0.2 {
		t.Fatalf("heavy-sharing fraction = %v (%d of %d), want >= 0.2", frac, over, len(deg))
	}
}

func TestAlibabaSLAsValid(t *testing.T) {
	a := Alibaba(AlibabaConfig{Seed: 5, Services: 30, MeanGraphSize: 15})
	for svc, sla := range a.SLAs {
		if err := sla.Validate(); err != nil {
			t.Fatalf("%s: %v", svc, err)
		}
		if sla.Threshold < 100 || sla.Threshold > 300 {
			t.Fatalf("%s threshold = %v", svc, sla.Threshold)
		}
	}
}

func TestSLADefaultsAreValid(t *testing.T) {
	for _, a := range []*App{SocialNetwork(), MediaService(), HotelReservation()} {
		for svc, sla := range a.SLAs {
			if err := sla.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", a.Name, svc, err)
			}
			if sla.Percentile != 0.95 {
				t.Fatalf("%s/%s percentile = %v", a.Name, svc, sla.Percentile)
			}
		}
	}
	_ = workload.SLA{}
}

func TestTopologyStats(t *testing.T) {
	a := HotelReservation()
	st := a.Stats()
	if st.Services != 4 || st.Microservices != 15 || st.Shared != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxSharingDegree != 4 { // frontend in all four services
		t.Fatalf("max sharing = %d", st.MaxSharingDegree)
	}
	if st.MaxFanOut < 2 { // search fans out to geo+rate
		t.Fatalf("max fanout = %d", st.MaxFanOut)
	}
	if st.MeanGraphSize <= 1 || st.MaxDepth < 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty string")
	}
}

func TestReport(t *testing.T) {
	rep := SocialNetwork().Report()
	for _, want := range []string{"social-network", "compose-post", "sharing-degree histogram", "3 -> 3"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestValidateAgainstPaper(t *testing.T) {
	if err := ValidateAgainstPaper(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyEdgePolicy(t *testing.T) {
	a := HotelReservation()
	// Pin one node first: the blanket application must not overwrite it.
	pinned := a.Graphs[0].Root
	pinned.SetPolicy(graph.EdgePolicy{TimeoutMs: 7})

	a.ApplyEdgePolicy(graph.EdgePolicy{TimeoutMs: 30, MaxAttempts: 2})
	if pinned.Policy.TimeoutMs != 7 {
		t.Fatalf("blanket policy overwrote a pinned edge: %+v", pinned.Policy)
	}
	for _, g := range a.Graphs {
		for _, n := range g.PreOrder() {
			if n.Policy == nil {
				t.Fatalf("%s/%s has no policy after ApplyEdgePolicy", g.Service, n.Microservice)
			}
			if n != pinned && (n.Policy.TimeoutMs != 30 || n.Policy.MaxAttempts != 2) {
				t.Fatalf("%s/%s has wrong policy: %+v", g.Service, n.Microservice, n.Policy)
			}
		}
	}
}
