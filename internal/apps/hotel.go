package apps

import (
	"erms/internal/graph"
	"erms/internal/sim"
	"erms/internal/workload"
)

// HotelReservation builds the Hotel Reservation application: 15 unique
// microservices across 4 online services (search, recommend, reserve,
// login), with 3 shared microservices (frontend, profile, user) — matching
// the §6.1 application shape.
func HotelReservation() *App {
	// --- search ---------------------------------------------------------
	search := graph.New("search", "frontend")
	s := search.AddStage(search.Root, "search")[0]
	gr := search.AddStage(s, "geo", "rate")
	search.AddSequential(gr[0], "geo-memcached", "geo-mongo")
	search.AddSequential(gr[1], "rate-memcached", "rate-mongo")
	search.AddStage(s, "profile")

	// --- recommend -------------------------------------------------------
	recommend := graph.New("recommend", "frontend")
	r := recommend.AddStage(recommend.Root, "recommend")[0]
	recommend.AddSequential(r, "recommend-memcached", "recommend-mongo")
	recommend.AddStage(r, "profile")

	// --- reserve ----------------------------------------------------------
	reserve := graph.New("reserve", "frontend")
	rv := reserve.AddStage(reserve.Root, "reserve")[0]
	reserve.AddSequential(rv, "reserve-mongo")
	reserve.AddStage(rv, "user")

	// --- login -------------------------------------------------------------
	login := graph.New("login", "frontend")
	login.AddStage(login.Root, "user")

	profiles := map[string]sim.ServiceProfile{
		"frontend":            {BaseMs: 0.4, CV: 0.3},
		"search":              {BaseMs: 1.8, CV: 0.5},
		"geo":                 {BaseMs: 1.2, CV: 0.5},
		"geo-memcached":       {BaseMs: 0.3, CV: 0.3},
		"geo-mongo":           {BaseMs: 2.0, CV: 0.6},
		"rate":                {BaseMs: 1.4, CV: 0.5},
		"rate-memcached":      {BaseMs: 0.3, CV: 0.3},
		"rate-mongo":          {BaseMs: 2.1, CV: 0.6},
		"profile":             {BaseMs: 2.6, CV: 0.6}, // shared, storage inlined
		"recommend":           {BaseMs: 1.5, CV: 0.5},
		"recommend-memcached": {BaseMs: 0.3, CV: 0.3},
		"recommend-mongo":     {BaseMs: 2.2, CV: 0.6},
		"reserve":             {BaseMs: 1.7, CV: 0.5},
		"reserve-mongo":       {BaseMs: 2.5, CV: 0.6},
		"user":                {BaseMs: 1.0, CV: 0.4}, // shared, storage inlined
	}

	slas := map[string]workload.SLA{
		"search":    workload.P95SLA("search", 150),
		"recommend": workload.P95SLA("recommend", 150),
		"reserve":   workload.P95SLA("reserve", 200),
		"login":     workload.P95SLA("login", 100),
	}
	return newApp("hotel-reservation",
		[]*graph.Graph{search, recommend, reserve, login}, profiles, slas)
}
