package apps

import (
	"erms/internal/graph"
	"erms/internal/sim"
	"erms/internal/workload"
)

// SocialNetwork builds the Social Network application: 36 unique
// microservices, 3 online services (compose-post, home-timeline,
// user-timeline), and 3 shared microservices — the post-storage chain that
// every service reads or writes (§6.1).
//
// Topology follows DeathStarBench's social network: ComposePost fans out to
// text/user/media/unique-id handlers in parallel, persists through
// post-storage, then updates the home and user timelines; the two read
// services fetch timeline indices from their caches and hydrate posts from
// the shared post-storage chain.
func SocialNetwork() *App {
	// --- compose-post -------------------------------------------------
	compose := graph.New("compose-post", "nginx-compose")
	cp := compose.AddStage(compose.Root, "compose-post")[0]
	fan := compose.AddStage(cp, "unique-id", "text", "user", "media")
	text, user, media := fan[1], fan[2], fan[3]
	tf := compose.AddStage(text, "url-shorten", "user-mention")
	compose.AddStage(tf[0], "url-shorten-mongo")
	compose.AddSequential(tf[1], "user-mention-memcached", "user-mention-mongo")
	compose.AddSequential(user, "user-memcached", "user-mongo")
	compose.AddSequential(media, "media-memcached", "media-mongo")
	ps := compose.AddStage(cp, "post-storage")[0]
	compose.AddSequential(ps, "post-storage-memcached", "post-storage-mongo")
	writes := compose.AddStage(cp, "write-home-timeline", "write-user-timeline")
	wht, wut := writes[0], writes[1]
	sg := compose.AddStage(wht, "social-graph")[0]
	compose.AddSequential(sg, "social-graph-redis", "social-graph-mongo")
	compose.AddStage(wht, "home-timeline-queue")
	compose.AddStage(wut, "user-timeline-queue")

	// --- home-timeline ------------------------------------------------
	home := graph.New("home-timeline", "nginx-home")
	ht := home.AddStage(home.Root, "home-timeline")[0]
	home.AddSequential(ht, "home-timeline-redis")
	ps2 := home.AddStage(ht, "post-storage")[0]
	home.AddSequential(ps2, "post-storage-memcached", "post-storage-mongo")
	mf := home.AddStage(ht, "media-frontend")[0]
	home.AddSequential(mf, "media-cache", "media-store")

	// --- user-timeline ------------------------------------------------
	userTL := graph.New("user-timeline", "nginx-user")
	auth := userTL.AddStage(userTL.Root, "auth")[0]
	ut := userTL.AddStage(auth, "user-timeline")[0]
	userTL.AddStage(ut, "user-timeline-redis", "user-timeline-mongo")
	ps3 := userTL.AddStage(ut, "post-storage")[0]
	userTL.AddSequential(ps3, "post-storage-memcached", "post-storage-mongo")

	profiles := map[string]sim.ServiceProfile{
		"nginx-compose":          {BaseMs: 0.3, CV: 0.3},
		"nginx-home":             {BaseMs: 0.3, CV: 0.3},
		"nginx-user":             {BaseMs: 0.3, CV: 0.3},
		"compose-post":           {BaseMs: 1.2, CV: 0.5},
		"unique-id":              {BaseMs: 0.4, CV: 0.3},
		"text":                   {BaseMs: 1.8, CV: 0.5},
		"url-shorten":            {BaseMs: 0.9, CV: 0.4},
		"url-shorten-mongo":      {BaseMs: 2.2, CV: 0.6},
		"user-mention":           {BaseMs: 0.8, CV: 0.4},
		"user-mention-memcached": {BaseMs: 0.3, CV: 0.3},
		"user-mention-mongo":     {BaseMs: 2.0, CV: 0.6},
		"user":                   {BaseMs: 0.9, CV: 0.4},
		"user-memcached":         {BaseMs: 0.3, CV: 0.3},
		"user-mongo":             {BaseMs: 2.1, CV: 0.6},
		"media":                  {BaseMs: 2.5, CV: 0.6},
		"media-memcached":        {BaseMs: 0.4, CV: 0.3},
		"media-mongo":            {BaseMs: 3.0, CV: 0.6},
		"post-storage":           {BaseMs: 1.5, CV: 0.5},
		"post-storage-memcached": {BaseMs: 0.3, CV: 0.3},
		"post-storage-mongo":     {BaseMs: 2.4, CV: 0.6},
		"write-home-timeline":    {BaseMs: 1.0, CV: 0.4},
		"write-user-timeline":    {BaseMs: 1.0, CV: 0.4},
		"social-graph":           {BaseMs: 1.4, CV: 0.5},
		"social-graph-redis":     {BaseMs: 0.4, CV: 0.3},
		"social-graph-mongo":     {BaseMs: 2.2, CV: 0.6},
		"home-timeline-queue":    {BaseMs: 0.6, CV: 0.4},
		"user-timeline-queue":    {BaseMs: 0.6, CV: 0.4},
		"home-timeline":          {BaseMs: 1.6, CV: 0.5},
		"home-timeline-redis":    {BaseMs: 0.4, CV: 0.3},
		"media-frontend":         {BaseMs: 1.2, CV: 0.5},
		"media-cache":            {BaseMs: 0.4, CV: 0.3},
		"media-store":            {BaseMs: 2.8, CV: 0.6},
		"auth":                   {BaseMs: 0.7, CV: 0.4},
		// user-timeline is deliberately the most workload-sensitive
		// microservice (largest base time): the motivating example of Fig. 4
		// contrasts its sensitivity against post-storage's.
		"user-timeline":       {BaseMs: 4.0, CV: 0.7},
		"user-timeline-redis": {BaseMs: 0.4, CV: 0.3},
		"user-timeline-mongo": {BaseMs: 2.3, CV: 0.6},
	}

	slas := map[string]workload.SLA{
		"compose-post":  workload.P95SLA("compose-post", 200),
		"home-timeline": workload.P95SLA("home-timeline", 150),
		"user-timeline": workload.P95SLA("user-timeline", 150),
	}
	return newApp("social-network", []*graph.Graph{compose, home, userTL}, profiles, slas)
}
