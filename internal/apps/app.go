// Package apps defines the benchmark applications used throughout the
// evaluation: hand-built dependency-graph topologies equivalent to
// DeathStarBench's Social Network, Media Service, and Hotel Reservation
// applications (with the paper's microservice/service/shared-microservice
// counts, §6.1), plus a synthetic generator matching the shape statistics of
// the Alibaba/Taobao production traces (Fig. 2, §6.5).
package apps

import (
	"fmt"
	"sort"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/sim"
	"erms/internal/workload"
)

// App bundles everything needed to deploy and drive one benchmark
// application.
type App struct {
	Name string
	// Graphs holds one dependency graph per online service.
	Graphs []*graph.Graph
	// Profiles gives the intrinsic service time of each microservice.
	Profiles map[string]sim.ServiceProfile
	// SLAs holds the default SLA per service.
	SLAs map[string]workload.SLA
	// Containers gives the container spec per microservice.
	Containers map[string]cluster.ContainerSpec
}

// ApplyEdgePolicy installs a default per-edge resilience policy on every
// node of every service graph that does not already carry one. Nodes with an
// explicit policy keep it, so call sites can pin hot edges first and then
// blanket the rest. The policy is inert unless the simulation runs with
// sim.Resilience enabled.
func (a *App) ApplyEdgePolicy(p graph.EdgePolicy) {
	for _, g := range a.Graphs {
		for _, n := range g.PreOrder() {
			if n.Policy == nil {
				n.SetPolicy(p)
			}
		}
	}
}

// Services returns the service names in graph order.
func (a *App) Services() []string {
	out := make([]string, len(a.Graphs))
	for i, g := range a.Graphs {
		out[i] = g.Service
	}
	return out
}

// Graph returns the dependency graph of the named service, or nil.
func (a *App) Graph(service string) *graph.Graph {
	for _, g := range a.Graphs {
		if g.Service == service {
			return g
		}
	}
	return nil
}

// Microservices returns the sorted set of unique microservices across all
// services.
func (a *App) Microservices() []string {
	seen := make(map[string]bool)
	for _, g := range a.Graphs {
		for _, ms := range g.Microservices() {
			seen[ms] = true
		}
	}
	out := make([]string, 0, len(seen))
	for ms := range seen {
		out = append(out, ms)
	}
	sort.Strings(out)
	return out
}

// Shared returns the sorted microservices that appear in more than one
// service's dependency graph (§2.3).
func (a *App) Shared() []string {
	count := make(map[string]int)
	for _, g := range a.Graphs {
		for _, ms := range g.Microservices() {
			count[ms]++
		}
	}
	var out []string
	for ms, n := range count {
		if n > 1 {
			out = append(out, ms)
		}
	}
	sort.Strings(out)
	return out
}

// SharingDegree returns, per microservice, the number of services whose
// graphs include it — the quantity whose CDF Fig. 2 plots.
func (a *App) SharingDegree() map[string]int {
	count := make(map[string]int)
	for _, g := range a.Graphs {
		for _, ms := range g.Microservices() {
			count[ms]++
		}
	}
	return count
}

// Validate checks that the app is internally consistent: valid graphs, a
// profile and container spec for every microservice, and an SLA per service.
func (a *App) Validate() error {
	if len(a.Graphs) == 0 {
		return fmt.Errorf("apps: %s has no services", a.Name)
	}
	seen := make(map[string]bool)
	for _, g := range a.Graphs {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("apps: %s/%s: %w", a.Name, g.Service, err)
		}
		if seen[g.Service] {
			return fmt.Errorf("apps: %s has duplicate service %s", a.Name, g.Service)
		}
		seen[g.Service] = true
		if _, ok := a.SLAs[g.Service]; !ok {
			return fmt.Errorf("apps: %s/%s has no SLA", a.Name, g.Service)
		}
	}
	for _, ms := range a.Microservices() {
		p, ok := a.Profiles[ms]
		if !ok {
			return fmt.Errorf("apps: %s missing profile for %s", a.Name, ms)
		}
		if p.BaseMs <= 0 {
			return fmt.Errorf("apps: %s has non-positive base time for %s", a.Name, ms)
		}
		spec, ok := a.Containers[ms]
		if !ok {
			return fmt.Errorf("apps: %s missing container spec for %s", a.Name, ms)
		}
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("apps: %s: %w", a.Name, err)
		}
	}
	return nil
}

// newApp assembles an App, filling container specs with the paper defaults.
func newApp(name string, graphs []*graph.Graph, profiles map[string]sim.ServiceProfile, slas map[string]workload.SLA) *App {
	a := &App{
		Name:       name,
		Graphs:     graphs,
		Profiles:   profiles,
		SLAs:       slas,
		Containers: make(map[string]cluster.ContainerSpec),
	}
	for _, ms := range a.Microservices() {
		a.Containers[ms] = defaultSpec(ms)
	}
	return a
}

// defaultSpec gives every microservice the paper's uniform container shape
// (0.1 core / 200 MB, §6.1) with a lean two-thread worker pool, which gives
// the gradual pre-knee latency growth of Fig. 3 rather than a knife-edge
// thread-pool saturation. Uniform containers also keep the evaluation's
// "number of deployed containers" metric equivalent to resource usage, as
// in the paper.
func defaultSpec(ms string) cluster.ContainerSpec {
	spec := cluster.PaperContainer(ms)
	spec.Threads = 2
	return spec
}
