package apps

import (
	"fmt"
	"math"

	"erms/internal/graph"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

// AlibabaConfig parameterizes the synthetic production-trace generator that
// substitutes for the Alibaba microservice traces (§6.5, Fig. 2). Services
// draw most of their microservices from a shared infrastructure pool with
// Zipf popularity, which reproduces the heavy sharing of the production
// clusters: a core of popular microservices is multiplexed by hundreds of
// services while the tail is service-private.
type AlibabaConfig struct {
	Seed uint64
	// Services is the number of online services. Default 500 (Taobao scale).
	Services int
	// MeanGraphSize is the average dependency-graph size. Default 50
	// ("each service contains 50 microservices on average", §6.5).
	MeanGraphSize int
	// PoolSize is the shared-infrastructure pool size. Default 450.
	PoolSize int
	// SharedFrac is the probability a non-root node draws from the pool
	// rather than creating a service-private microservice. Default 0.8.
	SharedFrac float64
	// ZipfS is the Zipf popularity exponent over the pool. Default 0.6.
	ZipfS float64
	// MaxStageWidth bounds parallel fan-out per stage. Default 3.
	MaxStageWidth int
}

func (c AlibabaConfig) withDefaults() AlibabaConfig {
	if c.Services <= 0 {
		c.Services = 500
	}
	if c.MeanGraphSize <= 0 {
		c.MeanGraphSize = 50
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 450
	}
	if c.SharedFrac <= 0 {
		c.SharedFrac = 0.8
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 0.6
	}
	if c.MaxStageWidth <= 0 {
		c.MaxStageWidth = 3
	}
	return c
}

// TaobaoConfig is the §6.5 trace-driven simulation scale: 500+ services,
// ~50 microservices per service, 300+ shared microservices.
func TaobaoConfig(seed uint64) AlibabaConfig {
	return AlibabaConfig{Seed: seed, Services: 500, MeanGraphSize: 50, PoolSize: 450, SharedFrac: 0.8, ZipfS: 0.6}
}

// Fig2Config reproduces the sharing-degree CDF shape of Fig. 2 at a reduced
// but structurally faithful scale: 1000 services whose graphs draw almost
// exclusively from a popular shared pool, so a large fraction of
// microservices end up shared by more than 100 services.
func Fig2Config(seed uint64) AlibabaConfig {
	return AlibabaConfig{Seed: seed, Services: 1000, MeanGraphSize: 300, PoolSize: 2000, SharedFrac: 0.99, ZipfS: 0.3}
}

// zipf samples ranks in [0, n) with probability proportional to 1/(rank+1)^s.
type zipf struct {
	cum []float64
}

func newZipf(n int, s float64) *zipf {
	z := &zipf{cum: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

func (z *zipf) sample(r *stats.RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Alibaba generates a synthetic production-scale application from the
// configuration. The result is deterministic for a fixed seed.
func Alibaba(cfg AlibabaConfig) *App {
	cfg = cfg.withDefaults()
	r := stats.NewRNG(cfg.Seed)
	profiles := make(map[string]sim.ServiceProfile)
	slas := make(map[string]workload.SLA)

	randProfile := func() sim.ServiceProfile {
		// Heavy-ish tail of base service times around ~1.5 ms.
		base := stats.LogNormalFromMeanCV(1.5, 0.8).Sample(r)
		if base < 0.2 {
			base = 0.2
		}
		if base > 8 {
			base = 8
		}
		return sim.ServiceProfile{BaseMs: base, CV: 0.5}
	}

	pool := make([]string, cfg.PoolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("infra-%04d", i)
		profiles[pool[i]] = randProfile()
	}
	pop := newZipf(cfg.PoolSize, cfg.ZipfS)

	graphs := make([]*graph.Graph, 0, cfg.Services)
	for s := 0; s < cfg.Services; s++ {
		svc := fmt.Sprintf("service-%04d", s)
		entry := fmt.Sprintf("%s-entry", svc)
		profiles[entry] = sim.ServiceProfile{BaseMs: 0.5, CV: 0.3}
		g := graph.New(svc, entry)

		// Target size: lognormal around the mean, at least 3 nodes.
		target := int(stats.LogNormalFromMeanCV(float64(cfg.MeanGraphSize), 0.4).Sample(r))
		if target < 3 {
			target = 3
		}
		privateID := 0
		open := []*graph.Node{g.Root}
		for g.Len() < target && len(open) > 0 {
			pi := r.Intn(len(open))
			parent := open[pi]
			width := 1 + r.Intn(cfg.MaxStageWidth)
			if rem := target - g.Len(); width > rem {
				width = rem
			}
			names := make([]string, width)
			for i := range names {
				if r.Float64() < cfg.SharedFrac {
					names[i] = pool[pop.sample(r)]
				} else {
					names[i] = fmt.Sprintf("%s-ms%03d", svc, privateID)
					privateID++
					profiles[names[i]] = randProfile()
				}
			}
			stage := g.AddStage(parent, names...)
			open = append(open, stage...)
			// Most nodes issue only one or two stages; retire the parent
			// with probability 1/2 to keep graphs tree-like and broad, the
			// shape observed in production ([26], §5.3.3).
			if r.Float64() < 0.5 {
				open = append(open[:pi], open[pi+1:]...)
			}
		}
		slas[svc] = workload.P95SLA(svc, 100+200*r.Float64())
		graphs = append(graphs, g)
	}
	return newApp(fmt.Sprintf("alibaba-%d", cfg.Seed), graphs, profiles, slas)
}
