package apps

import (
	"fmt"

	"erms/internal/graph"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

// ScaleConfig parameterizes the exact-shape Alibaba-scale topology used by
// the planner scalability harness (BenchmarkPlanScale, figScale). Unlike the
// Zipf-sampled Alibaba generator, every dimension here is exact: the app has
// precisely Services graphs of precisely MicroservicesPerService nodes each,
// and every shared-pool microservice appears in exactly SharingDegree
// distinct services (the final pool entry absorbs any remainder). That makes
// planner measurements comparable across sizes — doubling Services doubles
// planner work, nothing else moves.
type ScaleConfig struct {
	Seed uint64
	// Services is the number of online services. Default 100.
	Services int
	// MicroservicesPerService is the dependency-graph size per service,
	// including the private entry node. Default 50 (§6.5: "each service
	// contains 50 microservices on average"). Minimum 2.
	MicroservicesPerService int
	// SharingDegree is how many distinct services share each pool
	// microservice. Default 10; clamped to [1, Services].
	SharingDegree int
	// MaxStageWidth bounds parallel fan-out per stage. Default 3.
	MaxStageWidth int
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Services <= 0 {
		c.Services = 100
	}
	if c.MicroservicesPerService < 2 {
		if c.MicroservicesPerService <= 0 {
			c.MicroservicesPerService = 50
		} else {
			c.MicroservicesPerService = 2
		}
	}
	if c.SharingDegree <= 0 {
		c.SharingDegree = 10
	}
	if c.SharingDegree > c.Services {
		c.SharingDegree = c.Services
	}
	if c.MaxStageWidth <= 0 {
		c.MaxStageWidth = 3
	}
	return c
}

// ScaleTopology builds the exact-shape app. Every service graph has the same
// deterministic tree structure (stage widths cycle 1..MaxStageWidth), the
// root is a service-private entry microservice, and the remaining
// MicroservicesPerService-1 positions are filled from a shared pool.
//
// Pool assignment walks (slot, service) pairs slot-major and gives each pool
// microservice SharingDegree consecutive pairs; consecutive pairs differ in
// service (a run never spans more than one slot boundary because
// SharingDegree <= Services), so each pool microservice lands in exactly
// SharingDegree distinct services. Profiles and SLAs come from a seeded RNG,
// so the whole app is deterministic in cfg.
func ScaleTopology(cfg ScaleConfig) *App {
	cfg = cfg.withDefaults()
	r := stats.NewRNG(cfg.Seed)
	s, m, d := cfg.Services, cfg.MicroservicesPerService, cfg.SharingDegree

	slots := s * (m - 1)
	poolSize := (slots + d - 1) / d
	pool := make([]string, poolSize)
	profiles := make(map[string]sim.ServiceProfile, poolSize+s)
	for i := range pool {
		pool[i] = fmt.Sprintf("pool-%05d", i)
		base := 0.4 + 2.4*r.Float64()
		profiles[pool[i]] = sim.ServiceProfile{BaseMs: base, CV: 0.5}
	}

	// Per-service slot -> pool index, slot-major so runs of SharingDegree
	// consecutive pairs hit distinct services.
	assign := make([][]int, s)
	for svc := range assign {
		assign[svc] = make([]int, m-1)
	}
	for slot := 0; slot < m-1; slot++ {
		for svc := 0; svc < s; svc++ {
			k := slot*s + svc
			assign[svc][slot] = k / d
		}
	}

	slas := make(map[string]workload.SLA, s)
	graphs := make([]*graph.Graph, 0, s)
	for svc := 0; svc < s; svc++ {
		name := fmt.Sprintf("scale-svc-%05d", svc)
		entry := name + "-entry"
		profiles[entry] = sim.ServiceProfile{BaseMs: 0.5, CV: 0.3}
		g := graph.New(name, entry)

		// Deterministic breadth-first fill: stage widths cycle 1..W, parents
		// taken FIFO, so every service shares one tree shape.
		open := []*graph.Node{g.Root}
		slot := 0
		width := 1
		for slot < m-1 {
			parent := open[0]
			open = open[1:]
			w := width
			width++
			if width > cfg.MaxStageWidth {
				width = 1
			}
			if rem := (m - 1) - slot; w > rem {
				w = rem
			}
			names := make([]string, w)
			for i := range names {
				names[i] = pool[assign[svc][slot]]
				slot++
			}
			open = append(open, g.AddStage(parent, names...)...)
		}
		slas[name] = workload.P95SLA(name, 120+160*r.Float64())
		graphs = append(graphs, g)
	}
	return newApp(fmt.Sprintf("scale-%dx%dx%d", s, m, d), graphs, profiles, slas)
}
