package apps

import (
	"fmt"
	"sort"
	"strings"
)

// TopologyStats summarizes an application's dependency-graph shape — the
// statistics the paper's companion trace study ([26]) reports for
// production graphs.
type TopologyStats struct {
	Services      int
	Microservices int
	Shared        int
	// Nodes is the total call-tree positions across services.
	Nodes int
	// MeanGraphSize / MaxGraphSize are per-service node counts.
	MeanGraphSize float64
	MaxGraphSize  int
	// MeanDepth / MaxDepth are call-chain depths.
	MeanDepth float64
	MaxDepth  int
	// MaxFanOut is the widest parallel stage.
	MaxFanOut int
	// MaxSharingDegree is the largest number of services sharing one
	// microservice.
	MaxSharingDegree int
}

// Stats computes topology statistics for the application.
func (a *App) Stats() TopologyStats {
	st := TopologyStats{
		Services:      len(a.Graphs),
		Microservices: len(a.Microservices()),
		Shared:        len(a.Shared()),
	}
	var depthSum int
	for _, g := range a.Graphs {
		n := g.Len()
		st.Nodes += n
		if n > st.MaxGraphSize {
			st.MaxGraphSize = n
		}
		d := g.Depth()
		depthSum += d
		if d > st.MaxDepth {
			st.MaxDepth = d
		}
		for _, node := range g.PreOrder() {
			for _, stage := range node.Stages {
				if len(stage) > st.MaxFanOut {
					st.MaxFanOut = len(stage)
				}
			}
		}
	}
	if st.Services > 0 {
		st.MeanGraphSize = float64(st.Nodes) / float64(st.Services)
		st.MeanDepth = float64(depthSum) / float64(st.Services)
	}
	for _, deg := range a.SharingDegree() {
		if deg > st.MaxSharingDegree {
			st.MaxSharingDegree = deg
		}
	}
	return st
}

// String renders the statistics as a one-line summary.
func (s TopologyStats) String() string {
	return fmt.Sprintf("services=%d microservices=%d shared=%d nodes=%d meanSize=%.1f maxSize=%d meanDepth=%.1f maxDepth=%d maxFanOut=%d maxSharing=%d",
		s.Services, s.Microservices, s.Shared, s.Nodes, s.MeanGraphSize, s.MaxGraphSize,
		s.MeanDepth, s.MaxDepth, s.MaxFanOut, s.MaxSharingDegree)
}

// Report renders a multi-line topology report including the per-service
// graph sizes and the sharing-degree histogram.
func (a *App) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "application %s\n  %s\n", a.Name, a.Stats())
	b.WriteString("  per-service graphs:\n")
	for _, g := range a.Graphs {
		fmt.Fprintf(&b, "    %-24s nodes=%d depth=%d microservices=%d\n",
			g.Service, g.Len(), g.Depth(), len(g.Microservices()))
	}
	hist := map[int]int{}
	for _, deg := range a.SharingDegree() {
		hist[deg]++
	}
	var degs []int
	for d := range hist {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	b.WriteString("  sharing-degree histogram (services -> microservices):\n")
	for _, d := range degs {
		fmt.Fprintf(&b, "    %3d -> %d\n", d, hist[d])
	}
	return b.String()
}

// ValidateAgainstPaper checks the §6.1 application shapes: the
// DeathStarBench-equivalent apps must carry the published microservice,
// service and shared-microservice counts.
func ValidateAgainstPaper() error {
	checks := []struct {
		app              *App
		microservices    int
		services, shared int
	}{
		{SocialNetwork(), 36, 3, 3},
		{MediaService(), 38, 1, 0},
		{HotelReservation(), 15, 4, 3},
	}
	for _, c := range checks {
		st := c.app.Stats()
		if st.Microservices != c.microservices || st.Services != c.services || st.Shared != c.shared {
			return fmt.Errorf("apps: %s shape (%d µs, %d services, %d shared) != paper (%d, %d, %d)",
				c.app.Name, st.Microservices, st.Services, st.Shared,
				c.microservices, c.services, c.shared)
		}
	}
	return nil
}
