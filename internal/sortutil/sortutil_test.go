package sortutil

import (
	"reflect"
	"testing"
)

func TestKeys(t *testing.T) {
	if got := Keys(map[string]int{"b": 1, "a": 2, "c": 3}); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Keys = %v", got)
	}
	if got := Keys(map[string]struct{}{}); len(got) != 0 {
		t.Fatalf("Keys(empty) = %v", got)
	}
	var nilMap map[string]float64
	if got := Keys(nilMap); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v", got)
	}
}
