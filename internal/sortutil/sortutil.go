// Package sortutil holds the one deterministic-iteration helper every
// planning package needs: map keys in sorted order. Float accumulations and
// tie-breaks throughout the planners iterate maps through Keys so results
// are bit-stable run to run (Go map iteration order is randomized and would
// perturb the low bits of any sum folded in map order).
package sortutil

import "sort"

// Keys returns m's keys in ascending order.
func Keys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
