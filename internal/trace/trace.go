// Package trace implements the Tracing Coordinator of Erms (§5.1): the
// Jaeger-equivalent span store plus the logic that reconstructs dependency
// graphs from spans and derives per-microservice latency via Eq. 1.
//
// The simulator emits one CallRecord per call of each sampled trace; the
// coordinator turns these into client/server span pairs, rebuilds the call
// tree, classifies sibling calls as parallel or sequential by client-span
// overlap, and computes microservice latency by subtracting downstream
// response times from the local response time.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"erms/internal/graph"
	"erms/internal/sim"
)

// SpanKind distinguishes the two spans recorded per call.
type SpanKind int

// Span kinds, mirroring Jaeger's client/server span pair per call (§5.1).
const (
	Client SpanKind = iota
	Server
)

// Span is one Jaeger-style span.
type Span struct {
	TraceID      int64
	Kind         SpanKind
	Service      string
	Microservice string
	NodeID       int
	ParentNodeID int
	Start        float64
	End          float64
}

// Duration returns the span length in milliseconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Trace is one assembled request trace.
type Trace struct {
	ID      int64
	Service string
	Calls   []sim.CallRecord // ordered by ServerRecv
}

// Coordinator collects sampled call records and answers the queries the rest
// of Erms needs: dependency graphs, microservice latencies, end-to-end
// latencies. It is safe for concurrent ingestion.
type Coordinator struct {
	// SampleRate is the tracing sample fraction; workload estimates are
	// scaled by its inverse.
	SampleRate float64
	// MaxTraces bounds retention: once exceeded, the oldest traces are
	// evicted (Jaeger similarly bounds its store). Default 200000; <= 0
	// keeps everything.
	MaxTraces int

	mu      sync.Mutex
	byTrace map[int64][]sim.CallRecord
	svcOf   map[int64]string
	order   []int64 // trace IDs in first-seen order, for eviction
	evicted int
}

// NewCoordinator creates a coordinator expecting the given sampling rate
// (0 < rate <= 1).
func NewCoordinator(sampleRate float64) *Coordinator {
	if sampleRate <= 0 || sampleRate > 1 {
		panic("trace: sample rate must be in (0, 1]")
	}
	return &Coordinator{
		SampleRate: sampleRate,
		MaxTraces:  200_000,
		byTrace:    make(map[int64][]sim.CallRecord),
		svcOf:      make(map[int64]string),
	}
}

// ObserveCall ingests one completed call; it implements sim.SpanObserver.
func (c *Coordinator) ObserveCall(r sim.CallRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, seen := c.byTrace[r.TraceID]; !seen {
		c.order = append(c.order, r.TraceID)
		if c.MaxTraces > 0 && len(c.byTrace) >= c.MaxTraces {
			// Evict the oldest retained trace.
			for len(c.order) > 0 {
				oldest := c.order[0]
				c.order = c.order[1:]
				if _, ok := c.byTrace[oldest]; ok {
					delete(c.byTrace, oldest)
					delete(c.svcOf, oldest)
					c.evicted++
					break
				}
			}
		}
	}
	c.byTrace[r.TraceID] = append(c.byTrace[r.TraceID], r)
	c.svcOf[r.TraceID] = r.Service
}

// Evicted reports how many traces have been dropped by retention.
func (c *Coordinator) Evicted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// NumTraces returns the number of distinct traces collected.
func (c *Coordinator) NumTraces() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byTrace)
}

// Traces returns assembled traces, optionally filtered by service ("" for
// all), ordered by trace ID.
func (c *Coordinator) Traces(service string) []Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Trace
	for id, calls := range c.byTrace {
		if service != "" && c.svcOf[id] != service {
			continue
		}
		sorted := make([]sim.CallRecord, len(calls))
		copy(sorted, calls)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].ServerRecv < sorted[j].ServerRecv })
		out = append(out, Trace{ID: id, Service: c.svcOf[id], Calls: sorted})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Spans expands a trace into its Jaeger-style client/server span pairs.
func Spans(t Trace) []Span {
	out := make([]Span, 0, 2*len(t.Calls))
	for _, r := range t.Calls {
		out = append(out,
			Span{TraceID: r.TraceID, Kind: Client, Service: r.Service,
				Microservice: r.ParentMicroservice, NodeID: r.NodeID, ParentNodeID: r.ParentNodeID,
				Start: r.ClientSend, End: r.ClientRecv},
			Span{TraceID: r.TraceID, Kind: Server, Service: r.Service,
				Microservice: r.Microservice, NodeID: r.NodeID, ParentNodeID: r.ParentNodeID,
				Start: r.ServerRecv, End: r.ServerSend},
		)
	}
	return out
}

// groupStages partitions one node's child calls into execution stages using
// the overlap rule of §5.1: a call whose client span overlaps the span of an
// already-grouped call is parallel with it; otherwise it starts a new
// sequential stage. Children must be sorted as produced by childrenOf.
//
// Overlap is half-open — a child joins the current stage iff its ClientSend
// is strictly before the stage's end. The boundary cases are pinned:
//
//   - exactly touching (ClientSend == stageEnd) is SEQUENTIAL: a child
//     issued the instant the previous one returned did not run concurrently
//     with it;
//   - a zero-width client span (ClientSend == ClientRecv) inside a stage is
//     PARALLEL with it, and one starting exactly at stageEnd starts a new
//     stage (a consequence of the half-open rule, not a special case);
//   - a zero-width span opening a stage leaves stageEnd == its ClientSend,
//     so the next child — even at the same instant — is sequential after it.
func groupStages(children []sim.CallRecord) [][]sim.CallRecord {
	var stages [][]sim.CallRecord
	var stageEnd float64
	for _, ch := range children {
		if len(stages) == 0 || ch.ClientSend >= stageEnd {
			stages = append(stages, []sim.CallRecord{ch})
			stageEnd = ch.ClientRecv
			continue
		}
		last := len(stages) - 1
		stages[last] = append(stages[last], ch)
		if ch.ClientRecv > stageEnd {
			stageEnd = ch.ClientRecv
		}
	}
	return stages
}

// childrenOf returns t's calls whose parent is the given node, sorted by
// client send time with ties broken by client recv then node ID. The full
// key matters: sorting on ClientSend alone with a non-stable sort made the
// stage grouping of equal-send children (e.g. a zero-width span and a wider
// sibling issued at the same instant) depend on input order, so the same
// trace could classify as parallel or sequential run to run. With the
// pinned order the shorter span sorts first and groupStages is
// deterministic.
func childrenOf(t Trace, nodeID int) []sim.CallRecord {
	var out []sim.CallRecord
	for _, r := range t.Calls {
		if r.ParentNodeID == nodeID {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ClientSend != b.ClientSend {
			return a.ClientSend < b.ClientSend
		}
		if a.ClientRecv != b.ClientRecv {
			return a.ClientRecv < b.ClientRecv
		}
		return a.NodeID < b.NodeID
	})
	return out
}

// rootOf returns the entering call of a trace.
func rootOf(t Trace) (sim.CallRecord, error) {
	for _, r := range t.Calls {
		if r.ParentNodeID == -1 {
			return r, nil
		}
	}
	return sim.CallRecord{}, fmt.Errorf("trace %d has no root call", t.ID)
}

// ExtractGraph reconstructs the dependency graph of a service from all of
// its collected traces: each trace yields one call-tree variant (with
// parallel/sequential classification from span overlap), and variants are
// merged into the complete graph (§5.1, §7).
func (c *Coordinator) ExtractGraph(service string) (*graph.Graph, error) {
	traces := c.Traces(service)
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: no traces for service %s", service)
	}
	var variants []*graph.Graph
	for _, t := range traces {
		g, err := graphFromTrace(t)
		if err != nil {
			return nil, err
		}
		variants = append(variants, g)
	}
	return graph.Merge(service, variants...)
}

func graphFromTrace(t Trace) (*graph.Graph, error) {
	root, err := rootOf(t)
	if err != nil {
		return nil, err
	}
	g := graph.New(t.Service, root.Microservice)
	var build func(dst *graph.Node, nodeID int)
	build = func(dst *graph.Node, nodeID int) {
		for _, stage := range groupStages(childrenOf(t, nodeID)) {
			names := make([]string, len(stage))
			for i, r := range stage {
				names[i] = r.Microservice
			}
			created := g.AddStage(dst, names...)
			for i, r := range stage {
				build(created[i], r.NodeID)
			}
		}
	}
	build(g.Root, root.NodeID)
	return g, nil
}

// LatencySample is one derived microservice latency observation.
type LatencySample struct {
	Service      string
	Microservice string
	// At is the server-receive timestamp in milliseconds.
	At float64
	// LatencyMs is the Eq. 1 microservice latency: local response time minus
	// downstream response times (per-stage maxima for parallel calls).
	LatencyMs float64
}

// MicroserviceLatencies derives per-call microservice latencies for every
// node of every collected trace of the given service ("" for all services),
// implementing Eq. 1 and its sequential/parallel generalizations.
func (c *Coordinator) MicroserviceLatencies(service string) []LatencySample {
	var out []LatencySample
	for _, t := range c.Traces(service) {
		for _, r := range t.Calls {
			own := r.ServerSend - r.ServerRecv
			for _, stage := range groupStages(childrenOf(t, r.NodeID)) {
				var maxResp float64
				for _, ch := range stage {
					if d := ch.ClientRecv - ch.ClientSend; d > maxResp {
						maxResp = d
					}
				}
				own -= maxResp
			}
			out = append(out, LatencySample{
				Service:      t.Service,
				Microservice: r.Microservice,
				At:           r.ServerRecv,
				LatencyMs:    own,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// EndToEnd returns the end-to-end latencies (root client span durations) of
// all sampled requests of a service.
func (c *Coordinator) EndToEnd(service string) []float64 {
	var out []float64
	for _, t := range c.Traces(service) {
		if root, err := rootOf(t); err == nil {
			out = append(out, root.ClientRecv-root.ClientSend)
		}
	}
	return out
}

// WorkloadEstimate estimates the total request rate (requests/minute) seen
// at each microservice of a service over the observation window, scaling the
// sampled call counts by the inverse sampling rate.
func (c *Coordinator) WorkloadEstimate(service string, windowMin float64) (map[string]float64, error) {
	if windowMin <= 0 {
		return nil, errors.New("trace: non-positive window")
	}
	counts := make(map[string]int)
	for _, t := range c.Traces(service) {
		for _, r := range t.Calls {
			counts[r.Microservice]++
		}
	}
	out := make(map[string]float64, len(counts))
	for ms, n := range counts {
		out[ms] = float64(n) / c.SampleRate / windowMin
	}
	return out, nil
}

// Reset discards all collected traces.
func (c *Coordinator) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byTrace = make(map[int64][]sim.CallRecord)
	c.svcOf = make(map[int64]string)
	c.order = nil
	c.evicted = 0
}
