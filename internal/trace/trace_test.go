package trace

import (
	"fmt"
	"math"
	"testing"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

// call builds a CallRecord with the given node identifiers and timestamps.
func call(traceID int64, svc, parentMS, ms string, nodeID, parentID int, cs, sr, ss, cr float64) sim.CallRecord {
	return sim.CallRecord{
		TraceID: traceID, Service: svc,
		ParentMicroservice: parentMS, Microservice: ms,
		NodeID: nodeID, ParentNodeID: parentID,
		ClientSend: cs, ServerRecv: sr, ServerSend: ss, ClientRecv: cr,
	}
}

// fig1Trace builds the paper's Fig. 1 call pattern: T calls Url and U in
// parallel, then C sequentially. Node T's own work is 2ms; latencies are
// chosen so Eq. 1 has a known answer.
func fig1Trace(id int64) []sim.CallRecord {
	return []sim.CallRecord{
		// Root call into T: server busy 0-30.
		call(id, "svc", "", "T", 0, -1, 0, 0, 30, 30),
		// T -> Url (parallel with U): client span 2-12, server 2-12.
		call(id, "svc", "T", "Url", 1, 0, 2, 2, 12, 12),
		// T -> U: client span 2-8 (overlaps Url's span -> parallel).
		call(id, "svc", "T", "U", 2, 0, 2, 2, 8, 8),
		// T -> C after the parallel stage: client span 12-30 (no overlap).
		call(id, "svc", "T", "C", 3, 0, 12, 12, 30, 30),
	}
}

func fillCoordinator(c *Coordinator, n int) {
	for i := 0; i < n; i++ {
		for _, r := range fig1Trace(int64(i + 1)) {
			c.ObserveCall(r)
		}
	}
}

func TestCoordinatorAssemblesTraces(t *testing.T) {
	c := NewCoordinator(1)
	fillCoordinator(c, 3)
	if c.NumTraces() != 3 {
		t.Fatalf("traces = %d", c.NumTraces())
	}
	ts := c.Traces("svc")
	if len(ts) != 3 || len(ts[0].Calls) != 4 {
		t.Fatalf("trace shape wrong: %d traces", len(ts))
	}
	if got := c.Traces("other"); got != nil {
		t.Fatal("filter by unknown service should be empty")
	}
}

func TestSpansPairPerCall(t *testing.T) {
	c := NewCoordinator(1)
	fillCoordinator(c, 1)
	tr := c.Traces("svc")[0]
	spans := Spans(tr)
	if len(spans) != 8 {
		t.Fatalf("spans = %d, want 2 per call", len(spans))
	}
	nClient, nServer := 0, 0
	for _, s := range spans {
		switch s.Kind {
		case Client:
			nClient++
		case Server:
			nServer++
		}
		if s.Duration() < 0 {
			t.Fatalf("negative span duration: %+v", s)
		}
	}
	if nClient != 4 || nServer != 4 {
		t.Fatalf("client=%d server=%d", nClient, nServer)
	}
}

func TestGroupStagesOverlapRule(t *testing.T) {
	c := NewCoordinator(1)
	fillCoordinator(c, 1)
	tr := c.Traces("svc")[0]
	stages := groupStages(childrenOf(tr, 0))
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2 (parallel pair then sequential C)", len(stages))
	}
	if len(stages[0]) != 2 {
		t.Fatalf("stage 0 = %d calls, want Url+U", len(stages[0]))
	}
	if len(stages[1]) != 1 || stages[1][0].Microservice != "C" {
		t.Fatalf("stage 1 wrong: %+v", stages[1])
	}
}

// TestGroupStagesBoundaries pins the parallel/sequential tie-breaks of the
// half-open overlap rule for zero-width and exactly-touching client spans.
func TestGroupStagesBoundaries(t *testing.T) {
	// child builds a child call of node 0 with client span [cs, cr).
	child := func(ms string, nodeID int, cs, cr float64) sim.CallRecord {
		return call(1, "svc", "T", ms, nodeID, 0, cs, cs, cr, cr)
	}
	cases := []struct {
		name     string
		children []sim.CallRecord
		want     [][]string // stages as microservice names, in order
	}{
		{
			name: "exactly touching is sequential",
			children: []sim.CallRecord{
				child("A", 1, 0, 10),
				child("B", 2, 10, 20),
			},
			want: [][]string{{"A"}, {"B"}},
		},
		{
			name: "strict overlap by epsilon is parallel",
			children: []sim.CallRecord{
				child("A", 1, 0, 10),
				child("B", 2, 9.999, 20),
			},
			want: [][]string{{"A", "B"}},
		},
		{
			name: "zero-width span strictly inside a stage is parallel",
			children: []sim.CallRecord{
				child("A", 1, 0, 10),
				child("Z", 2, 5, 5),
			},
			want: [][]string{{"A", "Z"}},
		},
		{
			name: "zero-width span exactly at stage end starts a new stage",
			children: []sim.CallRecord{
				child("A", 1, 0, 10),
				child("Z", 2, 10, 10),
				child("B", 3, 10, 20),
			},
			// Z opens a stage with stageEnd == 10, so B (send 10) is
			// sequential after it rather than parallel with it.
			want: [][]string{{"A"}, {"Z"}, {"B"}},
		},
		{
			name: "zero-width and wider sibling at the same instant",
			children: []sim.CallRecord{
				// Arrival order adversarial: wider span first. The pinned
				// child order (ClientSend, ClientRecv, NodeID) puts Z first,
				// so the grouping is sequential regardless of input order.
				child("A", 1, 0, 10),
				child("Z", 2, 0, 0),
			},
			want: [][]string{{"Z"}, {"A"}},
		},
		{
			name: "equal spans tie-break on node ID",
			children: []sim.CallRecord{
				child("B", 2, 0, 10),
				child("A", 1, 0, 10),
			},
			want: [][]string{{"A", "B"}},
		},
		{
			name: "back-to-back zero-width spans at one instant are sequential",
			children: []sim.CallRecord{
				child("Z2", 2, 5, 5),
				child("Z1", 1, 5, 5),
			},
			want: [][]string{{"Z1"}, {"Z2"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := Trace{ID: 1, Service: "svc", Calls: tc.children}
			stages := groupStages(childrenOf(tr, 0))
			got := make([][]string, len(stages))
			for i, st := range stages {
				for _, r := range st {
					got[i] = append(got[i], r.Microservice)
				}
			}
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("stages = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestChildrenOfDeterministicOrder feeds the same children in every
// permutation and checks the grouping never changes — the regression for the
// non-stable single-key sort that let equal-send siblings flip order.
func TestChildrenOfDeterministicOrder(t *testing.T) {
	base := []sim.CallRecord{
		call(1, "svc", "T", "N", 1, 0, 2, 2, 9, 9),
		call(1, "svc", "T", "Z", 2, 0, 2, 2, 2, 2), // zero-width, same send as N
		call(1, "svc", "T", "C", 3, 0, 9, 9, 12, 12),
	}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	var want string
	for i, p := range perms {
		calls := make([]sim.CallRecord, len(base))
		for j, idx := range p {
			calls[j] = base[idx]
		}
		stages := groupStages(childrenOf(Trace{ID: 1, Calls: calls}, 0))
		got := fmt.Sprint(func() (names [][]string) {
			for _, st := range stages {
				var s []string
				for _, r := range st {
					s = append(s, r.Microservice)
				}
				names = append(names, s)
			}
			return
		}())
		if i == 0 {
			want = got
			// Zero-width Z sorts before N (same send, shorter), opens its
			// own stage; N follows sequentially; C touches N's end exactly.
			if want != "[[Z] [N] [C]]" {
				t.Fatalf("pinned grouping = %s, want [[Z] [N] [C]]", want)
			}
			continue
		}
		if got != want {
			t.Fatalf("permutation %v grouped as %s, first permutation as %s", p, got, want)
		}
	}
}

func TestExtractGraphFig1(t *testing.T) {
	c := NewCoordinator(1)
	fillCoordinator(c, 5)
	g, err := c.ExtractGraph("svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Root.Microservice != "T" {
		t.Fatalf("root = %s", g.Root.Microservice)
	}
	if len(g.Root.Stages) != 2 {
		t.Fatalf("root stages = %d", len(g.Root.Stages))
	}
	if len(g.Root.Stages[0]) != 2 {
		t.Fatalf("parallel stage size = %d", len(g.Root.Stages[0]))
	}
	if g.Root.Stages[1][0].Microservice != "C" {
		t.Fatalf("sequential stage = %s", g.Root.Stages[1][0].Microservice)
	}
}

func TestExtractGraphNoTraces(t *testing.T) {
	c := NewCoordinator(1)
	if _, err := c.ExtractGraph("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestMicroserviceLatenciesEq1(t *testing.T) {
	c := NewCoordinator(1)
	fillCoordinator(c, 1)
	samples := c.MicroserviceLatencies("svc")
	byMS := map[string]float64{}
	for _, s := range samples {
		byMS[s.Microservice] = s.LatencyMs
	}
	// T: own response 30, minus parallel stage max(Url 10, U 6) = 10, minus
	// C's response 18 -> 30 - 10 - 18 = 2.
	if math.Abs(byMS["T"]-2) > 1e-9 {
		t.Fatalf("T latency = %v, want 2", byMS["T"])
	}
	// Leaves keep their full server time.
	if math.Abs(byMS["Url"]-10) > 1e-9 || math.Abs(byMS["U"]-6) > 1e-9 || math.Abs(byMS["C"]-18) > 1e-9 {
		t.Fatalf("leaf latencies = %+v", byMS)
	}
}

func TestEndToEnd(t *testing.T) {
	c := NewCoordinator(1)
	fillCoordinator(c, 4)
	lats := c.EndToEnd("svc")
	if len(lats) != 4 {
		t.Fatalf("e2e count = %d", len(lats))
	}
	for _, l := range lats {
		if math.Abs(l-30) > 1e-9 {
			t.Fatalf("e2e = %v, want 30", l)
		}
	}
}

func TestWorkloadEstimate(t *testing.T) {
	c := NewCoordinator(0.1)
	fillCoordinator(c, 10) // 10 sampled traces over, say, 1 minute
	w, err := c.WorkloadEstimate("svc", 1)
	if err != nil {
		t.Fatal(err)
	}
	// 10 sampled calls per microservice / 0.1 sample rate = 100 req/min.
	for _, ms := range []string{"T", "Url", "U", "C"} {
		if math.Abs(w[ms]-100) > 1e-9 {
			t.Fatalf("workload[%s] = %v, want 100", ms, w[ms])
		}
	}
	if _, err := c.WorkloadEstimate("svc", 0); err == nil {
		t.Fatal("zero window should error")
	}
}

func TestReset(t *testing.T) {
	c := NewCoordinator(1)
	fillCoordinator(c, 2)
	c.Reset()
	if c.NumTraces() != 0 {
		t.Fatal("reset did not clear traces")
	}
}

func TestNewCoordinatorPanics(t *testing.T) {
	for _, rate := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rate %v should panic", rate)
				}
			}()
			NewCoordinator(rate)
		}()
	}
}

// TestEndToEndPipelineAgainstSimulator runs the full honest pipeline: the
// simulator emits spans, the coordinator reconstructs the graph and latency
// statistics, and both must agree with what the simulator measured directly.
func TestEndToEndPipelineAgainstSimulator(t *testing.T) {
	g := graph.New("social", "nginx")
	par := g.AddStage(g.Root, "text", "media")
	g.AddStage(g.Root, "storage")
	g.AddStage(par[0], "cache")

	cl := cluster.New(4, cluster.PaperHost)
	for i, ms := range []string{"nginx", "text", "media", "storage", "cache"} {
		for k := 0; k < 2; k++ {
			if _, err := cl.Place(cluster.PaperContainer(ms), (i+k)%4); err != nil {
				t.Fatal(err)
			}
		}
	}
	coord := NewCoordinator(0.1)
	cfg := sim.Config{
		Seed:    11,
		Cluster: cl,
		Profiles: map[string]sim.ServiceProfile{
			"nginx": {BaseMs: 0.5}, "text": {BaseMs: 3, CV: 0.3}, "media": {BaseMs: 4, CV: 0.3},
			"storage": {BaseMs: 2, CV: 0.3}, "cache": {BaseMs: 1, CV: 0.3},
		},
		Graphs:         []*graph.Graph{g},
		Patterns:       map[string]workload.Pattern{"social": workload.Static{Rate: 6000}},
		DurationMin:    2,
		WarmupMin:      0,
		SampleRate:     0.1,
		NetworkDelayMs: 0.05,
		Observer:       coord,
	}
	rt, err := sim.NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()

	// Graph reconstruction matches the real topology.
	got, err := coord.ExtractGraph("social")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != g.Len() {
		t.Fatalf("reconstructed %d nodes, want %d\n%s", got.Len(), g.Len(), got.DOT())
	}
	if len(got.Root.Stages) != 2 || len(got.Root.Stages[0]) != 2 {
		t.Fatalf("reconstructed root stages wrong:\n%s", got.DOT())
	}

	// End-to-end latencies from spans track the simulator's own measurement.
	e2e := coord.EndToEnd("social")
	if len(e2e) < 500 {
		t.Fatalf("too few sampled requests: %d", len(e2e))
	}
	simP95 := res.PerService["social"].P95()
	var sorted []float64
	sorted = append(sorted, e2e...)
	traceP95 := quantile(sorted, 0.95)
	if math.Abs(traceP95-simP95)/simP95 > 0.25 {
		t.Fatalf("trace-derived P95 %v vs simulator %v", traceP95, simP95)
	}

	// Workload estimate: ~6000 req/min at the root (sampled at 10%).
	w, err := coord.WorkloadEstimate("social", 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w["nginx"]-6000)/6000 > 0.15 {
		t.Fatalf("workload estimate = %v, want ~6000", w["nginx"])
	}
}

func quantile(xs []float64, q float64) float64 {
	// local helper to avoid importing stats in tests
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	pos := q * float64(len(cp)-1)
	lo := int(pos)
	if lo >= len(cp)-1 {
		return cp[len(cp)-1]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// TestExtractGraphRandomTopologies is the honest-pipeline property test:
// whatever random call tree the simulator executes, the coordinator must
// reconstruct it exactly from span overlap.
func TestExtractGraphRandomTopologies(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := statsRNG(seed)
		// Random tree of 3-12 nodes.
		n := 3 + r.Intn(10)
		g := graph.New("svc", "n0")
		open := []*graph.Node{g.Root}
		profiles := map[string]sim.ServiceProfile{"n0": {BaseMs: 1.5}}
		counts := map[string]int{"n0": 1}
		for g.Len() < n {
			p := open[r.Intn(len(open))]
			width := 1 + r.Intn(3)
			if rem := n - g.Len(); width > rem {
				width = rem
			}
			names := make([]string, width)
			for i := range names {
				names[i] = fmt.Sprintf("n%d", g.Len()+i)
				profiles[names[i]] = sim.ServiceProfile{BaseMs: 0.5 + 3*r.Float64(), CV: 0.3}
				counts[names[i]] = 1
			}
			open = append(open, g.AddStage(p, names...)...)
		}

		cl := cluster.New(2, cluster.PaperHost)
		for ms := range profiles {
			if _, err := cl.Place(cluster.PaperContainer(ms), 0); err != nil {
				t.Fatal(err)
			}
		}
		coord := NewCoordinator(1.0)
		rt, err := sim.NewRuntime(sim.Config{
			Seed:           seed,
			Cluster:        cl,
			Profiles:       profiles,
			Graphs:         []*graph.Graph{g},
			Patterns:       map[string]workload.Pattern{"svc": workload.Static{Rate: 300}},
			DurationMin:    1,
			SampleRate:     1.0,
			NetworkDelayMs: 0.05,
			Observer:       coord,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.Run()
		got, err := coord.ExtractGraph("svc")
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != g.Len() {
			t.Fatalf("seed %d: reconstructed %d nodes, want %d\nwant:\n%s\ngot:\n%s",
				seed, got.Len(), g.Len(), g.DOT(), got.DOT())
		}
		// Structural equality: compare DOT of both (IDs assigned in the same
		// DFS order because Merge preserves first-seen stage order).
		if got.DOT() != g.Clone().DOT() {
			// Allow stage-internal ordering differences: compare stage
			// multisets per node instead.
			if !sameShape(g.Root, got.Root) {
				t.Fatalf("seed %d: structure mismatch\nwant:\n%s\ngot:\n%s", seed, g.DOT(), got.DOT())
			}
		}
	}
}

// sameShape compares two call trees up to within-stage ordering.
func sameShape(a, b *graph.Node) bool {
	if a.Microservice != b.Microservice || len(a.Stages) != len(b.Stages) {
		return false
	}
	for k := range a.Stages {
		if len(a.Stages[k]) != len(b.Stages[k]) {
			return false
		}
		used := make([]bool, len(b.Stages[k]))
		for _, ca := range a.Stages[k] {
			found := false
			for j, cb := range b.Stages[k] {
				if !used[j] && sameShape(ca, cb) {
					used[j] = true
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// statsRNG adapts the stats RNG without importing it at top level twice.
func statsRNG(seed uint64) *stats.RNG { return stats.NewRNG(seed) }

func TestRetentionEvictsOldest(t *testing.T) {
	c := NewCoordinator(1)
	c.MaxTraces = 3
	for i := 0; i < 6; i++ {
		for _, r := range fig1Trace(int64(i + 1)) {
			c.ObserveCall(r)
		}
	}
	if c.NumTraces() != 3 {
		t.Fatalf("retained = %d, want 3", c.NumTraces())
	}
	if c.Evicted() != 3 {
		t.Fatalf("evicted = %d, want 3", c.Evicted())
	}
	// The newest traces survive.
	ts := c.Traces("svc")
	if ts[0].ID != 4 || ts[len(ts)-1].ID != 6 {
		t.Fatalf("retained IDs: first=%d last=%d", ts[0].ID, ts[len(ts)-1].ID)
	}
	c.Reset()
	if c.Evicted() != 0 || c.NumTraces() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestRetentionUnbounded(t *testing.T) {
	c := NewCoordinator(1)
	c.MaxTraces = 0
	for i := 0; i < 50; i++ {
		for _, r := range fig1Trace(int64(i + 1)) {
			c.ObserveCall(r)
		}
	}
	if c.NumTraces() != 50 || c.Evicted() != 0 {
		t.Fatalf("unbounded retention broken: %d traces, %d evicted", c.NumTraces(), c.Evicted())
	}
}
