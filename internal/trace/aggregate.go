package trace

import (
	"math"
	"sort"

	"erms/internal/stats"
)

// MinuteAggregate is the per-minute, per-microservice tuple (L, γ) the
// Offline Profiling module consumes (§5.2), derived purely from collected
// spans: latency via Eq. 1 and workload from sampled call counts scaled by
// the inverse sampling rate. Host utilizations are joined from the metrics
// store by the caller (they are OS-level metrics, not trace content).
type MinuteAggregate struct {
	Minute       int
	Microservice string
	// PerContainerCalls is the estimated γ: calls per container per minute.
	PerContainerCalls float64
	// TailMs is the P95 of the Eq. 1 microservice latency in that minute.
	TailMs float64
	// Calls is the raw (unsampled-estimate) call count for the minute.
	Calls int
}

// MinuteAggregates buckets every collected call by minute and microservice.
// containersOf reports how many containers each microservice ran during the
// observation (used to convert total call rate into per-container γ); a nil
// function assumes one container.
func (c *Coordinator) MinuteAggregates(containersOf func(ms string) int) []MinuteAggregate {
	if containersOf == nil {
		containersOf = func(string) int { return 1 }
	}
	type key struct {
		minute int
		ms     string
	}
	lats := make(map[key][]float64)
	for _, s := range c.MicroserviceLatencies("") {
		k := key{minute: int(s.At / 60_000), ms: s.Microservice}
		lats[k] = append(lats[k], s.LatencyMs)
	}
	out := make([]MinuteAggregate, 0, len(lats))
	for k, ls := range lats {
		n := containersOf(k.ms)
		if n < 1 {
			n = 1
		}
		calls := float64(len(ls)) / c.SampleRate
		agg := MinuteAggregate{
			Minute:            k.minute,
			Microservice:      k.ms,
			PerContainerCalls: calls / float64(n),
			TailMs:            stats.P95(ls),
			Calls:             int(math.Round(calls)),
		}
		out = append(out, agg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Minute != out[j].Minute {
			return out[i].Minute < out[j].Minute
		}
		return out[i].Microservice < out[j].Microservice
	})
	return out
}
