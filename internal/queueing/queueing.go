// Package queueing provides classical queueing-theory results — M/M/1,
// M/M/c (Erlang C), and M/G/1 (Pollaczek–Khinchine) — used three ways in
// this repository:
//
//   - §2.3 of the paper builds an M/M/1 model to analyze processing time at
//     a shared microservice under sharing vs non-sharing; the same analysis
//     is reproduced here.
//   - The analytic latency models' constants (knee factor, tail factor) are
//     justified against these formulas.
//   - The discrete-event simulator is validated against them: an M/M/c
//     container in the simulator must reproduce Erlang-C waiting times.
//
// Rates are in requests per millisecond and times in milliseconds unless
// stated otherwise.
package queueing

import (
	"errors"
	"math"
)

// ErrUnstable is returned when the offered load reaches or exceeds capacity.
var ErrUnstable = errors.New("queueing: utilization >= 1 (unstable queue)")

// MM1 describes an M/M/1 queue with arrival rate lambda and service rate mu.
type MM1 struct {
	Lambda float64 // arrivals per ms
	Mu     float64 // services per ms
}

// Rho returns the utilization λ/μ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// MeanResponse returns E[T] = 1/(μ−λ).
func (q MM1) MeanResponse() (float64, error) {
	if q.Rho() >= 1 {
		return 0, ErrUnstable
	}
	return 1 / (q.Mu - q.Lambda), nil
}

// MeanWait returns E[W] = ρ/(μ−λ).
func (q MM1) MeanWait() (float64, error) {
	r, err := q.MeanResponse()
	if err != nil {
		return 0, err
	}
	return r * q.Rho(), nil
}

// MeanQueueLen returns E[N] = ρ/(1−ρ) (jobs in system).
func (q MM1) MeanQueueLen() (float64, error) {
	rho := q.Rho()
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return rho / (1 - rho), nil
}

// ResponseQuantile returns the p-quantile of the response time; for M/M/1
// the response time is exponential with rate μ−λ.
func (q MM1) ResponseQuantile(p float64) (float64, error) {
	if q.Rho() >= 1 {
		return 0, ErrUnstable
	}
	if p <= 0 || p >= 1 {
		return 0, errors.New("queueing: quantile must be in (0,1)")
	}
	return -math.Log(1-p) / (q.Mu - q.Lambda), nil
}

// MMC describes an M/M/c queue: c servers each with rate mu.
type MMC struct {
	Lambda  float64
	Mu      float64
	Servers int
}

// Rho returns the per-server utilization λ/(c·μ).
func (q MMC) Rho() float64 { return q.Lambda / (float64(q.Servers) * q.Mu) }

// ErlangC returns the probability an arrival must wait (all servers busy).
func (q MMC) ErlangC() (float64, error) {
	c := q.Servers
	if c <= 0 {
		return 0, errors.New("queueing: need at least one server")
	}
	rho := q.Rho()
	if rho >= 1 {
		return 0, ErrUnstable
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	// Iterative Erlang-B, then convert to Erlang-C (numerically stable).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b)), nil
}

// MeanWait returns E[W] = C(c, a) / (c·μ − λ).
func (q MMC) MeanWait() (float64, error) {
	pc, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	return pc / (float64(q.Servers)*q.Mu - q.Lambda), nil
}

// MeanResponse returns E[T] = E[W] + 1/μ.
func (q MMC) MeanResponse() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + 1/q.Mu, nil
}

// WaitQuantile returns the p-quantile of the waiting time. For M/M/c the
// wait is 0 with probability 1−C and exponential with rate cμ−λ otherwise.
func (q MMC) WaitQuantile(p float64) (float64, error) {
	pc, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	if p <= 0 || p >= 1 {
		return 0, errors.New("queueing: quantile must be in (0,1)")
	}
	if p <= 1-pc {
		return 0, nil
	}
	// P(W > t) = C·exp(−(cμ−λ)t) = 1−p  →  t.
	return -math.Log((1-p)/pc) / (float64(q.Servers)*q.Mu - q.Lambda), nil
}

// Saturated reports whether the queue has no stationary distribution: the
// offered load reaches or exceeds capacity (ρ ≥ 1), the service rate is not
// positive, or there are no servers.
func (q MMC) Saturated() bool {
	if q.Servers <= 0 || q.Mu <= 0 {
		return q.Lambda > 0
	}
	return q.Rho() >= 1
}

// ErlangCBounded is ErlangC extended to the edge cases the simulator's fluid
// fast path evaluates every minute, returning a finite, documented value
// instead of an error, Inf, or NaN:
//
//   - zero offered load (λ ≤ 0): nobody waits, returns 0;
//   - instantaneous service (μ = +Inf, i.e. zero service time): returns 0;
//   - saturated (ρ ≥ 1, including ρ exactly 1 — the knee sitting exactly at
//     the operating point — and degenerate μ ≤ 0 or Servers ≤ 0): every
//     arrival waits, returns 1.
func (q MMC) ErlangCBounded() float64 {
	if q.Lambda <= 0 {
		return 0
	}
	if q.Saturated() {
		return 1
	}
	pc, err := q.ErlangC()
	if err != nil {
		return 1
	}
	return pc
}

// MeanWaitBounded returns the mean waiting time clamped to boundMs: the
// Erlang-C mean wait when the queue is stable, and boundMs when it is
// saturated (where the true mean diverges). boundMs ≤ 0 disables the clamp
// for stable queues but still caps the saturated case at 0 — pass a positive
// bound.
func (q MMC) MeanWaitBounded(boundMs float64) float64 {
	if q.Lambda <= 0 {
		return 0
	}
	if q.Saturated() {
		return boundMs
	}
	w, err := q.MeanWait()
	if err != nil || (boundMs > 0 && w > boundMs) {
		return boundMs
	}
	return w
}

// WaitQuantileBounded returns the p-quantile of the waiting time with the
// same finite-value contract: p is clamped into [0, 1] (p ≤ 0 → 0, p ≥ 1 →
// boundMs), saturation returns boundMs, and stable-queue quantiles are capped
// at boundMs (the far tail of the exponential branch otherwise diverges as
// p → 1).
func (q MMC) WaitQuantileBounded(p, boundMs float64) float64 {
	if p <= 0 || q.Lambda <= 0 {
		return 0
	}
	if p >= 1 || q.Saturated() {
		return boundMs
	}
	w, err := q.WaitQuantile(p)
	if err != nil || (boundMs > 0 && w > boundMs) {
		return boundMs
	}
	return w
}

// MG1 describes an M/G/1 queue with general service times given by their
// first two moments.
type MG1 struct {
	Lambda   float64
	MeanSvc  float64 // E[S], ms
	SecondSv float64 // E[S^2], ms^2
}

// Rho returns λ·E[S].
func (q MG1) Rho() float64 { return q.Lambda * q.MeanSvc }

// MeanWait returns the Pollaczek–Khinchine waiting time
// E[W] = λ·E[S²] / (2(1−ρ)).
func (q MG1) MeanWait() (float64, error) {
	rho := q.Rho()
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return q.Lambda * q.SecondSv / (2 * (1 - rho)), nil
}

// MeanResponse returns E[T] = E[W] + E[S].
func (q MG1) MeanResponse() (float64, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + q.MeanSvc, nil
}

// MG1FromCV builds an M/G/1 queue from a mean service time and coefficient
// of variation: E[S²] = E[S]²(1+CV²).
func MG1FromCV(lambda, meanSvc, cv float64) MG1 {
	return MG1{Lambda: lambda, MeanSvc: meanSvc, SecondSv: meanSvc * meanSvc * (1 + cv*cv)}
}

// SharedVsPartitioned reproduces the §2.3 M/M/1 analysis: given two Poisson
// flows with rates l1, l2 (per ms) served at rate mu per server, it returns
// the mean processing (response) time when both flows share a single
// double-speed server versus when each flow gets its own server. Sharing is
// always better for the mean — which is exactly why the paper's observation
// that sharing costs MORE under SLA-driven scaling is surprising and
// motivates priority scheduling.
func SharedVsPartitioned(l1, l2, mu float64) (shared, partitioned float64, err error) {
	pool := MM1{Lambda: l1 + l2, Mu: 2 * mu}
	sharedT, err := pool.MeanResponse()
	if err != nil {
		return 0, 0, err
	}
	q1 := MM1{Lambda: l1, Mu: mu}
	q2 := MM1{Lambda: l2, Mu: mu}
	t1, err := q1.MeanResponse()
	if err != nil {
		return 0, 0, err
	}
	t2, err := q2.MeanResponse()
	if err != nil {
		return 0, 0, err
	}
	total := l1 + l2
	return sharedT, (t1*l1 + t2*l2) / total, nil
}

// PriorityMM1 models a two-class non-preemptive priority M/M/1 queue
// (class 1 served first): it returns the mean waiting times of both classes
// (Cobham's formulas). This is the theory behind Erms' priority scheduling
// at shared microservices: the high-priority class is insulated from the
// low-priority workload's queueing, at the low class's expense.
func PriorityMM1(l1, l2, mu float64) (w1, w2 float64, err error) {
	rho1 := l1 / mu
	rho2 := l2 / mu
	if rho1+rho2 >= 1 {
		return 0, 0, ErrUnstable
	}
	// Mean residual service of the job in service: ρ·E[S] for exponential.
	r := (rho1 + rho2) / mu
	w1 = r / (1 - rho1)
	w2 = r / ((1 - rho1) * (1 - rho1 - rho2))
	return w1, w2, nil
}
