package queueing

import (
	"math"
	"testing"
)

// The bounded variants are the fluid fast path's contract: whatever the
// operating point, they return a finite value the simulator can schedule.
// The exact variants keep their error-returning behaviour; these tables pin
// the edge cases the exact API refuses.
func TestErlangCBoundedEdgeCases(t *testing.T) {
	const eps = 1e-12
	cases := []struct {
		name string
		q    MMC
		want float64
	}{
		{"stable interior", MMC{Lambda: 0.5, Mu: 1, Servers: 2}, 0}, // checked against ErlangC below
		{"zero offered load", MMC{Lambda: 0, Mu: 1, Servers: 2}, 0},
		{"negative load", MMC{Lambda: -1, Mu: 1, Servers: 2}, 0},
		{"zero service time", MMC{Lambda: 0.5, Mu: math.Inf(1), Servers: 2}, 0},
		{"utilization exactly 1", MMC{Lambda: 2, Mu: 1, Servers: 2}, 1},
		{"utilization above 1", MMC{Lambda: 5, Mu: 1, Servers: 2}, 1},
		{"no servers", MMC{Lambda: 1, Mu: 1, Servers: 0}, 1},
		{"zero service rate", MMC{Lambda: 1, Mu: 0, Servers: 2}, 1},
	}
	for _, tc := range cases {
		got := tc.q.ErlangCBounded()
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: ErlangCBounded = %v, want finite", tc.name, got)
			continue
		}
		want := tc.want
		if tc.name == "stable interior" {
			var err error
			want, err = tc.q.ErlangC()
			if err != nil {
				t.Fatalf("stable interior: %v", err)
			}
		}
		if math.Abs(got-want) > eps {
			t.Errorf("%s: ErlangCBounded = %v, want %v", tc.name, got, want)
		}
	}
}

func TestWaitBoundedEdgeCases(t *testing.T) {
	const bound = 1000.0
	cases := []struct {
		name     string
		q        MMC
		p        float64
		wantMean float64
		wantQ    float64
	}{
		{"zero load", MMC{Lambda: 0, Mu: 1, Servers: 1}, 0.95, 0, 0},
		{"zero service time", MMC{Lambda: 0.5, Mu: math.Inf(1), Servers: 1}, 0.95, 0, 0},
		{"saturated", MMC{Lambda: 2, Mu: 1, Servers: 2}, 0.95, bound, bound},
		{"knee exactly at operating point", MMC{Lambda: 1, Mu: 1, Servers: 1}, 0.95, bound, bound},
		{"quantile p=0", MMC{Lambda: 0.5, Mu: 1, Servers: 1}, 0, 1.0, 0},
		{"quantile p=1", MMC{Lambda: 0.5, Mu: 1, Servers: 1}, 1, 1.0, bound},
	}
	for _, tc := range cases {
		gotMean := tc.q.MeanWaitBounded(bound)
		gotQ := tc.q.WaitQuantileBounded(tc.p, bound)
		for _, v := range []float64{gotMean, gotQ} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite bounded wait %v", tc.name, v)
			}
		}
		if math.Abs(gotMean-tc.wantMean) > 1e-9 {
			t.Errorf("%s: MeanWaitBounded = %v, want %v", tc.name, gotMean, tc.wantMean)
		}
		if math.Abs(gotQ-tc.wantQ) > 1e-9 {
			t.Errorf("%s: WaitQuantileBounded(%v) = %v, want %v", tc.name, tc.p, gotQ, tc.wantQ)
		}
	}
}

// Interior agreement: where the exact API is defined, the bounded variants
// must return the same value (modulo the cap).
func TestBoundedMatchesExactInInterior(t *testing.T) {
	q := MMC{Lambda: 1.4, Mu: 1, Servers: 2}
	exactW, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if got := q.MeanWaitBounded(1e9); math.Abs(got-exactW) > 1e-12 {
		t.Errorf("MeanWaitBounded = %v, want %v", got, exactW)
	}
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		exactQ, err := q.WaitQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := q.WaitQuantileBounded(p, 1e9); math.Abs(got-exactQ) > 1e-12 {
			t.Errorf("WaitQuantileBounded(%v) = %v, want %v", p, got, exactQ)
		}
	}
	// The cap binds the far tail: a 1 ms cap must clip the p=0.999999
	// quantile of a hot queue.
	hot := MMC{Lambda: 0.99, Mu: 1, Servers: 1}
	if got := hot.WaitQuantileBounded(0.999999, 1); got != 1 {
		t.Errorf("capped quantile = %v, want 1", got)
	}
}
