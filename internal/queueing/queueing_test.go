package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1KnownValues(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1} // rho = 0.5
	r, err := q.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2) > 1e-12 {
		t.Fatalf("E[T] = %v, want 2", r)
	}
	w, _ := q.MeanWait()
	if math.Abs(w-1) > 1e-12 {
		t.Fatalf("E[W] = %v, want 1", w)
	}
	n, _ := q.MeanQueueLen()
	if math.Abs(n-1) > 1e-12 {
		t.Fatalf("E[N] = %v, want 1", n)
	}
	// Little's law: N = lambda * T.
	if math.Abs(n-q.Lambda*r) > 1e-12 {
		t.Fatal("Little's law violated")
	}
}

func TestMM1Unstable(t *testing.T) {
	q := MM1{Lambda: 1, Mu: 1}
	if _, err := q.MeanResponse(); err != ErrUnstable {
		t.Fatal("expected ErrUnstable")
	}
}

func TestMM1ResponseQuantile(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1}
	med, err := q.ResponseQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Median of Exp(0.5) = ln2/0.5.
	if math.Abs(med-math.Ln2/0.5) > 1e-12 {
		t.Fatalf("median = %v", med)
	}
	if _, err := q.ResponseQuantile(1.5); err == nil {
		t.Fatal("bad quantile accepted")
	}
}

func TestMMCReducesToMM1(t *testing.T) {
	c := MMC{Lambda: 0.5, Mu: 1, Servers: 1}
	m := MM1{Lambda: 0.5, Mu: 1}
	wc, err := c.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := m.MeanWait()
	if math.Abs(wc-w1) > 1e-9 {
		t.Fatalf("M/M/1 special case: %v vs %v", wc, w1)
	}
	// For M/M/1 Erlang C equals rho.
	pc, _ := c.ErlangC()
	if math.Abs(pc-0.5) > 1e-12 {
		t.Fatalf("ErlangC = %v, want rho", pc)
	}
}

func TestMMCKnownErlangC(t *testing.T) {
	// Classic table value: c=2, a=1 (rho=0.5): C = 1/3.
	q := MMC{Lambda: 1, Mu: 1, Servers: 2}
	pc, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pc-1.0/3) > 1e-9 {
		t.Fatalf("ErlangC(2, a=1) = %v, want 1/3", pc)
	}
}

func TestMMCWaitQuantile(t *testing.T) {
	q := MMC{Lambda: 1, Mu: 1, Servers: 2}
	// P(wait) = 1/3, so the 0.5-quantile of the wait is 0.
	z, err := q.WaitQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if z != 0 {
		t.Fatalf("median wait = %v, want 0", z)
	}
	p95, _ := q.WaitQuantile(0.95)
	if p95 <= 0 {
		t.Fatalf("p95 wait = %v", p95)
	}
}

func TestMMCErrors(t *testing.T) {
	if _, err := (MMC{Lambda: 3, Mu: 1, Servers: 2}).ErlangC(); err != ErrUnstable {
		t.Fatal("unstable accepted")
	}
	if _, err := (MMC{Lambda: 1, Mu: 1, Servers: 0}).ErlangC(); err == nil {
		t.Fatal("zero servers accepted")
	}
}

func TestMG1MatchesMM1ForExponential(t *testing.T) {
	// Exponential service: CV=1 -> P-K reduces to M/M/1.
	g := MG1FromCV(0.5, 1, 1)
	m := MM1{Lambda: 0.5, Mu: 1}
	wg, err := g.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	wm, _ := m.MeanWait()
	if math.Abs(wg-wm) > 1e-9 {
		t.Fatalf("P-K vs M/M/1: %v vs %v", wg, wm)
	}
}

func TestMG1DeterministicHalvesWait(t *testing.T) {
	// Deterministic service (CV=0) halves the M/M/1 waiting time.
	d := MG1FromCV(0.5, 1, 0)
	e := MG1FromCV(0.5, 1, 1)
	wd, _ := d.MeanWait()
	we, _ := e.MeanWait()
	if math.Abs(wd-we/2) > 1e-9 {
		t.Fatalf("deterministic wait %v, exponential %v", wd, we)
	}
}

func TestSharedVsPartitionedTheory(t *testing.T) {
	// §2.3: for the MEAN, sharing a double-speed pool always beats
	// partitioning.
	shared, part, err := SharedVsPartitioned(0.3, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if shared >= part {
		t.Fatalf("sharing (%v) should beat partitioning (%v) in mean", shared, part)
	}
	f := func(a, b uint8) bool {
		l1 := 0.05 + float64(a%80)/100 // < 0.85
		l2 := 0.05 + float64(b%80)/100
		s, p, err := SharedVsPartitioned(l1, l2, 1)
		if err != nil {
			return true // unstable combos skipped
		}
		return s <= p+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityMM1(t *testing.T) {
	w1, w2, err := PriorityMM1(0.3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w1 >= w2 {
		t.Fatalf("high priority should wait less: %v vs %v", w1, w2)
	}
	// Work conservation: rho1*w1 + rho2*w2 equals the FCFS aggregate
	// rho*W_fcfs (both classes exponential with the same mu).
	fcfs, _ := (MM1{Lambda: 0.6, Mu: 1}).MeanWait()
	agg := (0.3*w1 + 0.3*w2) / 0.6
	if math.Abs(agg-fcfs)/fcfs > 1e-9 {
		t.Fatalf("work conservation: %v vs %v", agg, fcfs)
	}
	if _, _, err := PriorityMM1(0.6, 0.5, 1); err != ErrUnstable {
		t.Fatal("unstable accepted")
	}
}
