package queueing_test

import (
	"math"
	"testing"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/queueing"
	"erms/internal/sim"
	"erms/internal/workload"
)

// TestSimulatorMatchesErlangC validates the discrete-event simulator against
// M/M/c theory: a single container with c threads and exponential service
// must reproduce the Erlang-C mean response time.
func TestSimulatorMatchesErlangC(t *testing.T) {
	const (
		threads = 4
		baseMs  = 2.0
		rateMin = 90_000.0 // per minute; rho = 0.75
	)
	g := graph.New("svc", "A")
	cl := cluster.New(1, cluster.HostSpec{Cores: 32, MemGB: 64})
	spec := cluster.ContainerSpec{Microservice: "A", CPU: 0.1, MemMB: 200, Threads: threads}
	if _, err := cl.Place(spec, 0); err != nil {
		t.Fatal(err)
	}
	rt, err := sim.NewRuntime(sim.Config{
		Seed:     3,
		Cluster:  cl,
		Profiles: map[string]sim.ServiceProfile{"A": {BaseMs: baseMs, CV: 1.0}}, // CV=1: exponential-ish
		Graphs:   []*graph.Graph{g},
		Patterns: map[string]workload.Pattern{"svc": workload.Static{Rate: rateMin}},
		// No interference model: inflation = 1 exactly.
		DurationMin: 6,
		WarmupMin:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	measured := res.PerService["svc"].Mean()

	q := queueing.MMC{Lambda: rateMin / 60_000, Mu: 1 / baseMs, Servers: threads}
	want, err := q.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(measured-want)/want > 0.12 {
		t.Fatalf("simulator mean %v vs Erlang-C %v (>12%% off)", measured, want)
	}
}
