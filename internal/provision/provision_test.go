package provision

import (
	"testing"

	"erms/internal/cluster"
	"erms/internal/kube"
	"erms/internal/workload"
)

func hotColdCluster(hosts int) *cluster.Cluster {
	cl := cluster.New(hosts, cluster.PaperHost)
	// Even hosts are hot, odd hosts idle.
	for i := 0; i < hosts; i += 2 {
		cl.SetBackground(i, workload.Interference{CPU: 0.6, Mem: 0.5})
	}
	return cl
}

func TestPlaceAvoidsHotHosts(t *testing.T) {
	cl := hotColdCluster(4)
	s := &InterferenceAware{}
	for i := 0; i < 8; i++ {
		id, err := s.Place(cl, cluster.PaperContainer("a"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Place(cluster.PaperContainer("a"), id); err != nil {
			t.Fatal(err)
		}
	}
	// All containers land on the idle hosts.
	if n := len(cl.Host(0).Containers()) + len(cl.Host(2).Containers()); n != 0 {
		t.Fatalf("%d containers on hot hosts", n)
	}
}

func TestPlaceReducesImbalanceVsSpread(t *testing.T) {
	mk := func(sched kube.Scheduler) float64 {
		cl := hotColdCluster(6)
		o := kube.New(cl, sched)
		if err := o.Apply(cluster.PaperContainer("a"), 30); err != nil {
			t.Fatal(err)
		}
		return cl.Imbalance()
	}
	aware := mk(&InterferenceAware{})
	spread := mk(kube.Spread{})
	if aware > spread {
		t.Fatalf("interference-aware imbalance %v > spread %v", aware, spread)
	}
}

func TestPlaceFailsWhenFull(t *testing.T) {
	cl := cluster.New(1, cluster.HostSpec{Cores: 1, MemGB: 4})
	s := &InterferenceAware{}
	for i := 0; i < 10; i++ {
		id, err := s.Place(cl, cluster.PaperContainer("a"))
		if err != nil {
			t.Fatal(err)
		}
		cl.Place(cluster.PaperContainer("a"), id)
	}
	if _, err := s.Place(cl, cluster.PaperContainer("a")); err == nil {
		t.Fatal("full cluster accepted placement")
	}
}

func TestPOPGroupsStillPlace(t *testing.T) {
	cl := hotColdCluster(8)
	s := &InterferenceAware{Groups: 4}
	placed := map[int]int{}
	for i := 0; i < 16; i++ {
		id, err := s.Place(cl, cluster.PaperContainer("a"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Place(cluster.PaperContainer("a"), id); err != nil {
			t.Fatal(err)
		}
		placed[id]++
	}
	if len(placed) < 3 {
		t.Fatalf("POP placement too concentrated: %v", placed)
	}
}

func TestPOPFallsBackAcrossGroups(t *testing.T) {
	// Group sizes of 1: a full group must not block placement.
	cl := cluster.New(2, cluster.HostSpec{Cores: 1, MemGB: 4})
	cl.SetBackground(0, workload.Interference{CPU: 0.99, Mem: 0.99})
	s := &InterferenceAware{Groups: 2}
	for i := 0; i < 5; i++ {
		id, err := s.Place(cl, cluster.PaperContainer("a"))
		if err != nil {
			t.Fatal(err)
		}
		if id != 1 {
			t.Fatalf("placed on the full host")
		}
		cl.Place(cluster.PaperContainer("a"), id)
	}
}

func TestEvictPrefersHotHost(t *testing.T) {
	cl := hotColdCluster(2)
	cl.Place(cluster.PaperContainer("a"), 0) // hot host
	cl.Place(cluster.PaperContainer("a"), 1) // idle host
	s := &InterferenceAware{}
	victim, err := s.Evict(cl, "a")
	if err != nil {
		t.Fatal(err)
	}
	if victim.Host.ID != 0 {
		t.Fatalf("evicted from host %d, want hot host 0", victim.Host.ID)
	}
	if _, err := s.Evict(cl, "missing"); err == nil {
		t.Fatal("missing microservice accepted")
	}
}

func TestRebalanceReducesImbalance(t *testing.T) {
	cl := cluster.New(4, cluster.PaperHost)
	// Pile everything on host 0.
	for i := 0; i < 20; i++ {
		if _, err := cl.Place(cluster.PaperContainer("a"), 0); err != nil {
			t.Fatal(err)
		}
	}
	before := cl.Imbalance()
	moves := Rebalance(cl, 30)
	after := cl.Imbalance()
	if moves == 0 {
		t.Fatal("rebalance made no moves")
	}
	if after >= before {
		t.Fatalf("imbalance did not improve: %v -> %v", before, after)
	}
	// Container count is preserved.
	if got := len(cl.Containers()); got != 20 {
		t.Fatalf("containers = %d after rebalance", got)
	}
}

func TestRebalanceRespectsMaxMoves(t *testing.T) {
	cl := cluster.New(4, cluster.PaperHost)
	for i := 0; i < 20; i++ {
		cl.Place(cluster.PaperContainer("a"), 0)
	}
	if moves := Rebalance(cl, 3); moves > 3 {
		t.Fatalf("moves = %d > max 3", moves)
	}
}

func TestRebalanceNoOpWhenBalanced(t *testing.T) {
	cl := cluster.New(4, cluster.PaperHost)
	for i := 0; i < 8; i++ {
		cl.Place(cluster.PaperContainer("a"), i%4)
	}
	if moves := Rebalance(cl, 10); moves != 0 {
		t.Fatalf("balanced cluster still moved %d", moves)
	}
}

func TestEndToEndWithOrchestrator(t *testing.T) {
	// The provisioner works as the orchestrator's scheduler: scale up, then
	// down, with interference-aware choices throughout.
	cl := hotColdCluster(4)
	o := kube.New(cl, &InterferenceAware{Groups: 2})
	if err := o.Apply(cluster.PaperContainer("web"), 12); err != nil {
		t.Fatal(err)
	}
	if err := o.Scale("web", 4); err != nil {
		t.Fatal(err)
	}
	if got := cl.CountFor("web"); got != 4 {
		t.Fatalf("containers = %d", got)
	}
	// Remaining containers sit on the idle hosts.
	hot := len(cl.Host(0).Containers()) + len(cl.Host(2).Containers())
	if hot > 0 {
		t.Fatalf("%d containers remain on hot hosts", hot)
	}
}
