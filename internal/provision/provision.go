// Package provision implements Erms' interference-aware Resource
// Provisioning module (§5.4): containers are placed (and released) so as to
// minimize resource unbalance across hosts — the sum of squared deviations
// between each host's utilization and the cluster-wide mean — because
// unbalanced hosts create unbalanced container performance and SLA
// violations. The exact problem is a non-linear integer program (NP-hard);
// following the paper, hosts are statically divided into groups and each
// placement only searches one group (the POP technique [31]), plus a greedy
// local-search Rebalance for the background.
package provision

import (
	"fmt"
	"sort"

	"erms/internal/cluster"
	"erms/internal/kube"
)

// InterferenceAware is a kube.Scheduler that minimizes utilization
// imbalance. The zero value uses a single group (full search).
type InterferenceAware struct {
	// Groups is the POP partition count; <= 1 disables partitioning.
	Groups int

	cursor int
}

var _ kube.Scheduler = (*InterferenceAware)(nil)

// hostDeviation is one host's contribution to the imbalance objective,
// evaluated against the current cluster means.
func hostDeviation(h *cluster.Host, meanCPU, meanMem float64) float64 {
	dc := h.CPUUtil() - meanCPU
	dm := h.MemUtil() - meanMem
	return dc*dc + dm*dm
}

// placementDelta estimates the imbalance change from adding spec to h,
// holding the cluster means fixed (the means move by O(1/#hosts), which the
// greedy search can ignore).
func placementDelta(h *cluster.Host, spec cluster.ContainerSpec, meanCPU, meanMem float64) float64 {
	before := hostDeviation(h, meanCPU, meanMem)
	dc := h.CPUUtil() + spec.CPU/float64(h.Spec.Cores) - meanCPU
	dm := h.MemUtil() + spec.MemMB/(h.Spec.MemGB*1024) - meanMem
	return dc*dc + dm*dm - before
}

// group returns the hosts of the POP group with the given index. Membership
// is a pseudo-random (but deterministic) hash of the host ID rather than a
// round-robin stripe, so groups do not accidentally align with structured
// background-load patterns in the cluster (POP [31] likewise partitions
// randomly).
func (s *InterferenceAware) group(cl *cluster.Cluster, idx int) []*cluster.Host {
	hosts := cl.Hosts()
	if s.Groups <= 1 || s.Groups >= len(hosts) {
		return hosts
	}
	var out []*cluster.Host
	for _, h := range hosts {
		hash := uint64(h.ID+1) * 0x9e3779b97f4a7c15
		if int(hash>>33)%s.Groups == idx {
			out = append(out, h)
		}
	}
	return out
}

// Place picks the feasible host (within the next POP group, falling back to
// the whole cluster) whose loading least increases the imbalance objective.
func (s *InterferenceAware) Place(cl *cluster.Cluster, spec cluster.ContainerSpec) (int, error) {
	meanCPU, meanMem := cl.MeanCPUUtil(), cl.MeanMemUtil()
	try := func(hosts []*cluster.Host) (int, bool) {
		best, bestDelta, found := -1, 0.0, false
		for _, h := range hosts {
			if !h.Fits(spec) {
				continue
			}
			d := placementDelta(h, spec, meanCPU, meanMem)
			if !found || d < bestDelta {
				best, bestDelta, found = h.ID, d, true
			}
		}
		return best, found
	}
	groups := 1
	if s.Groups > 1 {
		groups = s.Groups
	}
	for attempt := 0; attempt < groups; attempt++ {
		idx := s.cursor % groups
		s.cursor++
		if id, ok := try(s.group(cl, idx)); ok {
			return id, nil
		}
	}
	return 0, fmt.Errorf("provision: no host fits container %s", spec.Microservice)
}

// Evict removes the container of the microservice whose departure most
// reduces the imbalance objective (i.e. from the most over-utilized host).
func (s *InterferenceAware) Evict(cl *cluster.Cluster, microservice string) (*cluster.Container, error) {
	cs := cl.ContainersFor(microservice)
	if len(cs) == 0 {
		return nil, fmt.Errorf("provision: no containers of %s", microservice)
	}
	meanCPU, meanMem := cl.MeanCPUUtil(), cl.MeanMemUtil()
	sort.Slice(cs, func(i, j int) bool {
		return hostDeviation(cs[i].Host, meanCPU, meanMem) > hostDeviation(cs[j].Host, meanCPU, meanMem)
	})
	// Prefer a host that is actually above the mean; otherwise the most
	// deviant one still wins (removing from an under-utilized host can
	// increase imbalance, but something must be evicted).
	for _, c := range cs {
		if c.Host.CPUUtil() >= meanCPU || c.Host.MemUtil() >= meanMem {
			return c, nil
		}
	}
	return cs[0], nil
}

// Rebalance greedily migrates containers from the most deviant hosts to the
// hosts where they most reduce the imbalance objective, performing at most
// maxMoves migrations. It returns the number of migrations made. This is the
// scale-down/scale-out companion the Resource Provisioning module runs when
// Online Scaling adjusts allocations (§5.4).
func Rebalance(cl *cluster.Cluster, maxMoves int) int {
	moves := 0
	for moves < maxMoves {
		meanCPU, meanMem := cl.MeanCPUUtil(), cl.MeanMemUtil()
		// Most deviant over-utilized host.
		var src *cluster.Host
		var srcDev float64
		for _, h := range cl.Hosts() {
			if len(h.Containers()) == 0 {
				continue
			}
			if h.CPUUtil() < meanCPU && h.MemUtil() < meanMem {
				continue
			}
			if d := hostDeviation(h, meanCPU, meanMem); src == nil || d > srcDev {
				src, srcDev = h, d
			}
		}
		if src == nil {
			return moves
		}
		before := cl.Imbalance()
		// Try each container on src against each other host; take the best
		// strictly-improving move.
		var bestC *cluster.Container
		bestHost := -1
		bestImb := before
		for _, c := range src.Containers() {
			for _, dst := range cl.Hosts() {
				if dst.ID == src.ID || !dst.Fits(c.Spec) {
					continue
				}
				usage := c.CPUUsage()
				if err := cl.Remove(c.ID); err != nil {
					continue
				}
				moved, err := cl.Place(c.Spec, dst.ID)
				if err == nil {
					moved.SetCPUUsage(usage)
					if imb := cl.Imbalance(); imb < bestImb-1e-12 {
						bestImb = imb
						bestC, bestHost = c, dst.ID
					}
					cl.Remove(moved.ID)
				}
				back, err := cl.Place(c.Spec, src.ID)
				if err != nil {
					// Should not happen (we just removed it); give up on
					// this container.
					continue
				}
				back.SetCPUUsage(usage)
				c = back
			}
		}
		if bestC == nil {
			return moves
		}
		// Re-execute the best move for real. bestC may have been re-created
		// above, so locate a container of the same spec on src.
		var victim *cluster.Container
		for _, c := range src.Containers() {
			if c.Spec == bestC.Spec {
				victim = c
				break
			}
		}
		if victim == nil {
			return moves
		}
		usage := victim.CPUUsage()
		cl.Remove(victim.ID)
		if moved, err := cl.Place(victim.Spec, bestHost); err == nil {
			moved.SetCPUUsage(usage)
			moves++
		} else {
			if back, err2 := cl.Place(victim.Spec, src.ID); err2 == nil {
				back.SetCPUUsage(usage)
			}
			return moves
		}
	}
	return moves
}
