// Package parallel provides a bounded worker pool for fanning out
// independent units of work across CPU cores while keeping output
// deterministic.
//
// The determinism contract: callers hand the pool an *indexed* set of
// independent tasks, each of which derives all of its randomness from an
// explicit seed computed from the task index (never from a shared RNG or
// from execution order). Results are collected into slots addressed by the
// same index, so the merged output is identical regardless of worker count
// or interleaving. Under that contract ForEach/Map with Workers()==N is
// output-equivalent to a sequential loop.
//
// The pool is NOT safe for loops whose iterations share mutable state
// (a shared *stats.RNG, an incrementing seed counter consumed
// data-dependently, a cluster mutated in place) or whose purpose is to
// measure wall-clock time of the body; those must stay sequential.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the pool width used when a call does not override
// it. 0 means "use runtime.GOMAXPROCS(0)".
var defaultWorkers atomic.Int64

// SetWorkers sets the default worker count for ForEach and Map. n <= 0
// resets to the GOMAXPROCS default. It is safe to call concurrently with
// running pools; in-flight calls keep the width they started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers reports the current default worker count (GOMAXPROCS(0) when
// unset).
func Workers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for i in [0, n) on a bounded pool of Workers()
// goroutines. Task indices are handed out atomically, every started task
// runs to completion, and ForEach returns the error from the
// lowest-indexed failing task (matching what a sequential loop that stops
// at the first error would surface). After the first observed failure,
// workers stop picking up new indices, so later tasks may never run —
// exactly like the sequential loop they replace.
//
// With a single worker (or n == 1) fn runs on the calling goroutine with
// no synchronization overhead.
func ForEach(n int, fn func(i int) error) error {
	return forEach(n, Workers(), fn)
}

func forEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64 // next index to hand out
		failed atomic.Bool  // set once any task errors
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Map runs fn(i) for i in [0, n) on the pool and returns the results in
// index order. On error the slice is nil and the error is the one from the
// lowest-indexed failing task.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
