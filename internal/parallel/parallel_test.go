package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsAll(t *testing.T) {
	var ran [257]atomic.Bool
	if err := forEach(len(ran), 8, func(i int) error {
		if ran[i].Swap(true) {
			return fmt.Errorf("index %d ran twice", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("index %d never ran", i)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	if err := ForEach(0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n<=0")
	}
}

// TestFirstErrorLowestIndex hammers the error path concurrently: many tasks
// fail, and the reported error must always be the lowest-indexed failure
// among those that ran.
func TestFirstErrorLowestIndex(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		err := forEach(64, 8, func(i int) error {
			if i%3 == 1 { // 1, 4, 7, ... fail
				return fmt.Errorf("task %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
		// Lowest failing index overall is 1; with 8 workers racing, index 1
		// is always started (it is among the first 8 handed out) so the
		// winner must be task 1.
		if err.Error() != "task 1" {
			t.Fatalf("trial %d: got %v, want task 1", trial, err)
		}
	}
}

// TestSimultaneousFailuresLowestIndexWins is the regression test for the
// lowest-index-error contract under the worst-case race: every worker's
// task fails at the same instant. A rendezvous barrier holds the first
// `workers` tasks until all of them have started, then releases them to
// fail together. The contract requires (a) the returned error is from the
// lowest started index, and (b) no new indices are dispatched once every
// worker has observed a failure — the remaining tasks never start.
func TestSimultaneousFailuresLowestIndexWins(t *testing.T) {
	const workers = 8
	const n = 10000
	for trial := 0; trial < 25; trial++ {
		var started atomic.Int64
		release := make(chan struct{})
		arrived := make(chan struct{}, workers)
		go func() {
			for i := 0; i < workers; i++ {
				<-arrived
			}
			close(release) // all workers hold a task; fail them together
		}()
		err := forEach(n, workers, func(i int) error {
			started.Add(1)
			arrived <- struct{}{}
			<-release
			return fmt.Errorf("task %d", i)
		})
		if err == nil || err.Error() != "task 0" {
			t.Fatalf("trial %d: got %v, want task 0", trial, err)
		}
		// Indices are handed out in order, so the barrier held exactly
		// tasks 0..workers-1; after the simultaneous failure no worker may
		// dispatch another index.
		if got := started.Load(); got != workers {
			t.Fatalf("trial %d: %d tasks started, want exactly %d", trial, got, workers)
		}
	}
}

// TestLateLowIndexFailureStillWins pins the other half of the contract:
// when a high-index task fails first and a lower-index task (already
// started) fails afterwards, the lower index must still win because every
// started failing task records its error before the pool returns.
func TestLateLowIndexFailureStillWins(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		highFailed := make(chan struct{})
		err := forEach(2, 2, func(i int) error {
			if i == 1 {
				close(highFailed)
				return fmt.Errorf("task %d", i)
			}
			<-highFailed // fail strictly after task 1 has failed
			return fmt.Errorf("task %d", i)
		})
		if err == nil || err.Error() != "task 0" {
			t.Fatalf("trial %d: got %v, want task 0", trial, err)
		}
	}
}

func TestErrorStopsDispatch(t *testing.T) {
	var started atomic.Int64
	sentinel := errors.New("boom")
	err := forEach(10000, 4, func(i int) error {
		started.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if n := started.Load(); n >= 10000 {
		t.Fatalf("dispatch did not stop early: %d tasks started", n)
	}
}

func TestSequentialFallbackStopsAtFirstError(t *testing.T) {
	var calls []int
	err := forEach(10, 1, func(i int) error {
		calls = append(calls, i)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || err.Error() != "stop" {
		t.Fatalf("got %v", err)
	}
	if len(calls) != 4 {
		t.Fatalf("sequential fallback ran %v, want exactly [0 1 2 3]", calls)
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() after negative = %d, want GOMAXPROCS", got)
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(8, func(i int) (string, error) {
		if i >= 4 {
			return "", fmt.Errorf("bad %d", i)
		}
		return "ok", nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatal("expected nil slice on error")
	}
}

// TestDeterministicMerge checks the core contract: per-index seeds plus
// ordered collection give identical output at any worker count.
func TestDeterministicMerge(t *testing.T) {
	run := func(workers int) []uint64 {
		out := make([]uint64, 64)
		if err := forEach(64, workers, func(i int) error {
			x := uint64(i)*2654435761 + 12345 // per-index "seed"
			for k := 0; k < 100; k++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
			}
			out[i] = x
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		par := run(w)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: out[%d] differs", w, i)
			}
		}
	}
}
