// Package workload generates the request streams and background interference
// that drive the simulated cluster: static Poisson workloads, Alibaba-style
// diurnal dynamic workloads, replayed traces, and iBench-style interference
// injection. It also defines SLA specifications for online services.
package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"erms/internal/stats"
)

// SLA is the service-level agreement for one online service: the tail
// percentile of end-to-end latency must stay below Threshold.
type SLA struct {
	Service string
	// Threshold is the end-to-end latency bound in milliseconds.
	Threshold float64
	// Percentile is the tail percentile the bound applies to (e.g. 0.95).
	Percentile float64
}

// Validate checks the SLA for well-formedness.
func (s SLA) Validate() error {
	if s.Service == "" {
		return errors.New("workload: SLA with empty service")
	}
	if s.Threshold <= 0 {
		return fmt.Errorf("workload: SLA threshold %v must be positive", s.Threshold)
	}
	if s.Percentile <= 0 || s.Percentile >= 1 {
		return fmt.Errorf("workload: SLA percentile %v must be in (0,1)", s.Percentile)
	}
	return nil
}

// P95SLA builds the common 95th-percentile SLA used throughout the paper.
func P95SLA(service string, thresholdMs float64) SLA {
	return SLA{Service: service, Threshold: thresholdMs, Percentile: 0.95}
}

// Outcome classifies one end-to-end request against an SLA. The paper's
// infallible data plane only distinguished fast from slow; with the
// resilience layer a request can also fail outright (deadline expired,
// retries exhausted, breaker open, shed, or the serving container crashed).
type Outcome int

// Request outcomes.
const (
	// OutcomeSuccess: completed within the SLA threshold.
	OutcomeSuccess Outcome = iota
	// OutcomeSlow: completed, but above the SLA threshold.
	OutcomeSlow
	// OutcomeError: failed; no response reached the client.
	OutcomeError
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "success"
	case OutcomeSlow:
		return "slow"
	case OutcomeError:
		return "error"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Classify maps one request to its outcome: failed requests are errors
// regardless of timing; completed requests are slow when their latency
// exceeds the SLA threshold. A zero-threshold SLA (no bound configured)
// never classifies a completed request as slow.
func (s SLA) Classify(latencyMs float64, failed bool) Outcome {
	switch {
	case failed:
		return OutcomeError
	case s.Threshold > 0 && latencyMs > s.Threshold:
		return OutcomeSlow
	default:
		return OutcomeSuccess
	}
}

// Tier is the SLO tier of a client cohort: how much the platform is willing
// to sacrifice this traffic when capacity runs short. Admission control sheds
// the lower tiers (batch first, then sheddable) before touching standard
// traffic, and touches critical traffic last of all.
type Tier int

// SLO tiers, ordered from most to least protected.
const (
	// TierCritical: revenue/safety traffic; shed only when nothing else is
	// left to shed.
	TierCritical Tier = iota
	// TierStandard: the default tier; historical behaviour is unchanged for
	// standard traffic.
	TierStandard
	// TierSheddable: best-effort interactive traffic; preferred shedding
	// victim ahead of standard.
	TierSheddable
	// TierBatch: offline/bulk traffic; first to go under pressure.
	TierBatch

	// NumTiers is the number of SLO tiers (for per-tier accumulator arrays).
	NumTiers = 4
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierCritical:
		return "critical"
	case TierStandard:
		return "standard"
	case TierSheddable:
		return "sheddable"
	case TierBatch:
		return "batch"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Valid reports whether t is one of the defined tiers.
func (t Tier) Valid() bool { return t >= TierCritical && t <= TierBatch }

// ParseTier maps a tier name to its Tier.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "critical":
		return TierCritical, nil
	case "standard":
		return TierStandard, nil
	case "sheddable":
		return TierSheddable, nil
	case "batch":
		return TierBatch, nil
	}
	return 0, fmt.Errorf("workload: unknown SLO tier %q (want critical, standard, sheddable, or batch)", s)
}

// Tiers lists the tiers in protection order (critical first).
func Tiers() []Tier { return []Tier{TierCritical, TierStandard, TierSheddable, TierBatch} }

// Pattern yields the offered load of one service as a function of time.
type Pattern interface {
	// RateAt returns the arrival rate in requests per minute at time t
	// (minutes since the start of the experiment).
	RateAt(t float64) float64
	// String describes the pattern.
	String() string
}

// Static is a constant-rate pattern.
type Static struct {
	// Rate is in requests per minute.
	Rate float64
}

// RateAt returns the constant rate.
func (s Static) RateAt(float64) float64 { return s.Rate }

func (s Static) String() string { return fmt.Sprintf("Static(%g req/min)", s.Rate) }

// Diurnal is a day-night pattern: a sinusoid between Base and Peak with the
// given period, plus optional short-lived spikes. This is the synthetic
// substitute for Alibaba's dynamic production workloads (§6.3.2).
type Diurnal struct {
	Base      float64 // trough rate, req/min
	Peak      float64 // crest rate, req/min
	PeriodMin float64 // length of one cycle in minutes (1440 = one day)
	PhaseMin  float64 // phase shift in minutes
	// Spikes lists transient surges layered on top of the sinusoid.
	Spikes []Spike
}

// Spike is a short surge: between Start and Start+Duration the rate is
// multiplied by Factor.
type Spike struct {
	Start    float64
	Duration float64
	Factor   float64
}

// RateAt evaluates the diurnal curve.
func (d Diurnal) RateAt(t float64) float64 {
	period := d.PeriodMin
	if period <= 0 {
		period = 1440
	}
	mid := (d.Base + d.Peak) / 2
	amp := (d.Peak - d.Base) / 2
	rate := mid + amp*math.Sin(2*math.Pi*(t+d.PhaseMin)/period)
	for _, s := range d.Spikes {
		if t >= s.Start && t < s.Start+s.Duration {
			rate *= s.Factor
		}
	}
	if rate < 0 {
		rate = 0
	}
	return rate
}

func (d Diurnal) String() string {
	return fmt.Sprintf("Diurnal(base=%g, peak=%g, period=%gmin, %d spikes)", d.Base, d.Peak, d.PeriodMin, len(d.Spikes))
}

// Trace replays a recorded rate series with piece-wise-linear interpolation;
// each sample covers StepMin minutes.
type Trace struct {
	Rates   []float64
	StepMin float64
	Name    string
}

// RateAt interpolates the trace; times beyond the trace hold the last value.
func (tr Trace) RateAt(t float64) float64 {
	if len(tr.Rates) == 0 {
		return 0
	}
	step := tr.StepMin
	if step <= 0 {
		step = 1
	}
	pos := t / step
	if pos <= 0 {
		return tr.Rates[0]
	}
	lo := int(pos)
	if lo >= len(tr.Rates)-1 {
		return tr.Rates[len(tr.Rates)-1]
	}
	frac := pos - float64(lo)
	return tr.Rates[lo]*(1-frac) + tr.Rates[lo+1]*frac
}

func (tr Trace) String() string {
	return fmt.Sprintf("Trace(%q, %d samples, step=%gmin)", tr.Name, len(tr.Rates), tr.StepMin)
}

// AlibabaLikeTrace synthesizes a dynamic workload trace with the shape of the
// Alibaba production workloads used in §6.3.2: a diurnal swell, minute-level
// jitter, and a few sharp surges. The result is deterministic for a given
// seed.
func AlibabaLikeTrace(seed uint64, minutes int, base, peak float64) Trace {
	r := stats.NewRNG(seed)
	rates := make([]float64, minutes)
	d := Diurnal{Base: base, Peak: peak, PeriodMin: float64(minutes)}
	// Place 2-4 surges at random positions.
	nSpikes := 2 + r.Intn(3)
	for i := 0; i < nSpikes; i++ {
		d.Spikes = append(d.Spikes, Spike{
			Start:    r.Float64() * float64(minutes) * 0.9,
			Duration: 3 + r.Float64()*8,
			Factor:   1.3 + r.Float64()*0.7,
		})
	}
	for m := 0; m < minutes; m++ {
		jitter := 1 + 0.08*r.NormFloat64()
		if jitter < 0.5 {
			jitter = 0.5
		}
		rates[m] = d.RateAt(float64(m)) * jitter
	}
	return Trace{Rates: rates, StepMin: 1, Name: fmt.Sprintf("alibaba-like-%d", seed)}
}

// Arrivals generates Poisson arrival timestamps (in milliseconds since the
// epoch of the window) for a pattern over [startMin, endMin) minutes. The
// rate is sampled per minute, matching how the tracing stack aggregates
// workloads.
func Arrivals(p Pattern, r *stats.RNG, startMin, endMin float64) []float64 {
	var out []float64
	for m := math.Floor(startMin); m < endMin; m++ {
		lo := math.Max(m, startMin)
		hi := math.Min(m+1, endMin)
		if hi <= lo {
			continue
		}
		rate := p.RateAt(m) * (hi - lo) // expected arrivals in this slice
		n := stats.Poisson(r, rate)
		for i := 0; i < n; i++ {
			tMin := lo + r.Float64()*(hi-lo)
			out = append(out, tMin*60_000) // ms
		}
	}
	sort.Float64s(out)
	return out
}

// Interference is a background load level on a host, expressed as CPU and
// memory utilization fractions contributed by colocated batch jobs. It is
// the synthetic stand-in for iBench workload injection (§6.2, §6.4.3).
type Interference struct {
	CPU float64 // fraction of host CPU consumed by background work
	Mem float64 // fraction of host memory consumed by background work
}

// Add returns the component-wise sum of two interference levels (a transient
// spike stacked on the steady background; callers clamp as needed).
func (i Interference) Add(o Interference) Interference {
	return Interference{CPU: i.CPU + o.CPU, Mem: i.Mem + o.Mem}
}

// Clamp bounds both utilizations to [0, max].
func (i Interference) Clamp(max float64) Interference {
	c := i
	if c.CPU < 0 {
		c.CPU = 0
	}
	if c.Mem < 0 {
		c.Mem = 0
	}
	if c.CPU > max {
		c.CPU = max
	}
	if c.Mem > max {
		c.Mem = max
	}
	return c
}

// InterferenceLevels are the canonical profiling levels, spanning the host
// conditions of Fig. 3 (e.g. 47% CPU / 35% mem, 27% CPU / 62% mem).
var InterferenceLevels = []Interference{
	{CPU: 0.10, Mem: 0.10},
	{CPU: 0.27, Mem: 0.30},
	{CPU: 0.47, Mem: 0.35},
	{CPU: 0.27, Mem: 0.62},
	{CPU: 0.62, Mem: 0.50},
	{CPU: 0.75, Mem: 0.70},
}

// Injector produces a deterministic per-host interference schedule: each host
// holds a level for HoldMin minutes, then switches, mimicking the hourly
// iBench injection used for profiling data collection.
type Injector struct {
	Levels  []Interference
	HoldMin float64
	seed    uint64
}

// NewInjector builds an injector over the given levels (defaults to
// InterferenceLevels when nil).
func NewInjector(seed uint64, holdMin float64, levels []Interference) *Injector {
	if len(levels) == 0 {
		levels = InterferenceLevels
	}
	if holdMin <= 0 {
		holdMin = 60
	}
	return &Injector{Levels: levels, HoldMin: holdMin, seed: seed}
}

// At returns the interference on the given host at time t (minutes). The
// schedule is a deterministic hash of (host, epoch), so repeated queries
// agree and different hosts see different sequences.
func (inj *Injector) At(host int, tMin float64) Interference {
	epoch := uint64(tMin / inj.HoldMin)
	h := inj.seed ^ (uint64(host+1) * 0x9e3779b97f4a7c15) ^ (epoch * 0xb5026f5aa96619e9)
	r := stats.NewRNG(h)
	return inj.Levels[r.Intn(len(inj.Levels))]
}
