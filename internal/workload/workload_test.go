package workload

import (
	"math"
	"testing"
	"testing/quick"

	"erms/internal/stats"
)

func TestSLAValidate(t *testing.T) {
	good := P95SLA("svc", 200)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Percentile != 0.95 {
		t.Fatalf("percentile = %v", good.Percentile)
	}
	bad := []SLA{
		{Service: "", Threshold: 100, Percentile: 0.95},
		{Service: "s", Threshold: 0, Percentile: 0.95},
		{Service: "s", Threshold: 100, Percentile: 0},
		{Service: "s", Threshold: 100, Percentile: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestStaticPattern(t *testing.T) {
	p := Static{Rate: 1000}
	for _, tm := range []float64{0, 5, 1e6} {
		if p.RateAt(tm) != 1000 {
			t.Fatalf("rate at %v = %v", tm, p.RateAt(tm))
		}
	}
}

func TestDiurnalRange(t *testing.T) {
	d := Diurnal{Base: 100, Peak: 900, PeriodMin: 1440}
	min, max := math.Inf(1), math.Inf(-1)
	for tm := 0.0; tm < 1440; tm++ {
		r := d.RateAt(tm)
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if math.Abs(min-100) > 2 || math.Abs(max-900) > 2 {
		t.Fatalf("diurnal range [%v, %v], want [100, 900]", min, max)
	}
}

func TestDiurnalSpike(t *testing.T) {
	d := Diurnal{Base: 100, Peak: 100, PeriodMin: 100,
		Spikes: []Spike{{Start: 10, Duration: 5, Factor: 2}}}
	if got := d.RateAt(12); math.Abs(got-200) > 1e-9 {
		t.Fatalf("spiked rate = %v", got)
	}
	if got := d.RateAt(20); math.Abs(got-100) > 1e-9 {
		t.Fatalf("post-spike rate = %v", got)
	}
}

func TestDiurnalNeverNegative(t *testing.T) {
	d := Diurnal{Base: -500, Peak: 100, PeriodMin: 60}
	for tm := 0.0; tm < 120; tm += 0.5 {
		if d.RateAt(tm) < 0 {
			t.Fatalf("negative rate at %v", tm)
		}
	}
}

func TestTraceInterpolation(t *testing.T) {
	tr := Trace{Rates: []float64{0, 100, 50}, StepMin: 1}
	cases := map[float64]float64{
		0:   0,
		0.5: 50,
		1:   100,
		1.5: 75,
		2:   50,
		99:  50, // beyond end holds last value
		-1:  0,  // before start holds first value
	}
	for tm, want := range cases {
		if got := tr.RateAt(tm); math.Abs(got-want) > 1e-9 {
			t.Fatalf("RateAt(%v) = %v, want %v", tm, got, want)
		}
	}
	if (Trace{}).RateAt(5) != 0 {
		t.Fatal("empty trace should be 0")
	}
}

func TestAlibabaLikeTraceDeterministic(t *testing.T) {
	a := AlibabaLikeTrace(7, 120, 100, 1000)
	b := AlibabaLikeTrace(7, 120, 100, 1000)
	if len(a.Rates) != 120 {
		t.Fatalf("trace length = %d", len(a.Rates))
	}
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
	c := AlibabaLikeTrace(8, 120, 100, 1000)
	diff := 0
	for i := range a.Rates {
		if a.Rates[i] != c.Rates[i] {
			diff++
		}
	}
	if diff < 60 {
		t.Fatalf("different seeds too similar: only %d/120 samples differ", diff)
	}
	for i, r := range a.Rates {
		if r < 0 {
			t.Fatalf("negative rate at %d", i)
		}
	}
}

func TestArrivalsRate(t *testing.T) {
	r := stats.NewRNG(3)
	arr := Arrivals(Static{Rate: 6000}, r, 0, 10) // expect ~60000 arrivals
	if n := len(arr); math.Abs(float64(n)-60000) > 1500 {
		t.Fatalf("arrivals = %d, want ~60000", n)
	}
	// Sorted and within the window.
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals unsorted")
		}
	}
	if arr[0] < 0 || arr[len(arr)-1] >= 10*60_000 {
		t.Fatalf("arrivals outside window: [%v, %v]", arr[0], arr[len(arr)-1])
	}
}

func TestArrivalsPartialWindow(t *testing.T) {
	r := stats.NewRNG(5)
	arr := Arrivals(Static{Rate: 60000}, r, 2.25, 2.75) // half a minute
	if n := float64(len(arr)); math.Abs(n-30000) > 1200 {
		t.Fatalf("arrivals in half-minute = %v, want ~30000", n)
	}
	for _, a := range arr {
		if a < 2.25*60_000 || a >= 2.75*60_000 {
			t.Fatalf("arrival %v outside window", a)
		}
	}
}

func TestArrivalsEmptyWindow(t *testing.T) {
	r := stats.NewRNG(5)
	if arr := Arrivals(Static{Rate: 100}, r, 5, 5); len(arr) != 0 {
		t.Fatalf("empty window produced %d arrivals", len(arr))
	}
}

func TestInterferenceClamp(t *testing.T) {
	i := Interference{CPU: 1.5, Mem: -0.2}.Clamp(0.9)
	if i.CPU != 0.9 || i.Mem != 0 {
		t.Fatalf("clamp = %+v", i)
	}
}

func TestInjectorDeterministicAndVaried(t *testing.T) {
	inj := NewInjector(1, 60, nil)
	a := inj.At(3, 30)
	b := inj.At(3, 45) // same hold window
	if a != b {
		t.Fatal("interference changed within hold window")
	}
	if inj.At(3, 30) != a {
		t.Fatal("injector not deterministic")
	}
	// Across epochs and hosts the level eventually changes.
	changed := false
	for e := 0; e < 20 && !changed; e++ {
		if inj.At(3, float64(e)*60+1) != a {
			changed = true
		}
	}
	if !changed {
		t.Fatal("interference never changes across epochs")
	}
}

func TestInjectorLevelsAreValidUtilizations(t *testing.T) {
	f := func(host uint8, epoch uint8) bool {
		inj := NewInjector(9, 60, nil)
		iv := inj.At(int(host), float64(epoch)*60)
		return iv.CPU >= 0 && iv.CPU <= 1 && iv.Mem >= 0 && iv.Mem <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range []Pattern{Static{1}, Diurnal{Base: 1, Peak: 2}, Trace{Name: "x"}} {
		if p.String() == "" {
			t.Fatalf("%T empty string", p)
		}
	}
}

func TestSLAClassify(t *testing.T) {
	sla := P95SLA("svc", 100)
	cases := []struct {
		latency float64
		failed  bool
		want    Outcome
	}{
		{50, false, OutcomeSuccess},
		{100, false, OutcomeSuccess}, // at the threshold is within SLA
		{150, false, OutcomeSlow},
		{50, true, OutcomeError},
		{150, true, OutcomeError}, // failure dominates slowness
	}
	for _, tc := range cases {
		if got := sla.Classify(tc.latency, tc.failed); got != tc.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", tc.latency, tc.failed, got, tc.want)
		}
	}
	// No threshold configured: nothing is slow, failures still error.
	free := SLA{Service: "svc"}
	if got := free.Classify(1e9, false); got != OutcomeSuccess {
		t.Errorf("unthresholded Classify = %v, want success", got)
	}
	for _, o := range []Outcome{OutcomeSuccess, OutcomeSlow, OutcomeError} {
		if o.String() == "" {
			t.Errorf("Outcome(%d) has no name", o)
		}
	}
}
