package graph

import (
	"testing"
)

func variantA() *Graph {
	g := New("svc", "A")
	g.AddStage(g.Root, "B", "C")
	g.AddStage(g.Root, "D")
	return g
}

func variantA2() *Graph { // one extra call, very similar to A
	g := variantA()
	g.AddStage(g.NodesFor("D")[0], "E")
	return g
}

func variantB() *Graph { // disjoint call set under the same root
	g := New("svc", "A")
	g.AddStage(g.Root, "X")
	g.AddStage(g.NodesFor("X")[0], "Y", "Z")
	return g
}

func TestSimilarity(t *testing.T) {
	if s := Similarity(variantA(), variantA()); s != 1 {
		t.Fatalf("self similarity = %v", s)
	}
	if s := Similarity(variantA(), variantB()); s != 0 {
		t.Fatalf("disjoint similarity = %v", s)
	}
	s := Similarity(variantA(), variantA2())
	if s <= 0.5 || s >= 1 {
		t.Fatalf("near-variant similarity = %v", s)
	}
	// Single-node graphs.
	if s := Similarity(New("s", "A"), New("s", "A")); s != 1 {
		t.Fatalf("single-node same root = %v", s)
	}
	if s := Similarity(New("s", "A"), New("s", "B")); s != 0 {
		t.Fatalf("single-node diff root = %v", s)
	}
}

func TestClusterSeparatesDissimilar(t *testing.T) {
	variants := []*Graph{variantA(), variantA2(), variantB(), variantA()}
	classes, err := Cluster("svc", variants, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(classes))
	}
	// Largest class first: the A-family (3 members).
	if classes[0].Len() < classes[1].Len() && len(classes[0].Microservices()) < len(classes[1].Microservices()) {
		t.Fatalf("class ordering wrong: %d vs %d nodes", classes[0].Len(), classes[1].Len())
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Class names are disambiguated.
	if classes[0].Service == classes[1].Service {
		t.Fatalf("duplicate class service names: %s", classes[0].Service)
	}
}

func TestClusterSingleClassKeepsName(t *testing.T) {
	classes, err := Cluster("svc", []*Graph{variantA(), variantA2()}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 1 || classes[0].Service != "svc" {
		t.Fatalf("classes = %v", classes)
	}
}

func TestClusterThresholdExtremes(t *testing.T) {
	variants := []*Graph{variantA(), variantA2(), variantB()}
	// Threshold 0: everything joins the first class.
	one, err := Cluster("svc", variants, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("threshold 0 classes = %d", len(one))
	}
	// Threshold 1: only exact duplicates merge.
	exact, err := Cluster("svc", []*Graph{variantA(), variantA(), variantB()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 2 {
		t.Fatalf("threshold 1 classes = %d", len(exact))
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster("svc", nil, 0.5); err == nil {
		t.Fatal("empty variants accepted")
	}
	if _, err := Cluster("svc", []*Graph{variantA()}, 2); err == nil {
		t.Fatal("bad threshold accepted")
	}
}

func TestOverprovisionRatio(t *testing.T) {
	// Two dissimilar families: the complete graph unions both, so requests
	// of either family see ~double the nodes they need.
	variants := []*Graph{variantA(), variantA(), variantB(), variantB()}
	ratio, err := OverprovisionRatio("svc", variants, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 1.2 {
		t.Fatalf("overprovision ratio = %v, want substantially > 1", ratio)
	}
	// A single family has no overprovisioning.
	same, err := OverprovisionRatio("svc", []*Graph{variantA(), variantA()}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if same != 1 {
		t.Fatalf("single-family ratio = %v, want 1", same)
	}
}
