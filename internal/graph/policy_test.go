package graph

import "testing"

func TestSetPolicyCopies(t *testing.T) {
	g := New("svc", "A")
	p := EdgePolicy{TimeoutMs: 10, MaxAttempts: 3}
	g.Root.SetPolicy(p)
	p.TimeoutMs = 99 // mutating the caller's copy must not leak in
	if g.Root.Policy.TimeoutMs != 10 || g.Root.Policy.MaxAttempts != 3 {
		t.Fatalf("policy not copied: %+v", g.Root.Policy)
	}
}

func TestClonePreservesPolicy(t *testing.T) {
	g := New("svc", "A")
	b := g.AddStage(g.Root, "B")[0]
	b.SetPolicy(EdgePolicy{TimeoutMs: 25, MaxAttempts: 2})
	c := g.Clone()
	cb := c.NodesFor("B")[0]
	if cb.Policy == nil || cb.Policy.TimeoutMs != 25 || cb.Policy.MaxAttempts != 2 {
		t.Fatalf("clone lost edge policy: %+v", cb.Policy)
	}
	if cb.Policy == b.Policy {
		t.Fatal("clone shares the policy pointer with the original")
	}
	cb.Policy.TimeoutMs = 1
	if b.Policy.TimeoutMs != 25 {
		t.Fatal("mutating the clone's policy affected the original")
	}
	if ca := c.Root; ca.Policy != nil {
		t.Fatalf("clone invented a policy on the root: %+v", ca.Policy)
	}
}

func TestMergePreservesPolicy(t *testing.T) {
	// The merged graph carries each variant's policy on the corresponding
	// node: the root from the first variant, per-child policies from
	// whichever variant contributes the child.
	v1 := New("svc", "A")
	v1.Root.SetPolicy(EdgePolicy{TimeoutMs: 50})
	b1 := v1.AddStage(v1.Root, "B")[0]
	b1.SetPolicy(EdgePolicy{MaxAttempts: 4})
	v2 := New("svc", "A")
	v2.AddStage(v2.Root, "B")
	v2.AddStage(v2.Root, "C")

	m, err := Merge("svc", v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Root.Policy == nil || m.Root.Policy.TimeoutMs != 50 {
		t.Fatalf("merge lost the root policy: %+v", m.Root.Policy)
	}
	mb := m.NodesFor("B")[0]
	if mb.Policy == nil || mb.Policy.MaxAttempts != 4 {
		t.Fatalf("merge lost B's policy: %+v", mb.Policy)
	}
	if mb.Policy == b1.Policy {
		t.Fatal("merge shares the policy pointer with the variant")
	}
	if mc := m.NodesFor("C")[0]; mc.Policy != nil {
		t.Fatalf("merge invented a policy on C: %+v", mc.Policy)
	}
}
