// Package graph models microservice dependency graphs: which microservice
// calls which, and whether sibling calls run sequentially or in parallel.
//
// A graph is a call tree rooted at the entering microservice of an online
// service. Each node calls its downstream microservices in a sequence of
// stages; calls within one stage run in parallel, and stages run one after
// another. This representation expresses every composition the paper uses
// (Fig. 1: T calls Url and U in parallel, then calls C) and is the input to
// Erms' graph-merge procedure (Algorithm 1).
//
// The same microservice may appear in several graphs (microservice sharing
// across services, §2.3) and, for diamond-shaped dependencies, at several
// positions within a single graph. Node identity is positional; Node.Microservice
// names the underlying deployable unit.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// EdgePolicy tunes the data-plane resilience behaviour of the call edge
// entering a node (parent → node; for the root, client → root). Zero fields
// inherit the simulation-wide defaults of sim.Resilience; the policy is inert
// when the resilience layer is disabled.
type EdgePolicy struct {
	// TimeoutMs is the per-attempt timeout for this call. 0 inherits the
	// global default; negative disables the per-attempt timeout (the call is
	// bounded only by the propagated request deadline).
	TimeoutMs float64
	// MaxAttempts caps attempts (first call + retries) on this edge.
	// 0 inherits; 1 disables retries; negative is treated as 1.
	MaxAttempts int
}

// Node is one call-tree position occupied by a microservice.
type Node struct {
	// Microservice is the name of the deployed microservice handling the call.
	Microservice string
	// ID is unique within the graph, assigned in creation order.
	ID int
	// Stages holds the downstream calls: Stages[k] is the set of calls issued
	// in parallel during stage k, and stages execute sequentially.
	Stages [][]*Node
	// Parent is nil for the root.
	Parent *Node
	// Policy optionally overrides the resilience defaults for the call edge
	// entering this node. Nil inherits everything.
	Policy *EdgePolicy

	graph *Graph
}

// SetPolicy attaches an edge policy to the call entering the node and
// returns the node (for chaining during graph construction).
func (n *Node) SetPolicy(p EdgePolicy) *Node {
	cp := p
	n.Policy = &cp
	return n
}

// IsLeaf reports whether the node issues no downstream calls.
func (n *Node) IsLeaf() bool { return len(n.Stages) == 0 }

// Children returns all downstream nodes across all stages, in stage order.
func (n *Node) Children() []*Node {
	var out []*Node
	for _, st := range n.Stages {
		out = append(out, st...)
	}
	return out
}

// String returns "microservice#id".
func (n *Node) String() string { return fmt.Sprintf("%s#%d", n.Microservice, n.ID) }

// Graph is a dependency graph for one online service.
type Graph struct {
	// Service names the online service this graph belongs to.
	Service string
	// Root is the entering microservice (e.g. an Nginx frontend).
	Root *Node

	nodes []*Node
}

// New creates a graph for the named service with a root node running the
// given microservice.
func New(service, rootMicroservice string) *Graph {
	g := &Graph{Service: service}
	g.Root = g.newNode(rootMicroservice, nil)
	return g
}

func (g *Graph) newNode(microservice string, parent *Node) *Node {
	n := &Node{Microservice: microservice, ID: len(g.nodes), Parent: parent, graph: g}
	g.nodes = append(g.nodes, n)
	return n
}

// AddStage appends a new stage of parallel calls from parent to the named
// microservices and returns the created nodes in argument order.
func (g *Graph) AddStage(parent *Node, microservices ...string) []*Node {
	if parent == nil || parent.graph != g {
		panic("graph: AddStage parent does not belong to this graph")
	}
	if len(microservices) == 0 {
		panic("graph: AddStage needs at least one microservice")
	}
	stage := make([]*Node, len(microservices))
	for i, m := range microservices {
		stage[i] = g.newNode(m, parent)
	}
	parent.Stages = append(parent.Stages, stage)
	return stage
}

// AddSequential appends each named microservice as its own single-call stage
// under parent (i.e. the calls execute one after another) and returns the
// created nodes.
func (g *Graph) AddSequential(parent *Node, microservices ...string) []*Node {
	out := make([]*Node, 0, len(microservices))
	for _, m := range microservices {
		out = append(out, g.AddStage(parent, m)[0])
	}
	return out
}

// Nodes returns all nodes in creation order (root first).
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Len returns the number of nodes in the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Microservices returns the sorted set of distinct microservice names in the
// graph.
func (g *Graph) Microservices() []string {
	seen := make(map[string]bool, len(g.nodes))
	for _, n := range g.nodes {
		seen[n.Microservice] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// NodesFor returns all nodes occupied by the named microservice.
func (g *Graph) NodesFor(microservice string) []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if n.Microservice == microservice {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks structural invariants: non-empty microservice names, parent
// links consistent with stages, and every node reachable from the root.
func (g *Graph) Validate() error {
	if g.Root == nil {
		return errors.New("graph: nil root")
	}
	reachable := make(map[int]bool, len(g.nodes))
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.Microservice == "" {
			return fmt.Errorf("graph: node %d has empty microservice name", n.ID)
		}
		if reachable[n.ID] {
			return fmt.Errorf("graph: node %s visited twice (cycle or shared node)", n)
		}
		reachable[n.ID] = true
		for _, st := range n.Stages {
			if len(st) == 0 {
				return fmt.Errorf("graph: node %s has an empty stage", n)
			}
			for _, c := range st {
				if c.Parent != n {
					return fmt.Errorf("graph: node %s has wrong parent link", c)
				}
				if err := walk(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(g.Root); err != nil {
		return err
	}
	if len(reachable) != len(g.nodes) {
		return fmt.Errorf("graph: %d of %d nodes unreachable from root", len(g.nodes)-len(reachable), len(g.nodes))
	}
	return nil
}

// Clone returns a deep copy of the graph. Node IDs are preserved.
func (g *Graph) Clone() *Graph {
	ng := &Graph{Service: g.Service}
	ng.nodes = make([]*Node, len(g.nodes))
	var cp func(n *Node, parent *Node) *Node
	cp = func(n *Node, parent *Node) *Node {
		nn := &Node{Microservice: n.Microservice, ID: n.ID, Parent: parent, graph: ng}
		if n.Policy != nil {
			pol := *n.Policy
			nn.Policy = &pol
		}
		ng.nodes[n.ID] = nn
		for _, st := range n.Stages {
			nst := make([]*Node, len(st))
			for i, c := range st {
				nst[i] = cp(c, nn)
			}
			nn.Stages = append(nn.Stages, nst)
		}
		return nn
	}
	ng.Root = cp(g.Root, nil)
	return ng
}

// PreOrder returns nodes in depth-first pre-order (parents before children,
// stages in order).
func (g *Graph) PreOrder() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, st := range n.Stages {
			for _, c := range st {
				walk(c)
			}
		}
	}
	walk(g.Root)
	return out
}

// PostOrder returns nodes in depth-first post-order (children before
// parents). Algorithm 1 merges two-tier invocations in this order.
func (g *Graph) PostOrder() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, st := range n.Stages {
			for _, c := range st {
				walk(c)
			}
		}
		out = append(out, n)
	}
	walk(g.Root)
	return out
}

// TwoTierInvocation is one internal node together with its direct downstream
// calls — the unit Algorithm 1 merges (§4.2).
type TwoTierInvocation struct {
	Parent *Node
	Stages [][]*Node
}

// TwoTierInvocations returns the two-tier invocations of the graph in
// post-order (deepest first), matching Algorithm 1's merge order.
func (g *Graph) TwoTierInvocations() []TwoTierInvocation {
	var out []TwoTierInvocation
	for _, n := range g.PostOrder() {
		if !n.IsLeaf() {
			out = append(out, TwoTierInvocation{Parent: n, Stages: n.Stages})
		}
	}
	return out
}

// Depth returns the maximum number of nodes on any root-to-leaf chain.
func (g *Graph) Depth() int {
	var depth func(n *Node) int
	depth = func(n *Node) int {
		best := 0
		for _, st := range n.Stages {
			for _, c := range st {
				if d := depth(c); d > best {
					best = d
				}
			}
		}
		return best + 1
	}
	return depth(g.Root)
}

// EndToEnd computes the end-to-end latency of the service given a per-node
// latency function: a node's completion time is its own latency plus, for
// each stage in turn, the maximum subtree time within that stage (parallel
// calls overlap; stages serialize).
func (g *Graph) EndToEnd(latency func(*Node) float64) float64 {
	var total func(n *Node) float64
	total = func(n *Node) float64 {
		t := latency(n)
		for _, st := range n.Stages {
			var stageMax float64
			for _, c := range st {
				if v := total(c); v > stageMax {
					stageMax = v
				}
			}
			t += stageMax
		}
		return t
	}
	return total(g.Root)
}

// CriticalNodes returns the set of nodes on the critical path(s): nodes whose
// latency, if increased, would increase the end-to-end latency. Within each
// stage only the slowest child subtree (ties: all tied subtrees) is critical.
func (g *Graph) CriticalNodes(latency func(*Node) float64) []*Node {
	var total func(n *Node) float64
	total = func(n *Node) float64 {
		t := latency(n)
		for _, st := range n.Stages {
			var stageMax float64
			for _, c := range st {
				if v := total(c); v > stageMax {
					stageMax = v
				}
			}
			t += stageMax
		}
		return t
	}
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, st := range n.Stages {
			var stageMax float64
			for _, c := range st {
				if v := total(c); v > stageMax {
					stageMax = v
				}
			}
			for _, c := range st {
				if total(c) == stageMax {
					walk(c)
				}
			}
		}
	}
	walk(g.Root)
	return out
}

// DOT renders the graph in Graphviz dot format; parallel calls within one
// stage share a style annotation. Useful for debugging topologies.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Service)
	for _, n := range g.PreOrder() {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID, n.Microservice)
		for k, st := range n.Stages {
			for _, c := range st {
				style := "solid"
				if len(st) > 1 {
					style = "bold"
				}
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"s%d\", style=%s];\n", n.ID, c.ID, k, style)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Merge overlays several dependency-graph variants observed for the same
// service into one complete graph (§7, "Handling dynamic dependencies").
// Variants are matched position-wise: stage k's calls are unioned by
// microservice name. The result contains every call seen in any variant.
func Merge(service string, variants ...*Graph) (*Graph, error) {
	if len(variants) == 0 {
		return nil, errors.New("graph: Merge needs at least one variant")
	}
	root := variants[0].Root.Microservice
	for _, v := range variants[1:] {
		if v.Root.Microservice != root {
			return nil, fmt.Errorf("graph: Merge root mismatch: %s vs %s", root, v.Root.Microservice)
		}
	}
	out := New(service, root)
	for _, v := range variants {
		if v.Root.Policy != nil {
			pol := *v.Root.Policy
			out.Root.Policy = &pol
			break
		}
	}
	var merge func(dst *Node, srcs []*Node)
	merge = func(dst *Node, srcs []*Node) {
		maxStages := 0
		for _, s := range srcs {
			if len(s.Stages) > maxStages {
				maxStages = len(s.Stages)
			}
		}
		for k := 0; k < maxStages; k++ {
			// Union stage k across variants, preserving first-seen order.
			var order []string
			children := make(map[string][]*Node)
			for _, s := range srcs {
				if k >= len(s.Stages) {
					continue
				}
				for _, c := range s.Stages[k] {
					if _, ok := children[c.Microservice]; !ok {
						order = append(order, c.Microservice)
					}
					children[c.Microservice] = append(children[c.Microservice], c)
				}
			}
			if len(order) == 0 {
				continue
			}
			stage := out.AddStage(dst, order...)
			for i, name := range order {
				// The merged edge keeps the first policy seen across variants
				// (variants are ordered; first-seen wins, like stage union).
				for _, c := range children[name] {
					if c.Policy != nil {
						pol := *c.Policy
						stage[i].Policy = &pol
						break
					}
				}
				merge(stage[i], children[name])
			}
		}
	}
	roots := make([]*Node, len(variants))
	for i, v := range variants {
		roots[i] = v.Root
	}
	merge(out.Root, roots)
	return out, nil
}
