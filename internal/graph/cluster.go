package graph

import (
	"errors"
	"sort"
)

// Similarity returns the Jaccard similarity of two graphs' call edges
// (parent→child microservice pairs): 1 for identical call sets, 0 for
// disjoint ones. It is the distance used to cluster dynamic dependency-graph
// variants (§7, §9).
func Similarity(a, b *Graph) float64 {
	ea, eb := edgeSet(a), edgeSet(b)
	if len(ea) == 0 && len(eb) == 0 {
		if a.Root.Microservice == b.Root.Microservice {
			return 1
		}
		return 0
	}
	inter := 0
	for e := range ea {
		if eb[e] {
			inter++
		}
	}
	union := len(ea) + len(eb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

type edge struct{ from, to string }

func edgeSet(g *Graph) map[edge]bool {
	out := make(map[edge]bool)
	for _, n := range g.PreOrder() {
		for _, st := range n.Stages {
			for _, c := range st {
				out[edge{n.Microservice, c.Microservice}] = true
			}
		}
	}
	return out
}

// Cluster groups dynamic dependency-graph variants of one service into
// classes of mutually similar graphs (greedy leader clustering at the given
// similarity threshold) and merges each class into its complete graph.
//
// This implements the improvement sketched in the paper's conclusion (§9):
// instead of over-provisioning one complete graph that unions every variant,
// Erms can scale each variant class separately. Variants join the first
// class whose leader they resemble at least `threshold`; each class's
// complete graph is the Merge of its members.
func Cluster(service string, variants []*Graph, threshold float64) ([]*Graph, error) {
	if len(variants) == 0 {
		return nil, errors.New("graph: Cluster needs at least one variant")
	}
	if threshold < 0 || threshold > 1 {
		return nil, errors.New("graph: Cluster threshold must be in [0, 1]")
	}
	type class struct {
		leader  *Graph
		members []*Graph
	}
	var classes []*class
	for _, v := range variants {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		placed := false
		for _, c := range classes {
			if v.Root.Microservice == c.leader.Root.Microservice && Similarity(v, c.leader) >= threshold {
				c.members = append(c.members, v)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, &class{leader: v, members: []*Graph{v}})
		}
	}
	// Merge largest classes first so class indices are stable and the most
	// common variant is class 0.
	sort.SliceStable(classes, func(i, j int) bool { return len(classes[i].members) > len(classes[j].members) })
	out := make([]*Graph, 0, len(classes))
	for i, c := range classes {
		name := service
		if len(classes) > 1 {
			name = service + "#" + itoaSmall(i)
		}
		merged, err := Merge(name, c.members...)
		if err != nil {
			return nil, err
		}
		out = append(out, merged)
	}
	return out, nil
}

// OverprovisionRatio estimates how much larger the single complete graph is
// than a weighted mix of clustered classes: the node count of Merge(all)
// divided by the member-weighted average node count of the class merges.
// Values well above 1 indicate the §7 over-provisioning the clustering
// removes.
func OverprovisionRatio(service string, variants []*Graph, threshold float64) (float64, error) {
	classes, err := Cluster(service, variants, threshold)
	if err != nil {
		return 0, err
	}
	complete, err := Merge(service, variants...)
	if err != nil {
		return 0, err
	}
	// Weight each class by its member count (recover counts by re-running
	// the assignment).
	var weighted, total float64
	for _, v := range variants {
		best, bestSim := classes[0], -1.0
		for _, c := range classes {
			if v.Root.Microservice != c.Root.Microservice {
				continue
			}
			if s := Similarity(v, c); s > bestSim {
				best, bestSim = c, s
			}
		}
		weighted += float64(best.Len())
		total++
	}
	return float64(complete.Len()) / (weighted / total), nil
}

func itoaSmall(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [6]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
