package graph

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"erms/internal/stats"
)

// fig7 builds the paper's Fig. 7 graph: T calls Url and U in parallel, then
// calls C sequentially afterwards.
func fig7() (*Graph, map[string]*Node) {
	g := New("svc", "T")
	par := g.AddStage(g.Root, "Url", "U")
	seq := g.AddStage(g.Root, "C")
	return g, map[string]*Node{"T": g.Root, "Url": par[0], "U": par[1], "C": seq[0]}
}

func TestBuildAndValidate(t *testing.T) {
	g, nodes := fig7()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("len = %d", g.Len())
	}
	if nodes["Url"].Parent != g.Root || nodes["C"].Parent != g.Root {
		t.Fatal("parents wrong")
	}
	if len(g.Root.Stages) != 2 {
		t.Fatalf("stages = %d", len(g.Root.Stages))
	}
	if !nodes["C"].IsLeaf() || g.Root.IsLeaf() {
		t.Fatal("leaf detection wrong")
	}
}

func TestAddSequential(t *testing.T) {
	g := New("svc", "A")
	ns := g.AddSequential(g.Root, "B", "C", "D")
	if len(ns) != 3 || len(g.Root.Stages) != 3 {
		t.Fatalf("sequential add created %d nodes, %d stages", len(ns), len(g.Root.Stages))
	}
	for i, st := range g.Root.Stages {
		if len(st) != 1 || st[0] != ns[i] {
			t.Fatal("stage contents wrong")
		}
	}
}

func TestAddStagePanics(t *testing.T) {
	g := New("svc", "A")
	other := New("other", "X")
	for _, fn := range []func(){
		func() { g.AddStage(other.Root, "B") },
		func() { g.AddStage(g.Root) },
		func() { g.AddStage(nil, "B") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMicroservicesAndNodesFor(t *testing.T) {
	g := New("svc", "A")
	g.AddStage(g.Root, "B", "C")
	bs := g.NodesFor("B")
	g.AddStage(bs[0], "C") // C appears twice (diamond-ish)
	ms := g.Microservices()
	if len(ms) != 3 || ms[0] != "A" || ms[1] != "B" || ms[2] != "C" {
		t.Fatalf("microservices = %v", ms)
	}
	if len(g.NodesFor("C")) != 2 {
		t.Fatalf("NodesFor(C) = %d", len(g.NodesFor("C")))
	}
	if len(g.NodesFor("missing")) != 0 {
		t.Fatal("NodesFor(missing) should be empty")
	}
}

func TestPreOrderPostOrder(t *testing.T) {
	g, _ := fig7()
	pre := g.PreOrder()
	if pre[0].Microservice != "T" || len(pre) != 4 {
		t.Fatalf("preorder = %v", pre)
	}
	post := g.PostOrder()
	if post[len(post)-1].Microservice != "T" {
		t.Fatalf("postorder last = %v", post[len(post)-1])
	}
	// Children precede parents in post-order.
	pos := map[int]int{}
	for i, n := range post {
		pos[n.ID] = i
	}
	for _, n := range g.Nodes() {
		if n.Parent != nil && pos[n.ID] >= pos[n.Parent.ID] {
			t.Fatalf("node %s after its parent in post-order", n)
		}
	}
}

func TestTwoTierInvocations(t *testing.T) {
	g := New("svc", "T")
	st := g.AddStage(g.Root, "Url", "U")
	g.AddStage(g.Root, "C")
	g.AddStage(st[0], "C") // Url calls C
	tt := g.TwoTierInvocations()
	if len(tt) != 2 {
		t.Fatalf("two-tier count = %d", len(tt))
	}
	// Deepest first: Url's invocation before T's.
	if tt[0].Parent.Microservice != "Url" || tt[1].Parent.Microservice != "T" {
		t.Fatalf("two-tier order: %v then %v", tt[0].Parent, tt[1].Parent)
	}
}

func TestDepth(t *testing.T) {
	g := New("svc", "A")
	b := g.AddStage(g.Root, "B")[0]
	c := g.AddStage(b, "C")[0]
	g.AddStage(c, "D")
	if d := g.Depth(); d != 4 {
		t.Fatalf("depth = %d", d)
	}
	if d := New("s", "X").Depth(); d != 1 {
		t.Fatalf("single-node depth = %d", d)
	}
}

func TestEndToEndSequentialAndParallel(t *testing.T) {
	g, nodes := fig7()
	lat := map[string]float64{"T": 1, "Url": 5, "U": 3, "C": 2}
	f := func(n *Node) float64 { return lat[n.Microservice] }
	// T(1) + max(Url 5, U 3) + C(2) = 8.
	if got := g.EndToEnd(f); got != 8 {
		t.Fatalf("end-to-end = %v", got)
	}
	// Critical nodes: T, Url, C (U is not critical).
	crit := g.CriticalNodes(f)
	names := map[string]bool{}
	for _, n := range crit {
		names[n.Microservice] = true
	}
	if !names["T"] || !names["Url"] || !names["C"] || names["U"] {
		t.Fatalf("critical = %v", names)
	}
	_ = nodes
}

func TestEndToEndDeepTree(t *testing.T) {
	g := New("svc", "A")
	b := g.AddStage(g.Root, "B")[0]
	g.AddStage(b, "C", "D")
	lat := map[string]float64{"A": 1, "B": 2, "C": 10, "D": 4}
	got := g.EndToEnd(func(n *Node) float64 { return lat[n.Microservice] })
	if got != 13 { // A + B + max(C, D)
		t.Fatalf("end-to-end = %v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, nodes := fig7()
	nodes["C"].Microservice = ""
	if err := g.Validate(); err == nil {
		t.Fatal("expected validation error for empty name")
	}
	g2, n2 := fig7()
	n2["C"].Parent = n2["Url"] // break parent link
	if err := g2.Validate(); err == nil {
		t.Fatal("expected validation error for bad parent")
	}
	g3, _ := fig7()
	g3.Root.Stages = append(g3.Root.Stages, []*Node{}) // empty stage
	if err := g3.Validate(); err == nil {
		t.Fatal("expected validation error for empty stage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, _ := fig7()
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != g.Len() || c.Service != g.Service {
		t.Fatal("clone shape mismatch")
	}
	// Mutating the clone must not affect the original.
	c.AddStage(c.Root, "Z")
	if g.Len() == c.Len() {
		t.Fatal("clone shares node storage with original")
	}
	for i, n := range g.Nodes() {
		if n == c.Nodes()[i] {
			t.Fatal("clone shares node pointers")
		}
	}
}

func TestDOT(t *testing.T) {
	g, _ := fig7()
	dot := g.DOT()
	for _, want := range []string{"digraph", "T", "Url", "style=bold", "style=solid"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestMergeVariants(t *testing.T) {
	// Variant 1: A -> B ; Variant 2: A -> B, C (parallel) then D.
	v1 := New("svc", "A")
	v1.AddStage(v1.Root, "B")
	v2 := New("svc", "A")
	v2.AddStage(v2.Root, "B", "C")
	v2.AddStage(v2.Root, "D")
	m, err := Merge("svc", v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ms := m.Microservices()
	if len(ms) != 4 {
		t.Fatalf("merged microservices = %v", ms)
	}
	if len(m.Root.Stages) != 2 {
		t.Fatalf("merged stages = %d", len(m.Root.Stages))
	}
	if len(m.Root.Stages[0]) != 2 {
		t.Fatalf("merged stage 0 = %d calls", len(m.Root.Stages[0]))
	}
}

func TestMergeSubtrees(t *testing.T) {
	// Subtrees under the same child name are merged recursively.
	v1 := New("svc", "A")
	b1 := v1.AddStage(v1.Root, "B")[0]
	v1.AddStage(b1, "X")
	v2 := New("svc", "A")
	b2 := v2.AddStage(v2.Root, "B")[0]
	v2.AddStage(b2, "Y")
	m, err := Merge("svc", v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	bs := m.NodesFor("B")
	if len(bs) != 1 {
		t.Fatalf("B duplicated: %d", len(bs))
	}
	kids := bs[0].Children()
	if len(kids) != 2 {
		t.Fatalf("B children = %v", kids)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge("svc"); err == nil {
		t.Fatal("expected error for no variants")
	}
	a := New("svc", "A")
	b := New("svc", "B")
	if _, err := Merge("svc", a, b); err == nil {
		t.Fatal("expected error for root mismatch")
	}
}

// randomTree builds a random call tree with n nodes for property tests.
func randomTree(r *stats.RNG, n int) *Graph {
	g := New("svc", "m0")
	open := []*Node{g.Root}
	for g.Len() < n {
		p := open[r.Intn(len(open))]
		width := 1 + r.Intn(3)
		if g.Len()+width > n {
			width = n - g.Len()
		}
		names := make([]string, width)
		for i := range names {
			names[i] = "m" + string(rune('0'+(g.Len()+i)%10)) + "x"
		}
		st := g.AddStage(p, names...)
		open = append(open, st...)
	}
	return g
}

func TestRandomTreesValidate(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 1)
		g := randomTree(r, 2+r.Intn(60))
		if g.Validate() != nil {
			return false
		}
		// Node count bookkeeping.
		if len(g.PreOrder()) != g.Len() || len(g.PostOrder()) != g.Len() {
			return false
		}
		// Clone is structurally identical.
		c := g.Clone()
		return c.Validate() == nil && c.Len() == g.Len() && c.Depth() == g.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndUpperBoundProperty(t *testing.T) {
	// End-to-end latency is at most the sum of all node latencies (parallel
	// overlap can only shorten) and at least the max root-to-leaf chain.
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 101)
		g := randomTree(r, 2+r.Intn(40))
		lat := make(map[int]float64)
		var sum float64
		for _, n := range g.Nodes() {
			lat[n.ID] = r.Float64() * 10
			sum += lat[n.ID]
		}
		f := func(n *Node) float64 { return lat[n.ID] }
		e2e := g.EndToEnd(f)
		if e2e > sum+1e-9 {
			return false
		}
		// Every critical node contributes: raising its latency raises e2e.
		crit := g.CriticalNodes(f)
		if len(crit) == 0 {
			return false
		}
		n := crit[r.Intn(len(crit))]
		lat[n.ID] += 5
		return g.EndToEnd(f) >= e2e+5-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// canonGraph renders a graph as an ID-free canonical signature: microservice
// names with edge policies, stage grouping and in-stage order. Two graphs
// with equal signatures are identical up to node-ID assignment (which Merge
// legitimately renumbers).
func canonGraph(n *Node) string {
	var sb strings.Builder
	sb.WriteString(n.Microservice)
	if n.Policy != nil {
		sb.WriteString("{")
		sb.WriteString(strconv.FormatFloat(n.Policy.TimeoutMs, 'g', -1, 64))
		sb.WriteString(",")
		sb.WriteString(strconv.Itoa(n.Policy.MaxAttempts))
		sb.WriteString("}")
	}
	for _, st := range n.Stages {
		sb.WriteString("(")
		for i, c := range st {
			if i > 0 {
				sb.WriteString("|")
			}
			sb.WriteString(canonGraph(c))
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// requireSameGraph fails unless two graphs have identical canonical
// signatures (structure, names, order, and edge policies).
func requireSameGraph(t *testing.T, want, got *Graph, ctx string) {
	t.Helper()
	if got.Service != want.Service || got.Len() != want.Len() {
		t.Fatalf("%s: service/size %s/%d, want %s/%d", ctx, got.Service, got.Len(), want.Service, want.Len())
	}
	if w, g := canonGraph(want.Root), canonGraph(got.Root); w != g {
		t.Fatalf("%s: structure diverged:\n--- want ---\n%s\n--- got ---\n%s", ctx, w, g)
	}
}

// policyTree decorates a random tree with edge policies on every third node,
// so idempotency also covers the first-policy-wins merge rule.
func policyTree(r *stats.RNG, n int) *Graph {
	g := randomTree(r, n)
	for i, node := range g.PreOrder() {
		if i%3 == 1 {
			node.SetPolicy(EdgePolicy{
				TimeoutMs:   5 + 10*r.Float64(),
				MaxAttempts: 1 + r.Intn(3),
			})
		}
	}
	return g
}

// TestMergeIdempotent pins the template-cache precondition that makes graph
// fingerprints stable: merging a graph with itself (or alone) is the
// identity, structurally and for edge policies.
func TestMergeIdempotent(t *testing.T) {
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 7)
		g := policyTree(r, 2+r.Intn(40))
		one, err := Merge("svc", g)
		if err != nil {
			t.Fatalf("seed %d: Merge(g): %v", seed, err)
		}
		requireSameGraph(t, g, one, "Merge(g)")
		twice, err := Merge("svc", g, g)
		if err != nil {
			t.Fatalf("seed %d: Merge(g, g): %v", seed, err)
		}
		requireSameGraph(t, g, twice, "Merge(g, g)")
		// Merging an already-merged graph with a variant changes nothing
		// more: Merge(Merge(a, b), b) == Merge(a, b).
		h := policyTree(stats.NewRNG(uint64(seed)+977), 2+r.Intn(40))
		hRe := h.Clone()
		hRe.Root.Microservice = g.Root.Microservice
		m1, err := Merge("svc", g, hRe)
		if err != nil {
			t.Fatalf("seed %d: Merge(g, h): %v", seed, err)
		}
		m2, err := Merge("svc", m1, hRe)
		if err != nil {
			t.Fatalf("seed %d: Merge(m1, h): %v", seed, err)
		}
		requireSameGraph(t, m1, m2, "Merge(m1, h)")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
