package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// Must not be stuck at zero.
	var any uint64
	for i := 0; i < 10; i++ {
		any |= r.Uint64()
	}
	if any == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64MeanApproxHalf(t *testing.T) {
	r := NewRNG(9)
	var m Moments
	for i := 0; i < 200000; i++ {
		m.Add(r.Float64())
	}
	if math.Abs(m.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", m.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/100", same)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(31)
	var m Moments
	for i := 0; i < 200000; i++ {
		m.Add(r.NormFloat64())
	}
	if math.Abs(m.Mean()) > 0.02 {
		t.Fatalf("normal mean = %v", m.Mean())
	}
	if math.Abs(m.StdDev()-1) > 0.02 {
		t.Fatalf("normal stddev = %v", m.StdDev())
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(33)
	var m Moments
	for i := 0; i < 200000; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		m.Add(v)
	}
	if math.Abs(m.Mean()-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", m.Mean())
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(35)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}
