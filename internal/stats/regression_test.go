package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v", f.R2)
	}
	if f.Predict(10) != 21 {
		t.Fatalf("predict = %v", f.Predict(10))
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := NewRNG(3)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 0.5*xs[i] + 4 + r.NormFloat64()*0.1
	}
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-0.5) > 0.01 || math.Abs(f.Intercept-4) > 0.1 {
		t.Fatalf("fit = %+v", f)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for 1 point")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrSingular {
		t.Fatal("expected ErrSingular for constant x")
	}
}

func TestFitMultiExact(t *testing.T) {
	// y = 3*x0 - 2*x1 + 7
	xs := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}, {4, 1}}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x[0] - 2*x[1] + 7
	}
	f, err := FitMulti(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Coef[0]-3) > 1e-5 || math.Abs(f.Coef[1]+2) > 1e-5 || math.Abs(f.Intercept-7) > 1e-5 {
		t.Fatalf("fit = %+v", f)
	}
	if f.R2 < 1-1e-9 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitMultiNoisyRecovery(t *testing.T) {
	r := NewRNG(5)
	n := 2000
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b, c := r.Float64()*10, r.Float64()*5, r.Float64()
		xs[i] = []float64{a, b, c}
		ys[i] = 1.5*a + 0.25*b - 4*c + 2 + r.NormFloat64()*0.05
	}
	f, err := FitMulti(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 0.25, -4}
	for i, w := range want {
		if math.Abs(f.Coef[i]-w) > 0.02 {
			t.Fatalf("coef[%d] = %v, want %v", i, f.Coef[i], w)
		}
	}
	if math.Abs(f.Intercept-2) > 0.05 {
		t.Fatalf("intercept = %v", f.Intercept)
	}
}

func TestFitMultiErrors(t *testing.T) {
	if _, err := FitMulti(nil, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := FitMulti([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestFitSegmentedRecoversKnee(t *testing.T) {
	// Piece-wise: slope 0.2 below x=50, slope 2.0 above, continuous at knee.
	var xs, ys []float64
	for x := 0.0; x <= 100; x += 1 {
		y := 0.2*x + 10
		if x > 50 {
			y = 2.0*(x-50) + 0.2*50 + 10
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	f, err := FitSegmented(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Knee-50) > 2 {
		t.Fatalf("knee = %v, want ~50", f.Knee)
	}
	if math.Abs(f.Low.Slope-0.2) > 0.02 {
		t.Fatalf("low slope = %v", f.Low.Slope)
	}
	if math.Abs(f.High.Slope-2.0) > 0.05 {
		t.Fatalf("high slope = %v", f.High.Slope)
	}
	// Predictions land on the true curve.
	if math.Abs(f.Predict(25)-(0.2*25+10)) > 0.5 {
		t.Fatalf("predict(25) = %v", f.Predict(25))
	}
	if math.Abs(f.Predict(80)-(2.0*30+20)) > 1.5 {
		t.Fatalf("predict(80) = %v", f.Predict(80))
	}
}

func TestFitSegmentedFallsBackToLine(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	f, err := FitSegmented(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(f.Knee, 1) {
		// With 3 points and minSeg 2 there is no valid split, so the knee
		// must stay at +Inf (single line).
		t.Fatalf("knee = %v, want +Inf", f.Knee)
	}
	if math.Abs(f.Predict(5)-10) > 1e-9 {
		t.Fatalf("predict = %v", f.Predict(5))
	}
}

func TestFitSegmentedSSENotWorseThanSingleLine(t *testing.T) {
	f := func(seed uint16) bool {
		r := NewRNG(uint64(seed) + 99)
		n := 30 + r.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + r.Float64()
			ys[i] = r.NormFloat64() * 10
		}
		seg, err := FitSegmented(xs, ys, 3)
		if err != nil {
			return false
		}
		single, err := FitLine(xs, ys)
		if err != nil {
			return false
		}
		var sse float64
		for i := range xs {
			d := ys[i] - single.Predict(xs[i])
			sse += d * d
		}
		return seg.SSE <= sse+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFitSegmentedDegenerateInput(t *testing.T) {
	// All x equal: every candidate split and the single-line fallback are
	// singular, so no fit exists. This used to return a zero-value
	// SegmentedFit with a nil error — a "model" predicting 0 ms everywhere
	// that downstream accuracy checks scored as grossly wrong instead of
	// absent.
	xs := []float64{5, 5, 5, 5, 5, 5}
	ys := []float64{1, 2, 3, 4, 5, 6}
	if _, err := FitSegmented(xs, ys, 2); err != ErrSingular {
		t.Fatalf("degenerate fit error = %v, want ErrSingular", err)
	}
	// Same shape via the no-valid-split path: too few points for any split
	// AND constant x, so the single-line fallback is singular too.
	if _, err := FitSegmented([]float64{3, 3, 3}, []float64{1, 2, 3}, 2); err != ErrSingular {
		t.Fatal("expected ErrSingular for short constant-x input")
	}
}

func TestFitSegmentedStillFitsNearDegenerate(t *testing.T) {
	// Two distinct x values is enough for the single-line fallback: the
	// degenerate guard must not over-reject.
	xs := []float64{1, 1, 2, 2}
	ys := []float64{3, 3, 5, 5}
	f, err := FitSegmented(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Predict(3)-7) > 1e-9 {
		t.Fatalf("predict(3) = %v, want 7", f.Predict(3))
	}
}

func TestAccuracyAllNonpositiveActuals(t *testing.T) {
	// Every actual <= 0 is skipped, so there is no signal; the result is
	// NaN (same contract as empty input), not a spurious 0 or 1.
	if !math.IsNaN(Accuracy([]float64{5, 6}, []float64{0, -1})) {
		t.Fatal("all-nonpositive actuals should yield NaN accuracy")
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]float64{10, 20}, []float64{10, 20}); got != 1 {
		t.Fatalf("perfect accuracy = %v", got)
	}
	if got := Accuracy([]float64{11}, []float64{10}); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("10%% error accuracy = %v", got)
	}
	// Gross over-prediction clamps at 0 rather than going negative.
	if got := Accuracy([]float64{100}, []float64{10}); got != 0 {
		t.Fatalf("clamped accuracy = %v", got)
	}
	if !math.IsNaN(Accuracy(nil, nil)) {
		t.Fatal("empty accuracy should be NaN")
	}
	// Zero actuals are skipped.
	if got := Accuracy([]float64{5, 11}, []float64{0, 10}); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("accuracy skipping zero actual = %v", got)
	}
}
