package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	r := NewRNG(3)
	f := func(seed uint16) bool {
		rr := NewRNG(uint64(seed) + 1)
		n := rr.Intn(200) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		// Quantiles stay within data range.
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return Quantile(xs, 0) == sorted[0] && Quantile(xs, 1) == sorted[n-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Correlation(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Correlation(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	flat := []float64{5, 5, 5, 5}
	if got := Correlation(xs, flat); got != 0 {
		t.Fatalf("zero-variance correlation = %v", got)
	}
}

func TestMomentsMatchBatch(t *testing.T) {
	r := NewRNG(77)
	xs := make([]float64, 5000)
	var m Moments
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		m.Add(xs[i])
	}
	if math.Abs(m.Mean()-Mean(xs)) > 1e-9 {
		t.Fatalf("streaming mean %v != batch %v", m.Mean(), Mean(xs))
	}
	if math.Abs(m.Variance()-Variance(xs)) > 1e-6 {
		t.Fatalf("streaming var %v != batch %v", m.Variance(), Variance(xs))
	}
	if m.Count() != len(xs) {
		t.Fatalf("count = %d", m.Count())
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if m.Min() != sorted[0] || m.Max() != sorted[len(sorted)-1] {
		t.Fatal("min/max mismatch")
	}
}

func TestMomentsEmpty(t *testing.T) {
	var m Moments
	if !math.IsNaN(m.Mean()) || !math.IsNaN(m.Variance()) || !math.IsNaN(m.Min()) || !math.IsNaN(m.Max()) {
		t.Fatal("empty moments should report NaN")
	}
}

func TestReservoirSmallStream(t *testing.T) {
	rv := NewReservoir(100, NewRNG(5))
	for i := 0; i < 50; i++ {
		rv.Add(float64(i))
	}
	if rv.Seen() != 50 || len(rv.Values()) != 50 {
		t.Fatalf("seen=%d len=%d", rv.Seen(), len(rv.Values()))
	}
}

func TestReservoirQuantileApprox(t *testing.T) {
	rv := NewReservoir(2000, NewRNG(5))
	r := NewRNG(6)
	for i := 0; i < 200000; i++ {
		rv.Add(r.Float64())
	}
	med := rv.Quantile(0.5)
	if math.Abs(med-0.5) > 0.05 {
		t.Fatalf("reservoir median %v, want ~0.5", med)
	}
	p95 := rv.Quantile(0.95)
	if math.Abs(p95-0.95) > 0.05 {
		t.Fatalf("reservoir p95 %v, want ~0.95", p95)
	}
}

func TestReservoirPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReservoir(0, NewRNG(1))
}

func TestCDF(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5}
	got := CDF(values, []float64{0, 1, 2.5, 5, 10})
	want := []float64{0, 0.2, 0.4, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCDFEmptyAndAllNaN(t *testing.T) {
	// No values means no distribution: nil, not a division by zero
	// producing an all-NaN slice.
	if got := CDF(nil, []float64{1, 2}); got != nil {
		t.Fatalf("CDF(nil) = %v, want nil", got)
	}
	nan := math.NaN()
	if got := CDF([]float64{nan, nan}, []float64{1}); got != nil {
		t.Fatalf("CDF(all NaN) = %v, want nil", got)
	}
}

func TestCDFFiltersNaN(t *testing.T) {
	// NaN elements void sort's ordering guarantee and must be dropped
	// before the search; the distribution is over the 4 finite values.
	values := []float64{1, math.NaN(), 2, 3, math.NaN(), 4}
	got := CDF(values, []float64{0, 2, 4})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMomentsMergeMatchesBulk(t *testing.T) {
	// Merging per-window accumulators must equal one accumulator fed every
	// observation — the drift loop's window-merge contract.
	r := NewRNG(41)
	var bulk Moments
	var merged Moments
	for w := 0; w < 7; w++ {
		var win Moments
		n := 1 + r.Intn(400)
		for i := 0; i < n; i++ {
			x := r.NormFloat64()*float64(w+1) + 5*float64(w)
			bulk.Add(x)
			win.Add(x)
		}
		merged.Merge(win)
	}
	if merged.Count() != bulk.Count() {
		t.Fatalf("count %d != %d", merged.Count(), bulk.Count())
	}
	if math.Abs(merged.Mean()-bulk.Mean()) > 1e-9 {
		t.Fatalf("mean %v != %v", merged.Mean(), bulk.Mean())
	}
	if math.Abs(merged.Variance()-bulk.Variance()) > 1e-7 {
		t.Fatalf("variance %v != %v", merged.Variance(), bulk.Variance())
	}
	if merged.Min() != bulk.Min() || merged.Max() != bulk.Max() {
		t.Fatal("min/max mismatch after merge")
	}
}

func TestMomentsMergeEdgeCases(t *testing.T) {
	var a Moments
	a.Add(2)
	a.Add(4)
	// Merging empty is a no-op.
	a.Merge(Moments{})
	if a.Count() != 2 || a.Mean() != 3 {
		t.Fatalf("after empty merge: n=%d mean=%v", a.Count(), a.Mean())
	}
	// Merging into empty copies the argument.
	var b Moments
	b.Merge(a)
	if b.Count() != 2 || b.Mean() != 3 || b.Min() != 2 || b.Max() != 4 {
		t.Fatalf("merge into empty: %+v", b)
	}
}

func TestReservoirWindowedFillDeterministic(t *testing.T) {
	// Feeding the same stream in one pass or in window-sized chunks hits
	// the identical reservoir state (Add is sequential over one RNG), and
	// the sample never exceeds capacity.
	fill := func(chunks int) []float64 {
		rv := NewReservoir(64, NewRNG(9))
		per := 1000 / chunks
		for c := 0; c < chunks; c++ {
			for i := 0; i < per; i++ {
				rv.Add(float64(c*per + i))
			}
		}
		if len(rv.Values()) > 64 {
			t.Fatalf("reservoir overflowed: %d", len(rv.Values()))
		}
		return rv.Values()
	}
	one, four := fill(1), fill(4)
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("windowed fill diverged at %d: %v vs %v", i, one[i], four[i])
		}
	}
}
