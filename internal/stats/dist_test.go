package stats

import (
	"math"
	"testing"
)

func sampleMean(d Dist, n int, seed uint64) float64 {
	r := NewRNG(seed)
	var m Moments
	for i := 0; i < n; i++ {
		m.Add(d.Sample(r))
	}
	return m.Mean()
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{MeanVal: 3.5}
	got := sampleMean(d, 200000, 1)
	if math.Abs(got-3.5)/3.5 > 0.02 {
		t.Fatalf("exponential sample mean %v, want ~3.5", got)
	}
	if d.Mean() != 3.5 {
		t.Fatalf("Mean() = %v", d.Mean())
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 2.25}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 2.25 {
			t.Fatal("deterministic sample varied")
		}
	}
}

func TestLogNormalFromMeanCV(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{1, 0.5}, {10, 1.0}, {0.2, 0.25},
	} {
		d := LogNormalFromMeanCV(tc.mean, tc.cv)
		if math.Abs(d.Mean()-tc.mean)/tc.mean > 1e-9 {
			t.Fatalf("analytic mean %v, want %v", d.Mean(), tc.mean)
		}
		got := sampleMean(d, 400000, 7)
		if math.Abs(got-tc.mean)/tc.mean > 0.03 {
			t.Fatalf("sample mean %v, want ~%v (cv %v)", got, tc.mean, tc.cv)
		}
	}
}

func TestLogNormalFromMeanCVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive mean")
		}
	}()
	LogNormalFromMeanCV(0, 1)
}

func TestParetoMeanAndSupport(t *testing.T) {
	d := Pareto{Xm: 2, Alpha: 3}
	want := 3.0 * 2 / 2 // alpha*xm/(alpha-1)
	if math.Abs(d.Mean()-want) > 1e-12 {
		t.Fatalf("Pareto mean %v want %v", d.Mean(), want)
	}
	r := NewRNG(5)
	var m Moments
	for i := 0; i < 300000; i++ {
		v := d.Sample(r)
		if v < d.Xm {
			t.Fatalf("Pareto sample %v below xm", v)
		}
		m.Add(v)
	}
	if math.Abs(m.Mean()-want)/want > 0.05 {
		t.Fatalf("Pareto sample mean %v want ~%v", m.Mean(), want)
	}
	if inf := (Pareto{Xm: 1, Alpha: 1}).Mean(); !math.IsInf(inf, 1) {
		t.Fatalf("alpha<=1 mean should be +Inf, got %v", inf)
	}
}

func TestUniform(t *testing.T) {
	d := Uniform{Lo: -1, Hi: 3}
	r := NewRNG(9)
	var m Moments
	for i := 0; i < 100000; i++ {
		v := d.Sample(r)
		if v < -1 || v >= 3 {
			t.Fatalf("uniform sample %v out of range", v)
		}
		m.Add(v)
	}
	if math.Abs(m.Mean()-1) > 0.03 {
		t.Fatalf("uniform mean %v want ~1", m.Mean())
	}
}

func TestPoissonSmallMean(t *testing.T) {
	r := NewRNG(11)
	var m Moments
	for i := 0; i < 100000; i++ {
		m.Add(float64(Poisson(r, 4.2)))
	}
	if math.Abs(m.Mean()-4.2) > 0.1 {
		t.Fatalf("Poisson(4.2) mean %v", m.Mean())
	}
	// Poisson variance equals the mean.
	if math.Abs(m.Variance()-4.2) > 0.2 {
		t.Fatalf("Poisson(4.2) variance %v", m.Variance())
	}
}

func TestPoissonLargeMean(t *testing.T) {
	r := NewRNG(13)
	var m Moments
	for i := 0; i < 50000; i++ {
		n := Poisson(r, 1000)
		if n < 0 {
			t.Fatal("negative Poisson count")
		}
		m.Add(float64(n))
	}
	if math.Abs(m.Mean()-1000)/1000 > 0.01 {
		t.Fatalf("Poisson(1000) mean %v", m.Mean())
	}
}

func TestPoissonZero(t *testing.T) {
	r := NewRNG(17)
	if Poisson(r, 0) != 0 || Poisson(r, -5) != 0 {
		t.Fatal("Poisson with non-positive mean should be 0")
	}
}

func TestDistStrings(t *testing.T) {
	for _, d := range []Dist{
		Exponential{1}, Deterministic{2}, LogNormal{0, 1}, Pareto{1, 2}, Uniform{0, 1},
	} {
		if d.String() == "" {
			t.Fatalf("%T has empty String()", d)
		}
	}
}
