package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of the values using linear
// interpolation between order statistics (the same convention as numpy's
// default). It returns NaN for an empty input. The input slice is not
// modified. Inputs must be NaN-free: NaN elements void sort.Float64s'
// ordering guarantee, so the interpolated order statistics (and anything
// downstream, e.g. Reservoir.Quantile) become unspecified. Producers of
// latency samples never emit NaN; callers synthesizing values should filter
// first (as CDF does).
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is like Quantile but requires values to be sorted ascending;
// it performs no allocation.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P95 returns the 95th percentile of values.
func P95(values []float64) float64 { return Quantile(values, 0.95) }

// P99 returns the 99th percentile of values.
func P99(values []float64) float64 { return Quantile(values, 0.99) }

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Variance returns the population variance, or NaN for empty input.
func Variance(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := Mean(values)
	sum := 0.0
	for _, v := range values {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(values))
}

// StdDev returns the population standard deviation.
func StdDev(values []float64) float64 { return math.Sqrt(Variance(values)) }

// Correlation returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either input has zero variance and NaN when lengths
// mismatch or are empty.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Moments accumulates count, mean, and variance in a single streaming pass
// using Welford's algorithm. The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// Merge folds another accumulator into m, as if every observation offered to
// o had been offered to m (Chan et al.'s pairwise update). This is the
// window-merge primitive of the drift loop: per-window moments accumulate
// independently and merge into streak- or run-level moments without
// revisiting samples. Merging an empty accumulator is a no-op.
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	na, nb := float64(m.n), float64(o.n)
	delta := o.mean - m.mean
	m.m2 += o.m2 + delta*delta*na*nb/float64(n)
	m.mean += delta * nb / float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n = n
}

// Count returns the number of observations.
func (m *Moments) Count() int { return m.n }

// Mean returns the running mean (NaN if no observations).
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.mean
}

// Variance returns the running population variance (NaN if no observations).
func (m *Moments) Variance() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the running population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation (NaN if none).
func (m *Moments) Min() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.min
}

// Max returns the largest observation (NaN if none).
func (m *Moments) Max() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.max
}

// Reservoir keeps a fixed-size uniform random sample of a stream, suitable
// for estimating quantiles of long simulations without unbounded memory.
type Reservoir struct {
	cap   int
	seen  int
	items []float64
	rng   *RNG
}

// NewReservoir creates a reservoir holding at most capacity samples.
func NewReservoir(capacity int, rng *RNG) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capacity, items: make([]float64, 0, capacity), rng: rng}
}

// Add offers one value to the reservoir.
func (rv *Reservoir) Add(x float64) {
	rv.seen++
	if len(rv.items) < rv.cap {
		rv.items = append(rv.items, x)
		return
	}
	if j := rv.rng.Intn(rv.seen); j < rv.cap {
		rv.items[j] = x
	}
}

// Seen returns the number of values offered so far.
func (rv *Reservoir) Seen() int { return rv.seen }

// Quantile estimates the q-quantile from the current sample.
func (rv *Reservoir) Quantile(q float64) float64 { return Quantile(rv.items, q) }

// Values returns a copy of the current sample.
func (rv *Reservoir) Values() []float64 {
	out := make([]float64, len(rv.items))
	copy(out, rv.items)
	return out
}

// CDF returns the empirical cumulative distribution of values evaluated at
// each of the given thresholds: out[i] = fraction of values <= thresholds[i].
//
// NaN elements carry no ordering information (they break sort.Float64s'
// sorted-output guarantee, and with it SearchFloat64s) and are dropped
// before the distribution is built. When no finite-ordered values remain —
// empty input, or all NaN — there is no distribution to evaluate and CDF
// returns nil, mirroring Quantile's documented NaN-on-empty contract
// (previously this divided by len(sorted)==0 and silently produced an
// all-NaN slice).
func CDF(values, thresholds []float64) []float64 {
	sorted := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			sorted = append(sorted, v)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	sort.Float64s(sorted)
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		out[i] = float64(sort.SearchFloat64s(sorted, math.Nextafter(t, math.Inf(1)))) / float64(len(sorted))
	}
	return out
}
