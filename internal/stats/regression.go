package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrSingular is returned when a least-squares system has no unique solution.
var ErrSingular = errors.New("stats: singular least-squares system")

// LineFit is the result of a simple linear regression y = Slope*x + Intercept.
type LineFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination on the training data
	N         int     // number of points used
}

// Predict evaluates the fitted line at x.
func (f LineFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// FitLine computes the ordinary least-squares line through (xs, ys). It
// returns ErrSingular when all xs are identical (vertical data) and requires
// at least two points.
func FitLine(xs, ys []float64) (LineFit, error) {
	if len(xs) != len(ys) {
		return LineFit{}, errors.New("stats: FitLine length mismatch")
	}
	if len(xs) < 2 {
		return LineFit{}, errors.New("stats: FitLine needs at least 2 points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LineFit{}, ErrSingular
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	var ssRes, ssTot float64
	for i := range xs {
		r := ys[i] - (slope*xs[i] + intercept)
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LineFit{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}, nil
}

// MultiFit is the result of a multiple linear regression
// y = Coef[0]*x0 + Coef[1]*x1 + ... + Intercept.
type MultiFit struct {
	Coef      []float64
	Intercept float64
	R2        float64
	N         int
}

// Predict evaluates the fitted hyperplane at the feature vector x.
func (f MultiFit) Predict(x []float64) float64 {
	y := f.Intercept
	for i, c := range f.Coef {
		y += c * x[i]
	}
	return y
}

// FitMulti computes an ordinary least-squares fit of ys against the rows of
// xs (each row is one observation's feature vector). A small ridge term
// stabilizes nearly collinear designs, which arise when interference levels
// barely vary within a profiling window.
func FitMulti(xs [][]float64, ys []float64) (MultiFit, error) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return MultiFit{}, errors.New("stats: FitMulti empty or mismatched input")
	}
	d := len(xs[0])
	for _, row := range xs {
		if len(row) != d {
			return MultiFit{}, errors.New("stats: FitMulti ragged feature rows")
		}
	}
	// Augmented design: features plus intercept column.
	k := d + 1
	// Normal equations A w = b with A = X'X, b = X'y.
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
	}
	b := make([]float64, k)
	for r := 0; r < n; r++ {
		for i := 0; i < k; i++ {
			xi := 1.0
			if i < d {
				xi = xs[r][i]
			}
			b[i] += xi * ys[r]
			for j := i; j < k; j++ {
				xj := 1.0
				if j < d {
					xj = xs[r][j]
				}
				a[i][j] += xi * xj
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	// Ridge regularization scaled to the diagonal magnitude. The intercept is
	// excluded so constant offsets are not shrunk.
	const ridge = 1e-9
	for i := 0; i < d; i++ {
		a[i][i] += ridge * (1 + a[i][i])
	}
	w, err := solveLinear(a, b)
	if err != nil {
		return MultiFit{}, err
	}
	fit := MultiFit{Coef: w[:d], Intercept: w[d], N: n}
	my := Mean(ys)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		res := ys[r] - fit.Predict(xs[r])
		ssRes += res * res
		dev := ys[r] - my
		ssTot += dev * dev
	}
	fit.R2 = 1.0
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}

// solveLinear solves a dense symmetric system via Gaussian elimination with
// partial pivoting. The matrix is modified in place.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		x[col], x[pivot] = x[pivot], x[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for row := n - 1; row >= 0; row-- {
		sum := x[row]
		for c := row + 1; c < n; c++ {
			sum -= a[row][c] * x[c]
		}
		x[row] = sum / a[row][row]
	}
	return x, nil
}

// SegmentedFit is a two-piece linear model of y as a function of x with a
// breakpoint at Knee: the Low fit applies for x <= Knee and the High fit for
// x > Knee. This is the shape the paper observes for microservice tail
// latency as a function of per-container workload (Fig. 3).
type SegmentedFit struct {
	Knee float64
	Low  LineFit
	High LineFit
	SSE  float64
}

// Predict evaluates the segmented model at x.
func (f SegmentedFit) Predict(x float64) float64 {
	if x <= f.Knee {
		return f.Low.Predict(x)
	}
	return f.High.Predict(x)
}

// FitSegmented searches candidate breakpoints (each interior unique x value)
// and returns the two-piece linear fit minimizing total squared error. Each
// segment must contain at least minSeg points (minSeg < 2 is treated as 2).
// If no valid breakpoint exists, the single best line is returned with
// Knee = +Inf. When no line fits at all — degenerate input such as all x
// values equal, where FitLine is singular on the whole range and on every
// candidate split — FitSegmented returns ErrSingular rather than a silent
// zero-value model (whose Predict would be identically 0).
func FitSegmented(xs, ys []float64, minSeg int) (SegmentedFit, error) {
	if len(xs) != len(ys) {
		return SegmentedFit{}, errors.New("stats: FitSegmented length mismatch")
	}
	if len(xs) < 2 {
		return SegmentedFit{}, errors.New("stats: FitSegmented needs at least 2 points")
	}
	if minSeg < 2 {
		minSeg = 2
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(xs))
	for i := range xs {
		pts[i] = pt{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	sx := make([]float64, len(pts))
	sy := make([]float64, len(pts))
	for i, p := range pts {
		sx[i] = p.x
		sy[i] = p.y
	}

	sse := func(f LineFit, xs, ys []float64) float64 {
		var s float64
		for i := range xs {
			r := ys[i] - f.Predict(xs[i])
			s += r * r
		}
		return s
	}

	best := SegmentedFit{Knee: math.Inf(1), SSE: math.Inf(1)}
	if single, err := FitLine(sx, sy); err == nil {
		best.Low = single
		best.High = single
		best.SSE = sse(single, sx, sy)
	}

	for cut := minSeg; cut <= len(sx)-minSeg; cut++ {
		// Only split between distinct x values so both segments span a range.
		if sx[cut-1] == sx[cut] {
			continue
		}
		lo, errLo := FitLine(sx[:cut], sy[:cut])
		hi, errHi := FitLine(sx[cut:], sy[cut:])
		if errLo != nil || errHi != nil {
			continue
		}
		total := sse(lo, sx[:cut], sy[:cut]) + sse(hi, sx[cut:], sy[cut:])
		if total < best.SSE {
			best = SegmentedFit{
				Knee: (sx[cut-1] + sx[cut]) / 2,
				Low:  lo,
				High: hi,
				SSE:  total,
			}
		}
	}
	if math.IsInf(best.SSE, 1) {
		return SegmentedFit{}, ErrSingular
	}
	return best, nil
}

// Accuracy returns the mean prediction accuracy 1 - |pred-actual|/actual,
// clamped to [0, 1], averaged over all pairs with actual > 0. This matches
// the paper's "testing accuracy" notion for latency profiling (Fig. 10).
// When no pair has actual > 0 (empty input, or every actual nonpositive)
// there is no defined relative error and the result is NaN — callers that
// feed live window data must treat NaN as "no signal", not as 0% accurate.
func Accuracy(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) || len(predicted) == 0 {
		return math.NaN()
	}
	var sum float64
	var n int
	for i := range predicted {
		if actual[i] <= 0 {
			continue
		}
		acc := 1 - math.Abs(predicted[i]-actual[i])/actual[i]
		if acc < 0 {
			acc = 0
		}
		sum += acc
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
