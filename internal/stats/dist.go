package stats

import (
	"fmt"
	"math"
)

// Dist is a sampleable, parameterized probability distribution over
// non-negative values (service times, inter-arrival gaps, sizes).
type Dist interface {
	// Sample draws one value using the provided generator.
	Sample(r *RNG) float64
	// Mean returns the distribution mean.
	Mean() float64
	// String describes the distribution and its parameters.
	String() string
}

// Exponential is an exponential distribution with the given mean.
type Exponential struct{ MeanVal float64 }

// Sample draws an exponentially distributed value.
func (d Exponential) Sample(r *RNG) float64 { return d.MeanVal * r.ExpFloat64() }

// Mean returns the configured mean.
func (d Exponential) Mean() float64 { return d.MeanVal }

func (d Exponential) String() string { return fmt.Sprintf("Exp(mean=%g)", d.MeanVal) }

// Deterministic always returns Value.
type Deterministic struct{ Value float64 }

// Sample returns the fixed value.
func (d Deterministic) Sample(*RNG) float64 { return d.Value }

// Mean returns the fixed value.
func (d Deterministic) Mean() float64 { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.Value) }

// LogNormal is a log-normal distribution parameterized by the underlying
// normal's mu and sigma.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws a log-normally distributed value.
func (d LogNormal) Sample(r *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

func (d LogNormal) String() string { return fmt.Sprintf("LogNormal(mu=%g, sigma=%g)", d.Mu, d.Sigma) }

// LogNormalFromMeanCV builds a log-normal distribution with the given mean and
// coefficient of variation (stddev/mean). CV must be >= 0.
func LogNormalFromMeanCV(mean, cv float64) LogNormal {
	if mean <= 0 {
		panic("stats: LogNormalFromMeanCV requires mean > 0")
	}
	sigma2 := math.Log(1 + cv*cv)
	return LogNormal{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}
}

// Pareto is a bounded-at-Xm Pareto (power-law) distribution. Alpha must be
// > 1 for the mean to exist.
type Pareto struct {
	Xm    float64 // scale: minimum value
	Alpha float64 // shape
}

// Sample draws a Pareto-distributed value via inverse transform.
func (d Pareto) Sample(r *RNG) float64 {
	u := 1 - r.Float64() // in (0, 1]
	return d.Xm / math.Pow(u, 1/d.Alpha)
}

// Mean returns alpha*xm/(alpha-1) for alpha > 1, +Inf otherwise.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

func (d Pareto) String() string { return fmt.Sprintf("Pareto(xm=%g, alpha=%g)", d.Xm, d.Alpha) }

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample draws a uniformly distributed value.
func (d Uniform) Sample(r *RNG) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }

// Mean returns the midpoint of the interval.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

func (d Uniform) String() string { return fmt.Sprintf("Uniform[%g, %g)", d.Lo, d.Hi) }

// Poisson draws a Poisson-distributed count with the given mean using Knuth's
// algorithm for small means and a normal approximation for large ones.
func Poisson(r *RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction; adequate for the
		// workload generators, which only need per-interval counts.
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
