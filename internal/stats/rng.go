// Package stats provides the numerical substrate shared by the rest of the
// repository: a deterministic random number generator, common probability
// distributions, streaming moment and quantile estimators, and ordinary plus
// segmented (piece-wise) linear regression.
//
// Everything here is allocation-conscious and dependency-free so that the
// discrete-event simulator can call into it on its hot path.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator based on
// xoshiro256**. It is NOT safe for concurrent use; give each goroutine its own
// instance (Split derives independent streams).
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next value. It is used
// to seed xoshiro from a single 64-bit seed, as recommended by the xoshiro
// authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given seed. Two RNGs built from
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Guard against the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, statistically independent generator from r. The parent
// stream advances by one value.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normally distributed value using the
// Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}
