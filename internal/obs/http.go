package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// Handler serves the recorder over HTTP:
//
//	/metrics      Prometheus text format: every counter/gauge of the
//	              recorder plus the latest point of every series in the
//	              bound metrics store (application metrics and the
//	              erms.self.* mirror alike).
//	/spans        JSON dump of the retained internal spans.
//	/debug/pprof  the standard net/http/pprof profiles.
//
// The handler is read-only and safe to serve while the control loop runs.
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", r.serveMetrics)
	mux.HandleFunc("/spans", r.serveSpans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "erms self-observability\n\n/metrics\n/spans\n/debug/pprof/\n")
	})
	return mux
}

// ListenAndServe serves the handler on addr; it blocks like
// http.ListenAndServe. Most callers run it in a goroutine. Callers that need
// to distinguish a bind failure from a serve failure (or to drain in-flight
// scrapes on shutdown) should use NewServer/Listen/Serve instead — a bad
// address surfaces from Listen before anything runs in the background.
func (r *Recorder) ListenAndServe(addr string) error {
	srv := NewServer(addr, r.Handler())
	if err := srv.Listen(); err != nil {
		return err
	}
	return srv.Serve()
}

// Server wraps http.Server for the observability and admin endpoints with
// two properties bare http.ListenAndServe lacks:
//
//   - Listen binds synchronously, so a port conflict is an error the caller
//     sees at startup instead of a silent death inside a goroutine;
//   - Shutdown drains in-flight scrapes (Prometheus pulls, span dumps,
//     admin requests) before returning, so SIGTERM does not drop responses
//     mid-body.
//
// A ReadHeaderTimeout guards the listener against slow-header clients
// holding connections open indefinitely.
type Server struct {
	httpServer *http.Server
	addr       string
	ln         net.Listener
}

// NewServer builds an unstarted server for addr and handler.
func NewServer(addr string, h http.Handler) *Server {
	return &Server{
		addr: addr,
		httpServer: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
}

// Listen binds the address. It must be called before Serve; the error (port
// already bound, bad address) is returned synchronously.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", s.addr, err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address (useful with ":0"), or the configured
// address before Listen.
func (s *Server) Addr() string {
	if s.ln != nil {
		return s.ln.Addr().String()
	}
	return s.addr
}

// Serve blocks serving the bound listener. After Shutdown it returns nil
// (http.ErrServerClosed is the orderly exit, not an error).
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	err := s.httpServer.Serve(s.ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown stops accepting new connections and waits for in-flight requests
// to complete, up to the context deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpServer.Shutdown(ctx)
}

func (r *Recorder) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var sb strings.Builder

	// Live counters and gauges straight from the recorder.
	counters := r.Counters()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "%s %g\n", PromName(name), counters[name])
	}

	// Latest value of every store series not already covered above (the
	// erms.self.* mirror carries FlushWindow history; live values win).
	if st := r.Store(); st != nil {
		seen := make(map[string]bool, len(names))
		for _, name := range names {
			seen[PromName(name)] = true
		}
		for _, key := range st.Names() {
			pn := PromName(key)
			if seen[pn] {
				continue
			}
			if p, ok := st.Latest(key); ok {
				fmt.Fprintf(&sb, "%s %g\n", pn, p.V)
			}
		}
	}
	fmt.Fprint(w, sb.String())
}

func (r *Recorder) serveSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	payload := struct {
		Spans   []SpanRecord `json:"spans"`
		Dropped int          `json:"dropped"`
	}{Spans: r.Spans(), Dropped: r.DroppedSpans()}
	if payload.Spans == nil {
		payload.Spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}

// PromName converts a store series key into a valid Prometheus metric name:
// the name part (before any {labels}) has every character outside
// [a-zA-Z0-9_:] replaced by '_'; a label block produced by metrics.Key is
// already in Prometheus form and passes through untouched.
func PromName(key string) string {
	name, labels := key, ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		name, labels = key[:i], key[i:]
	}
	var b strings.Builder
	b.Grow(len(name) + len(labels))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	b.WriteString(labels)
	return b.String()
}
