package obs

import (
	"context"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestServerListenErrorIsSynchronous pins the startup contract: binding a
// port that is already taken fails from Listen, before anything is served in
// a goroutine, so callers can exit nonzero instead of silently serving
// nothing.
func TestServerListenErrorIsSynchronous(t *testing.T) {
	first := NewServer("127.0.0.1:0", http.NotFoundHandler())
	if err := first.Listen(); err != nil {
		t.Fatalf("first Listen: %v", err)
	}
	defer first.Shutdown(context.Background())
	go first.Serve()

	second := NewServer(first.Addr(), http.NotFoundHandler())
	if err := second.Listen(); err == nil {
		second.Shutdown(context.Background())
		t.Fatalf("second Listen on %s succeeded; want address-in-use error", first.Addr())
	}
}

// TestServerShutdownDrainsInflight pins the graceful-drain contract: a
// scrape that is mid-response when Shutdown is called still completes with
// its full body.
func TestServerShutdownDrainsInflight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		close(started)
		<-release
		io.WriteString(w, "drained")
	})

	srv := NewServer("127.0.0.1:0", mux)
	if err := srv.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	var body []byte
	var getErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			getErr = err
			return
		}
		defer resp.Body.Close()
		body, getErr = io.ReadAll(resp.Body)
	}()

	<-started
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must be waiting on the in-flight request, not killing it.
	time.Sleep(20 * time.Millisecond)
	close(release)

	wg.Wait()
	if getErr != nil {
		t.Fatalf("in-flight request failed across Shutdown: %v", getErr)
	}
	if string(body) != "drained" {
		t.Fatalf("in-flight body = %q, want %q", body, "drained")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned error after orderly shutdown: %v", err)
	}
}
