// Package obs is the self-observability layer of the Erms control plane:
// where internal/metrics watches the *applications* (the Prometheus
// substitute of §5.1), obs watches the controller itself — the reconciler's
// per-window phase latencies, its retry and degraded-mode counters, the
// orchestrator's action stream, the chaos events it survived, and the
// discrete-event engine's throughput.
//
// The design constraint is that observability must never perturb the thing
// it observes:
//
//   - Disabled is free. Every entry point is a method on *Recorder that
//     no-ops on a nil receiver, so instrumented call sites cost a nil check
//     and zero heap allocations when no recorder is configured (enforced by
//     TestDisabledRecorderZeroAlloc via testing.AllocsPerRun).
//   - Enabled is passive. The recorder only accumulates numbers derived
//     from decisions already taken; nothing the control loop computes reads
//     them back, so plans, reports, and experiment tables stay byte-identical
//     at any worker count with or without a recorder (wall-clock phase
//     timings are recorded but never fed back into planning).
//
// Counter values are mirrored into an internal/metrics.Store under the
// erms.self.* namespace once per reconciliation window (FlushWindow), which
// makes the controller's own health queryable through exactly the same
// Range/MeanInRange API the controller uses to watch its applications — and
// serveable in Prometheus text format by the HTTP endpoint in http.go.
package obs

import (
	"sort"
	"sync"
	"time"

	"erms/internal/metrics"
)

// Reconciler phase span names (the phases of core.Reconciler.Step, §Fig. 6).
const (
	PhaseRepair    = "repair"
	PhasePlan      = "plan"
	PhaseApply     = "apply"
	PhaseRebalance = "rebalance"
	PhaseEvaluate  = "evaluate"
)

// Counter names, all under the erms.self.* namespace. Everything is a
// monotone counter unless noted; gauges are Set rather than Add.
const (
	// Control loop.
	CtrWindows         = "erms.self.windows_total"
	CtrRetries         = "erms.self.retries_total"
	CtrBackoffMin      = "erms.self.backoff_simulated_minutes_total"
	CtrDegradedWindows = "erms.self.degraded_windows_total"
	CtrOutageWindows   = "erms.self.outage_windows_total"
	CtrObsGapWindows   = "erms.self.obsgap_windows_total"
	CtrScaleUps        = "erms.self.plan_scale_ups_total"
	CtrScaleDowns      = "erms.self.plan_scale_downs_total"
	CtrRepaired        = "erms.self.repaired_containers_total"
	GaugeContainers    = "erms.self.plan_containers" // gauge: containers in the applied plan

	// Controller.
	CtrPlans          = "erms.self.plans_total"
	CtrApplies        = "erms.self.applies_total"
	CtrApplyRollbacks = "erms.self.apply_rollbacks_total"

	// Compiled plan templates (cumulative cache effectiveness; the cache
	// reports running totals, so these are Set rather than Add).
	CtrPlanTemplateHits          = "erms.self.plan_template_hits_total"
	CtrPlanTemplateCompiles      = "erms.self.plan_template_compiles_total"
	CtrPlanTemplateInvalidations = "erms.self.plan_template_invalidations_total"

	// Incremental sharded planning (cumulative planner effectiveness; the
	// planner reports running totals, so these are Set rather than Add).
	CtrPlanSkipped = "erms.self.plan_skipped_total"
	CtrPlanDirty   = "erms.self.plan_dirty_total"
	CtrPlanShards  = "erms.self.plan_shards_total"

	// Online drift loop (cumulative detector totals; the detector reports
	// running counters, so these are Set rather than Add).
	CtrDriftWindows    = "erms.self.drift_windows_total"
	CtrDriftDetections = "erms.self.drift_detected_total"
	CtrDriftRefits     = "erms.self.drift_refits_total"
	CtrDriftFallbacks  = "erms.self.drift_refit_fallbacks_total"
	CtrModelSwaps      = "erms.self.model_swaps_total"
	GaugeDriftScore    = "erms.self.drift_score_max" // gauge: worst drift score seen

	// Operator rollouts (counted by internal/operator as spec generations
	// move through the canary → promote → soak state machine).
	CtrRolloutStarted    = "erms.self.rollout_started_total"
	CtrRolloutPromoted   = "erms.self.rollout_promoted_total"
	CtrRolloutRolledBack = "erms.self.rollout_rolled_back_total"
	CtrRolloutSuperseded = "erms.self.rollout_superseded_total"
	GaugeGeneration      = "erms.self.spec_generation" // gauge: committed spec generation

	// Simulation engine (accumulated across evaluation windows).
	CtrSimEvents       = "erms.self.sim_events_total"
	CtrSimJobsAlloc    = "erms.self.sim_jobs_allocated_total"
	CtrSimJobsRecycled = "erms.self.sim_jobs_recycled_total"
	GaugeSimHeapPeak   = "erms.self.sim_event_heap_peak" // gauge: high-water event-heap depth

	// Partitioned / hybrid simulation (accumulated across evaluation
	// windows): sharing-group partitions run, and container-minutes served
	// from the analytic fluid model vs the discrete event engine.
	CtrSimPartitions      = "erms.self.sim_partitions_total"
	CtrSimFluidContainers = "erms.self.sim_fluid_containers_total"
	CtrSimExactContainers = "erms.self.sim_exact_containers_total"

	// Data-plane resilience (accumulated across evaluation windows; all zero
	// unless the simulator runs with a sim.Resilience config).
	CtrDataAttempts             = "erms.data.attempts_total"
	CtrDataTimeouts             = "erms.data.timeouts_total"
	CtrDataRetries              = "erms.data.retries_total"
	CtrDataRetryBudgetExhausted = "erms.data.retry_budget_exhausted_total"
	CtrDataBreakerOpens         = "erms.data.breaker_opens_total"
	CtrDataBreakerShortCircuits = "erms.data.breaker_short_circuits_total"
	CtrDataShed                 = "erms.data.shed_total"
	CtrDataCrashFailures        = "erms.data.crash_failures_total"
	CtrDataDeadlineSkips        = "erms.data.deadline_skips_total"
	CtrDataUnavailable          = "erms.data.unavailable_total"
	CtrDataErrors               = "erms.data.request_errors_total"

	// Per-SLO-tier data-plane outcomes (populated by cohort-stream
	// evaluations, e.g. spec-driven runs). See TierDataCounter.

	// Chaos events observed by the injector.
	CtrChaosHostsFailed    = "erms.self.chaos_hosts_failed_total"
	CtrChaosHostsRecovered = "erms.self.chaos_hosts_recovered_total"
	CtrChaosSpikes         = "erms.self.chaos_interference_spikes_total"
	CtrChaosCrashes        = "erms.self.chaos_container_crashes_total"
	CtrChaosOpFaults       = "erms.self.chaos_op_faults_total"
	CtrChaosObsGaps        = "erms.self.chaos_obs_gaps_total"
)

// TierDataCounter maps an SLO tier name (workload.Tier.String(): "critical",
// "standard", "sheddable", "batch") and an outcome class ("success", "slow",
// "error", "shed") to its erms.data.* counter name. Precomputed so the
// per-window surfacing path performs no string concatenation; unknown pairs
// fold into a catch-all counter rather than minting unbounded names.
func TierDataCounter(tier, outcome string) string {
	if name, ok := tierDataCounters[tier+"/"+outcome]; ok {
		return name
	}
	return "erms.data.tier_unknown_total"
}

var tierDataCounters = func() map[string]string {
	m := make(map[string]string, 16)
	for _, tier := range []string{"critical", "standard", "sheddable", "batch"} {
		for _, outcome := range []string{"success", "slow", "error", "shed"} {
			m[tier+"/"+outcome] = "erms.data.tier_" + tier + "_" + outcome + "_total"
		}
	}
	return m
}()

// KubeEventCounter maps a kube event-type string (kube.EventType.String())
// to its erms.self.* counter name. Precomputed so the orchestrator's emit
// path performs no string concatenation.
func KubeEventCounter(eventType string) string {
	if name, ok := kubeEventCounters[eventType]; ok {
		return name
	}
	return "erms.self.kube_events_unknown_total"
}

var kubeEventCounters = map[string]string{
	"create":       "erms.self.kube_creates_total",
	"scale-up":     "erms.self.kube_scale_ups_total",
	"scale-down":   "erms.self.kube_scale_downs_total",
	"delete":       "erms.self.kube_deletes_total",
	"cordon":       "erms.self.kube_cordons_total",
	"uncordon":     "erms.self.kube_uncordons_total",
	"drain":        "erms.self.kube_drains_total",
	"node-fail":    "erms.self.kube_node_fails_total",
	"node-recover": "erms.self.kube_node_recovers_total",
	"repair":       "erms.self.kube_repairs_total",
}

// SpanRecord is one completed internal span: a named phase of the control
// loop, timed in wall-clock milliseconds (the controller's own decision
// latency — simulated time is the applications' clock, not ours).
type SpanRecord struct {
	Name string `json:"name"`
	// Window is the reconciliation window the phase ran in (-1 when the
	// span is not window-scoped).
	Window int `json:"window"`
	// StartMs is the span start as milliseconds since the recorder was
	// created.
	StartMs float64 `json:"start_ms"`
	// DurMs is the wall-clock duration in milliseconds.
	DurMs float64 `json:"dur_ms"`
}

// Recorder accumulates the control plane's self-telemetry. The zero value
// is not usable; call New. All methods are safe for concurrent use and
// no-ops on a nil receiver, so call sites need no enabled/disabled branch:
//
//	var rec *obs.Recorder // nil: disabled, zero cost
//	sp := rec.StartSpan(obs.PhasePlan, w)
//	...
//	sp.End()
//	rec.Add(obs.CtrRetries, 1)
type Recorder struct {
	// now is the clock; replaceable by tests for deterministic spans.
	now func() time.Time

	epoch time.Time

	mu       sync.Mutex
	counters map[string]float64
	spans    []SpanRecord
	spanHead int // ring start when the buffer is full
	spanCap  int
	dropped  int
	store    *metrics.Store
}

// New creates a recorder. store, when non-nil, receives the erms.self.*
// series on each FlushWindow; pass the controller's Metrics store so
// application metrics and self-telemetry live in one queryable place.
func New(store *metrics.Store) *Recorder {
	r := &Recorder{
		now:      time.Now,
		counters: make(map[string]float64),
		spanCap:  4096,
		store:    store,
	}
	r.epoch = r.now()
	return r
}

// Enabled reports whether the recorder is active (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Store returns the bound metrics store (nil when detached or disabled).
func (r *Recorder) Store() *metrics.Store {
	if r == nil {
		return nil
	}
	return r.store
}

// Add increments a counter by delta. No-op on a nil recorder.
func (r *Recorder) Add(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Inc increments a counter by one. No-op on a nil recorder.
func (r *Recorder) Inc(name string) { r.Add(name, 1) }

// Set overwrites a gauge. No-op on a nil recorder.
func (r *Recorder) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = v
	r.mu.Unlock()
}

// SetMax raises a gauge to v if v exceeds its current value.
func (r *Recorder) SetMax(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if v > r.counters[name] {
		r.counters[name] = v
	}
	r.mu.Unlock()
}

// Value returns a counter's current value (0 when absent or disabled).
func (r *Recorder) Value(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Counters returns a name-sorted snapshot of every counter and gauge.
func (r *Recorder) Counters() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Span is an in-flight phase timing handle. The zero value (returned by a
// nil recorder) is inert: End is a no-op returning 0. Span is a small value
// type so the disabled path allocates nothing.
type Span struct {
	r     *Recorder
	name  string
	w     int
	start time.Time
}

// StartSpan begins timing a named phase of the given window (-1 for spans
// outside the window loop). On a nil recorder it returns an inert Span and
// does not read the clock.
func (r *Recorder) StartSpan(name string, window int) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, w: window, start: r.now()}
}

// End completes the span, records it, and returns its wall-clock duration
// in milliseconds (0 for the inert span).
func (s Span) End() float64 {
	if s.r == nil {
		return 0
	}
	end := s.r.now()
	dur := float64(end.Sub(s.start)) / float64(time.Millisecond)
	rec := SpanRecord{
		Name:    s.name,
		Window:  s.w,
		StartMs: float64(s.start.Sub(s.r.epoch)) / float64(time.Millisecond),
		DurMs:   dur,
	}
	s.r.mu.Lock()
	if len(s.r.spans) < s.r.spanCap {
		s.r.spans = append(s.r.spans, rec)
	} else {
		// Ring: overwrite the oldest retained span.
		s.r.spans[s.r.spanHead] = rec
		s.r.spanHead = (s.r.spanHead + 1) % s.r.spanCap
		s.r.dropped++
	}
	s.r.mu.Unlock()
	return dur
}

// Spans returns the retained spans in completion order (oldest first).
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.spans))
	out = append(out, r.spans[r.spanHead:]...)
	out = append(out, r.spans[:r.spanHead]...)
	return out
}

// DroppedSpans reports how many spans the bounded buffer has overwritten.
func (r *Recorder) DroppedSpans() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// FlushWindow mirrors the current counter values — and the named window's
// phase durations as erms.self.phase_ms{phase="..."} — into the bound
// metrics store at time tMin (simulated minutes). Counters are recorded
// cumulatively, matching Prometheus counter semantics; rates fall out of
// the store's Range deltas. No-op when disabled or detached from a store.
func (r *Recorder) FlushWindow(window int, tMin float64) {
	if r == nil || r.store == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	type kv struct {
		k string
		v float64
	}
	snapshot := make([]kv, 0, len(names))
	for _, name := range names {
		snapshot = append(snapshot, kv{name, r.counters[name]})
	}
	var phases []kv
	for _, sp := range r.spans {
		if sp.Window == window {
			phases = append(phases, kv{sp.Name, sp.DurMs})
		}
	}
	r.mu.Unlock()

	for _, c := range snapshot {
		r.store.Append(c.k, tMin, c.v)
	}
	for _, p := range phases {
		r.store.Append(metrics.Key("erms.self.phase_ms", "phase", p.k), tMin, p.v)
	}
}
