//go:build !race

package obs

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation gates skip under -race (the detector instruments
// allocations and would fail them spuriously).
const raceEnabled = false
