package obs

import (
	"net/http/httptest"
	"strings"
	"testing"

	"erms/internal/metrics"
)

// allCounterNames is every erms.* counter and gauge constant the control
// plane records. The export test below is the drift gate: a constant added
// to obs.go without landing here fails the completeness check, and a
// constant that stops rendering on /metrics (bad characters, PromName
// collision) fails the export check.
var allCounterNames = []string{
	CtrWindows, CtrRetries, CtrBackoffMin, CtrDegradedWindows,
	CtrOutageWindows, CtrObsGapWindows, CtrScaleUps, CtrScaleDowns,
	CtrRepaired, GaugeContainers,
	CtrPlans, CtrApplies, CtrApplyRollbacks,
	CtrPlanTemplateHits, CtrPlanTemplateCompiles, CtrPlanTemplateInvalidations,
	CtrPlanSkipped, CtrPlanDirty, CtrPlanShards,
	CtrDriftWindows, CtrDriftDetections, CtrDriftRefits, CtrDriftFallbacks,
	CtrModelSwaps, GaugeDriftScore,
	CtrRolloutStarted, CtrRolloutPromoted, CtrRolloutRolledBack,
	CtrRolloutSuperseded, GaugeGeneration,
	CtrSimEvents, CtrSimJobsAlloc, CtrSimJobsRecycled, GaugeSimHeapPeak,
	CtrSimPartitions, CtrSimFluidContainers, CtrSimExactContainers,
	CtrDataAttempts, CtrDataTimeouts, CtrDataRetries,
	CtrDataRetryBudgetExhausted, CtrDataBreakerOpens,
	CtrDataBreakerShortCircuits, CtrDataShed, CtrDataCrashFailures,
	CtrDataDeadlineSkips, CtrDataUnavailable, CtrDataErrors,
	CtrChaosHostsFailed, CtrChaosHostsRecovered, CtrChaosSpikes,
	CtrChaosCrashes, CtrChaosOpFaults, CtrChaosObsGaps,
}

// TestAllCountersExportOnMetrics sets every counter constant to a unique
// value and asserts each renders on /metrics under its sanitized Prometheus
// name with that value — the counter-name contract between the recording
// side (core, reconciler, chaos, sim) and the scrape surface.
func TestAllCountersExportOnMetrics(t *testing.T) {
	// Guard against two constants silently merging into one series.
	seen := make(map[string]string, len(allCounterNames))
	for _, name := range allCounterNames {
		pn := PromName(name)
		if prev, dup := seen[pn]; dup {
			t.Fatalf("constants %q and %q collide on prom name %q", prev, name, pn)
		}
		seen[pn] = name
	}

	r := New(metrics.NewStore())
	for i, name := range allCounterNames {
		r.Set(name, float64(i+1))
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for i, name := range allCounterNames {
		want := PromName(name) + " " + itoa(i+1)
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q (constant %q)", want, name)
		}
	}
	// The new planner counters must keep their documented scrape names.
	for _, want := range []string{
		"erms_self_plan_skipped_total",
		"erms_self_plan_dirty_total",
		"erms_self_plan_shards_total",
		"erms_self_plan_template_hits_total",
		"erms_self_plan_template_compiles_total",
		"erms_self_plan_template_invalidations_total",
		"erms_self_drift_windows_total",
		"erms_self_drift_detected_total",
		"erms_self_drift_refits_total",
		"erms_self_drift_refit_fallbacks_total",
		"erms_self_model_swaps_total",
		"erms_self_drift_score_max",
		"erms_self_rollout_started_total",
		"erms_self_rollout_promoted_total",
		"erms_self_rollout_rolled_back_total",
		"erms_self_rollout_superseded_total",
		"erms_self_spec_generation",
		"erms_self_sim_partitions_total",
		"erms_self_sim_fluid_containers_total",
		"erms_self_sim_exact_containers_total",
	} {
		if !strings.Contains(body, want+" ") {
			t.Errorf("/metrics missing documented series %q", want)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
