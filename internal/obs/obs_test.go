package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"erms/internal/metrics"
)

// fakeClock returns a clock that advances stepMs per reading.
func fakeClock(stepMs float64) func() time.Time {
	t0 := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(float64(n) * stepMs * float64(time.Millisecond)))
		n++
		return t
	}
}

func newTestRecorder(store *metrics.Store, stepMs float64) *Recorder {
	r := New(store)
	r.now = fakeClock(stepMs)
	r.epoch = r.now()
	return r
}

func TestCountersAndGauges(t *testing.T) {
	r := New(nil)
	r.Add(CtrRetries, 2)
	r.Inc(CtrRetries)
	r.Set(GaugeContainers, 40)
	r.Set(GaugeContainers, 38)
	r.SetMax(GaugeSimHeapPeak, 10)
	r.SetMax(GaugeSimHeapPeak, 7)
	if got := r.Value(CtrRetries); got != 3 {
		t.Errorf("retries = %v, want 3", got)
	}
	if got := r.Value(GaugeContainers); got != 38 {
		t.Errorf("gauge = %v, want last Set to win", got)
	}
	if got := r.Value(GaugeSimHeapPeak); got != 10 {
		t.Errorf("SetMax = %v, want 10", got)
	}
	if got := r.Value("erms.self.never_touched"); got != 0 {
		t.Errorf("absent counter = %v, want 0", got)
	}
}

func TestSpansRecordWindowAndDuration(t *testing.T) {
	r := newTestRecorder(nil, 5) // every clock read advances 5ms
	sp := r.StartSpan(PhasePlan, 2)
	if d := sp.End(); d != 5 {
		t.Fatalf("span duration = %v, want 5ms from the fake clock", d)
	}
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	got := spans[0]
	if got.Name != PhasePlan || got.Window != 2 || got.DurMs != 5 {
		t.Errorf("span = %+v", got)
	}
}

func TestSpanRingEvictsOldest(t *testing.T) {
	r := newTestRecorder(nil, 1)
	r.spanCap = 4
	for i := 0; i < 6; i++ {
		r.StartSpan(PhaseApply, i).End()
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained = %d, want cap 4", len(spans))
	}
	for i, sp := range spans {
		if want := i + 2; sp.Window != want {
			t.Errorf("span %d window = %d, want %d (oldest first)", i, sp.Window, want)
		}
	}
	if r.DroppedSpans() != 2 {
		t.Errorf("dropped = %d, want 2", r.DroppedSpans())
	}
}

func TestFlushWindowMirrorsIntoStore(t *testing.T) {
	st := metrics.NewStore()
	r := newTestRecorder(st, 3)
	r.Add(CtrRetries, 2)
	r.Set(GaugeContainers, 44)
	r.StartSpan(PhasePlan, 0).End()
	r.StartSpan(PhaseEvaluate, 0).End()
	r.FlushWindow(0, 1.5)
	r.Add(CtrRetries, 1)
	r.StartSpan(PhasePlan, 1).End()
	r.FlushWindow(1, 3.0)

	pts := st.Range(CtrRetries, 0, 10)
	if len(pts) != 2 || pts[0].V != 2 || pts[1].V != 3 {
		t.Fatalf("retries series = %+v, want cumulative [2 3]", pts)
	}
	if p, ok := st.Latest(GaugeContainers); !ok || p.V != 44 {
		t.Fatalf("gauge series latest = %+v ok=%v", p, ok)
	}
	planKey := metrics.Key("erms.self.phase_ms", "phase", PhasePlan)
	plans := st.Range(planKey, 0, 10)
	if len(plans) != 2 {
		t.Fatalf("phase_ms{plan} = %+v, want one point per flushed window", plans)
	}
	if plans[0].T != 1.5 || plans[1].T != 3.0 {
		t.Errorf("phase points at %v/%v, want window-end timestamps", plans[0].T, plans[1].T)
	}
	evalKey := metrics.Key("erms.self.phase_ms", "phase", PhaseEvaluate)
	if got := st.Range(evalKey, 0, 10); len(got) != 1 {
		t.Errorf("phase_ms{evaluate} = %+v, want only window 0's span", got)
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	sp := r.StartSpan(PhasePlan, 0)
	if d := sp.End(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	r.Add(CtrRetries, 1)
	r.Inc(CtrRetries)
	r.Set(GaugeContainers, 1)
	r.SetMax(GaugeContainers, 2)
	r.FlushWindow(0, 0)
	if r.Value(CtrRetries) != 0 || r.Counters() != nil || r.Spans() != nil {
		t.Error("nil recorder retained state")
	}
	if r.Store() != nil || r.DroppedSpans() != 0 {
		t.Error("nil recorder accessors not inert")
	}
}

// TestDisabledRecorderZeroAlloc is the overhead gate of the self-telemetry
// layer: with no recorder configured, every instrumented call site must cost
// zero heap allocations, so the disabled control loop's hot paths are
// byte-for-byte as cheap as before the layer existed.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartSpan(PhasePlan, 3)
		r.Add(CtrRetries, 1)
		r.Inc(CtrPlans)
		r.Set(GaugeContainers, 42)
		r.SetMax(GaugeSimHeapPeak, 7)
		_ = r.Value(CtrRetries)
		_ = r.Enabled()
		sp.End()
		r.FlushWindow(3, 1.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %v per instrumented window, want 0", allocs)
	}
}

// TestEnabledCounterSteadyStateZeroAlloc pins the enabled counter fast path:
// once a counter exists, further Adds must not allocate (map writes of
// existing keys are allocation-free), keeping per-event instrumentation
// (kube emit, chaos injection) cheap even when enabled.
func TestEnabledCounterSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	r := New(nil)
	r.Add(CtrRetries, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Add(CtrRetries, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state enabled Add allocates %v, want 0", allocs)
	}
}

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"erms.self.retries_total", "erms_self_retries_total"},
		{`erms.self.phase_ms{phase="plan"}`, `erms_self_phase_ms{phase="plan"}`},
		{`host_cpu_util{host="3"}`, `host_cpu_util{host="3"}`},
		{"9lives", "_9lives"},
		{"a:b-c", "a:b_c"},
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	st := metrics.NewStore()
	st.Append(metrics.Key("host_cpu_util", "host", "0"), 1, 0.25)
	r := newTestRecorder(st, 2)
	r.Add(CtrRetries, 4)
	r.StartSpan(PhasePlan, 0).End()
	r.FlushWindow(0, 1.2)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return sb.String()
	}

	metricsBody := get("/metrics")
	for _, want := range []string{
		"erms_self_retries_total 4",
		`erms_self_phase_ms{phase="plan"}`,
		`host_cpu_util{host="0"} 0.25`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metricsBody)
		}
	}

	var payload struct {
		Spans   []SpanRecord `json:"spans"`
		Dropped int          `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(get("/spans")), &payload); err != nil {
		t.Fatalf("/spans not JSON: %v", err)
	}
	if len(payload.Spans) != 1 || payload.Spans[0].Name != PhasePlan {
		t.Errorf("/spans payload = %+v", payload)
	}

	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if body := get("/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index page = %q", body)
	}
}

func TestKubeEventCounter(t *testing.T) {
	if got := KubeEventCounter("scale-up"); got != "erms.self.kube_scale_ups_total" {
		t.Errorf("scale-up -> %q", got)
	}
	if got := KubeEventCounter("martian"); got != "erms.self.kube_events_unknown_total" {
		t.Errorf("unknown -> %q", got)
	}
}
