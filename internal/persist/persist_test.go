package persist

import (
	"bytes"
	"strings"
	"testing"

	"erms/internal/apps"
	"erms/internal/multiplex"
	"erms/internal/profiling"
	"erms/internal/scaling"
)

func TestAppRoundTrip(t *testing.T) {
	for _, app := range []*apps.App{apps.HotelReservation(), apps.SocialNetwork(), apps.MediaService()} {
		var buf bytes.Buffer
		if err := SaveApp(&buf, app); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		loaded, err := LoadApp(&buf)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if loaded.Name != app.Name {
			t.Fatalf("name %q != %q", loaded.Name, app.Name)
		}
		if len(loaded.Microservices()) != len(app.Microservices()) {
			t.Fatalf("%s: microservices %d != %d", app.Name, len(loaded.Microservices()), len(app.Microservices()))
		}
		if len(loaded.Shared()) != len(app.Shared()) {
			t.Fatalf("%s: shared %v != %v", app.Name, loaded.Shared(), app.Shared())
		}
		// Graph structure preserved exactly: same node count and stages.
		for i, g := range app.Graphs {
			lg := loaded.Graphs[i]
			if lg.Len() != g.Len() {
				t.Fatalf("%s/%s: %d nodes != %d", app.Name, g.Service, lg.Len(), g.Len())
			}
			if len(lg.Root.Stages) != len(g.Root.Stages) {
				t.Fatalf("%s/%s: root stages differ", app.Name, g.Service)
			}
		}
	}
}

func TestSaveAppRejectsInvalid(t *testing.T) {
	app := apps.HotelReservation()
	delete(app.Profiles, "search")
	var buf bytes.Buffer
	if err := SaveApp(&buf, app); err == nil {
		t.Fatal("invalid app saved")
	}
}

func TestLoadAppErrors(t *testing.T) {
	if _, err := LoadApp(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadApp(strings.NewReader(`{"name":"x","graphs":[{"service":"s","root":{}}]}`)); err == nil {
		t.Fatal("rootless graph accepted")
	}
	// Valid JSON but fails app validation (no profile for the node).
	doc := `{"name":"x","graphs":[{"service":"s","root":{"microservice":"a"}}],
	 "profiles":{},"slas":{},"containers":{}}`
	if _, err := LoadApp(strings.NewReader(doc)); err == nil {
		t.Fatal("invalid app accepted")
	}
}

func TestPlanSaveAndSummary(t *testing.T) {
	plan := &multiplex.Plan{
		Scheme:     multiplex.SchemePriority,
		Containers: map[string]int{"a": 2, "b": 3},
		Ranks:      map[string]map[string]int{"a": {"svc1": 0}},
		PerService: map[string]*scaling.Allocation{
			"svc1": {Targets: map[string]float64{"a": 10, "b": 20}},
		},
	}
	var buf bytes.Buffer
	if err := SavePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"scheme": "priority"`, `"total_containers": 5`, `"svc1"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan JSON missing %q:\n%s", want, out)
		}
	}
	sum := PlanSummary(plan)
	if !strings.Contains(sum, "total=5") || !strings.Contains(sum, "a") {
		t.Fatalf("summary = %q", sum)
	}
}

func TestModelRoundTrip(t *testing.T) {
	// Fit a model, save, load, and verify identical predictions.
	samples := make([]profiling.Sample, 0, 400)
	for i := 0; i < 400; i++ {
		w := float64(i%100) * 50
		lvl := float64((i/100)%4) * 0.2
		tail := 5 + 0.002*w*(1+lvl)
		if w > 3000 {
			tail += 0.01 * (w - 3000) * (1 + lvl)
		}
		samples = append(samples, profiling.Sample{
			Workload: w, TailMs: tail, CPUUtil: lvl, MemUtil: lvl / 2,
		})
	}
	m, err := profiling.Fit("ms", samples, profiling.FitConfig{MinBucket: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := profiling.SaveModels(map[string]profiling.Model{"ms": m})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := profiling.LoadModels(data)
	if err != nil {
		t.Fatal(err)
	}
	lm, ok := loaded["ms"]
	if !ok {
		t.Fatal("model missing after round trip")
	}
	for _, w := range []float64{100, 1500, 4000} {
		for _, u := range []float64{0.1, 0.5} {
			if got, want := lm.Predict(w, u, u/2), m.Predict(w, u, u/2); got != want {
				t.Fatalf("prediction drift at (%v,%v): %v != %v", w, u, got, want)
			}
			if lm.Knee(u, u/2) != m.Knee(u, u/2) {
				t.Fatal("knee drift")
			}
		}
	}
}

func TestLoadModelsError(t *testing.T) {
	if _, err := profiling.LoadModels([]byte("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}
