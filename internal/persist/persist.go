// Package persist serializes the repository's long-lived artifacts to JSON:
// application topologies (so custom apps can be authored as data files),
// scaling plans (for audit and replay), and fitted latency models (offline
// profiling takes long enough that its output must survive restarts, §5.2).
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/multiplex"
	"erms/internal/sim"
	"erms/internal/workload"
)

// nodeJSON is one call-tree node: a microservice plus its stages of
// parallel downstream calls.
type nodeJSON struct {
	Microservice string       `json:"microservice"`
	Stages       [][]nodeJSON `json:"stages,omitempty"`
}

// graphJSON is one service's dependency graph.
type graphJSON struct {
	Service string   `json:"service"`
	Root    nodeJSON `json:"root"`
}

// appJSON is the on-disk application format.
type appJSON struct {
	Name       string                           `json:"name"`
	Graphs     []graphJSON                      `json:"graphs"`
	Profiles   map[string]sim.ServiceProfile    `json:"profiles"`
	SLAs       map[string]workload.SLA          `json:"slas"`
	Containers map[string]cluster.ContainerSpec `json:"containers"`
}

func nodeToJSON(n *graph.Node) nodeJSON {
	out := nodeJSON{Microservice: n.Microservice}
	for _, st := range n.Stages {
		stage := make([]nodeJSON, len(st))
		for i, c := range st {
			stage[i] = nodeToJSON(c)
		}
		out.Stages = append(out.Stages, stage)
	}
	return out
}

func buildNode(g *graph.Graph, parent *graph.Node, j nodeJSON) error {
	for _, stage := range j.Stages {
		names := make([]string, len(stage))
		for i, c := range stage {
			if c.Microservice == "" {
				return errors.New("persist: node with empty microservice")
			}
			names[i] = c.Microservice
		}
		created := g.AddStage(parent, names...)
		for i, c := range stage {
			if err := buildNode(g, created[i], c); err != nil {
				return err
			}
		}
	}
	return nil
}

// SaveApp writes the application as indented JSON.
func SaveApp(w io.Writer, app *apps.App) error {
	if err := app.Validate(); err != nil {
		return fmt.Errorf("persist: refusing to save invalid app: %w", err)
	}
	out := appJSON{
		Name:       app.Name,
		Profiles:   app.Profiles,
		SLAs:       app.SLAs,
		Containers: app.Containers,
	}
	for _, g := range app.Graphs {
		out.Graphs = append(out.Graphs, graphJSON{Service: g.Service, Root: nodeToJSON(g.Root)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadApp reads an application saved by SaveApp (or hand-authored in the
// same format) and validates it.
func LoadApp(r io.Reader) (*apps.App, error) {
	var in appJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	app := &apps.App{
		Name:       in.Name,
		Profiles:   in.Profiles,
		SLAs:       in.SLAs,
		Containers: in.Containers,
	}
	for _, gj := range in.Graphs {
		if gj.Root.Microservice == "" {
			return nil, fmt.Errorf("persist: service %s has no root", gj.Service)
		}
		g := graph.New(gj.Service, gj.Root.Microservice)
		if err := buildNode(g, g.Root, gj.Root); err != nil {
			return nil, err
		}
		app.Graphs = append(app.Graphs, g)
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("persist: loaded app invalid: %w", err)
	}
	return app, nil
}

// planJSON is the audit/replay form of a multiplex plan.
type planJSON struct {
	Scheme     string                    `json:"scheme"`
	Containers map[string]int            `json:"containers"`
	Total      int                       `json:"total_containers"`
	Ranks      map[string]map[string]int `json:"priority_ranks,omitempty"`
	Targets    map[string]msTargets      `json:"targets_per_service"`
}

type msTargets map[string]float64

// SavePlan writes a scaling plan as indented JSON.
func SavePlan(w io.Writer, plan *multiplex.Plan) error {
	out := planJSON{
		Scheme:     plan.Scheme.String(),
		Containers: plan.Containers,
		Total:      plan.TotalContainers(),
		Ranks:      plan.Ranks,
		Targets:    make(map[string]msTargets, len(plan.PerService)),
	}
	for svc, alloc := range plan.PerService {
		out.Targets[svc] = alloc.Targets
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// PlanSummary renders a deterministic human-readable plan summary.
func PlanSummary(plan *multiplex.Plan) string {
	var mss []string
	for ms := range plan.Containers {
		mss = append(mss, ms)
	}
	sort.Strings(mss)
	out := fmt.Sprintf("scheme=%s total=%d\n", plan.Scheme, plan.TotalContainers())
	for _, ms := range mss {
		out += fmt.Sprintf("  %-28s %d\n", ms, plan.Containers[ms])
	}
	return out
}
