package metrics

import (
	"math"
	"sync"
	"testing"

	"erms/internal/cluster"
	"erms/internal/workload"
)

func TestKey(t *testing.T) {
	if got := Key("m"); got != "m" {
		t.Fatalf("bare key = %q", got)
	}
	if got := Key("m", "a", "1", "b", "2"); got != `m{a="1",b="2"}` {
		t.Fatalf("labeled key = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd label count should panic")
		}
	}()
	Key("m", "a")
}

func TestAppendAndRange(t *testing.T) {
	st := NewStore()
	for i := 0; i < 10; i++ {
		st.Append("s", float64(i), float64(i)*2)
	}
	pts := st.Range("s", 3, 7)
	if len(pts) != 4 {
		t.Fatalf("range len = %d", len(pts))
	}
	if pts[0].T != 3 || pts[3].T != 6 {
		t.Fatalf("range bounds wrong: %v", pts)
	}
	if got := st.Range("missing", 0, 10); got != nil {
		t.Fatal("missing series should be nil")
	}
}

// TestOutOfOrderAppend is the regression test for the Range/Append mismatch:
// Append used to accept out-of-order points verbatim while Range's binary
// search assumed sorted timestamps, silently truncating or misplacing
// windows. Append now inserts late points in timestamp order.
func TestOutOfOrderAppend(t *testing.T) {
	st := NewStore()
	// Arrival order deliberately scrambled.
	for _, p := range []Point{{T: 5, V: 50}, {T: 1, V: 10}, {T: 3, V: 30}, {T: 2, V: 20}, {T: 4, V: 40}} {
		st.Append("s", p.T, p.V)
	}
	pts := st.Range("s", 0, 10)
	if len(pts) != 5 {
		t.Fatalf("range len = %d, want 5", len(pts))
	}
	for i, p := range pts {
		want := float64(i + 1)
		if p.T != want || p.V != want*10 {
			t.Fatalf("point %d = %+v, want {T:%v V:%v}", i, p, want, want*10)
		}
	}
	// Half-open sub-windows see exactly the points in [t0, t1).
	if got := st.Range("s", 2, 4); len(got) != 2 || got[0].T != 2 || got[1].T != 3 {
		t.Fatalf("sub-range = %v", got)
	}
	// Aggregates over a window of a scrambled series are correct too.
	if m, ok := st.MeanInRange("s", 1, 4); !ok || m != 20 {
		t.Fatalf("mean = %v ok=%v, want 20", m, ok)
	}
	if q, ok := st.QuantileInRange("s", 1.0, 0, 10); !ok || q != 50 {
		t.Fatalf("quantile = %v ok=%v, want 50", q, ok)
	}
	// Latest reports the greatest timestamp, not the last arrival.
	st.Append("s", 0.5, 5)
	if p, ok := st.Latest("s"); !ok || p.T != 5 || p.V != 50 {
		t.Fatalf("latest after late point = %+v ok=%v", p, ok)
	}
}

// TestAppendEqualTimestampsStable pins the tie rule: equal-timestamp points
// keep arrival order, and Latest returns the most recently appended of them.
func TestAppendEqualTimestampsStable(t *testing.T) {
	st := NewStore()
	st.Append("s", 1, 1)
	st.Append("s", 2, 2)
	st.Append("s", 2, 3)
	st.Append("s", 1, 4) // late duplicate timestamp: lands after the first T=1
	pts := st.Range("s", 0, 10)
	wantV := []float64{1, 4, 2, 3}
	if len(pts) != len(wantV) {
		t.Fatalf("len = %d, want %d", len(pts), len(wantV))
	}
	for i, p := range pts {
		if p.V != wantV[i] {
			t.Fatalf("order = %v, want values %v", pts, wantV)
		}
	}
	if p, _ := st.Latest("s"); p.T != 2 || p.V != 3 {
		t.Fatalf("latest = %+v, want {T:2 V:3}", p)
	}
}

func TestLatest(t *testing.T) {
	st := NewStore()
	if _, ok := st.Latest("s"); ok {
		t.Fatal("latest on empty store")
	}
	st.Append("s", 1, 10)
	st.Append("s", 2, 20)
	p, ok := st.Latest("s")
	if !ok || p.V != 20 || p.T != 2 {
		t.Fatalf("latest = %+v ok=%v", p, ok)
	}
}

func TestAggregates(t *testing.T) {
	st := NewStore()
	for i := 0; i < 100; i++ {
		st.Append("s", float64(i), float64(i))
	}
	m, ok := st.MeanInRange("s", 0, 100)
	if !ok || math.Abs(m-49.5) > 1e-9 {
		t.Fatalf("mean = %v ok=%v", m, ok)
	}
	q, ok := st.QuantileInRange("s", 0.5, 0, 100)
	if !ok || math.Abs(q-49.5) > 1e-9 {
		t.Fatalf("median = %v", q)
	}
	if _, ok := st.MeanInRange("s", 200, 300); ok {
		t.Fatal("empty window should report !ok")
	}
}

func TestNamesSorted(t *testing.T) {
	st := NewStore()
	st.Append("b", 0, 1)
	st.Append("a", 0, 1)
	names := st.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestConcurrentAppend(t *testing.T) {
	st := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				st.Append(Key("s", "g", string(rune('0'+g))), float64(i), 1)
			}
		}(g)
	}
	wg.Wait()
	if len(st.Names()) != 8 {
		t.Fatalf("series count = %d", len(st.Names()))
	}
	for _, n := range st.Names() {
		if got := len(st.Range(n, 0, 1e9)); got != 1000 {
			t.Fatalf("series %s has %d points", n, got)
		}
	}
}

func TestCollectCluster(t *testing.T) {
	cl := cluster.New(2, cluster.HostSpec{Cores: 10, MemGB: 10})
	cl.SetBackground(0, workload.Interference{CPU: 0.5, Mem: 0.25})
	if _, err := cl.Place(cluster.PaperContainer("frontend"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Place(cluster.PaperContainer("frontend"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Place(cluster.PaperContainer("storage"), 1); err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	CollectCluster(st, cl, 5)

	p, ok := st.Latest(Key(MetricHostCPU, "host", "0"))
	if !ok || p.V < 0.5 {
		t.Fatalf("host 0 cpu = %+v", p)
	}
	// frontend runs on both hosts: its utilization is the average.
	fcpu, ok := st.Latest(Key(MetricMSCPU, "ms", "frontend"))
	if !ok {
		t.Fatal("no frontend cpu series")
	}
	h0 := cl.Host(0).CPUUtil()
	h1 := cl.Host(1).CPUUtil()
	if math.Abs(fcpu.V-(h0+h1)/2) > 1e-9 {
		t.Fatalf("frontend cpu = %v, want %v", fcpu.V, (h0+h1)/2)
	}
	cnt, ok := st.Latest(Key(MetricMSCount, "ms", "frontend"))
	if !ok || cnt.V != 2 {
		t.Fatalf("frontend containers = %+v", cnt)
	}
	scount, _ := st.Latest(Key(MetricMSCount, "ms", "storage"))
	if scount.V != 1 {
		t.Fatalf("storage containers = %v", scount.V)
	}
}
