// Package metrics is a small in-process time-series store standing in for
// Prometheus: the Erms Tracing Coordinator records OS-level metrics (host and
// container CPU/memory utilization) here, and the profiling and provisioning
// modules query it back out (§5.1).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"erms/internal/cluster"
	"erms/internal/stats"
)

// Point is one observation of a series.
type Point struct {
	T float64 // timestamp in minutes
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	points []Point
}

// Points returns a copy of the series data.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// Store holds named time series. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	series map[string]*Series
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{series: make(map[string]*Series)}
}

// Key builds a canonical series name from a metric name and labels, e.g.
// Key("host_cpu", "host", "3") -> `host_cpu{host="3"}`.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("metrics: Key labels must be key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Append records one observation. Points are kept sorted by timestamp:
// in-order appends (the common case) are O(1), while a late point is
// inserted at its timestamp so Range, Latest, and the quantile helpers stay
// correct. Insertion is stable — among equal timestamps, arrival order is
// preserved and Latest reports the most recently appended.
func (st *Store) Append(key string, t, v float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.series[key]
	if !ok {
		s = &Series{Name: key}
		st.series[key] = s
	}
	if n := len(s.points); n == 0 || s.points[n-1].T <= t {
		s.points = append(s.points, Point{T: t, V: v})
		return
	}
	// Out-of-order: insert after every point with T <= t.
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	s.points = append(s.points, Point{})
	copy(s.points[i+1:], s.points[i:])
	s.points[i] = Point{T: t, V: v}
}

// Names returns all series names, sorted.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.series))
	for k := range st.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Range returns the points of a series with t0 <= T < t1.
func (st *Store) Range(key string, t0, t1 float64) []Point {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.series[key]
	if !ok {
		return nil
	}
	lo := sort.Search(len(s.points), func(i int) bool { return s.points[i].T >= t0 })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].T >= t1 })
	out := make([]Point, hi-lo)
	copy(out, s.points[lo:hi])
	return out
}

// Latest returns the most recent point of a series.
func (st *Store) Latest(key string) (Point, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s, ok := st.series[key]
	if !ok || len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// MeanInRange returns the mean value of a series over [t0, t1), and false if
// the window is empty.
func (st *Store) MeanInRange(key string, t0, t1 float64) (float64, bool) {
	pts := st.Range(key, t0, t1)
	if len(pts) == 0 {
		return 0, false
	}
	var m stats.Moments
	for _, p := range pts {
		m.Add(p.V)
	}
	return m.Mean(), true
}

// QuantileInRange returns the q-quantile of a series over [t0, t1).
func (st *Store) QuantileInRange(key string, q, t0, t1 float64) (float64, bool) {
	pts := st.Range(key, t0, t1)
	if len(pts) == 0 {
		return 0, false
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.V
	}
	return stats.Quantile(vals, q), true
}

// Canonical metric names used by the collectors.
const (
	MetricHostCPU = "host_cpu_util"
	MetricHostMem = "host_mem_util"
	MetricMSCPU   = "microservice_cpu_util" // mean util of hosts running the microservice
	MetricMSMem   = "microservice_mem_util"
	MetricMSCount = "microservice_containers"
)

// CollectCluster snapshots host-level and per-microservice utilization of the
// cluster into the store at the given time (minutes). This is the Prometheus
// scrape of the paper's deployment.
func CollectCluster(st *Store, cl *cluster.Cluster, tMin float64) {
	perMSCPU := make(map[string]*stats.Moments)
	perMSMem := make(map[string]*stats.Moments)
	perMSCount := make(map[string]int)
	for _, h := range cl.Hosts() {
		cpu, mem := h.CPUUtil(), h.MemUtil()
		hostLabel := fmt.Sprint(h.ID)
		st.Append(Key(MetricHostCPU, "host", hostLabel), tMin, cpu)
		st.Append(Key(MetricHostMem, "host", hostLabel), tMin, mem)
		for _, c := range h.Containers() {
			ms := c.Spec.Microservice
			if perMSCPU[ms] == nil {
				perMSCPU[ms] = &stats.Moments{}
				perMSMem[ms] = &stats.Moments{}
			}
			perMSCPU[ms].Add(cpu)
			perMSMem[ms].Add(mem)
			perMSCount[ms]++
		}
	}
	for ms, m := range perMSCPU {
		st.Append(Key(MetricMSCPU, "ms", ms), tMin, m.Mean())
		st.Append(Key(MetricMSMem, "ms", ms), tMin, perMSMem[ms].Mean())
		st.Append(Key(MetricMSCount, "ms", ms), tMin, float64(perMSCount[ms]))
	}
}
