// Package chaos is a seeded, deterministic fault-injection engine for the
// Erms substrate. A Schedule is generated up front from a single seed (same
// seed ⇒ byte-identical schedule, matching the repository's determinism
// contract) and enumerates faults across every layer the controller depends
// on:
//
//   - host failures and recoveries (kube fail-node / recover-node, with the
//     in-window capacity loss visible to the simulator before the control
//     plane reacts);
//   - container crashes / OOM kills (mid-window removal on live queues via
//     sim.Failure);
//   - latency/interference spikes (transient background inflation through
//     the cluster.InterferenceModel path);
//   - observability gaps (dropped trace samples and metric windows the
//     profiler must tolerate);
//   - transient control-plane operation failures (plan/apply errors the
//     resilient reconciler retries).
//
// The Injector enacts a Schedule window by window against a kube
// orchestrator and implements core's ChaosHook, so the same schedule drives
// both the substrate faults and the control-loop faults.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"erms/internal/stats"
	"erms/internal/workload"
)

// Kind enumerates fault classes.
type Kind int

// Fault kinds.
const (
	// KindHostFail kills a host mid-window; the control plane detects the
	// dead node at the next window boundary and the host recovers
	// DownWindows windows later.
	KindHostFail Kind = iota
	// KindContainerCrash removes one container of a microservice mid-window
	// (an OOM kill), optionally restarting within the window.
	KindContainerCrash
	// KindLatencySpike transiently raises a host's background interference
	// for one window (a noisy batch neighbour), inflating service times via
	// the interference model.
	KindLatencySpike
	// KindObsGap drops the window's metric samples and trace spans before
	// they reach the control plane.
	KindObsGap
	// KindOpFault makes a control-plane operation ("plan" or "apply") fail
	// transiently for Count consecutive attempts in the window.
	KindOpFault
)

func (k Kind) String() string {
	switch k {
	case KindHostFail:
		return "host-fail"
	case KindContainerCrash:
		return "crash"
	case KindLatencySpike:
		return "spike"
	case KindObsGap:
		return "obs-gap"
	case KindOpFault:
		return "op-fault"
	default:
		return "unknown"
	}
}

// Fault is one scheduled fault. Which fields are meaningful depends on Kind.
type Fault struct {
	Window int
	Kind   Kind
	// Host is the target node (KindHostFail, KindLatencySpike).
	Host int
	// Microservice / Index select the crashing container (KindContainerCrash;
	// Index is by ID order and silently skipped if out of range at injection
	// time).
	Microservice string
	Index        int
	// AtFrac is the fault instant as a fraction of the window.
	AtFrac float64
	// RecoverFrac is the in-window restart instant for crashes (0 = the
	// container stays down for the rest of the window).
	RecoverFrac float64
	// DownWindows is how many windows a failed host stays down
	// (KindHostFail).
	DownWindows int
	// Severity is the added background interference (KindLatencySpike).
	Severity workload.Interference
	// Op and Count describe a control-plane fault (KindOpFault): Op is
	// "plan" or "apply", Count the number of consecutive failing attempts.
	Op    string
	Count int
}

// Config parameterizes schedule generation. Per-window fault probabilities
// are independent draws; everything is derived from Seed alone.
type Config struct {
	Seed      uint64
	Windows   int
	WindowMin float64
	Hosts     int
	// Microservices are the crash candidates (sorted internally so the
	// schedule does not depend on caller order).
	Microservices []string

	// PHostFail is the per-window probability of one host failure.
	PHostFail float64
	// DownWindows is how long a failed host stays down (default 2).
	DownWindows int
	// MaxHostsDown caps concurrently failed hosts (default Hosts/4, min 1).
	MaxHostsDown int

	// PCrash is the per-window probability of each of CrashesPerWindow
	// container crashes (default 1 crash draw per window).
	PCrash           float64
	CrashesPerWindow int

	// PSpike is the per-window probability of a latency spike hitting
	// SpikeHosts hosts with Severity extra background.
	PSpike     float64
	SpikeHosts int
	Severity   workload.Interference

	// PObsGap is the per-window probability of an observability gap.
	PObsGap float64

	// POpFail is the per-window probability of a transient control-plane
	// failure; the failing op alternates by draw and fails for 1..OpFailures
	// consecutive attempts.
	POpFail    float64
	OpFailures int
}

// Default returns the standard fault schedule configuration used by the
// fault experiment (fig22): roughly one substrate fault per window on
// average, control-plane faults sized to be absorbed by the default retry
// budget, and occasional observability gaps.
func Default(seed uint64, windows int, windowMin float64, hosts int, microservices []string) Config {
	return Config{
		Seed:          seed,
		Windows:       windows,
		WindowMin:     windowMin,
		Hosts:         hosts,
		Microservices: microservices,

		PHostFail:   0.25,
		DownWindows: 2,

		PCrash:           0.5,
		CrashesPerWindow: 2,

		PSpike:     0.3,
		SpikeHosts: 3,
		Severity:   workload.Interference{CPU: 0.25, Mem: 0.2},

		PObsGap: 0.15,

		POpFail:    0.25,
		OpFailures: 2,
	}
}

func (c Config) withDefaults() Config {
	if c.WindowMin <= 0 {
		c.WindowMin = 1.5
	}
	if c.DownWindows <= 0 {
		c.DownWindows = 2
	}
	if c.MaxHostsDown <= 0 {
		c.MaxHostsDown = c.Hosts / 4
		if c.MaxHostsDown < 1 {
			c.MaxHostsDown = 1
		}
	}
	if c.CrashesPerWindow <= 0 {
		c.CrashesPerWindow = 1
	}
	if c.SpikeHosts <= 0 {
		c.SpikeHosts = 1
	}
	if c.OpFailures <= 0 {
		c.OpFailures = 1
	}
	return c
}

// Schedule is a generated fault timeline.
type Schedule struct {
	Cfg    Config
	Faults []Fault

	byWindow map[int][]Fault
}

// NewSchedule builds a schedule from hand-authored faults (tests, replayed
// incidents). Generate is the usual entry point.
func NewSchedule(cfg Config, faults []Fault) *Schedule {
	s := &Schedule{Cfg: cfg.withDefaults(), Faults: faults}
	s.byWindow = make(map[int][]Fault)
	for _, f := range faults {
		s.byWindow[f.Window] = append(s.byWindow[f.Window], f)
	}
	return s
}

// Generate derives the fault schedule from cfg.Seed. The draw order is fixed
// (host failure, crashes, spike, observability gap, op fault — window by
// window), so two schedules from the same Config are identical.
func Generate(cfg Config) (*Schedule, error) {
	cfg = cfg.withDefaults()
	if cfg.Windows <= 0 {
		return nil, fmt.Errorf("chaos: need at least one window, got %d", cfg.Windows)
	}
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("chaos: need at least one host, got %d", cfg.Hosts)
	}
	mss := append([]string(nil), cfg.Microservices...)
	sort.Strings(mss)

	rng := stats.NewRNG(cfg.Seed)
	s := &Schedule{Cfg: cfg}
	downUntil := make(map[int]int) // host -> first window it is up again
	for w := 0; w < cfg.Windows; w++ {
		nDown := 0
		for _, until := range downUntil {
			if until > w {
				nDown++
			}
		}
		if rng.Float64() < cfg.PHostFail {
			h := rng.Intn(cfg.Hosts)
			if downUntil[h] <= w && nDown < cfg.MaxHostsDown {
				// Detection at w+1, recovery DownWindows later.
				downUntil[h] = w + 1 + cfg.DownWindows
				s.Faults = append(s.Faults, Fault{
					Window: w, Kind: KindHostFail, Host: h,
					AtFrac:      0.2 + 0.6*rng.Float64(),
					DownWindows: cfg.DownWindows,
				})
			}
		}
		for i := 0; i < cfg.CrashesPerWindow; i++ {
			if rng.Float64() >= cfg.PCrash || len(mss) == 0 {
				continue
			}
			f := Fault{
				Window: w, Kind: KindContainerCrash,
				Microservice: mss[rng.Intn(len(mss))],
				Index:        rng.Intn(8),
				AtFrac:       0.1 + 0.7*rng.Float64(),
			}
			if rng.Float64() < 0.5 {
				f.RecoverFrac = f.AtFrac + (0.95-f.AtFrac)*rng.Float64()
			}
			s.Faults = append(s.Faults, f)
		}
		if rng.Float64() < cfg.PSpike {
			for i := 0; i < cfg.SpikeHosts; i++ {
				s.Faults = append(s.Faults, Fault{
					Window: w, Kind: KindLatencySpike,
					Host:     rng.Intn(cfg.Hosts),
					Severity: cfg.Severity,
				})
			}
		}
		if rng.Float64() < cfg.PObsGap {
			s.Faults = append(s.Faults, Fault{Window: w, Kind: KindObsGap})
		}
		if rng.Float64() < cfg.POpFail {
			op := "plan"
			if rng.Intn(2) == 1 {
				op = "apply"
			}
			s.Faults = append(s.Faults, Fault{
				Window: w, Kind: KindOpFault,
				Op: op, Count: 1 + rng.Intn(cfg.OpFailures),
			})
		}
	}
	s.byWindow = make(map[int][]Fault)
	for _, f := range s.Faults {
		s.byWindow[f.Window] = append(s.byWindow[f.Window], f)
	}
	return s, nil
}

// ByWindow returns the faults scheduled in window w, in generation order.
func (s *Schedule) ByWindow(w int) []Fault { return s.byWindow[w] }

// Summary renders window w's faults as a compact deterministic token list
// ("-" for a quiet window), suitable for experiment tables.
func (s *Schedule) Summary(w int) string {
	fs := s.byWindow[w]
	if len(fs) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(fs))
	for _, f := range fs {
		switch f.Kind {
		case KindHostFail:
			parts = append(parts, fmt.Sprintf("host%d↓", f.Host))
		case KindContainerCrash:
			parts = append(parts, fmt.Sprintf("crash(%s)", f.Microservice))
		case KindLatencySpike:
			parts = append(parts, fmt.Sprintf("spike(h%d)", f.Host))
		case KindObsGap:
			parts = append(parts, "obs-gap")
		case KindOpFault:
			parts = append(parts, fmt.Sprintf("%s×%d", f.Op, f.Count))
		}
	}
	return strings.Join(parts, " ")
}

// String renders the whole schedule, one line per window with faults.
func (s *Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos schedule: seed=%d windows=%d hosts=%d faults=%d\n",
		s.Cfg.Seed, s.Cfg.Windows, s.Cfg.Hosts, len(s.Faults))
	for w := 0; w < s.Cfg.Windows; w++ {
		if len(s.byWindow[w]) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  w%-3d %s\n", w, s.Summary(w))
	}
	return sb.String()
}
