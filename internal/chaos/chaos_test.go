package chaos

import (
	"errors"
	"math"
	"strings"
	"testing"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/kube"
	"erms/internal/profiling"
	"erms/internal/sim"
	"erms/internal/workload"
)

func stdConfig(seed uint64) Config {
	return Default(seed, 24, 1.5, 12, []string{"frontend", "search", "geo"})
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(stdConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(stdConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a, b)
	}
	if len(a.Faults) == 0 {
		t.Fatal("standard schedule generated no faults")
	}
	c, err := Generate(stdConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateRespectsMaxHostsDown(t *testing.T) {
	cfg := stdConfig(3)
	cfg.PHostFail = 1 // try to fail a host every window
	cfg.Hosts = 4     // MaxHostsDown defaults to 1
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	downUntil := map[int]int{}
	for _, f := range s.Faults {
		if f.Kind != KindHostFail {
			continue
		}
		n := 0
		for _, until := range downUntil {
			if until > f.Window {
				n++
			}
		}
		if n >= 1 {
			t.Fatalf("window %d: host %d failed while %d hosts already down", f.Window, f.Host, n)
		}
		downUntil[f.Host] = f.Window + 1 + f.DownWindows
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Windows: 0, Hosts: 3}); err == nil {
		t.Fatal("expected error for zero windows")
	}
	if _, err := Generate(Config{Windows: 5, Hosts: 0}); err == nil {
		t.Fatal("expected error for zero hosts")
	}
}

// demoOrch builds a 3-host orchestrator with one 3-replica deployment spread
// across hosts.
func demoOrch(t *testing.T) *kube.Orchestrator {
	t.Helper()
	o := kube.New(cluster.New(3, cluster.PaperHost), nil)
	if err := o.Apply(cluster.PaperContainer("A"), 3); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestInjectorHostFailureLifecycle(t *testing.T) {
	sched := NewSchedule(Config{Windows: 6, WindowMin: 1.5, Hosts: 3}, []Fault{
		{Window: 0, Kind: KindHostFail, Host: 1, AtFrac: 0.5, DownWindows: 2},
	})
	o := demoOrch(t)
	inj := NewInjector(sched, o)

	// Window 0: the host dies mid-window inside the simulation only.
	ev, err := inj.BeginWindow(0)
	if err != nil || len(ev.Failed) != 0 {
		t.Fatalf("window 0 should see no control-plane failures: ev=%+v err=%v", ev, err)
	}
	fs := inj.WindowFailures(0)
	if len(fs) != 1 || fs[0].Host != 1 || fs[0].Microservice != "" {
		t.Fatalf("window 0 sim failures = %+v, want one host-scoped failure on host 1", fs)
	}
	if fs[0].AtMin != 0.75 {
		t.Fatalf("failure at %v min, want 0.75", fs[0].AtMin)
	}

	// Window 1: detection. The node is evicted and marked down.
	ev, err = inj.BeginWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Failed) != 1 || ev.Failed[0] != 1 {
		t.Fatalf("window 1 failed hosts = %v, want [1]", ev.Failed)
	}
	if !o.Cluster().Host(1).Down() {
		t.Fatal("host 1 should be down after detection")
	}
	if got := o.Cluster().CountFor("A"); got != 2 {
		t.Fatalf("live containers after eviction = %d, want 2", got)
	}
	if o.Replicas("A") != 3 {
		t.Fatalf("desired replicas changed to %d", o.Replicas("A"))
	}

	// Replacement scheduling converges back to the desired count on the
	// surviving hosts.
	replaced, err := o.Repair()
	if err != nil || replaced != 1 {
		t.Fatalf("Repair = (%d, %v), want (1, nil)", replaced, err)
	}
	if got := o.Cluster().CountFor("A"); got != 3 {
		t.Fatalf("after repair: %d containers, want 3", got)
	}

	// Windows 2: still down. Window 3: recovery.
	if _, err := inj.BeginWindow(2); err != nil {
		t.Fatal(err)
	}
	if !o.Cluster().Host(1).Down() {
		t.Fatal("host 1 should still be down in window 2")
	}
	ev, err = inj.BeginWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Recovered) != 1 || ev.Recovered[0] != 1 {
		t.Fatalf("window 3 recovered = %v, want [1]", ev.Recovered)
	}
	if o.Cluster().Host(1).Down() {
		t.Fatal("host 1 should be up again in window 3")
	}
}

func TestInjectorSpikeAppliesAndLifts(t *testing.T) {
	sev := workload.Interference{CPU: 0.3, Mem: 0.2}
	cfg := Config{Windows: 2, WindowMin: 1.5, Hosts: 3}
	sched := NewSchedule(cfg, []Fault{
		{Window: 0, Kind: KindLatencySpike, Host: 0, Severity: sev},
	})
	o := demoOrch(t)
	base := workload.Interference{CPU: 0.1, Mem: 0.1}
	if err := o.Cluster().SetBackground(0, base); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(sched, o)
	ev, err := inj.BeginWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Spiked) != 1 || ev.Spiked[0] != 0 {
		t.Fatalf("spiked = %v, want [0]", ev.Spiked)
	}
	got := o.Cluster().Host(0).Background
	if got.CPU != base.CPU+sev.CPU || got.Mem != base.Mem+sev.Mem {
		t.Fatalf("spiked background = %+v", got)
	}
	if err := inj.EndWindow(0); err != nil {
		t.Fatal(err)
	}
	if got := o.Cluster().Host(0).Background; got != base {
		t.Fatalf("background not restored: %+v", got)
	}
}

func TestInjectorOpErrorAndObsGap(t *testing.T) {
	sched := NewSchedule(Config{Windows: 3, WindowMin: 1.5, Hosts: 2}, []Fault{
		{Window: 1, Kind: KindOpFault, Op: "plan", Count: 2},
		{Window: 1, Kind: KindObsGap},
		{Window: 2, Kind: KindContainerCrash, Microservice: "A", Index: 0, AtFrac: 0.5, RecoverFrac: 0.8},
	})
	inj := NewInjector(sched, demoOrch(t))

	if err := inj.OpError(1, "plan", 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("attempt 0 = %v, want injected fault", err)
	}
	if err := inj.OpError(1, "plan", 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("attempt 1 = %v, want injected fault", err)
	}
	if err := inj.OpError(1, "plan", 2); err != nil {
		t.Fatalf("attempt 2 = %v, want nil (fault is transient)", err)
	}
	if err := inj.OpError(1, "apply", 0); err != nil {
		t.Fatalf("apply should not fault: %v", err)
	}
	if err := inj.OpError(0, "plan", 0); err != nil {
		t.Fatalf("window 0 should not fault: %v", err)
	}

	if !inj.ObservabilityGap(1) || inj.ObservabilityGap(0) {
		t.Fatal("obs gap should hit exactly window 1")
	}

	fs := inj.WindowFailures(2)
	if len(fs) != 1 || fs[0].Microservice != "A" {
		t.Fatalf("window 2 failures = %+v", fs)
	}
	if math.Abs(fs[0].AtMin-0.75) > 1e-9 || math.Abs(fs[0].RecoverMin-1.2) > 1e-9 {
		t.Fatalf("crash times = (%v, %v), want (0.75, 1.2)", fs[0].AtMin, fs[0].RecoverMin)
	}
}

// TestProfilerToleratesObservabilityGaps runs a simulation with dropped
// metric minutes and checks the profiler still fits a model from the
// surviving samples — the control plane degrades, it does not crash.
func TestProfilerToleratesObservabilityGaps(t *testing.T) {
	cl := cluster.New(4, cluster.PaperHost)
	for i := 0; i < 4; i++ {
		if _, err := cl.Place(cluster.PaperContainer("A"), i); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := sim.NewRuntime(sim.Config{
		Seed:        11,
		Cluster:     cl,
		Profiles:    map[string]sim.ServiceProfile{"A": {BaseMs: 2, CV: 0.5}},
		Graphs:      []*graph.Graph{graph.New("svc", "A")},
		Patterns:    map[string]workload.Pattern{"svc": workload.Static{Rate: 1200}},
		DurationMin: 14,
		WarmupMin:   1,
		DropMinutes: []int{2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	for _, m := range res.Samples {
		if m.Minute == 2 || m.Minute == 3 {
			t.Fatalf("dropped minute %d still recorded", m.Minute)
		}
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples survived the gap")
	}
	models, failed := profiling.FitAll(profiling.FromMinuteSamples(res.Samples), profiling.FitConfig{})
	if len(failed) != 0 {
		t.Fatalf("profiler failed to fit %v despite surviving samples", failed)
	}
	if _, ok := models["A"]; !ok {
		t.Fatal("no model fitted for A")
	}
}

func TestScheduleSummaryStable(t *testing.T) {
	s, err := Generate(stdConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s.String(), "chaos schedule: seed=7 windows=24 hosts=12") {
		t.Fatalf("unexpected header: %q", s.String())
	}
	for w := 0; w < s.Cfg.Windows; w++ {
		if s.Summary(w) == "" {
			t.Fatalf("empty summary for window %d", w)
		}
	}
}
