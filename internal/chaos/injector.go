package chaos

import (
	"fmt"
	"sort"

	"erms/internal/kube"
	"erms/internal/obs"
	"erms/internal/sim"
	"erms/internal/workload"
)

// ErrInjected is the sentinel wrapped by every injected control-plane fault.
var ErrInjected = fmt.Errorf("chaos: injected control-plane fault")

// Injector enacts a Schedule against a kube orchestrator, window by window,
// and implements the control loop's ChaosHook so the same schedule drives
// substrate faults (host deaths, crashes, spikes) and control-plane faults
// (op errors, observability gaps).
//
// The host-failure timeline models detection lag: a host scheduled to fail
// in window w loses its capacity mid-window inside the simulation
// (WindowFailures), but the control plane only learns of the dead node at
// the next BeginWindow, where FailNode evicts the lost containers and marks
// the node down. RecoverNode follows DownWindows windows later.
//
// The per-window protocol is:
//
//	inj.BeginWindow(w)   // detect last window's host deaths, recoveries, spikes
//	rec.Step(rates, ...) // the control loop (repairs, plans, applies, measures)
//	inj.EndWindow(w)     // lift this window's interference spikes
type Injector struct {
	sched *Schedule
	orch  *kube.Orchestrator

	failAt    map[int][]int // window -> host IDs the control plane detects as dead
	recoverAt map[int][]int // window -> host IDs that come back

	// saved holds pre-spike background levels for the current window.
	saved map[int]workload.Interference

	// rec, when set, counts every enacted fault under erms.self.chaos_* so
	// the control plane can report the chaos it actually survived (nil-safe:
	// a nil recorder is a no-op).
	rec *obs.Recorder
}

// SetRecorder attaches the self-observability recorder (nil detaches).
func (inj *Injector) SetRecorder(r *obs.Recorder) { inj.rec = r }

// NewInjector binds a schedule to an orchestrator.
func NewInjector(s *Schedule, orch *kube.Orchestrator) *Injector {
	inj := &Injector{
		sched:     s,
		orch:      orch,
		failAt:    make(map[int][]int),
		recoverAt: make(map[int][]int),
		saved:     make(map[int]workload.Interference),
	}
	for _, f := range s.Faults {
		if f.Kind != KindHostFail {
			continue
		}
		inj.failAt[f.Window+1] = append(inj.failAt[f.Window+1], f.Host)
		inj.recoverAt[f.Window+1+f.DownWindows] = append(inj.recoverAt[f.Window+1+f.DownWindows], f.Host)
	}
	return inj
}

// WindowEvents summarizes what BeginWindow enacted.
type WindowEvents struct {
	Recovered []int // hosts brought back up
	Failed    []int // hosts detected dead (containers evicted)
	Spiked    []int // hosts with an interference spike this window
}

// BeginWindow enacts the control-plane-visible faults for window w: node
// recoveries due this window, detection of hosts that died during window
// w-1, and this window's interference spikes. Call before the control
// loop's Step.
func (inj *Injector) BeginWindow(w int) (WindowEvents, error) {
	var ev WindowEvents
	for _, h := range sortedInts(inj.recoverAt[w]) {
		if err := inj.orch.RecoverNode(h); err != nil {
			return ev, fmt.Errorf("chaos: recovering host %d: %w", h, err)
		}
		ev.Recovered = append(ev.Recovered, h)
	}
	for _, h := range sortedInts(inj.failAt[w]) {
		if err := inj.orch.FailNode(h); err != nil {
			return ev, fmt.Errorf("chaos: failing host %d: %w", h, err)
		}
		ev.Failed = append(ev.Failed, h)
	}
	cl := inj.orch.Cluster()
	for _, f := range inj.sched.ByWindow(w) {
		if f.Kind != KindLatencySpike {
			continue
		}
		h := cl.Host(f.Host)
		if h == nil || h.Down() {
			continue
		}
		if _, dup := inj.saved[f.Host]; !dup {
			inj.saved[f.Host] = h.Background
		}
		if err := cl.SetBackground(f.Host, h.Background.Add(f.Severity)); err != nil {
			return ev, err
		}
		ev.Spiked = append(ev.Spiked, f.Host)
	}
	ev.Spiked = sortedInts(ev.Spiked)
	inj.rec.Add(obs.CtrChaosHostsRecovered, float64(len(ev.Recovered)))
	inj.rec.Add(obs.CtrChaosHostsFailed, float64(len(ev.Failed)))
	inj.rec.Add(obs.CtrChaosSpikes, float64(len(ev.Spiked)))
	return ev, nil
}

// EndWindow lifts the interference spikes applied in BeginWindow. Call after
// the control loop's Step.
func (inj *Injector) EndWindow(w int) error {
	cl := inj.orch.Cluster()
	for _, h := range sortedInts(keysOf(inj.saved)) {
		if err := cl.SetBackground(h, inj.saved[h]); err != nil {
			return err
		}
	}
	inj.saved = make(map[int]workload.Interference)
	return nil
}

// OpError implements ChaosHook: a scheduled op fault fails the first Count
// attempts of the named operation in its window.
func (inj *Injector) OpError(window int, op string, attempt int) error {
	for _, f := range inj.sched.ByWindow(window) {
		if f.Kind == KindOpFault && f.Op == op && attempt < f.Count {
			inj.rec.Inc(obs.CtrChaosOpFaults)
			return fmt.Errorf("%w: %s attempt %d of window %d", ErrInjected, op, attempt, window)
		}
	}
	return nil
}

// WindowFailures implements ChaosHook: the in-simulation outages for window
// w. Container crashes become per-container failures; a host scheduled to
// die this window becomes a host-scoped failure at its mid-window instant
// (the control plane reacts only at the next BeginWindow — detection lag).
func (inj *Injector) WindowFailures(window int) []sim.Failure {
	wm := inj.sched.Cfg.WindowMin
	var out []sim.Failure
	for _, f := range inj.sched.ByWindow(window) {
		switch f.Kind {
		case KindContainerCrash:
			// The schedule draws an abstract index; wrap it onto the live
			// replica set so a crash always lands regardless of deployment
			// size (a zero-replica microservice has nothing to crash).
			idx := f.Index
			if n := inj.orch.Cluster().CountFor(f.Microservice); n > 0 {
				idx = f.Index % n
			}
			inj.rec.Inc(obs.CtrChaosCrashes)
			out = append(out, sim.Failure{
				Microservice: f.Microservice,
				Index:        idx,
				AtMin:        f.AtFrac * wm,
				RecoverMin:   f.RecoverFrac * wm,
			})
		case KindHostFail:
			out = append(out, sim.Failure{
				Host:  f.Host,
				AtMin: f.AtFrac * wm,
			})
		}
	}
	return out
}

// ObservabilityGap implements ChaosHook.
func (inj *Injector) ObservabilityGap(window int) bool {
	for _, f := range inj.sched.ByWindow(window) {
		if f.Kind == KindObsGap {
			inj.rec.Inc(obs.CtrChaosObsGaps)
			return true
		}
	}
	return false
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func keysOf(m map[int]workload.Interference) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
