// Package baselines implements the three comparison systems of §6.1 —
// GrandSLAm, Rhythm, and Firm — against the same latency models and graphs
// Erms uses, so that evaluation differences isolate the target-computation
// policy:
//
//   - GrandSLAm splits the SLA proportionally to each microservice's mean
//     latency, independent of workload and interference.
//   - Rhythm splits it proportionally to a contribution score: the
//     normalized product of mean latency, latency variance, and the
//     correlation between microservice latency and end-to-end latency.
//   - Firm localizes the critical microservice on the critical path and
//     tunes only it, iteratively (a deterministic stand-in for its
//     reinforcement-learning loop).
package baselines

import (
	"errors"
	"fmt"
	"math"

	"erms/internal/graph"
	"erms/internal/parallel"
	"erms/internal/profiling"
	"erms/internal/scaling"
	"erms/internal/sortutil"
	"erms/internal/workload"
)

// MSStats are the latency statistics across profiled workloads that
// GrandSLAm and Rhythm consume (they ignore the workload-dependence Erms
// models, which is the paper's core criticism).
type MSStats struct {
	MeanMs  float64 // mean microservice latency
	VarMs   float64 // variance of microservice latency across workloads
	CorrE2E float64 // correlation between microservice and end-to-end latency
}

// Input is the planning input for one service under a baseline.
type Input struct {
	Graph     *graph.Graph
	SLA       workload.SLA
	Models    map[string]profiling.Model
	Shares    map[string]float64
	Workloads map[string]float64
	Stats     map[string]MSStats
	CPUUtil   float64
	MemUtil   float64
}

func (in *Input) validate() error {
	if in.Graph == nil {
		return errors.New("baselines: nil graph")
	}
	if err := in.Graph.Validate(); err != nil {
		return err
	}
	if err := in.SLA.Validate(); err != nil {
		return err
	}
	for _, ms := range in.Graph.Microservices() {
		if _, ok := in.Models[ms]; !ok {
			return fmt.Errorf("baselines: no model for %s", ms)
		}
		if in.Shares[ms] <= 0 || in.Workloads[ms] <= 0 {
			return fmt.Errorf("baselines: missing share/workload for %s", ms)
		}
	}
	return nil
}

// Autoscaler plans container counts for one service.
type Autoscaler interface {
	Name() string
	Plan(in Input) (*scaling.Allocation, error)
}

// sizeForTarget converts a latency target into a container count using the
// microservice's model, choosing the interval consistent with the target.
// Targets at or below the attainable floor are clamped by capping the
// per-container workload at 5% of the knee (a 20x headroom deployment) —
// mirroring how a real operator saturates a hopeless sub-SLA with massive
// over-provisioning rather than failing.
func sizeForTarget(m profiling.Model, gamma, target, cpu, mem float64) float64 {
	knee := m.Knee(cpu, mem)
	aHi, bHi := m.Params(true, cpu, mem)
	kneeLatency := aHi*knee + bHi
	a, b := aHi, bHi
	limit := knee * scaling.DomainCapRatio
	if target < kneeLatency {
		a, b = m.Params(false, cpu, mem)
		limit = knee
	}
	if target <= b {
		// Unattainable target: saturate with a 10x over-provision relative
		// to the knee-optimal count, as a real operator would.
		return gamma / (knee * 0.1)
	}
	n := a * gamma / (target - b)
	// Same validity-domain clamp as Erms' planner: never run a container
	// past its interval's profiled range.
	if minN := gamma / limit; n < minN {
		n = minN
	}
	return n
}

// finalize assembles a scaling.Allocation from per-microservice targets.
func finalize(in Input, name string, targets map[string]float64) *scaling.Allocation {
	alloc := &scaling.Allocation{
		Service:       in.Graph.Service,
		Targets:       targets,
		ContainersRaw: make(map[string]float64),
		Containers:    make(map[string]int),
		UsedHigh:      make(map[string]bool),
	}
	// Sorted iteration keeps the usage float sum bit-stable run to run.
	for _, ms := range sortutil.Keys(targets) {
		t := targets[ms]
		m := in.Models[ms]
		raw := sizeForTarget(m, in.Workloads[ms], t, in.CPUUtil, in.MemUtil)
		alloc.ContainersRaw[ms] = raw
		n := int(math.Ceil(raw - 1e-9))
		if n < 1 {
			n = 1
		}
		alloc.Containers[ms] = n
		alloc.ResourceUsage += raw * in.Shares[ms]
		knee := m.Knee(in.CPUUtil, in.MemUtil)
		aHi, bHi := m.Params(true, in.CPUUtil, in.MemUtil)
		alloc.UsedHigh[ms] = t >= aHi*knee+bHi
	}
	_ = name
	return alloc
}

// proportionalTargets splits the SLA proportionally to a per-microservice
// weight, normalized so that the weighted length of the heaviest path equals
// the SLA: target_i = SLA · w_i / maxPath(Σ w). Any root-to-leaf path then
// satisfies Σ targets ≤ SLA.
func proportionalTargets(g *graph.Graph, sla float64, weight map[string]float64) map[string]float64 {
	pathWeight := g.EndToEnd(func(n *graph.Node) float64 { return weight[n.Microservice] })
	targets := make(map[string]float64, len(weight))
	for _, ms := range g.Microservices() {
		w := weight[ms]
		if pathWeight <= 0 || w <= 0 {
			targets[ms] = sla / float64(g.Len())
			continue
		}
		targets[ms] = sla * w / pathWeight
	}
	return targets
}

// GrandSLAm allocates latency targets proportional to mean microservice
// latency [22].
type GrandSLAm struct{}

// Name implements Autoscaler.
func (GrandSLAm) Name() string { return "grandslam" }

// Plan implements Autoscaler.
func (GrandSLAm) Plan(in Input) (*scaling.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	weight := make(map[string]float64)
	for _, ms := range in.Graph.Microservices() {
		st, ok := in.Stats[ms]
		if !ok || st.MeanMs <= 0 {
			return nil, fmt.Errorf("baselines: grandslam needs mean latency for %s", ms)
		}
		weight[ms] = st.MeanMs
	}
	return finalize(in, "grandslam", proportionalTargets(in.Graph, in.SLA.Threshold, weight)), nil
}

// Rhythm allocates latency targets proportional to the contribution score
// mean × variance × |correlation| (normalized) [45].
type Rhythm struct{}

// Name implements Autoscaler.
func (Rhythm) Name() string { return "rhythm" }

// Plan implements Autoscaler.
func (Rhythm) Plan(in Input) (*scaling.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	weight := make(map[string]float64)
	var maxW float64
	for _, ms := range in.Graph.Microservices() {
		st, ok := in.Stats[ms]
		if !ok {
			return nil, fmt.Errorf("baselines: rhythm needs stats for %s", ms)
		}
		// Geometric combination of the three normalized factors; the raw
		// product would span many orders of magnitude across heterogeneous
		// microservices and starve the low-variance ones entirely.
		w := math.Cbrt(st.MeanMs * st.VarMs * math.Abs(st.CorrE2E))
		weight[ms] = w
		if w > maxW {
			maxW = w
		}
	}
	if maxW > 0 {
		for ms := range weight {
			w := weight[ms] / maxW // normalized contribution
			if w < 0.05 {
				w = 0.05
			}
			weight[ms] = w
		}
	}
	return finalize(in, "rhythm", proportionalTargets(in.Graph, in.SLA.Threshold, weight)), nil
}

// Firm starts from a capacity-minimal deployment and repeatedly scales out
// the critical microservice — the node on the critical path with the
// largest modeled latency — until the modeled end-to-end latency meets the
// SLA [35]. MaxIters bounds the loop (default 10000).
type Firm struct {
	MaxIters int
}

// Name implements Autoscaler.
func (Firm) Name() string { return "firm" }

// Plan implements Autoscaler.
func (f Firm) Plan(in Input) (*scaling.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	maxIters := f.MaxIters
	if maxIters <= 0 {
		maxIters = 10000
	}
	containers := make(map[string]int)
	for _, ms := range in.Graph.Microservices() {
		knee := in.Models[ms].Knee(in.CPUUtil, in.MemUtil)
		n := int(math.Ceil(in.Workloads[ms] / knee))
		if n < 1 {
			n = 1
		}
		containers[ms] = n
	}
	lat := func(n *graph.Node) float64 {
		ms := n.Microservice
		per := in.Workloads[ms] / float64(containers[ms])
		return in.Models[ms].Predict(per, in.CPUUtil, in.MemUtil)
	}
	// floorOf is the best latency more containers can buy (the model
	// intercept); improvable reports whether scaling out still helps.
	floorOf := func(ms string) float64 {
		_, b := in.Models[ms].Params(false, in.CPUUtil, in.MemUtil)
		return b
	}
	for iter := 0; iter < maxIters; iter++ {
		if in.Graph.EndToEnd(lat) <= in.SLA.Threshold {
			break
		}
		// Critical microservice: the largest *improvable* latency among
		// critical-path nodes. A node already at its floor cannot be helped
		// by more containers and must not be bumped forever.
		var critical string
		var worst float64
		for _, n := range in.Graph.CriticalNodes(lat) {
			ms := n.Microservice
			l := lat(n)
			if l <= floorOf(ms)*1.02 {
				continue
			}
			if l-floorOf(ms) > worst {
				worst, critical = l-floorOf(ms), ms
			}
		}
		if critical == "" {
			break // nothing improvable: the SLA is floor-bound
		}
		// Firm's action space scales the bottleneck in coarse steps.
		step := containers[critical] / 10
		if step < 1 {
			step = 1
		}
		containers[critical] += step
	}
	alloc := &scaling.Allocation{
		Service:       in.Graph.Service,
		Targets:       make(map[string]float64),
		ContainersRaw: make(map[string]float64),
		Containers:    containers,
		UsedHigh:      make(map[string]bool),
	}
	for _, ms := range sortutil.Keys(containers) {
		n := containers[ms]
		per := in.Workloads[ms] / float64(n)
		alloc.Targets[ms] = in.Models[ms].Predict(per, in.CPUUtil, in.MemUtil)
		alloc.ContainersRaw[ms] = float64(n)
		alloc.ResourceUsage += float64(n) * in.Shares[ms]
		alloc.UsedHigh[ms] = per > in.Models[ms].Knee(in.CPUUtil, in.MemUtil)
	}
	return alloc, nil
}

// PlanServices plans every service independently under the given baseline —
// no cross-service coordination — using FCFS aggregate workloads at shared
// microservices and deploying the max container requirement per shared
// microservice (equivalently, its minimum latency target: the
// "straightforward solution" of §2.3).
func PlanServices(scaler Autoscaler, inputs map[string]Input, loads map[string]map[string]float64, shared []string) (map[string]*scaling.Allocation, map[string]int, error) {
	if len(inputs) == 0 {
		return nil, nil, errors.New("baselines: no services")
	}
	fcfs := aggregateShared(shared, loads)
	perService := make(map[string]*scaling.Allocation, len(inputs))
	merged := make(map[string]int)
	sharedSet := make(map[string]bool, len(shared))
	for _, ms := range shared {
		sharedSet[ms] = true
	}
	// Services size independently under a baseline autoscaler, so they fan
	// out like Erms' per-service decomposition; the merge folds allocations
	// back in sorted service order.
	svcs := sortutil.Keys(inputs)
	allocs, err := parallel.Map(len(svcs), func(i int) (*scaling.Allocation, error) {
		svc := svcs[i]
		in := inputs[svc]
		l, ok := fcfs[svc]
		if !ok {
			return nil, fmt.Errorf("baselines: no loads for %s", svc)
		}
		in.Workloads = l
		alloc, err := scaler.Plan(in)
		if err != nil {
			return nil, fmt.Errorf("baselines: %s/%s: %w", scaler.Name(), svc, err)
		}
		return alloc, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, svc := range svcs {
		alloc := allocs[i]
		perService[svc] = alloc
		for ms, n := range alloc.Containers {
			if sharedSet[ms] {
				if n > merged[ms] {
					merged[ms] = n
				}
			} else {
				merged[ms] += n
			}
		}
	}
	return perService, merged, nil
}

func aggregateShared(shared []string, loads map[string]map[string]float64) map[string]map[string]float64 {
	sharedSet := make(map[string]bool, len(shared))
	for _, ms := range shared {
		sharedSet[ms] = true
	}
	// Fold contributions in sorted service order so totals are bit-stable.
	totals := make(map[string]float64)
	for _, svc := range sortutil.Keys(loads) {
		for ms, g := range loads[svc] {
			if sharedSet[ms] {
				totals[ms] += g
			}
		}
	}
	out := make(map[string]map[string]float64, len(loads))
	for svc, byMS := range loads {
		m := make(map[string]float64, len(byMS))
		for ms, g := range byMS {
			if sharedSet[ms] {
				m[ms] = totals[ms]
			} else {
				m[ms] = g
			}
		}
		out[svc] = m
	}
	return out
}

// StatsFromSamples derives the MSStats GrandSLAm and Rhythm need from
// profiling samples plus a per-sample end-to-end latency estimate. e2e[i]
// corresponds to samples[i]; when e2e is nil the correlation defaults to 1.
func StatsFromSamples(samples map[string][]profiling.Sample, e2e map[string][]float64) map[string]MSStats {
	out := make(map[string]MSStats, len(samples))
	for ms, ss := range samples {
		if len(ss) == 0 {
			continue
		}
		lat := make([]float64, len(ss))
		for i, s := range ss {
			lat[i] = s.TailMs
		}
		st := MSStats{MeanMs: mean(lat), VarMs: variance(lat), CorrE2E: 1}
		if es, ok := e2e[ms]; ok && len(es) == len(lat) {
			if c := correlation(lat, es); !math.IsNaN(c) {
				st.CorrE2E = c
			}
		}
		out[ms] = st
	}
	return out
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func variance(xs []float64) float64 {
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

func correlation(xs, ys []float64) float64 {
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
