package baselines

import (
	"math"
	"testing"

	"erms/internal/graph"
	"erms/internal/profiling"
	"erms/internal/scaling"
	"erms/internal/workload"
)

// constModel is a single-interval model for tests.
type constModel struct {
	a, b, knee float64
}

func (m constModel) Knee(_, _ float64) float64                        { return m.knee }
func (m constModel) Params(bool, float64, float64) (float64, float64) { return m.a, m.b }
func (m constModel) Predict(w, _, _ float64) float64                  { return m.a*w + m.b }

// upChain builds the Fig. 4 scenario: U (workload-sensitive) then P (not).
func upChain(sla float64, rate float64) Input {
	g := graph.New("svc", "U")
	g.AddStage(g.Root, "P")
	return Input{
		Graph: g,
		SLA:   workload.P95SLA("svc", sla),
		Models: map[string]profiling.Model{
			"U": constModel{a: 0.01, b: 2, knee: 400000},
			"P": constModel{a: 0.001, b: 2, knee: 800000},
		},
		Shares:    map[string]float64{"U": 0.0002, "P": 0.0002},
		Workloads: map[string]float64{"U": rate, "P": rate},
		Stats: map[string]MSStats{
			// Mean latencies are similar at the profiled operating point —
			// precisely why mean-based splits mislead.
			"U": {MeanMs: 6, VarMs: 9, CorrE2E: 0.9},
			"P": {MeanMs: 5, VarMs: 1, CorrE2E: 0.6},
		},
	}
}

func TestGrandSLAmTargetsProportionalToMean(t *testing.T) {
	in := upChain(100, 10000)
	alloc, err := GrandSLAm{}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	// target(U)/target(P) = mean(U)/mean(P) = 6/5.
	ratio := alloc.Targets["U"] / alloc.Targets["P"]
	if math.Abs(ratio-1.2) > 1e-9 {
		t.Fatalf("target ratio = %v, want 1.2", ratio)
	}
	// Path sum equals SLA.
	if math.Abs(alloc.Targets["U"]+alloc.Targets["P"]-100) > 1e-9 {
		t.Fatalf("targets sum = %v", alloc.Targets["U"]+alloc.Targets["P"])
	}
}

func TestRhythmUsesContribution(t *testing.T) {
	in := upChain(100, 10000)
	alloc, err := Rhythm{}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	// Contribution(U) = cbrt(6*9*0.9) = cbrt(48.6), contribution(P) =
	// cbrt(5*1*0.6) = cbrt(3): U gets the larger share.
	ratio := alloc.Targets["U"] / alloc.Targets["P"]
	want := math.Cbrt(48.6) / math.Cbrt(3)
	if math.Abs(ratio-want) > 1e-6 {
		t.Fatalf("rhythm ratio = %v, want %v", ratio, want)
	}
}

func TestFirmMeetsSLAByIteration(t *testing.T) {
	in := upChain(60, 20000)
	alloc, err := Firm{}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	lat := func(n *graph.Node) float64 {
		ms := n.Microservice
		per := in.Workloads[ms] / float64(alloc.Containers[ms])
		return in.Models[ms].Predict(per, 0, 0)
	}
	if e2e := in.Graph.EndToEnd(lat); e2e > 60 {
		t.Fatalf("firm end-to-end %v exceeds SLA", e2e)
	}
}

func TestErmsBeatsBaselinesOnSensitiveChain(t *testing.T) {
	// The Fig. 4 claim: with one workload-sensitive microservice, Erms'
	// optimal split uses fewer resources than mean-based splits at the same
	// modeled SLA.
	in := upChain(100, 30000)
	ermsIn := scaling.Input{
		Graph:     in.Graph,
		SLA:       in.SLA,
		Models:    in.Models,
		Shares:    in.Shares,
		Workloads: in.Workloads,
	}
	erms, err := scaling.Plan(ermsIn)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := GrandSLAm{}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Rhythm{}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if erms.ResourceUsage >= gs.ResourceUsage {
		t.Fatalf("erms %v >= grandslam %v", erms.ResourceUsage, gs.ResourceUsage)
	}
	if erms.ResourceUsage >= rh.ResourceUsage {
		t.Fatalf("erms %v >= rhythm %v", erms.ResourceUsage, rh.ResourceUsage)
	}
	// And Erms gives the sensitive microservice the HIGHER target (Fig. 4a).
	if erms.Targets["U"] <= erms.Targets["P"] {
		t.Fatalf("erms targets: U=%v P=%v", erms.Targets["U"], erms.Targets["P"])
	}
}

func TestSizeForTargetClampsImpossibleTargets(t *testing.T) {
	m := constModel{a: 0.001, b: 5, knee: 1000}
	// Target below the intercept: clamp to the 10%-of-knee cap.
	n := sizeForTarget(m, 10000, 1, 0, 0)
	want := 10000 / (1000 * 0.1)
	if math.Abs(n-want) > 1e-9 {
		t.Fatalf("clamped n = %v, want %v", n, want)
	}
}

func TestPlanValidation(t *testing.T) {
	in := upChain(100, 1000)
	delete(in.Stats, "U")
	if _, err := (GrandSLAm{}).Plan(in); err == nil {
		t.Fatal("grandslam accepted missing stats")
	}
	if _, err := (Rhythm{}).Plan(in); err == nil {
		t.Fatal("rhythm accepted missing stats")
	}
	in2 := upChain(100, 1000)
	delete(in2.Models, "P")
	for _, s := range []Autoscaler{GrandSLAm{}, Rhythm{}, Firm{}} {
		if _, err := s.Plan(in2); err == nil {
			t.Fatalf("%s accepted missing model", s.Name())
		}
	}
}

func TestPlanServicesSharedMax(t *testing.T) {
	mkIn := func(svc, own string) Input {
		g := graph.New(svc, own)
		g.AddStage(g.Root, "P")
		return Input{
			Graph: g,
			SLA:   workload.P95SLA(svc, 100),
			Models: map[string]profiling.Model{
				own: constModel{a: 0.002, b: 2, knee: 400000},
				"P": constModel{a: 0.001, b: 1, knee: 800000},
			},
			Shares:    map[string]float64{own: 0.0002, "P": 0.0002},
			Workloads: map[string]float64{},
			Stats: map[string]MSStats{
				own: {MeanMs: 5, VarMs: 2, CorrE2E: 0.8},
				"P": {MeanMs: 3, VarMs: 1, CorrE2E: 0.5},
			},
		}
	}
	inputs := map[string]Input{
		"svc1": mkIn("svc1", "U"),
		"svc2": mkIn("svc2", "H"),
	}
	loads := map[string]map[string]float64{
		"svc1": {"U": 10000, "P": 10000},
		"svc2": {"H": 5000, "P": 5000},
	}
	per, merged, err := PlanServices(GrandSLAm{}, inputs, loads, []string{"P"})
	if err != nil {
		t.Fatal(err)
	}
	// Both services see the aggregate 15000 at P.
	maxP := 0
	for _, alloc := range per {
		if alloc.Containers["P"] > maxP {
			maxP = alloc.Containers["P"]
		}
	}
	if merged["P"] != maxP {
		t.Fatalf("merged P = %d, want max %d", merged["P"], maxP)
	}
	if merged["U"] != per["svc1"].Containers["U"] {
		t.Fatal("private microservice merge wrong")
	}
	if _, _, err := PlanServices(GrandSLAm{}, nil, nil, nil); err == nil {
		t.Fatal("empty inputs accepted")
	}
}

func TestStatsFromSamples(t *testing.T) {
	samples := map[string][]profiling.Sample{
		"a": {{TailMs: 2}, {TailMs: 4}, {TailMs: 6}},
	}
	e2e := map[string][]float64{"a": {10, 20, 30}}
	st := StatsFromSamples(samples, e2e)
	if math.Abs(st["a"].MeanMs-4) > 1e-9 {
		t.Fatalf("mean = %v", st["a"].MeanMs)
	}
	if math.Abs(st["a"].CorrE2E-1) > 1e-9 {
		t.Fatalf("corr = %v", st["a"].CorrE2E)
	}
	// Without e2e series, correlation defaults to 1.
	st2 := StatsFromSamples(samples, nil)
	if st2["a"].CorrE2E != 1 {
		t.Fatalf("default corr = %v", st2["a"].CorrE2E)
	}
}

func TestFirmOverprovisionsVsErmsUnderHighLoad(t *testing.T) {
	// Fig. 11: Firm's coarse bottleneck-chasing needs more containers than
	// Erms' global optimum, especially at high workload.
	in := upChain(60, 50000)
	firm, err := Firm{}.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	erms, err := scaling.Plan(scaling.Input{
		Graph: in.Graph, SLA: in.SLA, Models: in.Models,
		Shares: in.Shares, Workloads: in.Workloads,
	})
	if err != nil {
		t.Fatal(err)
	}
	if firm.TotalContainers() < erms.TotalContainers() {
		t.Fatalf("firm %d < erms %d containers", firm.TotalContainers(), erms.TotalContainers())
	}
}
