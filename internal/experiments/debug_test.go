package experiments

import (
	"fmt"
	"sort"
	"testing"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/kube"
	"erms/internal/provision"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

// simSettingDebug mirrors simSetting but logs minute aggregates and host
// placement.
func simSettingDebug(t *testing.T, p planner, s staticSetting, durationMin float64, seed uint64) (float64, float64, error) {
	models := modelsFor(s.app, defaultInterference())
	floor := appSLAFloor(s.app, models, staticBackground.CPU, staticBackground.Mem)
	slaMs := floor * s.slaMult
	pc := newContext(s.app, uniformRates(s.app, s.rate), slaMs, staticBackground.CPU, staticBackground.Mem)
	res, err := p.run(pc)
	if err != nil {
		return 0, 0, err
	}
	cl := cluster.New(20, cluster.PaperHost)
	for _, h := range cl.Hosts() {
		if h.ID%2 == 0 {
			cl.SetBackground(h.ID, workload.Interference{CPU: 0.55, Mem: 0.55})
		} else {
			cl.SetBackground(h.ID, workload.Interference{CPU: 0.15, Mem: 0.15})
		}
	}
	var sched kube.Scheduler = kube.BlindSpread{}
	if p.name == "erms" {
		sched = &provision.InterferenceAware{Groups: 4}
	}
	orch := kube.New(cl, sched)
	mss := make([]string, 0, len(res.merged))
	for ms := range res.merged {
		mss = append(mss, ms)
	}
	sort.Strings(mss)
	for _, ms := range mss {
		if perr := orch.Apply(s.app.Containers[ms], res.merged[ms]); perr != nil {
			return 0, 0, perr
		}
	}
	for _, h := range cl.Hosts() {
		t.Logf("host %2d bg=(%.2f,%.2f) containers=%d", h.ID, h.Background.CPU, h.Background.Mem, len(h.Containers()))
	}
	patterns := make(map[string]workload.Pattern)
	slas := make(map[string]workload.SLA)
	for _, g := range s.app.Graphs {
		patterns[g.Service] = workload.Static{Rate: s.rate}
		slas[g.Service] = workload.P95SLA(g.Service, slaMs)
	}
	rt, rerr := sim.NewRuntime(sim.Config{
		Seed: seed, Cluster: cl, Interference: defaultInterference(),
		Profiles: s.app.Profiles, Graphs: s.app.Graphs, Patterns: patterns,
		SLAs: slas, DurationMin: durationMin + 0.5, WarmupMin: 0.5,
	})
	if rerr != nil {
		return 0, 0, rerr
	}
	out := rt.Run()
	for _, m := range out.Samples {
		if m.Minute == 1 {
			t.Logf("ms %-22s perC=%8.0f tail=%9.1f cpu=%.2f mem=%.2f n=%d",
				m.Microservice, m.PerContainerCalls, m.TailMs, m.CPUUtil, m.MemUtil, m.Containers)
		}
	}
	var v, tl stats.Moments
	for svc, sr := range out.PerService {
		t.Logf("svc %-12s P95=%9.1f viol=%.3f", svc, sr.P95(), sr.ViolationRate())
		v.Add(sr.ViolationRate())
		tl.Add(sr.P95() / slaMs)
	}
	return v.Mean(), tl.Mean(), nil
}

// TestDebugFig12Erms prints the per-microservice allocation versus offered
// load for the setting where Fig. 12 showed anomalies. Run with -v.
func TestDebugFig12Erms(t *testing.T) {
	if testing.Short() {
		t.Skip("debug helper")
	}
	app := apps.HotelReservation()
	models := modelsFor(app, defaultInterference())
	floor := appSLAFloor(app, models, staticBackground.CPU, staticBackground.Mem)
	pc := newContext(app, uniformRates(app, 40_000), floor*3.0, staticBackground.CPU, staticBackground.Mem)
	res, err := ermsPlanner("erms", 0).run(pc) // SchemePriority == 0
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sla=%.1f floor=%.1f", floor*3.0, floor)
	total := make(map[string]float64)
	for _, byMS := range pc.loads {
		for ms, g := range byMS {
			total[ms] += g
		}
	}
	for ms, n := range res.merged {
		m := models[ms]
		knee := m.Knee(pc.cpu, pc.mem)
		sat := knee / 0.75
		perC := total[ms] / float64(n)
		t.Logf("%-22s n=%3d load=%8.0f perC=%8.0f knee=%8.0f sat=%8.0f rho=%.2f",
			ms, n, total[ms], perC, knee, sat, perC/sat)
	}
	_ = fmt.Sprint
}

// TestDebugFig12Sim reruns the failing simulation and dumps per-microservice
// minute aggregates.
func TestDebugFig12Sim(t *testing.T) {
	if testing.Short() {
		t.Skip("debug helper")
	}
	app := apps.HotelReservation()
	s := staticSetting{app: app, rate: 40_000, slaMult: 3.0, slaLevel: "3x"}
	viol, tail, err := simSettingDebug(t, ermsPlanner("erms", 0), s, 1.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("violations=%.3f tailOverSLA=%.2f", viol, tail)
}
