package experiments

import (
	"strconv"
	"strings"
	"testing"

	"erms/internal/parallel"
)

// TestFaultTablesIdenticalAcrossWorkers extends the determinism contract to
// the chaos experiment: the fault schedule, every injection, and all three
// control loops must produce byte-identical tables at any worker count.
func TestFaultTablesIdenticalAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)

	parallel.SetWorkers(1)
	sequential := renderAll(t, "fig22")
	parallel.SetWorkers(4)
	if got := renderAll(t, "fig22"); got != sequential {
		t.Errorf("fig22 differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			sequential, got)
	}
}

// TestResilientBeatsNaiveUnderFaults is the acceptance criterion of the fault
// model: under the standard chaos schedule the resilient loop's mean SLA
// violation probability must be strictly below the naive loop's.
func TestResilientBeatsNaiveUnderFaults(t *testing.T) {
	tables, err := Run("fig22", true)
	if err != nil {
		t.Fatal(err)
	}
	viol := tables[0]
	col := func(name string) int {
		for i, h := range viol.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q in %v", name, viol.Header)
		return -1
	}
	mean := func(c int) float64 {
		var s float64
		for _, row := range viol.Rows {
			cell := strings.TrimRight(row[c], "*!")
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q: %v", row[c], err)
			}
			s += v
		}
		return s / float64(len(viol.Rows))
	}
	erms, naive := mean(col("erms")), mean(col("erms-naive"))
	if erms >= naive {
		t.Fatalf("resilient erms (%.3f) not strictly below naive (%.3f)", erms, naive)
	}
}
