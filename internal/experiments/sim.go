package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/sim"
	"erms/internal/workload"
)

func init() {
	register("figSim", SimScaleOut)
}

// simScenario builds fresh sim configs for the figSim topology: the
// exact-shape scale app with its sharing-group block structure, two
// containers per microservice round-robin over the hosts, and a uniform
// static rate per service. Every call returns a fresh cluster — simulation
// mutates container usage, so configs are single-use.
type simScenario struct {
	app   *apps.App
	hosts int
	rate  float64
	dur   float64
}

func (s simScenario) config() sim.Config {
	cl := cluster.New(s.hosts, cluster.HostSpec{Cores: 32, MemGB: 64})
	mss := s.app.Microservices() // sorted
	host := 0
	for _, ms := range mss {
		for c := 0; c < 2; c++ {
			if _, err := cl.Place(s.app.Containers[ms], host%s.hosts); err != nil {
				panic(fmt.Sprintf("figSim: place %s: %v", ms, err))
			}
			host++
		}
	}
	patterns := make(map[string]workload.Pattern, len(s.app.Graphs))
	for _, g := range s.app.Graphs {
		patterns[g.Service] = workload.Static{Rate: s.rate}
	}
	return sim.Config{
		Seed:           99,
		Cluster:        cl,
		Interference:   defaultInterference(),
		Profiles:       s.app.Profiles,
		Graphs:         s.app.Graphs,
		Patterns:       patterns,
		SLAs:           s.app.SLAs,
		DurationMin:    s.dur,
		WarmupMin:      0.5,
		NetworkDelayMs: 0.05,
	}
}

// simFingerprint renders a Result's public observable state — per-service
// counts and latency quantiles, minute samples, call rates, engine counters
// — so two runs can be compared for the determinism columns.
func simFingerprint(res *sim.Result) string {
	svcs := make([]string, 0, len(res.PerService))
	for svc := range res.PerService {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	out := ""
	for _, svc := range svcs {
		sr := res.PerService[svc]
		out += fmt.Sprintf("%s %d %d %d %.9f %.9f %.9f\n",
			svc, sr.Count, sr.Violations, sr.Errors, sr.Mean(), sr.P95(), sr.P99())
	}
	for _, s := range res.Samples {
		out += fmt.Sprintf("%+v\n", s)
	}
	out += fmt.Sprintf("%+v %d %d %d\n", res.Engine, res.Partitions,
		res.FluidContainerMinutes, res.ExactContainerMinutes)
	return out
}

// SimScaleOut measures the simulator scale-out layers (ROADMAP item 2): the
// partitioned parallel engine's determinism contract and the hybrid
// fluid/discrete fast path's fidelity and throughput on the shared-pool
// scale topology.
//
// Two tables are emitted. figSim carries only deterministic columns — the
// exact partitioned engine's bit-identity across Partitions settings, the
// hybrid engine's container-minute split, per-service P95 deviation against
// exact, and request conservation — and is pinned byte-identical across
// worker counts by the determinism tests. figSim-time is wall-clock
// (simulated requests per second, hybrid speedup) and excluded from those
// comparisons; BENCH_7.json gates its speedup on the benchmark topology.
func SimScaleOut(quick bool) []*Table {
	services, msPer, degree := 40, 10, 4
	if quick {
		services, msPer, degree = 16, 6, 4
	}
	sc := simScenario{
		app: apps.ScaleTopology(apps.ScaleConfig{
			Seed: 7, Services: services, MicroservicesPerService: msPer, SharingDegree: degree,
		}),
		hosts: 16,
		rate:  2_000,
		dur:   2,
	}

	det := &Table{
		ID:    "figSim",
		Title: "Partitioned parallel simulation + hybrid fluid/discrete fidelity (ROADMAP item 2)",
		Header: []string{"services", "microservices", "partitions",
			"exact: partitions 1 == N", "hybrid fluid share", "P95 dev mean", "P95 dev max",
			"dev <= 30%", "requests conserved"},
	}
	timing := &Table{
		ID:     "figSim-time",
		Title:  "Simulator throughput: serial exact vs partitioned exact vs hybrid (wall-clock)",
		Header: []string{"engine", "wall", "requests/s", "speedup vs serial"},
	}

	timed := func(f func() *sim.Result) (*sim.Result, time.Duration) {
		start := time.Now()
		res := f()
		return res, time.Since(start)
	}
	mustRun := func(opts sim.PartitionOpts) func() *sim.Result {
		return func() *sim.Result {
			res, err := sim.RunPartitioned(sc.config(), opts)
			if err != nil {
				panic(fmt.Sprintf("figSim: %v", err))
			}
			return res
		}
	}

	serial, serialWall := timed(func() *sim.Result {
		rt, err := sim.NewRuntime(sc.config())
		if err != nil {
			panic(fmt.Sprintf("figSim: %v", err))
		}
		return rt.Run()
	})
	exact, exactWall := timed(mustRun(sim.PartitionOpts{Mode: sim.SimExact}))
	exact1 := mustRun(sim.PartitionOpts{Mode: sim.SimExact, Partitions: 1})()
	hybrid, hybridWall := timed(mustRun(sim.PartitionOpts{Mode: sim.SimHybrid}))

	identical := simFingerprint(exact1) == simFingerprint(exact)

	// Fidelity: per-service P95 deviation of hybrid from partitioned exact,
	// and conservation of completed requests.
	var devSum, devMax float64
	conserved := true
	n := 0
	for svc, ex := range exact.PerService {
		hy := hybrid.PerService[svc]
		if hy == nil || hy.Count+hy.Errors != ex.Count+ex.Errors {
			conserved = false
			continue
		}
		if p := ex.P95(); p > 0 {
			d := math.Abs(hy.P95()-p) / p
			devSum += d
			if d > devMax {
				devMax = d
			}
			n++
		}
	}
	devMean := 0.0
	if n > 0 {
		devMean = devSum / float64(n)
	}
	fluidShare := 0.0
	if tot := hybrid.FluidContainerMinutes + hybrid.ExactContainerMinutes; tot > 0 {
		fluidShare = float64(hybrid.FluidContainerMinutes) / float64(tot)
	}

	det.AddRow(
		fmt.Sprintf("%d", services),
		fmt.Sprintf("%d", len(sc.app.Microservices())),
		fmt.Sprintf("%d", exact.Partitions),
		fmt.Sprintf("%v", identical),
		fmt.Sprintf("%.0f%%", 100*fluidShare),
		fmt.Sprintf("%.1f%%", 100*devMean),
		fmt.Sprintf("%.1f%%", 100*devMax),
		fmt.Sprintf("%v", devMax <= 0.30),
		fmt.Sprintf("%v", conserved),
	)

	requests := func(res *sim.Result) (total int) {
		for _, sr := range res.PerService {
			total += sr.Count + sr.Errors
		}
		return total
	}
	addTiming := func(name string, res *sim.Result, wall time.Duration) {
		speedup := float64(serialWall) / float64(wall)
		timing.AddRow(name, fmt.Sprint(wall.Round(time.Millisecond)),
			fmt.Sprintf("%.0f", float64(requests(res))/wall.Seconds()),
			fmt.Sprintf("%.1fx", speedup))
	}
	addTiming("serial exact", serial, serialWall)
	addTiming("partitioned exact", exact, exactWall)
	addTiming("hybrid", hybrid, hybridWall)

	det.AddNote("partitions are service sharing groups; exact mode is bit-identical at any Partitions value and any worker count")
	det.AddNote("P95 dev compares hybrid against partitioned exact per service; requests conserved checks the fluid path drops or duplicates nothing")
	timing.AddNote("BENCH_7.json gates hybrid >= 3x serial-exact requests/s on the benchmark topology (scripts/bench.sh bench7)")
	return []*Table{det, timing}
}
