package experiments

import (
	"fmt"
	"sort"

	"erms/internal/apps"
	"erms/internal/baselines"
	"erms/internal/cluster"
	"erms/internal/kube"
	"erms/internal/multiplex"
	"erms/internal/parallel"
	"erms/internal/provision"
	"erms/internal/scaling"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

func init() {
	register("fig14", Fig14)
	register("fig15", Fig15)
}

// Fig14 isolates the two Online Scaling components (§6.4.1-6.4.2):
// (a) Latency Target Computation alone (Erms with default FCFS at shared
// microservices) against the baselines, and (b) the additional benefit of
// priority scheduling for Erms versus retrofitting it onto GrandSLAm and
// Rhythm.
func Fig14(quick bool) []*Table {
	settings := staticSettings(quick)

	// (a) Erms-LTC (FCFS) vs baselines.
	a := &Table{
		ID:     "fig14a",
		Title:  "Latency Target Computation alone (FCFS at shared microservices): average containers",
		Header: []string{"scheme", "avg containers", "vs erms-ltc"},
	}
	plannersA := []planner{
		ermsPlanner("erms-ltc", multiplex.SchemeFCFS),
		baselinePlanner(baselines.Firm{}),
		baselinePlanner(baselines.GrandSLAm{}),
		baselinePlanner(baselines.Rhythm{}),
	}
	avg := map[string]*stats.Moments{}
	for _, p := range plannersA {
		avg[p.name] = &stats.Moments{}
	}
	totals, err := parallel.Map(len(settings)*len(plannersA), func(i int) (int, error) {
		return planSetting(plannersA[i%len(plannersA)], settings[i/len(plannersA)])
	})
	if err != nil {
		panic(err)
	}
	for si := range settings {
		for pi, p := range plannersA {
			avg[p.name].Add(float64(totals[si*len(plannersA)+pi]))
		}
	}
	ltc := avg["erms-ltc"].Mean()
	for _, p := range plannersA {
		a.AddRow(p.name, f1(avg[p.name].Mean()), fmt.Sprintf("%+.1f%%", 100*(avg[p.name].Mean()/ltc-1)))
	}
	a.AddNote("paper: LTC alone beats firm/grandslam/rhythm by 19%%/35.8%%/33.4%%")

	// (b) Priority scheduling benefit per scheme: plan with FCFS aggregate
	// workloads versus with priority-modified workloads.
	b := &Table{
		ID:     "fig14b",
		Title:  "Benefit of priority scheduling: average containers with / without priority",
		Header: []string{"scheme", "without", "with priority", "saving"},
	}
	type schemePair struct {
		name    string
		without func(pc planContext) (*planResult, error)
		with    func(pc planContext) (*planResult, error)
	}
	baselineWithPriority := func(s baselines.Autoscaler) func(pc planContext) (*planResult, error) {
		return func(pc planContext) (*planResult, error) {
			// Retrofit: keep the baseline's target computation, but feed it
			// the priority-modified cumulative workloads. Ranks come from an
			// initial baseline pass on each service's own load — only shared
			// microservices change, which is why the paper finds the benefit
			// marginal for these systems (§6.4.2).
			inputs := make(map[string]baselines.Input, len(pc.app.Graphs))
			for _, g := range pc.app.Graphs {
				inputs[g.Service] = baselines.Input{
					Graph: g, SLA: pc.slas[g.Service], Models: pc.models,
					Shares: pc.shares, Stats: pc.stats, CPUUtil: pc.cpu, MemUtil: pc.mem,
				}
			}
			initial := make(map[string]*scaling.Allocation)
			for svc, in := range inputs {
				in.Workloads = pc.loads[svc]
				alloc, err := s.Plan(in)
				if err != nil {
					return nil, err
				}
				initial[svc] = alloc
			}
			ranks := multiplex.AssignPriorities(initial, pc.app.Shared())
			modified := multiplex.ModifiedWorkloads(ranks, pc.loads)
			merged := make(map[string]int)
			per := make(map[string]*scaling.Allocation)
			sharedSet := map[string]bool{}
			for _, ms := range pc.app.Shared() {
				sharedSet[ms] = true
			}
			for svc, in := range inputs {
				in.Workloads = modified[svc]
				alloc, err := s.Plan(in)
				if err != nil {
					return nil, err
				}
				per[svc] = alloc
				for ms, n := range alloc.Containers {
					if sharedSet[ms] {
						if n > merged[ms] {
							merged[ms] = n
						}
					} else {
						merged[ms] += n
					}
				}
			}
			return &planResult{merged: merged, perService: per}, nil
		}
	}
	pairs := []schemePair{
		{
			name:    "erms",
			without: ermsPlanner("erms-fcfs", multiplex.SchemeFCFS).run,
			with:    ermsPlanner("erms-priority", multiplex.SchemePriority).run,
		},
		{
			name:    "grandslam",
			without: baselinePlanner(baselines.GrandSLAm{}).run,
			with:    baselineWithPriority(baselines.GrandSLAm{}),
		},
		{
			name:    "rhythm",
			without: baselinePlanner(baselines.Rhythm{}).run,
			with:    baselineWithPriority(baselines.Rhythm{}),
		},
	}
	// Each (pair, setting) cell plans twice (without/with priority) and is
	// independent of every other cell.
	type wpair struct{ without, with int }
	cells, err := parallel.Map(len(pairs)*len(settings), func(i int) (wpair, error) {
		pair, s := pairs[i/len(settings)], settings[i%len(settings)]
		models := modelsFor(s.app, defaultInterference())
		floor := appSLAFloor(s.app, models, staticBackground.CPU, staticBackground.Mem)
		pc := newContext(s.app, uniformRates(s.app, s.rate), floor*s.slaMult,
			staticBackground.CPU, staticBackground.Mem)
		r1, err := pair.without(pc)
		if err != nil {
			return wpair{}, err
		}
		r2, err := pair.with(pc)
		if err != nil {
			return wpair{}, err
		}
		return wpair{without: r1.total(), with: r2.total()}, nil
	})
	if err != nil {
		panic(err)
	}
	for qi, pair := range pairs {
		var without, with stats.Moments
		for si := range settings {
			cell := cells[qi*len(settings)+si]
			without.Add(float64(cell.without))
			with.Add(float64(cell.with))
		}
		b.AddRow(pair.name, f1(without.Mean()), f1(with.Mean()),
			fmt.Sprintf("%.1f%%", 100*(1-with.Mean()/without.Mean())))
	}
	b.AddNote("paper: priority scheduling saves ~20%% for Erms but <5%% for GrandSLAm/Rhythm")
	return []*Table{a, b}
}

// Fig15 evaluates interference-aware Resource Provisioning (§6.4.3) against
// the stock Kubernetes scheduler: (a) the container multiple each placement
// policy needs to meet the SLA under injected interference, and (b) tail
// latency at equal resources.
//
// Fig15 deliberately stays sequential: need() walks the container multiples
// with a data-dependent early exit, consuming seeds from a shared counter as
// it goes, so later runs depend on how many earlier runs happened. Fanning
// it out would either change the seed sequence (different numbers) or
// speculatively simulate multiples the search never reaches (wasted work).
func Fig15(quick bool) []*Table {
	app := apps.HotelReservation()
	rate := 120_000.0
	duration := 1.5
	multiples := []float64{1.0, 1.3, 1.6, 2.0}
	levels := []struct {
		name    string
		hot     workload.Interference
		cool    workload.Interference
		slaMult float64
	}{
		{"low-itf", workload.Interference{CPU: 0.35, Mem: 0.35}, workload.Interference{CPU: 0.15, Mem: 0.15}, 2.0},
		{"high-itf", workload.Interference{CPU: 0.65, Mem: 0.65}, workload.Interference{CPU: 0.15, Mem: 0.15}, 2.0},
		{"high-sla", workload.Interference{CPU: 0.55, Mem: 0.55}, workload.Interference{CPU: 0.15, Mem: 0.15}, 1.3},
	}
	if quick {
		levels = levels[1:2]
		multiples = []float64{1.0, 1.5, 2.0}
		duration = 0.8
		rate = 100_000
	}

	deployAndRun := func(sched kube.Scheduler, merged map[string]int, mult float64,
		hot, cool workload.Interference, slaMs float64, seed uint64) (float64, float64) {
		cl := cluster.New(20, cluster.PaperHost)
		for _, h := range cl.Hosts() {
			if h.ID%2 == 0 {
				cl.SetBackground(h.ID, hot)
			} else {
				cl.SetBackground(h.ID, cool)
			}
		}
		orch := kube.New(cl, sched)
		mss := make([]string, 0, len(merged))
		for ms := range merged {
			mss = append(mss, ms)
		}
		sort.Strings(mss)
		for _, ms := range mss {
			n := int(float64(merged[ms])*mult + 0.999)
			if err := orch.Apply(app.Containers[ms], n); err != nil {
				panic(err)
			}
		}
		// Closed-loop clients bound the saturation blow-up of badly placed
		// deployments (the paper's load generator is likewise closed-loop).
		const thinkMs = 1000.0
		users := make(map[string]int)
		slas := make(map[string]workload.SLA)
		for _, g := range app.Graphs {
			users[g.Service] = int(rate * (thinkMs + 30) / 60000)
			slas[g.Service] = workload.P95SLA(g.Service, slaMs)
		}
		rt, err := sim.NewRuntime(sim.Config{
			Seed: seed, Cluster: cl, Interference: defaultInterference(),
			Profiles: app.Profiles, Graphs: app.Graphs,
			ClosedUsers: users, ThinkTimeMs: thinkMs, SLAs: slas,
			DurationMin: duration + 0.4, WarmupMin: 0.4,
		})
		if err != nil {
			panic(err)
		}
		out := rt.Run()
		var viol, tail stats.Moments
		for _, sr := range out.PerService {
			viol.Add(sr.ViolationRate())
			tail.Add(sr.P95() / slaMs)
		}
		return viol.Mean(), tail.Mean()
	}

	a := &Table{
		ID:     "fig15a",
		Title:  "Container multiple needed to reach <5% violations (interference-aware vs K8s default)",
		Header: []string{"scenario", "erms provisioning", "k8s default", "k8s overhead"},
	}
	b := &Table{
		ID:     "fig15b",
		Title:  "P95/SLA at equal (1x) resources",
		Header: []string{"scenario", "erms provisioning", "k8s default", "improvement"},
	}
	seed := uint64(51)
	for _, lvl := range levels {
		avgBg := workload.Interference{
			CPU: (lvl.hot.CPU + lvl.cool.CPU) / 2,
			Mem: (lvl.hot.Mem + lvl.cool.Mem) / 2,
		}
		models := modelsFor(app, defaultInterference())
		floor := appSLAFloor(app, models, avgBg.CPU, avgBg.Mem)
		slaMs := floor * lvl.slaMult
		pc := newContext(app, uniformRates(app, rate), slaMs, avgBg.CPU, avgBg.Mem)
		res, err := ermsPlanner("erms", multiplex.SchemePriority).run(pc)
		if err != nil {
			panic(err)
		}

		need := func(sched kube.Scheduler) float64 {
			for _, m := range multiples {
				viol, _ := deployAndRun(sched, res.merged, m, lvl.hot, lvl.cool, slaMs, seed)
				seed++
				if viol < 0.05 {
					return m
				}
			}
			return multiples[len(multiples)-1] * 1.5 // did not converge in range
		}
		ermsNeed := need(&provision.InterferenceAware{Groups: 4})
		k8sNeed := need(kube.BlindSpread{})
		a.AddRow(lvl.name, fmt.Sprintf("%.1fx", ermsNeed), fmt.Sprintf("%.1fx", k8sNeed),
			fmt.Sprintf("%+.0f%%", 100*(k8sNeed/ermsNeed-1)))

		_, ermsTail := deployAndRun(&provision.InterferenceAware{Groups: 4}, res.merged, 1.0, lvl.hot, lvl.cool, slaMs, seed)
		seed++
		_, k8sTail := deployAndRun(kube.BlindSpread{}, res.merged, 1.0, lvl.hot, lvl.cool, slaMs, seed)
		seed++
		b.AddRow(lvl.name, f2(ermsTail), f2(k8sTail), fmt.Sprintf("%.2fx", k8sTail/ermsTail))
	}
	a.AddNote("paper: K8s needs >50%% more containers; 2x at high SLA")
	b.AddNote("paper: 1.2x average latency improvement; 2.2x under high interference")
	return []*Table{a, b}
}
