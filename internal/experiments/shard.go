package experiments

import (
	"fmt"
	"time"

	"erms/internal/apps"
	"erms/internal/multiplex"
	"erms/internal/scaling"
)

func init() {
	register("figShard", PlannerShard)
}

// PlannerShard measures change-driven incremental planning against the
// monolithic compiled-template planner on the Alibaba-scale topology
// (1000 services × 50 microservices × sharing degree 10; ROADMAP item 1):
// per window, only the sharing groups whose workloads changed replan, and
// the dirty groups fan out across shards.
//
// The dirty fraction sweeps 0% (pure skip), 10% (the headline BENCH_6
// setting) and 50%: before each window the first ⌈frac·services⌉ services
// get a fresh workload multiplier, which — because sharing groups on this
// topology are aligned blocks of SharingDegree consecutive services — makes
// the dirty closure exactly that prefix.
//
// Two tables are emitted. figShard carries only deterministic columns
// (topology shape, skip/dirty counters, bit-identity of the incremental
// planner at shards=1 and shards=4 against the monolithic path) and is
// pinned byte-identical across worker counts by the determinism tests; the
// timing table is wall-clock and excluded from those comparisons.
func PlannerShard(quick bool) []*Table {
	services, msPer, degree, windows := 1000, 50, 10, 5
	if quick {
		services, msPer, degree, windows = 100, 20, 5, 3
	}
	fracs := []float64{0, 0.1, 0.5}

	det := &Table{
		ID:    "figShard",
		Title: "Incremental sharded planning vs monolithic compiled planner (change-driven skip, ROADMAP item 1)",
		Header: []string{"services", "ms/graph", "sharing degree", "dirty frac",
			"windows", "skipped", "replanned", "shards1 == mono", "shards4 == mono"},
	}
	timing := &Table{
		ID:     "figShard-time",
		Title:  "Incremental sharded planning: per-window latency vs monolithic compiled (wall-clock)",
		Header: []string{"services", "dirty frac", "monolithic/window", "incremental/window", "speedup"},
	}

	cfg := apps.ScaleConfig{
		Seed:                    42,
		Services:                services,
		MicroservicesPerService: msPer,
		SharingDegree:           degree,
	}
	inputs, loads, shared := scalePlanContext(cfg)
	base := make(map[string]map[string]float64, len(loads))
	for svc, byMS := range loads {
		m := make(map[string]float64, len(byMS))
		for ms, g := range byMS {
			m[ms] = g
		}
		base[svc] = m
	}
	dirtySvcs := func(frac float64) []string {
		n := int(frac*float64(services) + 0.999999)
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, fmt.Sprintf("scale-svc-%05d", i))
		}
		return out
	}

	for _, frac := range fracs {
		victims := dirtySvcs(frac)
		mutate := func(window int) {
			mult := 1 + 0.01*float64(window+1)
			for _, svc := range victims {
				for ms, g := range base[svc] {
					loads[svc][ms] = g * mult
				}
			}
		}

		cache := scaling.NewTemplateCache()
		p1 := multiplex.NewIncrementalPlanner(nil, 1)
		p4 := multiplex.NewIncrementalPlanner(nil, 4)

		// Cold window warms all three paths; the measured windows that
		// follow are steady state.
		mutate(-1)
		mono, err := multiplex.PlanSchemeCached(multiplex.SchemePriority, inputs, loads, shared, cache)
		if err != nil {
			panic(err)
		}
		g1, err := p1.PlanScheme(multiplex.SchemePriority, inputs, loads, shared)
		if err != nil {
			panic(err)
		}
		g4, err := p4.PlanScheme(multiplex.SchemePriority, inputs, loads, shared)
		if err != nil {
			panic(err)
		}
		identical1 := plansBitIdentical(mono, g1)
		identical4 := plansBitIdentical(mono, g4)
		cold := p4.Stats()

		var monoNs, incrNs time.Duration
		for w := 0; w < windows; w++ {
			mutate(w)
			start := time.Now()
			mono, err = multiplex.PlanSchemeCached(multiplex.SchemePriority, inputs, loads, shared, cache)
			monoNs += time.Since(start)
			if err != nil {
				panic(err)
			}
			g1, err = p1.PlanScheme(multiplex.SchemePriority, inputs, loads, shared)
			if err != nil {
				panic(err)
			}
			start = time.Now()
			g4, err = p4.PlanScheme(multiplex.SchemePriority, inputs, loads, shared)
			incrNs += time.Since(start)
			if err != nil {
				panic(err)
			}
			identical1 = identical1 && plansBitIdentical(mono, g1)
			identical4 = identical4 && plansBitIdentical(mono, g4)
		}
		warm := p4.Stats()

		det.AddRow(
			fmt.Sprintf("%d", services),
			fmt.Sprintf("%d", msPer),
			fmt.Sprintf("%d", degree),
			fmt.Sprintf("%.0f%%", 100*frac),
			fmt.Sprintf("%d", windows),
			fmt.Sprintf("%d", warm.SkippedServices-cold.SkippedServices),
			fmt.Sprintf("%d", warm.DirtyServices-cold.DirtyServices),
			fmt.Sprintf("%v", identical1),
			fmt.Sprintf("%v", identical4),
		)
		timing.AddRow(
			fmt.Sprintf("%d", services),
			fmt.Sprintf("%.0f%%", 100*frac),
			fmt.Sprint(monoNs/time.Duration(windows)),
			fmt.Sprint(incrNs/time.Duration(windows)),
			fmt.Sprintf("%.1fx", float64(monoNs)/float64(incrNs)),
		)

		// Restore the base loads so the next fraction starts clean.
		for svc, byMS := range base {
			for ms, g := range byMS {
				loads[svc][ms] = g
			}
		}
	}
	det.AddNote("skipped/replanned count services over the post-warmup windows; the dirty closure of a workload change is the service's whole sharing group")
	det.AddNote("shardsN == mono is a bit-level comparison of every target, raw count and usage, every window")
	timing.AddNote("BENCH_6.json gates the 10%% row at >=5x on the full 1000x50x10 topology")
	return []*Table{det, timing}
}
