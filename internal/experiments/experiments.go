// Package experiments contains one driver per table/figure of the paper's
// evaluation (§2, §6). Each driver regenerates the corresponding data series
// — who wins, by what factor, where crossovers fall — against this repo's
// simulated substrate. Drivers are shared by the bench harness
// (bench_test.go) and the cmd/experiments CLI.
//
// Every driver accepts a quick flag: quick runs shrink simulation time and
// sweep sizes to keep `go test -bench` snappy; full runs (the CLI default)
// use larger sweeps.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"erms/internal/apps"
	"erms/internal/baselines"
	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/profiling"
)

// Table is one regenerated figure/table: a header, rows, and notes recording
// paper-vs-measured observations.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cols ...string) { t.Rows = append(t.Rows, cols) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FprintMarkdown renders the table as GitHub-flavoured markdown.
func (t *Table) FprintMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

// FprintCSV renders the table as CSV (header row first, notes as comments).
func (t *Table) FprintCSV(w io.Writer) {
	quote := func(cols []string) string {
		out := make([]string, len(cols))
		for i, c := range cols {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		return strings.Join(out, ",")
	}
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	fmt.Fprintln(w, quote(t.Header))
	for _, row := range t.Rows {
		fmt.Fprintln(w, quote(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  note: "+n)
	}
	fmt.Fprintln(w)
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Driver regenerates one figure.
type Driver func(quick bool) []*Table

// registry maps experiment IDs to drivers. Populated in init() functions of
// the per-figure files.
var registry = map[string]Driver{}

// register installs a driver under an ID (panics on duplicates; IDs are
// compile-time constants).
func register(id string, d Driver) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = d
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, quick bool) ([]*Table, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return d(quick), nil
}

// --- shared scaffolding -------------------------------------------------

// paperCluster builds the §6.1 evaluation cluster geometry.
func paperCluster() *cluster.Cluster { return cluster.NewPaperCluster() }

// defaultInterference is the calibrated interference model shared by all
// experiments.
func defaultInterference() cluster.InterferenceModel { return cluster.DefaultInterference }

// modelsFor builds analytic latency models for an application.
func modelsFor(app *apps.App, itf cluster.InterferenceModel) map[string]profiling.Model {
	threads := make(map[string]int, len(app.Containers))
	for ms, spec := range app.Containers {
		threads[ms] = spec.Threads
	}
	return profiling.AnalyticModels(app.Profiles, threads, itf)
}

// sharesFor computes each microservice's dominant resource share on the
// paper cluster geometry.
func sharesFor(app *apps.App, cl *cluster.Cluster) map[string]float64 {
	out := make(map[string]float64, len(app.Containers))
	for ms, spec := range app.Containers {
		out[ms] = cl.DominantShare(spec)
	}
	return out
}

// loadsFor expands per-service request rates into per-microservice call
// rates (accounting for multiplicity).
func loadsFor(app *apps.App, rates map[string]float64) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(app.Graphs))
	for _, g := range app.Graphs {
		m := make(map[string]float64)
		for _, ms := range g.Microservices() {
			m[ms] = rates[g.Service] * float64(len(g.NodesFor(ms)))
		}
		out[g.Service] = m
	}
	return out
}

// slaFloor returns the smallest SLA threshold with positive slack for a
// service: the heaviest-path sum of model intercepts (low interval, at the
// given utilization), which no allocation can beat.
func slaFloor(app *apps.App, svc string, models map[string]profiling.Model, cpu, mem float64) float64 {
	g := app.Graph(svc)
	return g.EndToEnd(func(n *graph.Node) float64 {
		_, b := models[n.Microservice].Params(false, cpu, mem)
		return b
	})
}

// appSLAFloor returns the max slaFloor across an app's services.
func appSLAFloor(app *apps.App, models map[string]profiling.Model, cpu, mem float64) float64 {
	worst := 0.0
	for _, svc := range app.Services() {
		if f := slaFloor(app, svc, models, cpu, mem); f > worst {
			worst = f
		}
	}
	return worst
}

// statsFor derives the mean/variance/correlation statistics GrandSLAm and
// Rhythm consume by sweeping each microservice's model over a workload grid
// at idle interference — the "profiled statistics" of those systems, which
// by design ignore workload- and interference-dependence.
func statsFor(app *apps.App, models map[string]profiling.Model) map[string]baselines.MSStats {
	out := make(map[string]baselines.MSStats, len(app.Profiles))
	for ms := range app.Profiles {
		m := models[ms]
		knee := m.Knee(0, 0)
		var lat []float64
		for _, f := range []float64{0.2, 0.4, 0.6, 0.8, 0.95, 1.05, 1.15} {
			lat = append(lat, m.Predict(knee*f, 0, 0))
		}
		mean, variance := meanVar(lat)
		out[ms] = baselines.MSStats{MeanMs: mean, VarMs: variance, CorrE2E: 0.5 + 0.5*clamp01(mean/10)}
	}
	return out
}

func meanVar(xs []float64) (float64, float64) {
	var s float64
	for _, x := range xs {
		s += x
	}
	m := s / float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return m, v / float64(len(xs))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
