package experiments

import (
	"fmt"
	"strings"

	"erms/internal/core"
	"erms/internal/operator"
	"erms/internal/spec"
)

func init() {
	register("figOperator", FigOperator)
}

// The three operator specs are verbatim copies of the files under
// examples/specs/ — the experiment dogfoods the exact documents users run
// with `ermsctl operate`, and TestOperatorFixturesMatchExamples pins the
// copies to the files.

const operatorBaseSpecYAML = `# Operator bootstrap spec: the declared state the long-running daemon
# converges the fleet onto. Two cohorts drive the Hotel Reservation app with
# the data-plane fault model on, so both guardrails (SLA-violation rate and
# error rate) are live, and a chaos block keeps a seeded fault schedule
# racing every rollout.
#
# Run it with:
#   ermsctl operate -spec examples/specs/operator-base.yaml \
#     -windows 12 -push examples/specs/operator-good.yaml@3
version: 1
name: operator-base
seed: 11

app:
  kind: hotel

run:
  duration_min: 8
  window_min: 1
  hosts: 20

resilience:
  timeout_sla_multiple: 3
  max_attempts: 2
  retry_budget: 0.2

chaos:
  p_host_fail: 0.05
  down_windows: 1
  max_hosts_down: 1
  p_obs_gap: 0.05

cohorts:
  - name: web
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 2400
  - name: booking
    service: reserve
    tier: critical
    arrival:
      kind: static
      rate: 900
`

const operatorGoodSpecYAML = `# A benign push: relaxes the search SLA to 170ms. The canary stays clean,
# the candidate promotes, soaks, and commits.
version: 1
name: operator-good
seed: 11

app:
  kind: hotel
  slas:
    search: 170

run:
  duration_min: 8
  window_min: 1
  hosts: 20

resilience:
  timeout_sla_multiple: 3
  max_attempts: 2
  retry_budget: 0.2

chaos:
  p_host_fail: 0.05
  down_windows: 1
  max_hosts_down: 1
  p_obs_gap: 0.05

cohorts:
  - name: web
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 2400
  - name: booking
    service: reserve
    tier: critical
    arrival:
      kind: static
      rate: 900
`

const operatorBadSpecYAML = `# A bad push: tightens the search SLA ~4x below what the topology can
# deliver under load. The canary breaches and the rollout auto-rolls back;
# the fleet never sees the candidate configuration.
version: 1
name: operator-bad
seed: 11

app:
  kind: hotel
  slas:
    search: 8

run:
  duration_min: 8
  window_min: 1
  hosts: 20

resilience:
  timeout_sla_multiple: 3
  max_attempts: 2
  retry_budget: 0.2

chaos:
  p_host_fail: 0.05
  down_windows: 1
  max_hosts_down: 1
  p_obs_gap: 0.05

cohorts:
  - name: web
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 2400
  - name: booking
    service: reserve
    tier: critical
    arrival:
      kind: static
      rate: 900
`

// operatorScenarioResult is the structured outcome FigOperator renders and
// the CI gates assert on.
type operatorScenarioResult struct {
	history   []operator.WindowStatus
	gens      []operator.Generation
	mismatch  int // fleet windows differing from the good-push-only control
	compared  int
	badRolled bool
	goodGen   operator.Generation
	badGen    operator.Generation
}

// operatorWindows is the experiment horizon: enough for the good push to
// commit (canary 2 + soak 1), the bad push to roll back, and a steady tail.
const operatorWindows = 10

// runOperatorScenario drives two operators through the same window schedule:
// the subject gets the good push at window 2 and the bad push at window 6;
// the control gets only the good push. Every fleet window from the bad push
// onward must be byte-identical between the two — the sandboxed canary's
// zero-fleet-regression contract.
func runOperatorScenario() (*operatorScenarioResult, error) {
	cfg := operator.Config{
		CanaryFraction:   0.25,
		CanaryWindows:    2,
		SoakWindows:      1,
		MaxViolationRate: 0.10,
		MaxErrorRate:     0.10,
	}
	build := func() (*operator.Operator, error) {
		s, err := spec.Parse([]byte(operatorBaseSpecYAML))
		if err != nil {
			return nil, err
		}
		sc, err := s.Compile()
		if err != nil {
			return nil, err
		}
		return operator.New(sc, cfg, nil)
	}
	subject, err := build()
	if err != nil {
		return nil, err
	}
	control, err := build()
	if err != nil {
		return nil, err
	}

	res := &operatorScenarioResult{}
	const goodAt, badAt = 2, 6
	var subjectFleet, controlFleet []*core.WindowReport
	for w := 0; w < operatorWindows; w++ {
		if w == goodAt {
			gGood, err := subject.Push([]byte(operatorGoodSpecYAML), "experiment")
			if err != nil {
				return nil, fmt.Errorf("good push: %w", err)
			}
			res.goodGen = *gGood
			if _, err := control.Push([]byte(operatorGoodSpecYAML), "experiment"); err != nil {
				return nil, fmt.Errorf("control push: %w", err)
			}
		}
		if w == badAt {
			gBad, err := subject.Push([]byte(operatorBadSpecYAML), "experiment")
			if err != nil {
				return nil, fmt.Errorf("bad push: %w", err)
			}
			res.badGen = *gBad
		}
		st, err := subject.Step()
		if err != nil {
			return nil, fmt.Errorf("subject window %d: %w", w, err)
		}
		cst, err := control.Step()
		if err != nil {
			return nil, fmt.Errorf("control window %d: %w", w, err)
		}
		res.history = append(res.history, *st)
		subjectFleet = append(subjectFleet, st.FleetReport())
		controlFleet = append(controlFleet, cst.FleetReport())
	}

	// Zero-fleet-regression check: from the bad push's window to the end,
	// the subject's fleet trajectory must be byte-identical to the control's
	// (which never saw the bad candidate).
	for w := badAt; w < operatorWindows; w++ {
		a, b := *subjectFleet[w], *controlFleet[w]
		a.PhaseMs, b.PhaseMs = nil, nil
		res.compared++
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			res.mismatch++
		}
	}

	gens := subject.Generations()
	res.gens = gens
	for _, g := range gens {
		if g.Name == "operator-bad" && g.Status == operator.StatusRolledBack {
			res.badRolled = true
		}
		if g.Name == "operator-good" {
			res.goodGen = g
		}
		if g.Name == "operator-bad" {
			res.badGen = g
		}
	}
	return res, nil
}

// FigOperator exercises the long-running operator mode end to end on the
// shipped example specs: a benign SLA push canaries, promotes, soaks, and
// commits; a ~4x-tightened SLA push breaches in the sandboxed canary and
// auto-rolls back, leaving every fleet window byte-identical to a
// trajectory that never saw it.
func FigOperator(quick bool) []*Table {
	_ = quick // one horizon: the scenario is already the quick shape
	res, err := runOperatorScenario()
	if err != nil {
		panic(err)
	}

	timeline := &Table{
		ID:     "figOperator",
		Title:  "rollout timeline (examples/specs/operator-*.yaml)",
		Header: []string{"window", "phase", "gen", "cand", "canary viol", "fleet viol", "containers", "event"},
	}
	for _, st := range res.history {
		cand := "-"
		if st.Candidate != 0 {
			cand = fmt.Sprintf("g%d", st.Candidate)
		}
		timeline.AddRow(fmt.Sprint(st.Window), st.Phase, fmt.Sprintf("g%d", st.Committed), cand,
			pct(st.CanaryViolationMax), pct(st.FleetViolationMax),
			fmt.Sprint(st.FleetContainers), st.Event)
	}

	gens := &Table{
		ID:     "figOperator",
		Title:  "generations",
		Header: []string{"gen", "name", "status", "pushed", "decided", "reason"},
	}
	for _, g := range res.gens {
		reason := g.Reason
		if len(reason) > 60 {
			reason = reason[:57] + "..."
		}
		gens.AddRow(fmt.Sprintf("g%d", g.ID), g.Name, string(g.Status),
			fmt.Sprintf("w%d", g.PushedWindow), fmt.Sprintf("w%d", g.DecidedWindow), reason)
	}

	goodOK := "holds"
	if res.goodGen.Status != operator.StatusCommitted {
		goodOK = "VIOLATED"
	}
	badOK := "holds"
	if !res.badRolled {
		badOK = "VIOLATED"
	}
	isoOK := "holds"
	if res.mismatch != 0 {
		isoOK = "VIOLATED"
	}
	gens.AddNote("promotion contract %s: the benign push committed (decided w%d, %d windows after push)",
		goodOK, res.goodGen.DecidedWindow, res.goodGen.DecidedWindow-res.goodGen.PushedWindow)
	gens.AddNote("rollback contract %s: the bad push ended %s (%s)",
		badOK, res.badGen.Status, firstLine(res.badGen.Reason))
	gens.AddNote("isolation contract %s: %d/%d fleet windows from the bad push onward byte-identical to a trajectory that never saw it",
		isoOK, res.compared-res.mismatch, res.compared)
	return []*Table{timeline, gens}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
