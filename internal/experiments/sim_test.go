package experiments

import (
	"strings"
	"testing"

	"erms/internal/parallel"
)

// TestFigSimDeterministicAcrossWorkers pins the figSim contract: the
// deterministic table (partition count, exact bit-identity across
// Partitions settings, hybrid fidelity and conservation columns) is
// byte-identical whether the partition fan-out runs on one worker or four.
// The wall-clock companion table is masked out, like figScale/figShard.
func TestFigSimDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	w1 := renderDeterministic(t, "figSim")
	parallel.SetWorkers(4)
	w4 := renderDeterministic(t, "figSim")
	if w1 != w4 {
		t.Errorf("figSim differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", w1, w4)
	}
	if !strings.Contains(w1, "true") || strings.Contains(w1, "false") {
		t.Errorf("figSim: a determinism or fidelity gate column reads false:\n%s", w1)
	}
}

// TestFigSimStableAcrossRuns guards the hybrid engine against map-iteration
// order leaking into the fidelity columns.
func TestFigSimStableAcrossRuns(t *testing.T) {
	a := renderDeterministic(t, "figSim")
	b := renderDeterministic(t, "figSim")
	if a != b {
		t.Errorf("figSim is not stable across reruns:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
