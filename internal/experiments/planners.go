package experiments

import (
	"erms/internal/apps"
	"erms/internal/baselines"
	"erms/internal/multiplex"
	"erms/internal/profiling"
	"erms/internal/scaling"
	"erms/internal/workload"
)

// planContext packages everything a planner needs for one (app, rates, SLA)
// setting.
type planContext struct {
	app    *apps.App
	models map[string]profiling.Model
	shares map[string]float64
	loads  map[string]map[string]float64
	slas   map[string]workload.SLA
	// cpu/mem are the cluster-average utilizations. Erms feeds them into its
	// interference-aware models; the baselines are interference-unaware by
	// construction (§2.2) and always model an idle host.
	cpu, mem float64
	stats    map[string]baselines.MSStats
}

// planResult is a planner's outcome for one setting.
type planResult struct {
	// merged is the deployed container count per microservice (shared
	// microservices deduplicated per the scheme).
	merged map[string]int
	// perService holds each service's own allocation.
	perService map[string]*scaling.Allocation
}

// total sums merged container counts.
func (r *planResult) total() int {
	t := 0
	for _, n := range r.merged {
		t += n
	}
	return t
}

// planner is one resource-management policy under comparison.
type planner struct {
	name string
	run  func(pc planContext) (*planResult, error)
}

// ermsPlanner plans with Erms' Latency Target Computation under the given
// shared-microservice scheme (priority = full Erms; FCFS = the LTC-only
// ablation of §6.4.1).
func ermsPlanner(name string, scheme multiplex.Scheme) planner {
	return planner{name: name, run: func(pc planContext) (*planResult, error) {
		inputs := make(map[string]scaling.Input, len(pc.app.Graphs))
		for _, g := range pc.app.Graphs {
			inputs[g.Service] = scaling.Input{
				Graph:   g,
				SLA:     pc.slas[g.Service],
				Models:  pc.models,
				Shares:  pc.shares,
				CPUUtil: pc.cpu,
				MemUtil: pc.mem,
			}
		}
		plan, err := multiplex.PlanScheme(scheme, inputs, pc.loads, pc.app.Shared())
		if err != nil {
			return nil, err
		}
		return &planResult{merged: plan.Containers, perService: plan.PerService}, nil
	}}
}

// baselinePlanner plans every service independently under a baseline
// autoscaler (FCFS aggregation at shared microservices, max-merge).
func baselinePlanner(s baselines.Autoscaler) planner {
	return planner{name: s.Name(), run: func(pc planContext) (*planResult, error) {
		inputs := make(map[string]baselines.Input, len(pc.app.Graphs))
		for _, g := range pc.app.Graphs {
			inputs[g.Service] = baselines.Input{
				Graph:  g,
				SLA:    pc.slas[g.Service],
				Models: pc.models,
				Shares: pc.shares,
				Stats:  pc.stats,
				// Baseline profiles were collected under the same colocated
				// conditions, so sizing sees the same average interference;
				// what they lack is the workload- and topology-aware target
				// split (and Fig. 15's interference-aware placement).
				CPUUtil: pc.cpu,
				MemUtil: pc.mem,
			}
		}
		per, merged, err := baselines.PlanServices(s, inputs, pc.loads, pc.app.Shared())
		if err != nil {
			return nil, err
		}
		return &planResult{merged: merged, perService: per}, nil
	}}
}

// defaultPlanners is the §6.3 comparison set.
func defaultPlanners() []planner {
	return []planner{
		ermsPlanner("erms", multiplex.SchemePriority),
		baselinePlanner(baselines.Firm{}),
		baselinePlanner(baselines.GrandSLAm{}),
		baselinePlanner(baselines.Rhythm{}),
	}
}

// newContext assembles a planContext for an app at the given per-service
// request rates, with SLA thresholds scaled to `slaMs` for every service
// (0 keeps the app defaults).
func newContext(app *apps.App, rates map[string]float64, slaMs float64, cpu, mem float64) planContext {
	cl := paperCluster()
	models := modelsFor(app, defaultInterference())
	slas := make(map[string]workload.SLA, len(app.SLAs))
	for svc, s := range app.SLAs {
		if slaMs > 0 {
			s.Threshold = slaMs
		}
		slas[svc] = s
	}
	return planContext{
		app:    app,
		models: models,
		shares: sharesFor(app, cl),
		loads:  loadsFor(app, rates),
		slas:   slas,
		cpu:    cpu,
		mem:    mem,
		stats:  statsFor(app, models),
	}
}

// uniformRates gives every service of the app the same request rate.
func uniformRates(app *apps.App, rate float64) map[string]float64 {
	out := make(map[string]float64, len(app.Graphs))
	for _, g := range app.Graphs {
		out[g.Service] = rate
	}
	return out
}
