package experiments

import (
	"fmt"
	"math"
	"time"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/multiplex"
	"erms/internal/profiling"
	"erms/internal/scaling"
)

func init() {
	register("figScale", PlannerScale)
}

// scalePlanContext assembles the multi-service planner inputs for one
// exact-shape Alibaba-scale topology: per-service graphs over a shared pool,
// analytic models from the synthetic profiles, and workloads proportional to
// each microservice's fan-in.
func scalePlanContext(cfg apps.ScaleConfig) (map[string]scaling.Input, map[string]map[string]float64, []string) {
	app := apps.ScaleTopology(cfg)
	cl := paperCluster()
	threads := make(map[string]int, len(app.Containers))
	shares := make(map[string]float64, len(app.Containers))
	for ms, spec := range app.Containers {
		threads[ms] = spec.Threads
		shares[ms] = cl.DominantShare(spec)
	}
	models := profiling.AnalyticModels(app.Profiles, threads, cluster.DefaultInterference)
	inputs := make(map[string]scaling.Input, len(app.Graphs))
	loads := make(map[string]map[string]float64, len(app.Graphs))
	for _, g := range app.Graphs {
		byMS := make(map[string]float64, g.Len())
		for _, ms := range g.Microservices() {
			byMS[ms] = 10_000 * float64(len(g.NodesFor(ms)))
		}
		inputs[g.Service] = scaling.Input{
			Graph:   g,
			SLA:     app.SLAs[g.Service],
			Models:  models,
			Shares:  shares,
			CPUUtil: 0.35,
			MemUtil: 0.25,
		}
		loads[g.Service] = byMS
	}
	return inputs, loads, app.Shared()
}

// plansBitIdentical reports whether two multi-service plans agree bit for bit
// in every float field and exactly in every count.
func plansBitIdentical(a, b *multiplex.Plan) bool {
	if a.Scheme != b.Scheme ||
		math.Float64bits(a.ResourceUsage) != math.Float64bits(b.ResourceUsage) ||
		len(a.Containers) != len(b.Containers) ||
		len(a.PerService) != len(b.PerService) {
		return false
	}
	for ms, n := range a.Containers {
		if b.Containers[ms] != n {
			return false
		}
	}
	for svc, aa := range a.PerService {
		ba := b.PerService[svc]
		if ba == nil || len(aa.Targets) != len(ba.Targets) {
			return false
		}
		if math.Float64bits(aa.ResourceUsage) != math.Float64bits(ba.ResourceUsage) {
			return false
		}
		for ms, v := range aa.Targets {
			if math.Float64bits(ba.Targets[ms]) != math.Float64bits(v) {
				return false
			}
		}
		for ms, v := range aa.ContainersRaw {
			if math.Float64bits(ba.ContainersRaw[ms]) != math.Float64bits(v) {
				return false
			}
		}
	}
	return true
}

// PlannerScale regenerates the planner-scalability comparison behind the
// paper's 22.5× Latency Target Computation speedup claim (§6.5.2), on this
// repo's exact-shape Alibaba-scale topologies: the naive per-window planner
// revalidates and re-merges every graph, while the compiled-template path
// (scaling.TemplateCache) re-evaluates only the per-window coefficients.
//
// Two tables are emitted. figScale carries only deterministic columns
// (topology shape, plan size, bit-identity of the two paths) and is pinned
// byte-identical across worker counts by the determinism tests; the timing
// table is wall-clock and excluded from those comparisons, like fig17.
func PlannerScale(quick bool) []*Table {
	type setting struct{ services, msPer, degree int }
	sizes := []setting{
		{50, 50, 10},
		{100, 50, 10},
		{200, 50, 10},
		{400, 50, 10},
	}
	if quick {
		sizes = []setting{
			{16, 20, 5},
			{40, 20, 5},
		}
	}
	det := &Table{
		ID:    "figScale",
		Title: "Planner at scale: compiled plan templates vs naive per-window planning (§5.3, §6.5.2)",
		Header: []string{"services", "ms/graph", "sharing degree",
			"microservices", "merged containers", "compiled == naive"},
	}
	timing := &Table{
		ID:     "figScale-time",
		Title:  "Planner at scale: per-window latency, naive vs compiled (wall-clock)",
		Header: []string{"services", "naive/window", "compiled/window", "speedup"},
	}
	reps := 5
	if quick {
		reps = 2
	}
	for _, s := range sizes {
		cfg := apps.ScaleConfig{
			Seed:                    42,
			Services:                s.services,
			MicroservicesPerService: s.msPer,
			SharingDegree:           s.degree,
		}
		inputs, loads, shared := scalePlanContext(cfg)

		naive, err := multiplex.PlanScheme(multiplex.SchemePriority, inputs, loads, shared)
		if err != nil {
			panic(err)
		}
		cache := scaling.NewTemplateCache()
		compiled, err := multiplex.PlanSchemeCached(multiplex.SchemePriority, inputs, loads, shared, cache)
		if err != nil {
			panic(err)
		}
		seen := make(map[string]bool)
		for _, in := range inputs {
			for _, ms := range in.Graph.Microservices() {
				seen[ms] = true
			}
		}
		nMS := len(seen)
		total := 0
		for _, n := range compiled.Containers {
			total += n
		}
		det.AddRow(
			fmt.Sprintf("%d", s.services),
			fmt.Sprintf("%d", s.msPer),
			fmt.Sprintf("%d", s.degree),
			fmt.Sprintf("%d", nMS),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%v", plansBitIdentical(naive, compiled)),
		)

		// Steady state for the compiled path: every window after the first
		// is a template hit. Warm is done (the cold window above compiled);
		// time `reps` windows of each path.
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := multiplex.PlanScheme(multiplex.SchemePriority, inputs, loads, shared); err != nil {
				panic(err)
			}
		}
		naivePer := time.Since(start) / time.Duration(reps)
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := multiplex.PlanSchemeCached(multiplex.SchemePriority, inputs, loads, shared, cache); err != nil {
				panic(err)
			}
		}
		compiledPer := time.Since(start) / time.Duration(reps)
		speedup := float64(naivePer) / float64(compiledPer)
		timing.AddRow(
			fmt.Sprintf("%d", s.services),
			fmt.Sprint(naivePer),
			fmt.Sprint(compiledPer),
			fmt.Sprintf("%.1fx", speedup),
		)
	}
	det.AddNote("compiled == naive is a bit-level comparison of every target, raw count and usage")
	timing.AddNote("paper reports 22.5x for incremental Latency Target Computation at Alibaba scale (§6.5.2)")
	return []*Table{det, timing}
}
