package experiments

import (
	"strconv"
	"strings"
	"testing"

	"erms/internal/parallel"
)

// TestFigDrift is both the determinism gate and the reconvergence assertion
// for the drift experiment: the table must be byte-identical at workers 1
// and 4 (the detector consults no clocks or RNGs), the drift-enabled
// controller must reconverge after the mid-run service-time shift, and the
// frozen controller must not.
func TestFigDrift(t *testing.T) {
	defer parallel.SetWorkers(0)

	parallel.SetWorkers(1)
	tabs, err := Run("figDrift", true)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tab := range tabs {
		tab.Fprint(&sb)
	}
	seq := sb.String()
	parallel.SetWorkers(4)
	if par := renderAll(t, "figDrift"); par != seq {
		t.Errorf("figDrift differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
	tab := tabs[0]
	// Columns: window, req/min, event, frozen viol, frozen containers,
	// drift viol, drift containers, swaps.
	col := func(row []string, i int) float64 {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, i, err)
		}
		return v
	}
	injectAt := -1
	for w, row := range tab.Rows {
		if strings.Contains(row[2], "slower") {
			injectAt = w
			break
		}
	}
	if injectAt <= 0 {
		t.Fatalf("no injection event in table: %+v", tab.Rows)
	}
	swaps := 0.0
	for w, row := range tab.Rows {
		frozen, drifted := col(row, 3), col(row, 5)
		swaps += col(row, 7)
		switch {
		case w < injectAt:
			// Pre-shift both controllers meet SLAs.
			if frozen > 0.05 || drifted > 0.05 {
				t.Errorf("window %d (pre-shift): frozen %.3f drift %.3f, want both <= 0.05", w, frozen, drifted)
			}
		case w == len(tab.Rows)-1:
			// By the last window the drift controller has reconverged and
			// the frozen controller is still violating.
			if drifted > 0.05 {
				t.Errorf("final window: drift controller still violating (%.3f)", drifted)
			}
			if frozen < 0.1 {
				t.Errorf("final window: frozen controller at %.3f — the shift no longer hurts, experiment lost its contrast", frozen)
			}
		}
	}
	if swaps < 1 {
		t.Error("drift controller never swapped a model")
	}
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "drift: reconverges") {
			found = true
		}
		if strings.Contains(n, "drift: never reconverges") {
			t.Errorf("note says drift never reconverged: %s", n)
		}
	}
	if !found {
		t.Errorf("missing reconvergence note: %v", tab.Notes)
	}
}
