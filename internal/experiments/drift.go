package experiments

import (
	"fmt"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/core"
	"erms/internal/drift"
	"erms/internal/kube"
	"erms/internal/parallel"
)

func init() {
	register("figDrift", FigDrift)
}

// driftWindow is one window's outcome for one controller.
type driftWindow struct {
	viol       float64
	containers int
	swaps      int
}

// driftInjectMultiplier is the mid-run service-time shift: the shared
// "profile" microservice's true base latency triples (a dependency upgrade
// gone slow). The simulator sees the new truth immediately; the frozen
// analytic models keep their stale copy. 3x is past what the planner's
// safe-side over-estimation absorbs at the experiment's rates, so the stale
// model visibly violates SLAs.
const driftInjectMultiplier = 3.0

// FigDrift is the online-profiling drift experiment (ROADMAP item 4): the
// Hotel Reservation application runs a steady workload, and a third of the
// way in, the shared "profile" microservice's true service time triples
// behind the models' back. Two identical controllers face the byte-identical
// shift with identical per-window seeds:
//
//   - frozen: the stock controller — models fitted once, never revisited.
//     Its plans keep sizing "profile" for the old capacity, the containers
//     saturate, and the violation probability stays pinned high for the rest
//     of the run;
//   - drift: the same controller with WithDriftDetection. The detector
//     flags the deviation, waits out its hysteresis, re-fits from the live
//     samples, and swaps the model in; the next plan sizes "profile" for
//     the new regime and the violation probability reconverges.
//
// Windows span two whole minutes — live samples are per-minute aggregates
// recorded after warmup, so shorter windows would carry no drift signal at
// all (the frozen and drift controllers would be byte-identical by
// construction, not by merit).
func FigDrift(quick bool) []*Table {
	windows := 9
	baseRate := 14_000.0
	if quick {
		windows = 6
		baseRate = 12_000
	}
	injectAt := windows / 3
	const windowMin, warmupMin = 2.0, 0.5
	simSeed := func(w int) uint64 { return 7700 + 31*uint64(w) }

	driftCfg := drift.Config{Threshold: 0.75, Consecutive: 2}
	runners := []struct {
		name string
		cfg  *drift.Config
	}{
		{"frozen", nil},
		{"drift", &driftCfg},
	}
	// Two independent closed systems: private app copies (each mutates its
	// own profile map at the injection window), private clusters, shared
	// seeds. Fan out per controller; each window loop is stateful.
	series, err := parallel.Map(len(runners), func(i int) ([]driftWindow, error) {
		return runDriftController(runners[i].cfg, windows, injectAt, windowMin, warmupMin, baseRate, simSeed)
	})
	if err != nil {
		panic(err)
	}

	tab := &Table{
		ID:    "figDrift",
		Title: "SLA violation probability around a mid-run 3x service-time shift of shared microservice 'profile'",
		Header: []string{"window", "req/min", "event",
			"frozen viol", "frozen containers", "drift viol", "drift containers", "swaps"},
	}
	for w := 0; w < windows; w++ {
		event := ""
		if w == injectAt {
			event = "profile 3x slower"
		}
		f, d := series[0][w], series[1][w]
		tab.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%.0f", baseRate), event,
			f3(f.viol), fmt.Sprintf("%d", f.containers),
			f3(d.viol), fmt.Sprintf("%d", d.containers), fmt.Sprintf("%d", d.swaps))
	}

	// Reconvergence: the first post-injection window from which the
	// violation probability stays below 5% for the rest of the run.
	reconverge := func(s []driftWindow) int {
		for w := injectAt; w < windows; w++ {
			ok := true
			for v := w; v < windows; v++ {
				if s[v].viol > 0.05 {
					ok = false
					break
				}
			}
			if ok {
				return w
			}
		}
		return -1
	}
	for i, r := range runners {
		if rw := reconverge(series[i]); rw < 0 {
			tab.AddNote("%s: never reconverges after the shift (violation stays > 5%%)", r.name)
		} else {
			tab.AddNote("%s: reconverges at window %d (%d windows after the shift)", r.name, rw, rw-injectAt)
		}
	}
	totalSwaps := 0
	for _, d := range series[1] {
		totalSwaps += d.swaps
	}
	tab.AddNote("drift controller swapped %d model(s); the frozen controller plans against the stale model forever", totalSwaps)
	tab.AddNote("expected: both controllers meet SLAs before the shift; after it the frozen controller keeps sizing 'profile' for the old capacity and stays saturated, while the drift loop detects, re-fits, and reconverges within a few windows")
	return []*Table{tab}
}

// runDriftController drives one controller (drift detection optional)
// through the shift schedule on a private cluster and app copy.
func runDriftController(cfg *drift.Config, windows, injectAt int, windowMin, warmupMin, baseRate float64,
	simSeed func(int) uint64) ([]driftWindow, error) {
	app := apps.HotelReservation()
	orch := kube.New(cluster.New(20, cluster.PaperHost), nil)
	var opts []core.Option
	if cfg != nil {
		opts = append(opts, core.WithDriftDetection(*cfg))
	}
	ctrl, err := core.New(app, orch, opts...)
	if err != nil {
		return nil, err
	}
	ctrl.UseAnalyticModels()
	rec := core.NewReconciler(ctrl)
	rec.WindowMin = windowMin
	rec.WarmupMin = warmupMin

	out := make([]driftWindow, windows)
	for w := 0; w < windows; w++ {
		if w == injectAt {
			p := app.Profiles["profile"]
			p.BaseMs *= driftInjectMultiplier
			app.Profiles["profile"] = p
		}
		rep, err := rec.Step(uniformRates(app, baseRate), simSeed(w))
		if err != nil {
			return nil, fmt.Errorf("drift window %d: %w", w, err)
		}
		out[w] = driftWindow{
			viol:       meanViolation(rep.Violations),
			containers: rep.Containers,
			swaps:      rep.ModelSwaps,
		}
	}
	return out, nil
}
