package experiments

import (
	"fmt"
	"math"
	"sort"

	"erms/internal/apps"
	"erms/internal/baselines"
	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/multiplex"
	"erms/internal/parallel"
	"erms/internal/profiling"
	"erms/internal/scaling"
	"erms/internal/sim"
	"erms/internal/workload"
)

func init() {
	register("fig2", Fig2)
	register("fig3", Fig3)
	register("fig4", Fig4)
	register("fig5", Fig5)
	register("fig8", Fig8)
	register("fig9", Fig9)
}

// Fig2 reproduces the sharing-degree CDF of the Alibaba traces: the fraction
// of microservices shared by more than a given number of online services.
func Fig2(quick bool) []*Table {
	cfg := apps.Fig2Config(1)
	if quick {
		cfg.Services = 300
		cfg.MeanGraphSize = 120
		cfg.PoolSize = 700
	}
	app := apps.Alibaba(cfg)
	deg := app.SharingDegree()
	degrees := make([]float64, 0, len(deg))
	for _, d := range deg {
		degrees = append(degrees, float64(d))
	}
	sort.Float64s(degrees)

	t := &Table{
		ID:     "fig2",
		Title:  "CDF of microservices shared by N online services (Alibaba-shaped topology)",
		Header: []string{"shared by > N services", "fraction of microservices"},
	}
	// Thresholds proportional to the generated service count so the quick
	// mode preserves the shape.
	scale := float64(cfg.Services) / 1000.0
	seen := map[float64]bool{}
	for _, n := range []float64{0, 1, 4, 9, 24, 49, 99, 199, 499} {
		thr := math.Round(n * scale)
		if n > 0 && thr < 1 {
			thr = 1
		}
		if seen[thr] {
			continue
		}
		seen[thr] = true
		over := 0
		for _, d := range degrees {
			if d > thr {
				over++
			}
		}
		t.AddRow(fmt.Sprintf("%.0f", thr), pct(float64(over)/float64(len(degrees))))
	}
	over100 := 0
	thr100 := math.Round(100 * scale)
	for _, d := range degrees {
		if d > thr100 {
			over100++
		}
	}
	t.AddNote("paper: ~40%% of microservices are shared by >100 of 1000+ services")
	t.AddNote("measured: %.1f%% shared by >%d of %d services (scale substitution: synthetic topology)",
		100*float64(over100)/float64(len(degrees)), int(thr100), cfg.Services)
	return []*Table{t}
}

// fig3Conditions are the host states of Fig. 3 (CPU%, Mem%).
var fig3Conditions = []workload.Interference{
	{CPU: 0.10, Mem: 0.10},
	{CPU: 0.47, Mem: 0.35},
	{CPU: 0.27, Mem: 0.62},
}

// fig3Collect runs one microservice at one workload under one host condition
// and returns per-minute profiling samples.
func fig3Collect(rate float64, bg workload.Interference, seed uint64, windowMin float64) []profiling.Sample {
	g := graph.New("svc", "ms")
	cl := cluster.New(1, cluster.PaperHost)
	if _, err := cl.Place(cluster.PaperContainer("ms"), 0); err != nil {
		panic(err)
	}
	cl.SetBackground(0, bg)
	rt, err := sim.NewRuntime(sim.Config{
		Seed:         seed,
		Cluster:      cl,
		Interference: cluster.DefaultInterference,
		Profiles:     map[string]sim.ServiceProfile{"ms": {BaseMs: 20, CV: 0.5}},
		Graphs:       []*graph.Graph{g},
		Patterns:     map[string]workload.Pattern{"svc": workload.Static{Rate: rate}},
		DurationMin:  windowMin + 0.5,
		WarmupMin:    0.5,
	})
	if err != nil {
		panic(err)
	}
	return profiling.FromMinuteSamples(rt.Run().Samples)["ms"]
}

// Fig3 reproduces the P95-latency-vs-workload curves: piece-wise linear with
// an interference-dependent knee and slope, comparing ground truth (T) from
// the simulator against the fitted piece-wise model (F). Each host condition
// is swept over fractions of its own saturation point, as a real profiling
// campaign would (overload produces unbounded latencies, not data points).
func Fig3(quick bool) []*Table {
	fracs := []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.8, 0.88}
	windowMin := 3.0
	if quick {
		fracs = []float64{0.1, 0.4, 0.7, 0.88}
		windowMin = 2
	}
	t := &Table{
		ID:     "fig3",
		Title:  "P95 microservice latency vs per-container workload (T=simulated truth, F=piece-wise fit)",
		Header: []string{"load (frac of sat)"},
	}
	type point struct {
		workload, truth, fitted float64
	}
	type curve struct {
		cond   workload.Interference
		points []point
	}
	ref := profiling.NewAnalytic("ms", sim.ServiceProfile{BaseMs: 20, CV: 0.5}, 4, cluster.DefaultInterference)
	// Every (condition, load-fraction) profiling run is an independent
	// simulation with a seed derived from its grid position (the same
	// 100*(i+1)+fracIdx values the sequential sweep used); the fit consumes
	// the samples merged in grid order.
	collected, err := parallel.Map(len(fig3Conditions)*len(fracs), func(j int) ([]profiling.Sample, error) {
		ci, fi := j/len(fracs), j%len(fracs)
		cond := fig3Conditions[ci]
		sat := ref.Saturation(cond.CPU, cond.Mem)
		seed := uint64(100*(ci+1)) + uint64(fi)
		return fig3Collect(fracs[fi]*sat, cond, seed, windowMin), nil
	})
	if err != nil {
		panic(err)
	}
	var all []profiling.Sample
	curves := make([]*curve, len(fig3Conditions))
	for i, cond := range fig3Conditions {
		t.Header = append(t.Header,
			fmt.Sprintf("T(%.0f%%,%.0f%%)", cond.CPU*100, cond.Mem*100),
			fmt.Sprintf("F(%.0f%%,%.0f%%)", cond.CPU*100, cond.Mem*100))
		c := &curve{cond: cond}
		for fi := range fracs {
			samples := collected[i*len(fracs)+fi]
			if len(samples) == 0 {
				continue
			}
			var w, l float64
			for _, s := range samples {
				w += s.Workload
				l += s.TailMs
			}
			c.points = append(c.points, point{workload: w / float64(len(samples)), truth: l / float64(len(samples))})
			all = append(all, samples...)
		}
		curves[i] = c
	}
	model, err := profiling.Fit("ms", all, profiling.FitConfig{MinBucket: 4})
	if err != nil {
		panic(err)
	}
	for _, c := range curves {
		for pi := range c.points {
			c.points[pi].fitted = model.Predict(c.points[pi].workload, c.cond.CPU, c.cond.Mem)
		}
	}
	for fi, frac := range fracs {
		row := []string{fmt.Sprintf("%.2f", frac)}
		for _, c := range curves {
			if fi < len(c.points) {
				row = append(row, f1(c.points[fi].truth), f1(c.points[fi].fitted))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.AddRow(row...)
	}
	acc := profiling.Evaluate(model, all)
	t.AddNote("fit accuracy over all points: %s (paper: 83-88%%)", pct(acc))
	t.AddNote("same load fraction = fewer absolute req/min on hotter hosts: the knee moves earlier (x-axes differ)")
	t.AddNote("paper: slope past the knee steepens up to 5x under interference")
	return []*Table{t}
}

// fig4App builds the Fig. 4 two-microservice service: userTimeline (U,
// workload-sensitive) calls postStorage (P) sequentially.
func fig4App() *apps.App {
	g := graph.New("read-timeline", "user-timeline")
	g.AddStage(g.Root, "post-storage")
	// Equal base service times: the two microservices look identical to a
	// mean-latency profile. user-timeline's single worker thread makes its
	// latency climb 8x faster in the workload — the sensitivity asymmetry
	// Fig. 4 is about, invisible to mean-based splits.
	profiles := map[string]sim.ServiceProfile{
		"user-timeline": {BaseMs: 1.5, CV: 0.7},
		"post-storage":  {BaseMs: 1.5, CV: 0.5},
	}
	uSpec := cluster.PaperContainer("user-timeline")
	uSpec.Threads = 1
	pSpec := cluster.PaperContainer("post-storage")
	pSpec.Threads = 8
	app := &apps.App{
		Name:     "fig4",
		Graphs:   []*graph.Graph{g},
		Profiles: profiles,
		SLAs:     map[string]workload.SLA{"read-timeline": workload.P95SLA("read-timeline", 100)},
		Containers: map[string]cluster.ContainerSpec{
			"user-timeline": uSpec,
			"post-storage":  pSpec,
		},
	}
	return app
}

// Fig4 reproduces the motivating experiment: latency targets and normalized
// resource usage for the U→P chain under Erms, GrandSLAm, and Rhythm at low
// and high workload.
func Fig4(quick bool) []*Table {
	app := fig4App()
	targets := &Table{
		ID:     "fig4a",
		Title:  "Latency targets for U (user-timeline) and P (post-storage), ms",
		Header: []string{"setting", "scheme", "target U", "target P"},
	}
	usage := &Table{
		ID:     "fig4b",
		Title:  "Total resource usage normalized to Erms (lower is better)",
		Header: []string{"setting", "erms", "grandslam", "rhythm"},
	}
	for _, setting := range []struct {
		name string
		rate float64
	}{{"low-workload", 30_000}, {"high-workload", 120_000}} {
		// SLA 24ms sits inside both microservices' achievable latency bands,
		// so targets (not capacity) drive the allocation; utilization 0 for
		// everyone isolates target computation from interference-awareness.
		pc := newContext(app, uniformRates(app, setting.rate), 24, 0, 0)
		rawUsage := map[string]float64{}
		for _, p := range []planner{
			ermsPlanner("erms", multiplex.SchemePriority),
			baselinePlanner(baselines.GrandSLAm{}),
			baselinePlanner(baselines.Rhythm{}),
		} {
			res, err := p.run(pc)
			if err != nil {
				panic(err)
			}
			alloc := res.perService["read-timeline"]
			targets.AddRow(setting.name, p.name,
				f1(alloc.Targets["user-timeline"]), f1(alloc.Targets["post-storage"]))
			// Raw (fractional) Σ n·R is the Eq. 2 objective the paper
			// compares; integer rounding at container counts this small
			// would hide the differences.
			for _, a := range res.perService {
				rawUsage[p.name] += a.ResourceUsage
			}
		}
		usage.AddRow(setting.name,
			f2(1.0),
			f2(rawUsage["grandslam"]/rawUsage["erms"]),
			f2(rawUsage["rhythm"]/rawUsage["erms"]))
	}
	targets.AddNote("paper: Erms assigns U the higher target since its latency grows faster with workload")
	usage.AddNote("paper: baselines need up to 58%% more (heavy) and 6x (light) containers than Erms")
	return []*Table{targets, usage}
}

// fig5App builds the §2.3 multiplexing scenario: svc1 = userTimeline→postStorage,
// svc2 = homeTimeline→postStorage, with U more sensitive than H.
func fig5App() *apps.App {
	g1 := graph.New("svc1", "user-timeline")
	g1.AddStage(g1.Root, "post-storage")
	g2 := graph.New("svc2", "home-timeline")
	g2.AddStage(g2.Root, "post-storage")
	return &apps.App{
		Name:   "fig5",
		Graphs: []*graph.Graph{g1, g2},
		// Service times at the DeathStarBench read-path scale, so the 300ms
		// SLA of §2.3 genuinely binds for svc1 (whose U is the sensitive
		// microservice) while svc2 has slack — the asymmetry priority
		// scheduling exploits.
		Profiles: map[string]sim.ServiceProfile{
			"user-timeline": {BaseMs: 32, CV: 0.7},
			"home-timeline": {BaseMs: 8, CV: 0.4},
			"post-storage":  {BaseMs: 12, CV: 0.5},
		},
		SLAs: map[string]workload.SLA{
			"svc1": workload.P95SLA("svc1", 300),
			"svc2": workload.P95SLA("svc2", 300),
		},
		Containers: map[string]cluster.ContainerSpec{
			"user-timeline": cluster.PaperContainer("user-timeline"),
			"home-timeline": cluster.PaperContainer("home-timeline"),
			"post-storage":  cluster.PaperContainer("post-storage"),
		},
	}
}

// Fig5 reproduces the §2.3 experiment: CPU cores needed to satisfy both
// 300ms SLAs at 40k req/min per service under FCFS sharing, non-sharing, and
// Erms' priority scheduling — validated end-to-end in the simulator.
func Fig5(quick bool) []*Table {
	app := fig5App()
	rates := uniformRates(app, 40_000)
	duration, warmup := 2.5, 0.5
	if quick {
		duration = 1.5
	}
	t := &Table{
		ID:     "fig5",
		Title:  "Shared-microservice schemes at 40k req/min per service, SLA 300ms (§2.3)",
		Header: []string{"scheme", "CPU cores", "containers", "sim P95 svc1", "sim P95 svc2", "violations"},
	}
	pc := newContext(app, rates, 300, 0.2, 0.2)
	// The three schemes plan and simulate independently (shared seed 5, own
	// cluster each); rows land in scheme order.
	schemes := []multiplex.Scheme{multiplex.SchemeFCFS, multiplex.SchemeNonShared, multiplex.SchemePriority}
	rows, err := parallel.Map(len(schemes), func(si int) ([]string, error) {
		scheme := schemes[si]
		inputs := make(map[string]scaling.Input, len(app.Graphs))
		for _, g := range app.Graphs {
			inputs[g.Service] = scaling.Input{
				Graph: g, SLA: pc.slas[g.Service], Models: pc.models,
				Shares: pc.shares, CPUUtil: pc.cpu, MemUtil: pc.mem,
			}
		}
		plan, err := multiplex.PlanScheme(scheme, inputs, pc.loads, app.Shared())
		if err != nil {
			return nil, err
		}
		cores := 0.0
		for ms, n := range plan.Containers {
			cores += float64(n) * app.Containers[ms].CPU
		}
		// End-to-end validation in the simulator.
		cl := cluster.New(20, cluster.PaperHost)
		for _, h := range cl.Hosts() {
			cl.SetBackground(h.ID, workload.Interference{CPU: 0.2, Mem: 0.2})
		}
		// Sorted placement order: map iteration would randomize container
		// order and, through round-robin routing, the simulated numbers.
		mss := make([]string, 0, len(plan.Containers))
		for ms := range plan.Containers {
			mss = append(mss, ms)
		}
		sort.Strings(mss)
		i := 0
		for _, ms := range mss {
			for k := 0; k < plan.Containers[ms]; k++ {
				if _, err := cl.Place(app.Containers[ms], i%cl.NumHosts()); err != nil {
					return nil, err
				}
				i++
			}
		}
		cfg := sim.Config{
			Seed:         5,
			Cluster:      cl,
			Interference: cluster.DefaultInterference,
			Profiles:     app.Profiles,
			Graphs:       app.Graphs,
			Patterns: map[string]workload.Pattern{
				"svc1": workload.Static{Rate: rates["svc1"]},
				"svc2": workload.Static{Rate: rates["svc2"]},
			},
			SLAs:        map[string]workload.SLA{"svc1": pc.slas["svc1"], "svc2": pc.slas["svc2"]},
			DurationMin: duration + warmup,
			WarmupMin:   warmup,
			Delta:       0.05,
		}
		if scheme == multiplex.SchemePriority {
			cfg.Priorities = plan.Ranks
		}
		rt, err := sim.NewRuntime(cfg)
		if err != nil {
			return nil, err
		}
		res := rt.Run()
		viol := math.Max(res.PerService["svc1"].ViolationRate(), res.PerService["svc2"].ViolationRate())
		return []string{scheme.String(), f1(cores), fmt.Sprintf("%d", plan.TotalContainers()),
			f1(res.PerService["svc1"].P95()), f1(res.PerService["svc2"].P95()), pct(viol)}, nil
	})
	if err != nil {
		panic(err)
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("paper: FCFS 10.5 cores, non-sharing 9, priority 7.5 (priority saves 40%% vs FCFS, 20%% vs non-sharing)")
	t.AddNote("note: non-sharing rows simulate the merged pool; its per-service partitioning is reflected in the plan only")
	return []*Table{t}
}

// Fig8 walks Algorithm 1 on the Fig. 7 example graph: T calls Url and U in
// parallel, then C, and shows the computed latency targets and containers.
func Fig8(bool) []*Table {
	g := graph.New("example", "T")
	g.AddStage(g.Root, "Url", "U")
	g.AddStage(g.Root, "C")
	profiles := map[string]sim.ServiceProfile{
		"T": {BaseMs: 0.5}, "Url": {BaseMs: 3}, "U": {BaseMs: 2}, "C": {BaseMs: 1.5},
	}
	models := profiling.AnalyticModels(profiles, nil, cluster.DefaultInterference)
	cl := cluster.NewPaperCluster()
	shares := map[string]float64{}
	workloads := map[string]float64{}
	for ms := range profiles {
		shares[ms] = cl.DominantShare(cluster.PaperContainer(ms))
		workloads[ms] = 30_000
	}
	in := scaling.Input{
		Graph:     g,
		SLA:       workload.P95SLA("example", 60),
		Models:    models,
		Shares:    shares,
		Workloads: workloads,
		CPUUtil:   0.2, MemUtil: 0.2,
	}
	alloc, err := scaling.Plan(in)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:     "fig8",
		Title:  "Algorithm 1 on the Fig. 7 graph: merge order and latency targets (SLA 60ms)",
		Header: []string{"microservice", "latency target ms", "containers", "interval"},
	}
	for _, ms := range scaling.SortedTargets(alloc) {
		iv := "low"
		if alloc.UsedHigh[ms] {
			iv = "high"
		}
		t.AddRow(ms, f2(alloc.Targets[ms]), fmt.Sprintf("%d", alloc.Containers[ms]), iv)
	}
	var order []string
	for _, tt := range g.TwoTierInvocations() {
		order = append(order, tt.Parent.Microservice)
	}
	t.AddNote("two-tier merge order (deepest first): %v", order)
	t.AddNote("parallel pair {Url,U} receives equal virtual targets; targets along T→{Url|U}→C sum to the SLA")
	if math.Abs(alloc.Targets["Url"]-alloc.Targets["U"]) > 1e-9 {
		t.AddNote("WARNING: parallel targets differ — unexpected")
	}
	return []*Table{t}
}

// Fig9 sweeps the probabilistic-priority parameter δ at a shared
// microservice near saturation and reports the P95 of the high- and
// low-priority services.
func Fig9(quick bool) []*Table {
	deltas := []float64{0, 0.01, 0.05, 0.1, 0.2}
	duration := 2.5
	if quick {
		deltas = []float64{0, 0.05, 0.2}
		duration = 1.5
	}
	t := &Table{
		ID:     "fig9",
		Title:  "Response time vs δ at a shared microservice (P95, ms)",
		Header: []string{"delta", "high-priority P95", "low-priority P95"},
	}
	// One independent simulation per δ (all with seed 77, as before).
	type hilo struct{ hi, lo float64 }
	points, err := parallel.Map(len(deltas), func(i int) (hilo, error) {
		g1 := graph.New("hi", "P")
		g2 := graph.New("lo", "P")
		cl := cluster.New(2, cluster.PaperHost)
		for k := 0; k < 2; k++ {
			if _, err := cl.Place(cluster.PaperContainer("P"), k); err != nil {
				return hilo{}, err
			}
		}
		rt, err := sim.NewRuntime(sim.Config{
			Seed:     77,
			Cluster:  cl,
			Profiles: map[string]sim.ServiceProfile{"P": {BaseMs: 2, CV: 0.5}},
			Graphs:   []*graph.Graph{g1, g2},
			Patterns: map[string]workload.Pattern{
				"hi": workload.Static{Rate: 112_000},
				"lo": workload.Static{Rate: 112_000},
			},
			Priorities:  map[string]map[string]int{"P": {"hi": 0, "lo": 1}},
			Delta:       deltas[i],
			DurationMin: duration + 0.5,
			WarmupMin:   0.5,
		})
		if err != nil {
			return hilo{}, err
		}
		res := rt.Run()
		return hilo{hi: res.PerService["hi"].P95(), lo: res.PerService["lo"].P95()}, nil
	})
	if err != nil {
		panic(err)
	}
	var hi0, lo0 float64
	for i, d := range deltas {
		if i == 0 {
			hi0, lo0 = points[i].hi, points[i].lo
		}
		t.AddRow(f2(d), f1(points[i].hi), f1(points[i].lo))
	}
	t.AddNote("paper: δ 0→0.05 costs high-priority ≈5%% and improves low-priority ≥20%%; baseline at δ=0: hi=%.1f lo=%.1f", hi0, lo0)
	return []*Table{t}
}
