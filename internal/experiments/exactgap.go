package experiments

import (
	"fmt"

	"erms/internal/graph"
	"erms/internal/multiplex"
	"erms/internal/parallel"
	"erms/internal/profiling"
	"erms/internal/scaling"
	"erms/internal/stats"
	"erms/internal/workload"
)

func init() {
	register("fig21", ExactGap)
}

// chainModel is a single-interval latency model for the gap study.
type chainModel struct{ a, b float64 }

func (m chainModel) Knee(_, _ float64) float64                        { return 1e12 }
func (m chainModel) Params(bool, float64, float64) (float64, float64) { return m.a, m.b }
func (m chainModel) Predict(w, _, _ float64) float64                  { return m.a*w + m.b }

// ExactGap measures how close Erms' scalable per-service decomposition
// (§5.3.2: priority ranks + modified workloads + independent Eq. 5 solves)
// comes to the exact optimum of the coupled multiplexing model (Eq. 13-14),
// solved here by dual ascent. The paper argues the decomposition is
// "theoretically grounded yet practically viable" — this experiment
// quantifies the price of that scalability.
func ExactGap(quick bool) []*Table {
	trials := 120
	if quick {
		trials = 60
	}
	t := &Table{
		ID:     "fig21",
		Title:  "Approximation gap: Erms per-service decomposition vs exact Eq. 13-14 optimum",
		Header: []string{"services sharing P", "mean gap", "p95 gap", "max gap"},
	}
	// Instance generation walks the shared RNG in the original (nSvc, trial)
	// order; the decomposed-vs-exact solves are then pure per instance and
	// fan out, with gaps folded back in generation order.
	sizes := []int{2, 3, 4, 6}
	type instance struct {
		inputs map[string]scaling.Input
		loads  map[string]map[string]float64
		shared []string
		prob   *exactProblemBuilder
	}
	r := stats.NewRNG(29)
	instances := make([]instance, 0, len(sizes)*trials)
	for _, nSvc := range sizes {
		for trial := 0; trial < trials; trial++ {
			inputs, loads, shared, prob := randomExactInstance(r, nSvc)
			instances = append(instances, instance{inputs, loads, shared, prob})
		}
	}
	type trialGap struct {
		ok  bool
		gap float64
	}
	gapsFlat, err := parallel.Map(len(instances), func(i int) (trialGap, error) {
		in := instances[i]
		plan, err := multiplex.PlanScheme(multiplex.SchemePriority, in.inputs, in.loads, in.shared)
		if err != nil {
			return trialGap{}, nil
		}
		// The exact model must see the same priority ranks Erms chose.
		fillProblem(in.prob, plan.Ranks, in.loads)
		sol, err := in.prob.Solve(0, 0)
		if err != nil || sol.Usage <= 0 {
			return trialGap{}, nil
		}
		return trialGap{ok: true, gap: plan.ResourceUsage/sol.Usage - 1}, nil
	})
	if err != nil {
		panic(err)
	}
	for si, nSvc := range sizes {
		var gaps []float64
		for trial := 0; trial < trials; trial++ {
			if g := gapsFlat[si*trials+trial]; g.ok {
				gaps = append(gaps, g.gap)
			}
		}
		if len(gaps) == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", nSvc),
			pct(stats.Mean(gaps)), pct(stats.Quantile(gaps, 0.95)), pct(stats.Quantile(gaps, 1)))
	}
	t.AddNote("gap = (decomposed usage / exact optimum) − 1, over %d random shared-chain instances per row", trials)
	t.AddNote("§5.3.2: the exact coupled model is O(n!) in priority orderings and too costly at scale")
	return []*Table{t}
}

// exactInstance bundles one random shared-chain topology.
type exactInstance struct {
	msIndex map[string]int
	a       map[string]float64
	slacks  map[string]float64 // per service
	shares  map[string]float64
	order   []string // service order for the problem rows
}

// randomExactInstance builds nSvc services, each "own-k → P", with random
// single-interval models, and the matching (partially filled) ExactProblem.
func randomExactInstance(r *stats.RNG, nSvc int) (map[string]scaling.Input, map[string]map[string]float64, []string, *exactProblemBuilder) {
	models := map[string]profiling.Model{}
	shares := map[string]float64{}
	aOf := map[string]float64{}
	bOf := map[string]float64{}

	mkMS := func(name string, aLo, aHi float64) {
		a := aLo + (aHi-aLo)*r.Float64()
		b := 0.5 + 2*r.Float64()
		models[name] = chainModel{a: a, b: b}
		shares[name] = 0.0001 + 0.0004*r.Float64()
		aOf[name], bOf[name] = a, b
	}
	mkMS("P", 0.001, 0.006)

	inputs := map[string]scaling.Input{}
	loads := map[string]map[string]float64{}
	builder := &exactProblemBuilder{
		aOf: aOf, bOf: bOf, shares: shares,
		slack: map[string]float64{},
	}
	for s := 0; s < nSvc; s++ {
		svc := fmt.Sprintf("svc%c", 'a'+s)
		own := "own-" + svc
		mkMS(own, 0.0005, 0.012)
		g := graph.New(svc, own)
		g.AddStage(g.Root, "P")
		slack := 30 + 150*r.Float64()
		inputs[svc] = scaling.Input{
			Graph:  g,
			SLA:    workload.P95SLA(svc, slack+bOf[own]+bOf["P"]),
			Models: models,
			Shares: shares,
		}
		rate := 2000 + 40000*r.Float64()
		loads[svc] = map[string]float64{own: rate, "P": rate}
		builder.slack[svc] = slack
		builder.services = append(builder.services, svc)
	}
	return inputs, loads, []string{"P"}, builder
}

// exactProblemBuilder assembles the Eq. 13-14 instance once ranks are known.
type exactProblemBuilder struct {
	services []string
	aOf      map[string]float64
	bOf      map[string]float64
	shares   map[string]float64
	slack    map[string]float64
	problem  *multiplex.ExactProblem
}

// fillProblem builds the A matrix using the cumulative workloads implied by
// the plan's priority ranks at P.
func fillProblem(b *exactProblemBuilder, ranks map[string]map[string]int, loads map[string]map[string]float64) {
	modified := multiplex.ModifiedWorkloads(ranks, loads)
	// Microservice order: each service's own ms, then P last.
	var msNames []string
	for _, svc := range b.services {
		msNames = append(msNames, "own-"+svc)
	}
	msNames = append(msNames, "P")
	idx := map[string]int{}
	for i, ms := range msNames {
		idx[ms] = i
	}
	prob := &multiplex.ExactProblem{
		R:     make([]float64, len(msNames)),
		A:     make([][]float64, len(b.services)),
		Slack: make([]float64, len(b.services)),
	}
	for i, ms := range msNames {
		prob.R[i] = b.shares[ms]
	}
	for k, svc := range b.services {
		prob.A[k] = make([]float64, len(msNames))
		own := "own-" + svc
		prob.A[k][idx[own]] = b.aOf[own] * modified[svc][own]
		prob.A[k][idx["P"]] = b.aOf["P"] * modified[svc]["P"]
		prob.Slack[k] = b.slack[svc]
	}
	b.problem = prob
}

// Solve proxies to the built problem.
func (b *exactProblemBuilder) Solve(maxIters int, tol float64) (*multiplex.ExactSolution, error) {
	return b.problem.Solve(maxIters, tol)
}
