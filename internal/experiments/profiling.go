package experiments

import (
	"fmt"

	"erms/internal/apps"
	"erms/internal/parallel"
	"erms/internal/profiling"
	"erms/internal/stats"
	"erms/internal/workload"
)

func init() {
	register("fig10", Fig10)
}

// sampleGen draws profiling samples for one microservice from its underlying
// (piece-wise, interference-dependent) latency law plus multiplicative
// measurement noise — the stand-in for a day of per-minute production
// samples. The generating law is the analytic curve family, NOT the model
// the fitter assumes verbatim: the generator uses the smooth convex law with
// continuous knees, so the fit has genuine approximation error.
func sampleGen(m *profiling.Analytic, n int, noise float64, seed uint64) []profiling.Sample {
	r := stats.NewRNG(seed)
	levels := workload.InterferenceLevels
	// Samples arrive in hour-long blocks of constant injected interference,
	// cycling twice through the levels over the "day" — matching the
	// paper's hourly iBench schedule. A small time-prefix of the data
	// therefore covers few interference levels, which is exactly what
	// degrades black-box models in Fig. 10b.
	blocks := 2 * len(levels)
	out := make([]profiling.Sample, 0, n)
	for i := 0; i < n; i++ {
		lvl := levels[(i*blocks/n)%len(levels)]
		sat := m.Saturation(lvl.CPU, lvl.Mem)
		// Profile only the stable operating range (the paper's collection
		// keeps services below saturation).
		w := r.Float64() * sat * 0.9
		// Underlying smooth law: L = L0·(1 + (K-1)·ρ/ρknee) below the knee,
		// then convex growth ~1/(1-ρ)-like above, evaluated directly from
		// the queueing-flavored shape rather than the linearized intervals.
		rho := w / sat
		inf := m.Interference.Inflation(lvl.CPU, lvl.Mem)
		// §2.2: interference mainly steepens the slope and pulls the knee
		// earlier; the light-load intercept barely moves. Scale the growth
		// terms fully with inflation but the idle floor only mildly.
		base := 3.0 * m.Profile.BaseMs
		l0 := base * (1 + 0.3*(inf-1))
		var l float64
		if rho <= m.RhoKnee {
			l = l0 + base*inf*(m.KneeFactor-1)*rho/m.RhoKnee
		} else {
			// Post-knee growth is steep but mostly linear in the observed
			// range (Fig. 3), with mild convexity.
			over := (rho - m.RhoKnee) / (1 - m.RhoKnee)
			l = l0 + base*inf*(m.KneeFactor-1)*(1+1.8*over+0.6*over*over)
		}
		l *= 1 + noise*r.NormFloat64()
		if l < 0.05 {
			l = 0.05
		}
		out = append(out, profiling.Sample{Workload: w, TailMs: l, CPUUtil: lvl.CPU, MemUtil: lvl.Mem})
	}
	return out
}

// accuracyRow fits all three model families on train and evaluates on test.
func accuracyRow(train, test []profiling.Sample, seed uint64) (erms, gbdt, nn float64) {
	em, err := profiling.Fit("ms", train, profiling.FitConfig{MinBucket: 5})
	if err == nil {
		erms = profiling.Evaluate(em, test)
	}
	gm, err := profiling.FitGBDTBaseline(train)
	if err == nil {
		gbdt = profiling.EvaluatePredictor(gm, test)
	}
	nm, err := profiling.FitNNBaseline(train, seed)
	if err == nil {
		nn = profiling.EvaluatePredictor(nm, test)
	}
	return
}

// Fig10 reproduces the profiling-accuracy comparison: (a) testing accuracy
// of Erms' piece-wise linear model versus GBDT (XGBoost stand-in) and a
// 64-neuron NN across the benchmark applications and an Alibaba-shaped
// microservice population; (b) accuracy versus training-set fraction.
func Fig10(quick bool) []*Table {
	nSamplesPerMS := 600
	msPerApp := 4
	if quick {
		nSamplesPerMS = 350
		msPerApp = 2
	}

	a := &Table{
		ID:     "fig10a",
		Title:  "Profiling testing accuracy by application (22h-train / 2h-test style split)",
		Header: []string{"application", "erms", "xgboost(gbdt)", "nn-64"},
	}
	appsUnder := []*apps.App{apps.SocialNetwork(), apps.MediaService(), apps.HotelReservation()}
	// Alibaba-shaped population: heterogeneous base times.
	ali := apps.Alibaba(apps.AlibabaConfig{Seed: 9, Services: 10, MeanGraphSize: 10})

	// Each sampled microservice is one independent generate→split→fit job.
	// Seeds are assigned by flat job index (the sequential sweep's seed++
	// advanced once per job: generation used the running seed, the fits the
	// next one), and per-application rows fold results back in job order.
	type accJob struct {
		m     *profiling.Analytic
		noise float64
	}
	var jobs []accJob
	var rowJobs [][]int // job indices per table row
	var rowNames []string
	addBlock := func(name string, app *apps.App, noise float64) {
		mss := app.Microservices()
		var idxs []int
		for i := 0; i < msPerApp && i < len(mss); i++ {
			ms := mss[i*len(mss)/msPerApp]
			jobs = append(jobs, accJob{
				m:     profiling.NewAnalytic(ms, app.Profiles[ms], app.Containers[ms].Threads, defaultInterference()),
				noise: noise,
			})
			idxs = append(idxs, len(jobs)-1)
		}
		rowJobs = append(rowJobs, idxs)
		rowNames = append(rowNames, name)
	}
	for _, app := range appsUnder {
		addBlock(app.Name, app, 0.08)
	}
	addBlock("alibaba(taobao)", ali, 0.10)

	type accOut struct {
		ok      bool
		e, g, n float64
	}
	outs, err := parallel.Map(len(jobs), func(j int) (accOut, error) {
		genSeed := uint64(1) + uint64(j)
		samples := sampleGen(jobs[j].m, nSamplesPerMS, jobs[j].noise, genSeed)
		train, test, err := profiling.Split(samples, 22.0/24)
		if err != nil {
			return accOut{}, nil
		}
		e, g, n := accuracyRow(train, test, genSeed+1)
		return accOut{ok: true, e: e, g: g, n: n}, nil
	})
	if err != nil {
		panic(err)
	}
	for ri, name := range rowNames {
		var accE, accG, accN stats.Moments
		for _, j := range rowJobs[ri] {
			if !outs[j].ok {
				continue
			}
			accE.Add(outs[j].e)
			accG.Add(outs[j].g)
			accN.Add(outs[j].n)
		}
		a.AddRow(name, pct(accE.Mean()), pct(accG.Mean()), pct(accN.Mean()))
	}
	mss := ali.Microservices()
	a.AddNote("paper: all three land in 83-88%%; Erms needs only the slopes/intercepts for scaling")

	b := &Table{
		ID:     "fig10b",
		Title:  "Testing accuracy vs training-set fraction (Taobao-like microservice)",
		Header: []string{"train fraction", "erms", "xgboost(gbdt)", "nn-64"},
	}
	fractions := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	if quick {
		fractions = []float64{0.1, 0.5, 0.9}
	}
	ms := mss[0]
	m := profiling.NewAnalytic(ms, ali.Profiles[ms], ali.Containers[ms].Threads, defaultInterference())
	full := sampleGen(m, nSamplesPerMS*2, 0.10, 777)
	// Fixed held-out tail for every fraction.
	test := full[len(full)*4/5:]
	pool := full[:len(full)*4/5]
	// The fractions share only the read-only pool/test slices and a fixed
	// fit seed, so they fan out.
	type fracOut struct{ e, g, n float64 }
	fouts, err := parallel.Map(len(fractions), func(i int) (fracOut, error) {
		n := int(float64(len(pool)) * fractions[i])
		if n < 12 {
			n = 12
		}
		e, g, nn := accuracyRow(pool[:n], test, 31)
		return fracOut{e: e, g: g, n: nn}, nil
	})
	if err != nil {
		panic(err)
	}
	for i, frac := range fractions {
		b.AddRow(fmt.Sprintf("%.0f%%", frac*100), pct(fouts[i].e), pct(fouts[i].g), pct(fouts[i].n))
	}
	b.AddNote("paper: Erms holds ~81%% at 70%% of the data; the NN collapses as samples shrink")
	return []*Table{a, b}
}
