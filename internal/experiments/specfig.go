package experiments

import (
	"fmt"

	"erms/internal/spec"
	"erms/internal/workload"
)

func init() {
	register("figSpec", FigSpec)
}

// flashcrowdSpecYAML and failoverSpecYAML are verbatim copies of the example
// specs under examples/specs/ — the experiment dogfoods the exact documents
// users run, and TestSpecFixturesMatchExamples pins the copies to the files.
const flashcrowdSpecYAML = `# Flash-crowd spec: four SLO tiers sharing the Hotel Reservation app while
# a 5x crowd slams the search path. Admission control is on, so the
# sheddable and batch cohorts are rejected first and the critical cohort
# keeps its SLA — the per-tier violation table makes the ordering visible.
#
# Run it with:
#   ermsctl run -spec examples/specs/flashcrowd.yaml -timeline timeline.csv
version: 1
name: flashcrowd
seed: 7

app:
  kind: hotel

run:
  duration_min: 9
  warmup_min: 1
  window_min: 3
  hosts: 8            # deliberately tight: the crowd must overload it
  scheme: priority

resilience:
  timeout_sla_multiple: 4
  max_attempts: 2
  retry_budget: 0.1
  shed: true

cohorts:
  - name: checkout
    service: reserve
    tier: critical
    arrival:
      kind: static
      rate: 1500
  - name: browse
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 5000
  - name: prefetch
    service: search
    tier: sheddable
    arrival:
      kind: static
      rate: 5000
  - name: crawler
    service: recommend
    tier: batch
    arrival:
      kind: static
      rate: 3000

phases:
  - name: crowd
    kind: flash_crowd
    start_min: 3
    duration_min: 4
    ramp_min: 1
    factor: 5.0       # everyone piles in, not just one cohort
`

const failoverSpecYAML = `# Regional-failover spec: two regional cohorts drive the same search
# service; mid-run, 80% of the EU region's traffic shifts onto the US cohort
# (same service, but the US cohort's tier and SLA now apply to the shifted
# load), then shifts back. A trailing drain models the EU region going
# offline for maintenance.
#
# Run it with:
#   ermsctl run -spec examples/specs/failover.yaml -timeline timeline.csv
version: 1
name: failover
seed: 11

app:
  kind: hotel

run:
  duration_min: 20
  warmup_min: 1
  window_min: 5
  hosts: 16
  scheme: priority

cohorts:
  - name: eu-search
    service: search
    tier: standard
    arrival:
      kind: diurnal
      base: 90
      peak: 180
      period_min: 20
  - name: us-search
    service: search
    tier: critical
    sla_ms: 200
    arrival:
      kind: static
      rate: 120
  - name: batch-reco
    service: recommend
    tier: batch
    arrival:
      kind: static
      rate: 45

phases:
  - name: eu-outage
    kind: failover
    start_min: 6
    duration_min: 8
    ramp_min: 1
    from: eu-search
    to: us-search
    fraction: 0.8
  - name: eu-maintenance
    kind: drain
    start_min: 16
    duration_min: 4
    ramp_min: 1
    cohorts: [eu-search]
`

// FigSpec runs the declarative workload specs end to end — flash crowd and
// regional failover — and reports per-tier SLA violation tables. The flash
// crowd is the SLO-tier contract in action: with tier-aware admission
// control, the sheddable and batch cohorts absorb the overload (shed first,
// violate most) while the critical cohort rides through the same crowd with
// the lowest violation rate. Quick runs compress spec time with the schema's
// time_scale knob instead of editing the scenario.
func FigSpec(quick bool) []*Table {
	cases := []struct {
		title     string
		src       string
		timeScale float64 // quick-mode compression
	}{
		{"flash crowd (examples/specs/flashcrowd.yaml)", flashcrowdSpecYAML, 3},
		{"regional failover (examples/specs/failover.yaml)", failoverSpecYAML, 2},
	}
	var tables []*Table
	for _, c := range cases {
		s, err := spec.Parse([]byte(c.src))
		if err != nil {
			panic(err)
		}
		if quick {
			s.TimeScale = c.timeScale
		}
		sc, err := s.Compile()
		if err != nil {
			panic(err)
		}
		res, err := sc.Run(nil)
		if err != nil {
			panic(err)
		}
		tab := &Table{
			ID:     "figSpec",
			Title:  c.title,
			Header: []string{"tier", "issued", "completed", "slow", "errors", "shed", "violation%"},
		}
		for _, tier := range sc.TiersPresent() {
			a := res.Totals[tier]
			tab.AddRow(tier.String(),
				fmt.Sprint(a.Issued), fmt.Sprint(a.Completed), fmt.Sprint(a.Slow),
				fmt.Sprint(a.Errors), fmt.Sprint(a.Shed), pct(a.ViolationRate()))
		}
		crit := res.Totals[workload.TierCritical]
		shed := res.Totals[workload.TierSheddable]
		if shed.Issued > 0 && crit.Issued > 0 {
			ok := "holds"
			if shed.ViolationRate() < crit.ViolationRate() {
				ok = "VIOLATED"
			}
			tab.AddNote("tier contract %s: sheddable violation rate %s >= critical %s",
				ok, pct(shed.ViolationRate()), pct(crit.ViolationRate()))
		}
		tab.AddNote("%d cohorts, %d windows, %d containers peak; spec seed %d, time_scale %g",
			len(sc.Streams), len(res.Windows), maxContainers(res), sc.Seed, s.TimeScale)
		tables = append(tables, tab)
	}
	return tables
}

func maxContainers(res *spec.RunResult) int {
	peak := 0
	for _, w := range res.Windows {
		if w.Containers > peak {
			peak = w.Containers
		}
	}
	return peak
}
