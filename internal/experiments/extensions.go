package experiments

import (
	"fmt"
	"time"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/core"
	"erms/internal/graph"
	"erms/internal/kube"
	"erms/internal/parallel"
	"erms/internal/provision"
	"erms/internal/stats"
	"erms/internal/workload"
)

func init() {
	register("fig19", DynamicGraphs)
	register("fig20", POPAblation)
}

// DynamicGraphs evaluates the paper's stated future work (§9): clustering
// dynamic dependency-graph variants into classes and scaling each class
// separately, versus over-provisioning one complete graph (§7). Variants
// are generated per service by pruning random subtrees of a base graph,
// mimicking input-dependent execution paths.
func DynamicGraphs(quick bool) []*Table {
	nVariants := 12
	services := 8
	if quick {
		nVariants = 8
		services = 5
	}
	r := stats.NewRNG(41)
	base := apps.Alibaba(apps.AlibabaConfig{Seed: 13, Services: services, MeanGraphSize: 30})
	models := modelsFor(base, defaultInterference())
	shares := sharesFor(base, paperCluster())

	t := &Table{
		ID:     "fig19",
		Title:  "Dynamic dependency graphs: complete-graph vs class-based scaling (§7/§9 future work)",
		Header: []string{"service", "variants", "classes", "complete ctrs", "class ctrs", "saving"},
	}
	// Variant generation consumes the shared RNG, so it runs sequentially in
	// service order; the per-service class planning is then independent and
	// fans out.
	svcs := base.Services()
	variantsOf := make([][]*graph.Graph, len(svcs))
	for si, svc := range svcs {
		full := base.Graph(svc)
		// Variant = the base graph with one random root stage dropped (when
		// the root has several), emulating requests that skip a branch.
		for v := 0; v < nVariants; v++ {
			variantsOf[si] = append(variantsOf[si], pruneVariant(full, r))
		}
	}
	plans, err := parallel.Map(len(svcs), func(si int) (*core.DynamicGraphResult, error) {
		svc := svcs[si]
		floor := slaFloor(base, svc, models, 0.3, 0.3)
		return core.DynamicGraphPlan(svc, variantsOf[si], nil, 60_000,
			workload.P95SLA(svc, floor*2), models, shares, 0.3, 0.3, 0.6)
	})
	if err != nil {
		panic(err)
	}
	var totalSaving stats.Moments
	for si, svc := range svcs {
		res := plans[si]
		t.AddRow(svc, fmt.Sprintf("%d", nVariants), fmt.Sprintf("%d", res.Classes),
			fmt.Sprintf("%d", res.CompleteContainers), fmt.Sprintf("%d", res.ClassContainers),
			pct(res.Saving))
		totalSaving.Add(res.Saving)
	}
	t.AddNote("mean saving from class-based scaling: %s", pct(totalSaving.Mean()))
	t.AddNote("paper (§7): complete-graph scaling over-provisions because a request touches only a small subset")
	return []*Table{t}
}

// pruneVariant deep-copies the graph, dropping one random root stage when
// possible.
func pruneVariant(g *graph.Graph, r *stats.RNG) *graph.Graph {
	c := g.Clone()
	if len(c.Root.Stages) > 1 && r.Float64() < 0.8 {
		drop := r.Intn(len(c.Root.Stages))
		c.Root.Stages = append(c.Root.Stages[:drop], c.Root.Stages[drop+1:]...)
	}
	// Rebuild into a fresh graph so internal node bookkeeping stays
	// consistent after pruning.
	out := graph.New(g.Service, c.Root.Microservice)
	var copyInto func(dst *graph.Node, src *graph.Node)
	copyInto = func(dst *graph.Node, src *graph.Node) {
		for _, st := range src.Stages {
			names := make([]string, len(st))
			for i, ch := range st {
				names[i] = ch.Microservice
			}
			created := out.AddStage(dst, names...)
			for i, ch := range st {
				copyInto(created[i], ch)
			}
		}
	}
	copyInto(out.Root, c.Root)
	return out
}

// POPAblation sweeps the provisioning partition count (§5.4): more groups
// means faster placement decisions at some imbalance cost — the POP
// trade-off [31]. It stays sequential because the placement-time column is a
// wall-clock measurement; concurrent placements would contend for cores.
func POPAblation(quick bool) []*Table {
	containersToPlace := 600
	if quick {
		containersToPlace = 300
	}
	t := &Table{
		ID:     "fig20",
		Title:  "POP partitioning ablation: placement time vs utilization imbalance",
		Header: []string{"groups", "placement time", "imbalance", "hot-host containers"},
	}
	for _, groups := range []int{1, 2, 4, 8} {
		cl := cluster.New(40, cluster.PaperHost)
		for _, h := range cl.Hosts() {
			if h.ID%3 == 0 {
				cl.SetBackground(h.ID, workload.Interference{CPU: 0.6, Mem: 0.6})
			}
		}
		sched := &provision.InterferenceAware{Groups: groups}
		orch := kube.New(cl, sched)
		start := time.Now()
		if err := orch.Apply(cluster.PaperContainer("ms"), containersToPlace); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		hot := 0
		for _, h := range cl.Hosts() {
			if h.Background.CPU > 0.5 {
				hot += len(h.Containers())
			}
		}
		t.AddRow(fmt.Sprintf("%d", groups), fmt.Sprint(elapsed.Round(time.Microsecond)),
			f3(cl.Imbalance()), fmt.Sprintf("%d", hot))
	}
	t.AddNote("paper (§5.4): partitioned placement keeps provisioning ~200ms at production scale")
	return []*Table{t}
}
