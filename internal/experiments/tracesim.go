package experiments

import (
	"fmt"
	"sort"
	"time"

	"erms/internal/apps"
	"erms/internal/baselines"
	"erms/internal/multiplex"
	"erms/internal/parallel"
	"erms/internal/stats"
)

func init() {
	register("fig16", Fig16)
	register("fig17", Scalability)
	register("fig18", Theorem1)
}

// Fig16 reproduces the large-scale trace-driven simulation (§6.5): the
// Taobao-shaped application (500 services × ~50 microservices, 300+ shared)
// is planned under every scheme using the same analytic models the
// (unaffordable-to-simulate) full cluster would be profiled into, mirroring
// how the paper replays traces rather than deploying Taobao.
func Fig16(quick bool) []*Table {
	cfg := apps.TaobaoConfig(5)
	if quick {
		cfg.Services = 120
	}
	app := apps.Alibaba(cfg)
	// Per-service workloads spread over an order of magnitude, like
	// production traffic.
	r := stats.NewRNG(17)
	rates := make(map[string]float64, len(app.Graphs))
	for _, g := range app.Graphs {
		rates[g.Service] = 2_000 * (0.5 + 4.5*r.Float64())
	}
	models := modelsFor(app, defaultInterference())
	// Keep the app's own per-service SLAs, floored to feasibility.
	slas := app.SLAs
	for svc := range slas {
		floor := slaFloor(app, svc, models, staticBackground.CPU, staticBackground.Mem)
		if s := slas[svc]; s.Threshold < floor*1.3 {
			s.Threshold = floor * 1.3
			slas[svc] = s
		}
	}
	pc := planContext{
		app:    app,
		models: models,
		shares: sharesFor(app, paperCluster()),
		loads:  loadsFor(app, rates),
		slas:   slas,
		cpu:    staticBackground.CPU,
		mem:    staticBackground.Mem,
		stats:  statsFor(app, models),
	}

	planners := []planner{
		ermsPlanner("erms", multiplex.SchemePriority),
		ermsPlanner("erms-ltc", multiplex.SchemeFCFS),
		baselinePlanner(baselines.Firm{}),
		baselinePlanner(baselines.GrandSLAm{}),
		baselinePlanner(baselines.Rhythm{}),
	}

	// The five planners share only read-only context; they fan out and the
	// result maps fill in planner order. Per-service counts are collected in
	// sorted service order so downstream float sums are bit-stable.
	results, err := parallel.Map(len(planners), func(i int) (*planResult, error) {
		res, err := planners[i].run(pc)
		if err != nil {
			return nil, fmt.Errorf("fig16 %s: %w", planners[i].name, err)
		}
		return res, nil
	})
	if err != nil {
		panic(err)
	}
	perSvcCounts := map[string][]float64{}
	totals := map[string]int{}
	for pi, p := range planners {
		res := results[pi]
		totals[p.name] = res.total()
		svcs := make([]string, 0, len(res.perService))
		for svc := range res.perService {
			svcs = append(svcs, svc)
		}
		sort.Strings(svcs)
		counts := make([]float64, 0, len(svcs))
		for _, svc := range svcs {
			counts = append(counts, float64(res.perService[svc].TotalContainers()))
		}
		perSvcCounts[p.name] = counts
	}

	a := &Table{
		ID:     "fig16a",
		Title:  "CDF of containers required per service (Taobao-shaped trace)",
		Header: []string{"containers <="},
	}
	for _, p := range planners {
		a.Header = append(a.Header, p.name)
	}
	var all []float64
	for _, p := range planners {
		all = append(all, perSvcCounts[p.name]...)
	}
	sort.Float64s(all)
	for _, q := range []float64{0.25, 0.5, 0.8, 0.95, 1.0} {
		thr := stats.QuantileSorted(all, q)
		row := []string{fmt.Sprintf("%.0f", thr)}
		for _, p := range planners {
			cdf := stats.CDF(perSvcCounts[p.name], []float64{thr})
			row = append(row, pct(cdf[0]))
		}
		a.AddRow(row...)
	}
	a.AddNote("paper: 80%% of services need <2000 containers under Erms vs ~6000 under GrandSLAm/Rhythm")

	b := &Table{
		ID:     "fig16b",
		Title:  "Total deployed containers and reduction factors",
		Header: []string{"scheme", "total containers", "vs erms", "avg per service"},
	}
	erms := float64(totals["erms"])
	for _, p := range planners {
		b.AddRow(p.name, fmt.Sprintf("%d", totals[p.name]),
			fmt.Sprintf("%.2fx", float64(totals[p.name])/erms),
			f1(stats.Mean(perSvcCounts[p.name])))
	}
	b.AddNote("paper: Erms reduces containers 1.6x on average; LTC alone 1.2x; priority adds up to 50%%")
	return []*Table{a, b}
}

// Scalability reproduces the §6.5.2 overhead measurements: latency target
// computation time versus dependency-graph size, and provisioning time for
// large placements. It stays sequential on purpose: the figure *is* a
// wall-clock measurement, and concurrent runs would contend for cores and
// inflate each other's timings.
func Scalability(quick bool) []*Table {
	sizes := []int{50, 200, 500, 1000, 2000}
	if quick {
		sizes = []int{50, 500, 1000}
	}
	t := &Table{
		ID:     "fig17",
		Title:  "Scaling overhead: Latency Target Computation time vs graph size (§6.5.2)",
		Header: []string{"graph nodes", "plan time"},
	}
	for _, n := range sizes {
		cfg := apps.AlibabaConfig{Seed: uint64(n), Services: 1, MeanGraphSize: n, SharedFrac: 0.5, PoolSize: n / 2}
		app := apps.Alibaba(cfg)
		models := modelsFor(app, defaultInterference())
		svc := app.Services()[0]
		floor := slaFloor(app, svc, models, 0.3, 0.3)
		pc := newContext(app, uniformRates(app, 10_000), floor*2, 0.3, 0.3)
		p := ermsPlanner("erms", multiplex.SchemePriority)
		// Warm once, then time.
		if _, err := p.run(pc); err != nil {
			panic(err)
		}
		const reps = 5
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := p.run(pc); err != nil {
				panic(err)
			}
		}
		t.AddRow(fmt.Sprintf("%d", app.Graphs[0].Len()), fmt.Sprint(time.Since(start)/reps))
	}
	t.AddNote("paper: ~15ms average, ~300ms for 1000+-microservice graphs on a Xeon")
	return []*Table{t}
}

// Theorem1 validates Appendix A numerically: across random symmetric
// scenarios, priority scheduling uses no more resources than non-sharing,
// which uses no more than FCFS sharing.
func Theorem1(quick bool) []*Table {
	n := 2000
	if quick {
		n = 500
	}
	// The shared RNG forces sequential scenario *generation* (draw order is
	// part of the figure's definition), but the closed-form evaluations are
	// pure and fan out over the pre-generated scenarios.
	r := stats.NewRNG(23)
	params := make([]multiplex.Theorem1Params, n)
	for i := 0; i < n; i++ {
		p := multiplex.Theorem1Params{
			AU: 0.002 + 0.01*r.Float64(), BU: 1 + r.Float64(), RU: 0.0001 + 0.0004*r.Float64(),
			AH: 0.0005 + 0.002*r.Float64(), BH: 1 + r.Float64(), RH: 0.0001 + 0.0004*r.Float64(),
			AP: 0.001 + 0.004*r.Float64(), BP: 0.5 + r.Float64(), RP: 0.0001 + 0.0004*r.Float64(),
			Gamma1: 1000 + 50000*r.Float64(), Gamma2: 1000 + 50000*r.Float64(),
		}
		slack := 20 + 200*r.Float64()
		p.SLA1 = slack + p.BU + p.BP
		p.SLA2 = slack + p.BH + p.BP
		params[i] = p
	}
	type verdict struct {
		ok, violated           bool
		savePrio, saveNonShare float64
	}
	verdicts, err := parallel.Map(n, func(i int) (verdict, error) {
		p := params[i]
		s, err1 := p.SharingFCFS()
		nn, err2 := p.NonSharing()
		o, err3 := p.PriorityUsage()
		if err1 != nil || err2 != nil || err3 != nil {
			return verdict{}, nil
		}
		return verdict{
			ok:           true,
			violated:     !(o <= nn+1e-9 && nn <= s+1e-9),
			savePrio:     1 - o/s,
			saveNonShare: 1 - nn/s,
		}, nil
	})
	if err != nil {
		panic(err)
	}
	violations := 0
	var savePriority, saveNonShare stats.Moments
	for _, v := range verdicts {
		if !v.ok {
			continue
		}
		if v.violated {
			violations++
		}
		savePriority.Add(v.savePrio)
		saveNonShare.Add(v.saveNonShare)
	}
	t := &Table{
		ID:     "fig18",
		Title:  "Theorem 1: RU(priority) <= RU(non-sharing) <= RU(FCFS sharing)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("random scenarios", fmt.Sprintf("%d", n))
	t.AddRow("ordering violations", fmt.Sprintf("%d", violations))
	t.AddRow("mean saving: priority vs FCFS", pct(savePriority.Mean()))
	t.AddRow("mean saving: non-sharing vs FCFS", pct(saveNonShare.Mean()))
	t.AddNote("§2.3 example: priority saved 40%% vs FCFS and 20%% vs non-sharing")
	return []*Table{t}
}
