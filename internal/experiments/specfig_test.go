package experiments

import (
	"os"
	"strings"
	"testing"

	"erms/internal/spec"
	"erms/internal/workload"
)

// TestSpecFixturesMatchExamples pins the embedded spec documents to the
// example files users actually run: figSpec must dogfood the shipped specs,
// not a drifted copy.
func TestSpecFixturesMatchExamples(t *testing.T) {
	cases := []struct {
		path     string
		embedded string
	}{
		{"../../examples/specs/flashcrowd.yaml", flashcrowdSpecYAML},
		{"../../examples/specs/failover.yaml", failoverSpecYAML},
	}
	for _, c := range cases {
		data, err := os.ReadFile(c.path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != c.embedded {
			t.Errorf("%s has drifted from the copy embedded in specfig.go; update the constant", c.path)
		}
	}
}

// TestFigSpecTierContract is the SLO-tier acceptance gate: under the
// flash-crowd spec, the sheddable tier's violation rate must be at least the
// critical tier's — admission control has to sacrifice sheddable traffic
// before critical traffic.
func TestFigSpecTierContract(t *testing.T) {
	s, err := spec.Parse([]byte(flashcrowdSpecYAML))
	if err != nil {
		t.Fatal(err)
	}
	s.TimeScale = 3 // quick-mode compression, same as FigSpec(quick=true)
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	crit := res.Totals[workload.TierCritical]
	shed := res.Totals[workload.TierSheddable]
	if crit.Issued == 0 || shed.Issued == 0 {
		t.Fatalf("expected traffic on critical and sheddable tiers, got %+v / %+v", crit, shed)
	}
	if shed.ViolationRate() < crit.ViolationRate() {
		t.Errorf("tier contract violated: sheddable violation rate %.3f < critical %.3f",
			shed.ViolationRate(), crit.ViolationRate())
	}
	if shed.Shed < crit.Shed {
		t.Errorf("admission control shed more critical (%d) than sheddable (%d) requests", crit.Shed, shed.Shed)
	}
}

// TestFigSpecRenders runs the driver end to end and sanity-checks the table
// shape and the embedded tier-contract note.
func TestFigSpecRenders(t *testing.T) {
	out := renderAll(t, "figSpec")
	if !strings.Contains(out, "flash crowd") || !strings.Contains(out, "regional failover") {
		t.Fatalf("missing tables:\n%s", out)
	}
	if !strings.Contains(out, "tier contract holds") {
		t.Errorf("tier-contract note missing or violated:\n%s", out)
	}
	for _, tier := range []string{"critical", "standard", "sheddable", "batch"} {
		if !strings.Contains(out, tier) {
			t.Errorf("tier %s missing from output:\n%s", tier, out)
		}
	}
	if strings.Count(out, "figSpec") < 2 {
		t.Errorf("expected two figSpec tables:\n%s", out)
	}
}
