package experiments

import (
	"fmt"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/parallel"
	"erms/internal/sim"
	"erms/internal/workload"
)

func init() {
	register("fig23", Fig23)
}

// fig23Seed seeds every variant's simulation; the variants share it so each
// faces the same arrival process and the same crash timing.
const fig23Seed = 23

// fig23Variant is one retry policy under test.
type fig23Variant struct {
	name string
	res  sim.Resilience
}

// fig23Outcome aggregates one variant's run.
type fig23Outcome struct {
	viol     float64 // SLA violation rate incl. errors
	errs     float64 // error rate
	goodput  float64 // requests within SLA per minute
	attempts float64 // call attempts per request (amplification)
	data     sim.DataStats
	count    int
}

// Fig23 is the retry-storm experiment: a three-tier chain (frontend → mid →
// backend) sized so the backend runs near 60% utilization loses half its
// capacity to a container crash mid-run. Three data-plane policies face the
// byte-identical fault and arrival schedule:
//
//   - no-retries: per-attempt timeouts and deadline propagation only; a
//     timed-out call fails to the client immediately.
//   - unbounded-retries: the naive policy — every edge retries up to 4
//     attempts with no retry budget and no breaker. Nested per-edge retries
//     multiply (4 × 4 × 4 worst case), so the saturated backend sees its
//     offered load amplified while it can least afford it.
//   - budgeted+breaker: the same 4 attempts, but a 10%-of-successes retry
//     budget, a circuit breaker per (service, microservice), and
//     deadline-derived admission control.
//
// Expected ordering on SLA violation rate: unbounded-retries worst,
// budgeted+breaker ≈ no-retries (the paper's SLA guarantee survives retries
// only when they are budgeted).
func Fig23(quick bool) []*Table {
	durationMin := 6.0
	warmupMin := 0.5
	failAt, recoverAt := 1.5, 3.5
	rate := 36_000.0 // req/min ≈ 60% of the 2-container backend capacity
	if quick {
		durationMin = 4.0
		failAt, recoverAt = 1.0, 2.5
	}

	base := sim.Resilience{
		TimeoutSLAMultiple: 3,  // request deadline = 3 × SLA threshold
		AttemptTimeoutMs:   25, // per-edge attempt timeout
		RetryBackoffMs:     2,
		RetryJitter:        0.2,
	}
	noRetry := base
	noRetry.MaxAttempts = 1
	unbounded := base
	unbounded.MaxAttempts = 4
	unbounded.RetryBudget = 0 // unbounded: the naive storm
	budgeted := base
	budgeted.MaxAttempts = 4
	budgeted.RetryBudget = 0.1
	budgeted.RetryBurst = 10
	budgeted.BreakerFailureRate = 0.5
	budgeted.BreakerWindow = 64
	budgeted.BreakerMinSamples = 20
	budgeted.BreakerCooldownMs = 100
	budgeted.BreakerProbes = 2
	budgeted.Shed = true

	variants := []fig23Variant{
		{"no-retries", noRetry},
		{"unbounded-retries", unbounded},
		{"budgeted+breaker", budgeted},
	}

	// The variants are independent simulations sharing only read-only
	// inputs; each builds a private cluster and graph, so the fan-out is
	// trivially deterministic at any worker count.
	outs, err := parallel.Map(len(variants), func(i int) (fig23Outcome, error) {
		return runRetryStorm(variants[i].res, rate, durationMin, warmupMin, failAt, recoverAt)
	})
	if err != nil {
		panic(err)
	}

	tab := &Table{
		ID:    "fig23",
		Title: "Retry storm under a mid-run backend crash: naive vs budgeted retries",
		Header: []string{"policy", "violation rate", "error rate", "goodput req/min",
			"attempts/req", "retries", "timeouts", "breaker opens", "shed"},
	}
	for i, v := range variants {
		o := outs[i]
		tab.AddRow(v.name, f3(o.viol), f3(o.errs), f1(o.goodput), f2(o.attempts),
			fmt.Sprintf("%d", o.data.Retries), fmt.Sprintf("%d", o.data.Timeouts),
			fmt.Sprintf("%d", o.data.BreakerOpens), fmt.Sprintf("%d", o.data.Shed))
	}
	tab.AddNote("one of two backend containers crashes at min %.1f and recovers at min %.1f; the surviving half is ~20%% over capacity", failAt, recoverAt)
	tab.AddNote("expected ordering on violation rate: unbounded-retries worst (nested per-edge retries amplify offered load into the saturated backend), budgeted+breaker ≈ no-retries")
	tab.AddNote("measured: no-retries %s, unbounded-retries %s, budgeted+breaker %s",
		f3(outs[0].viol), f3(outs[1].viol), f3(outs[2].viol))
	return []*Table{tab}
}

// runRetryStorm simulates the three-tier chain under one resilience policy.
func runRetryStorm(res sim.Resilience, rate, durationMin, warmupMin, failAt, recoverAt float64) (fig23Outcome, error) {
	g := graph.New("checkout", "frontend")
	mid := g.AddStage(g.Root, "mid")[0]
	g.AddStage(mid, "backend")

	cl := cluster.New(3, cluster.PaperHost)
	spec := func(ms string) cluster.ContainerSpec {
		return cluster.ContainerSpec{Microservice: ms, CPU: 0.1, MemMB: 200, Threads: 2}
	}
	host := 0
	for _, ms := range []string{"frontend", "mid", "backend"} {
		for k := 0; k < 2; k++ {
			if _, err := cl.Place(spec(ms), host%cl.NumHosts()); err != nil {
				return fig23Outcome{}, err
			}
			host++
		}
	}

	cfg := sim.Config{
		Seed:         fig23Seed,
		Cluster:      cl,
		Interference: defaultInterference(),
		Profiles: map[string]sim.ServiceProfile{
			"frontend": {BaseMs: 1, CV: 0.5},
			"mid":      {BaseMs: 2, CV: 0.5},
			"backend":  {BaseMs: 4, CV: 0.5},
		},
		Graphs:         []*graph.Graph{g},
		Patterns:       map[string]workload.Pattern{"checkout": workload.Static{Rate: rate}},
		SLAs:           map[string]workload.SLA{"checkout": workload.P95SLA("checkout", 30)},
		DurationMin:    durationMin,
		WarmupMin:      warmupMin,
		NetworkDelayMs: 0.05,
		Failures: []sim.Failure{
			{Microservice: "backend", Index: 0, AtMin: failAt, RecoverMin: recoverAt},
		},
		Resilience: &res,
	}
	rt, err := sim.NewRuntime(cfg)
	if err != nil {
		return fig23Outcome{}, err
	}
	r := rt.Run()
	sr := r.PerService["checkout"]
	total := sr.Count + sr.Errors
	out := fig23Outcome{
		viol:  sr.ViolationRate(),
		errs:  sr.ErrorRate(),
		data:  r.Data,
		count: total,
	}
	if r.SimulatedMin > 0 {
		out.goodput = float64(sr.Good()) / r.SimulatedMin
	}
	if total > 0 {
		out.attempts = float64(r.Data.Attempts) / float64(total)
	}
	return out, nil
}
