package experiments

import (
	"strconv"
	"testing"

	"erms/internal/parallel"
)

// parseF parses a rendered table cell as a float.
func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

// TestFig23RetryStormOrdering pins the experiment's headline result:
// unbounded nested retries amplify a transient backend crash into a much
// worse SLA violation rate, while budgeted retries with a breaker and
// admission control stay within a whisker of the no-retry baseline.
func TestFig23RetryStormOrdering(t *testing.T) {
	tables, err := Run("fig23", true)
	if err != nil {
		t.Fatalf("fig23: %v", err)
	}
	if len(tables) != 1 {
		t.Fatalf("fig23 returned %d tables, want 1", len(tables))
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("fig23 has %d rows, want 3", len(rows))
	}
	viol := make(map[string]float64, 3)
	for _, r := range rows {
		viol[r[0]] = parseF(t, r[1])
	}
	noRetry, unbounded, budgeted := viol["no-retries"], viol["unbounded-retries"], viol["budgeted+breaker"]
	if noRetry <= 0 || noRetry >= 1 {
		t.Fatalf("no-retries violation rate %v outside (0,1): the crash window should hurt but not kill", noRetry)
	}
	if unbounded < noRetry+0.05 {
		t.Errorf("retry storm too tame: unbounded-retries %.3f vs no-retries %.3f (want ≥ +0.05)", unbounded, noRetry)
	}
	if budgeted > noRetry+0.05 {
		t.Errorf("budgeted retries not contained: budgeted+breaker %.3f vs no-retries %.3f (want ≤ +0.05)", budgeted, noRetry)
	}
	if budgeted >= unbounded {
		t.Errorf("budgeted+breaker %.3f should beat unbounded-retries %.3f", budgeted, unbounded)
	}
}

// TestFig23IdenticalAcrossWorkers is the CI determinism gate for the
// resilience data plane: the retry-storm table must be byte-identical
// whether its three variant simulations run on one worker or four.
func TestFig23IdenticalAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)

	parallel.SetWorkers(1)
	sequential := renderAll(t, "fig23")
	parallel.SetWorkers(4)
	if got := renderAll(t, "fig23"); got != sequential {
		t.Errorf("fig23 differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			sequential, got)
	}
}
