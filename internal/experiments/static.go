package experiments

import (
	"fmt"
	"sort"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/kube"
	"erms/internal/multiplex"
	"erms/internal/parallel"
	"erms/internal/provision"
	"erms/internal/scaling"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

func init() {
	register("fig11", Fig11)
	register("fig12", Fig12)
}

// staticSetting is one (application, workload, SLA multiple) point of the
// §6.3.1 sweep.
type staticSetting struct {
	app      *apps.App
	rate     float64
	slaLevel string
	slaMult  float64
}

// staticBackground is the colocated batch load during the static
// experiments: microservices share hosts with batch jobs (§2, [24]).
var staticBackground = workload.Interference{CPU: 0.35, Mem: 0.35}

// staticSettings builds the sweep. SLA thresholds are expressed as
// multiples of each app's feasibility floor so every setting is meaningful
// for every planner (the floor depends on the synthetic service times; the
// paper's absolute 50-200ms range assumes DeathStarBench's).
func staticSettings(quick bool) []staticSetting {
	appsUnder := []*apps.App{apps.SocialNetwork(), apps.HotelReservation(), apps.MediaService()}
	rates := []float64{600, 5_000, 20_000, 50_000, 100_000}
	slas := []struct {
		level string
		mult  float64
	}{{"low", 1.4}, {"mid", 2.0}, {"high", 3.0}}
	if quick {
		appsUnder = []*apps.App{apps.SocialNetwork(), apps.HotelReservation()}
		rates = []float64{600, 20_000, 100_000}
	}
	var out []staticSetting
	for _, app := range appsUnder {
		for _, rate := range rates {
			for _, s := range slas {
				out = append(out, staticSetting{app: app, rate: rate, slaLevel: s.level, slaMult: s.mult})
			}
		}
	}
	return out
}

// planSetting runs one planner on one setting, returning total deployed
// containers (merged).
func planSetting(p planner, s staticSetting) (int, error) {
	models := modelsFor(s.app, defaultInterference())
	floor := appSLAFloor(s.app, models, staticBackground.CPU, staticBackground.Mem)
	pc := newContext(s.app, uniformRates(s.app, s.rate), floor*s.slaMult,
		staticBackground.CPU, staticBackground.Mem)
	res, err := p.run(pc)
	if err != nil {
		return 0, err
	}
	return res.total(), nil
}

// Fig11 reproduces the static-workload resource-usage comparison: (a) the
// CDF of total containers across all settings per scheme, and (b) average
// containers by workload and by SLA level.
func Fig11(quick bool) []*Table {
	settings := staticSettings(quick)
	planners := defaultPlanners()

	counts := make(map[string][]float64) // planner -> per-setting totals
	byRate := make(map[string]map[float64]*stats.Moments)
	bySLA := make(map[string]map[string]*stats.Moments)
	for _, p := range planners {
		byRate[p.name] = make(map[float64]*stats.Moments)
		bySLA[p.name] = make(map[string]*stats.Moments)
	}
	// Every (setting, planner) plan is independent; fan them out and fold
	// the totals back in sweep order.
	totals, err := parallel.Map(len(settings)*len(planners), func(i int) (int, error) {
		s, p := settings[i/len(planners)], planners[i%len(planners)]
		total, err := planSetting(p, s)
		if err != nil {
			return 0, fmt.Errorf("fig11 %s on %s@%v/%s: %w", p.name, s.app.Name, s.rate, s.slaLevel, err)
		}
		return total, nil
	})
	if err != nil {
		panic(err)
	}
	for si, s := range settings {
		for pi, p := range planners {
			total := totals[si*len(planners)+pi]
			counts[p.name] = append(counts[p.name], float64(total))
			if byRate[p.name][s.rate] == nil {
				byRate[p.name][s.rate] = &stats.Moments{}
			}
			byRate[p.name][s.rate].Add(float64(total))
			if bySLA[p.name][s.slaLevel] == nil {
				bySLA[p.name][s.slaLevel] = &stats.Moments{}
			}
			bySLA[p.name][s.slaLevel].Add(float64(total))
		}
	}

	// (a) CDF of per-setting totals.
	a := &Table{
		ID:     "fig11a",
		Title:  "CDF of containers allocated across static settings",
		Header: []string{"containers <="},
	}
	for _, p := range planners {
		a.Header = append(a.Header, p.name)
	}
	var thresholds []float64
	all := append([]float64(nil), counts[planners[0].name]...)
	for _, p := range planners[1:] {
		all = append(all, counts[p.name]...)
	}
	sort.Float64s(all)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		thresholds = append(thresholds, stats.QuantileSorted(all, q))
	}
	for _, thr := range thresholds {
		row := []string{fmt.Sprintf("%.0f", thr)}
		for _, p := range planners {
			cdf := stats.CDF(counts[p.name], []float64{thr})
			row = append(row, pct(cdf[0]))
		}
		a.AddRow(row...)
	}

	// (b) Averages by workload and SLA level.
	b := &Table{
		ID:     "fig11b",
		Title:  "Average containers by workload and SLA level",
		Header: []string{"setting"},
	}
	for _, p := range planners {
		b.Header = append(b.Header, p.name)
	}
	var rates []float64
	for r := range byRate[planners[0].name] {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	for _, r := range rates {
		row := []string{fmt.Sprintf("workload %.0f/min", r)}
		for _, p := range planners {
			row = append(row, f1(byRate[p.name][r].Mean()))
		}
		b.AddRow(row...)
	}
	for _, lvl := range []string{"low", "mid", "high"} {
		if bySLA[planners[0].name][lvl] == nil {
			continue
		}
		row := []string{"sla " + lvl}
		for _, p := range planners {
			row = append(row, f1(bySLA[p.name][lvl].Mean()))
		}
		b.AddRow(row...)
	}
	// Overall savings.
	mean := func(name string) float64 { return stats.Mean(counts[name]) }
	ermsMean := mean("erms")
	for _, p := range planners[1:] {
		b.AddNote("erms saves %.1f%% of containers vs %s (paper: 48.1%%/53.5%%/60.1%% vs firm/grandslam/rhythm)",
			100*(1-ermsMean/mean(p.name)), p.name)
	}
	return []*Table{a, b}
}

// simSetting deploys a plan on an interference-loaded cluster and measures
// real end-to-end behaviour.
func simSetting(p planner, s staticSetting, durationMin float64, seed uint64) (viol float64, tailOverSLA float64, err error) {
	models := modelsFor(s.app, defaultInterference())
	floor := appSLAFloor(s.app, models, staticBackground.CPU, staticBackground.Mem)
	slaMs := floor * s.slaMult
	pc := newContext(s.app, uniformRates(s.app, s.rate), slaMs, staticBackground.CPU, staticBackground.Mem)
	res, err := p.run(pc)
	if err != nil {
		return 0, 0, err
	}
	// Heterogeneous colocation with the planned-for average: half the hosts
	// run heavy batch jobs, half are cool. Erms' provisioning module sees
	// the interference; the baselines deploy through the stock
	// (request-balancing, batch-blind) scheduler.
	cl := cluster.New(20, cluster.PaperHost)
	for _, h := range cl.Hosts() {
		if h.ID%2 == 0 {
			cl.SetBackground(h.ID, workload.Interference{CPU: 0.55, Mem: 0.55})
		} else {
			cl.SetBackground(h.ID, workload.Interference{CPU: 0.15, Mem: 0.15})
		}
	}
	var sched kube.Scheduler = kube.BlindSpread{}
	if p.name == "erms" {
		sched = &provision.InterferenceAware{Groups: 4}
	}
	orch := kube.New(cl, sched)
	mss := make([]string, 0, len(res.merged))
	for ms := range res.merged {
		mss = append(mss, ms)
	}
	sort.Strings(mss)
	for _, ms := range mss {
		if perr := orch.Apply(s.app.Containers[ms], res.merged[ms]); perr != nil {
			return 0, 0, perr
		}
	}
	// Open-loop fixed-rate generation, like the paper's static workloads
	// (§6.1): a saturated deployment accumulates queues, which is exactly
	// the violation signal Fig. 12 reports. (Figs. 13/15 use closed-loop
	// clients to keep their latency *ratios* bounded.)
	patterns := make(map[string]workload.Pattern)
	slas := make(map[string]workload.SLA)
	for _, g := range s.app.Graphs {
		patterns[g.Service] = workload.Static{Rate: s.rate}
		slas[g.Service] = workload.P95SLA(g.Service, slaMs)
	}
	var priorities map[string]map[string]int
	if p.name == "erms" {
		// Recover ranks from the multiplex plan when present.
		if ranksPlan, perr := multiplex.PlanScheme(multiplex.SchemePriority, ermsInputs(pc), pc.loads, s.app.Shared()); perr == nil {
			priorities = ranksPlan.Ranks
		}
	}
	rt, rerr := sim.NewRuntime(sim.Config{
		Seed:         seed,
		Cluster:      cl,
		Interference: defaultInterference(),
		Profiles:     s.app.Profiles,
		Graphs:       s.app.Graphs,
		Patterns:     patterns,
		SLAs:         slas,
		Priorities:   priorities,
		Delta:        0.05,
		DurationMin:  durationMin + 0.5,
		WarmupMin:    0.5,
	})
	if rerr != nil {
		return 0, 0, rerr
	}
	out := rt.Run()
	var v, t stats.Moments
	for _, sr := range out.PerService {
		v.Add(sr.ViolationRate())
		t.Add(sr.P95() / slaMs)
	}
	return v.Mean(), t.Mean(), nil
}

// ermsInputs rebuilds the scaling inputs from a plan context (used to
// recover priority ranks for simulation).
func ermsInputs(pc planContext) map[string]scaling.Input {
	inputs := make(map[string]scaling.Input, len(pc.app.Graphs))
	for _, g := range pc.app.Graphs {
		inputs[g.Service] = scaling.Input{
			Graph: g, SLA: pc.slas[g.Service], Models: pc.models,
			Shares: pc.shares, CPUUtil: pc.cpu, MemUtil: pc.mem,
		}
	}
	return inputs
}

// Fig12 reproduces the end-to-end SLA outcomes of the static experiments:
// (a) SLA violation probability and (b) P95 latency normalized to the SLA,
// per scheme, measured in the simulator with background interference.
func Fig12(quick bool) []*Table {
	app := apps.HotelReservation()
	rates := []float64{80_000, 160_000}
	slaMults := []float64{1.4, 3.0}
	duration := 2.0
	if quick {
		rates = []float64{120_000}
		duration = 1.0
	}
	planners := defaultPlanners()

	a := &Table{
		ID:     "fig12a",
		Title:  "SLA violation probability (simulated, background interference 35%/35%)",
		Header: []string{"setting"},
	}
	b := &Table{
		ID:     "fig12b",
		Title:  "P95 end-to-end latency normalized to the SLA",
		Header: []string{"setting"},
	}
	for _, p := range planners {
		a.Header = append(a.Header, p.name)
		b.Header = append(b.Header, p.name)
	}
	agg := make(map[string]*stats.Moments)
	for _, p := range planners {
		agg[p.name] = &stats.Moments{}
	}
	// One simulation per (rate, slaMult, planner); seeds follow the flat
	// sweep index exactly as the old sequential seed++ did.
	type simOut struct{ viol, tail float64 }
	const baseSeed = uint64(21)
	nm := len(slaMults) * len(planners)
	results, err := parallel.Map(len(rates)*nm, func(i int) (simOut, error) {
		rate := rates[i/nm]
		mult := slaMults[(i/len(planners))%len(slaMults)]
		p := planners[i%len(planners)]
		s := staticSetting{app: app, rate: rate, slaMult: mult, slaLevel: fmt.Sprintf("%.1fx", mult)}
		viol, tail, err := simSetting(p, s, duration, baseSeed+uint64(i))
		if err != nil {
			return simOut{}, err
		}
		return simOut{viol, tail}, nil
	})
	if err != nil {
		panic(err)
	}
	for ri, rate := range rates {
		for mi, mult := range slaMults {
			rowA := []string{fmt.Sprintf("%s %.0f/min sla %.1fx", app.Name, rate, mult)}
			rowB := append([]string(nil), rowA[0])
			for pi, p := range planners {
				r := results[ri*nm+mi*len(planners)+pi]
				agg[p.name].Add(r.viol)
				rowA = append(rowA, pct(r.viol))
				rowB = append(rowB, f2(r.tail))
			}
			a.AddRow(rowA...)
			b.AddRow(rowB...)
		}
	}
	for _, p := range planners {
		a.AddNote("%s mean violation rate: %s", p.name, pct(agg[p.name].Mean()))
	}
	a.AddNote("paper: erms <2%%, firm 16.5%%, grandslam 13.5%%, rhythm 7.3%%")
	b.AddNote("paper: erms ~10%% lower normalized tail latency than baselines")
	return []*Table{a, b}
}
