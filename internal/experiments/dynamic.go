package experiments

import (
	"fmt"
	"sort"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/kube"
	"erms/internal/multiplex"
	"erms/internal/parallel"
	"erms/internal/provision"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

func init() {
	register("fig13", Fig13)
}

// Fig13 reproduces the dynamic-workload experiment (§6.3.2): an
// Alibaba-shaped diurnal trace drives the Social Network application; every
// scaling window each manager re-plans, the deployment is reconciled, and a
// window of real (simulated) traffic measures tail latency. Firm reproduces
// its late-detection behaviour by planning against the previous window's
// workload.
func Fig13(quick bool) []*Table {
	app := apps.SocialNetwork()
	windows := 10
	windowMin := 1.5
	peak := 90_000.0
	if quick {
		windows = 4
		windowMin = 0.8
		peak = 50_000
	}
	trace := workload.AlibabaLikeTrace(3, int(float64(windows)*windowMin)+1, 15_000, peak)
	models := modelsFor(app, defaultInterference())
	floor := appSLAFloor(app, models, staticBackground.CPU, staticBackground.Mem)
	slaMs := floor * 2.0

	planners := defaultPlanners()
	containers := &Table{
		ID:     "fig13a",
		Title:  "Containers deployed over time under the dynamic workload",
		Header: []string{"window", "workload req/min"},
	}
	tails := &Table{
		ID:     "fig13b",
		Title:  "P95 end-to-end latency over time (normalized to the SLA; >1 violates)",
		Header: []string{"window", "workload req/min"},
	}
	for _, p := range planners {
		containers.Header = append(containers.Header, p.name)
		tails.Header = append(tails.Header, p.name)
	}

	avgContainers := map[string]*stats.Moments{}
	worstTail := map[string]float64{}
	for _, p := range planners {
		avgContainers[p.name] = &stats.Moments{}
	}

	// Each (window, planner) cell plans against trace rates that are pure
	// functions of the window index ("firm" uses the previous window's rate,
	// available directly from the trace), builds its own cluster, and
	// simulates with an explicit per-window seed — so the whole grid fans
	// out. Rows are assembled afterwards in window order.
	type cellOut struct {
		total int
		worst float64
	}
	cells, err := parallel.Map(windows*len(planners), func(i int) (cellOut, error) {
		w, p := i/len(planners), planners[i%len(planners)]
		rate := trace.RateAt(float64(w) * windowMin)
		planRate := rate
		if p.name == "firm" {
			// Firm detects bottlenecks only after they appear: it plans
			// for the load it has already observed.
			planRate = trace.RateAt(float64(w-1) * windowMin)
			if w == 0 {
				planRate = trace.RateAt(0)
			}
		}
		pc := newContext(app, uniformRates(app, planRate), slaMs,
			staticBackground.CPU, staticBackground.Mem)
		res, err := p.run(pc)
		if err != nil {
			return cellOut{}, err
		}
		total := res.total()

		// Deploy and simulate this window's real traffic.
		cl := cluster.New(20, cluster.PaperHost)
		for _, h := range cl.Hosts() {
			if h.ID%2 == 0 {
				cl.SetBackground(h.ID, workload.Interference{CPU: 0.55, Mem: 0.55})
			} else {
				cl.SetBackground(h.ID, workload.Interference{CPU: 0.15, Mem: 0.15})
			}
		}
		var sched kube.Scheduler = kube.BlindSpread{}
		if p.name == "erms" {
			sched = &provision.InterferenceAware{Groups: 4}
		}
		orch := kube.New(cl, sched)
		mss := make([]string, 0, len(res.merged))
		for ms := range res.merged {
			mss = append(mss, ms)
		}
		sort.Strings(mss)
		for _, ms := range mss {
			if err := orch.Apply(app.Containers[ms], res.merged[ms]); err != nil {
				return cellOut{}, err
			}
		}
		// Closed-loop clients (wrk-style): the offered load self-throttles
		// under saturation, so violating schemes report bounded factors
		// rather than open-loop queue blow-ups.
		const thinkMs = 1000.0
		users := make(map[string]int)
		slas := make(map[string]workload.SLA)
		for _, g := range app.Graphs {
			users[g.Service] = int(rate * (thinkMs + 30) / 60000)
			slas[g.Service] = workload.P95SLA(g.Service, slaMs)
		}
		var priorities map[string]map[string]int
		if p.name == "erms" {
			if rp, err := multiplex.PlanScheme(multiplex.SchemePriority, ermsInputs(pc), pc.loads, app.Shared()); err == nil {
				priorities = rp.Ranks
			}
		}
		rt, err := sim.NewRuntime(sim.Config{
			Seed:         uint64(100*w) + 7,
			Cluster:      cl,
			Interference: defaultInterference(),
			Profiles:     app.Profiles,
			Graphs:       app.Graphs,
			ClosedUsers:  users,
			ThinkTimeMs:  thinkMs,
			SLAs:         slas,
			Priorities:   priorities,
			Delta:        0.05,
			DurationMin:  windowMin + 0.4,
			WarmupMin:    0.4,
		})
		if err != nil {
			return cellOut{}, err
		}
		out := rt.Run()
		var worst float64
		for _, sr := range out.PerService {
			if v := sr.P95() / slaMs; v > worst {
				worst = v
			}
		}
		return cellOut{total: total, worst: worst}, nil
	})
	if err != nil {
		panic(err)
	}
	for w := 0; w < windows; w++ {
		rate := trace.RateAt(float64(w) * windowMin)
		rowC := []string{fmt.Sprintf("%d", w), fmt.Sprintf("%.0f", rate)}
		rowT := append([]string(nil), rowC...)
		for pi, p := range planners {
			cell := cells[w*len(planners)+pi]
			avgContainers[p.name].Add(float64(cell.total))
			rowC = append(rowC, fmt.Sprintf("%d", cell.total))
			if cell.worst > worstTail[p.name] {
				worstTail[p.name] = cell.worst
			}
			rowT = append(rowT, f2(cell.worst))
		}
		containers.AddRow(rowC...)
		tails.AddRow(rowT...)
	}
	erms := avgContainers["erms"].Mean()
	for _, p := range planners {
		if p.name == "erms" {
			continue
		}
		containers.AddNote("erms deploys %.1f%% fewer containers than %s on average (paper: ~30%%)",
			100*(1-erms/avgContainers[p.name].Mean()), p.name)
	}
	for _, p := range planners {
		tails.AddNote("%s worst window: %.2fx SLA (paper: erms never violates; firm up to 1.5x at peaks)",
			p.name, worstTail[p.name])
	}
	return []*Table{containers, tails}
}
