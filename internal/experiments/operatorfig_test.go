package experiments

import (
	"os"
	"strings"
	"testing"

	"erms/internal/operator"
	"erms/internal/parallel"
)

// TestOperatorFixturesMatchExamples pins the embedded operator specs to the
// example files users actually run with `ermsctl operate`.
func TestOperatorFixturesMatchExamples(t *testing.T) {
	cases := []struct {
		path     string
		embedded string
	}{
		{"../../examples/specs/operator-base.yaml", operatorBaseSpecYAML},
		{"../../examples/specs/operator-good.yaml", operatorGoodSpecYAML},
		{"../../examples/specs/operator-bad.yaml", operatorBadSpecYAML},
	}
	for _, c := range cases {
		data, err := os.ReadFile(c.path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != c.embedded {
			t.Errorf("%s has drifted from the copy embedded in operatorfig.go; update the constant", c.path)
		}
	}
}

// TestFigOperatorContract is the operator acceptance gate: the benign push
// must commit within the rollout horizon, the bad push must auto-roll back,
// and the bad push must leave zero fleet-wide regression — every fleet
// window from its push onward byte-identical to a trajectory without it.
func TestFigOperatorContract(t *testing.T) {
	res, err := runOperatorScenario()
	if err != nil {
		t.Fatal(err)
	}
	if res.goodGen.Status != operator.StatusCommitted {
		t.Errorf("good push = %+v, want committed", res.goodGen)
	}
	if windows := res.goodGen.DecidedWindow - res.goodGen.PushedWindow; windows > 4 {
		t.Errorf("good push took %d windows to commit, want <= 4 (canary 2 + promote/soak)", windows)
	}
	if !res.badRolled {
		t.Errorf("bad push = %+v, want rolled-back", res.badGen)
	}
	if res.mismatch != 0 {
		t.Errorf("%d/%d fleet windows diverged from the bad-push-free control", res.mismatch, res.compared)
	}
}

// TestFigOperatorDeterministicAcrossWorkers: the rendered tables must be
// byte-identical at any worker count — the operator loop, canary sandbox,
// and rollout decisions are a pure function of (specs, pushes, windows).
func TestFigOperatorDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	seq := renderAll(t, "figOperator")
	parallel.SetWorkers(4)
	if par := renderAll(t, "figOperator"); par != seq {
		t.Errorf("figOperator differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
	for _, want := range []string{"promotion contract holds", "rollback contract holds", "isolation contract holds"} {
		if !strings.Contains(seq, want) {
			t.Errorf("missing %q in:\n%s", want, seq)
		}
	}
}
