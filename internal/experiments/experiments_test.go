package experiments

import (
	"strings"
	"testing"

	"erms/internal/apps"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "figScale", "figShard"}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered (have %v)", id, ids)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", true); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 7)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"x: demo", "a", "bb", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestFastDrivers exercises the pure-planning experiments end to end (the
// simulation-heavy ones are covered by the bench harness).
func TestFastDrivers(t *testing.T) {
	for _, id := range []string{"fig2", "fig4", "fig8", "fig11", "fig14", "fig16", "fig17", "fig18", "fig21"} {
		tables, err := Run(id, true)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tab := range tables {
			if len(tab.Rows) == 0 {
				t.Fatalf("%s/%s has no rows", id, tab.ID)
			}
		}
	}
}

func TestFig11ErmsWinsOnAverage(t *testing.T) {
	// The core §6.3 claim in plan space: Erms deploys fewer containers than
	// every baseline averaged over the sweep.
	settings := staticSettings(true)
	planners := defaultPlanners()
	sums := map[string]float64{}
	for _, s := range settings {
		for _, p := range planners {
			total, err := planSetting(p, s)
			if err != nil {
				t.Fatalf("%s: %v", p.name, err)
			}
			sums[p.name] += float64(total)
		}
	}
	for name, sum := range sums {
		if name == "erms" {
			continue
		}
		if sums["erms"] > sum {
			t.Fatalf("erms (%v) uses more containers than %s (%v)", sums["erms"], name, sum)
		}
	}
}

func TestFig16PriorityBeatsLTC(t *testing.T) {
	tables, err := Run("fig16", true)
	if err != nil {
		t.Fatal(err)
	}
	// fig16b: erms row is 1.00x, erms-ltc must exceed it.
	var b *Table
	for _, tab := range tables {
		if tab.ID == "fig16b" {
			b = tab
		}
	}
	if b == nil {
		t.Fatal("no fig16b table")
	}
	var erms, ltc string
	for _, row := range b.Rows {
		switch row[0] {
		case "erms":
			erms = row[1]
		case "erms-ltc":
			ltc = row[1]
		}
	}
	if erms == "" || ltc == "" {
		t.Fatalf("rows missing: %v", b.Rows)
	}
}

func TestHelpers(t *testing.T) {
	app := apps.HotelReservation()
	models := modelsFor(app, defaultInterference())
	if len(models) != len(app.Microservices()) {
		t.Fatal("modelsFor incomplete")
	}
	cl := paperCluster()
	shares := sharesFor(app, cl)
	for ms, r := range shares {
		if r <= 0 {
			t.Fatalf("share for %s = %v", ms, r)
		}
	}
	loads := loadsFor(app, uniformRates(app, 1000))
	if loads["search"]["frontend"] != 1000 {
		t.Fatalf("loads = %v", loads["search"])
	}
	floor := appSLAFloor(app, models, 0.3, 0.3)
	if floor <= 0 {
		t.Fatalf("floor = %v", floor)
	}
	// Floor rises with interference.
	if hot := appSLAFloor(app, models, 0.7, 0.7); hot <= floor {
		t.Fatalf("floor should rise with interference: %v vs %v", hot, floor)
	}
	st := statsFor(app, models)
	for ms, v := range st {
		if v.MeanMs <= 0 || v.VarMs < 0 {
			t.Fatalf("stats for %s: %+v", ms, v)
		}
	}
}

func TestTableFormats(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("1", "two, quoted")
	tab.AddNote("note")
	var md, csv strings.Builder
	tab.FprintMarkdown(&md)
	if !strings.Contains(md.String(), "| a | b |") || !strings.Contains(md.String(), "> note") {
		t.Fatalf("markdown:\n%s", md.String())
	}
	tab.FprintCSV(&csv)
	if !strings.Contains(csv.String(), `"two, quoted"`) {
		t.Fatalf("csv:\n%s", csv.String())
	}
}
