package experiments

import (
	"fmt"
	"math"
	"sort"

	"erms/internal/apps"
	"erms/internal/baselines"
	"erms/internal/chaos"
	"erms/internal/cluster"
	"erms/internal/core"
	"erms/internal/kube"
	"erms/internal/multiplex"
	"erms/internal/parallel"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

func init() {
	register("fig22", Fig22)
}

// fig22Seed derives every random stream of the fault experiment: the chaos
// schedule and the per-window simulation seeds.
const fig22Seed = 22

// faultWindow is one window's outcome for one resource manager.
type faultWindow struct {
	viol       float64 // mean per-service SLA violation probability
	containers int
	repaired   int
	degraded   bool
	outage     bool
}

// Fig22 is the fault-injection experiment: the Hotel Reservation application
// runs through a standard chaos schedule (host failures with detection lag,
// container crashes, interference spikes, observability gaps, transient
// control-plane errors) under three resource managers:
//
//   - erms: the resilient control loop (retry with backoff, degraded mode,
//     replacement scheduling, atomic apply);
//   - erms-naive: the same planner with every resilience mechanism off —
//     a transient control-plane fault freezes the deployment and lost
//     containers stay lost;
//   - firm: the late-detection baseline (plans against the previous
//     window's workload, blind placement, no repair, no retry).
//
// All three face the byte-identical fault schedule on identical clusters
// with identical per-window simulation seeds, so every difference in SLA
// violation probability is attributable to the control loop.
func Fig22(quick bool) []*Table {
	app := apps.HotelReservation()
	windows := 10
	windowMin := 1.2
	warmupMin := 0.3
	baseRate := 12_000.0
	if quick {
		windows = 5
		windowMin = 0.8
		warmupMin = 0.2
		baseRate = 8_000
	}
	const hosts = 20

	sched, err := chaos.Generate(chaos.Default(fig22Seed, windows, windowMin, hosts, app.Microservices()))
	if err != nil {
		panic(err)
	}
	rateAt := func(w int) float64 {
		return baseRate * (1 + 0.25*math.Sin(2*math.Pi*float64(w)/float64(windows)))
	}
	simSeed := func(w int) uint64 { return fig22Seed + 500*uint64(w) + 33 }

	runners := []struct {
		name string
		run  func() ([]faultWindow, error)
	}{
		{"erms", func() ([]faultWindow, error) {
			return runResilientErms(app, sched, windows, windowMin, warmupMin, rateAt, simSeed)
		}},
		{"erms-naive", func() ([]faultWindow, error) {
			return runNaiveErms(app, sched, windows, windowMin, warmupMin, rateAt, simSeed)
		}},
		{"firm", func() ([]faultWindow, error) {
			return runFirm(app, sched, windows, windowMin, warmupMin, rateAt, simSeed)
		}},
	}
	// The three managers are independent closed systems on private clusters;
	// only the (read-only) schedule and app are shared. Each runs its windows
	// sequentially — the loop is stateful — so the fan-out is per manager.
	series, err := parallel.Map(len(runners), func(i int) ([]faultWindow, error) {
		return runners[i].run()
	})
	if err != nil {
		panic(err)
	}

	viol := &Table{
		ID:     "fig22a",
		Title:  "SLA violation probability per window under the standard fault schedule",
		Header: []string{"window", "workload req/min", "faults"},
	}
	containers := &Table{
		ID:     "fig22b",
		Title:  "Containers deployed per window under faults (repairs included)",
		Header: []string{"window", "faults"},
	}
	for _, r := range runners {
		viol.Header = append(viol.Header, r.name)
		containers.Header = append(containers.Header, r.name)
	}
	means := make([]*stats.Moments, len(runners))
	degraded := make([]int, len(runners))
	outages := make([]int, len(runners))
	repaired := make([]int, len(runners))
	for i := range runners {
		means[i] = &stats.Moments{}
	}
	for w := 0; w < windows; w++ {
		rowV := []string{fmt.Sprintf("%d", w), fmt.Sprintf("%.0f", rateAt(w)), sched.Summary(w)}
		rowC := []string{fmt.Sprintf("%d", w), sched.Summary(w)}
		for i := range runners {
			cell := series[i][w]
			means[i].Add(cell.viol)
			repaired[i] += cell.repaired
			mark := ""
			if cell.degraded {
				degraded[i]++
				mark = "*"
			}
			if cell.outage {
				outages[i]++
				mark = "!"
			}
			rowV = append(rowV, f3(cell.viol)+mark)
			rowC = append(rowC, fmt.Sprintf("%d", cell.containers))
		}
		viol.AddRow(rowV...)
		containers.AddRow(rowC...)
	}
	for i, r := range runners {
		viol.AddNote("%s: mean violation probability %s, degraded windows %d (*), outage windows %d (!)",
			r.name, f3(means[i].Mean()), degraded[i], outages[i])
	}
	viol.AddNote("expected: resilient erms stays lowest — repairs restore capacity after node deaths and retries absorb control-plane faults; the naive loop freezes and accumulates capacity loss")
	containers.AddNote("erms replacement scheduling re-placed %d containers lost to failed hosts; the other managers never repair", repaired[0])
	return []*Table{viol, containers}
}

// meanViolation averages the per-service violation probabilities of a report.
func meanViolation(v map[string]float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// windowDropMinutes mirrors the resilient loop's observability-gap span: all
// minutes of the window's simulation.
func windowDropMinutes(windowMin float64) []int {
	var out []int
	for m := 0; m < int(windowMin)+1; m++ {
		out = append(out, m)
	}
	return out
}

// runResilientErms drives the full resilient control loop (retry, degraded
// mode, repair) with the chaos injector plugged into both the loop and the
// substrate.
func runResilientErms(app *apps.App, sched *chaos.Schedule, windows int, windowMin, warmupMin float64,
	rateAt func(int) float64, simSeed func(int) uint64) ([]faultWindow, error) {
	orch := kube.New(cluster.New(sched.Cfg.Hosts, cluster.PaperHost), nil)
	ctrl, err := core.New(app, orch)
	if err != nil {
		return nil, err
	}
	ctrl.UseAnalyticModels()
	rec := core.NewReconciler(ctrl)
	rec.WindowMin = windowMin
	rec.WarmupMin = warmupMin
	inj := chaos.NewInjector(sched, orch)
	rec.Chaos = inj

	out := make([]faultWindow, windows)
	for w := 0; w < windows; w++ {
		if _, err := inj.BeginWindow(w); err != nil {
			return nil, err
		}
		rep, err := rec.Step(uniformRates(app, rateAt(w)), simSeed(w))
		if err != nil {
			return nil, fmt.Errorf("resilient erms window %d: %w", w, err)
		}
		if err := inj.EndWindow(w); err != nil {
			return nil, err
		}
		out[w] = faultWindow{
			viol:       meanViolation(rep.Violations),
			containers: rep.Containers,
			repaired:   rep.Repaired,
			degraded:   rep.Degraded,
			outage:     rep.Outage,
		}
	}
	return out, nil
}

// runNaiveErms drives the pre-resilience loop: same planner, but a transient
// control-plane fault freezes the deployment for the window (no retry, no
// degraded-mode bookkeeping beyond reusing the last plan's priorities) and
// containers lost to dead hosts are never re-placed.
func runNaiveErms(app *apps.App, sched *chaos.Schedule, windows int, windowMin, warmupMin float64,
	rateAt func(int) float64, simSeed func(int) uint64) ([]faultWindow, error) {
	orch := kube.New(cluster.New(sched.Cfg.Hosts, cluster.PaperHost), nil)
	ctrl, err := core.New(app, orch)
	if err != nil {
		return nil, err
	}
	ctrl.UseAnalyticModels()
	inj := chaos.NewInjector(sched, orch)

	var last *multiplex.Plan
	out := make([]faultWindow, windows)
	for w := 0; w < windows; w++ {
		if _, err := inj.BeginWindow(w); err != nil {
			return nil, err
		}
		rates := uniformRates(app, rateAt(w))
		plan, frozen := last, false
		if inj.OpError(w, "plan", 0) == nil {
			if p, err := ctrl.Plan(rates); err == nil {
				if inj.OpError(w, "apply", 0) == nil {
					if err := ctrl.Apply(p); err == nil {
						plan, last = p, p
					} else {
						frozen = true // rollback restored the old deployment
					}
				} else {
					frozen = true
				}
			} else {
				frozen = true
			}
		} else {
			frozen = true
		}

		cell := faultWindow{degraded: frozen, containers: orch.Cluster().NumContainers()}
		if plan == nil {
			cell.outage, cell.viol = true, 1
		} else {
			opts := core.EvalOpts{Failures: inj.WindowFailures(w)}
			if inj.ObservabilityGap(w) {
				opts.DropMinutes = windowDropMinutes(windowMin)
			}
			res, err := ctrl.EvaluateDeployed(plan, rates, windowMin, warmupMin, simSeed(w), opts)
			if err != nil {
				// Un-runnable window (e.g. a microservice with zero live
				// containers): every request misses its SLA.
				cell.outage, cell.viol = true, 1
			} else {
				cell.viol = meanViolation(res.Violations)
			}
		}
		if err := inj.EndWindow(w); err != nil {
			return nil, err
		}
		out[w] = cell
	}
	return out, nil
}

// runFirm drives the Firm baseline through the same schedule: stale-workload
// planning (the previous window's rate), blind placement, no repair, and a
// control-plane fault skips the window's replan entirely.
func runFirm(app *apps.App, sched *chaos.Schedule, windows int, windowMin, warmupMin float64,
	rateAt func(int) float64, simSeed func(int) uint64) ([]faultWindow, error) {
	cl := cluster.New(sched.Cfg.Hosts, cluster.PaperHost)
	orch := kube.New(cl, kube.BlindSpread{})
	inj := chaos.NewInjector(sched, orch)
	firm := baselinePlanner(baselines.Firm{})

	deployed := false
	out := make([]faultWindow, windows)
	for w := 0; w < windows; w++ {
		if _, err := inj.BeginWindow(w); err != nil {
			return nil, err
		}
		staleW := w - 1
		if staleW < 0 {
			staleW = 0
		}
		if inj.OpError(w, "plan", 0) == nil && inj.OpError(w, "apply", 0) == nil {
			pc := newContext(app, uniformRates(app, rateAt(staleW)), 0, cl.MeanCPUUtil(), cl.MeanMemUtil())
			res, err := firm.run(pc)
			if err != nil {
				return nil, err
			}
			mss := make([]string, 0, len(res.merged))
			for ms := range res.merged {
				mss = append(mss, ms)
			}
			sort.Strings(mss)
			for _, ms := range mss {
				// Best effort: on a degraded cluster Firm deploys what fits.
				_ = orch.Apply(app.Containers[ms], res.merged[ms])
			}
			deployed = true
		} else {
			out[w].degraded = true
		}

		cell := out[w]
		cell.containers = cl.NumContainers()
		if !deployed {
			cell.outage, cell.viol = true, 1
		} else {
			cell.viol, cell.outage = measureFirmWindow(app, cl, uniformRates(app, rateAt(w)),
				windowMin, warmupMin, simSeed(w), inj.WindowFailures(w), inj.ObservabilityGap(w))
		}
		if err := inj.EndWindow(w); err != nil {
			return nil, err
		}
		out[w] = cell
	}
	return out, nil
}

// measureFirmWindow simulates one window of the Firm deployment under the
// injected failures; an un-runnable window counts as a full outage.
func measureFirmWindow(app *apps.App, cl *cluster.Cluster, rates map[string]float64,
	windowMin, warmupMin float64, seed uint64, failures []sim.Failure, obsGap bool) (float64, bool) {
	patterns := make(map[string]workload.Pattern, len(rates))
	for svc, r := range rates {
		patterns[svc] = workload.Static{Rate: r}
	}
	cfg := sim.Config{
		Seed:           seed,
		Cluster:        cl,
		Interference:   defaultInterference(),
		Profiles:       app.Profiles,
		Graphs:         app.Graphs,
		Patterns:       patterns,
		SLAs:           app.SLAs,
		DurationMin:    windowMin,
		WarmupMin:      warmupMin,
		NetworkDelayMs: 0.05,
		Failures:       failures,
	}
	if obsGap {
		cfg.DropMinutes = windowDropMinutes(windowMin)
	}
	rt, err := sim.NewRuntime(cfg)
	if err != nil {
		return 1, true
	}
	res := rt.Run()
	v := make(map[string]float64, len(res.PerService))
	for svc, sr := range res.PerService {
		v[svc] = sr.ViolationRate()
	}
	return meanViolation(v), false
}
