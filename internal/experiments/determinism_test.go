package experiments

import (
	"strings"
	"testing"

	"erms/internal/parallel"
)

// renderAll runs one experiment and renders every table to text.
func renderAll(t *testing.T, id string) string {
	t.Helper()
	tables, err := Run(id, true)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	for _, tab := range tables {
		tab.Fprint(&sb)
	}
	return sb.String()
}

// TestTablesIdenticalAcrossWorkers is the parallelism determinism contract:
// every experiment table must be byte-identical whether the independent runs
// execute on one worker or many. Seeds are assigned per flat run index and
// results folded back in index order, so worker count must never leak into
// the output. fig17/fig20 are excluded: their tables contain wall-clock
// columns and are sequential by design.
func TestTablesIdenticalAcrossWorkers(t *testing.T) {
	ids := []string{"fig5", "fig11", "fig14", "fig16", "fig18", "fig21"}
	defer parallel.SetWorkers(0)

	parallel.SetWorkers(1)
	sequential := make(map[string]string, len(ids))
	for _, id := range ids {
		sequential[id] = renderAll(t, id)
	}

	parallel.SetWorkers(4)
	for _, id := range ids {
		if got := renderAll(t, id); got != sequential[id] {
			t.Errorf("%s differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
				id, sequential[id], got)
		}
	}
}

// TestTablesStableAcrossRuns guards against map-iteration order leaking into
// the folds: the same driver run twice at the same worker count must agree.
func TestTablesStableAcrossRuns(t *testing.T) {
	for _, id := range []string{"fig5", "fig16", "fig21"} {
		a := renderAll(t, id)
		b := renderAll(t, id)
		if a != b {
			t.Errorf("%s is not stable across reruns:\n--- first ---\n%s\n--- second ---\n%s", id, a, b)
		}
	}
}

// renderDeterministic renders only a driver's deterministic tables, dropping
// any whose ID marks them as wall-clock (the "-time" suffix).
func renderDeterministic(t *testing.T, id string) string {
	t.Helper()
	tables, err := Run(id, true)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	for _, tab := range tables {
		if strings.HasSuffix(tab.ID, "-time") {
			continue
		}
		tab.Fprint(&sb)
	}
	return sb.String()
}

// TestFigScaleDeterministicAcrossWorkers pins the figScale contract: the
// deterministic table (topology shape, plan size, naive-vs-compiled
// bit-identity) is byte-identical whether the parallel planner runs on one
// worker or four. The wall-clock companion table is masked out, as fig17 and
// fig20 are excluded from TestTablesIdenticalAcrossWorkers.
func TestFigScaleDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	w1 := renderDeterministic(t, "figScale")
	parallel.SetWorkers(4)
	w4 := renderDeterministic(t, "figScale")
	if w1 != w4 {
		t.Errorf("figScale differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", w1, w4)
	}
	if !strings.Contains(w1, "true") || strings.Contains(w1, "false") {
		t.Errorf("figScale: compiled plans not bit-identical to naive:\n%s", w1)
	}
}

// TestFigShardDeterministicAcrossWorkers pins the figShard contract: the
// deterministic table (topology shape, skip/dirty counters, incremental
// shards=1 and shards=4 bit-identity against the monolithic planner) is
// byte-identical whether the shard fan-out runs on one worker or four, and
// every bit-identity column reads true.
func TestFigShardDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	w1 := renderDeterministic(t, "figShard")
	parallel.SetWorkers(4)
	w4 := renderDeterministic(t, "figShard")
	if w1 != w4 {
		t.Errorf("figShard differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", w1, w4)
	}
	if !strings.Contains(w1, "true") || strings.Contains(w1, "false") {
		t.Errorf("figShard: incremental plans not bit-identical to monolithic:\n%s", w1)
	}
}
