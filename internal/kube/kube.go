// Package kube is a miniature in-process container orchestrator standing in
// for Kubernetes: deployments with replica counts, a pluggable scheduler
// that picks hosts for new containers (and victims for scale-down), and
// watch hooks. Erms' Online Scaling and Resource Provisioning modules drive
// the cluster exclusively through this API, mirroring the paper's prototype,
// which issues scaling actions through the Kubernetes client (§5.5).
package kube

import (
	"fmt"
	"sort"

	"erms/internal/cluster"
	"erms/internal/obs"
)

// Scheduler decides where new containers go and which containers leave.
type Scheduler interface {
	// Place returns the host ID for one new container of the given spec.
	Place(cl *cluster.Cluster, spec cluster.ContainerSpec) (int, error)
	// Evict returns the container of the microservice to remove next.
	Evict(cl *cluster.Cluster, microservice string) (*cluster.Container, error)
}

// Spread is the default Kubernetes-like scheduler: it places each container
// on the feasible host with the lowest requested-CPU fraction (spreading
// load) and evicts from the most loaded host. It is deliberately unaware of
// actual interference — that is Erms' provisioning module's job (§5.4,
// compared against this baseline in Fig. 15).
type Spread struct{}

// Place picks the feasible host with the most free CPU.
func (Spread) Place(cl *cluster.Cluster, spec cluster.ContainerSpec) (int, error) {
	best, bestFree := -1, -1.0
	for _, h := range cl.Hosts() {
		if !h.Fits(spec) {
			continue
		}
		if free := h.CPUFree(); free > bestFree {
			best, bestFree = h.ID, free
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("kube: no host fits container %s", spec.Microservice)
	}
	return best, nil
}

// Evict picks a container of the microservice on the host with the least
// free CPU (the most packed host).
func (Spread) Evict(cl *cluster.Cluster, microservice string) (*cluster.Container, error) {
	cs := cl.ContainersFor(microservice)
	if len(cs) == 0 {
		return nil, fmt.Errorf("kube: no containers of %s to evict", microservice)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Host.CPUFree() < cs[j].Host.CPUFree() })
	return cs[0], nil
}

// BlindSpread models the stock Kubernetes scheduler more faithfully than
// Spread for colocated clusters: it balances *requested* pod resources and
// is completely blind to the background batch load on each host (batch jobs
// run outside the orchestrator), which is precisely why the paper's K8s
// baseline lands latency-critical containers on interference-heavy hosts
// (§6.4.3, Fig. 15).
type BlindSpread struct{}

// Place picks the feasible host with the least container-requested CPU,
// ignoring background load (but still respecting hard capacity).
func (BlindSpread) Place(cl *cluster.Cluster, spec cluster.ContainerSpec) (int, error) {
	best, bestReq := -1, 0.0
	for _, h := range cl.Hosts() {
		if !h.Fits(spec) {
			continue
		}
		var req float64
		for _, c := range h.Containers() {
			req += c.Spec.CPU
		}
		if best < 0 || req < bestReq {
			best, bestReq = h.ID, req
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("kube: no host fits container %s", spec.Microservice)
	}
	return best, nil
}

// Evict removes from the host with the most requested CPU.
func (BlindSpread) Evict(cl *cluster.Cluster, microservice string) (*cluster.Container, error) {
	cs := cl.ContainersFor(microservice)
	if len(cs) == 0 {
		return nil, fmt.Errorf("kube: no containers of %s to evict", microservice)
	}
	reqOf := func(h *cluster.Host) float64 {
		var req float64
		for _, c := range h.Containers() {
			req += c.Spec.CPU
		}
		return req
	}
	sort.Slice(cs, func(i, j int) bool { return reqOf(cs[i].Host) > reqOf(cs[j].Host) })
	return cs[0], nil
}

// EventType describes an orchestration action.
type EventType int

// Orchestration event types.
const (
	EventCreate EventType = iota
	EventScaleUp
	EventScaleDown
	EventDelete
	// EventCordon / EventUncordon toggle a node's schedulability.
	EventCordon
	EventUncordon
	// EventDrain reports containers migrated off a node.
	EventDrain
	// EventNodeFail reports a node failure; Delta is the (negative) number of
	// containers lost with it.
	EventNodeFail
	// EventNodeRecover reports a failed node rejoining the cluster.
	EventNodeRecover
	// EventRepair reports replacement containers placed for a deployment that
	// had fewer live containers than desired replicas (e.g. after a node
	// failure).
	EventRepair
)

func (t EventType) String() string {
	switch t {
	case EventCreate:
		return "create"
	case EventScaleUp:
		return "scale-up"
	case EventScaleDown:
		return "scale-down"
	case EventDelete:
		return "delete"
	case EventCordon:
		return "cordon"
	case EventUncordon:
		return "uncordon"
	case EventDrain:
		return "drain"
	case EventNodeFail:
		return "node-fail"
	case EventNodeRecover:
		return "node-recover"
	case EventRepair:
		return "repair"
	default:
		return "unknown"
	}
}

// Event is emitted to watchers on every orchestration action.
type Event struct {
	Type         EventType
	Microservice string
	// Delta is the replica-count change (positive for scale-up).
	Delta int
	// Replicas is the resulting replica count.
	Replicas int
	// Host identifies the node for node-scoped events (cordon, drain,
	// node-fail, node-recover); -1 otherwise.
	Host int
}

// Deployment tracks the desired state of one microservice.
type Deployment struct {
	Spec     cluster.ContainerSpec
	Replicas int
}

// Orchestrator reconciles deployments onto the cluster.
type Orchestrator struct {
	cl          *cluster.Cluster
	sched       Scheduler
	deployments map[string]*Deployment
	watchers    []func(Event)
	rec         *obs.Recorder
}

// New creates an orchestrator over the cluster with the given scheduler
// (Spread when nil).
func New(cl *cluster.Cluster, sched Scheduler) *Orchestrator {
	if sched == nil {
		sched = Spread{}
	}
	return &Orchestrator{
		cl:          cl,
		sched:       sched,
		deployments: make(map[string]*Deployment),
	}
}

// Cluster exposes the underlying cluster (read-mostly; scaling should go
// through the orchestrator).
func (o *Orchestrator) Cluster() *cluster.Cluster { return o.cl }

// SetScheduler swaps the placement policy (e.g. Erms' interference-aware
// provisioner).
func (o *Orchestrator) SetScheduler(s Scheduler) {
	if s != nil {
		o.sched = s
	}
}

// Watch registers a hook invoked on every orchestration event.
func (o *Orchestrator) Watch(fn func(Event)) { o.watchers = append(o.watchers, fn) }

// SetRecorder attaches the control plane's self-observability recorder;
// every orchestration event is counted under erms.self.kube_*. A nil
// recorder detaches (the emit path then costs a single nil check).
func (o *Orchestrator) SetRecorder(r *obs.Recorder) { o.rec = r }

func (o *Orchestrator) emit(e Event) {
	if o.rec != nil {
		o.rec.Inc(obs.KubeEventCounter(e.Type.String()))
	}
	for _, w := range o.watchers {
		w(e)
	}
}

// Apply creates (or updates the spec of) a deployment and reconciles it to
// the given replica count.
func (o *Orchestrator) Apply(spec cluster.ContainerSpec, replicas int) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if replicas < 0 {
		return fmt.Errorf("kube: negative replica count %d for %s", replicas, spec.Microservice)
	}
	d, ok := o.deployments[spec.Microservice]
	if !ok {
		d = &Deployment{Spec: spec}
		o.deployments[spec.Microservice] = d
		o.emit(Event{Type: EventCreate, Microservice: spec.Microservice, Host: -1})
	} else {
		d.Spec = spec
	}
	return o.Scale(spec.Microservice, replicas)
}

// Scale reconciles a deployment to the desired replica count, placing or
// evicting containers one at a time through the scheduler.
func (o *Orchestrator) Scale(microservice string, replicas int) error {
	d, ok := o.deployments[microservice]
	if !ok {
		return fmt.Errorf("kube: unknown deployment %s", microservice)
	}
	if replicas < 0 {
		return fmt.Errorf("kube: negative replica count %d for %s", replicas, microservice)
	}
	current := o.cl.CountFor(microservice)
	switch {
	case replicas > current:
		for i := current; i < replicas; i++ {
			host, err := o.sched.Place(o.cl, d.Spec)
			if err != nil {
				d.Replicas = o.cl.CountFor(microservice)
				return err
			}
			if _, err := o.cl.Place(d.Spec, host); err != nil {
				d.Replicas = o.cl.CountFor(microservice)
				return err
			}
		}
		d.Replicas = replicas
		o.emit(Event{Type: EventScaleUp, Microservice: microservice, Delta: replicas - current, Replicas: replicas, Host: -1})
	case replicas < current:
		for i := current; i > replicas; i-- {
			victim, err := o.sched.Evict(o.cl, microservice)
			if err != nil {
				d.Replicas = o.cl.CountFor(microservice)
				return err
			}
			if err := o.cl.Remove(victim.ID); err != nil {
				d.Replicas = o.cl.CountFor(microservice)
				return err
			}
		}
		d.Replicas = replicas
		o.emit(Event{Type: EventScaleDown, Microservice: microservice, Delta: replicas - current, Replicas: replicas, Host: -1})
	default:
		d.Replicas = replicas
	}
	return nil
}

// Delete removes a deployment and all of its containers.
func (o *Orchestrator) Delete(microservice string) error {
	if _, ok := o.deployments[microservice]; !ok {
		return fmt.Errorf("kube: unknown deployment %s", microservice)
	}
	if err := o.Scale(microservice, 0); err != nil {
		return err
	}
	delete(o.deployments, microservice)
	o.emit(Event{Type: EventDelete, Microservice: microservice, Host: -1})
	return nil
}

// Replicas returns the desired replica count of a deployment (0 if unknown).
func (o *Orchestrator) Replicas(microservice string) int {
	if d, ok := o.deployments[microservice]; ok {
		return d.Replicas
	}
	return 0
}

// Deployments returns the deployment names, sorted.
func (o *Orchestrator) Deployments() []string {
	out := make([]string, 0, len(o.deployments))
	for name := range o.deployments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalReplicas returns the sum of desired replicas across deployments —
// the "number of deployed containers" metric of the evaluation.
func (o *Orchestrator) TotalReplicas() int {
	t := 0
	for _, d := range o.deployments {
		t += d.Replicas
	}
	return t
}

// Deployment returns a copy of the named deployment's desired state.
func (o *Orchestrator) Deployment(microservice string) (Deployment, bool) {
	d, ok := o.deployments[microservice]
	if !ok {
		return Deployment{}, false
	}
	return *d, true
}

// Cordon marks a node unschedulable: running containers stay, new placements
// skip it.
func (o *Orchestrator) Cordon(hostID int) error {
	h := o.cl.Host(hostID)
	if h == nil {
		return fmt.Errorf("kube: no host %d", hostID)
	}
	if h.Cordoned() {
		return nil
	}
	h.SetCordoned(true)
	o.emit(Event{Type: EventCordon, Host: hostID})
	return nil
}

// Uncordon makes a cordoned node schedulable again.
func (o *Orchestrator) Uncordon(hostID int) error {
	h := o.cl.Host(hostID)
	if h == nil {
		return fmt.Errorf("kube: no host %d", hostID)
	}
	if !h.Cordoned() {
		return nil
	}
	h.SetCordoned(false)
	o.emit(Event{Type: EventUncordon, Host: hostID})
	return nil
}

// Drain cordons a node and migrates its containers to other hosts through
// the scheduler. A container that fits nowhere else stops the drain with an
// error; containers already moved stay moved (the node remains cordoned).
func (o *Orchestrator) Drain(hostID int) error {
	h := o.cl.Host(hostID)
	if h == nil {
		return fmt.Errorf("kube: no host %d", hostID)
	}
	if err := o.Cordon(hostID); err != nil {
		return err
	}
	moved := 0
	for _, c := range h.Containers() {
		dst, err := o.sched.Place(o.cl, c.Spec)
		if err != nil {
			return fmt.Errorf("kube: draining host %d after %d moves: %w", hostID, moved, err)
		}
		if err := o.cl.Remove(c.ID); err != nil {
			return err
		}
		if _, err := o.cl.Place(c.Spec, dst); err != nil {
			return err
		}
		moved++
	}
	o.emit(Event{Type: EventDrain, Host: hostID, Delta: moved})
	return nil
}

// FailNode takes a node down hard: its containers are lost immediately (no
// graceful migration) and the node stops accepting placements. Desired
// replica counts are untouched — deployments are left under-replicated until
// Repair (or the next Scale) places replacements, mirroring how a Kubernetes
// deployment converges after kubelet loss.
func (o *Orchestrator) FailNode(hostID int) error {
	h := o.cl.Host(hostID)
	if h == nil {
		return fmt.Errorf("kube: no host %d", hostID)
	}
	if h.Down() {
		return nil
	}
	lost := h.Containers()
	for _, c := range lost {
		if err := o.cl.Remove(c.ID); err != nil {
			return err
		}
	}
	h.SetDown(true)
	o.emit(Event{Type: EventNodeFail, Host: hostID, Delta: -len(lost)})
	return nil
}

// RecoverNode brings a failed node back as an empty, schedulable host.
func (o *Orchestrator) RecoverNode(hostID int) error {
	h := o.cl.Host(hostID)
	if h == nil {
		return fmt.Errorf("kube: no host %d", hostID)
	}
	if !h.Down() {
		return nil
	}
	h.SetDown(false)
	o.emit(Event{Type: EventNodeRecover, Host: hostID})
	return nil
}

// Repair places replacement containers for every deployment whose live
// container count fell below its desired replicas (containers lost to failed
// nodes). It proceeds best-effort across deployments in sorted order and
// returns how many replacements were placed plus the first placement error,
// if any (a cluster too degraded to hold the full desired state).
func (o *Orchestrator) Repair() (int, error) {
	names := make([]string, 0, len(o.deployments))
	for name := range o.deployments {
		names = append(names, name)
	}
	sort.Strings(names)
	replaced := 0
	var firstErr error
	for _, ms := range names {
		d := o.deployments[ms]
		placed := 0
		for o.cl.CountFor(ms) < d.Replicas {
			host, err := o.sched.Place(o.cl, d.Spec)
			if err == nil {
				_, err = o.cl.Place(d.Spec, host)
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("kube: repairing %s: %w", ms, err)
				}
				break
			}
			placed++
		}
		if placed > 0 {
			replaced += placed
			o.emit(Event{Type: EventRepair, Microservice: ms, Delta: placed, Replicas: d.Replicas, Host: -1})
		}
	}
	return replaced, firstErr
}
