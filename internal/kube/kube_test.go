package kube

import (
	"testing"

	"erms/internal/cluster"
	"erms/internal/workload"
)

func newOrch(hosts int) *Orchestrator {
	return New(cluster.New(hosts, cluster.PaperHost), nil)
}

func TestApplyAndScaleUp(t *testing.T) {
	o := newOrch(3)
	if err := o.Apply(cluster.PaperContainer("a"), 5); err != nil {
		t.Fatal(err)
	}
	if o.Replicas("a") != 5 || o.Cluster().CountFor("a") != 5 {
		t.Fatalf("replicas=%d placed=%d", o.Replicas("a"), o.Cluster().CountFor("a"))
	}
	if o.TotalReplicas() != 5 {
		t.Fatalf("total = %d", o.TotalReplicas())
	}
}

func TestScaleDown(t *testing.T) {
	o := newOrch(3)
	if err := o.Apply(cluster.PaperContainer("a"), 6); err != nil {
		t.Fatal(err)
	}
	if err := o.Scale("a", 2); err != nil {
		t.Fatal(err)
	}
	if o.Cluster().CountFor("a") != 2 || o.Replicas("a") != 2 {
		t.Fatalf("after scale-down: placed=%d", o.Cluster().CountFor("a"))
	}
}

func TestScaleErrors(t *testing.T) {
	o := newOrch(1)
	if err := o.Scale("missing", 1); err == nil {
		t.Fatal("unknown deployment accepted")
	}
	if err := o.Apply(cluster.PaperContainer("a"), -1); err == nil {
		t.Fatal("negative replicas accepted")
	}
	if err := o.Apply(cluster.ContainerSpec{}, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestScaleUpCapacityExhaustion(t *testing.T) {
	cl := cluster.New(1, cluster.HostSpec{Cores: 1, MemGB: 4}) // 10 x 0.1-core containers max
	o := New(cl, nil)
	err := o.Apply(cluster.PaperContainer("a"), 50)
	if err == nil {
		t.Fatal("over-capacity apply should error")
	}
	// Partial progress is reflected in the deployment state.
	if got := o.Replicas("a"); got != cl.CountFor("a") {
		t.Fatalf("replicas %d != placed %d", got, cl.CountFor("a"))
	}
	if cl.CountFor("a") != 10 {
		t.Fatalf("placed = %d, want 10", cl.CountFor("a"))
	}
}

func TestSpreadBalances(t *testing.T) {
	o := newOrch(4)
	if err := o.Apply(cluster.PaperContainer("a"), 8); err != nil {
		t.Fatal(err)
	}
	for _, h := range o.Cluster().Hosts() {
		if got := len(h.Containers()); got != 2 {
			t.Fatalf("host %d has %d containers, want 2", h.ID, got)
		}
	}
}

func TestSpreadAvoidsBusyHosts(t *testing.T) {
	cl := cluster.New(2, cluster.PaperHost)
	cl.SetBackground(0, workload.Interference{CPU: 0.9})
	o := New(cl, nil)
	if err := o.Apply(cluster.PaperContainer("a"), 4); err != nil {
		t.Fatal(err)
	}
	if got := len(cl.Host(1).Containers()); got != 4 {
		t.Fatalf("busy host received containers: host1 has %d", got)
	}
}

func TestEvictFromMostPackedHost(t *testing.T) {
	cl := cluster.New(2, cluster.PaperHost)
	// Host 0 heavily loaded by background.
	cl.SetBackground(0, workload.Interference{CPU: 0.5})
	cl.Place(cluster.PaperContainer("a"), 0)
	cl.Place(cluster.PaperContainer("a"), 1)
	victim, err := (Spread{}).Evict(cl, "a")
	if err != nil {
		t.Fatal(err)
	}
	if victim.Host.ID != 0 {
		t.Fatalf("evicted from host %d, want the packed host 0", victim.Host.ID)
	}
	if _, err := (Spread{}).Evict(cl, "none"); err == nil {
		t.Fatal("evicting unknown microservice should error")
	}
}

func TestDelete(t *testing.T) {
	o := newOrch(2)
	o.Apply(cluster.PaperContainer("a"), 3)
	if err := o.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if o.Cluster().CountFor("a") != 0 || len(o.Deployments()) != 0 {
		t.Fatal("delete incomplete")
	}
	if err := o.Delete("a"); err == nil {
		t.Fatal("double delete should error")
	}
}

func TestWatchEvents(t *testing.T) {
	o := newOrch(2)
	var events []Event
	o.Watch(func(e Event) { events = append(events, e) })
	o.Apply(cluster.PaperContainer("a"), 2)
	o.Scale("a", 5)
	o.Scale("a", 5) // no-op: no event
	o.Scale("a", 1)
	o.Delete("a")
	types := make([]EventType, len(events))
	for i, e := range events {
		types[i] = e.Type
	}
	want := []EventType{EventCreate, EventScaleUp, EventScaleUp, EventScaleDown, EventScaleDown, EventDelete}
	if len(types) != len(want) {
		t.Fatalf("events = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, types[i], want[i])
		}
	}
	// Check deltas on the interesting ones.
	if events[1].Delta != 2 || events[2].Delta != 3 || events[3].Delta != -4 {
		t.Fatalf("deltas wrong: %+v", events)
	}
}

func TestApplyUpdatesSpec(t *testing.T) {
	o := newOrch(2)
	o.Apply(cluster.PaperContainer("a"), 1)
	bigger := cluster.PaperContainer("a")
	bigger.CPU = 0.2
	if err := o.Apply(bigger, 2); err != nil {
		t.Fatal(err)
	}
	// New containers use the updated spec.
	cs := o.Cluster().ContainersFor("a")
	if len(cs) != 2 {
		t.Fatalf("containers = %d", len(cs))
	}
	if cs[1].Spec.CPU != 0.2 {
		t.Fatalf("new container spec cpu = %v", cs[1].Spec.CPU)
	}
}

func TestDeploymentsSorted(t *testing.T) {
	o := newOrch(2)
	o.Apply(cluster.PaperContainer("z"), 1)
	o.Apply(cluster.PaperContainer("a"), 1)
	ds := o.Deployments()
	if len(ds) != 2 || ds[0] != "a" || ds[1] != "z" {
		t.Fatalf("deployments = %v", ds)
	}
}

func TestEventTypeStrings(t *testing.T) {
	for _, et := range []EventType{EventCreate, EventScaleUp, EventScaleDown, EventDelete, EventType(99)} {
		if et.String() == "" {
			t.Fatal("empty event type string")
		}
	}
}

func TestBlindSpreadIgnoresBackground(t *testing.T) {
	cl := cluster.New(2, cluster.PaperHost)
	// Host 0 is saturated by batch jobs — invisible to the stock scheduler.
	cl.SetBackground(0, workload.Interference{CPU: 0.9, Mem: 0.2})
	o := New(cl, BlindSpread{})
	// Requests balance evenly across both hosts despite the batch load,
	// as long as hard capacity allows.
	if err := o.Apply(cluster.PaperContainer("a"), 6); err != nil {
		t.Fatal(err)
	}
	if len(cl.Host(0).Containers()) != 3 || len(cl.Host(1).Containers()) != 3 {
		t.Fatalf("blind spread placed %d/%d, want 3/3",
			len(cl.Host(0).Containers()), len(cl.Host(1).Containers()))
	}
}

func TestBlindSpreadRespectsHardCapacity(t *testing.T) {
	cl := cluster.New(2, cluster.HostSpec{Cores: 1, MemGB: 4})
	cl.SetBackground(0, workload.Interference{CPU: 0.95})
	o := New(cl, BlindSpread{})
	// Host 0 only fits 0.05 cores of requests: everything lands on host 1.
	if err := o.Apply(cluster.PaperContainer("a"), 5); err != nil {
		t.Fatal(err)
	}
	if got := len(cl.Host(1).Containers()); got != 5 {
		t.Fatalf("host1 = %d containers", got)
	}
}

func TestBlindSpreadEvict(t *testing.T) {
	cl := cluster.New(2, cluster.PaperHost)
	cl.Place(cluster.PaperContainer("a"), 0)
	cl.Place(cluster.PaperContainer("a"), 0)
	cl.Place(cluster.PaperContainer("a"), 1)
	victim, err := (BlindSpread{}).Evict(cl, "a")
	if err != nil {
		t.Fatal(err)
	}
	if victim.Host.ID != 0 {
		t.Fatalf("evicted from host %d, want the request-heavy host 0", victim.Host.ID)
	}
	if _, err := (BlindSpread{}).Evict(cl, "none"); err == nil {
		t.Fatal("missing microservice accepted")
	}
}

func TestBlindSpreadNoFit(t *testing.T) {
	cl := cluster.New(1, cluster.HostSpec{Cores: 1, MemGB: 4})
	cl.SetBackground(0, workload.Interference{CPU: 1})
	if _, err := (BlindSpread{}).Place(cl, cluster.PaperContainer("a")); err == nil {
		t.Fatal("full cluster accepted")
	}
}
