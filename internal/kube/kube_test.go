package kube

import (
	"strings"
	"testing"

	"erms/internal/cluster"
	"erms/internal/workload"
)

func newOrch(hosts int) *Orchestrator {
	return New(cluster.New(hosts, cluster.PaperHost), nil)
}

func TestApplyAndScaleUp(t *testing.T) {
	o := newOrch(3)
	if err := o.Apply(cluster.PaperContainer("a"), 5); err != nil {
		t.Fatal(err)
	}
	if o.Replicas("a") != 5 || o.Cluster().CountFor("a") != 5 {
		t.Fatalf("replicas=%d placed=%d", o.Replicas("a"), o.Cluster().CountFor("a"))
	}
	if o.TotalReplicas() != 5 {
		t.Fatalf("total = %d", o.TotalReplicas())
	}
}

func TestScaleDown(t *testing.T) {
	o := newOrch(3)
	if err := o.Apply(cluster.PaperContainer("a"), 6); err != nil {
		t.Fatal(err)
	}
	if err := o.Scale("a", 2); err != nil {
		t.Fatal(err)
	}
	if o.Cluster().CountFor("a") != 2 || o.Replicas("a") != 2 {
		t.Fatalf("after scale-down: placed=%d", o.Cluster().CountFor("a"))
	}
}

func TestScaleErrors(t *testing.T) {
	o := newOrch(1)
	if err := o.Scale("missing", 1); err == nil {
		t.Fatal("unknown deployment accepted")
	}
	if err := o.Apply(cluster.PaperContainer("a"), -1); err == nil {
		t.Fatal("negative replicas accepted")
	}
	if err := o.Apply(cluster.ContainerSpec{}, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestScaleUpCapacityExhaustion(t *testing.T) {
	cl := cluster.New(1, cluster.HostSpec{Cores: 1, MemGB: 4}) // 10 x 0.1-core containers max
	o := New(cl, nil)
	err := o.Apply(cluster.PaperContainer("a"), 50)
	if err == nil {
		t.Fatal("over-capacity apply should error")
	}
	// Partial progress is reflected in the deployment state.
	if got := o.Replicas("a"); got != cl.CountFor("a") {
		t.Fatalf("replicas %d != placed %d", got, cl.CountFor("a"))
	}
	if cl.CountFor("a") != 10 {
		t.Fatalf("placed = %d, want 10", cl.CountFor("a"))
	}
}

func TestSpreadBalances(t *testing.T) {
	o := newOrch(4)
	if err := o.Apply(cluster.PaperContainer("a"), 8); err != nil {
		t.Fatal(err)
	}
	for _, h := range o.Cluster().Hosts() {
		if got := len(h.Containers()); got != 2 {
			t.Fatalf("host %d has %d containers, want 2", h.ID, got)
		}
	}
}

func TestSpreadAvoidsBusyHosts(t *testing.T) {
	cl := cluster.New(2, cluster.PaperHost)
	cl.SetBackground(0, workload.Interference{CPU: 0.9})
	o := New(cl, nil)
	if err := o.Apply(cluster.PaperContainer("a"), 4); err != nil {
		t.Fatal(err)
	}
	if got := len(cl.Host(1).Containers()); got != 4 {
		t.Fatalf("busy host received containers: host1 has %d", got)
	}
}

func TestEvictFromMostPackedHost(t *testing.T) {
	cl := cluster.New(2, cluster.PaperHost)
	// Host 0 heavily loaded by background.
	cl.SetBackground(0, workload.Interference{CPU: 0.5})
	cl.Place(cluster.PaperContainer("a"), 0)
	cl.Place(cluster.PaperContainer("a"), 1)
	victim, err := (Spread{}).Evict(cl, "a")
	if err != nil {
		t.Fatal(err)
	}
	if victim.Host.ID != 0 {
		t.Fatalf("evicted from host %d, want the packed host 0", victim.Host.ID)
	}
	if _, err := (Spread{}).Evict(cl, "none"); err == nil {
		t.Fatal("evicting unknown microservice should error")
	}
}

func TestDelete(t *testing.T) {
	o := newOrch(2)
	o.Apply(cluster.PaperContainer("a"), 3)
	if err := o.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if o.Cluster().CountFor("a") != 0 || len(o.Deployments()) != 0 {
		t.Fatal("delete incomplete")
	}
	if err := o.Delete("a"); err == nil {
		t.Fatal("double delete should error")
	}
}

func TestWatchEvents(t *testing.T) {
	o := newOrch(2)
	var events []Event
	o.Watch(func(e Event) { events = append(events, e) })
	o.Apply(cluster.PaperContainer("a"), 2)
	o.Scale("a", 5)
	o.Scale("a", 5) // no-op: no event
	o.Scale("a", 1)
	o.Delete("a")
	types := make([]EventType, len(events))
	for i, e := range events {
		types[i] = e.Type
	}
	want := []EventType{EventCreate, EventScaleUp, EventScaleUp, EventScaleDown, EventScaleDown, EventDelete}
	if len(types) != len(want) {
		t.Fatalf("events = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, types[i], want[i])
		}
	}
	// Check deltas on the interesting ones.
	if events[1].Delta != 2 || events[2].Delta != 3 || events[3].Delta != -4 {
		t.Fatalf("deltas wrong: %+v", events)
	}
}

func TestApplyUpdatesSpec(t *testing.T) {
	o := newOrch(2)
	o.Apply(cluster.PaperContainer("a"), 1)
	bigger := cluster.PaperContainer("a")
	bigger.CPU = 0.2
	if err := o.Apply(bigger, 2); err != nil {
		t.Fatal(err)
	}
	// New containers use the updated spec.
	cs := o.Cluster().ContainersFor("a")
	if len(cs) != 2 {
		t.Fatalf("containers = %d", len(cs))
	}
	if cs[1].Spec.CPU != 0.2 {
		t.Fatalf("new container spec cpu = %v", cs[1].Spec.CPU)
	}
}

func TestDeploymentsSorted(t *testing.T) {
	o := newOrch(2)
	o.Apply(cluster.PaperContainer("z"), 1)
	o.Apply(cluster.PaperContainer("a"), 1)
	ds := o.Deployments()
	if len(ds) != 2 || ds[0] != "a" || ds[1] != "z" {
		t.Fatalf("deployments = %v", ds)
	}
}

func TestEventTypeStrings(t *testing.T) {
	for _, et := range []EventType{EventCreate, EventScaleUp, EventScaleDown, EventDelete, EventType(99)} {
		if et.String() == "" {
			t.Fatal("empty event type string")
		}
	}
}

func TestBlindSpreadIgnoresBackground(t *testing.T) {
	cl := cluster.New(2, cluster.PaperHost)
	// Host 0 is saturated by batch jobs — invisible to the stock scheduler.
	cl.SetBackground(0, workload.Interference{CPU: 0.9, Mem: 0.2})
	o := New(cl, BlindSpread{})
	// Requests balance evenly across both hosts despite the batch load,
	// as long as hard capacity allows.
	if err := o.Apply(cluster.PaperContainer("a"), 6); err != nil {
		t.Fatal(err)
	}
	if len(cl.Host(0).Containers()) != 3 || len(cl.Host(1).Containers()) != 3 {
		t.Fatalf("blind spread placed %d/%d, want 3/3",
			len(cl.Host(0).Containers()), len(cl.Host(1).Containers()))
	}
}

func TestBlindSpreadRespectsHardCapacity(t *testing.T) {
	cl := cluster.New(2, cluster.HostSpec{Cores: 1, MemGB: 4})
	cl.SetBackground(0, workload.Interference{CPU: 0.95})
	o := New(cl, BlindSpread{})
	// Host 0 only fits 0.05 cores of requests: everything lands on host 1.
	if err := o.Apply(cluster.PaperContainer("a"), 5); err != nil {
		t.Fatal(err)
	}
	if got := len(cl.Host(1).Containers()); got != 5 {
		t.Fatalf("host1 = %d containers", got)
	}
}

func TestBlindSpreadEvict(t *testing.T) {
	cl := cluster.New(2, cluster.PaperHost)
	cl.Place(cluster.PaperContainer("a"), 0)
	cl.Place(cluster.PaperContainer("a"), 0)
	cl.Place(cluster.PaperContainer("a"), 1)
	victim, err := (BlindSpread{}).Evict(cl, "a")
	if err != nil {
		t.Fatal(err)
	}
	if victim.Host.ID != 0 {
		t.Fatalf("evicted from host %d, want the request-heavy host 0", victim.Host.ID)
	}
	if _, err := (BlindSpread{}).Evict(cl, "none"); err == nil {
		t.Fatal("missing microservice accepted")
	}
}

func TestBlindSpreadNoFit(t *testing.T) {
	cl := cluster.New(1, cluster.HostSpec{Cores: 1, MemGB: 4})
	cl.SetBackground(0, workload.Interference{CPU: 1})
	if _, err := (BlindSpread{}).Place(cl, cluster.PaperContainer("a")); err == nil {
		t.Fatal("full cluster accepted")
	}
}

func TestScaleRejectsNegativeReplicas(t *testing.T) {
	o := newOrch(2)
	if err := o.Apply(cluster.PaperContainer("a"), 2); err != nil {
		t.Fatal(err)
	}
	err := o.Scale("a", -3)
	if err == nil {
		t.Fatal("negative replicas accepted")
	}
	if !strings.Contains(err.Error(), "-3") || !strings.Contains(err.Error(), "a") {
		t.Fatalf("error %q should name the count and the deployment", err)
	}
	if o.Replicas("a") != 2 || o.Cluster().CountFor("a") != 2 {
		t.Fatal("failed scale mutated state")
	}
	if err := o.Apply(cluster.PaperContainer("b"), -1); err == nil || !strings.Contains(err.Error(), "-1") {
		t.Fatalf("apply with negative replicas: %v", err)
	}
}

func TestScaleDownLastReplicaAndDelete(t *testing.T) {
	o := newOrch(2)
	if err := o.Apply(cluster.PaperContainer("a"), 1); err != nil {
		t.Fatal(err)
	}
	// Removing the last replica keeps the deployment object around at 0.
	if err := o.Scale("a", 0); err != nil {
		t.Fatal(err)
	}
	if o.Cluster().CountFor("a") != 0 {
		t.Fatal("last replica not evicted")
	}
	if d, ok := o.Deployment("a"); !ok || d.Replicas != 0 {
		t.Fatalf("deployment after scale-to-zero: %+v ok=%v", d, ok)
	}
	// Scaling an empty deployment back up works.
	if err := o.Scale("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Deployment("a"); ok {
		t.Fatal("deployment survived delete")
	}
	if err := o.Delete("missing"); err == nil {
		t.Fatal("deleting unknown deployment accepted")
	}
}

func TestWatchEventOrderingApplyScaleDelete(t *testing.T) {
	o := newOrch(2)
	var events []Event
	o.Watch(func(e Event) { events = append(events, e) })
	o.Apply(cluster.PaperContainer("a"), 4)
	o.Scale("a", 1)
	o.Delete("a")
	want := []EventType{EventCreate, EventScaleUp, EventScaleDown, EventScaleDown, EventDelete}
	if len(events) != len(want) {
		t.Fatalf("events = %+v", events)
	}
	for i, e := range events {
		if e.Type != want[i] {
			t.Fatalf("event %d = %v, want %v", i, e.Type, want[i])
		}
		if e.Host != -1 {
			t.Fatalf("deployment event %v has host %d, want -1", e.Type, e.Host)
		}
	}
	// The delete's implicit scale-to-zero precedes the delete event.
	if events[3].Replicas != 0 || events[3].Delta != -1 {
		t.Fatalf("pre-delete scale-down = %+v", events[3])
	}
}

func TestCordonUncordon(t *testing.T) {
	o := newOrch(2)
	var events []Event
	o.Watch(func(e Event) { events = append(events, e) })
	if err := o.Cordon(0); err != nil {
		t.Fatal(err)
	}
	if err := o.Cordon(0); err != nil { // idempotent, no second event
		t.Fatal(err)
	}
	if err := o.Apply(cluster.PaperContainer("a"), 4); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Cluster().Host(0).Containers()); got != 0 {
		t.Fatalf("cordoned host received %d containers", got)
	}
	if err := o.Uncordon(0); err != nil {
		t.Fatal(err)
	}
	if err := o.Scale("a", 8); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Cluster().Host(0).Containers()); got == 0 {
		t.Fatal("uncordoned host still skipped")
	}
	var types []EventType
	for _, e := range events {
		if e.Type == EventCordon || e.Type == EventUncordon {
			types = append(types, e.Type)
		}
	}
	if len(types) != 2 || types[0] != EventCordon || types[1] != EventUncordon {
		t.Fatalf("cordon events = %v, want exactly one cordon then one uncordon", types)
	}
	if err := o.Cordon(99); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestDrainMigratesContainers(t *testing.T) {
	o := newOrch(2)
	if err := o.Apply(cluster.PaperContainer("a"), 4); err != nil {
		t.Fatal(err)
	}
	var drains []Event
	o.Watch(func(e Event) {
		if e.Type == EventDrain {
			drains = append(drains, e)
		}
	})
	moved := len(o.Cluster().Host(0).Containers())
	if err := o.Drain(0); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Cluster().Host(0).Containers()); got != 0 {
		t.Fatalf("host 0 still has %d containers after drain", got)
	}
	if got := o.Cluster().CountFor("a"); got != 4 {
		t.Fatalf("containers lost in drain: %d", got)
	}
	if !o.Cluster().Host(0).Cordoned() {
		t.Fatal("drained host not cordoned")
	}
	if len(drains) != 1 || drains[0].Host != 0 || drains[0].Delta != moved {
		t.Fatalf("drain events = %+v, want one with delta %d", drains, moved)
	}
}

func TestDrainFailsWithoutCapacity(t *testing.T) {
	cl := cluster.New(2, cluster.HostSpec{Cores: 1, MemGB: 4})
	o := New(cl, nil)
	if err := o.Apply(cluster.PaperContainer("a"), 16); err != nil {
		t.Fatal(err)
	}
	// Both hosts are near-full; host 1 cannot absorb host 0's containers.
	if err := o.Drain(0); err == nil {
		t.Fatal("drain without capacity should error")
	}
	if !cl.Host(0).Cordoned() {
		t.Fatal("failed drain should leave the node cordoned")
	}
	if got := cl.CountFor("a"); got != 16 {
		t.Fatalf("containers lost in failed drain: %d", got)
	}
}

func TestFailNodeRecoverAndRepair(t *testing.T) {
	o := newOrch(3)
	if err := o.Apply(cluster.PaperContainer("a"), 6); err != nil {
		t.Fatal(err)
	}
	var events []Event
	o.Watch(func(e Event) { events = append(events, e) })
	lost := len(o.Cluster().Host(1).Containers())
	if lost == 0 {
		t.Fatal("test needs containers on host 1")
	}
	if err := o.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if err := o.FailNode(1); err != nil { // idempotent
		t.Fatal(err)
	}
	if !o.Cluster().Host(1).Down() {
		t.Fatal("host 1 not down")
	}
	if got := o.Cluster().CountFor("a"); got != 6-lost {
		t.Fatalf("live containers = %d, want %d", got, 6-lost)
	}
	// Desired state is untouched: the deployment is under-replicated.
	if o.Replicas("a") != 6 {
		t.Fatalf("desired replicas changed to %d", o.Replicas("a"))
	}

	replaced, err := o.Repair()
	if err != nil || replaced != lost {
		t.Fatalf("Repair = (%d, %v), want (%d, nil)", replaced, err, lost)
	}
	if got := o.Cluster().CountFor("a"); got != 6 {
		t.Fatalf("after repair: %d containers", got)
	}
	if got := len(o.Cluster().Host(1).Containers()); got != 0 {
		t.Fatalf("repair placed %d containers on the down host", got)
	}
	// Converged: repair is a no-op.
	if n, err := o.Repair(); n != 0 || err != nil {
		t.Fatalf("second repair = (%d, %v)", n, err)
	}

	if err := o.RecoverNode(1); err != nil {
		t.Fatal(err)
	}
	if o.Cluster().Host(1).Down() {
		t.Fatal("host 1 still down after recovery")
	}
	if err := o.RecoverNode(1); err != nil { // idempotent
		t.Fatal(err)
	}

	var types []EventType
	for _, e := range events {
		switch e.Type {
		case EventNodeFail, EventRepair, EventNodeRecover:
			types = append(types, e.Type)
		}
	}
	want := []EventType{EventNodeFail, EventRepair, EventNodeRecover}
	if len(types) != len(want) {
		t.Fatalf("fault events = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("fault events = %v, want %v", types, want)
		}
	}
	if events[0].Delta != -lost {
		t.Fatalf("node-fail delta = %d, want %d", events[0].Delta, -lost)
	}
}

func TestNodeEventTypeStrings(t *testing.T) {
	for _, et := range []EventType{EventCordon, EventUncordon, EventDrain, EventNodeFail, EventNodeRecover, EventRepair} {
		if et.String() == "" || et.String() == "unknown" {
			t.Fatalf("event type %d has no name", et)
		}
	}
}
