package operator

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"erms/internal/obs"
)

// maxSpecBytes bounds an admin spec push; specs are small declarative
// documents, and an unbounded read would let one request exhaust memory.
const maxSpecBytes = 1 << 20

// Status is the admin-API view of the operator.
type Status struct {
	Window    int    `json:"window"`
	Phase     string `json:"phase"`
	Committed int    `json:"committed_generation"`
	LastGood  int    `json:"last_good_generation"`
	// Candidate is the in-flight rollout's generation, 0 when idle.
	Candidate   int            `json:"candidate_generation,omitempty"`
	Queued      []int          `json:"queued_generations,omitempty"`
	Generations []Generation   `json:"generations"`
	Recent      []WindowStatus `json:"recent_windows,omitempty"`
}

// StatusSnapshot returns the current operator status (also served as
// GET /status).
func (o *Operator) StatusSnapshot() Status {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := Status{
		Window:    o.window,
		Phase:     o.phase.String(),
		Committed: o.committed.ID,
		LastGood:  o.lastGood.ID,
	}
	if o.cand != nil {
		st.Candidate = o.cand.ID
	}
	for _, g := range o.pending {
		st.Queued = append(st.Queued, g.ID)
	}
	for _, g := range o.gens {
		st.Generations = append(st.Generations, *g)
	}
	n := len(o.history)
	const recent = 8
	lo := n - recent
	if lo < 0 {
		lo = 0
	}
	st.Recent = append(st.Recent, o.history[lo:n]...)
	return st
}

// Explain renders the scaling explanation for one service under the
// committed generation's current offered load (also served as
// GET /explain/{service}).
func (o *Operator) Explain(service string) (string, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.window
	if w > 0 {
		w--
	}
	return o.fleet.Explain(service, o.fleetRates(w))
}

// AdminHandler serves the operator's admin API:
//
//	GET  /status             rollout state machine + generation history
//	POST /spec               push a spec document (YAML or JSON body)
//	GET  /explain/{service}  scaling explanation under current load
func (o *Operator) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, o.StatusSnapshot())
	})
	mux.HandleFunc("/spec", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "method not allowed (POST a spec document)", http.StatusMethodNotAllowed)
			return
		}
		data, err := io.ReadAll(io.LimitReader(req.Body, maxSpecBytes+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
			return
		}
		if len(data) > maxSpecBytes {
			http.Error(w, "spec document too large", http.StatusRequestEntityTooLarge)
			return
		}
		gen, err := o.Push(data, "api")
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error":      err.Error(),
				"generation": gen,
			})
			return
		}
		writeJSON(w, gen)
	})
	mux.HandleFunc("/explain/", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		service := strings.TrimPrefix(req.URL.Path, "/explain/")
		if service == "" || strings.Contains(service, "/") {
			http.Error(w, "usage: GET /explain/{service}", http.StatusBadRequest)
			return
		}
		out, err := o.Explain(service)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
	})
	return mux
}

// Handler mounts the admin API next to the observability endpoints on one
// mux, so `-obs-addr` serves both surfaces: /metrics, /spans, /debug/pprof
// from the recorder; /status, /spec, /explain from the operator.
func (o *Operator) Handler(rec *obs.Recorder) http.Handler {
	admin := o.AdminHandler()
	obsH := rec.Handler()
	mux := http.NewServeMux()
	mux.Handle("/status", admin)
	mux.Handle("/spec", admin)
	mux.Handle("/explain/", admin)
	mux.Handle("/", obsH)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
