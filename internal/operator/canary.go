package operator

import (
	"fmt"
	"math"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/core"
	"erms/internal/kube"
	"erms/internal/provision"
	"erms/internal/sim"
	"erms/internal/spec"
	"erms/internal/workload"
)

// canaryRun is the sandboxed canary: the candidate generation's
// configuration evaluated on a fraction-sized slice — the first
// ceil(fraction·N) services by sorted name, a fraction-sized cluster, and
// the same cohort arrival patterns scaled down by the fraction. It has its
// own cluster, orchestrator, and controller, so nothing it does can perturb
// the production fleet; its window seeds mix in the generation ID, so two
// different candidates never share a trajectory.
type canaryRun struct {
	sc       *spec.Scenario
	services map[string]bool
	loop     *core.Reconciler
	fraction float64
	genID    int
	err      error // construction error, surfaced by step
}

// newCanaryRun builds the sandbox for the candidate scenario. changed lists
// the services whose SLA the candidate alters; they are pinned into the
// canary slice. Construction errors are deferred to step so the state
// machine handles them as a canary breach rather than an operator crash.
func newCanaryRun(sc *spec.Scenario, cfg Config, genID int, changed []string) *canaryRun {
	slice := canarySlice(sc, cfg.CanaryFraction, changed)
	services := make(map[string]bool, len(slice))
	for _, svc := range slice {
		services[svc] = true
	}
	c := &canaryRun{sc: sc, services: services, fraction: cfg.CanaryFraction, genID: genID}

	sub := &apps.App{
		Name:       sc.App.Name + "-canary",
		Profiles:   sc.App.Profiles,
		SLAs:       sc.App.SLAs,
		Containers: sc.App.Containers,
	}
	for _, g := range sc.App.Graphs {
		if services[g.Service] {
			sub.Graphs = append(sub.Graphs, g)
		}
	}

	hosts := int(math.Ceil(cfg.CanaryFraction * float64(sc.Hosts)))
	if hosts < 2 {
		hosts = 2
	}
	cl := cluster.New(hosts, cluster.PaperHost)
	orch := kube.New(cl, nil)
	opts := []core.Option{
		core.WithScheme(sc.Scheme),
		core.WithScheduler(&provision.InterferenceAware{Groups: 4}),
		core.WithResilience(sc.Resilience),
		core.WithPlanShards(sc.PlanShards),
	}
	if dcfg, ok := sc.DriftConfig(); ok {
		opts = append(opts, core.WithDriftDetection(dcfg))
	}
	ctrl, err := core.New(sub, orch, opts...)
	if err != nil {
		c.err = fmt.Errorf("canary controller: %w", err)
		return c
	}
	ctrl.UseAnalyticModels()
	c.loop = core.NewReconciler(ctrl)
	c.loop.WindowMin = sc.WindowMin
	c.loop.StreamsFor = c.windowStreams
	return c
}

// windowStreams returns the candidate's cohort streams restricted to the
// canary services, with arrival rates scaled by the canary fraction.
// The reconciler's window index is the operator window, so the canary sees
// the same phase of the workload timeline the fleet does.
func (c *canaryRun) windowStreams(w int) []sim.Stream {
	full := c.sc.WindowStreams(w % c.sc.Windows)
	var out []sim.Stream
	for _, st := range full {
		if !c.services[st.Service] {
			continue
		}
		st.Pattern = scaledPattern{inner: st.Pattern, f: c.fraction}
		out = append(out, st)
	}
	return out
}

// step runs one canary window and returns its report.
func (c *canaryRun) step(w int) (*core.WindowReport, error) {
	if c.err != nil {
		return nil, c.err
	}
	widx := w % c.sc.Windows
	rates := make(map[string]float64)
	for svc, r := range c.sc.OfferedRates(widx) {
		if !c.services[svc] {
			continue
		}
		r *= c.fraction
		if r < 1 {
			r = 1
		}
		rates[svc] = r
	}
	seed := c.sc.Seed + uint64(c.genID)*9176 + uint64(w)*1000003 + 7
	return c.loop.Step(rates, seed)
}

// scaledPattern scales an arrival pattern by the canary fraction.
type scaledPattern struct {
	inner workload.Pattern
	f     float64
}

func (s scaledPattern) RateAt(t float64) float64 { return s.inner.RateAt(t) * s.f }

func (s scaledPattern) String() string {
	return fmt.Sprintf("Scaled(%s, x%g)", s.inner.String(), s.f)
}
