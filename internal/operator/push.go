package operator

import (
	"fmt"
	"math"
	"reflect"

	"erms/internal/obs"
	"erms/internal/spec"
)

// Push submits a new spec document (YAML or JSON bytes) as a candidate
// generation. source labels where it came from ("file:<path>", "api",
// "test"). The document is parsed strictly, compiled, and admission-checked
// against the committed generation; a rejected push is still recorded as a
// generation (status rejected) so the history stays auditable, and the
// error says why.
//
// Concurrency policy — deterministic by construction and table-tested:
//
//   - a push landing while a previous rollout is still in CANARY
//     SUPERSEDES it: the old candidate is discarded (status superseded,
//     rollout_superseded_total) and the new one starts its canary at the
//     next window. The fleet never saw the old candidate, so dropping it
//     loses nothing.
//   - a push landing while a rollout is PROMOTING or SOAKING QUEUES behind
//     it: the fleet is already running the in-flight candidate's
//     configuration, and yanking it mid-soak would leave the guardrail
//     verdict undecided. The queued push starts once the machine returns to
//     idle.
func (o *Operator) Push(data []byte, source string) (*Generation, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	gen := &Generation{
		ID:     len(o.gens) + 1,
		Source: source,
		Status: StatusRejected,
		// The push lands before the next Step, so it belongs to the window
		// about to run.
		PushedWindow:  o.window,
		DecidedWindow: o.window,
	}
	s, err := spec.Parse(data)
	if err != nil {
		gen.Name = "invalid"
		gen.Reason = err.Error()
		o.gens = append(o.gens, gen)
		return gen, fmt.Errorf("operator: push rejected: %w", err)
	}
	gen.Name = s.Name
	sc, err := s.Compile()
	if err != nil {
		gen.Reason = err.Error()
		o.gens = append(o.gens, gen)
		return gen, fmt.Errorf("operator: push rejected: %w", err)
	}
	if err := o.admit(sc); err != nil {
		gen.Reason = err.Error()
		o.gens = append(o.gens, gen)
		return gen, fmt.Errorf("operator: push rejected: %w", err)
	}
	gen.scenario = sc
	gen.DecidedWindow = -1
	o.gens = append(o.gens, gen)

	switch o.phase {
	case PhaseCanary:
		// Supersede: the fleet never saw the old candidate.
		o.cand.Status = StatusSuperseded
		o.cand.DecidedWindow = o.window
		o.cand.Reason = fmt.Sprintf("superseded by generation %d", gen.ID)
		o.rec.Inc(obs.CtrRolloutSuperseded)
		o.startRollout(gen, o.window)
	case PhasePromoting, PhaseSoaking:
		gen.Status = StatusQueued
		o.pending = append(o.pending, gen)
	default:
		o.startRollout(gen, o.window)
	}
	return gen, nil
}

// admit checks a candidate scenario against the committed one: a rollout
// swaps configuration (SLAs, resilience, scheme, cohort patterns) on the
// running system, so the structural invariants — the application shape, the
// cluster size, and the planning-window length — must match. Changing those
// is a redeploy, not a rollout, and is rejected deterministically.
func (o *Operator) admit(sc *spec.Scenario) error {
	cur := o.committed.scenario
	if !reflect.DeepEqual(sortedServices(sc), sortedServices(cur)) {
		return fmt.Errorf("operator: candidate services %v != running services %v (changing the topology requires a redeploy)",
			sortedServices(sc), sortedServices(cur))
	}
	if !reflect.DeepEqual(sc.App.Microservices(), cur.App.Microservices()) {
		return fmt.Errorf("operator: candidate microservice set differs from the running topology (changing it requires a redeploy)")
	}
	if sc.Hosts != cur.Hosts {
		return fmt.Errorf("operator: candidate run.hosts %d != running cluster size %d", sc.Hosts, cur.Hosts)
	}
	if math.Abs(sc.WindowMin-cur.WindowMin) > 1e-9 {
		return fmt.Errorf("operator: candidate window_min %g != running window_min %g", sc.WindowMin, cur.WindowMin)
	}
	return nil
}
