package operator

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"erms/internal/obs"
	"erms/internal/spec"
)

// baseSpecYAML is the bootstrap spec for operator tests: the hotel app at a
// modest steady rate, one window per spec-minute, with the data-plane fault
// model on so the error-rate guardrail is live.
const baseSpecYAML = `
version: 1
name: base
seed: 11
app:
  kind: hotel
run:
  duration_min: 8
  window_min: 1
  hosts: 20
resilience:
  timeout_sla_multiple: 3
  max_attempts: 2
  retry_budget: 0.2
cohorts:
  - name: web
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 2400
  - name: booking
    service: reserve
    tier: critical
    arrival:
      kind: static
      rate: 900
`

// goodPushYAML relaxes one SLA slightly — a benign config change that must
// promote.
const goodPushYAML = `
version: 1
name: good-push
seed: 11
app:
  kind: hotel
  slas:
    search: 170
run:
  duration_min: 8
  window_min: 1
  hosts: 20
resilience:
  timeout_sla_multiple: 3
  max_attempts: 2
  retry_budget: 0.2
cohorts:
  - name: web
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 2400
  - name: booking
    service: reserve
    tier: critical
    arrival:
      kind: static
      rate: 900
`

// badPushYAML tightens the search SLA ~4x below what the topology can
// deliver under load — the canary must breach and roll back.
const badPushYAML = `
version: 1
name: bad-push
seed: 11
app:
  kind: hotel
  slas:
    search: 8
run:
  duration_min: 8
  window_min: 1
  hosts: 20
resilience:
  timeout_sla_multiple: 3
  max_attempts: 2
  retry_budget: 0.2
cohorts:
  - name: web
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 2400
  - name: booking
    service: reserve
    tier: critical
    arrival:
      kind: static
      rate: 900
`

func compileSpec(t *testing.T, yaml string) *spec.Scenario {
	t.Helper()
	s, err := spec.Parse([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func newTestOperator(t *testing.T, cfg Config) *Operator {
	t.Helper()
	o, err := New(compileSpec(t, baseSpecYAML), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func stepN(t *testing.T, o *Operator, n int) []WindowStatus {
	t.Helper()
	out := make([]WindowStatus, 0, n)
	for i := 0; i < n; i++ {
		st, err := o.Step()
		if err != nil {
			t.Fatalf("window %d: %v", o.Window()-1, err)
		}
		out = append(out, *st)
	}
	return out
}

func testConfig() Config {
	return Config{
		CanaryFraction:   0.25,
		CanaryWindows:    2,
		SoakWindows:      1,
		MaxViolationRate: 0.10,
		MaxErrorRate:     0.10,
	}
}

func TestGoodPushPromotesAndCommits(t *testing.T) {
	rec := obs.New(nil)
	o, err := New(compileSpec(t, baseSpecYAML), testConfig(), rec)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, o, 2)
	gen, err := o.Push([]byte(goodPushYAML), "test")
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	if gen.ID != 2 || gen.Status != StatusCanarying {
		t.Fatalf("pushed gen = %+v, want ID 2 canarying", gen)
	}
	// 2 canary windows, then promoting (same window as 2nd canary), then
	// 1 soak window, then commit.
	sts := stepN(t, o, 4)
	var events []string
	for _, st := range sts {
		if st.Event != "" {
			events = append(events, fmt.Sprintf("w%d:%s", st.Window, st.Event))
		}
	}
	final := o.StatusSnapshot()
	if final.Committed != 2 || final.LastGood != 2 || final.Phase != "idle" {
		t.Fatalf("good push did not commit: %+v (events %v)", final, events)
	}
	if g := final.Generations[1]; g.Status != StatusCommitted || g.Reason != "" {
		t.Fatalf("generation 2 = %+v, want committed", g)
	}
	if got := rec.Value(obs.CtrRolloutPromoted); got != 1 {
		t.Fatalf("rollout_promoted_total = %g, want 1", got)
	}
	if got := rec.Value(obs.GaugeGeneration); got != 2 {
		t.Fatalf("spec_generation gauge = %g, want 2", got)
	}
}

func TestBadPushRollsBackWithFleetUntouched(t *testing.T) {
	const windows = 8
	rec := obs.New(nil)
	withPush, err := New(compileSpec(t, baseSpecYAML), testConfig(), rec)
	if err != nil {
		t.Fatal(err)
	}
	noPush := newTestOperator(t, testConfig())

	stepN(t, withPush, 2)
	stepN(t, noPush, 2)
	if _, err := withPush.Push([]byte(badPushYAML), "test"); err != nil {
		t.Fatalf("push: %v", err)
	}
	a := stepN(t, withPush, windows-2)
	b := stepN(t, noPush, windows-2)

	final := withPush.StatusSnapshot()
	if final.Committed != 1 || final.LastGood != 1 {
		t.Fatalf("bad push moved the committed generation: %+v", final)
	}
	g := final.Generations[1]
	if g.Status != StatusRolledBack || !strings.Contains(g.Reason, "canary") {
		t.Fatalf("generation 2 = %+v, want rolled-back in canary", g)
	}
	if got := rec.Value(obs.CtrRolloutRolledBack); got != 1 {
		t.Fatalf("rollout_rolled_back_total = %g, want 1", got)
	}
	if got := rec.Value(obs.GaugeGeneration); got != 1 {
		t.Fatalf("spec_generation gauge = %g, want 1", got)
	}

	// The contract that makes the sandboxed canary worth its cost: every
	// fleet window of the bad-push run is byte-identical to the no-push
	// run — zero windows of fleet-wide regression beyond the canary slice.
	for i := range a {
		// PhaseMs is wall-clock phase timing, recorded only when an obs
		// recorder is attached; it is outside the determinism contract.
		ra, rb := *a[i].fleet, *b[i].fleet
		ra.PhaseMs, rb.PhaseMs = nil, nil
		fa := fmt.Sprintf("%+v", ra)
		fb := fmt.Sprintf("%+v", rb)
		if fa != fb {
			t.Fatalf("fleet window %d diverged from the no-push run:\n with push: %s\n  no push: %s", a[i].Window, fa, fb)
		}
	}
}

func TestPushAdmissionRejectsStructuralChanges(t *testing.T) {
	cases := []struct {
		name, old, new, want string
	}{
		{"different app", "kind: hotel", "kind: social", "services"},
		{"different hosts", "hosts: 20", "hosts: 30", "run.hosts"},
		{"different window", "window_min: 1", "window_min: 2", "window_min"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := newTestOperator(t, testConfig())
			bad := strings.Replace(goodPushYAML, c.old, c.new, 1)
			gen, err := o.Push([]byte(bad), "test")
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want admission rejection mentioning %q", err, c.want)
			}
			if gen.Status != StatusRejected || gen.Reason == "" {
				t.Fatalf("rejected gen = %+v", gen)
			}
			if st := o.StatusSnapshot(); st.Phase != "idle" || st.Candidate != 0 {
				t.Fatalf("rejected push left machine non-idle: %+v", st)
			}
		})
	}

	t.Run("unparseable", func(t *testing.T) {
		o := newTestOperator(t, testConfig())
		gen, err := o.Push([]byte("version: 1\nbogus: {"), "test")
		if err == nil {
			t.Fatal("expected parse rejection")
		}
		if gen.Status != StatusRejected || gen.Name != "invalid" {
			t.Fatalf("gen = %+v", gen)
		}
	})
}

// TestOperatorDeterministic pins that the whole loop — fleet, canary,
// rollout decisions, counters — is a pure function of (bootstrap spec,
// pushes, windows).
func TestOperatorDeterministic(t *testing.T) {
	run := func() string {
		o := newTestOperator(t, testConfig())
		stepN(t, o, 1)
		if _, err := o.Push([]byte(goodPushYAML), "test"); err != nil {
			t.Fatal(err)
		}
		sts := stepN(t, o, 6)
		var sb strings.Builder
		for _, st := range sts {
			stCopy := st
			stCopy.fleet = nil
			fmt.Fprintf(&sb, "%+v|%+v\n", stCopy, *st.fleet)
		}
		snap := o.StatusSnapshot()
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(data)
		return sb.String()
	}
	first := run()
	if second := run(); second != first {
		t.Fatalf("operator runs diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
