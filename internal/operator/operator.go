// Package operator is the long-running reconciliation daemon: it holds a
// declared desired state (an internal/spec document: application, SLAs,
// resilience policy, chaos timeline, drift config) and converges the running
// controller onto it through generation-numbered rollouts instead of process
// restarts.
//
// Every spec push — a file reload or an admin-API POST — becomes a new
// Generation. A generation moves through a staged state machine driven by
// simulated window time:
//
//	idle → canary → promoting → soaking → committed
//	                    ↓           ↓
//	               rolled-back  rolled-back
//
// The canary stage evaluates the candidate on a sandboxed slice of the
// fleet: ceil(fraction·N) services — the ones whose SLA the push changes
// first, then by sorted name — on a fraction-sized cluster, driven by the
// same cohort patterns scaled down by the fraction. Because the canary runs in its own cluster and controller,
// the production fleet is provably untouched until promotion — a bad push
// produces zero windows of fleet-wide regression beyond the canary slice,
// and the fleet's window reports stay byte-identical to a no-push run.
//
// Promotion is a configuration swap, never a restart: the candidate's SLA
// thresholds, resilience policy, and multiplexing scheme are installed on
// the live controller (the plan-template parameter hash makes an SLA swap a
// precise cache invalidation), then watched through one promoting window and
// a configurable soak. Any guardrail breach — per-window SLA-violation rate
// or error rate over the configured ceilings, or a full outage — restores
// the last-good configuration atomically via the controller's
// atomic-or-rollback Apply machinery. Model state (including drift-loop
// hot-swaps) deliberately survives both promotion and rollback: models track
// the substrate, not the spec.
//
// Everything is deterministic: the same bootstrap spec, pushes, and window
// schedule produce byte-identical histories at any worker count.
package operator

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"erms/internal/chaos"
	"erms/internal/cluster"
	"erms/internal/core"
	"erms/internal/kube"
	"erms/internal/multiplex"
	"erms/internal/obs"
	"erms/internal/provision"
	"erms/internal/sim"
	"erms/internal/spec"
	"erms/internal/workload"
)

// Phase is the rollout state machine position.
type Phase int

// Rollout phases.
const (
	// PhaseIdle: no rollout in flight; the committed generation runs the
	// fleet.
	PhaseIdle Phase = iota
	// PhaseCanary: the candidate runs on the sandboxed canary slice; the
	// fleet still runs the committed generation.
	PhaseCanary
	// PhasePromoting: the candidate's configuration was just installed on
	// the fleet; the first full-fleet window under it is being watched.
	PhasePromoting
	// PhaseSoaking: post-promotion soak; SoakWindows clean windows commit
	// the generation.
	PhaseSoaking
)

func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseCanary:
		return "canary"
	case PhasePromoting:
		return "promoting"
	case PhaseSoaking:
		return "soaking"
	default:
		return "unknown"
	}
}

// GenStatus is a generation's lifecycle status.
type GenStatus string

// Generation statuses.
const (
	StatusCommitted  GenStatus = "committed"
	StatusCanarying  GenStatus = "canarying"
	StatusPromoting  GenStatus = "promoting"
	StatusSoaking    GenStatus = "soaking"
	StatusQueued     GenStatus = "queued"
	StatusSuperseded GenStatus = "superseded"
	StatusRolledBack GenStatus = "rolled-back"
	StatusRejected   GenStatus = "rejected"
)

// Generation is one pushed spec version.
type Generation struct {
	ID     int       `json:"id"`
	Name   string    `json:"name"`
	Source string    `json:"source"`
	Status GenStatus `json:"status"`
	// PushedWindow is the operator window the push arrived in; DecidedWindow
	// the window the terminal status (committed / rolled-back / superseded /
	// rejected) was reached, -1 while in flight.
	PushedWindow  int    `json:"pushed_window"`
	DecidedWindow int    `json:"decided_window"`
	Reason        string `json:"reason,omitempty"`

	scenario *spec.Scenario
}

// Config parameterizes the rollout state machine.
type Config struct {
	// CanaryFraction is the slice of services (and of traffic, and of
	// cluster capacity) the canary sandbox gets. Default 0.25; clamped to
	// (0, 1].
	CanaryFraction float64
	// CanaryWindows is how many consecutive clean canary windows promote
	// the candidate. Default 3, min 1.
	CanaryWindows int
	// SoakWindows is how many clean full-fleet windows after promotion
	// commit the generation. Default 2; 0 commits right after the promoting
	// window.
	SoakWindows int
	// MaxViolationRate is the per-window guardrail on the worst service's
	// SLA-violation probability. Default 0.05.
	MaxViolationRate float64
	// MaxErrorRate is the per-window guardrail on the worst service's
	// outright-error rate (data-plane resilience enabled; ignored
	// otherwise). Default 0.05.
	MaxErrorRate float64
	// ChaosWindows sizes the fault schedule when the bootstrap spec carries
	// a chaos block and the operator will run past the spec horizon. 0 uses
	// the scenario's own window count.
	ChaosWindows int
}

func (c Config) withDefaults() Config {
	if c.CanaryFraction <= 0 || c.CanaryFraction > 1 {
		c.CanaryFraction = 0.25
	}
	if c.CanaryWindows < 1 {
		c.CanaryWindows = 3
	}
	if c.SoakWindows < 0 {
		c.SoakWindows = 2
	}
	if c.MaxViolationRate <= 0 {
		c.MaxViolationRate = 0.05
	}
	if c.MaxErrorRate <= 0 {
		c.MaxErrorRate = 0.05
	}
	return c
}

// WindowStatus is one operator window's outcome.
type WindowStatus struct {
	Window    int    `json:"window"`
	Phase     string `json:"phase"`
	Committed int    `json:"committed"`
	Candidate int    `json:"candidate,omitempty"`
	// Canary guardrail readings (phase canary only).
	CanaryViolationMax float64 `json:"canary_violation_max"`
	CanaryErrorMax     float64 `json:"canary_error_max"`
	// Fleet guardrail readings.
	FleetViolationMax float64 `json:"fleet_violation_max"`
	FleetErrorMax     float64 `json:"fleet_error_max"`
	FleetContainers   int     `json:"fleet_containers"`
	ModelSwaps        int     `json:"model_swaps"`
	Breach            bool    `json:"breach"`
	// Event records a state-machine transition this window:
	// rollout_started, promoted, committed, rolled_back, superseded. Empty
	// for steady-state windows. Multiple events join with '+'.
	Event string `json:"event,omitempty"`

	fleet *core.WindowReport
}

// FleetReport returns the fleet's full window report (nil if the fleet step
// failed). Callers comparing trajectories should ignore PhaseMs — it is
// wall-clock timing, outside the determinism contract.
func (s WindowStatus) FleetReport() *core.WindowReport { return s.fleet }

// savedConfig is the fleet configuration captured before a promotion so a
// breach can restore it atomically.
type savedConfig struct {
	slas       map[string]workload.SLA
	resilience *sim.Resilience
	scheme     multiplex.Scheme
}

// Operator is the daemon. Construct with New, then drive with Step (one
// call per simulated planning window); the admin handler in admin.go serves
// status, pushes, and explanations concurrently.
type Operator struct {
	Cfg Config

	mu  sync.Mutex
	rec *obs.Recorder

	fleet *core.Controller
	loop  *core.Reconciler
	inj   *chaos.Injector

	gens      []*Generation
	committed *Generation
	lastGood  *Generation
	cand      *Generation
	canary    *canaryRun
	clean     int
	soakLeft  int
	phase     Phase
	saved     savedConfig
	pending   []*Generation
	window    int
	history   []WindowStatus
}

// New builds an operator bootstrapped from the compiled scenario: the fleet
// controller and reconciler are constructed exactly like a batch spec run
// (same options, same analytic models), the scenario's chaos block (if any)
// becomes the fault schedule racing every rollout, and the scenario itself
// becomes committed generation 1.
func New(sc *spec.Scenario, cfg Config, rec *obs.Recorder) (*Operator, error) {
	cfg = cfg.withDefaults()
	cl := cluster.New(sc.Hosts, cluster.PaperHost)
	orch := kube.New(cl, nil)
	opts := []core.Option{
		core.WithScheme(sc.Scheme),
		core.WithScheduler(&provision.InterferenceAware{Groups: 4}),
		core.WithResilience(sc.Resilience),
		core.WithObservability(rec),
		core.WithPlanShards(sc.PlanShards),
	}
	if dcfg, ok := sc.DriftConfig(); ok {
		opts = append(opts, core.WithDriftDetection(dcfg))
	}
	ctrl, err := core.New(sc.App, orch, opts...)
	if err != nil {
		return nil, fmt.Errorf("operator: bootstrap controller: %w", err)
	}
	ctrl.UseAnalyticModels()

	o := &Operator{Cfg: cfg, rec: rec, fleet: ctrl}
	o.loop = core.NewReconciler(ctrl)
	o.loop.WindowMin = sc.WindowMin
	o.loop.StreamsFor = func(w int) []sim.Stream {
		return o.committed.scenario.WindowStreams(w % o.committed.scenario.Windows)
	}
	if ccfg, ok := sc.ChaosConfig(cfg.ChaosWindows); ok {
		sched, err := chaos.Generate(ccfg)
		if err != nil {
			return nil, fmt.Errorf("operator: chaos schedule: %w", err)
		}
		o.inj = chaos.NewInjector(sched, orch)
		o.inj.SetRecorder(rec)
		o.loop.Chaos = o.inj
	}

	gen1 := &Generation{
		ID: 1, Name: sc.Spec.Name, Source: "bootstrap",
		Status: StatusCommitted, PushedWindow: 0, DecidedWindow: 0,
		scenario: sc,
	}
	o.gens = append(o.gens, gen1)
	o.committed, o.lastGood = gen1, gen1
	o.rec.Set(obs.GaugeGeneration, 1)
	return o, nil
}

// Window returns the next window index Step will run.
func (o *Operator) Window() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.window
}

// History returns the per-window statuses so far.
func (o *Operator) History() []WindowStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]WindowStatus, len(o.history))
	copy(out, o.history)
	return out
}

// Generations returns a snapshot of every generation, bootstrap first.
func (o *Operator) Generations() []Generation {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Generation, len(o.gens))
	for i, g := range o.gens {
		out[i] = *g
	}
	return out
}

// Step runs one operator window: absorb queued pushes, run the canary
// sandbox (if a rollout is in flight), run the fleet window under the active
// configuration, and advance the state machine on the guardrail readings.
func (o *Operator) Step() (*WindowStatus, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	w := o.window
	st := WindowStatus{Window: w, Committed: o.committed.ID}
	var events []string

	// A queued push starts its canary as soon as the machine is idle.
	if o.phase == PhaseIdle && o.cand == nil && len(o.pending) > 0 {
		next := o.pending[0]
		o.pending = o.pending[1:]
		o.startRollout(next, w)
		events = append(events, "rollout_started")
	}

	// Canary window: the sandbox runs first, so a promotion decided here
	// takes effect in this same window's fleet step.
	if o.phase == PhaseCanary {
		rep, err := o.canary.step(w)
		if err != nil {
			// A canary that cannot even run is a breach, not an operator
			// failure — the fleet is untouched.
			o.decideRollback(w, fmt.Sprintf("canary window failed: %v", err))
			st.Breach = true
			events = append(events, "rolled_back")
		} else {
			st.CanaryViolationMax = maxOf(rep.Violations)
			st.CanaryErrorMax = maxOf(rep.ErrorRate)
			if breach, why := o.guardrails(rep); breach {
				o.decideRollback(w, "canary "+why)
				st.Breach = true
				events = append(events, "rolled_back")
			} else {
				o.clean++
				if o.clean >= o.Cfg.CanaryWindows {
					o.promote(w)
					events = append(events, "promoted")
				}
			}
		}
	}

	// Fleet window under the active configuration.
	rates := o.fleetRates(w)
	if o.inj != nil {
		o.inj.BeginWindow(w)
	}
	rep, err := o.loop.Step(rates, o.fleetSeed(w))
	if o.inj != nil {
		o.inj.EndWindow(w)
	}
	if err != nil {
		return nil, fmt.Errorf("operator: fleet window %d: %w", w, err)
	}
	st.fleet = rep
	st.FleetViolationMax = maxOf(rep.Violations)
	st.FleetErrorMax = maxOf(rep.ErrorRate)
	st.FleetContainers = rep.Containers
	st.ModelSwaps = rep.ModelSwaps

	switch o.phase {
	case PhasePromoting:
		if breach, why := o.guardrails(rep); breach {
			o.rollbackFleet(w, "promoting "+why)
			st.Breach = true
			events = append(events, "rolled_back")
		} else if o.soakLeft = o.Cfg.SoakWindows; o.soakLeft == 0 {
			o.commit(w)
			events = append(events, "committed")
		} else {
			o.phase = PhaseSoaking
			o.cand.Status = StatusSoaking
		}
	case PhaseSoaking:
		if breach, why := o.guardrails(rep); breach {
			o.rollbackFleet(w, "soak "+why)
			st.Breach = true
			events = append(events, "rolled_back")
		} else if o.soakLeft--; o.soakLeft <= 0 {
			o.commit(w)
			events = append(events, "committed")
		}
	}

	st.Phase = o.phase.String()
	if o.cand != nil {
		st.Candidate = o.cand.ID
	}
	st.Event = joinPlus(events)
	o.window++
	o.history = append(o.history, st)
	return &st, nil
}

// guardrails evaluates the breach predicate on a window report: a full
// outage, an SLA-violation rate over the ceiling, or an error rate over the
// ceiling. Control-plane degradation (plan reuse after transient faults) is
// deliberately not a breach — the chaos timeline produces it in healthy
// steady state.
func (o *Operator) guardrails(rep *core.WindowReport) (bool, string) {
	if rep.Outage {
		return true, "window was a full outage"
	}
	if v := maxOf(rep.Violations); v > o.Cfg.MaxViolationRate {
		return true, fmt.Sprintf("SLA violation rate %.3f > %.3f", v, o.Cfg.MaxViolationRate)
	}
	if e := maxOf(rep.ErrorRate); e > o.Cfg.MaxErrorRate {
		return true, fmt.Sprintf("error rate %.3f > %.3f", e, o.Cfg.MaxErrorRate)
	}
	return false, ""
}

// startRollout begins a canary for gen. Callers hold the lock.
func (o *Operator) startRollout(gen *Generation, w int) {
	o.cand = gen
	o.cand.Status = StatusCanarying
	o.clean = 0
	o.canary = newCanaryRun(gen.scenario, o.Cfg, gen.ID, changedServices(gen.scenario, o.committed.scenario))
	o.phase = PhaseCanary
	o.rec.Inc(obs.CtrRolloutStarted)
}

// promote installs the candidate's configuration on the live fleet
// controller — an SLA-map, resilience, and scheme swap, never a restart —
// after capturing the current configuration for rollback.
func (o *Operator) promote(w int) {
	sc := o.cand.scenario
	o.saved = savedConfig{
		slas:       o.fleet.App.SLAs,
		resilience: o.fleet.Resilience,
		scheme:     o.fleet.Scheme,
	}
	slas := make(map[string]workload.SLA, len(sc.App.SLAs))
	for k, v := range sc.App.SLAs {
		slas[k] = v
	}
	o.fleet.App.SLAs = slas
	o.fleet.Resilience = sc.Resilience
	o.fleet.Scheme = sc.Scheme
	o.canary = nil
	o.phase = PhasePromoting
	o.cand.Status = StatusPromoting
}

// rollbackFleet restores the last-good configuration after a post-promotion
// breach and immediately re-plans and re-applies under it, leaning on the
// controller's atomic-or-rollback Apply. Models (including drift hot-swaps)
// are not reverted: they track the substrate, not the spec.
func (o *Operator) rollbackFleet(w int, why string) {
	o.fleet.App.SLAs = o.saved.slas
	o.fleet.Resilience = o.saved.resilience
	o.fleet.Scheme = o.saved.scheme
	if plan, err := o.fleet.Plan(o.fleetRates(w)); err == nil {
		// Best-effort immediate revert; the next window re-plans under the
		// restored configuration regardless.
		_ = o.fleet.Apply(plan)
	}
	o.decideRollback(w, why)
}

// decideRollback finalizes the candidate as rolled back (from canary or
// fleet) and returns the machine to idle. Callers hold the lock.
func (o *Operator) decideRollback(w int, why string) {
	o.cand.Status = StatusRolledBack
	o.cand.DecidedWindow = w
	o.cand.Reason = why
	o.cand = nil
	o.canary = nil
	o.clean = 0
	o.phase = PhaseIdle
	o.rec.Inc(obs.CtrRolloutRolledBack)
	o.rec.Set(obs.GaugeGeneration, float64(o.committed.ID))
}

// commit finalizes the candidate as the committed generation: it becomes
// the fleet's declared state and the rollback target for the next rollout.
func (o *Operator) commit(w int) {
	o.cand.Status = StatusCommitted
	o.cand.DecidedWindow = w
	o.committed = o.cand
	o.lastGood = o.cand
	o.cand = nil
	o.phase = PhaseIdle
	o.rec.Inc(obs.CtrRolloutPromoted)
	o.rec.Set(obs.GaugeGeneration, float64(o.committed.ID))
}

// fleetRates is the committed scenario's offered load for window w, cycling
// past the spec horizon so the operator can run indefinitely.
func (o *Operator) fleetRates(w int) map[string]float64 {
	sc := o.committed.scenario
	return sc.OfferedRates(w % sc.Windows)
}

// fleetSeed derives the fleet window seed from the bootstrap scenario alone
// — never from the rollout state — so a push that is canaried and rolled
// back leaves the fleet's windows byte-identical to a no-push run.
func (o *Operator) fleetSeed(w int) uint64 {
	return o.gens[0].scenario.Seed + uint64(w)*1000003 + 17
}

// maxOf returns the maximum value in m (0 for empty/nil).
func maxOf(m map[string]float64) float64 {
	out := 0.0
	for _, v := range m {
		if v > out {
			out = v
		}
	}
	return out
}

func joinPlus(events []string) string {
	out := ""
	for i, e := range events {
		if i > 0 {
			out += "+"
		}
		out += e
	}
	return out
}

// sortedServices returns the app's service names sorted, the canonical
// order the canary slice is cut from.
func sortedServices(sc *spec.Scenario) []string {
	svcs := append([]string(nil), sc.App.Services()...)
	sort.Strings(svcs)
	return svcs
}

// changedServices returns, sorted, the services whose SLA differs between
// the candidate and the committed scenario. These are the services a canary
// must exercise: a tightened SLA that never reaches the canary slice would
// sail through clean and only breach after promotion, fleet-wide.
func changedServices(cand, cur *spec.Scenario) []string {
	var out []string
	for _, svc := range sortedServices(cand) {
		if cand.App.SLAs[svc] != cur.App.SLAs[svc] {
			out = append(out, svc)
		}
	}
	return out
}

// canarySlice returns the canary service set: ceil(fraction·N) service
// names, at least one, with the changed services first. If more services
// changed than the fraction covers, the slice grows to include all of them
// — an unexercised config change is a guardrail blind spot, not a saving.
func canarySlice(sc *spec.Scenario, fraction float64, changed []string) []string {
	svcs := sortedServices(sc)
	n := int(math.Ceil(fraction * float64(len(svcs))))
	if n < 1 {
		n = 1
	}
	if n < len(changed) {
		n = len(changed)
	}
	if n > len(svcs) {
		n = len(svcs)
	}
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for _, svc := range changed {
		seen[svc] = true
		out = append(out, svc)
	}
	for _, svc := range svcs {
		if len(out) >= n {
			break
		}
		if !seen[svc] {
			out = append(out, svc)
		}
	}
	return out
}
