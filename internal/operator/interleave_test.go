package operator

import (
	"strings"
	"testing"

	"erms/internal/obs"
)

// driftBlock appends an aggressive drift loop to the bootstrap spec:
// one window over a 30% deviation is enough to re-fit, so a substrate shift
// and its model swap land in the same window.
const driftBlock = `
drift:
  threshold: 0.3
  consecutive: 1
`

// TestDriftSwapAndBreachSameWindow pins the nastiest interleaving: a
// guardrail breach lands in the same window as a drift-loop model swap.
// The rollback must revert the configuration while the swapped models —
// which track the substrate, not the spec — survive.
func TestDriftSwapAndBreachSameWindow(t *testing.T) {
	// Drift signal needs whole-minute live samples past warmup, so this test
	// runs 2-minute windows (cf. figDrift); the push must match window_min
	// to pass admission.
	widen := func(y string) string {
		y = strings.Replace(y, "window_min: 1", "window_min: 2", 1)
		return strings.Replace(y, "duration_min: 8", "duration_min: 16", 1)
	}
	rec := obs.New(nil)
	o, err := New(compileSpec(t, widen(baseSpecYAML)+driftBlock), testConfig(), rec)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, o, 1)
	if _, err := o.Push([]byte(widen(goodPushYAML)), "test"); err != nil {
		t.Fatal(err)
	}
	// Windows 1-2: clean canary, promotion at the end of window 2's canary
	// stage, so window 2's fleet step runs under the candidate (promoting →
	// soaking) and window 3 is the soak window.
	stepN(t, o, 2)
	if st := o.StatusSnapshot(); st.Phase != "soaking" {
		t.Fatalf("phase before soak window = %s, want soaking", st.Phase)
	}

	// Shift the substrate under the fleet (the drift experiment's mid-run
	// service-time jump) and force the guardrail shut in the same window:
	// maxOf(...) is never negative, so any reading breaches.
	p := o.fleet.App.Profiles["search"]
	p.BaseMs *= 3
	o.fleet.App.Profiles["search"] = p
	o.Cfg.MaxViolationRate = -1

	sts := stepN(t, o, 1)
	st := sts[0]
	if !st.Breach || !strings.Contains(st.Event, "rolled_back") {
		t.Fatalf("soak window = %+v, want breach + rolled_back", st)
	}
	if st.ModelSwaps == 0 {
		t.Fatalf("drift loop swapped no models in the breach window: %+v", st)
	}
	final := o.StatusSnapshot()
	if final.Committed != 1 || final.Phase != "idle" {
		t.Fatalf("rollback did not restore generation 1: %+v", final)
	}
	if g := final.Generations[1]; g.Status != StatusRolledBack || !strings.Contains(g.Reason, "soak") {
		t.Fatalf("generation 2 = %+v, want rolled back in soak", g)
	}

	// The rollback restored the spec, not the models: the next window plans
	// with the re-fitted models against the shifted substrate, so the drift
	// loop has nothing left to swap.
	o.Cfg.MaxViolationRate = 10 // reopen the guardrail
	after := stepN(t, o, 2)
	for _, st := range after {
		if st.ModelSwaps != 0 {
			t.Fatalf("window %d re-swapped %d models after rollback; the swap should have survived", st.Window, st.ModelSwaps)
		}
	}
}

// TestPushDuringRolloutInterleaving table-tests the concurrency policy for
// a push landing while a previous rollout is in flight: supersede during
// canary (the fleet never saw the old candidate), queue during soak (the
// guardrail verdict on the in-flight candidate must not be left undecided).
func TestPushDuringRolloutInterleaving(t *testing.T) {
	secondPushYAML := strings.Replace(
		strings.Replace(goodPushYAML, "name: good-push", "name: good-push-2", 1),
		"search: 170", "search: 160", 1)

	t.Run("push during canary supersedes", func(t *testing.T) {
		rec := obs.New(nil)
		o, err := New(compileSpec(t, baseSpecYAML), testConfig(), rec)
		if err != nil {
			t.Fatal(err)
		}
		stepN(t, o, 1)
		genA, err := o.Push([]byte(goodPushYAML), "test")
		if err != nil {
			t.Fatal(err)
		}
		stepN(t, o, 1) // one clean canary window; still canarying
		genB, err := o.Push([]byte(secondPushYAML), "test")
		if err != nil {
			t.Fatal(err)
		}
		if genA.Status != StatusSuperseded || !strings.Contains(genA.Reason, "generation 3") {
			t.Fatalf("generation A = %+v, want superseded by generation 3", genA)
		}
		if genB.Status != StatusCanarying {
			t.Fatalf("generation B = %+v, want canarying", genB)
		}
		if got := rec.Value(obs.CtrRolloutSuperseded); got != 1 {
			t.Fatalf("rollout_superseded_total = %g, want 1", got)
		}
		// B's canary restarts from zero clean windows and must commit.
		stepN(t, o, 4)
		final := o.StatusSnapshot()
		if final.Committed != genB.ID || final.Phase != "idle" {
			t.Fatalf("after supersede, committed = %d phase %s, want %d idle", final.Committed, final.Phase, genB.ID)
		}
	})

	t.Run("push during soak queues", func(t *testing.T) {
		o := newTestOperator(t, testConfig())
		stepN(t, o, 1)
		genA, err := o.Push([]byte(goodPushYAML), "test")
		if err != nil {
			t.Fatal(err)
		}
		stepN(t, o, 2)
		if st := o.StatusSnapshot(); st.Phase != "soaking" {
			t.Fatalf("phase = %s, want soaking", st.Phase)
		}
		genB, err := o.Push([]byte(secondPushYAML), "test")
		if err != nil {
			t.Fatal(err)
		}
		if genB.Status != StatusQueued {
			t.Fatalf("generation B = %+v, want queued", genB)
		}
		if st := o.StatusSnapshot(); len(st.Queued) != 1 || st.Queued[0] != genB.ID {
			t.Fatalf("queued = %v, want [%d]", st.Queued, genB.ID)
		}

		// Window 3 finishes A's soak and commits it; B stays queued until the
		// machine is idle, so its canary starts at window 4.
		sts := stepN(t, o, 1)
		if genA.Status != StatusCommitted || genA.DecidedWindow != sts[0].Window {
			t.Fatalf("generation A = %+v, want committed in window %d", genA, sts[0].Window)
		}
		sts = stepN(t, o, 1)
		if !strings.Contains(sts[0].Event, "rollout_started") || genB.Status != StatusCanarying {
			t.Fatalf("window %d = %+v (genB %+v), want B's rollout started", sts[0].Window, sts[0], genB)
		}
		stepN(t, o, 4)
		final := o.StatusSnapshot()
		if final.Committed != genB.ID || final.LastGood != genB.ID {
			t.Fatalf("queued push never committed: %+v", final)
		}
	})
}
