package operator

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"erms/internal/obs"
)

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestAdminHandler(t *testing.T) {
	o := newTestOperator(t, testConfig())
	stepN(t, o, 2)
	h := o.AdminHandler()

	t.Run("status", func(t *testing.T) {
		w := do(t, h, http.MethodGet, "/status", "")
		if w.Code != http.StatusOK {
			t.Fatalf("GET /status = %d: %s", w.Code, w.Body)
		}
		var st Status
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Window != 2 || st.Phase != "idle" || len(st.Generations) != 1 {
			t.Fatalf("status = %+v", st)
		}
		if w := do(t, h, http.MethodPost, "/status", ""); w.Code != http.StatusMethodNotAllowed {
			t.Fatalf("POST /status = %d, want 405", w.Code)
		}
	})

	t.Run("push good spec", func(t *testing.T) {
		w := do(t, h, http.MethodPost, "/spec", goodPushYAML)
		if w.Code != http.StatusOK {
			t.Fatalf("POST /spec = %d: %s", w.Code, w.Body)
		}
		var gen Generation
		if err := json.Unmarshal(w.Body.Bytes(), &gen); err != nil {
			t.Fatal(err)
		}
		if gen.ID != 2 || gen.Status != StatusCanarying || gen.Source != "api" {
			t.Fatalf("gen = %+v, want id 2 canarying from api", gen)
		}
	})

	t.Run("push rejected spec", func(t *testing.T) {
		bad := strings.Replace(goodPushYAML, "hosts: 20", "hosts: 30", 1)
		w := do(t, h, http.MethodPost, "/spec", bad)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("POST /spec (bad) = %d: %s", w.Code, w.Body)
		}
		var resp struct {
			Error      string     `json:"error"`
			Generation Generation `json:"generation"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp.Error, "run.hosts") || resp.Generation.Status != StatusRejected {
			t.Fatalf("rejection = %+v", resp)
		}
	})

	t.Run("explain", func(t *testing.T) {
		w := do(t, h, http.MethodGet, "/explain/search", "")
		if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "search") {
			t.Fatalf("GET /explain/search = %d: %s", w.Code, w.Body)
		}
		if w := do(t, h, http.MethodGet, "/explain/nope", ""); w.Code != http.StatusNotFound {
			t.Fatalf("GET /explain/nope = %d, want 404", w.Code)
		}
		if w := do(t, h, http.MethodGet, "/explain/", ""); w.Code != http.StatusBadRequest {
			t.Fatalf("GET /explain/ = %d, want 400", w.Code)
		}
	})

	t.Run("oversized spec", func(t *testing.T) {
		w := do(t, h, http.MethodPost, "/spec", strings.Repeat("#", maxSpecBytes+2))
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized POST /spec = %d, want 413", w.Code)
		}
	})
}

// TestCombinedHandler: one mux serves both the admin API and the
// observability endpoints, so -obs-addr is the single operational surface.
func TestCombinedHandler(t *testing.T) {
	rec := obs.New(nil)
	o, err := New(compileSpec(t, baseSpecYAML), testConfig(), rec)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, o, 1)
	h := o.Handler(rec)

	if w := do(t, h, http.MethodGet, "/status", ""); w.Code != http.StatusOK {
		t.Fatalf("GET /status = %d", w.Code)
	}
	w := do(t, h, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "erms_self_spec_generation") {
		t.Fatalf("GET /metrics = %d, want generation gauge in body", w.Code)
	}
}
