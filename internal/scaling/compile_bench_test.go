package scaling_test

import (
	"math"
	"testing"

	"erms/internal/apps"
	"erms/internal/cluster"
	"erms/internal/profiling"
	"erms/internal/scaling"
)

// benchInputs builds per-service scaling inputs over the exact-shape
// Alibaba-scale topology: this is the per-window planner workload the
// compiled-template path optimizes.
func benchInputs(tb testing.TB, cfg apps.ScaleConfig) []scaling.Input {
	tb.Helper()
	app := apps.ScaleTopology(cfg)
	cl := cluster.NewPaperCluster()
	threads := make(map[string]int, len(app.Containers))
	shares := make(map[string]float64, len(app.Containers))
	for ms, spec := range app.Containers {
		threads[ms] = spec.Threads
		shares[ms] = cl.DominantShare(spec)
	}
	models := profiling.AnalyticModels(app.Profiles, threads, cluster.DefaultInterference)
	inputs := make([]scaling.Input, 0, len(app.Graphs))
	for _, g := range app.Graphs {
		loads := make(map[string]float64, g.Len())
		for _, ms := range g.Microservices() {
			loads[ms] = 12000 * float64(len(g.NodesFor(ms)))
		}
		inputs = append(inputs, scaling.Input{
			Graph:     g,
			SLA:       app.SLAs[g.Service],
			Models:    models,
			Shares:    shares,
			Workloads: loads,
			CPUUtil:   0.35,
			MemUtil:   0.25,
		})
	}
	return inputs
}

// BenchmarkCompiledVsNaive measures one steady-state planner window over the
// Alibaba-scale topology: the naive path re-validates, re-merges, and
// re-sorts every window; the compiled path replays precompiled templates and
// only re-evaluates the per-window arithmetic. The ratio is the repo's
// analog of the paper's 22.5× planning-overhead reduction (§8.4).
func BenchmarkCompiledVsNaive(b *testing.B) {
	cfg := apps.ScaleConfig{Seed: 42, Services: 100, MicroservicesPerService: 50, SharingDegree: 10}
	inputs := benchInputs(b, cfg)

	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range inputs {
				if _, err := scaling.Plan(inputs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		cache := scaling.NewTemplateCache()
		// Warm: the steady-state window is what the reconciler pays.
		for j := range inputs {
			if _, err := cache.Plan(inputs[j]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range inputs {
				if _, err := cache.Plan(inputs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// TestCompiledMatchesNaiveAtScale pins the bit-identity contract on the full
// benchmark topology (not just small unit graphs).
func TestCompiledMatchesNaiveAtScale(t *testing.T) {
	cfg := apps.ScaleConfig{Seed: 42, Services: 40, MicroservicesPerService: 30, SharingDegree: 8}
	inputs := benchInputs(t, cfg)
	cache := scaling.NewTemplateCache()
	for round := 0; round < 2; round++ {
		for j := range inputs {
			want, errW := scaling.Plan(inputs[j])
			got, errG := cache.Plan(inputs[j])
			if errW != nil || errG != nil {
				t.Fatalf("svc %d: naive err %v, cached err %v", j, errW, errG)
			}
			if math.Float64bits(want.ResourceUsage) != math.Float64bits(got.ResourceUsage) {
				t.Fatalf("svc %d: usage bits diverged", j)
			}
			for ms, w := range want.Targets {
				if math.Float64bits(w) != math.Float64bits(got.Targets[ms]) {
					t.Fatalf("svc %d: target %s diverged", j, ms)
				}
			}
			for ms, w := range want.Containers {
				if got.Containers[ms] != w {
					t.Fatalf("svc %d: containers %s diverged", j, ms)
				}
			}
		}
	}
	st := cache.Stats()
	if st.Compiles != uint64(len(inputs)) || st.Hits != uint64(len(inputs)) {
		t.Fatalf("stats = %+v, want %d compiles then %d hits", st, len(inputs), len(inputs))
	}
}
