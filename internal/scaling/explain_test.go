package scaling

import (
	"strings"
	"testing"
)

func TestExplainRendersMergeTree(t *testing.T) {
	in := fig7Input()
	out, err := Explain(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"service svc", "SLA 100.00ms", "merge tree",
		"SEQ*", "PAR**", "Eq. 7-9", "Eq. 11-12",
		"T ", "Url", "U ", "C ",
		"latency targets", "total containers",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainChainHasNoParallelNodes(t *testing.T) {
	in := chainInput(t, 3, 150)
	out, err := Explain(in)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "PAR**") {
		t.Fatalf("chain should have no parallel merges:\n%s", out)
	}
	if !strings.Contains(out, "SEQ*") {
		t.Fatalf("chain should have sequential merges:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	in := fig7Input()
	delete(in.Models, "C")
	if _, err := Explain(in); err == nil {
		t.Fatal("invalid input accepted")
	}
	in2 := fig7Input()
	in2.SLA.Threshold = 0.001 // infeasible
	if _, err := Explain(in2); err == nil {
		t.Fatal("infeasible input accepted")
	}
}
