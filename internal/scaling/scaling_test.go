package scaling

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"erms/internal/graph"
	"erms/internal/profiling"
	"erms/internal/stats"
	"erms/internal/workload"
)

// constModel is a deterministic two-interval model for tests.
type constModel struct {
	aLo, bLo float64
	aHi, bHi float64
	knee     float64
}

func (m constModel) Knee(_, _ float64) float64 { return m.knee }
func (m constModel) Params(high bool, _, _ float64) (float64, float64) {
	if high {
		return m.aHi, m.bHi
	}
	return m.aLo, m.bLo
}
func (m constModel) Predict(w, cpu, mem float64) float64 {
	a, b := m.Params(w > m.knee, cpu, mem)
	return a*w + b
}

// mkModel builds a single-interval model (both intervals identical) so the
// closed-form comparisons are exact.
func mkModel(a, b float64) profiling.Model {
	return constModel{aLo: a, bLo: b, aHi: a, bHi: b, knee: 1e12}
}

func chainInput(t *testing.T, n int, sla float64) Input {
	t.Helper()
	g := graph.New("svc", msName(0))
	parent := g.Root
	for i := 1; i < n; i++ {
		parent = g.AddStage(parent, msName(i))[0]
	}
	in := Input{
		Graph:     g,
		SLA:       workload.P95SLA("svc", sla),
		Models:    map[string]profiling.Model{},
		Shares:    map[string]float64{},
		Workloads: map[string]float64{},
	}
	r := stats.NewRNG(uint64(n))
	for i := 0; i < n; i++ {
		ms := msName(i)
		in.Models[ms] = mkModel(0.001+0.01*r.Float64(), 1+2*r.Float64())
		in.Shares[ms] = 0.0001 + 0.0002*r.Float64()
		in.Workloads[ms] = 1000 + 9000*r.Float64()
	}
	return in
}

func msName(i int) string {
	return "ms" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestPlanMatchesClosedFormOnChain(t *testing.T) {
	in := chainInput(t, 5, 200)
	alloc, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	var a, b, r, gamma []float64
	var order []string
	for i := 0; i < 5; i++ {
		ms := msName(i)
		order = append(order, ms)
		ai, bi := in.Models[ms].Params(true, 0, 0)
		a = append(a, ai)
		b = append(b, bi)
		r = append(r, in.Shares[ms])
		gamma = append(gamma, in.Workloads[ms])
	}
	targets, containers, err := SequentialClosedForm(a, b, r, gamma, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i, ms := range order {
		if math.Abs(alloc.Targets[ms]-targets[i]) > 1e-6 {
			t.Fatalf("%s target %v != closed form %v", ms, alloc.Targets[ms], targets[i])
		}
		if math.Abs(alloc.ContainersRaw[ms]-containers[i]) > 1e-6 {
			t.Fatalf("%s containers %v != closed form %v", ms, alloc.ContainersRaw[ms], containers[i])
		}
	}
	// Targets along the chain sum to the SLA.
	var sum float64
	for _, ms := range order {
		sum += alloc.Targets[ms]
	}
	if math.Abs(sum-200) > 1e-6 {
		t.Fatalf("targets sum to %v, want 200", sum)
	}
}

func TestClosedFormIsOptimal(t *testing.T) {
	// KKT optimality: any feasible perturbation of the latency targets that
	// keeps the chain summing to the SLA must not use fewer resources.
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 7)
		k := 2 + r.Intn(5)
		a := make([]float64, k)
		b := make([]float64, k)
		rr := make([]float64, k)
		gamma := make([]float64, k)
		var bSum float64
		for i := 0; i < k; i++ {
			a[i] = 0.001 + 0.01*r.Float64()
			b[i] = 1 + 3*r.Float64()
			rr[i] = 0.0001 + 0.0005*r.Float64()
			gamma[i] = 500 + 5000*r.Float64()
			bSum += b[i]
		}
		sla := bSum + 20 + 100*r.Float64()
		targets, containers, err := SequentialClosedForm(a, b, rr, gamma, sla)
		if err != nil {
			return false
		}
		var optimal float64
		for i := 0; i < k; i++ {
			optimal += containers[i] * rr[i]
		}
		// Perturb: move slack between two random components.
		for trial := 0; trial < 20; trial++ {
			i, j := r.Intn(k), r.Intn(k)
			if i == j {
				continue
			}
			eps := (targets[i] - b[i]) * 0.3 * r.Float64()
			ti, tj := targets[i]-eps, targets[j]+eps
			if ti <= b[i] {
				continue
			}
			var usage float64
			for m := 0; m < k; m++ {
				tm := targets[m]
				if m == i {
					tm = ti
				}
				if m == j {
					tm = tj
				}
				usage += a[m] * gamma[m] / (tm - b[m]) * rr[m]
			}
			if usage < optimal-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFormulasMatchPaper(t *testing.T) {
	// Eq. 7-9 for two sequential components with equal workload γ=1.
	au, bu, ru := 0.004, 2.0, 0.0002
	ac, bc, rc := 0.001, 1.0, 0.0004
	u := leafNode("u", nil, au, bu, 1, ru)
	c := leafNode("c", nil, ac, bc, 1, rc)
	m := seqMerge([]*mergeNode{u, c})
	wantA := (math.Sqrt(au*ru) + math.Sqrt(ac*rc)) * (math.Sqrt(au/ru) + math.Sqrt(ac/rc))
	wantB := bu + bc
	wantR := (math.Sqrt(au*ru) + math.Sqrt(ac*rc)) / (math.Sqrt(au/ru) + math.Sqrt(ac/rc))
	if math.Abs(m.A-wantA) > 1e-12 || math.Abs(m.B-wantB) > 1e-12 || math.Abs(m.R-wantR) > 1e-12 {
		t.Fatalf("seq merge = (%v,%v,%v), want (%v,%v,%v)", m.A, m.B, m.R, wantA, wantB, wantR)
	}
	// Eq. 11 for parallel: a** = a1+a2, b** = max.
	p := parMerge([]*mergeNode{u, c})
	if math.Abs(p.A-(au+ac)) > 1e-12 {
		t.Fatalf("par merge A = %v, want %v", p.A, au+ac)
	}
	if p.B != 2.0 {
		t.Fatalf("par merge B = %v, want max(2,1)", p.B)
	}
	// Sequential merge is associative in (p, q).
	d := leafNode("d", nil, 0.002, 0.5, 1, 0.0003)
	left := seqMerge([]*mergeNode{seqMerge([]*mergeNode{u, c}), d})
	flat := seqMerge([]*mergeNode{u, c, d})
	if math.Abs(left.A-flat.A) > 1e-12 || math.Abs(left.R-flat.R) > 1e-12 {
		t.Fatal("sequential merge not associative")
	}
}

// fig7Input builds the Fig. 7 graph (T calls Url,U in parallel then C).
func fig7Input() Input {
	g := graph.New("svc", "T")
	g.AddStage(g.Root, "Url", "U")
	g.AddStage(g.Root, "C")
	return Input{
		Graph: g,
		SLA:   workload.P95SLA("svc", 100),
		Models: map[string]profiling.Model{
			"T":   mkModel(0.001, 0.5),
			"Url": mkModel(0.004, 2),
			"U":   mkModel(0.002, 2),
			"C":   mkModel(0.003, 1),
		},
		Shares:    map[string]float64{"T": 0.0002, "Url": 0.0002, "U": 0.0002, "C": 0.0002},
		Workloads: map[string]float64{"T": 5000, "Url": 5000, "U": 5000, "C": 5000},
	}
}

func TestPlanFig7ParallelTargetsEqual(t *testing.T) {
	in := fig7Input()
	alloc, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	// Url and U have equal intercepts, so their (virtual-node) targets are
	// identical (Eq. 10).
	if math.Abs(alloc.Targets["Url"]-alloc.Targets["U"]) > 1e-9 {
		t.Fatalf("parallel targets differ: Url=%v U=%v", alloc.Targets["Url"], alloc.Targets["U"])
	}
	// All targets positive and below the SLA.
	for ms, target := range alloc.Targets {
		if target <= 0 || target >= 100 {
			t.Fatalf("%s target = %v", ms, target)
		}
	}
	// Modeled end-to-end latency with the fractional allocation equals the
	// SLA exactly (the optimum binds the constraint); rounding up can only
	// help.
	e2e, err := EndToEndModelLatency(in, alloc.Containers)
	if err != nil {
		t.Fatal(err)
	}
	if e2e > 100+1e-6 {
		t.Fatalf("end-to-end model latency %v exceeds SLA", e2e)
	}
}

func TestPlanBindsSLAExactly(t *testing.T) {
	in := fig7Input()
	alloc, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate with the *raw* containers: T + max(Url, U) + C = SLA.
	lat := func(ms string) float64 {
		a, b := in.Models[ms].Params(alloc.UsedHigh[ms], 0, 0)
		return a*in.Workloads[ms]/alloc.ContainersRaw[ms] + b
	}
	e2e := lat("T") + math.Max(lat("Url"), lat("U")) + lat("C")
	if math.Abs(e2e-100) > 0.5 {
		t.Fatalf("raw end-to-end = %v, want ~100 (constraint binds)", e2e)
	}
}

func TestHigherWorkloadRaisesOwnTarget(t *testing.T) {
	// §4.2: when a microservice's workload grows, it receives a higher
	// latency target and the others receive lower ones.
	base := chainInput(t, 3, 150)
	a1, err := Plan(base)
	if err != nil {
		t.Fatal(err)
	}
	bumped := base
	bumped.Workloads = map[string]float64{}
	for ms, w := range base.Workloads {
		bumped.Workloads[ms] = w
	}
	bumped.Workloads[msName(1)] *= 16
	a2, err := Plan(bumped)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Targets[msName(1)] <= a1.Targets[msName(1)] {
		t.Fatalf("bumped microservice target fell: %v -> %v", a1.Targets[msName(1)], a2.Targets[msName(1)])
	}
	for _, other := range []string{msName(0), msName(2)} {
		if a2.Targets[other] >= a1.Targets[other] {
			t.Fatalf("%s target should drop: %v -> %v", other, a1.Targets[other], a2.Targets[other])
		}
	}
}

func TestTwoIntervalRecomputation(t *testing.T) {
	// A microservice whose high-interval knee latency exceeds its allocated
	// target must be replanned with the low interval (§5.3.1).
	g := graph.New("svc", "A")
	g.AddStage(g.Root, "B")
	in := Input{
		Graph: g,
		SLA:   workload.P95SLA("svc", 30),
		Models: map[string]profiling.Model{
			// A's high interval only reaches down to 20ms at the knee
			// (a=0.01, knee=2000, b=5 -> knee latency 25): a 15ms-ish target
			// forces the low interval.
			"A": constModel{aLo: 0.001, bLo: 2, aHi: 0.01, bHi: 5, knee: 2000},
			// B's knee latency is ~1.2ms, far below any target it can get,
			// so B legitimately stays in the high-workload interval.
			"B": constModel{aLo: 0.001, bLo: 1, aHi: 0.002, bHi: 1, knee: 100},
		},
		Shares:    map[string]float64{"A": 0.0002, "B": 0.0002},
		Workloads: map[string]float64{"A": 3000, "B": 3000},
	}
	alloc, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.UsedHigh["A"] {
		t.Fatalf("A should use the low interval (target %v)", alloc.Targets["A"])
	}
	if !alloc.UsedHigh["B"] {
		t.Fatal("B should stay on the high interval")
	}
}

func TestPlanInfeasible(t *testing.T) {
	in := chainInput(t, 4, 2) // SLA below the sum of intercepts
	_, err := Plan(in)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPlanValidation(t *testing.T) {
	in := chainInput(t, 3, 100)
	delete(in.Models, msName(1))
	if _, err := Plan(in); err == nil {
		t.Fatal("missing model accepted")
	}
	in2 := chainInput(t, 3, 100)
	in2.Workloads[msName(0)] = 0
	if _, err := Plan(in2); err == nil {
		t.Fatal("zero workload accepted")
	}
	in3 := chainInput(t, 3, 100)
	in3.Shares[msName(2)] = 0
	if _, err := Plan(in3); err == nil {
		t.Fatal("zero share accepted")
	}
}

func TestMaxPerContainerCap(t *testing.T) {
	in := chainInput(t, 2, 500) // generous SLA -> few containers
	uncapped, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	in.MaxPerContainer = map[string]float64{msName(0): 100} // force many containers
	capped, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	wantMin := in.Workloads[msName(0)] / 100
	if capped.ContainersRaw[msName(0)] < wantMin-1e-9 {
		t.Fatalf("cap ignored: %v < %v", capped.ContainersRaw[msName(0)], wantMin)
	}
	if capped.ContainersRaw[msName(0)] <= uncapped.ContainersRaw[msName(0)] {
		t.Fatal("cap should increase container count in this setup")
	}
}

func TestDuplicateMicroserviceTakesTightest(t *testing.T) {
	// Diamond: A calls B twice (two positions).
	g := graph.New("svc", "A")
	g.AddSequential(g.Root, "B", "B")
	in := Input{
		Graph:     g,
		SLA:       workload.P95SLA("svc", 100),
		Models:    map[string]profiling.Model{"A": mkModel(0.001, 1), "B": mkModel(0.002, 2)},
		Shares:    map[string]float64{"A": 0.0002, "B": 0.0002},
		Workloads: map[string]float64{"A": 1000, "B": 2000},
	}
	alloc, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Containers["B"] < 1 || alloc.Targets["B"] <= 0 {
		t.Fatalf("duplicate handling broken: %+v", alloc)
	}
}

func TestResourceUsageOfMatchesPlan(t *testing.T) {
	in := fig7Input()
	alloc, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	usage, err := ResourceUsageOf(in, alloc.Targets)
	if err != nil {
		t.Fatal(err)
	}
	// ResourceUsageOf recomputes n from targets; for duplicate-free graphs
	// it matches the plan's raw usage.
	if math.Abs(usage-alloc.ResourceUsage)/alloc.ResourceUsage > 0.01 {
		t.Fatalf("usage %v vs plan %v", usage, alloc.ResourceUsage)
	}
}

func TestPlanScalability(t *testing.T) {
	// §6.5.2: latency target computation on 1000+-node graphs is fast.
	r := stats.NewRNG(42)
	g := graph.New("big", "root")
	in := Input{
		Graph:     g,
		SLA:       workload.P95SLA("big", 5000),
		Models:    map[string]profiling.Model{"root": mkModel(0.001, 0.2)},
		Shares:    map[string]float64{"root": 0.0002},
		Workloads: map[string]float64{"root": 1000},
	}
	open := []*graph.Node{g.Root}
	for i := 0; g.Len() < 1200; i++ {
		p := open[r.Intn(len(open))]
		width := 1 + r.Intn(3)
		names := make([]string, width)
		for k := range names {
			names[k] = "n" + itoa(g.Len()+k)
		}
		st := g.AddStage(p, names...)
		open = append(open, st...)
		for _, ms := range names {
			in.Models[ms] = mkModel(0.0005+0.002*r.Float64(), 0.1+0.4*r.Float64())
			in.Shares[ms] = 0.0002
			in.Workloads[ms] = 1000
		}
	}
	alloc, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Targets) < 1000 {
		t.Fatalf("targets = %d", len(alloc.Targets))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestSequentialClosedFormErrors(t *testing.T) {
	if _, _, err := SequentialClosedForm(nil, nil, nil, nil, 100); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := SequentialClosedForm([]float64{1}, []float64{200}, []float64{1}, []float64{1}, 100); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
	if _, _, err := SequentialClosedForm([]float64{0}, []float64{1}, []float64{1}, []float64{1}, 100); err == nil {
		t.Fatal("zero slope accepted")
	}
}

func TestSortedTargets(t *testing.T) {
	in := fig7Input()
	alloc, _ := Plan(in)
	order := SortedTargets(alloc)
	if len(order) != 4 || order[0] != "C" {
		t.Fatalf("order = %v", order)
	}
}
