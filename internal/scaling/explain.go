package scaling

import (
	"fmt"
	"strings"
)

// Explain renders the Algorithm 1 merge tree and the resulting latency
// targets for one service as human-readable text — the Fig. 7/8 walkthrough
// for an arbitrary graph. It is intended for operators debugging why a
// microservice received its target.
func Explain(in Input) (string, error) {
	if err := in.validate(); err != nil {
		return "", err
	}
	alloc, err := Plan(in)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "service %s: SLA %.2fms (P%.0f), cluster util cpu=%.0f%% mem=%.0f%%\n",
		in.Graph.Service, in.SLA.Threshold, in.SLA.Percentile*100, in.CPUUtil*100, in.MemUtil*100)
	b.WriteString("merge tree (Algorithm 1; leaves are real microservices):\n")

	// Rebuild the merge tree with the final interval choices so the printed
	// parameters match the allocation exactly.
	root := buildMergeTree(in, alloc.UsedHigh)
	var render func(mn *mergeNode, depth int)
	render = func(mn *mergeNode, depth int) {
		indent := strings.Repeat("  ", depth+1)
		switch mn.kind {
		case kindLeaf:
			iv := "low"
			if alloc.UsedHigh[mn.ms] {
				iv = "high"
			}
			fmt.Fprintf(&b, "%s%s  [A=%.4g b=%.4g R=%.4g interval=%s]\n", indent, mn.ms, mn.A, mn.B, mn.R, iv)
		case kindSeq:
			fmt.Fprintf(&b, "%sSEQ*  [A=%.4g b=%.4g R=%.4g]  (Eq. 7-9)\n", indent, mn.A, mn.B, mn.R)
		case kindPar:
			fmt.Fprintf(&b, "%sPAR** [A=%.4g b=%.4g R=%.4g]  (Eq. 11-12)\n", indent, mn.A, mn.B, mn.R)
		}
		for _, c := range mn.children {
			render(c, depth+1)
		}
	}
	render(root, 0)

	b.WriteString("latency targets (Eq. 5 unwind):\n")
	for _, ms := range SortedTargets(alloc) {
		fmt.Fprintf(&b, "  %-28s target %8.3fms  containers %4d (raw %.2f)\n",
			ms, alloc.Targets[ms], alloc.Containers[ms], alloc.ContainersRaw[ms])
	}
	fmt.Fprintf(&b, "total containers %d, resource usage %.6f\n", alloc.TotalContainers(), alloc.ResourceUsage)
	return b.String(), nil
}
