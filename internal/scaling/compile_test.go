package scaling

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"erms/internal/graph"
	"erms/internal/profiling"
	"erms/internal/workload"
)

// requireAllocBitIdentical fails unless two allocations are bit-identical in
// every float field — the compiled path's contract is exact replay, not
// approximate agreement.
func requireAllocBitIdentical(t *testing.T, want, got *Allocation, ctx string) {
	t.Helper()
	if want.Service != got.Service {
		t.Fatalf("%s: service %q != %q", ctx, got.Service, want.Service)
	}
	if len(want.Targets) != len(got.Targets) {
		t.Fatalf("%s: %d targets != %d", ctx, len(got.Targets), len(want.Targets))
	}
	for ms, w := range want.Targets {
		if g, ok := got.Targets[ms]; !ok || math.Float64bits(w) != math.Float64bits(g) {
			t.Fatalf("%s: target[%s] = %v (bits %x), want %v (bits %x)",
				ctx, ms, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
	for ms, w := range want.ContainersRaw {
		if g := got.ContainersRaw[ms]; math.Float64bits(w) != math.Float64bits(g) {
			t.Fatalf("%s: raw[%s] = %v, want %v", ctx, ms, g, w)
		}
	}
	for ms, w := range want.Containers {
		if g := got.Containers[ms]; w != g {
			t.Fatalf("%s: containers[%s] = %d, want %d", ctx, ms, g, w)
		}
	}
	for ms, w := range want.UsedHigh {
		if g, ok := got.UsedHigh[ms]; !ok || w != g {
			t.Fatalf("%s: usedHigh[%s] = %v, want %v", ctx, ms, g, w)
		}
	}
	if math.Float64bits(want.ResourceUsage) != math.Float64bits(got.ResourceUsage) {
		t.Fatalf("%s: usage %v (bits %x), want %v (bits %x)", ctx,
			got.ResourceUsage, math.Float64bits(got.ResourceUsage),
			want.ResourceUsage, math.Float64bits(want.ResourceUsage))
	}
}

// TestCompiledPlanBitIdenticalOnRandomGraphs: on random topologies (mixing
// one- and two-interval models, SLAs near the feasibility floor) a compiled
// template reproduces Plan bit for bit — including the infeasible error.
func TestCompiledPlanBitIdenticalOnRandomGraphs(t *testing.T) {
	f := func(seed uint16) bool {
		in := randomInput(uint64(seed) + 1)
		want, wantErr := Plan(in)
		tpl, err := Compile(in)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		got, gotErr := tpl.Plan(in.Workloads, in.CPUUtil, in.MemUtil)
		if wantErr != nil {
			if gotErr == nil || wantErr.Error() != gotErr.Error() {
				t.Logf("seed %d: err %v, want %v", seed, gotErr, wantErr)
				return false
			}
			return true
		}
		if gotErr != nil {
			t.Logf("seed %d: unexpected err %v", seed, gotErr)
			return false
		}
		requireAllocBitIdentical(t, want, got, "random")
		// Re-evaluating the same template must stay bit-identical (scratch
		// reuse must not leak state between windows).
		got2, err := tpl.Plan(in.Workloads, in.CPUUtil, in.MemUtil)
		if err != nil {
			return false
		}
		requireAllocBitIdentical(t, want, got2, "random/reeval")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// duplicateMSInput builds a graph where one microservice occupies several
// positions (the tightest-target / max-containers merge path) and models
// have finite knees so the two-interval flip pass runs.
func duplicateMSInput() Input {
	g := graph.New("dup", "front")
	kids := g.AddStage(g.Root, "mid", "shared")
	g.AddStage(kids[0], "shared", "leafA")
	g.AddStage(kids[1], "leafB")
	g.AddStage(kids[1], "shared")
	in := Input{
		Graph: g,
		SLA:   workload.P95SLA("dup", 90),
		Models: map[string]profiling.Model{
			"front":  constModel{aLo: 0.002, bLo: 2, aHi: 0.008, bHi: 2, knee: 4000},
			"mid":    constModel{aLo: 0.001, bLo: 1.5, aHi: 0.004, bHi: 1.5, knee: 6000},
			"shared": constModel{aLo: 0.003, bLo: 3, aHi: 0.012, bHi: 3, knee: 2500},
			"leafA":  constModel{aLo: 0.0015, bLo: 1, aHi: 0.006, bHi: 1, knee: 5000},
			"leafB":  constModel{aLo: 0.002, bLo: 2.5, aHi: 0.008, bHi: 2.5, knee: 3500},
		},
		Shares: map[string]float64{
			"front": 0.0003, "mid": 0.0002, "shared": 0.0004, "leafA": 0.0001, "leafB": 0.0002,
		},
		Workloads: map[string]float64{
			"front": 6000, "mid": 6000, "shared": 14000, "leafA": 6000, "leafB": 6000,
		},
		CPUUtil: 0.4, MemUtil: 0.3,
		MaxPerContainer: map[string]float64{"shared": 2400},
	}
	return in
}

func TestCompiledPlanDuplicateMicroservices(t *testing.T) {
	in := duplicateMSInput()
	want, err := Plan(in)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	tpl, err := Compile(in)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	got, err := tpl.Plan(in.Workloads, in.CPUUtil, in.MemUtil)
	if err != nil {
		t.Fatalf("template: %v", err)
	}
	requireAllocBitIdentical(t, want, got, "dup")
	if len(got.Targets) != 5 {
		t.Fatalf("expected 5 distinct microservices, got %d", len(got.Targets))
	}
}

func TestCompiledPlanInfeasibleErrorMatches(t *testing.T) {
	in := chainInput(t, 4, 200)
	in.SLA.Threshold = 1 // below the sum of intercepts
	_, wantErr := Plan(in)
	if !errors.Is(wantErr, ErrInfeasible) {
		t.Fatalf("naive err = %v, want infeasible", wantErr)
	}
	cache := NewTemplateCache()
	_, gotErr := cache.Plan(in)
	if !errors.Is(gotErr, ErrInfeasible) {
		t.Fatalf("cached err = %v, want infeasible", gotErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("error text diverged:\n naive: %s\ncached: %s", wantErr, gotErr)
	}
}

func TestCompiledPlanWorkloadValidation(t *testing.T) {
	in := chainInput(t, 3, 200)
	tpl, err := Compile(in)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	bad := map[string]float64{msName(0): 100, msName(2): 100} // ms01 missing
	_, gotErr := tpl.Plan(bad, 0, 0)
	in.Workloads = bad
	_, wantErr := Plan(in)
	if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
		t.Fatalf("workload error mismatch: naive %v, template %v", wantErr, gotErr)
	}
}

// TestCompileToleratesMissingWorkloads: templates can be compiled before the
// first window's loads exist; only Plan needs workloads.
func TestCompileToleratesMissingWorkloads(t *testing.T) {
	in := chainInput(t, 3, 200)
	loads := in.Workloads
	in.Workloads = nil
	tpl, err := Compile(in)
	if err != nil {
		t.Fatalf("compile without workloads: %v", err)
	}
	in.Workloads = loads
	want, err := Plan(in)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	got, err := tpl.Plan(loads, 0, 0)
	if err != nil {
		t.Fatalf("template: %v", err)
	}
	requireAllocBitIdentical(t, want, got, "lateloads")
}

// TestTemplateCacheHitsAndWorkloadOnlyChanges: per-window workload and
// utilization changes are served from the cached template, and every window
// matches the naive plan bit for bit.
func TestTemplateCacheHitsAndWorkloadOnlyChanges(t *testing.T) {
	in := duplicateMSInput()
	cache := NewTemplateCache()
	for w := 0; w < 5; w++ {
		scale := 1 + 0.17*float64(w)
		loads := make(map[string]float64, len(in.Workloads))
		for ms, g := range in.Workloads {
			loads[ms] = g * scale
		}
		win := in
		win.Workloads = loads
		win.CPUUtil = 0.2 + 0.1*float64(w)
		want, wantErr := Plan(win)
		got, gotErr := cache.Plan(win)
		if wantErr != nil || gotErr != nil {
			t.Fatalf("window %d: naive err %v, cached err %v", w, wantErr, gotErr)
		}
		requireAllocBitIdentical(t, want, got, "window")
	}
	st := cache.Stats()
	if st.Compiles != 1 || st.Hits != 4 || st.Invalidations != 0 {
		t.Fatalf("stats = %+v, want 1 compile / 4 hits / 0 invalidations", st)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d, want 1", cache.Len())
	}
}

// TestTemplateCacheInvalidation: every compile-time input (graph shape,
// models, SLA, shares, caps) invalidates the template when mutated, and the
// recompiled plan still matches the naive plan bit for bit.
func TestTemplateCacheInvalidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(in Input) Input
	}{
		{"graph-extra-node", func(in Input) Input {
			g := in.Graph.Clone()
			g.AddStage(g.Root, "extra")
			in.Graph = g
			in.Models["extra"] = mkModel(0.002, 1)
			in.Shares["extra"] = 0.0002
			in.Workloads["extra"] = 4000
			return in
		}},
		{"graph-renamed-leaf", func(in Input) Input {
			g := graph.New("dup", "front")
			kids := g.AddStage(g.Root, "mid", "shared")
			g.AddStage(kids[0], "shared", "leafA2")
			g.AddStage(kids[1], "leafB")
			g.AddStage(kids[1], "shared")
			in.Graph = g
			in.Models["leafA2"] = in.Models["leafA"]
			in.Shares["leafA2"] = in.Shares["leafA"]
			in.Workloads["leafA2"] = in.Workloads["leafA"]
			return in
		}},
		{"graph-stage-split", func(in Input) Input {
			// Same microservice set, different stage structure: leafA and
			// shared move to separate sequential stages under mid.
			g := graph.New("dup", "front")
			kids := g.AddStage(g.Root, "mid", "shared")
			g.AddStage(kids[0], "shared")
			g.AddStage(kids[0], "leafA")
			g.AddStage(kids[1], "leafB")
			g.AddStage(kids[1], "shared")
			in.Graph = g
			return in
		}},
		{"model-swap", func(in Input) Input {
			m := make(map[string]profiling.Model, len(in.Models))
			for ms, mod := range in.Models {
				m[ms] = mod
			}
			m["mid"] = constModel{aLo: 0.0012, bLo: 1.5, aHi: 0.005, bHi: 1.5, knee: 6000}
			in.Models = m
			return in
		}},
		{"sla-change", func(in Input) Input {
			in.SLA.Threshold = 120
			return in
		}},
		{"share-change", func(in Input) Input {
			s := make(map[string]float64, len(in.Shares))
			for ms, v := range in.Shares {
				s[ms] = v
			}
			s["shared"] = 0.0005
			in.Shares = s
			return in
		}},
		{"cap-change", func(in Input) Input {
			in.MaxPerContainer = map[string]float64{"shared": 2000}
			return in
		}},
		{"cap-removed", func(in Input) Input {
			in.MaxPerContainer = nil
			return in
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := duplicateMSInput()
			cache := NewTemplateCache()
			if _, err := cache.Plan(base); err != nil {
				t.Fatalf("base plan: %v", err)
			}
			mut := tc.mutate(duplicateMSInput())
			want, wantErr := Plan(mut)
			got, gotErr := cache.Plan(mut)
			if wantErr != nil {
				if gotErr == nil || wantErr.Error() != gotErr.Error() {
					t.Fatalf("err %v, want %v", gotErr, wantErr)
				}
				return
			}
			if gotErr != nil {
				t.Fatalf("cached: %v", gotErr)
			}
			requireAllocBitIdentical(t, want, got, tc.name)
			st := cache.Stats()
			if st.Invalidations != 1 || st.Compiles != 2 {
				t.Fatalf("stats = %+v, want 1 invalidation / 2 compiles", st)
			}
			// The recompiled template is now current: planning again hits.
			if _, err := cache.Plan(mut); err != nil {
				t.Fatalf("replan: %v", err)
			}
			if st := cache.Stats(); st.Hits != 1 {
				t.Fatalf("replan stats = %+v, want 1 hit", st)
			}
		})
	}
}

// TestTemplateCacheNilAndValidationErrors: a nil cache degrades to the naive
// path, and invalid inputs surface the naive error text.
func TestTemplateCacheNilAndValidationErrors(t *testing.T) {
	var nilCache *TemplateCache
	in := duplicateMSInput()
	want, err := Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nilCache.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	requireAllocBitIdentical(t, want, got, "nilcache")
	if st := nilCache.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if nilCache.Len() != 0 {
		t.Fatalf("nil cache len = %d", nilCache.Len())
	}

	cache := NewTemplateCache()
	bad := duplicateMSInput()
	bad.Graph = nil
	_, gotErr := cache.Plan(bad)
	_, wantErr := Plan(bad)
	if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("nil graph: cached %v, naive %v", gotErr, wantErr)
	}

	missing := duplicateMSInput()
	delete(missing.Models, "shared")
	_, gotErr = cache.Plan(missing)
	_, wantErr = Plan(missing)
	if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("missing model: cached %v, naive %v", gotErr, wantErr)
	}
}
