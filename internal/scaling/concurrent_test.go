package scaling

import (
	"fmt"
	"sync"
	"testing"
)

// TestTemplateCacheConcurrent hammers one TemplateCache from many
// goroutines the way the sharded planner does: concurrent Plan calls for
// overlapping services, mixed with Template/Stats/Len reads, including two
// parameter variants of the same service racing to recompile each other's
// template. Run under -race in ci.sh; results must stay bit-identical to
// the naive planner throughout.
func TestTemplateCacheConcurrent(t *testing.T) {
	const services = 8
	type variant struct {
		in   Input
		want *Allocation
	}
	vars := make([][2]variant, services)
	for i := 0; i < services; i++ {
		a := randomInput(uint64(i)*2 + 1)
		a.Graph.Service = fmt.Sprintf("svc-%02d", i)
		// Variant B shares the graph but relaxes the SLA — same structure
		// hash, different parameter hash, so A and B plans continuously
		// invalidate and recompile each other's cached template.
		b := a
		sla := a.SLA
		sla.Threshold *= 1.25
		b.SLA = sla
		for v, in := range [2]Input{a, b} {
			want, err := Plan(in)
			if err != nil {
				t.Fatalf("svc %d variant %d: naive: %v", i, v, err)
			}
			vars[i][v] = variant{in: in, want: want}
		}
	}

	cache := NewTemplateCache()
	const workers, iters = 16, 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				v := vars[(w+it)%services][(w+it/3)%2]
				got, err := cache.Plan(v.in)
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %v", w, it, err)
					return
				}
				for ms, want := range v.want.Targets {
					if got.Targets[ms] != want {
						errs <- fmt.Errorf("worker %d iter %d: target[%s] = %v, want %v",
							w, it, ms, got.Targets[ms], want)
						return
					}
				}
				if got.ResourceUsage != v.want.ResourceUsage {
					errs <- fmt.Errorf("worker %d iter %d: usage %v, want %v",
						w, it, got.ResourceUsage, v.want.ResourceUsage)
					return
				}
				// Reads the planner interleaves with planning.
				if tpl := cache.Template(v.in.Graph.Service); tpl != nil {
					_ = tpl.Microservices()
					_ = tpl.Matches(v.in)
					_, _ = tpl.WindowFingerprint(v.in.Workloads, v.in.CPUUtil, v.in.MemUtil)
				}
				_ = cache.Stats()
				_ = cache.Len()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := cache.Len(); n != services {
		t.Fatalf("cache holds %d templates, want %d", n, services)
	}
}
