// Package scaling implements Erms' Latency Target Computation (§4, §5.3):
// the closed-form optimal latency split for sequential microservices
// (Eq. 5), the graph-merge procedure that reduces an arbitrary dependency
// graph to a sequential chain by inventing virtual microservices (Eq. 6-12,
// Algorithm 1), the reverse unwind that assigns every real microservice its
// target, and the two-interval recomputation pass of §5.3.1.
//
// Throughout, each microservice i is modeled as L_i = a_i·(γ_i/n_i) + b_i
// (tail latency versus per-container workload). The package works with
// A_i = a_i·γ_i so that L_i = A_i/n_i + b_i, which lets microservices with
// different workloads merge cleanly: the paper's Eq. 7-9 are the special
// case of equal γ.
package scaling

import (
	"errors"
	"fmt"
	"maps"
	"math"

	"erms/internal/graph"
	"erms/internal/profiling"
	"erms/internal/sortutil"
	"erms/internal/workload"
)

// ErrInfeasible reports that the SLA is below the sum of intercepts on some
// path — no finite allocation can meet it.
var ErrInfeasible = errors.New("scaling: SLA infeasible (threshold below minimum attainable latency)")

// DomainCapRatio bounds how far past the knee the high-interval line may be
// used: per-container workload never exceeds DomainCapRatio·σ, keeping
// allocations inside the profiled (stable) operating range. At the analytic
// defaults (knee at 75% utilization) this caps containers at ~82% of
// saturation, where the simulator's measured tail latency still tracks the
// linearized model (~2.5× the idle tail); beyond that real queues detach
// from any linear extrapolation.
const DomainCapRatio = 1.1

// Input is everything Latency Target Computation needs for one service.
type Input struct {
	// Graph is the service's dependency graph.
	Graph *graph.Graph
	// SLA bounds the end-to-end tail latency.
	SLA workload.SLA
	// Models provides the fitted or analytic latency model per microservice.
	Models map[string]profiling.Model
	// Shares gives R_i, the dominant-resource share of one container of each
	// microservice (Eq. 3).
	Shares map[string]float64
	// Workloads gives γ_i, the total calls/minute each microservice must
	// absorb under this service's model. For shared microservices under
	// priority scheduling this is the modified cumulative workload of
	// §5.3.2; under FCFS it is the full aggregate; for private microservices
	// it is the service's own call rate.
	Workloads map[string]float64
	// CPUUtil and MemUtil are the cluster-average utilizations fed into the
	// profiling model (§5.3.1).
	CPUUtil float64
	MemUtil float64
	// MaxPerContainer optionally caps the per-container workload of a
	// microservice (e.g. at its measured saturation); allocations never plan
	// a container beyond its cap.
	MaxPerContainer map[string]float64
}

func (in *Input) validate() error {
	if in.Graph == nil {
		return errors.New("scaling: nil graph")
	}
	if err := in.Graph.Validate(); err != nil {
		return err
	}
	if err := in.SLA.Validate(); err != nil {
		return err
	}
	for _, ms := range in.Graph.Microservices() {
		if _, ok := in.Models[ms]; !ok {
			return fmt.Errorf("scaling: no model for microservice %s", ms)
		}
		if in.Shares[ms] <= 0 {
			return fmt.Errorf("scaling: no resource share for microservice %s", ms)
		}
		if in.Workloads[ms] <= 0 {
			return fmt.Errorf("scaling: no workload for microservice %s", ms)
		}
	}
	return nil
}

// Allocation is the result of Latency Target Computation for one service.
type Allocation struct {
	Service string
	// Targets is the latency target (ms) per microservice.
	Targets map[string]float64
	// ContainersRaw is the exact (fractional) container requirement.
	ContainersRaw map[string]float64
	// Containers is ContainersRaw rounded up (§7: Erms rounds up).
	Containers map[string]int
	// UsedHigh records which interval of the piece-wise model was used.
	UsedHigh map[string]bool
	// ResourceUsage is Σ n_i·R_i over microservices (raw n), the objective
	// of Eq. 2.
	ResourceUsage float64
}

// Clone returns a deep copy of the allocation. The incremental planner
// hands clones to callers while keeping the originals cached (copy-on-
// write at the window boundary), so downstream mutation of a returned plan
// can never corrupt a cached allocation that later windows reuse verbatim.
func (a *Allocation) Clone() *Allocation {
	if a == nil {
		return nil
	}
	return &Allocation{
		Service:       a.Service,
		Targets:       maps.Clone(a.Targets),
		ContainersRaw: maps.Clone(a.ContainersRaw),
		Containers:    maps.Clone(a.Containers),
		UsedHigh:      maps.Clone(a.UsedHigh),
		ResourceUsage: a.ResourceUsage,
	}
}

// TotalContainers sums the rounded container counts.
func (a *Allocation) TotalContainers() int {
	t := 0
	for _, n := range a.Containers {
		t += n
	}
	return t
}

// mergeKind distinguishes merge-tree nodes.
type mergeKind int

const (
	kindLeaf mergeKind = iota
	kindSeq
	kindPar
)

// mergeNode is one node of the virtual-microservice merge tree built by
// Algorithm 1. Leaves are real microservices (one per graph node); internal
// nodes are the virtual microservices of Eq. 7-12.
type mergeNode struct {
	kind mergeKind
	// A = a·γ, B = intercept, R = per-container dominant share.
	A, B, R float64
	// p = sqrt(A·R), q = sqrt(A/R): sequential composition adds these
	// component-wise (Eq. 7-9 generalize associatively in (p, q) form).
	p, q     float64
	children []*mergeNode
	// ms and node identify the real microservice at a leaf.
	ms   string
	node *graph.Node
}

func leafNode(ms string, node *graph.Node, a, b, gamma, share float64) *mergeNode {
	A := a * gamma
	return &mergeNode{
		kind: kindLeaf, A: A, B: b, R: share,
		p: math.Sqrt(A * share), q: math.Sqrt(A / share),
		ms: ms, node: node,
	}
}

// seqMerge invents the virtual microservice for sequentially-executed
// components (Eq. 7-9): p* = Σp, q* = Σq, b* = Σb.
func seqMerge(children []*mergeNode) *mergeNode {
	if len(children) == 1 {
		return children[0]
	}
	var p, q, b float64
	for _, c := range children {
		p += c.p
		q += c.q
		b += c.B
	}
	return &mergeNode{
		kind: kindSeq, A: p * q, B: b, R: p / q,
		p: p, q: q, children: children,
	}
}

// parMerge invents the virtual microservice for parallel components
// (Eq. 11-12): A** = ΣA, b** = max b, R** = Σ(A·R)/ΣA (container counts at
// a common target are proportional to A when intercepts match, which is the
// regime Eq. 12 linearizes).
func parMerge(children []*mergeNode) *mergeNode {
	if len(children) == 1 {
		return children[0]
	}
	var A, b, ar float64
	for _, c := range children {
		A += c.A
		if c.B > b {
			b = c.B
		}
		ar += c.A * c.R
	}
	r := ar / A
	return &mergeNode{
		kind: kindPar, A: A, B: b, R: r,
		p: math.Sqrt(A * r), q: math.Sqrt(A / r), children: children,
	}
}

// Plan computes latency targets and container counts for one service,
// running Latency Target Computation at most twice per §5.3.1: first with
// the high-workload interval for every microservice, then recomputing with
// the low interval for microservices whose allocated target falls below the
// latency at their cut-off point.
func Plan(in Input) (*Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	useHigh := make(map[string]bool, len(in.Workloads))
	for _, ms := range in.Graph.Microservices() {
		useHigh[ms] = true
	}
	alloc, err := compute(in, useHigh)
	if err != nil {
		return nil, err
	}
	flipped := false
	for ms, target := range alloc.Targets {
		m := in.Models[ms]
		knee := m.Knee(in.CPUUtil, in.MemUtil)
		aHi, bHi := m.Params(true, in.CPUUtil, in.MemUtil)
		kneeLatency := aHi*knee + bHi
		if target < kneeLatency {
			useHigh[ms] = false
			flipped = true
		}
	}
	if !flipped {
		return alloc, nil
	}
	return compute(in, useHigh)
}

// buildMergeTree runs Algorithm 1's reduction: every two-tier invocation is
// merged bottom-up — parallel merges within each stage first, then a
// sequential merge of the parent with its stages.
func buildMergeTree(in Input, useHigh map[string]bool) *mergeNode {
	var reduce func(n *graph.Node) *mergeNode
	reduce = func(n *graph.Node) *mergeNode {
		ms := n.Microservice
		a, b := in.Models[ms].Params(useHigh[ms], in.CPUUtil, in.MemUtil)
		self := leafNode(ms, n, a, b, in.Workloads[ms], in.Shares[ms])
		if n.IsLeaf() {
			return self
		}
		parts := []*mergeNode{self}
		for _, st := range n.Stages {
			stage := make([]*mergeNode, len(st))
			for i, c := range st {
				stage[i] = reduce(c)
			}
			parts = append(parts, parMerge(stage))
		}
		return seqMerge(parts)
	}
	return reduce(in.Graph.Root)
}

// compute runs one Latency Target Computation pass with the given interval
// selection.
func compute(in Input, useHigh map[string]bool) (*Allocation, error) {
	root := buildMergeTree(in, useHigh)

	alloc := &Allocation{
		Service:       in.Graph.Service,
		Targets:       make(map[string]float64),
		ContainersRaw: make(map[string]float64),
		Containers:    make(map[string]int),
		UsedHigh:      useHigh,
	}

	// Unwind the merge tree (Fig. 8): the root's target is the SLA;
	// sequential splits follow the Eq. 5 proportional rule; parallel
	// components share their parent's target.
	var unwind func(mn *mergeNode, target float64) error
	unwind = func(mn *mergeNode, target float64) error {
		switch mn.kind {
		case kindLeaf:
			slack := target - mn.B
			if slack <= 0 {
				return fmt.Errorf("%w: microservice %s target %.3fms <= intercept %.3fms",
					ErrInfeasible, mn.ms, target, mn.B)
			}
			n := mn.A / slack
			gamma := in.Workloads[mn.ms]
			// Keep the allocation inside the interval's validity domain:
			// the low interval only holds below the knee, and the high
			// interval only to DomainCapRatio·knee (past that the real
			// queue is unstable no matter what the line extrapolates to).
			if knee := in.Models[mn.ms].Knee(in.CPUUtil, in.MemUtil); knee > 0 {
				limit := knee
				if useHigh[mn.ms] {
					limit = knee * DomainCapRatio
				}
				if minN := gamma / limit; n < minN {
					n = minN
				}
			}
			if cap, ok := in.MaxPerContainer[mn.ms]; ok && cap > 0 {
				if minN := gamma / cap; n < minN {
					n = minN
				}
			}
			// A microservice occupying several graph positions keeps its
			// tightest target and largest container requirement.
			if cur, ok := alloc.Targets[mn.ms]; !ok || target < cur {
				alloc.Targets[mn.ms] = target
			}
			if cur, ok := alloc.ContainersRaw[mn.ms]; !ok || n > cur {
				alloc.ContainersRaw[mn.ms] = n
			}
			return nil
		case kindSeq:
			slack := target - mn.B
			if slack <= 0 {
				return fmt.Errorf("%w: service %s: target %.3fms <= path intercepts %.3fms",
					ErrInfeasible, in.Graph.Service, target, mn.B)
			}
			var pSum float64
			for _, c := range mn.children {
				pSum += c.p
			}
			for _, c := range mn.children {
				// Child k's target: b_k + (p_k/Σp)·slack (Eq. 5).
				if err := unwind(c, c.B+c.p/pSum*slack); err != nil {
					return err
				}
			}
			return nil
		case kindPar:
			for _, c := range mn.children {
				if err := unwind(c, target); err != nil {
					return err
				}
			}
			return nil
		}
		return errors.New("scaling: unknown merge node kind")
	}
	if err := unwind(root, in.SLA.Threshold); err != nil {
		return nil, err
	}

	// Sum usage in sorted order so the float total is bit-stable run to run
	// (map iteration order would perturb the low bits).
	for _, ms := range sortutil.Keys(alloc.ContainersRaw) {
		raw := alloc.ContainersRaw[ms]
		n := int(math.Ceil(raw - 1e-9))
		if n < 1 {
			n = 1
		}
		alloc.Containers[ms] = n
		alloc.ResourceUsage += raw * in.Shares[ms]
	}
	return alloc, nil
}

// SequentialClosedForm evaluates Eq. 5 directly for a chain of sequential
// microservices with parameters (a_i, b_i, R_i, γ_i): it returns the optimal
// latency targets and fractional container counts. Used for validation and
// the Fig. 4 motivating experiment.
func SequentialClosedForm(a, b, r, gamma []float64, sla float64) (targets, containers []float64, err error) {
	k := len(a)
	if k == 0 || len(b) != k || len(r) != k || len(gamma) != k {
		return nil, nil, errors.New("scaling: closed form needs equal-length parameter slices")
	}
	var bSum, root float64
	roots := make([]float64, k)
	for i := 0; i < k; i++ {
		if a[i] <= 0 || r[i] <= 0 || gamma[i] <= 0 {
			return nil, nil, fmt.Errorf("scaling: non-positive parameter at index %d", i)
		}
		bSum += b[i]
		roots[i] = math.Sqrt(a[i] * gamma[i] * r[i])
		root += roots[i]
	}
	slack := sla - bSum
	if slack <= 0 {
		return nil, nil, ErrInfeasible
	}
	targets = make([]float64, k)
	containers = make([]float64, k)
	for i := 0; i < k; i++ {
		targets[i] = roots[i]/root*slack + b[i]
		containers[i] = a[i] * gamma[i] / (targets[i] - b[i])
	}
	return targets, containers, nil
}

// ResourceUsageOf computes Σ n_i·R_i for a hypothetical target assignment —
// the Eq. 2 objective under the linear model — or ErrInfeasible if any
// target is at or below its intercept.
func ResourceUsageOf(in Input, targets map[string]float64) (float64, error) {
	var total float64
	for _, ms := range in.Graph.Microservices() {
		m := in.Models[ms]
		// Use the interval consistent with the target: high if the implied
		// per-container workload exceeds the knee.
		aHi, bHi := m.Params(true, in.CPUUtil, in.MemUtil)
		knee := m.Knee(in.CPUUtil, in.MemUtil)
		t, ok := targets[ms]
		if !ok {
			return 0, fmt.Errorf("scaling: no target for %s", ms)
		}
		kneeLatency := aHi*knee + bHi
		a, b := aHi, bHi
		if t < kneeLatency {
			a, b = m.Params(false, in.CPUUtil, in.MemUtil)
		}
		if t <= b {
			return 0, ErrInfeasible
		}
		n := a * in.Workloads[ms] / (t - b)
		total += n * in.Shares[ms]
	}
	return total, nil
}

// EndToEndModelLatency evaluates the modeled end-to-end tail latency of a
// service for a given container assignment, composing per-microservice
// model latencies along the dependency graph (sequential stages add,
// parallel calls take the max).
func EndToEndModelLatency(in Input, containers map[string]int) (float64, error) {
	for _, ms := range in.Graph.Microservices() {
		if containers[ms] < 1 {
			return 0, fmt.Errorf("scaling: no containers for %s", ms)
		}
	}
	lat := func(n *graph.Node) float64 {
		ms := n.Microservice
		m := in.Models[ms]
		perContainer := in.Workloads[ms] / float64(containers[ms])
		return m.Predict(perContainer, in.CPUUtil, in.MemUtil)
	}
	return in.Graph.EndToEnd(lat), nil
}

// SortedTargets renders targets in a deterministic order for reports.
func SortedTargets(a *Allocation) []string {
	return sortutil.Keys(a.Targets)
}
