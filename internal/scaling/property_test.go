package scaling

import (
	"errors"
	"testing"
	"testing/quick"

	"erms/internal/graph"
	"erms/internal/profiling"
	"erms/internal/stats"
	"erms/internal/workload"
)

// randomInput builds a random tree topology with random single-interval
// models. The SLA is set to 1.2-3x the feasibility floor so Plan must work
// near its constraint.
func randomInput(seed uint64) Input {
	r := stats.NewRNG(seed)
	n := 3 + r.Intn(25)
	g := graph.New("svc", "m0")
	open := []*graph.Node{g.Root}
	names := []string{"m0"}
	for g.Len() < n {
		p := open[r.Intn(len(open))]
		width := 1 + r.Intn(3)
		if rem := n - g.Len(); width > rem {
			width = rem
		}
		stage := make([]string, width)
		for i := range stage {
			stage[i] = "m" + itoa(g.Len()+i)
			names = append(names, stage[i])
		}
		created := g.AddStage(p, stage...)
		open = append(open, created...)
	}
	in := Input{
		Graph:     g,
		Models:    map[string]profiling.Model{},
		Shares:    map[string]float64{},
		Workloads: map[string]float64{},
		CPUUtil:   r.Float64() * 0.5,
		MemUtil:   r.Float64() * 0.5,
	}
	for _, ms := range names {
		a := 0.0005 + 0.005*r.Float64()
		b := 0.5 + 4*r.Float64()
		knee := 1e12
		if r.Float64() < 0.5 {
			// Realistic two-interval model with a finite knee.
			in.Models[ms] = constModel{aLo: a, bLo: b, aHi: a * 4, bHi: b, knee: 2000 + 30000*r.Float64()}
			knee = 0
		} else {
			in.Models[ms] = constModel{aLo: a, bLo: b, aHi: a, bHi: b, knee: knee}
		}
		_ = knee
		in.Shares[ms] = 0.0001 + 0.0004*r.Float64()
		in.Workloads[ms] = 500 + 20000*r.Float64()
	}
	floor := g.EndToEnd(func(nd *graph.Node) float64 {
		_, b := in.Models[nd.Microservice].Params(false, in.CPUUtil, in.MemUtil)
		return b
	})
	in.SLA = workload.P95SLA("svc", floor*(1.2+1.8*r.Float64()))
	return in
}

// TestPlanFeasibleOnRandomGraphs: the modeled end-to-end latency of every
// plan must respect the SLA — the Eq. 2 constraint — across random
// topologies, models, and workloads.
func TestPlanFeasibleOnRandomGraphs(t *testing.T) {
	f := func(seed uint16) bool {
		in := randomInput(uint64(seed) + 1)
		alloc, err := Plan(in)
		if errors.Is(err, ErrInfeasible) {
			return true // legitimately infeasible corner (tight SLA + knee floors)
		}
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		e2e, err := EndToEndModelLatency(in, alloc.Containers)
		if err != nil {
			return false
		}
		if e2e > in.SLA.Threshold*1.0001 {
			t.Logf("seed %d: e2e %v > SLA %v", seed, e2e, in.SLA.Threshold)
			return false
		}
		// Every planned microservice has at least one container and a
		// positive target.
		for _, ms := range in.Graph.Microservices() {
			if alloc.Containers[ms] < 1 || alloc.Targets[ms] <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanMonotoneInWorkload: raising every workload never lowers the total
// container count.
func TestPlanMonotoneInWorkload(t *testing.T) {
	f := func(seed uint16) bool {
		in := randomInput(uint64(seed) + 777)
		a1, err := Plan(in)
		if err != nil {
			return true
		}
		in2 := in
		in2.Workloads = map[string]float64{}
		for ms, w := range in.Workloads {
			in2.Workloads[ms] = w * 2
		}
		a2, err := Plan(in2)
		if err != nil {
			return true
		}
		return a2.TotalContainers() >= a1.TotalContainers()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanMonotoneInSLA: loosening the SLA never raises raw resource usage.
func TestPlanMonotoneInSLA(t *testing.T) {
	f := func(seed uint16) bool {
		in := randomInput(uint64(seed) + 31337)
		tight, err := Plan(in)
		if err != nil {
			return true
		}
		loose := in
		loose.SLA.Threshold *= 1.5
		a2, err := Plan(loose)
		if err != nil {
			return false
		}
		return a2.ResourceUsage <= tight.ResourceUsage*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
