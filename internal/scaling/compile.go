// Compiled plan templates: the per-window hot path of Latency Target
// Computation, factored so that everything static across reconciler windows
// (graph validation, the Algorithm-1 merge/chain reduction, unwind order,
// per-microservice lookups) runs once at Compile time, and the per-window
// Plan only re-evaluates A_i = a_i·γ_i and the closed-form Eq. 5 split over
// flat, pre-ordered slices. The evaluation replays the exact float operations
// of the naive path (same operand order, same summation order, same clamps)
// so a Template's output is bit-identical to Plan's — the golden experiment
// tables cannot tell the two apart.
package scaling

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"erms/internal/graph"
	"erms/internal/profiling"
)

// opKind distinguishes compiled merge-tree ops; values mirror mergeKind.
type opKind uint8

const (
	opLeaf opKind = iota
	opSeq
	opPar
)

// planOp is one node of the compiled merge tree in flat form. Kids are a
// span into Template.kids, always emitted before their parent (post-order),
// so a single forward sweep over ops evaluates the whole reduction.
type planOp struct {
	kind opKind
	// ms indexes Template.mss for leaves; -1 otherwise.
	ms int32
	// kidStart/kidEnd span Template.kids for seq/par ops.
	kidStart, kidEnd int32
}

// Template is a compiled plan for one service: the Algorithm-1 reduction of
// its dependency graph with per-microservice bindings resolved. Obtain one
// with Compile; re-evaluate it each window with Plan. A Template is
// internally locked, so concurrent Plan calls are safe (they serialize);
// distinct Templates never contend.
type Template struct {
	// Service names the compiled service (== Graph.Service at compile time).
	Service string
	// SLA captured at compile time (part of the fingerprint).
	slaThreshold  float64
	slaPercentile float64

	// mss lists the distinct microservices in sorted order; all per-ms
	// slices below are indexed by position in mss.
	mss    []string
	models []profiling.Model
	shares []float64
	caps   []float64
	capOK  []bool

	// ops is the merge tree in post-order (kids before parents); kids is the
	// shared child-index arena; pre is the root-first unwind order, visiting
	// ops exactly as the naive recursive unwind does (so error precedence
	// and target assignment order match bit for bit).
	ops  []planOp
	kids []int32
	pre  []int32
	root int32

	// structHash fingerprints the graph shape (service, node count, DFS of
	// microservice names and stage widths); paramHash fingerprints SLA,
	// shares, caps, and model probes. TemplateCache uses the pair to decide
	// hit vs. recompile.
	structHash uint64
	paramHash  uint64

	mu      sync.Mutex
	scratch evalScratch
}

// evalScratch holds the per-evaluation working set, reused across windows so
// the steady-state path performs no per-op allocation.
type evalScratch struct {
	// Per-op state for one pass.
	A, B, R, p, q []float64
	target        []float64
	// Per-microservice state.
	gamma, aArr, bArr, knee []float64
	useHigh                 []bool
	tTarget, tRaw           []float64
}

// Compile validates the input once, runs the Algorithm-1 merge/chain
// reduction once, and captures unwind order and per-microservice bindings in
// flat slice form. The returned Template's Plan replays only the per-window
// arithmetic. Compile is pure with respect to in: it holds references to the
// graph and models but never mutates them.
func Compile(in Input) (*Template, error) {
	if err := in.validate(); err != nil {
		// Workload presence is a per-window property, not a compile-time
		// one: tolerate missing workloads at compile so a template can be
		// built before the first window's loads exist.
		if !isWorkloadErr(err) {
			return nil, err
		}
	}
	t := &Template{
		Service:       in.Graph.Service,
		slaThreshold:  in.SLA.Threshold,
		slaPercentile: in.SLA.Percentile,
		structHash:    structHashOf(in.Graph),
	}
	// Distinct microservices in sorted order; index lookup for leaf binding.
	t.mss = in.Graph.Microservices()
	idx := make(map[string]int32, len(t.mss))
	for i, ms := range t.mss {
		idx[ms] = int32(i)
		t.models = append(t.models, in.Models[ms])
		t.shares = append(t.shares, in.Shares[ms])
		cap, ok := in.MaxPerContainer[ms]
		t.caps = append(t.caps, cap)
		t.capOK = append(t.capOK, ok)
	}
	t.root = t.reduce(in.Graph.Root, idx)
	t.buildPre(t.root)

	ph, err := t.paramHashOf(in)
	if err != nil {
		return nil, err
	}
	t.paramHash = ph

	n := len(t.ops)
	m := len(t.mss)
	t.scratch = evalScratch{
		A: make([]float64, n), B: make([]float64, n), R: make([]float64, n),
		p: make([]float64, n), q: make([]float64, n), target: make([]float64, n),
		gamma: make([]float64, m), aArr: make([]float64, m), bArr: make([]float64, m),
		knee: make([]float64, m), useHigh: make([]bool, m),
		tTarget: make([]float64, m), tRaw: make([]float64, m),
	}
	return t, nil
}

func isWorkloadErr(err error) bool {
	var s string
	if err != nil {
		s = err.Error()
	}
	const pfx = "scaling: no workload for microservice "
	return len(s) >= len(pfx) && s[:len(pfx)] == pfx
}

// reduce mirrors buildMergeTree: a leaf op for the node itself, a parallel
// merge per stage, then a sequential merge of self with the stages.
// Single-element merges collapse to the element, exactly as seqMerge and
// parMerge return a lone child unchanged.
func (t *Template) reduce(n *graph.Node, idx map[string]int32) int32 {
	self := t.emit(planOp{kind: opLeaf, ms: idx[n.Microservice]})
	if n.IsLeaf() {
		return self
	}
	parts := []int32{self}
	for _, st := range n.Stages {
		stage := make([]int32, len(st))
		for i, c := range st {
			stage[i] = t.reduce(c, idx)
		}
		parts = append(parts, t.merge(opPar, stage))
	}
	return t.merge(opSeq, parts)
}

func (t *Template) emit(op planOp) int32 {
	t.ops = append(t.ops, op)
	return int32(len(t.ops) - 1)
}

func (t *Template) merge(kind opKind, kids []int32) int32 {
	if len(kids) == 1 {
		return kids[0]
	}
	start := int32(len(t.kids))
	t.kids = append(t.kids, kids...)
	return t.emit(planOp{kind: kind, ms: -1, kidStart: start, kidEnd: int32(len(t.kids))})
}

// buildPre records the root-first visit order of the naive unwind recursion.
func (t *Template) buildPre(oi int32) {
	t.pre = append(t.pre, oi)
	op := t.ops[oi]
	for _, k := range t.kids[op.kidStart:op.kidEnd] {
		t.buildPre(k)
	}
}

// Plan evaluates the compiled template for one window: workloads γ and the
// cluster utilizations are the only fresh inputs. The result is bit-identical
// to Plan(Input) on the same data — same two-interval recomputation, same
// clamps, same error formats, same sorted-order ResourceUsage sum.
func (t *Template) Plan(workloads map[string]float64, cpuUtil, memUtil float64) (*Allocation, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.scratch

	// Per-window validation: the naive path checks workloads in sorted
	// microservice order; replay that so the reported microservice matches.
	for i, ms := range t.mss {
		g, ok := workloads[ms]
		if !ok || g <= 0 {
			return nil, fmt.Errorf("scaling: no workload for microservice %s", ms)
		}
		s.gamma[i] = g
		s.useHigh[i] = true
		// Knee is interval-independent; cache it once per window.
		s.knee[i] = t.models[i].Knee(cpuUtil, memUtil)
	}

	// Pass 1: all-high intervals (§5.3.1).
	if err := t.eval(s, cpuUtil, memUtil); err != nil {
		return nil, err
	}
	// Flip microservices whose allocated target falls below the latency at
	// the cut-off point, then recompute once with the mixed selection.
	flipped := false
	for i := range t.mss {
		aHi, bHi := t.models[i].Params(true, cpuUtil, memUtil)
		if s.tTarget[i] < aHi*s.knee[i]+bHi {
			s.useHigh[i] = false
			flipped = true
		}
	}
	if flipped {
		if err := t.eval(s, cpuUtil, memUtil); err != nil {
			return nil, err
		}
	}

	// Materialize the Allocation in the naive shape.
	alloc := &Allocation{
		Service:       t.Service,
		Targets:       make(map[string]float64, len(t.mss)),
		ContainersRaw: make(map[string]float64, len(t.mss)),
		Containers:    make(map[string]int, len(t.mss)),
		UsedHigh:      make(map[string]bool, len(t.mss)),
	}
	for i, ms := range t.mss {
		alloc.Targets[ms] = s.tTarget[i]
		raw := s.tRaw[i]
		alloc.ContainersRaw[ms] = raw
		n := int(math.Ceil(raw - 1e-9))
		if n < 1 {
			n = 1
		}
		alloc.Containers[ms] = n
		alloc.UsedHigh[ms] = s.useHigh[i]
		// mss is sorted, so this fold matches the naive sorted-order sum bit
		// for bit.
		alloc.ResourceUsage += raw * t.shares[i]
	}
	return alloc, nil
}

// eval runs one Latency Target Computation pass over the flat ops: an upward
// post-order sweep computing the Eq. 7-12 merge coefficients, then a
// downward pre-order sweep splitting targets by Eq. 5. Every float operation
// — including summation order — replays the recursive implementation.
func (t *Template) eval(s *evalScratch, cpuUtil, memUtil float64) error {
	for i := range t.mss {
		s.aArr[i], s.bArr[i] = t.models[i].Params(s.useHigh[i], cpuUtil, memUtil)
		s.tTarget[i] = math.Inf(1)
		s.tRaw[i] = math.Inf(-1)
	}

	// Upward sweep: kids precede parents in ops, so one forward pass
	// reproduces the bottom-up merge of buildMergeTree.
	for oi := range t.ops {
		op := &t.ops[oi]
		switch op.kind {
		case opLeaf:
			mi := op.ms
			A := s.aArr[mi] * s.gamma[mi]
			share := t.shares[mi]
			s.A[oi], s.B[oi], s.R[oi] = A, s.bArr[mi], share
			s.p[oi] = math.Sqrt(A * share)
			s.q[oi] = math.Sqrt(A / share)
		case opSeq:
			var p, q, b float64
			for _, k := range t.kids[op.kidStart:op.kidEnd] {
				p += s.p[k]
				q += s.q[k]
				b += s.B[k]
			}
			s.A[oi], s.B[oi], s.R[oi] = p*q, b, p/q
			s.p[oi], s.q[oi] = p, q
		case opPar:
			var A, b, ar float64
			for _, k := range t.kids[op.kidStart:op.kidEnd] {
				A += s.A[k]
				if s.B[k] > b {
					b = s.B[k]
				}
				ar += s.A[k] * s.R[k]
			}
			r := ar / A
			s.A[oi], s.B[oi], s.R[oi] = A, b, r
			s.p[oi] = math.Sqrt(A * r)
			s.q[oi] = math.Sqrt(A / r)
		}
	}

	// Downward sweep in the recorded pre-order: parents assign child targets
	// before any descendant is visited, and the first infeasibility
	// encountered matches the naive DFS error.
	s.target[t.root] = t.slaThreshold
	for _, oi := range t.pre {
		op := &t.ops[oi]
		target := s.target[oi]
		switch op.kind {
		case opLeaf:
			mi := op.ms
			slack := target - s.B[oi]
			if slack <= 0 {
				return fmt.Errorf("%w: microservice %s target %.3fms <= intercept %.3fms",
					ErrInfeasible, t.mss[mi], target, s.B[oi])
			}
			n := s.A[oi] / slack
			gamma := s.gamma[mi]
			if knee := s.knee[mi]; knee > 0 {
				limit := knee
				if s.useHigh[mi] {
					limit = knee * DomainCapRatio
				}
				if minN := gamma / limit; n < minN {
					n = minN
				}
			}
			if t.capOK[mi] && t.caps[mi] > 0 {
				if minN := gamma / t.caps[mi]; n < minN {
					n = minN
				}
			}
			if target < s.tTarget[mi] {
				s.tTarget[mi] = target
			}
			if n > s.tRaw[mi] {
				s.tRaw[mi] = n
			}
		case opSeq:
			slack := target - s.B[oi]
			if slack <= 0 {
				return fmt.Errorf("%w: service %s: target %.3fms <= path intercepts %.3fms",
					ErrInfeasible, t.Service, target, s.B[oi])
			}
			// pSum recomputed the same way the naive unwind recomputes it:
			// identical operand order makes it bit-equal to s.p[oi].
			pSum := s.p[oi]
			for _, k := range t.kids[op.kidStart:op.kidEnd] {
				s.target[k] = s.B[k] + s.p[k]/pSum*slack
			}
		case opPar:
			for _, k := range t.kids[op.kidStart:op.kidEnd] {
				s.target[k] = target
			}
		}
	}
	return nil
}

// Microservices returns the template's distinct microservices in sorted
// order. The returned slice is owned by the template; callers must not
// mutate it. It is exactly the key set of every map a Plan call returns,
// which lets incremental callers fold allocations in sorted order without
// re-sorting every window.
func (t *Template) Microservices() []string { return t.mss }

// ParamsMatch reports whether the bindings the template captured at compile
// time — SLA, per-microservice models, shares, and caps — still match in.
// It is the revalidation half of the TemplateCache hit test, exported so an
// incremental planning layer can detect "this service's plan inputs are
// unchanged" without paying for a Plan call. The identity fast path is
// tried first; value-equal replacements (e.g. a rebuilt model map with the
// same coefficients) still match via the probe hash.
func (t *Template) ParamsMatch(in Input) bool {
	if t.paramsUnchanged(in) {
		return true
	}
	ph, err := t.paramHashOf(in)
	return err == nil && ph == t.paramHash
}

// StructMatches reports whether g still has the graph shape the template
// was compiled from.
func (t *Template) StructMatches(g *graph.Graph) bool {
	return structHashOf(g) == t.structHash
}

// Matches reports whether the template is still valid for in: same graph
// shape and matching parameter bindings. Workloads and utilizations are
// per-window inputs and deliberately not part of template validity.
func (t *Template) Matches(in Input) bool {
	return t.StructMatches(in.Graph) && t.ParamsMatch(in)
}

// WindowFingerprint hashes the per-window inputs of a Plan call — every
// microservice's workload in the template's sorted order plus the cluster
// utilizations. Two windows with equal fingerprints produce bit-identical
// allocations from an unchanged template, which is what lets an incremental
// planner skip the replan entirely. ok is false when any workload is
// missing or non-positive (such a window cannot be skipped: it must replan
// so the naive error surfaces).
func (t *Template) WindowFingerprint(workloads map[string]float64, cpuUtil, memUtil float64) (fp uint64, ok bool) {
	h := newFNV()
	h.f64(cpuUtil)
	h.f64(memUtil)
	for _, ms := range t.mss {
		g, present := workloads[ms]
		if !present || g <= 0 {
			return 0, false
		}
		h.f64(g)
	}
	return h.sum(), true
}

// probePoints are the (cpuUtil, memUtil) points at which models are sampled
// for the fingerprint. Three points pin the affine utilization response of
// the analytic models; a swapped-in model that agrees at all probes on both
// intervals and the knee is treated as unchanged (best-effort identity —
// model values, not pointers, define the fingerprint).
var probePoints = [3][2]float64{{0, 0}, {0.37, 0.61}, {0.73, 0.29}}

// structHashOf fingerprints the graph shape: service name, node count, and a
// DFS of microservice names and stage widths.
func structHashOf(g *graph.Graph) uint64 {
	h := newFNV()
	if g == nil {
		return h.sum()
	}
	h.str(g.Service)
	h.u64(uint64(g.Len()))
	var walk func(n *graph.Node)
	walk = func(n *graph.Node) {
		h.str(n.Microservice)
		h.u64(uint64(len(n.Stages)))
		for _, st := range n.Stages {
			h.u64(uint64(len(st)))
			for _, c := range st {
				walk(c)
			}
		}
	}
	if g.Root != nil {
		walk(g.Root)
	}
	return h.sum()
}

// paramsUnchanged is the revalidation fast path: true when every binding the
// template captured at compile time is *identical* — same SLA, same share
// and cap values, and the very same model values (interface equality; for
// pointer-typed models that is pointer identity). When anything differs —
// including a rebuilt-but-equivalent model map — the caller falls back to
// the probe-based paramHashOf, so equality by value still avoids a
// recompile. Models are treated as immutable once handed to the planner:
// replace a map entry to change a model (mutating a model in place through a
// retained pointer defeats both checks and is unsupported).
func (t *Template) paramsUnchanged(in Input) (same bool) {
	defer func() {
		// A model with a non-comparable dynamic type panics on ==; treat it
		// as changed and let the probe path decide.
		if recover() != nil {
			same = false
		}
	}()
	if in.SLA.Threshold != t.slaThreshold || in.SLA.Percentile != t.slaPercentile {
		return false
	}
	for i, ms := range t.mss {
		if m, ok := in.Models[ms]; !ok || m != t.models[i] {
			return false
		}
		if in.Shares[ms] != t.shares[i] {
			return false
		}
		cap, capOK := in.MaxPerContainer[ms]
		if capOK != t.capOK[i] || cap != t.caps[i] {
			return false
		}
	}
	return true
}

// paramHashOf fingerprints everything else the compiled coefficients depend
// on: SLA, per-microservice shares and caps, and model probes. Utilizations
// and workloads are per-window inputs, deliberately excluded.
func (t *Template) paramHashOf(in Input) (uint64, error) {
	h := newFNV()
	h.f64(in.SLA.Threshold)
	h.f64(in.SLA.Percentile)
	for _, ms := range t.mss {
		m, ok := in.Models[ms]
		if !ok {
			return 0, fmt.Errorf("scaling: no model for microservice %s", ms)
		}
		if in.Shares[ms] <= 0 {
			return 0, fmt.Errorf("scaling: no resource share for microservice %s", ms)
		}
		// Microservice names are fixed by the structural hash; position in
		// t.mss identifies them here.
		h.f64(in.Shares[ms])
		cap, capOK := in.MaxPerContainer[ms]
		if capOK {
			h.u64(1)
			h.f64(cap)
		} else {
			h.u64(0)
		}
		for _, pt := range probePoints {
			aLo, bLo := m.Params(false, pt[0], pt[1])
			aHi, bHi := m.Params(true, pt[0], pt[1])
			h.f64(aLo)
			h.f64(bLo)
			h.f64(aHi)
			h.f64(bHi)
			h.f64(m.Knee(pt[0], pt[1]))
		}
	}
	return h.sum(), nil
}

// fnv is an inline word-at-a-time hash accumulator (splitmix64-style
// finalizer per word). The fingerprint runs on every cached Plan, so it is
// deliberately a couple of multiplies per 8 bytes, not a byte loop — the
// revalidation cost must stay a small fraction of one template evaluation.
type fnv struct{ h uint64 }

func newFNV() *fnv { return &fnv{h: 1469598103934665603} }

func (f *fnv) u64(v uint64) {
	x := f.h ^ v
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	f.h = x
}

func (f *fnv) f64(v float64) { f.u64(math.Float64bits(v)) }

func (f *fnv) str(s string) {
	i := 0
	for ; i+8 <= len(s); i += 8 {
		f.u64(uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56)
	}
	var tail uint64
	for sh := 0; i < len(s); i++ {
		tail |= uint64(s[i]) << sh
		sh += 8
	}
	// Length word doubles as the tail delimiter so "ab","c" != "a","bc".
	f.u64(tail)
	f.u64(uint64(len(s)))
}

func (f *fnv) sum() uint64 { return f.h }

// TemplateCache memoizes Templates per service and revalidates them by
// fingerprint on every Plan: a structural or parametric change recompiles
// transparently, so callers never observe a stale plan. The cache is safe
// for concurrent use; plans for distinct services never contend.
type TemplateCache struct {
	mu      sync.Mutex
	entries map[string]*Template

	hits          atomic.Uint64
	compiles      atomic.Uint64
	invalidations atomic.Uint64
}

// NewTemplateCache returns an empty cache.
func NewTemplateCache() *TemplateCache {
	return &TemplateCache{entries: make(map[string]*Template)}
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits counts Plan calls served by an existing valid template.
	Hits uint64
	// Compiles counts template builds (first sight of a service, or rebuild
	// after invalidation).
	Compiles uint64
	// Invalidations counts fingerprint mismatches that forced a rebuild.
	Invalidations uint64
}

// Stats returns the cumulative counters.
func (c *TemplateCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:          c.hits.Load(),
		Compiles:      c.compiles.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// Len reports how many services currently have a compiled template.
func (c *TemplateCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *TemplateCache) get(service string) *Template {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[service]
}

// Template returns the compiled template currently cached for a service,
// or nil when the service has never been compiled (or the cache is nil).
// The caller is expected to revalidate it with Matches/ParamsMatch before
// trusting it against fresh inputs.
func (c *TemplateCache) Template(service string) *Template {
	if c == nil {
		return nil
	}
	return c.get(service)
}

func (c *TemplateCache) put(t *Template) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[t.Service] = t
}

// Plan is the cached equivalent of the package-level Plan: it returns
// bit-identical allocations and errors, compiling or recompiling the
// service's template as needed. A nil cache degrades to the naive path.
func (c *TemplateCache) Plan(in Input) (*Allocation, error) {
	if c == nil {
		return Plan(in)
	}
	if in.Graph == nil {
		return nil, errors.New("scaling: nil graph")
	}
	if t := c.get(in.Graph.Service); t != nil {
		if structHashOf(in.Graph) == t.structHash {
			if t.paramsUnchanged(in) {
				c.hits.Add(1)
				return t.Plan(in.Workloads, in.CPUUtil, in.MemUtil)
			}
			// Bindings are not identical; value-equal replacements (e.g. a
			// rebuilt model map with the same coefficients) still hit via
			// the probe hash.
			ph, err := t.paramHashOf(in)
			if err == nil && ph == t.paramHash {
				c.hits.Add(1)
				return t.Plan(in.Workloads, in.CPUUtil, in.MemUtil)
			}
		}
		c.invalidations.Add(1)
	}
	t, err := Compile(in)
	if err != nil {
		return nil, err
	}
	c.compiles.Add(1)
	c.put(t)
	return t.Plan(in.Workloads, in.CPUUtil, in.MemUtil)
}
