package spec

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"erms/internal/workload"
)

const minimalYAML = `
version: 1
app:
  kind: hotel
run:
  duration_min: 10
cohorts:
  - name: web
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 80
`

const minimalJSON = `{
  "version": 1,
  "app": {"kind": "hotel"},
  "run": {"duration_min": 10},
  "cohorts": [
    {"name": "web", "service": "search", "tier": "standard",
     "arrival": {"kind": "static", "rate": 80}}
  ]
}`

func TestParseDefaults(t *testing.T) {
	s, err := Parse([]byte(minimalYAML))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "spec" || s.Seed != 1 || s.TimeScale != 1 {
		t.Fatalf("defaults wrong: name=%q seed=%d time_scale=%g", s.Name, s.Seed, s.TimeScale)
	}
	if s.Run.WindowMin != 10 || s.Run.Hosts != 40 || s.Run.Scheme != "priority" {
		t.Fatalf("run defaults wrong: %+v", s.Run)
	}
	if s.App.Seed != 1 {
		t.Fatalf("app seed should default to spec seed, got %d", s.App.Seed)
	}
	if s.Cohorts[0].Tier != workload.TierStandard {
		t.Fatalf("tier = %v", s.Cohorts[0].Tier)
	}
}

func TestParseJSONEquivalence(t *testing.T) {
	fromYAML, err := Parse([]byte(minimalYAML))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Parse([]byte(minimalJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Fatalf("YAML and JSON decode differently:\n yaml %+v\n json %+v", fromYAML, fromJSON)
	}
}

// replace builds a spec document from the minimal one with one line swapped,
// keeping the error cases readable.
func replace(old, new string) []byte {
	return []byte(strings.Replace(minimalYAML, old, new, 1))
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  []byte
		want string
	}{
		{"empty", []byte("  \n"), "empty document"},
		{"unknown top field", append([]byte(minimalYAML), []byte("bogus: 1\n")...), `unknown field "bogus"`},
		{"unknown nested field", replace("kind: hotel", "kind: hotel\n  color: red"), `unknown field "color" in app`},
		{"bad version", replace("version: 1", "version: 2"), "version must be 1"},
		{"missing app", []byte("version: 1\nrun:\n  duration_min: 5\ncohorts:\n  - name: a\n    service: s\n    tier: batch\n    arrival:\n      kind: static\n"), "app is required"},
		{"bad kind", replace("kind: hotel", "kind: shop"), `app.kind "shop" unknown`},
		{"bad tier", replace("tier: standard", "tier: gold"), "tier"},
		{"negative rate", replace("rate: 80", "rate: -3"), "rate must be >= 0"},
		{"nan rate", replace("rate: 80", "rate: nan"), "finite number"},
		{"inf rate", replace("rate: 80", "rate: 1e999"), "finite number"},
		{"string rate", replace("rate: 80", "rate: fast"), "must be a number"},
		{"no cohorts", []byte("version: 1\napp:\n  kind: hotel\nrun:\n  duration_min: 5\n"), "at least one cohort"},
		{"dup cohort", append([]byte(minimalYAML), []byte("  - name: web\n    service: search\n    tier: batch\n    arrival:\n      kind: static\n      rate: 1\n")...), "duplicate cohort"},
		{"bad scheme", replace("duration_min: 10", "duration_min: 10\n  scheme: lifo"), `scheme "lifo" unknown`},
		{"warmup too long", replace("duration_min: 10", "duration_min: 10\n  warmup_min: 10"), "warmup_min"},
		{"seed negative", replace("version: 1", "version: 1\nseed: -4"), "non-negative integer"},
		{"mixed arrival", replace("rate: 80", "rate: 80\n      base: 2"), `accepts only rate`},
		{"json unknown", []byte(strings.Replace(minimalJSON, `"version": 1,`, `"version": 1, "bogus": true,`, 1)), `unknown field "bogus"`},
		{"json trailing", []byte(`{"version": 1}{}`), "trailing content"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got none", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestPhaseValidation(t *testing.T) {
	base := minimalYAML + "phases:\n"
	cases := []struct {
		name, phase, want string
	}{
		{"bad kind", "  - kind: surge\n    start_min: 0\n    duration_min: 2\n", "kind"},
		{"no factor", "  - kind: flash_crowd\n    start_min: 0\n    duration_min: 2\n", "factor is required"},
		{"past end", "  - kind: flash_crowd\n    start_min: 9\n    duration_min: 5\n    factor: 2\n", "past run.duration_min"},
		{"ramp too long", "  - kind: flash_crowd\n    start_min: 0\n    duration_min: 2\n    ramp_min: 1.5\n    factor: 2\n", "ramp_min"},
		{"unknown cohort", "  - kind: drain\n    start_min: 0\n    duration_min: 2\n    cohorts: [nobody]\n", `"nobody" does not name a cohort`},
		{"failover self", "  - kind: failover\n    start_min: 0\n    duration_min: 2\n    from: web\n    to: web\n    fraction: 0.5\n", "different cohorts"},
		{"failover no fraction", "  - kind: failover\n    start_min: 0\n    duration_min: 2\n    from: web\n    to: web2\n", ""},
		{"drain bad residual", "  - kind: drain\n    start_min: 0\n    duration_min: 2\n    factor: 1.5\n", "residual"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(base + c.phase))
			if err == nil {
				t.Fatalf("expected error, got none")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseExampleSpecs(t *testing.T) {
	for _, rel := range []string{
		"../../examples/quickstart/quickstart.yaml",
		"../../examples/specs/flashcrowd.yaml",
		"../../examples/specs/failover.yaml",
	} {
		s, err := ParseFile(filepath.FromSlash(rel))
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		if _, err := s.Compile(); err != nil {
			t.Fatalf("%s: compile: %v", rel, err)
		}
	}
}
