// Package spec is the declarative workload front-end: a versioned YAML/JSON
// schema describing an application, client cohorts with SLO tiers, and a
// timeline of population-dynamics phases (flash crowds, regional failovers,
// drains), compiled deterministically into the code-level scenario types
// (apps.App, workload.Pattern, sim/core configuration). Specs are parsed
// strictly — unknown fields, out-of-range values, and non-finite numbers are
// rejected with actionable errors — so a spec that parses today compiles to
// the same scenario bytes forever.
package spec

import (
	"fmt"
	"math"
	"strings"

	"erms/internal/workload"
)

// Version is the schema version this package reads and writes.
const Version = 1

// Spec is the root of a workload spec document.
type Spec struct {
	// Version is the schema version; must equal Version (1).
	Version int
	// Name labels the spec in reports and CSV artifacts. Default "spec".
	Name string
	// Seed is the top-level determinism seed: the same spec with the same
	// seed produces byte-identical runs. Default 1.
	Seed uint64
	// TimeScale compresses spec time: a value of k runs a spec-minute in
	// 1/k simulated minutes (durations, phase offsets, and pattern periods
	// all shrink together). Default 1 (no compression).
	TimeScale float64
	// App selects and parameterizes the application topology.
	App AppSpec
	// Run sets the evaluation horizon and cluster shape.
	Run RunSpec
	// Resilience optionally enables the data-plane fault model.
	Resilience *ResilienceSpec
	// Chaos optionally declares a seeded fault-injection timeline (host
	// deaths, crashes, spikes, observability gaps, control-plane faults)
	// alongside the cohorts it stresses. Chaos specs run under the
	// long-running operator loop (`ermsctl operate`); the batch Scenario.Run
	// rejects them so a fault timeline is never silently ignored.
	Chaos *ChaosSpec
	// Drift optionally enables the controller's online model-drift
	// detection loop (detect → re-fit → hot-swap).
	Drift *DriftSpec
	// Cohorts are the named client populations driving load.
	Cohorts []Cohort
	// Phases is the population-dynamics timeline applied on top of the
	// cohorts' base arrival patterns.
	Phases []Phase
}

// AppSpec selects the application topology.
type AppSpec struct {
	// Kind is one of "hotel", "social", "media", "alibaba", "scale".
	Kind string
	// Seed seeds the generated topologies (alibaba, scale). Default: the
	// spec's top-level seed.
	Seed uint64
	// seedSet records whether seed was present in the document.
	seedSet bool
	// Exact-shape scale parameters (kind "scale" only; see apps.ScaleConfig).
	Services                int
	MicroservicesPerService int
	SharingDegree           int
	MaxStageWidth           int
	// SLAs overrides the topology's per-service end-to-end SLA threshold
	// (ms). Services absent from the map keep the topology default; service
	// names are checked at compile time. Unlike a cohort's sla_ms (which only
	// reclassifies that cohort's outcomes), these overrides feed the planner,
	// so a spec push that tightens them changes the resource plan.
	SLAs map[string]float64
}

// RunSpec sets the evaluation horizon and cluster shape.
type RunSpec struct {
	// DurationMin is the spec-time horizon in minutes (compressed by
	// TimeScale at compile time). Required.
	DurationMin float64
	// WarmupMin is excluded from reported metrics. Default 0.
	WarmupMin float64
	// WindowMin is the planning-window length: the controller re-plans from
	// observed per-window rates every WindowMin spec-minutes. Default:
	// DurationMin (a single window).
	WindowMin float64
	// Hosts is the cluster size. Default 40.
	Hosts int
	// Scheme is "priority" (default), "fcfs", or "nonshared".
	Scheme string
}

// ResilienceSpec mirrors the sim.Resilience knobs exposed to specs.
type ResilienceSpec struct {
	TimeoutSLAMultiple float64
	RequestTimeoutMs   float64
	AttemptTimeoutMs   float64
	MaxAttempts        int
	RetryBudget        float64
	BreakerFailureRate float64
	Shed               bool
	ShedMaxWaitMs      float64
	// TierShedFactors overrides sim.DefaultTierShedFactors per tier name.
	// Tiers absent from the map keep the default factor.
	TierShedFactors map[string]float64
}

// ChaosSpec declares a seeded fault-injection timeline. Fields mirror
// chaos.Config's per-window probability knobs; window count, window length,
// host count, and crash candidates come from the compiled scenario, so the
// same block stresses any topology. Zero probabilities are valid (an empty
// schedule), letting operators stage a spec with chaos declared but dormant.
type ChaosSpec struct {
	// Seed seeds the fault schedule independently of the workload. Default:
	// the spec's top-level seed.
	Seed uint64
	// seedSet records whether seed was present in the document.
	seedSet bool
	// PHostFail is the per-window probability of one host failure.
	PHostFail float64
	// DownWindows is how many windows a failed host stays down. Default 2.
	DownWindows int
	// MaxHostsDown caps concurrently failed hosts. Default hosts/4, min 1.
	MaxHostsDown int
	// PCrash is the per-window probability of each of CrashesPerWindow
	// container-crash draws. CrashesPerWindow defaults to 1.
	PCrash           float64
	CrashesPerWindow int
	// PSpike is the per-window probability of a latency spike hitting
	// SpikeHosts hosts (default 1) with the given extra background
	// interference.
	PSpike      float64
	SpikeHosts  int
	SeverityCPU float64
	SeverityMem float64
	// PObsGap is the per-window probability of an observability gap.
	PObsGap float64
	// POpFail is the per-window probability of a transient control-plane
	// operation failure lasting 1..OpFailures attempts (default 1).
	POpFail    float64
	OpFailures int
}

// DriftSpec enables the controller's online drift loop.
type DriftSpec struct {
	// Threshold is the relative deviation of observed from predicted tail
	// latency that counts as a drifted window. 0 keeps drift.Config's
	// default.
	Threshold float64
	// Consecutive is the hysteresis depth before a re-fit fires. 0 keeps
	// the default.
	Consecutive int
	// Downward also treats observed latency far below prediction as drift.
	Downward bool
}

// Cohort is one named client population issuing requests to one service at
// one SLO tier.
type Cohort struct {
	// Name identifies the cohort in phases, reports, and CSV rows. Required,
	// unique, and CSV-safe (letters, digits, '-', '_', '.').
	Name string
	// Service is the entry service the cohort calls. Must exist in the app.
	Service string
	// Tier is the SLO tier: "critical", "standard", "sheddable", "batch".
	Tier workload.Tier
	// Arrival is the base arrival pattern before phases apply.
	Arrival ArrivalSpec
	// SLAMs overrides the app's per-service SLA threshold (ms) for this
	// cohort's requests. 0 keeps the app SLA.
	SLAMs float64
}

// ArrivalSpec describes a base arrival pattern in spec time.
type ArrivalSpec struct {
	// Kind is "static", "diurnal", or "trace".
	Kind string
	// Rate is the static req/min (kind "static").
	Rate float64
	// Diurnal parameters (kind "diurnal"): rate oscillates between Base and
	// Peak with the given period and phase offset, in spec-minutes.
	Base      float64
	Peak      float64
	PeriodMin float64
	PhaseMin  float64
	// Trace parameters (kind "trace"): piecewise-constant req/min steps of
	// StepMin spec-minutes each, cycling. TraceName labels the trace.
	Rates     []float64
	StepMin   float64
	TraceName string
}

// Phase kinds.
const (
	PhaseBaseline   = "baseline"    // constant multiplier over the interval
	PhaseFlashCrowd = "flash_crowd" // ramp up to Factor, hold, ramp back
	PhaseDrain      = "drain"       // ramp down to Factor (default 0), hold
	PhaseFailover   = "failover"    // shift Fraction of From's load onto To
)

// Phase is one population-dynamics event on the spec timeline. Phases
// compose multiplicatively on each affected cohort's base pattern; failover
// additionally adds the shifted load onto the target cohort's service at the
// target cohort's tier.
type Phase struct {
	// Name labels the phase in reports. Optional.
	Name string
	// Kind is one of the Phase* constants.
	Kind string
	// StartMin / DurationMin bound the phase in spec-minutes.
	StartMin    float64
	DurationMin float64
	// RampMin is the linear ramp in and out of the phase's full effect.
	// Default 0 (a step). Must satisfy 2*RampMin <= DurationMin.
	RampMin float64
	// Factor is the peak load multiplier (baseline, flash_crowd: required,
	// > 0; drain: residual level in [0, 1), default 0; failover: unused).
	Factor float64
	// factorSet records whether factor was present in the document.
	factorSet bool
	// Cohorts restricts the phase to the named cohorts (baseline,
	// flash_crowd, drain). Empty means all cohorts. Unused for failover.
	Cohorts []string
	// From / To / Fraction describe a failover: Fraction of From's offered
	// load is removed from From and added to To (failover only).
	From     string
	To       string
	Fraction float64
}

// End returns the phase end in spec-minutes.
func (p Phase) End() float64 { return p.StartMin + p.DurationMin }

// appKinds maps spec app kinds to a description used in errors.
var appKinds = map[string]bool{"hotel": true, "social": true, "media": true, "alibaba": true, "scale": true}

var schemes = map[string]bool{"priority": true, "fcfs": true, "nonshared": true}

var phaseKinds = map[string]bool{PhaseBaseline: true, PhaseFlashCrowd: true, PhaseDrain: true, PhaseFailover: true}

// nameOK reports whether s is CSV- and report-safe.
func nameOK(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// Validate checks everything that does not require the compiled app (service
// existence is checked by Compile). Errors name the offending field and say
// what would be accepted.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: version must be %d, got %d", Version, s.Version)
	}
	if !nameOK(s.Name) {
		return fmt.Errorf("spec: name %q must use only letters, digits, '-', '_', '.'", s.Name)
	}
	if !(s.TimeScale > 0) || s.TimeScale > 1000 {
		return fmt.Errorf("spec: time_scale must be in (0, 1000], got %g", s.TimeScale)
	}
	if err := s.App.validate(); err != nil {
		return err
	}
	if err := s.Run.validate(); err != nil {
		return err
	}
	if s.Resilience != nil {
		if err := s.Resilience.validate(); err != nil {
			return err
		}
	}
	if s.Chaos != nil {
		if err := s.Chaos.validate(s.Run.Hosts); err != nil {
			return err
		}
	}
	if s.Drift != nil {
		if err := s.Drift.validate(); err != nil {
			return err
		}
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("spec: at least one cohort is required")
	}
	byName := make(map[string]*Cohort, len(s.Cohorts))
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		at := fmt.Sprintf("spec: cohorts[%d]", i)
		if c.Name != "" {
			at = fmt.Sprintf("spec: cohort %q", c.Name)
		}
		if !nameOK(c.Name) {
			return fmt.Errorf("%s: name %q must be non-empty and use only letters, digits, '-', '_', '.'", at, c.Name)
		}
		if _, dup := byName[c.Name]; dup {
			return fmt.Errorf("spec: duplicate cohort name %q", c.Name)
		}
		byName[c.Name] = c
		if c.Service == "" {
			return fmt.Errorf("%s: service is required", at)
		}
		if !c.Tier.Valid() {
			return fmt.Errorf("%s: invalid tier (want critical, standard, sheddable, or batch)", at)
		}
		if c.SLAMs < 0 {
			return fmt.Errorf("%s: sla_ms must be >= 0, got %g", at, c.SLAMs)
		}
		if err := c.Arrival.validate(at); err != nil {
			return err
		}
	}
	for i := range s.Phases {
		if err := s.Phases[i].validate(i, s.Run.DurationMin, byName); err != nil {
			return err
		}
	}
	return nil
}

func (a *AppSpec) validate() error {
	if !appKinds[a.Kind] {
		return fmt.Errorf("spec: app.kind %q unknown (want hotel, social, media, alibaba, or scale)", a.Kind)
	}
	generated := a.Kind == "alibaba" || a.Kind == "scale"
	if a.seedSet && !generated {
		return fmt.Errorf("spec: app.seed only applies to generated topologies (alibaba, scale), not %q", a.Kind)
	}
	for svc, ms := range a.SLAs {
		if svc == "" {
			return fmt.Errorf("spec: app.slas: service name must be non-empty")
		}
		if math.IsNaN(ms) || math.IsInf(ms, 0) || !(ms > 0) || ms > 1e6 {
			return fmt.Errorf("spec: app.slas.%s must be in (0, 1e6] ms, got %g", svc, ms)
		}
	}
	if a.Kind != "scale" {
		if a.Services != 0 || a.MicroservicesPerService != 0 || a.SharingDegree != 0 || a.MaxStageWidth != 0 {
			return fmt.Errorf("spec: app.services/microservices_per_service/sharing_degree/max_stage_width only apply to kind \"scale\", not %q", a.Kind)
		}
		return nil
	}
	if a.Services < 0 || a.Services > 10000 {
		return fmt.Errorf("spec: app.services must be in [0, 10000] (0 = default), got %d", a.Services)
	}
	if a.MicroservicesPerService < 0 || a.MicroservicesPerService > 1000 {
		return fmt.Errorf("spec: app.microservices_per_service must be in [0, 1000] (0 = default), got %d", a.MicroservicesPerService)
	}
	if a.SharingDegree < 0 {
		return fmt.Errorf("spec: app.sharing_degree must be >= 0 (0 = default), got %d", a.SharingDegree)
	}
	if a.MaxStageWidth < 0 {
		return fmt.Errorf("spec: app.max_stage_width must be >= 0 (0 = default), got %d", a.MaxStageWidth)
	}
	return nil
}

func (r *RunSpec) validate() error {
	const week = 7 * 24 * 60
	if !(r.DurationMin > 0) || r.DurationMin > week {
		return fmt.Errorf("spec: run.duration_min must be in (0, %d] spec-minutes, got %g", week, r.DurationMin)
	}
	if r.WarmupMin < 0 || r.WarmupMin >= r.DurationMin {
		return fmt.Errorf("spec: run.warmup_min must be in [0, duration_min), got %g", r.WarmupMin)
	}
	if !(r.WindowMin > 0) || r.WindowMin > r.DurationMin {
		return fmt.Errorf("spec: run.window_min must be in (0, duration_min], got %g", r.WindowMin)
	}
	if r.Hosts < 1 || r.Hosts > 100000 {
		return fmt.Errorf("spec: run.hosts must be in [1, 100000], got %d", r.Hosts)
	}
	if !schemes[r.Scheme] {
		return fmt.Errorf("spec: run.scheme %q unknown (want priority, fcfs, or nonshared)", r.Scheme)
	}
	return nil
}

func (r *ResilienceSpec) validate() error {
	nonNeg := []struct {
		name string
		v    float64
	}{
		{"timeout_sla_multiple", r.TimeoutSLAMultiple},
		{"request_timeout_ms", r.RequestTimeoutMs},
		{"attempt_timeout_ms", r.AttemptTimeoutMs},
		{"retry_budget", r.RetryBudget},
		{"shed_max_wait_ms", r.ShedMaxWaitMs},
	}
	for _, f := range nonNeg {
		if f.v < 0 {
			return fmt.Errorf("spec: resilience.%s must be >= 0, got %g", f.name, f.v)
		}
	}
	if r.MaxAttempts < 0 || r.MaxAttempts > 100 {
		return fmt.Errorf("spec: resilience.max_attempts must be in [0, 100], got %d", r.MaxAttempts)
	}
	if r.BreakerFailureRate < 0 || r.BreakerFailureRate > 1 {
		return fmt.Errorf("spec: resilience.breaker_failure_rate must be in [0, 1], got %g", r.BreakerFailureRate)
	}
	for tier, f := range r.TierShedFactors {
		if _, err := workload.ParseTier(tier); err != nil {
			return fmt.Errorf("spec: resilience.tier_shed_factors: %v", err)
		}
		if f < 0 {
			return fmt.Errorf("spec: resilience.tier_shed_factors.%s must be >= 0, got %g", tier, f)
		}
	}
	return nil
}

func (c *ChaosSpec) validate(hosts int) error {
	probs := []struct {
		name string
		v    float64
	}{
		{"p_host_fail", c.PHostFail},
		{"p_crash", c.PCrash},
		{"p_spike", c.PSpike},
		{"p_obs_gap", c.PObsGap},
		{"p_op_fail", c.POpFail},
	}
	for _, p := range probs {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("spec: chaos.%s is a probability and must be in [0, 1], got %g", p.name, p.v)
		}
	}
	if c.DownWindows < 0 || c.DownWindows > 1000 {
		return fmt.Errorf("spec: chaos.down_windows must be in [0, 1000] (0 = default 2), got %d", c.DownWindows)
	}
	if c.MaxHostsDown < 0 || (hosts > 0 && c.MaxHostsDown > hosts) {
		return fmt.Errorf("spec: chaos.max_hosts_down must be in [0, run.hosts] (0 = default hosts/4), got %d", c.MaxHostsDown)
	}
	if c.CrashesPerWindow < 0 || c.CrashesPerWindow > 100 {
		return fmt.Errorf("spec: chaos.crashes_per_window must be in [0, 100] (0 = default 1), got %d", c.CrashesPerWindow)
	}
	if c.SpikeHosts < 0 || (hosts > 0 && c.SpikeHosts > hosts) {
		return fmt.Errorf("spec: chaos.spike_hosts must be in [0, run.hosts] (0 = default 1), got %d", c.SpikeHosts)
	}
	if math.IsNaN(c.SeverityCPU) || c.SeverityCPU < 0 || c.SeverityCPU > 10 {
		return fmt.Errorf("spec: chaos.severity_cpu must be in [0, 10], got %g", c.SeverityCPU)
	}
	if math.IsNaN(c.SeverityMem) || c.SeverityMem < 0 || c.SeverityMem > 10 {
		return fmt.Errorf("spec: chaos.severity_mem must be in [0, 10], got %g", c.SeverityMem)
	}
	if c.OpFailures < 0 || c.OpFailures > 100 {
		return fmt.Errorf("spec: chaos.op_failures must be in [0, 100] (0 = default 1), got %d", c.OpFailures)
	}
	return nil
}

func (d *DriftSpec) validate() error {
	if math.IsNaN(d.Threshold) || d.Threshold < 0 || d.Threshold > 100 {
		return fmt.Errorf("spec: drift.threshold must be in [0, 100] (0 = default), got %g", d.Threshold)
	}
	if d.Consecutive < 0 || d.Consecutive > 1000 {
		return fmt.Errorf("spec: drift.consecutive must be in [0, 1000] (0 = default), got %d", d.Consecutive)
	}
	return nil
}

func (a *ArrivalSpec) validate(at string) error {
	switch a.Kind {
	case "static":
		if a.Rate < 0 {
			return fmt.Errorf("%s: arrival.rate must be >= 0 req/min, got %g", at, a.Rate)
		}
		if a.Base != 0 || a.Peak != 0 || a.PeriodMin != 0 || a.PhaseMin != 0 || len(a.Rates) != 0 || a.StepMin != 0 || a.TraceName != "" {
			return fmt.Errorf("%s: arrival kind \"static\" accepts only rate", at)
		}
	case "diurnal":
		if a.Base < 0 || a.Peak < 0 {
			return fmt.Errorf("%s: arrival.base and arrival.peak must be >= 0 req/min", at)
		}
		if !(a.PeriodMin > 0) {
			return fmt.Errorf("%s: arrival.period_min must be > 0 for kind \"diurnal\", got %g", at, a.PeriodMin)
		}
		if a.Rate != 0 || len(a.Rates) != 0 || a.StepMin != 0 || a.TraceName != "" {
			return fmt.Errorf("%s: arrival kind \"diurnal\" accepts only base, peak, period_min, phase_min", at)
		}
	case "trace":
		if len(a.Rates) == 0 {
			return fmt.Errorf("%s: arrival.rates must be a non-empty list for kind \"trace\"", at)
		}
		for i, r := range a.Rates {
			if r < 0 {
				return fmt.Errorf("%s: arrival.rates[%d] must be >= 0 req/min, got %g", at, i, r)
			}
		}
		if !(a.StepMin > 0) {
			return fmt.Errorf("%s: arrival.step_min must be > 0 for kind \"trace\", got %g", at, a.StepMin)
		}
		if a.Rate != 0 || a.Base != 0 || a.Peak != 0 || a.PeriodMin != 0 || a.PhaseMin != 0 {
			return fmt.Errorf("%s: arrival kind \"trace\" accepts only rates, step_min, name", at)
		}
	default:
		return fmt.Errorf("%s: arrival.kind %q unknown (want static, diurnal, or trace)", at, a.Kind)
	}
	return nil
}

func (p *Phase) validate(i int, durationMin float64, cohorts map[string]*Cohort) error {
	at := fmt.Sprintf("spec: phases[%d]", i)
	if p.Name != "" {
		if !nameOK(p.Name) {
			return fmt.Errorf("%s: name %q must use only letters, digits, '-', '_', '.'", at, p.Name)
		}
		at = fmt.Sprintf("spec: phase %q", p.Name)
	}
	if !phaseKinds[p.Kind] {
		return fmt.Errorf("%s: kind %q unknown (want %s)", at, p.Kind,
			strings.Join([]string{PhaseBaseline, PhaseFlashCrowd, PhaseDrain, PhaseFailover}, ", "))
	}
	if p.StartMin < 0 {
		return fmt.Errorf("%s: start_min must be >= 0, got %g", at, p.StartMin)
	}
	if !(p.DurationMin > 0) {
		return fmt.Errorf("%s: duration_min must be > 0, got %g", at, p.DurationMin)
	}
	if p.End() > durationMin {
		return fmt.Errorf("%s: ends at %g, past run.duration_min %g", at, p.End(), durationMin)
	}
	if p.RampMin < 0 || 2*p.RampMin > p.DurationMin {
		return fmt.Errorf("%s: ramp_min must satisfy 0 <= 2*ramp_min <= duration_min, got %g", at, p.RampMin)
	}
	for _, name := range p.Cohorts {
		if _, ok := cohorts[name]; !ok {
			return fmt.Errorf("%s: cohorts entry %q does not name a cohort", at, name)
		}
	}
	switch p.Kind {
	case PhaseBaseline, PhaseFlashCrowd:
		if !p.factorSet || !(p.Factor > 0) {
			return fmt.Errorf("%s: factor is required and must be > 0 for kind %q", at, p.Kind)
		}
		if p.Factor > 1000 {
			return fmt.Errorf("%s: factor must be <= 1000, got %g", at, p.Factor)
		}
	case PhaseDrain:
		if p.factorSet && (p.Factor < 0 || p.Factor >= 1) {
			return fmt.Errorf("%s: drain factor is the residual load level and must be in [0, 1), got %g", at, p.Factor)
		}
	case PhaseFailover:
		if p.factorSet {
			return fmt.Errorf("%s: factor does not apply to failover (use fraction)", at)
		}
		if len(p.Cohorts) != 0 {
			return fmt.Errorf("%s: failover uses from/to, not a cohorts list", at)
		}
		if _, ok := cohorts[p.From]; !ok {
			return fmt.Errorf("%s: from %q does not name a cohort", at, p.From)
		}
		if _, ok := cohorts[p.To]; !ok {
			return fmt.Errorf("%s: to %q does not name a cohort", at, p.To)
		}
		if p.From == p.To {
			return fmt.Errorf("%s: from and to must name different cohorts", at)
		}
		if !(p.Fraction > 0) || p.Fraction > 1 {
			return fmt.Errorf("%s: fraction must be in (0, 1], got %g", at, p.Fraction)
		}
	}
	if p.Kind != PhaseFailover && (p.From != "" || p.To != "" || p.Fraction != 0) {
		return fmt.Errorf("%s: from/to/fraction only apply to kind %q", at, PhaseFailover)
	}
	return nil
}
