package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"

	"erms/internal/workload"
)

// Parse reads a workload spec from YAML or JSON (detected by the first
// non-space byte), decodes it strictly — unknown fields, wrong types, and
// non-finite numbers are errors — and validates it. The returned spec is
// ready for Compile.
func Parse(data []byte) (*Spec, error) {
	tree, err := parseTree(data)
	if err != nil {
		return nil, err
	}
	s, err := decodeSpec(tree)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseFile reads and parses the spec at path.
func ParseFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// parseTree produces the generic document tree from YAML or JSON input.
func parseTree(data []byte) (any, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("spec: empty document")
	}
	if trimmed[0] != '{' {
		return parseYAML(data)
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("spec: invalid JSON: %v", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err == nil || err.Error() != "EOF" {
		return nil, fmt.Errorf("spec: trailing content after JSON document")
	}
	return normalizeJSON(v)
}

// normalizeJSON converts json.Number leaves into the int64/uint64/float64
// shapes the YAML parser produces, so one decoder serves both formats.
func normalizeJSON(v any) (any, error) {
	switch t := v.(type) {
	case json.Number:
		s := t.String()
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return i, nil
		}
		if u, err := strconv.ParseUint(s, 10, 64); err == nil {
			return u, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("spec: invalid number %q", s)
		}
		return f, nil
	case map[string]any:
		for k, e := range t {
			n, err := normalizeJSON(e)
			if err != nil {
				return nil, err
			}
			t[k] = n
		}
		return t, nil
	case []any:
		for i, e := range t {
			n, err := normalizeJSON(e)
			if err != nil {
				return nil, err
			}
			t[i] = n
		}
		return t, nil
	default:
		return v, nil
	}
}

// typeName names a tree value for error messages.
func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case map[string]any:
		return "a mapping"
	case []any:
		return "a sequence"
	case string:
		return "a string"
	case bool:
		return "a boolean"
	case int64, uint64, float64:
		return "a number"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// dec carries the first decode error; once set, further reads are no-ops so
// call sites stay linear.
type dec struct{ err error }

func (d *dec) errf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// obj wraps a mapping node for strict field access.
type objd struct {
	d    *dec
	path string
	m    map[string]any
	used map[string]bool
}

func (d *dec) obj(path string, v any) *objd {
	o := &objd{d: d, path: path}
	if d.err != nil {
		return o
	}
	m, ok := v.(map[string]any)
	if !ok {
		where := path
		if where == "" {
			where = "document root"
		}
		d.errf("spec: %s must be a mapping, got %s", where, typeName(v))
		return o
	}
	o.m = m
	o.used = make(map[string]bool, len(m))
	return o
}

func (o *objd) at(key string) string {
	if o.path == "" {
		return key
	}
	return o.path + "." + key
}

// get marks key as known and returns its value if present.
func (o *objd) get(key string) (any, bool) {
	if o.m == nil {
		return nil, false
	}
	o.used[key] = true
	v, ok := o.m[key]
	if !ok || v == nil {
		return nil, false
	}
	return v, true
}

// done rejects fields that no get touched, listing the accepted ones.
func (o *objd) done() {
	if o.m == nil || o.d.err != nil {
		return
	}
	var unknown, known []string
	for k := range o.m {
		if !o.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return
	}
	for k := range o.used {
		known = append(known, k)
	}
	sort.Strings(unknown)
	sort.Strings(known)
	where := o.path
	if where == "" {
		where = "document root"
	}
	o.d.errf("spec: unknown field %q in %s (accepted fields: %s)",
		unknown[0], where, joinComma(known))
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

func (o *objd) str(key, def string) string {
	v, ok := o.get(key)
	if !ok {
		return def
	}
	s, isStr := v.(string)
	if !isStr {
		o.d.errf("spec: %s must be a string, got %s", o.at(key), typeName(v))
		return def
	}
	return s
}

func (o *objd) boolean(key string, def bool) bool {
	v, ok := o.get(key)
	if !ok {
		return def
	}
	b, isBool := v.(bool)
	if !isBool {
		o.d.errf("spec: %s must be true or false, got %s", o.at(key), typeName(v))
		return def
	}
	return b
}

// toFloat converts any numeric leaf, rejecting NaN and ±Inf.
func (d *dec) toFloat(path string, v any) float64 {
	switch n := v.(type) {
	case int64:
		return float64(n)
	case uint64:
		return float64(n)
	case float64:
		if math.IsNaN(n) || math.IsInf(n, 0) {
			d.errf("spec: %s must be a finite number", path)
			return 0
		}
		return n
	default:
		d.errf("spec: %s must be a number, got %s", path, typeName(v))
		return 0
	}
}

func (o *objd) f64(key string, def float64) float64 {
	v, ok := o.get(key)
	if !ok {
		return def
	}
	return o.d.toFloat(o.at(key), v)
}

// f64set is f64 plus a flag recording whether the field was present.
func (o *objd) f64set(key string) (float64, bool) {
	v, ok := o.get(key)
	if !ok {
		return 0, false
	}
	return o.d.toFloat(o.at(key), v), true
}

func (o *objd) integer(key string, def int) int {
	v, ok := o.get(key)
	if !ok {
		return def
	}
	switch n := v.(type) {
	case int64:
		if n < math.MinInt32 || n > math.MaxInt32 {
			o.d.errf("spec: %s out of range: %d", o.at(key), n)
			return def
		}
		return int(n)
	case uint64:
		if n > math.MaxInt32 {
			o.d.errf("spec: %s out of range: %d", o.at(key), n)
			return def
		}
		return int(n)
	default:
		o.d.errf("spec: %s must be an integer, got %s", o.at(key), typeName(v))
		return def
	}
}

// u64 reads an unsigned 64-bit integer (seeds), reporting presence.
func (o *objd) u64(key string, def uint64) (uint64, bool) {
	v, ok := o.get(key)
	if !ok {
		return def, false
	}
	switch n := v.(type) {
	case int64:
		if n < 0 {
			o.d.errf("spec: %s must be a non-negative integer, got %d", o.at(key), n)
			return def, true
		}
		return uint64(n), true
	case uint64:
		return n, true
	default:
		o.d.errf("spec: %s must be a non-negative integer, got %s", o.at(key), typeName(v))
		return def, true
	}
}

func (o *objd) f64s(key string) []float64 {
	v, ok := o.get(key)
	if !ok {
		return nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		o.d.errf("spec: %s must be a sequence of numbers, got %s", o.at(key), typeName(v))
		return nil
	}
	out := make([]float64, len(seq))
	for i, e := range seq {
		out[i] = o.d.toFloat(fmt.Sprintf("%s[%d]", o.at(key), i), e)
	}
	return out
}

func (o *objd) strs(key string) []string {
	v, ok := o.get(key)
	if !ok {
		return nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		o.d.errf("spec: %s must be a sequence of strings, got %s", o.at(key), typeName(v))
		return nil
	}
	out := make([]string, len(seq))
	for i, e := range seq {
		s, isStr := e.(string)
		if !isStr {
			o.d.errf("spec: %s[%d] must be a string, got %s", o.at(key), i, typeName(e))
			return nil
		}
		out[i] = s
	}
	return out
}

// seq wraps a sequence node.
func (d *dec) seq(path string, v any) []any {
	if d.err != nil {
		return nil
	}
	s, ok := v.([]any)
	if !ok {
		d.errf("spec: %s must be a sequence, got %s", path, typeName(v))
		return nil
	}
	return s
}

// decodeSpec walks the generic tree into a Spec, applying documented
// defaults for absent optional fields.
func decodeSpec(tree any) (*Spec, error) {
	d := &dec{}
	root := d.obj("", tree)
	s := &Spec{}
	s.Version = root.integer("version", 0)
	s.Name = root.str("name", "spec")
	s.Seed, _ = root.u64("seed", 1)
	s.TimeScale = root.f64("time_scale", 1)

	if v, ok := root.get("app"); ok {
		app := d.obj("app", v)
		s.App.Kind = app.str("kind", "")
		s.App.Seed, s.App.seedSet = app.u64("seed", s.Seed)
		s.App.Services = app.integer("services", 0)
		s.App.MicroservicesPerService = app.integer("microservices_per_service", 0)
		s.App.SharingDegree = app.integer("sharing_degree", 0)
		s.App.MaxStageWidth = app.integer("max_stage_width", 0)
		if sv, ok := app.get("slas"); ok {
			t := d.obj("app.slas", sv)
			if t.m != nil {
				keys := make([]string, 0, len(t.m))
				for k := range t.m {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				s.App.SLAs = make(map[string]float64, len(keys))
				for _, k := range keys {
					fv, _ := t.get(k)
					s.App.SLAs[k] = d.toFloat(t.at(k), fv)
				}
			}
		}
		app.done()
	} else {
		d.errf("spec: app is required (app.kind selects the topology)")
	}

	if v, ok := root.get("run"); ok {
		run := d.obj("run", v)
		s.Run.DurationMin = run.f64("duration_min", 0)
		s.Run.WarmupMin = run.f64("warmup_min", 0)
		s.Run.WindowMin = run.f64("window_min", s.Run.DurationMin)
		s.Run.Hosts = run.integer("hosts", 40)
		s.Run.Scheme = run.str("scheme", "priority")
		run.done()
	} else {
		d.errf("spec: run is required (run.duration_min sets the horizon)")
	}

	if v, ok := root.get("resilience"); ok {
		r := d.obj("resilience", v)
		rs := &ResilienceSpec{}
		rs.TimeoutSLAMultiple = r.f64("timeout_sla_multiple", 0)
		rs.RequestTimeoutMs = r.f64("request_timeout_ms", 0)
		rs.AttemptTimeoutMs = r.f64("attempt_timeout_ms", 0)
		rs.MaxAttempts = r.integer("max_attempts", 0)
		rs.RetryBudget = r.f64("retry_budget", 0)
		rs.BreakerFailureRate = r.f64("breaker_failure_rate", 0)
		rs.Shed = r.boolean("shed", false)
		rs.ShedMaxWaitMs = r.f64("shed_max_wait_ms", 0)
		if tv, ok := r.get("tier_shed_factors"); ok {
			t := d.obj("resilience.tier_shed_factors", tv)
			if t.m != nil {
				keys := make([]string, 0, len(t.m))
				for k := range t.m {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				rs.TierShedFactors = make(map[string]float64, len(keys))
				for _, k := range keys {
					fv, _ := t.get(k)
					rs.TierShedFactors[k] = d.toFloat(t.at(k), fv)
				}
			}
		}
		r.done()
		s.Resilience = rs
	}

	if v, ok := root.get("chaos"); ok {
		c := d.obj("chaos", v)
		cs := &ChaosSpec{}
		cs.Seed, cs.seedSet = c.u64("seed", s.Seed)
		cs.PHostFail = c.f64("p_host_fail", 0)
		cs.DownWindows = c.integer("down_windows", 0)
		cs.MaxHostsDown = c.integer("max_hosts_down", 0)
		cs.PCrash = c.f64("p_crash", 0)
		cs.CrashesPerWindow = c.integer("crashes_per_window", 0)
		cs.PSpike = c.f64("p_spike", 0)
		cs.SpikeHosts = c.integer("spike_hosts", 0)
		cs.SeverityCPU = c.f64("severity_cpu", 0)
		cs.SeverityMem = c.f64("severity_mem", 0)
		cs.PObsGap = c.f64("p_obs_gap", 0)
		cs.POpFail = c.f64("p_op_fail", 0)
		cs.OpFailures = c.integer("op_failures", 0)
		c.done()
		s.Chaos = cs
	}

	if v, ok := root.get("drift"); ok {
		dr := d.obj("drift", v)
		ds := &DriftSpec{}
		ds.Threshold = dr.f64("threshold", 0)
		ds.Consecutive = dr.integer("consecutive", 0)
		ds.Downward = dr.boolean("downward", false)
		dr.done()
		s.Drift = ds
	}

	if v, ok := root.get("cohorts"); ok {
		for i, cv := range d.seq("cohorts", v) {
			path := fmt.Sprintf("cohorts[%d]", i)
			o := d.obj(path, cv)
			var c Cohort
			c.Name = o.str("name", "")
			c.Service = o.str("service", "")
			tierName := o.str("tier", "")
			if d.err == nil {
				if tierName == "" {
					d.errf("spec: %s.tier is required (critical, standard, sheddable, or batch)", path)
				} else if t, err := workload.ParseTier(tierName); err != nil {
					d.errf("spec: %s.tier: %v", path, err)
				} else {
					c.Tier = t
				}
			}
			c.SLAMs = o.f64("sla_ms", 0)
			if av, ok := o.get("arrival"); ok {
				a := d.obj(path+".arrival", av)
				c.Arrival.Kind = a.str("kind", "")
				c.Arrival.Rate = a.f64("rate", 0)
				c.Arrival.Base = a.f64("base", 0)
				c.Arrival.Peak = a.f64("peak", 0)
				c.Arrival.PeriodMin = a.f64("period_min", 0)
				c.Arrival.PhaseMin = a.f64("phase_min", 0)
				c.Arrival.Rates = a.f64s("rates")
				c.Arrival.StepMin = a.f64("step_min", 0)
				c.Arrival.TraceName = a.str("name", "")
				a.done()
			} else {
				d.errf("spec: %s.arrival is required (arrival.kind: static, diurnal, or trace)", path)
			}
			o.done()
			s.Cohorts = append(s.Cohorts, c)
		}
	}

	if v, ok := root.get("phases"); ok {
		for i, pv := range d.seq("phases", v) {
			path := fmt.Sprintf("phases[%d]", i)
			o := d.obj(path, pv)
			var p Phase
			p.Name = o.str("name", "")
			p.Kind = o.str("kind", "")
			p.StartMin = o.f64("start_min", 0)
			p.DurationMin = o.f64("duration_min", 0)
			p.RampMin = o.f64("ramp_min", 0)
			p.Factor, p.factorSet = o.f64set("factor")
			p.Cohorts = o.strs("cohorts")
			p.From = o.str("from", "")
			p.To = o.str("to", "")
			p.Fraction = o.f64("fraction", 0)
			o.done()
			s.Phases = append(s.Phases, p)
		}
	}

	root.done()
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}
