package spec

import (
	"fmt"
	"io"
	"strconv"

	"erms/internal/cluster"
	"erms/internal/core"
	"erms/internal/kube"
	"erms/internal/obs"
	"erms/internal/provision"
	"erms/internal/workload"
)

// TierAgg aggregates request outcomes for one SLO tier.
type TierAgg struct {
	Issued    int
	Completed int // Good + Slow
	Good      int
	Slow      int
	Errors    int
	Shed      int // subset of Errors rejected by admission control
}

func (a *TierAgg) add(issued, completed, good, slow, errors, shed int) {
	a.Issued += issued
	a.Completed += completed
	a.Good += good
	a.Slow += slow
	a.Errors += errors
	a.Shed += shed
}

// ViolationRate is the fraction of completed-or-failed requests that missed
// their SLA (slow completions plus errors).
func (a TierAgg) ViolationRate() float64 {
	n := a.Completed + a.Errors
	if n == 0 {
		return 0
	}
	return float64(a.Slow+a.Errors) / float64(n)
}

// WindowReport summarizes one planning window.
type WindowReport struct {
	Index      int
	StartMin   float64 // simulated minutes
	EndMin     float64
	Containers int
	// PlannedRates is the per-service offered load the window was planned
	// against.
	PlannedRates map[string]float64
	PerTier      [workload.NumTiers]TierAgg
}

// TimelinePoint is one (minute, tier) cell of the run timeline. Minutes
// inside the warmup are not reported.
type TimelinePoint struct {
	// Minute is the global simulated minute; SpecMin the corresponding
	// spec-time minute (Minute × TimeScale).
	Minute  int
	SpecMin float64
	// Tier is the SLO tier; All rows aggregate every tier.
	Tier workload.Tier
	All  bool
	// Offered is the pattern-level offered load (req/min) at the minute.
	Offered float64
	Issued, Completed, Good, Slow, Errors, Shed int
	// Containers is the tier's share of the window's deployed containers,
	// attributed proportionally to offered load (the whole deployment for
	// All rows).
	Containers float64
}

// RunResult is a finished spec run.
type RunResult struct {
	Scenario *Scenario
	Windows  []WindowReport
	Timeline []TimelinePoint
	// Totals aggregates outcomes per tier across every reported minute.
	Totals [workload.NumTiers]TierAgg
}

// TiersPresent lists the tiers with at least one cohort, in tier order.
func (sc *Scenario) TiersPresent() []workload.Tier {
	var present [workload.NumTiers]bool
	for _, st := range sc.Streams {
		present[st.Tier] = true
	}
	out := make([]workload.Tier, 0, workload.NumTiers)
	for _, t := range workload.Tiers() {
		if present[t] {
			out = append(out, t)
		}
	}
	return out
}

// Run drives the controller over the scenario's planning windows: each
// window is planned from its offered load, applied, and simulated with the
// cohort streams, and the per-minute stream outcomes are stitched into the
// timeline. The run is deterministic in the spec: same spec, same seed,
// byte-identical result at any worker count.
func (sc *Scenario) Run(rec *obs.Recorder) (*RunResult, error) {
	if sc.Chaos != nil {
		return nil, fmt.Errorf("spec: %q declares a chaos block, which only the operator loop injects; run it with `ermsctl operate -spec ...` (batch run would silently skip the fault timeline)", sc.Spec.Name)
	}
	cl := cluster.New(sc.Hosts, cluster.PaperHost)
	orch := kube.New(cl, nil)
	opts := []core.Option{
		core.WithScheme(sc.Scheme),
		core.WithScheduler(&provision.InterferenceAware{Groups: 4}),
		core.WithResilience(sc.Resilience),
		core.WithObservability(rec),
		core.WithPlanShards(sc.PlanShards),
	}
	if cfg, ok := sc.DriftConfig(); ok {
		opts = append(opts, core.WithDriftDetection(cfg))
	}
	ctrl, err := core.New(sc.App, orch, opts...)
	if err != nil {
		return nil, err
	}
	ctrl.UseAnalyticModels()
	res := &RunResult{Scenario: sc}
	tiers := sc.TiersPresent()
	for w := 0; w < sc.Windows; w++ {
		start, end := sc.WindowBounds(w)
		dur := end - start
		if dur <= 0 {
			break
		}
		warm := 0.0
		if w == 0 {
			warm = sc.WarmupMin
			if warm > dur/2 {
				warm = dur / 2
			}
		}
		// Reactive planning, like the paper's workload-driven scaling loop:
		// window w is planned from the previous window's offered load (the
		// controller cannot see a flash crowd coming), so unforecast surges
		// overload the deployment until the next re-plan catches up.
		rates := sc.OfferedRates(w)
		planRates := rates
		if w > 0 {
			planRates = sc.OfferedRates(w - 1)
		}
		plan, err := ctrl.Plan(planRates)
		if err != nil {
			return nil, fmt.Errorf("spec: window %d plan: %w", w, err)
		}
		if err := ctrl.Apply(plan); err != nil {
			return nil, fmt.Errorf("spec: window %d apply: %w", w, err)
		}
		seedW := sc.Seed + uint64(w)*1000003 + 1
		ev, err := ctrl.EvaluateDeployed(plan, rates, dur, warm, seedW, core.EvalOpts{Streams: sc.WindowStreams(w)})
		if err != nil {
			return nil, fmt.Errorf("spec: window %d evaluate: %w", w, err)
		}
		rep := WindowReport{
			Index:        w,
			StartMin:     start,
			EndMin:       end,
			Containers:   ev.TotalContainers,
			PlannedRates: planRates,
		}
		// Fold the window's per-stream minutes into per-(minute, tier)
		// cells. StreamMinutes is in (minute, stream) order and skips
		// warmup minutes, so the fold is deterministic.
		byMinute := make(map[int]*[workload.NumTiers]TierAgg)
		minMinute, maxMinute := -1, -1
		for _, sm := range ev.Sim.StreamMinutes {
			tier := sc.Streams[sm.Stream].Tier
			cell, ok := byMinute[sm.Minute]
			if !ok {
				cell = &[workload.NumTiers]TierAgg{}
				byMinute[sm.Minute] = cell
				if minMinute < 0 || sm.Minute < minMinute {
					minMinute = sm.Minute
				}
				if sm.Minute > maxMinute {
					maxMinute = sm.Minute
				}
			}
			cell[tier].add(sm.Issued, sm.Completed, sm.Good, sm.Slow, sm.Errors, sm.Shed)
			rep.PerTier[tier].add(sm.Issued, sm.Completed, sm.Good, sm.Slow, sm.Errors, sm.Shed)
			res.Totals[tier].add(sm.Issued, sm.Completed, sm.Good, sm.Slow, sm.Errors, sm.Shed)
		}
		base := int(start + 0.5)
		for m := minMinute; m >= 0 && m <= maxMinute; m++ {
			cell, ok := byMinute[m]
			if !ok {
				continue
			}
			global := base + m
			offered := sc.OfferedByTier(float64(global))
			offeredAll := 0.0
			for _, t := range tiers {
				offeredAll += offered[t]
			}
			var all TierAgg
			for _, t := range tiers {
				a := cell[t]
				share := 0.0
				if offeredAll > 0 {
					share = offered[t] / offeredAll
				}
				res.Timeline = append(res.Timeline, TimelinePoint{
					Minute: global, SpecMin: float64(global) * sc.Spec.TimeScale,
					Tier: t, Offered: offered[t],
					Issued: a.Issued, Completed: a.Completed, Good: a.Good,
					Slow: a.Slow, Errors: a.Errors, Shed: a.Shed,
					Containers: float64(ev.TotalContainers) * share,
				})
				all.add(a.Issued, a.Completed, a.Good, a.Slow, a.Errors, a.Shed)
			}
			res.Timeline = append(res.Timeline, TimelinePoint{
				Minute: global, SpecMin: float64(global) * sc.Spec.TimeScale,
				All: true, Offered: offeredAll,
				Issued: all.Issued, Completed: all.Completed, Good: all.Good,
				Slow: all.Slow, Errors: all.Errors, Shed: all.Shed,
				Containers: float64(ev.TotalContainers),
			})
		}
		res.Windows = append(res.Windows, rep)
	}
	return res, nil
}

// timelineHeader is the timeline CSV column list.
const timelineHeader = "minute,spec_min,tier,offered_req_min,issued,completed,good,slow,errors,shed,violation_rate,containers"

// WriteTimelineCSV writes the per-minute, per-tier timeline. Rows are
// ordered by minute, then tiers in severity order, then an "all" aggregate
// row; numbers use the shortest exact decimal formatting, so equal runs
// produce byte-identical files.
func (r *RunResult) WriteTimelineCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, timelineHeader); err != nil {
		return err
	}
	for _, p := range r.Timeline {
		tier := "all"
		if !p.All {
			tier = p.Tier.String()
		}
		viol := 0.0
		if n := p.Completed + p.Errors; n > 0 {
			viol = float64(p.Slow+p.Errors) / float64(n)
		}
		_, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d,%d,%d,%d,%d,%s,%s\n",
			p.Minute, fnum(p.SpecMin), tier, fnum(p.Offered),
			p.Issued, p.Completed, p.Good, p.Slow, p.Errors, p.Shed,
			fnum(viol), fnum(p.Containers))
		if err != nil {
			return err
		}
	}
	return nil
}

// fnum formats a float with the shortest representation that round-trips.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Report renders a per-tier outcome summary for the CLI.
func (r *RunResult) Report(w io.Writer) {
	sc := r.Scenario
	fmt.Fprintf(w, "spec %q: app %s, %d cohorts, %d windows x %s min (time_scale %g)\n",
		sc.Spec.Name, sc.App.Name, len(sc.Streams), len(r.Windows), fnum(sc.WindowMin), sc.Spec.TimeScale)
	fmt.Fprintf(w, "%-10s %10s %10s %8s %8s %8s %10s\n",
		"tier", "issued", "completed", "slow", "errors", "shed", "viol-rate")
	for _, t := range sc.TiersPresent() {
		a := r.Totals[t]
		fmt.Fprintf(w, "%-10s %10d %10d %8d %8d %8d %9.2f%%\n",
			t.String(), a.Issued, a.Completed, a.Slow, a.Errors, a.Shed, 100*a.ViolationRate())
	}
}
