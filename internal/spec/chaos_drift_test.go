package spec

import (
	"strings"
	"testing"
)

// operatorYAML exercises every new operator-facing block: per-service SLA
// overrides, a chaos timeline, and drift detection.
const operatorYAML = `
version: 1
seed: 7
app:
  kind: hotel
  slas:
    search: 80
    reserve: 120
run:
  duration_min: 12
  window_min: 3
  hosts: 20
chaos:
  p_host_fail: 0.25
  down_windows: 2
  p_crash: 0.5
  crashes_per_window: 2
  p_spike: 0.3
  spike_hosts: 3
  severity_cpu: 0.25
  severity_mem: 0.2
  p_obs_gap: 0.15
  p_op_fail: 0.25
  op_failures: 2
drift:
  threshold: 0.75
  consecutive: 2
cohorts:
  - name: web
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 80
`

func TestParseOperatorBlocks(t *testing.T) {
	s, err := Parse([]byte(operatorYAML))
	if err != nil {
		t.Fatal(err)
	}
	if s.Chaos == nil || s.Drift == nil {
		t.Fatalf("chaos/drift blocks not decoded: %+v", s)
	}
	if s.Chaos.Seed != 7 || s.Chaos.seedSet {
		t.Fatalf("chaos seed should default to the spec seed (7, unset), got %d set=%v", s.Chaos.Seed, s.Chaos.seedSet)
	}
	if s.Chaos.PHostFail != 0.25 || s.Chaos.CrashesPerWindow != 2 || s.Chaos.SeverityMem != 0.2 {
		t.Fatalf("chaos knobs wrong: %+v", s.Chaos)
	}
	if s.Drift.Threshold != 0.75 || s.Drift.Consecutive != 2 || s.Drift.Downward {
		t.Fatalf("drift knobs wrong: %+v", s.Drift)
	}
	if got := s.App.SLAs["search"]; got != 80 {
		t.Fatalf("app.slas.search = %g, want 80", got)
	}
}

func TestCompileAppliesSLAOverrides(t *testing.T) {
	s, err := Parse([]byte(operatorYAML))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sla, ok := sc.App.SLAs["search"]
	if !ok || sla.Threshold != 80 || sla.Percentile <= 0 {
		t.Fatalf("search SLA override not applied: %+v (ok=%v)", sla, ok)
	}
	if sla2 := sc.App.SLAs["reserve"]; sla2.Threshold != 120 {
		t.Fatalf("reserve SLA override not applied: %+v", sla2)
	}
	// A service without an override keeps the topology default.
	for svc, v := range sc.App.SLAs {
		if v.Threshold <= 0 {
			t.Fatalf("service %q lost its SLA threshold: %+v", svc, v)
		}
	}
}

func TestChaosConfigSizedToScenario(t *testing.T) {
	s, err := Parse([]byte(operatorYAML))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := sc.ChaosConfig(0)
	if !ok {
		t.Fatal("ChaosConfig(0) reported no chaos block")
	}
	if cfg.Windows != sc.Windows || cfg.Hosts != 20 || cfg.WindowMin != sc.WindowMin {
		t.Fatalf("chaos config not sized to scenario: %+v (windows %d)", cfg, sc.Windows)
	}
	if len(cfg.Microservices) != len(sc.App.Microservices()) {
		t.Fatalf("chaos crash candidates = %d, want all %d microservices", len(cfg.Microservices), len(sc.App.Microservices()))
	}
	if cfg.Severity.CPU != 0.25 || cfg.Severity.Mem != 0.2 {
		t.Fatalf("severity not mapped: %+v", cfg.Severity)
	}
	ext, _ := sc.ChaosConfig(100)
	if ext.Windows != 100 {
		t.Fatalf("ChaosConfig(100).Windows = %d, want 100", ext.Windows)
	}
	if _, ok := (&Scenario{}).ChaosConfig(5); ok {
		t.Fatal("scenario without chaos block reported a config")
	}
}

func TestDriftConfigMapped(t *testing.T) {
	s, err := Parse([]byte(operatorYAML))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := sc.DriftConfig()
	if !ok || cfg.Threshold != 0.75 || cfg.Consecutive != 2 || cfg.Downward {
		t.Fatalf("drift config wrong: %+v (ok=%v)", cfg, ok)
	}
	if _, ok := (&Scenario{}).DriftConfig(); ok {
		t.Fatal("scenario without drift block reported a config")
	}
}

// TestRunRejectsChaosSpec pins the batch/operate split: a fault timeline in
// a batch run would be silently skipped, so Run must refuse it and point at
// the operator loop.
func TestRunRejectsChaosSpec(t *testing.T) {
	s, err := Parse([]byte(operatorYAML))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	_, err = sc.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "ermsctl operate") {
		t.Fatalf("Run with chaos block: err = %v, want pointer at ermsctl operate", err)
	}
}

func opReplace(old, new string) []byte {
	return []byte(strings.Replace(operatorYAML, old, new, 1))
}

func TestOperatorBlockErrors(t *testing.T) {
	cases := []struct {
		name string
		src  []byte
		want string
	}{
		{"chaos unknown field", opReplace("p_host_fail: 0.25", "p_host_fail: 0.25\n  blast_radius: 9"), `unknown field "blast_radius" in chaos`},
		{"chaos probability high", opReplace("p_crash: 0.5", "p_crash: 1.5"), "chaos.p_crash is a probability"},
		{"chaos probability negative", opReplace("p_obs_gap: 0.15", "p_obs_gap: -0.1"), "chaos.p_obs_gap is a probability"},
		{"chaos spike hosts over cluster", opReplace("spike_hosts: 3", "spike_hosts: 21"), "chaos.spike_hosts"},
		{"chaos max hosts down over cluster", opReplace("down_windows: 2", "down_windows: 2\n  max_hosts_down: 21"), "chaos.max_hosts_down"},
		{"chaos severity", opReplace("severity_cpu: 0.25", "severity_cpu: 11"), "chaos.severity_cpu"},
		{"chaos op failures", opReplace("op_failures: 2", "op_failures: 500"), "chaos.op_failures"},
		{"drift unknown field", opReplace("consecutive: 2", "consecutive: 2\n  speed: fast"), `unknown field "speed" in drift`},
		{"drift threshold negative", opReplace("threshold: 0.75", "threshold: -1"), "drift.threshold"},
		{"drift consecutive", opReplace("consecutive: 2", "consecutive: 5000"), "drift.consecutive"},
		{"sla zero", opReplace("search: 80", "search: 0"), "app.slas.search"},
		{"sla negative", opReplace("reserve: 120", "reserve: -5"), "app.slas.reserve"},
		{"sla not number", opReplace("search: 80", "search: fast"), "must be a number"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got none", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// TestCompileRejectsUnknownSLAService pins that an SLA override naming a
// service outside the topology fails compile with the accepted service list.
func TestCompileRejectsUnknownSLAService(t *testing.T) {
	s, err := Parse(opReplace("search: 80", "checkout: 80"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Compile()
	if err == nil || !strings.Contains(err.Error(), `app.slas: service "checkout" not in app`) {
		t.Fatalf("compile err = %v, want unknown-service rejection", err)
	}
}
