package spec

import (
	"bytes"
	"strings"
	"testing"

	"erms/internal/parallel"
)

const runnerYAML = `
version: 1
name: runner-test
seed: 5
app:
  kind: hotel
run:
  duration_min: 4
  warmup_min: 0.5
  window_min: 2
  hosts: 10
resilience:
  timeout_sla_multiple: 4
  shed: true
cohorts:
  - name: web
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 120
  - name: jobs
    service: recommend
    tier: batch
    arrival:
      kind: static
      rate: 60
phases:
  - kind: flash_crowd
    start_min: 2
    duration_min: 2
    factor: 3
    cohorts: [web]
`

func runTimeline(t *testing.T) ([]byte, *RunResult) {
	t.Helper()
	s, err := Parse([]byte(runnerYAML))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestRunDeterminism is the spec determinism contract: the same spec and
// seed produce byte-identical timeline CSVs across repeated runs and across
// worker counts.
func TestRunDeterminism(t *testing.T) {
	first, res := runTimeline(t)
	if len(res.Timeline) == 0 || len(res.Windows) != 2 {
		t.Fatalf("expected a populated 2-window run, got %d windows, %d timeline rows",
			len(res.Windows), len(res.Timeline))
	}
	again, _ := runTimeline(t)
	if !bytes.Equal(first, again) {
		t.Fatal("same spec, same worker count: timeline CSVs differ")
	}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		got, _ := runTimeline(t)
		parallel.SetWorkers(0)
		if !bytes.Equal(first, got) {
			t.Fatalf("workers=%d: timeline CSV differs from default-worker run", workers)
		}
	}
}

// TestRunTimelineShape checks the CSV structure and internal consistency:
// tier rows sum to the all row, warmup minutes are absent, and issued
// traffic reflects the flash crowd.
func TestRunTimelineShape(t *testing.T) {
	csv, res := runTimeline(t)
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if lines[0] != timelineHeader {
		t.Fatalf("header = %q", lines[0])
	}
	// 4 sim minutes, minute 0 inside warmup → 3 reported minutes × (2 tiers
	// + all).
	if want := 1 + 3*3; len(lines) != want {
		t.Fatalf("got %d CSV lines, want %d:\n%s", len(lines), want, csv)
	}
	for _, p := range res.Timeline {
		if p.Minute == 0 {
			t.Error("warmup minute 0 must not be reported")
		}
	}
	// Per-minute tier rows must sum to the all row.
	perMinute := map[int]int{}
	for _, p := range res.Timeline {
		if p.All {
			perMinute[p.Minute] -= p.Issued
		} else {
			perMinute[p.Minute] += p.Issued
		}
	}
	for m, diff := range perMinute {
		if diff != 0 {
			t.Errorf("minute %d: tier rows do not sum to the all row (diff %d)", m, diff)
		}
	}
	// The crowd triples web traffic in minutes [2, 4): offered load in the
	// timeline must show it.
	var offBefore, offDuring float64
	for _, p := range res.Timeline {
		if p.All {
			switch p.Minute {
			case 1:
				offBefore = p.Offered
			case 3:
				offDuring = p.Offered
			}
		}
	}
	if !(offDuring > offBefore*1.5) {
		t.Errorf("flash crowd not visible: offered %g before vs %g during", offBefore, offDuring)
	}
}
