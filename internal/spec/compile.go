package spec

import (
	"fmt"
	"math"
	"sort"

	"erms/internal/apps"
	"erms/internal/chaos"
	"erms/internal/drift"
	"erms/internal/multiplex"
	"erms/internal/sim"
	"erms/internal/workload"
)

// Scenario is a compiled spec: the application plus everything the windowed
// runner needs, all in simulated time (spec time divided by TimeScale).
// Compilation is deterministic — the same spec always yields the same
// scenario, and a cohort untouched by phases or time scaling compiles to the
// exact workload.Pattern value the equivalent code-built scenario would use.
type Scenario struct {
	Spec *Spec
	App  *apps.App
	// Streams has one entry per cohort, in spec order, with patterns
	// evaluated in simulated minutes over the full horizon.
	Streams []sim.Stream
	// DurationMin, WarmupMin, WindowMin are in simulated minutes.
	DurationMin float64
	WarmupMin   float64
	WindowMin   float64
	// Windows is the planning-window count: ceil(DurationMin / WindowMin).
	Windows int
	Hosts   int
	Scheme  multiplex.Scheme
	// Resilience is non-nil when the spec enables the fault model.
	Resilience *sim.Resilience
	// Chaos is non-nil when the spec declares a fault timeline; use
	// ChaosConfig to materialize the generator configuration. Batch runs
	// (Scenario.Run) reject chaos specs — only the operator loop injects.
	Chaos *ChaosSpec
	// Drift is non-nil when the spec enables online drift detection; use
	// DriftConfig for the controller option.
	Drift *DriftSpec
	Seed  uint64
	// PlanShards is a parallelism hint for the incremental planner (0 sizes
	// shards to the worker pool); plans are byte-identical at any value.
	PlanShards int
}

// Compile validates the spec against the application it selects and returns
// the runnable scenario.
func (s *Spec) Compile() (*Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	app, err := s.App.Build()
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool)
	for _, svc := range app.Services() {
		known[svc] = true
	}
	sc := &Scenario{
		Spec:        s,
		App:         app,
		DurationMin: s.Run.DurationMin / s.TimeScale,
		WarmupMin:   s.Run.WarmupMin / s.TimeScale,
		WindowMin:   s.Run.WindowMin / s.TimeScale,
		Hosts:       s.Run.Hosts,
		Seed:        s.Seed,
	}
	sc.Windows = int(math.Ceil(sc.DurationMin/sc.WindowMin - 1e-9))
	if sc.Windows < 1 {
		sc.Windows = 1
	}
	switch s.Run.Scheme {
	case "fcfs":
		sc.Scheme = multiplex.SchemeFCFS
	case "nonshared":
		sc.Scheme = multiplex.SchemeNonShared
	default:
		sc.Scheme = multiplex.SchemePriority
	}
	if s.Resilience != nil {
		sc.Resilience = s.Resilience.build()
	}
	sc.Chaos = s.Chaos
	sc.Drift = s.Drift
	if len(s.App.SLAs) > 0 {
		svcs := make([]string, 0, len(s.App.SLAs))
		for svc := range s.App.SLAs {
			svcs = append(svcs, svc)
		}
		sort.Strings(svcs)
		for _, svc := range svcs {
			if !known[svc] {
				return nil, fmt.Errorf("spec: app.slas: service %q not in app %q (services: %v)",
					svc, app.Name, app.Services())
			}
			sla := app.SLAs[svc]
			sla.Service = svc
			sla.Threshold = s.App.SLAs[svc]
			if sla.Percentile == 0 {
				sla.Percentile = 0.95
			}
			app.SLAs[svc] = sla
		}
	}
	byName := make(map[string]*Cohort, len(s.Cohorts))
	for i := range s.Cohorts {
		byName[s.Cohorts[i].Name] = &s.Cohorts[i]
	}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if !known[c.Service] {
			return nil, fmt.Errorf("spec: cohort %q: service %q not in app %q (services: %v)",
				c.Name, c.Service, app.Name, app.Services())
		}
		stream := sim.Stream{
			Cohort:  c.Name,
			Service: c.Service,
			Tier:    c.Tier,
			Pattern: s.compilePattern(c, byName),
		}
		if c.SLAMs > 0 {
			stream.SLA = &workload.SLA{Service: c.Service, Threshold: c.SLAMs, Percentile: 0.95}
		}
		sc.Streams = append(sc.Streams, stream)
	}
	return sc, nil
}

// Build constructs the selected application topology.
func (a *AppSpec) Build() (*apps.App, error) {
	switch a.Kind {
	case "hotel":
		return apps.HotelReservation(), nil
	case "social":
		return apps.SocialNetwork(), nil
	case "media":
		return apps.MediaService(), nil
	case "alibaba":
		return apps.Alibaba(apps.TaobaoConfig(a.Seed)), nil
	case "scale":
		return apps.ScaleTopology(apps.ScaleConfig{
			Seed:                    a.Seed,
			Services:                a.Services,
			MicroservicesPerService: a.MicroservicesPerService,
			SharingDegree:           a.SharingDegree,
			MaxStageWidth:           a.MaxStageWidth,
		}), nil
	default:
		return nil, fmt.Errorf("spec: app.kind %q unknown", a.Kind)
	}
}

// build maps the spec knobs onto sim.Resilience, filling per-tier shed
// factors from the defaults for tiers the spec does not override.
func (r *ResilienceSpec) build() *sim.Resilience {
	out := &sim.Resilience{
		TimeoutSLAMultiple: r.TimeoutSLAMultiple,
		RequestTimeoutMs:   r.RequestTimeoutMs,
		AttemptTimeoutMs:   r.AttemptTimeoutMs,
		MaxAttempts:        r.MaxAttempts,
		RetryBudget:        r.RetryBudget,
		BreakerFailureRate: r.BreakerFailureRate,
		Shed:               r.Shed,
		ShedMaxWaitMs:      r.ShedMaxWaitMs,
	}
	if len(r.TierShedFactors) > 0 {
		out.TierShedFactors = sim.DefaultTierShedFactors
		for name, f := range r.TierShedFactors {
			t, err := workload.ParseTier(name)
			if err != nil {
				continue // rejected by Validate
			}
			out.TierShedFactors[t] = f
		}
	}
	return out
}

// ChaosConfig materializes the spec's chaos block into a schedule-generator
// configuration sized to the compiled scenario: window count and length,
// host count, and crash candidates all come from the scenario, so the same
// chaos block stresses any topology. ok is false when the spec declares no
// chaos. The optional windows override extends the schedule past the spec
// horizon (the operator loop can run longer than run.duration_min); pass 0
// to keep the scenario's window count.
func (sc *Scenario) ChaosConfig(windows int) (chaos.Config, bool) {
	if sc.Chaos == nil {
		return chaos.Config{}, false
	}
	if windows <= 0 {
		windows = sc.Windows
	}
	c := sc.Chaos
	return chaos.Config{
		Seed:          c.Seed,
		Windows:       windows,
		WindowMin:     sc.WindowMin,
		Hosts:         sc.Hosts,
		Microservices: sc.App.Microservices(),

		PHostFail:    c.PHostFail,
		DownWindows:  c.DownWindows,
		MaxHostsDown: c.MaxHostsDown,

		PCrash:           c.PCrash,
		CrashesPerWindow: c.CrashesPerWindow,

		PSpike:     c.PSpike,
		SpikeHosts: c.SpikeHosts,
		Severity:   workload.Interference{CPU: c.SeverityCPU, Mem: c.SeverityMem},

		PObsGap: c.PObsGap,

		POpFail:    c.POpFail,
		OpFailures: c.OpFailures,
	}, true
}

// DriftConfig maps the spec's drift block onto the controller's drift
// configuration; zero-valued knobs keep drift.Config defaults. ok is false
// when the spec declares no drift block.
func (sc *Scenario) DriftConfig() (drift.Config, bool) {
	if sc.Drift == nil {
		return drift.Config{}, false
	}
	return drift.Config{
		Threshold:   sc.Drift.Threshold,
		Consecutive: sc.Drift.Consecutive,
		Downward:    sc.Drift.Downward,
	}, true
}

// basePattern is the cohort's arrival pattern in spec time.
func (a *ArrivalSpec) basePattern() workload.Pattern {
	switch a.Kind {
	case "static":
		return workload.Static{Rate: a.Rate}
	case "diurnal":
		return workload.Diurnal{Base: a.Base, Peak: a.Peak, PeriodMin: a.PeriodMin, PhaseMin: a.PhaseMin}
	default: // "trace"; Validate rejects everything else
		rates := make([]float64, len(a.Rates))
		copy(rates, a.Rates)
		return workload.Trace{Rates: rates, StepMin: a.StepMin, Name: a.TraceName}
	}
}

// compilePattern builds the cohort's simulated-time pattern: the base
// arrival pattern under the spec's phase envelope. When nothing modifies the
// cohort (no phases touch it and TimeScale is 1), the base pattern value is
// returned unwrapped, so spec-built and code-built scenarios are
// byte-identical.
func (s *Spec) compilePattern(c *Cohort, byName map[string]*Cohort) workload.Pattern {
	base := c.Arrival.basePattern()
	var mods []phaseMod
	var adds []phaseAdd
	for i := range s.Phases {
		p := &s.Phases[i]
		env := trapezoid{start: p.StartMin, dur: p.DurationMin, ramp: p.RampMin}
		switch p.Kind {
		case PhaseBaseline, PhaseFlashCrowd:
			if p.applies(c.Name) {
				mods = append(mods, phaseMod{env: env, factor: p.Factor})
			}
		case PhaseDrain:
			if p.applies(c.Name) {
				mods = append(mods, phaseMod{env: env, factor: p.Factor})
			}
		case PhaseFailover:
			if p.From == c.Name {
				mods = append(mods, phaseMod{env: env, factor: 1 - p.Fraction})
			}
			if p.To == c.Name {
				adds = append(adds, phaseAdd{env: env, fraction: p.Fraction, src: byName[p.From].Arrival.basePattern()})
			}
		}
	}
	if len(mods) == 0 && len(adds) == 0 && s.TimeScale == 1 {
		return base
	}
	return phased{base: base, mods: mods, adds: adds, scale: s.TimeScale}
}

// applies reports whether the phase affects the named cohort.
func (p *Phase) applies(cohort string) bool {
	if len(p.Cohorts) == 0 {
		return true
	}
	for _, n := range p.Cohorts {
		if n == cohort {
			return true
		}
	}
	return false
}

// trapezoid is a 0→1→0 activation envelope: linear ramp over ramp minutes
// into a hold at 1, then a symmetric ramp out.
type trapezoid struct{ start, dur, ramp float64 }

func (z trapezoid) level(t float64) float64 {
	if t <= z.start || t >= z.start+z.dur {
		return 0
	}
	if z.ramp > 0 {
		if dt := t - z.start; dt < z.ramp {
			return dt / z.ramp
		}
		if rem := z.start + z.dur - t; rem < z.ramp {
			return rem / z.ramp
		}
	}
	return 1
}

// phaseMod multiplies the rate by 1 + (factor-1)·level(t): flash crowds have
// factor > 1, drains have factor in [0,1), a failover source has
// factor = 1 - fraction.
type phaseMod struct {
	env    trapezoid
	factor float64
}

// phaseAdd layers a failover in-shift onto the target cohort: fraction ·
// level(t) of the source cohort's base load.
type phaseAdd struct {
	env      trapezoid
	fraction float64
	src      workload.Pattern
}

// phased evaluates the base pattern under the phase envelope. Times are
// simulated minutes; scale maps them back to spec minutes (compression keeps
// the load level — req/min — unchanged and shortens the run).
type phased struct {
	base  workload.Pattern
	mods  []phaseMod
	adds  []phaseAdd
	scale float64
}

// RateAt evaluates the composed rate at simulated minute t.
func (p phased) RateAt(t float64) float64 {
	spec := t * p.scale
	r := p.base.RateAt(spec)
	for _, m := range p.mods {
		r *= 1 + (m.factor-1)*m.env.level(spec)
	}
	for _, a := range p.adds {
		r += a.fraction * a.env.level(spec) * a.src.RateAt(spec)
	}
	if r < 0 {
		return 0
	}
	return r
}

func (p phased) String() string {
	return fmt.Sprintf("Phased(%s, %d mods, %d shifts, x%g)", p.base.String(), len(p.mods), len(p.adds), p.scale)
}

// offsetPattern shifts a pattern for per-window evaluation: the runtime
// evaluates window-local minutes, the scenario pattern spans the horizon.
type offsetPattern struct {
	inner workload.Pattern
	off   float64
}

func (o offsetPattern) RateAt(t float64) float64 { return o.inner.RateAt(t + o.off) }

func (o offsetPattern) String() string {
	return fmt.Sprintf("Offset(%s, +%gmin)", o.inner.String(), o.off)
}

// WindowStreams returns the scenario streams shifted to window w's local
// time. Window 0 returns the streams unchanged.
func (sc *Scenario) WindowStreams(w int) []sim.Stream {
	off := float64(w) * sc.WindowMin
	if off == 0 {
		return sc.Streams
	}
	out := make([]sim.Stream, len(sc.Streams))
	copy(out, sc.Streams)
	for i := range out {
		out[i].Pattern = offsetPattern{inner: sc.Streams[i].Pattern, off: off}
	}
	return out
}

// WindowBounds returns window w's [start, end) in simulated minutes; the
// last window is clipped to the horizon.
func (sc *Scenario) WindowBounds(w int) (start, end float64) {
	start = float64(w) * sc.WindowMin
	end = start + sc.WindowMin
	if end > sc.DurationMin {
		end = sc.DurationMin
	}
	return start, end
}

// OfferedRates returns the per-service mean offered load (req/min) over
// window w, sampled once per simulated minute exactly like the arrival
// generator. Every app service is present and floored at 1 req/min — the
// planner requires a rate per service, and services without a cohort carry a
// background trickle rather than disappearing from the plan.
func (sc *Scenario) OfferedRates(w int) map[string]float64 {
	start, end := sc.WindowBounds(w)
	rates := make(map[string]float64)
	for _, svc := range sc.App.Services() {
		rates[svc] = 0
	}
	for _, st := range sc.Streams {
		n, sum := 0, 0.0
		for m := start; m < end-1e-9; m++ {
			sum += st.Pattern.RateAt(m)
			n++
		}
		if n > 0 {
			rates[st.Service] += sum / float64(n)
		}
	}
	for svc, r := range rates {
		if r < 1 {
			rates[svc] = 1
		}
	}
	return rates
}

// OfferedByTier returns the per-tier offered load (req/min) at the given
// simulated minute.
func (sc *Scenario) OfferedByTier(minute float64) [workload.NumTiers]float64 {
	var out [workload.NumTiers]float64
	for _, st := range sc.Streams {
		out[st.Tier] += st.Pattern.RateAt(minute)
	}
	return out
}
