package spec

import (
	"os"
	"testing"
)

// FuzzParse feeds arbitrary documents to the spec parser: whatever the
// input, Parse must return a spec or an error — never panic — and a spec it
// accepts must be internally valid (finite numbers, known fields, ranges).
func FuzzParse(f *testing.F) {
	f.Add([]byte(minimalYAML))
	f.Add([]byte(minimalJSON))
	for _, path := range []string{
		"../../examples/quickstart/quickstart.yaml",
		"../../examples/specs/flashcrowd.yaml",
		"../../examples/specs/failover.yaml",
	} {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(operatorYAML))
	f.Add([]byte("chaos:\n  p_host_fail: 1e-309\n  op_failures: -1\n"))
	f.Add([]byte("drift:\n  threshold: .inf\n"))
	f.Add([]byte("app:\n  kind: hotel\n  slas:\n    search: -0\n"))
	f.Add([]byte("version: 1\nseed: 99999999999999999999999\n"))
	f.Add([]byte("a:\n\tb: 1"))
	f.Add([]byte("a: &anchor 1"))
	f.Add([]byte("a: [1, [2, '3,4'], \"5\"]"))
	f.Add([]byte("- - - -"))
	f.Add([]byte(`{"version": 1e309}`))
	f.Add([]byte(`{"cohorts": [{"arrival": {"rate": "NaN"}}]}`))
	f.Add([]byte("cohorts:\n- arrival:\n    rates: [1e999]\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// Parse validates internally; a second Validate must agree.
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Parse accepted a spec Validate rejects: %v", verr)
		}
	})
}
