package spec

import (
	"bytes"
	"reflect"
	"testing"

	"erms/internal/apps"
	"erms/internal/parallel"
	"erms/internal/persist"
	"erms/internal/workload"
)

// TestCompileGoldenPatterns pins the compilation contract: a cohort no phase
// touches and no time scale modifies compiles to the exact workload.Pattern
// value the equivalent code-built scenario would construct — not a wrapper
// around it.
func TestCompileGoldenPatterns(t *testing.T) {
	src := `
version: 1
app:
  kind: hotel
run:
  duration_min: 30
cohorts:
  - name: a
    service: search
    tier: critical
    arrival:
      kind: static
      rate: 80
  - name: b
    service: recommend
    tier: sheddable
    arrival:
      kind: diurnal
      base: 10
      peak: 50
      period_min: 30
      phase_min: 5
  - name: c
    service: reserve
    tier: batch
    arrival:
      kind: trace
      rates: [5, 10, 15]
      step_min: 2
      name: replay
`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := []workload.Pattern{
		workload.Static{Rate: 80},
		workload.Diurnal{Base: 10, Peak: 50, PeriodMin: 30, PhaseMin: 5},
		workload.Trace{Rates: []float64{5, 10, 15}, StepMin: 2, Name: "replay"},
	}
	for i, w := range want {
		if !reflect.DeepEqual(sc.Streams[i].Pattern, w) {
			t.Errorf("stream %d: compiled pattern %#v, want code-built %#v", i, sc.Streams[i].Pattern, w)
		}
	}
	// A phase on cohort a must wrap only cohort a.
	s2, err := Parse([]byte(src + "phases:\n  - kind: flash_crowd\n    start_min: 2\n    duration_min: 4\n    factor: 3\n    cohorts: [a]\n"))
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := s2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(sc2.Streams[0].Pattern, want[0]) {
		t.Error("phased cohort should not compile to the bare base pattern")
	}
	for i := 1; i < 3; i++ {
		if !reflect.DeepEqual(sc2.Streams[i].Pattern, want[i]) {
			t.Errorf("stream %d untouched by the phase should stay code-identical", i)
		}
	}
}

// TestCompileGoldenApp pins app construction: the spec-built generated
// topology is byte-identical (persisted form) to the direct constructor
// call, at any worker count.
func TestCompileGoldenApp(t *testing.T) {
	src := `
version: 1
seed: 9
app:
  kind: scale
  services: 12
  microservices_per_service: 8
  sharing_degree: 3
run:
  duration_min: 5
cohorts:
  - name: a
    service: scale-svc-00000
    tier: standard
    arrival:
      kind: static
      rate: 10
`
	code := apps.ScaleTopology(apps.ScaleConfig{Seed: 9, Services: 12, MicroservicesPerService: 8, SharingDegree: 3})
	var wantBytes bytes.Buffer
	if err := persist.SaveApp(&wantBytes, code); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		s, err := Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		sc, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := persist.SaveApp(&got, sc.App); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), wantBytes.Bytes()) {
			t.Fatalf("workers=%d: spec-built app differs from code-built app", workers)
		}
	}
	parallel.SetWorkers(0)
}

// TestPhaseEnvelope checks the population-dynamics math directly.
func TestPhaseEnvelope(t *testing.T) {
	src := `
version: 1
app:
  kind: hotel
run:
  duration_min: 40
cohorts:
  - name: eu
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 100
  - name: us
    service: reserve
    tier: critical
    arrival:
      kind: static
      rate: 50
phases:
  - kind: flash_crowd
    start_min: 10
    duration_min: 10
    ramp_min: 2
    factor: 3
    cohorts: [eu]
  - kind: failover
    start_min: 25
    duration_min: 10
    from: eu
    to: us
    fraction: 0.5
`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	eu, us := sc.Streams[0].Pattern, sc.Streams[1].Pattern
	check := func(name string, got, want float64) {
		t.Helper()
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: got %g, want %g", name, got, want)
		}
	}
	check("eu before crowd", eu.RateAt(5), 100)
	check("eu mid-ramp", eu.RateAt(11), 200)   // halfway up to 3x
	check("eu crowd peak", eu.RateAt(15), 300) // full 3x
	check("eu after crowd", eu.RateAt(22), 100)
	check("eu failover out", eu.RateAt(30), 50) // half shifted away
	check("us failover in", us.RateAt(30), 100) // 50 base + 50 shifted
	check("us after", us.RateAt(36), 50)
}

// TestTimeScaleCompression checks that time_scale maps simulated minutes
// back onto spec minutes without changing load levels.
func TestTimeScaleCompression(t *testing.T) {
	src := `
version: 1
time_scale: 2
app:
  kind: hotel
run:
  duration_min: 20
cohorts:
  - name: eu
    service: search
    tier: standard
    arrival:
      kind: static
      rate: 100
phases:
  - kind: drain
    start_min: 10
    duration_min: 10
    cohorts: [eu]
`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if sc.DurationMin != 10 {
		t.Fatalf("sim duration %g, want 10 (20 spec-min / 2)", sc.DurationMin)
	}
	p := sc.Streams[0].Pattern
	if got := p.RateAt(2); got != 100 { // spec minute 4: before the drain
		t.Errorf("rate before drain = %g, want 100", got)
	}
	if got := p.RateAt(8); got != 0 { // spec minute 16: drained
		t.Errorf("rate in drain = %g, want 0", got)
	}
}
