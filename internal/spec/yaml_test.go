package spec

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLBasics(t *testing.T) {
	src := `
# comment
version: 1
name: "quoted name"   # trailing comment
seed: 18446744073709551615
scale: 1.5
on: true
off: false
empty:
nested:
  a: 1
  b:
    c: two
list:
  - 1
  - two
  - - 3
inline: [1, 2.5, "x, y"]
items:
- name: a
  v: 1
- name: b
`
	v, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"version": int64(1),
		"name":    "quoted name",
		"seed":    uint64(18446744073709551615),
		"scale":   1.5,
		"on":      true,
		"off":     false,
		"empty":   nil,
		"nested":  map[string]any{"a": int64(1), "b": map[string]any{"c": "two"}},
		"list":    []any{int64(1), "two", []any{int64(3)}},
		"inline":  []any{int64(1), 2.5, "x, y"},
		"items": []any{
			map[string]any{"name": "a", "v": int64(1)},
			map[string]any{"name": "b"},
		},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("parsed tree mismatch:\n got %#v\nwant %#v", v, want)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab indent", "a:\n\tb: 1", "tab in indentation"},
		{"flow map", "a: {b: 1}", "flow mappings"},
		{"anchor", "a: &x 1", "anchors"},
		{"block scalar", "a: |\n  text", "block scalars"},
		{"multi doc", "a: 1\n---\nb: 2", "multi-document"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"unterminated quote", `a: "open`, "unterminated"},
		{"trailing after quote", `a: "x"y`, "trailing content"},
		{"mixed seq map", "- a\nb: 1", "not part of the preceding block"},
		{"dangling indent", "a: 1\n    b: 2", "not part of the preceding block"},
		{"unclosed flow", "a: [1, 2", "one line"},
		{"directive", "%YAML 1.2\na: 1", "directives"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseYAML([]byte(c.src))
			if err == nil {
				t.Fatalf("expected error containing %q, got none", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestYAMLSeqUnderKeySameIndent(t *testing.T) {
	v, err := parseYAML([]byte("xs:\n- 1\n- 2\nys:\n- 3"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"xs": []any{int64(1), int64(2)}, "ys": []any{int64(3)}}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("got %#v, want %#v", v, want)
	}
}
