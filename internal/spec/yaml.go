package spec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// This file is a minimal YAML-subset parser — just enough for workload
// specs, with strict errors instead of silent YAML cleverness. Supported:
// block mappings and sequences by indentation (spaces only), sequence items
// introduced by "- " (including inline "- key: value" map items), plain and
// quoted scalars, one-line flow sequences ("[1, 2, 3]"), comments, and an
// optional leading "---". Deliberately unsupported, with actionable errors:
// tabs, anchors/aliases, block scalars (| and >), flow mappings ("{...}"),
// and multi-document streams. The output tree uses map[string]any, []any,
// string, bool, int64, uint64, float64, and nil — the same shapes the JSON
// path produces, so one decoder serves both.

// yline is one logical (non-blank, non-comment) line.
type yline struct {
	indent int
	text   string
	no     int // 1-based source line number
}

// parseYAML parses the subset into a generic tree.
func parseYAML(data []byte) (any, error) {
	lines, err := scanYAML(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, nil
	}
	v, next, err := parseYAMLBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("line %d: %q is not part of the preceding block (check indentation)", lines[next].no, lines[next].text)
	}
	return v, nil
}

// scanYAML splits the input into logical lines, stripping comments and
// rejecting constructs outside the subset.
func scanYAML(src string) ([]yline, error) {
	var out []yline
	for no, raw := range strings.Split(src, "\n") {
		no++ // 1-based
		line := strings.TrimRight(raw, " \r")
		if line == "" {
			continue
		}
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", no)
		}
		text := stripYAMLComment(line[indent:])
		if text == "" {
			continue
		}
		if text == "---" {
			if len(out) == 0 && indent == 0 {
				continue // leading document marker
			}
			return nil, fmt.Errorf("line %d: multi-document YAML streams are not supported", no)
		}
		if strings.HasPrefix(text, "%") {
			return nil, fmt.Errorf("line %d: YAML directives are not supported", no)
		}
		out = append(out, yline{indent: indent, text: text, no: no})
	}
	return out, nil
}

// stripYAMLComment removes a trailing " # ..." comment (or a full-line
// comment), respecting quoted strings.
func stripYAMLComment(s string) string {
	if strings.HasPrefix(s, "#") {
		return ""
	}
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote == '"' && c == '\\':
			i++ // skip escaped char
		case quote != 0 && c == quote:
			quote = 0
		case quote == 0 && (c == '"' || c == '\''):
			quote = c
		case quote == 0 && c == '#' && i > 0 && (s[i-1] == ' ' || s[i-1] == '\t'):
			return strings.TrimRight(s[:i], " \t")
		}
	}
	return s
}

// parseYAMLBlock parses one block (mapping, sequence, or scalar) whose lines
// start at index i with the given indentation, returning the value and the
// index of the first line past the block.
func parseYAMLBlock(lines []yline, i, indent int) (any, int, error) {
	line := lines[i]
	switch {
	case isSeqItem(line.text):
		return parseYAMLSeq(lines, i, indent)
	case isMapEntry(line.text):
		return parseYAMLMap(lines, i, indent)
	default:
		v, err := parseScalar(line.text, line.no)
		if err != nil {
			return nil, 0, err
		}
		if i+1 < len(lines) && lines[i+1].indent >= indent {
			return nil, 0, fmt.Errorf("line %d: unexpected content after scalar %q (multi-line scalars are not supported)", lines[i+1].no, line.text)
		}
		return v, i + 1, nil
	}
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func isMapEntry(text string) bool {
	_, _, ok := splitKey(text)
	return ok
}

// splitKey splits "key: value" (or "key:") at the first unquoted colon that
// ends the key, returning the key, the raw value text (may be empty), and
// whether the line is a mapping entry at all.
func splitKey(text string) (key, value string, ok bool) {
	var quote byte
	depth := 0
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case quote == '"' && c == '\\':
			i++
		case quote != 0 && c == quote:
			quote = 0
		case quote == 0 && (c == '"' || c == '\''):
			quote = c
		case quote == 0 && (c == '[' || c == '{'):
			depth++
		case quote == 0 && (c == ']' || c == '}'):
			depth--
		case quote == 0 && depth == 0 && c == ':':
			if i+1 == len(text) || text[i+1] == ' ' {
				key = strings.TrimSpace(text[:i])
				if key == "" {
					return "", "", false
				}
				return key, strings.TrimSpace(text[i+1:]), true
			}
		}
	}
	return "", "", false
}

// parseYAMLSeq parses consecutive "- ..." items at the given indentation.
func parseYAMLSeq(lines []yline, i, indent int) (any, int, error) {
	out := []any{}
	for i < len(lines) && lines[i].indent == indent && isSeqItem(lines[i].text) {
		line := lines[i]
		rest := strings.TrimSpace(strings.TrimPrefix(line.text, "-"))
		// Gather the item's continuation lines (anything indented deeper
		// than the dash) and parse them as a standalone block with the
		// inline remainder, if any, re-injected at the item indentation.
		j := i + 1
		for j < len(lines) && lines[j].indent > indent {
			j++
		}
		sub := lines[i+1 : j]
		switch {
		case rest == "" && len(sub) == 0:
			out = append(out, nil)
		case rest == "":
			v, n, err := parseYAMLBlock(sub, 0, sub[0].indent)
			if err != nil {
				return nil, 0, err
			}
			if n != len(sub) {
				return nil, 0, fmt.Errorf("line %d: inconsistent indentation inside sequence item", sub[n].no)
			}
			out = append(out, v)
		default:
			item := append([]yline{{indent: indent + 2, text: rest, no: line.no}}, sub...)
			v, n, err := parseYAMLBlock(item, 0, indent+2)
			if err != nil {
				return nil, 0, err
			}
			if n != len(item) {
				return nil, 0, fmt.Errorf("line %d: inconsistent indentation inside sequence item", item[n].no)
			}
			out = append(out, v)
		}
		i = j
	}
	return out, i, nil
}

// parseYAMLMap parses consecutive "key: ..." entries at the given
// indentation.
func parseYAMLMap(lines []yline, i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(lines) && lines[i].indent == indent {
		line := lines[i]
		if isSeqItem(line.text) {
			return nil, 0, fmt.Errorf("line %d: sequence item at the same indentation as a mapping", line.no)
		}
		key, vtext, ok := splitKey(line.text)
		if !ok {
			return nil, 0, fmt.Errorf("line %d: expected \"key: value\", got %q", line.no, line.text)
		}
		if strings.HasPrefix(key, "\"") || strings.HasPrefix(key, "'") {
			uq, err := unquoteScalar(key, line.no)
			if err != nil {
				return nil, 0, err
			}
			key = uq
		}
		if _, dup := m[key]; dup {
			return nil, 0, fmt.Errorf("line %d: duplicate key %q", line.no, key)
		}
		switch {
		case vtext != "":
			v, err := parseScalar(vtext, line.no)
			if err != nil {
				return nil, 0, err
			}
			m[key] = v
			i++
		case i+1 < len(lines) && lines[i+1].indent > indent:
			v, n, err := parseYAMLBlock(lines, i+1, lines[i+1].indent)
			if err != nil {
				return nil, 0, err
			}
			m[key] = v
			i = n
		case i+1 < len(lines) && lines[i+1].indent == indent && isSeqItem(lines[i+1].text):
			// Sequences are commonly written at the same indentation as
			// their key.
			v, n, err := parseYAMLSeq(lines, i+1, indent)
			if err != nil {
				return nil, 0, err
			}
			m[key] = v
			i = n
		default:
			m[key] = nil
			i++
		}
	}
	return m, i, nil
}

// parseScalar parses one scalar (or one-line flow sequence) value.
func parseScalar(s string, no int) (any, error) {
	switch {
	case s == "":
		return nil, nil
	case s[0] == '"' || s[0] == '\'':
		return unquoteScalar(s, no)
	case s[0] == '[':
		return parseFlowSeq(s, no)
	case s[0] == '{':
		return nil, fmt.Errorf("line %d: flow mappings (\"{...}\") are not supported; use indented \"key: value\" lines", no)
	case s[0] == '&' || s[0] == '*':
		return nil, fmt.Errorf("line %d: YAML anchors and aliases are not supported", no)
	case s == "|" || s == ">" || strings.HasPrefix(s, "| ") || strings.HasPrefix(s, "> "):
		return nil, fmt.Errorf("line %d: block scalars (\"|\" / \">\") are not supported", no)
	case s == "null" || s == "~":
		return nil, nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return v, nil // very large seeds
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil || errors.Is(err, strconv.ErrRange) {
		// Out-of-range literals (1e999) become ±Inf here so the decoder can
		// reject them as non-finite rather than misreading them as strings.
		return v, nil
	}
	return s, nil
}

// unquoteScalar handles "..." (with \\, \", \n, \t, \r escapes) and '...'
// (with '' escaping) quoted strings, rejecting trailing junk.
func unquoteScalar(s string, no int) (string, error) {
	quote := s[0]
	var sb strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch {
		case quote == '"' && c == '\\':
			if i+1 >= len(s) {
				return "", fmt.Errorf("line %d: dangling escape in %s", no, s)
			}
			switch s[i+1] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			default:
				return "", fmt.Errorf("line %d: unsupported escape \\%c in %s", no, s[i+1], s)
			}
			i += 2
		case quote == '\'' && c == '\'' && i+1 < len(s) && s[i+1] == '\'':
			sb.WriteByte('\'')
			i += 2
		case c == quote:
			if i+1 != len(s) {
				return "", fmt.Errorf("line %d: trailing content after closing quote in %s", no, s)
			}
			return sb.String(), nil
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return "", fmt.Errorf("line %d: unterminated quoted string %s", no, s)
}

// parseFlowSeq parses a one-line "[a, b, c]" sequence of scalars (nesting
// allowed).
func parseFlowSeq(s string, no int) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("line %d: flow sequence %q must open and close on one line", no, s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	out := []any{}
	if inner == "" {
		return out, nil
	}
	var quote byte
	depth := 0
	start := 0
	flush := func(end int) error {
		elem := strings.TrimSpace(inner[start:end])
		if elem == "" {
			return fmt.Errorf("line %d: empty element in flow sequence %q", no, s)
		}
		v, err := parseScalar(elem, no)
		if err != nil {
			return err
		}
		out = append(out, v)
		return nil
	}
	for i := 0; i < len(inner); i++ {
		c := inner[i]
		switch {
		case quote == '"' && c == '\\':
			i++
		case quote != 0 && c == quote:
			quote = 0
		case quote == 0 && (c == '"' || c == '\''):
			quote = c
		case quote == 0 && (c == '[' || c == '{'):
			depth++
		case quote == 0 && (c == ']' || c == '}'):
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("line %d: unbalanced brackets in flow sequence %q", no, s)
			}
		case quote == 0 && depth == 0 && c == ',':
			if err := flush(i); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if quote != 0 || depth != 0 {
		return nil, fmt.Errorf("line %d: unbalanced quotes or brackets in flow sequence %q", no, s)
	}
	if err := flush(len(inner)); err != nil {
		return nil, err
	}
	return out, nil
}
