package profiling

import (
	"fmt"

	"erms/internal/mlearn"
	"erms/internal/stats"
)

// Predictor is the common latency-prediction surface shared by the Fig. 10
// baselines (they predict latency but lack the (a, b) linearization Erms'
// scaling needs, which is the paper's point about black-box models).
type Predictor interface {
	Predict(workload, cpuUtil, memUtil float64) float64
}

func toXY(samples []Sample) ([][]float64, []float64) {
	x := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		x[i] = []float64{s.Workload, s.CPUUtil, s.MemUtil}
		y[i] = s.TailMs
	}
	return x, y
}

// gbdtPredictor adapts a GBDT to the Predictor interface.
type gbdtPredictor struct{ m *mlearn.GBDT }

func (p gbdtPredictor) Predict(workload, cpu, mem float64) float64 {
	return p.m.Predict([]float64{workload, cpu, mem})
}

// FitGBDTBaseline trains the XGBoost-equivalent baseline of Fig. 10.
func FitGBDTBaseline(samples []Sample) (Predictor, error) {
	if len(samples) < 8 {
		return nil, fmt.Errorf("profiling: gbdt baseline needs more samples, got %d", len(samples))
	}
	x, y := toXY(samples)
	m, err := mlearn.FitGBDT(x, y, mlearn.GBDTConfig{Trees: 80, LearningRate: 0.1})
	if err != nil {
		return nil, err
	}
	return gbdtPredictor{m}, nil
}

// nnPredictor adapts an NN to the Predictor interface.
type nnPredictor struct{ m *mlearn.NN }

func (p nnPredictor) Predict(workload, cpu, mem float64) float64 {
	return p.m.Predict([]float64{workload, cpu, mem})
}

// FitNNBaseline trains the three-layer, 64-neuron network baseline of
// Fig. 10.
func FitNNBaseline(samples []Sample, seed uint64) (Predictor, error) {
	if len(samples) < 8 {
		return nil, fmt.Errorf("profiling: nn baseline needs more samples, got %d", len(samples))
	}
	x, y := toXY(samples)
	m, err := mlearn.FitNN(x, y, mlearn.NNConfig{Hidden: 64, Epochs: 120, Seed: seed})
	if err != nil {
		return nil, err
	}
	return nnPredictor{m}, nil
}

// EvaluatePredictor mirrors Evaluate for black-box baselines.
func EvaluatePredictor(p Predictor, test []Sample) float64 {
	pred := make([]float64, len(test))
	actual := make([]float64, len(test))
	for i, s := range test {
		pred[i] = p.Predict(s.Workload, s.CPUUtil, s.MemUtil)
		actual[i] = s.TailMs
	}
	return stats.Accuracy(pred, actual)
}
