package profiling

import (
	"math"

	"erms/internal/cluster"
	"erms/internal/sim"
)

// Analytic is a first-principles latency model derived from a microservice's
// intrinsic service time and thread count, used where empirical profiling is
// impractical (the 500-service trace-driven simulations of §6.5, mirroring
// how the paper's simulator consumes model parameters rather than live
// measurements).
//
// The model is the piece-wise linear family the paper observes in Fig. 3,
// parameterized physically:
//
//   - the idle tail latency is L0 = TailFactor·S, with S = BaseMs inflated
//     by host interference;
//   - per-container capacity saturates at sat = Threads·60000/S calls/min,
//     and the knee sits at σ = RhoKnee·sat — so interference both raises L0
//     and pulls the knee earlier;
//   - below the knee latency climbs gently to KneeFactor·L0; past it the
//     slope steepens by SlopeRatio (Fig. 3 reports ≈5×).
//
// Both interference effects of §2.2 — earlier knee, steeper slope — follow
// directly, and the intercepts stay moderate so the Eq. 5 closed forms
// remain well-conditioned.
type Analytic struct {
	Microservice string
	Profile      sim.ServiceProfile
	Threads      int
	Interference cluster.InterferenceModel

	// TailFactor maps mean service time to idle tail latency. Default 3
	// (≈ P95 of an exponential service time).
	TailFactor float64
	// RhoKnee is the utilization at which queueing takes over. Default 0.75.
	RhoKnee float64
	// KneeFactor is the latency multiple (of L0) reached at the knee.
	// Default 2.
	KneeFactor float64
	// SlopeRatio is the high-interval slope relative to the low interval.
	// Default 5 (§2.2: "the rate of increase ... is 5 times").
	SlopeRatio float64
}

var _ Model = (*Analytic)(nil)

// NewAnalytic builds an analytic model with default constants. The knee
// factor shrinks with the thread count: a single-threaded container behaves
// like an M/M/1 queue whose tail has already quadrupled by 75% utilization,
// while a wide thread pool stays flat until much closer to saturation.
func NewAnalytic(ms string, p sim.ServiceProfile, threads int, itf cluster.InterferenceModel) *Analytic {
	return &Analytic{
		Microservice: ms,
		Profile:      p,
		Threads:      threads,
		Interference: itf,
		TailFactor:   3,
		RhoKnee:      0.75,
		KneeFactor:   1 + 3/math.Sqrt(float64(threads)),
		SlopeRatio:   5,
	}
}

// serviceTime returns S, the inflated per-request service time (ms).
func (a *Analytic) serviceTime(cpuUtil, memUtil float64) float64 {
	return a.Profile.BaseMs * a.Interference.Inflation(cpuUtil, memUtil)
}

// Saturation returns the per-container arrival rate (calls/minute) at which
// the container's thread pool is fully busy — the stability limit.
func (a *Analytic) Saturation(cpuUtil, memUtil float64) float64 {
	return float64(a.Threads) * 60_000 / a.serviceTime(cpuUtil, memUtil)
}

// minKnee floors the knee at one call per thousand minutes. Under extreme
// interference (or an absurd service time) Saturation tends to 0, and an
// unfloored knee of 0 would drive the Params slope (KneeFactor-1)·l0/knee to
// +Inf — and NaN once l0 is also degenerate — which poisons every Eq. 5
// closed form downstream. The floor keeps the slope finite while still
// describing a container that saturates essentially immediately.
const minKnee = 1e-3

// Knee returns σ = ρ_knee · saturation: interference shrinks capacity,
// moving the knee earlier, as in Fig. 3. The result is floored at minKnee so
// a fully saturated regime yields a steep-but-finite linearization instead
// of an Inf/NaN slope.
func (a *Analytic) Knee(cpuUtil, memUtil float64) float64 {
	k := a.RhoKnee * a.Saturation(cpuUtil, memUtil)
	if !(k > minKnee) { // catches NaN as well as small and zero values
		return minKnee
	}
	return k
}

// capRatio mirrors scaling.DomainCapRatio: how far past the knee the high
// interval remains valid (≈82% utilization at the defaults).
const capRatio = 1.1

// capFactor is the latency multiple (of L0) the underlying curve reaches at
// the domain cap: continuing past the knee with a slope SlopeRatio times the
// low interval's.
func (a *Analytic) capFactor() float64 {
	return a.KneeFactor + a.SlopeRatio*(a.KneeFactor-1)*(capRatio-1)
}

// Params returns the slope and intercept of the chosen interval. Both lines
// are secants of the underlying convex curve anchored at the idle floor —
// the low interval chords (0, L0)→(σ, K·L0), the high interval
// (0, L0)→(capRatio·σ, capFactor·L0) — so the intercept b is always the
// attainable latency floor (which keeps the Eq. 5 closed forms
// well-conditioned) and both lines over-estimate the curve on their domain
// (allocations err on the safe side).
func (a *Analytic) Params(high bool, cpuUtil, memUtil float64) (float64, float64) {
	l0 := a.TailFactor * a.serviceTime(cpuUtil, memUtil)
	knee := a.Knee(cpuUtil, memUtil)
	if !high {
		return (a.KneeFactor - 1) * l0 / knee, l0
	}
	return (a.capFactor() - 1) * l0 / (capRatio * knee), l0
}

// Predict evaluates the piece-wise linearization.
func (a *Analytic) Predict(workload, cpuUtil, memUtil float64) float64 {
	high := workload > a.Knee(cpuUtil, memUtil)
	slope, b := a.Params(high, cpuUtil, memUtil)
	return slope*workload + b
}

// AnalyticModels builds analytic models for every microservice in the given
// profile map.
func AnalyticModels(profiles map[string]sim.ServiceProfile, threads map[string]int, itf cluster.InterferenceModel) map[string]Model {
	out := make(map[string]Model, len(profiles))
	for ms, p := range profiles {
		t := threads[ms]
		if t <= 0 {
			t = 4
		}
		out[ms] = NewAnalytic(ms, p, t, itf)
	}
	return out
}
