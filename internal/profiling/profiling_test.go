package profiling

import (
	"testing"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/sim"
	"erms/internal/stats"
	"erms/internal/workload"
)

// synthSamples draws samples from a known Eq. 15 ground truth.
func synthSamples(n int, seed uint64) []Sample {
	r := stats.NewRNG(seed)
	truthLow := Interval{AlphaCPU: 0.002, BetaMem: 0.001, C: 0.0005, B: 2}
	truthHigh := Interval{AlphaCPU: 0.02, BetaMem: 0.03, C: 0.004, B: 2}
	knee := func(cpu, mem float64) float64 { return 4000 - 2000*cpu - 1500*mem }
	var out []Sample
	levels := []workload.Interference{
		{CPU: 0.1, Mem: 0.1}, {CPU: 0.3, Mem: 0.3}, {CPU: 0.5, Mem: 0.3}, {CPU: 0.3, Mem: 0.6},
	}
	for i := 0; i < n; i++ {
		lvl := levels[r.Intn(len(levels))]
		w := r.Float64() * 6000
		k := knee(lvl.CPU, lvl.Mem)
		var l float64
		if w <= k {
			l = truthLow.Predict(w, lvl.CPU, lvl.Mem)
		} else {
			// Continuous at the knee.
			l = truthLow.Predict(k, lvl.CPU, lvl.Mem) + truthHigh.Slope(lvl.CPU, lvl.Mem)*(w-k)
		}
		l *= 1 + 0.03*r.NormFloat64()
		out = append(out, Sample{Workload: w, TailMs: l, CPUUtil: lvl.CPU, MemUtil: lvl.Mem})
	}
	return out
}

func TestFitRecoversSyntheticModel(t *testing.T) {
	samples := synthSamples(2000, 1)
	train, test, err := Split(samples, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit("ms", train, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(m, test); acc < 0.8 {
		t.Fatalf("accuracy = %v, want >= 0.8 (paper reports 83-88%%)", acc)
	}
	// Knee shrinks as interference grows.
	if m.Knee(0.5, 0.3) >= m.Knee(0.1, 0.1)+200 {
		t.Fatalf("knee did not move with interference: %v vs %v", m.Knee(0.5, 0.3), m.Knee(0.1, 0.1))
	}
	// High-interval slope exceeds low-interval slope.
	aLo, _ := m.Params(false, 0.3, 0.3)
	aHi, _ := m.Params(true, 0.3, 0.3)
	if aHi <= aLo {
		t.Fatalf("slopes not ordered: low %v high %v", aLo, aHi)
	}
}

func TestFitSlopeGrowsWithInterference(t *testing.T) {
	samples := synthSamples(2000, 2)
	m, err := Fit("ms", samples, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aCold, _ := m.Params(true, 0.1, 0.1)
	aHot, _ := m.Params(true, 0.5, 0.6)
	if aHot <= aCold {
		t.Fatalf("high-interval slope should grow with interference: cold %v hot %v", aCold, aHot)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit("ms", nil, FitConfig{}); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := Fit("ms", synthSamples(5, 3), FitConfig{}); err == nil {
		t.Fatal("too-few samples accepted")
	}
}

func TestFitAllReportsFailures(t *testing.T) {
	in := map[string][]Sample{
		"good": synthSamples(500, 4),
		"bad":  synthSamples(3, 5),
	}
	models, failed := FitAll(in, FitConfig{})
	if _, ok := models["good"]; !ok {
		t.Fatal("good microservice not fitted")
	}
	if len(failed) != 1 || failed[0] != "bad" {
		t.Fatalf("failed = %v", failed)
	}
}

func TestSplit(t *testing.T) {
	s := synthSamples(100, 6)
	train, test, err := Split(s, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 70 || len(test) != 30 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	if _, _, err := Split(s, 0); err == nil {
		t.Fatal("bad fraction accepted")
	}
	if _, _, err := Split(s[:1], 0.5); err == nil {
		t.Fatal("degenerate split accepted")
	}
}

func TestBaselinesComparableAccuracy(t *testing.T) {
	samples := synthSamples(1200, 7)
	train, test, _ := Split(samples, 0.8)

	erms, err := Fit("ms", train, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := FitGBDTBaseline(train)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := FitNNBaseline(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	accE := Evaluate(erms, test)
	accG := EvaluatePredictor(g, test)
	accN := EvaluatePredictor(nn, test)
	// Fig. 10a: all three land in a comparable band.
	for name, acc := range map[string]float64{"erms": accE, "gbdt": accG, "nn": accN} {
		if acc < 0.7 {
			t.Fatalf("%s accuracy = %v", name, acc)
		}
	}
}

func TestNNDegradesWithLessData(t *testing.T) {
	// Fig. 10b: with scarce training data the NN falls off faster than the
	// piece-wise fit.
	samples := synthSamples(1500, 8)
	_, test, _ := Split(samples, 0.8)
	small := samples[:90]

	erms, err := Fit("ms", small, FitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := FitNNBaseline(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	accE := Evaluate(erms, test)
	accN := EvaluatePredictor(nn, test)
	if accE < accN-0.05 {
		t.Fatalf("piece-wise fit (%v) should hold up at least as well as NN (%v) on scarce data", accE, accN)
	}
}

func TestBaselineErrors(t *testing.T) {
	if _, err := FitGBDTBaseline(nil); err == nil {
		t.Fatal("empty gbdt accepted")
	}
	if _, err := FitNNBaseline(nil, 1); err == nil {
		t.Fatal("empty nn accepted")
	}
}

func TestAnalyticModelShape(t *testing.T) {
	m := NewAnalytic("ms", sim.ServiceProfile{BaseMs: 2}, 4, cluster.DefaultInterference)
	// Knee shrinks with interference.
	if m.Knee(0.6, 0.6) >= m.Knee(0.1, 0.1) {
		t.Fatal("analytic knee should shrink with interference")
	}
	// High slope > low slope.
	aLo, bLo := m.Params(false, 0.2, 0.2)
	aHi, _ := m.Params(true, 0.2, 0.2)
	if aHi <= aLo {
		t.Fatalf("analytic slopes not ordered: %v %v", aLo, aHi)
	}
	if bLo <= 0 {
		t.Fatalf("intercept = %v", bLo)
	}
	// Both intervals share the idle floor as intercept, so crossing the knee
	// can only jump upward (conservative for planning).
	k := m.Knee(0.2, 0.2)
	lo := m.Predict(k*0.999, 0.2, 0.2)
	hi := m.Predict(k*1.001, 0.2, 0.2)
	if hi < lo {
		t.Fatalf("high interval below low at knee: %v vs %v", lo, hi)
	}
	// Monotone in workload on each side of the knee.
	prev := 0.0
	for w := 0.0; w < 2*k; w += k / 10 {
		v := m.Predict(w, 0.2, 0.2)
		if v < prev && !(w-k/10 <= k && w > k) {
			t.Fatalf("analytic model not monotone at %v", w)
		}
		prev = v
	}
}

func TestAnalyticModels(t *testing.T) {
	ms := AnalyticModels(
		map[string]sim.ServiceProfile{"a": {BaseMs: 1}, "b": {BaseMs: 2}},
		map[string]int{"a": 8},
		cluster.DefaultInterference,
	)
	if len(ms) != 2 {
		t.Fatalf("models = %d", len(ms))
	}
	// a has 8 threads, b defaults to 4; a's saturation (and knee) is higher
	// both from threads and base time.
	if ms["a"].Knee(0.1, 0.1) <= ms["b"].Knee(0.1, 0.1) {
		t.Fatal("thread count did not raise the knee")
	}
}

// TestFitOnSimulatorData is the honest end-to-end profiling pipeline: sweep
// workloads and interference levels in the simulator, aggregate per-minute
// samples, fit Eq. 15, and verify the fit predicts held-out workloads.
func TestFitOnSimulatorData(t *testing.T) {
	collect := func(rate float64, bg workload.Interference, seed uint64) []Sample {
		g := graph.New("svc", "A")
		cl := cluster.New(1, cluster.PaperHost)
		if _, err := cl.Place(cluster.PaperContainer("A"), 0); err != nil {
			t.Fatal(err)
		}
		cl.SetBackground(0, bg)
		cfg := sim.Config{
			Seed:         seed,
			Cluster:      cl,
			Interference: cluster.DefaultInterference,
			Profiles:     map[string]sim.ServiceProfile{"A": {BaseMs: 20, CV: 0.5}},
			Graphs:       []*graph.Graph{g},
			Patterns:     map[string]workload.Pattern{"svc": workload.Static{Rate: rate}},
			DurationMin:  3.5,
			WarmupMin:    0.5,
		}
		rt, err := sim.NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := rt.Run()
		return FromMinuteSamples(res.Samples)["A"]
	}

	var train []Sample
	levels := []workload.Interference{{CPU: 0.1, Mem: 0.1}, {CPU: 0.5, Mem: 0.35}, {CPU: 0.3, Mem: 0.55}}
	rates := []float64{1_000, 3_000, 6_000, 8_500, 10_500, 11_500}
	seed := uint64(1)
	for _, lvl := range levels {
		for _, rate := range rates {
			train = append(train, collect(rate, lvl, seed)...)
			seed++
		}
	}
	m, err := Fit("A", train, FitConfig{MinBucket: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Held-out workload, idle host: prediction within 40% of measurement
	// (simulated tails are noisy at 2-minute windows).
	test := collect(4_500, levels[0], 99)
	if acc := Evaluate(m, test); acc < 0.6 {
		t.Fatalf("simulator-trained accuracy = %v", acc)
	}
	// Interference steepens the fitted high-interval slope.
	aCold, _ := m.Params(true, 0.1, 0.1)
	aHot, _ := m.Params(true, 0.5, 0.35)
	if aHot < aCold {
		t.Fatalf("fitted slope should grow with interference: %v vs %v", aCold, aHot)
	}
}
