package profiling

import (
	"encoding/json"

	"erms/internal/mlearn"
)

// fittedJSON is the serialized form of a Fitted model — the artifact the
// Offline Profiling module persists between runs (the paper's profiling
// takes days; models must survive restarts).
type fittedJSON struct {
	Microservice string       `json:"microservice"`
	Low          Interval     `json:"low"`
	High         Interval     `json:"high"`
	KneeTree     *mlearn.Tree `json:"knee_tree,omitempty"`
	KneeDefault  float64      `json:"knee_default"`
}

// MarshalJSON serializes the fitted model, including the knee decision tree.
func (f *Fitted) MarshalJSON() ([]byte, error) {
	return json.Marshal(fittedJSON{
		Microservice: f.Microservice,
		Low:          f.Low,
		High:         f.High,
		KneeTree:     f.kneeTree,
		KneeDefault:  f.kneeDefault,
	})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (f *Fitted) UnmarshalJSON(data []byte) error {
	var j fittedJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	f.Microservice = j.Microservice
	f.Low = j.Low
	f.High = j.High
	f.kneeTree = j.KneeTree
	f.kneeDefault = j.KneeDefault
	return nil
}

// SaveModels serializes a model set; only Fitted models are persistable
// (analytic models are reconstructed from app profiles instead).
func SaveModels(models map[string]Model) ([]byte, error) {
	out := make(map[string]*Fitted, len(models))
	for ms, m := range models {
		if f, ok := m.(*Fitted); ok {
			out[ms] = f
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// LoadModels restores a model set saved by SaveModels.
func LoadModels(data []byte) (map[string]Model, error) {
	var in map[string]*Fitted
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	out := make(map[string]Model, len(in))
	for ms, f := range in {
		out[ms] = f
	}
	return out, nil
}
