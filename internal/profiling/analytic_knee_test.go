package profiling

import (
	"math"
	"testing"

	"erms/internal/cluster"
	"erms/internal/sim"
)

// TestAnalyticDegenerateKneeStaysFinite pins the minKnee floor: when
// saturation collapses toward zero (absurd service times, or an interference
// model with enormous penalties), Knee must floor at minKnee and Params must
// stay finite on both branches. Before the floor, the high/low slopes
// (KneeFactor-1)·l0/knee diverged to +Inf.
func TestAnalyticDegenerateKneeStaysFinite(t *testing.T) {
	crush := cluster.InterferenceModel{CPULinear: 1e12, CPUQuad: 1e12, MemLinear: 1e12, MemKnee: 0, MemCompaction: 1e12}
	cases := []struct {
		name     string
		m        *Analytic
		cpu, mem float64
	}{
		{"absurd service time", NewAnalytic("ms", sim.ServiceProfile{BaseMs: 1e9}, 1, cluster.DefaultInterference), 0.5, 0.5},
		{"crushing interference", NewAnalytic("ms", sim.ServiceProfile{BaseMs: 2}, 4, crush), 1, 1},
		{"healthy control", NewAnalytic("ms", sim.ServiceProfile{BaseMs: 2}, 4, cluster.DefaultInterference), 0.3, 0.3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := tc.m.Knee(tc.cpu, tc.mem)
			if !(k >= minKnee) || math.IsInf(k, 0) || math.IsNaN(k) {
				t.Fatalf("knee = %v, want finite >= %v", k, minKnee)
			}
			for _, high := range []bool{false, true} {
				a, b := tc.m.Params(high, tc.cpu, tc.mem)
				if math.IsInf(a, 0) || math.IsNaN(a) || a <= 0 {
					t.Fatalf("high=%v slope = %v, want finite > 0", high, a)
				}
				if math.IsInf(b, 0) || math.IsNaN(b) || b <= 0 {
					t.Fatalf("high=%v intercept = %v, want finite > 0", high, b)
				}
			}
			if p := tc.m.Predict(10*k, tc.cpu, tc.mem); math.IsInf(p, 0) || math.IsNaN(p) {
				t.Fatalf("predict past knee = %v", p)
			}
		})
	}
	// The floor must not perturb a healthy model: knee well above minKnee.
	healthy := NewAnalytic("ms", sim.ServiceProfile{BaseMs: 2}, 4, cluster.DefaultInterference)
	if k := healthy.Knee(0.2, 0.2); k < 1000 {
		t.Fatalf("healthy knee = %v, expected thousands of calls/min", k)
	}
}
