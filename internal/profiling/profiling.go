// Package profiling implements Erms' Offline Profiling module (§2.2, §5.2):
// it fits per-microservice tail latency as a piece-wise linear function of
// the per-container workload whose slope depends on host CPU and memory
// utilization (Eq. 15), and learns the interference-dependent cut-off point
// σ with a decision tree. It also provides the XGBoost-style and neural-
// network baselines of Fig. 10 and an analytic model for experiments too
// large to profile empirically.
package profiling

import (
	"errors"
	"fmt"
	"math"

	"erms/internal/mlearn"
	"erms/internal/sim"
	"erms/internal/stats"
)

// Sample is one profiling observation: the tuple d = (L, γ, C, M) of §5.2.
type Sample struct {
	// Workload is γ: calls per container per minute.
	Workload float64
	// TailMs is the observed tail (P95) microservice latency.
	TailMs float64
	// CPUUtil and MemUtil are host utilizations where the containers ran.
	CPUUtil float64
	MemUtil float64
}

// FromMinuteSamples converts the simulator's per-minute aggregates into
// profiling samples grouped by microservice.
func FromMinuteSamples(in []sim.MinuteSample) map[string][]Sample {
	out := make(map[string][]Sample)
	for _, m := range in {
		if m.Calls == 0 || m.TailMs <= 0 {
			continue
		}
		out[m.Microservice] = append(out[m.Microservice], Sample{
			Workload: m.PerContainerCalls,
			TailMs:   m.TailMs,
			CPUUtil:  m.CPUUtil,
			MemUtil:  m.MemUtil,
		})
	}
	return out
}

// Model predicts microservice tail latency from per-container workload and
// host interference, and exposes the linearization the scaling models
// consume: L = a·γ + b with interval-dependent (a, b) and an
// interference-dependent knee σ.
type Model interface {
	// Knee returns σ, the per-container workload at which the latency curve
	// switches from the low to the high interval, for the given host
	// utilization.
	Knee(cpuUtil, memUtil float64) float64
	// Params returns the slope a and intercept b of the chosen interval at
	// the given host utilization.
	Params(high bool, cpuUtil, memUtil float64) (a, b float64)
	// Predict evaluates the full piece-wise model.
	Predict(workload, cpuUtil, memUtil float64) float64
}

// Interval holds one segment of Eq. 15: L = (α·C + β·M + c)·γ + b.
type Interval struct {
	AlphaCPU float64 // α: CPU-utilization coefficient of the slope
	BetaMem  float64 // β: memory-utilization coefficient of the slope
	C        float64 // c: interference-independent slope term
	B        float64 // b: intercept
}

// Slope returns a = α·C + β·M + c for the given utilizations, floored at a
// tiny positive value so downstream closed forms stay well-defined.
func (iv Interval) Slope(cpuUtil, memUtil float64) float64 {
	a := iv.AlphaCPU*cpuUtil + iv.BetaMem*memUtil + iv.C
	if a < 1e-9 {
		a = 1e-9
	}
	return a
}

// Predict evaluates the interval at the given workload and utilizations.
func (iv Interval) Predict(workload, cpuUtil, memUtil float64) float64 {
	return iv.Slope(cpuUtil, memUtil)*workload + iv.B
}

// Fitted is the empirically fitted piece-wise model of one microservice.
type Fitted struct {
	Microservice string
	Low, High    Interval
	// kneeTree maps (C, M) to σ; kneeDefault covers unseen regions.
	kneeTree    *mlearn.Tree
	kneeDefault float64
}

var _ Model = (*Fitted)(nil)

// Knee returns the learned cut-off σ for the given interference.
func (f *Fitted) Knee(cpuUtil, memUtil float64) float64 {
	if f.kneeTree == nil {
		return f.kneeDefault
	}
	k := f.kneeTree.Predict([]float64{cpuUtil, memUtil})
	if k <= 0 {
		return f.kneeDefault
	}
	return k
}

// Params returns (a, b) of the selected interval at the given interference.
func (f *Fitted) Params(high bool, cpuUtil, memUtil float64) (float64, float64) {
	iv := f.Low
	if high {
		iv = f.High
	}
	return iv.Slope(cpuUtil, memUtil), iv.B
}

// Predict evaluates the piece-wise model.
func (f *Fitted) Predict(workload, cpuUtil, memUtil float64) float64 {
	if workload <= f.Knee(cpuUtil, memUtil) {
		return f.Low.Predict(workload, cpuUtil, memUtil)
	}
	return f.High.Predict(workload, cpuUtil, memUtil)
}

// FitConfig tunes the fitting procedure.
type FitConfig struct {
	// GridStep buckets (C, M) for per-bucket knee detection. Default 0.1.
	GridStep float64
	// MinBucket is the minimum samples per interference bucket for knee
	// detection. Default 8.
	MinBucket int
	// KneeTree bounds the σ decision tree. Default depth 3, min leaf 2.
	KneeTree mlearn.TreeConfig
}

func (c FitConfig) withDefaults() FitConfig {
	if c.GridStep <= 0 {
		c.GridStep = 0.1
	}
	if c.MinBucket <= 0 {
		c.MinBucket = 8
	}
	if c.KneeTree.MaxDepth <= 0 {
		c.KneeTree.MaxDepth = 3
	}
	if c.KneeTree.MinLeaf <= 0 {
		// One knee observation per interference bucket is the common case
		// (one σ estimate per profiled level), so leaves of size one are
		// legitimate.
		c.KneeTree.MinLeaf = 1
	}
	return c
}

// Fit learns the piece-wise model of Eq. 15 from samples of one
// microservice:
//
//  1. bucket samples by interference level and locate each bucket's knee σ
//     with a segmented regression,
//  2. train a decision tree (C, M) → σ (§5.2 uses exactly this model family
//     for the cut-off), and
//  3. fit each interval's (α, β, c, b) by least squares on the features
//     (C·γ, M·γ, γ), pooling samples across buckets.
func Fit(microservice string, samples []Sample, cfg FitConfig) (*Fitted, error) {
	if len(samples) < 8 {
		return nil, fmt.Errorf("profiling: %s has only %d samples", microservice, len(samples))
	}
	cfg = cfg.withDefaults()

	// 1. Per-bucket knee detection.
	type bucket struct {
		cpu, mem float64
		pts      []Sample
	}
	buckets := make(map[[2]int]*bucket)
	for _, s := range samples {
		k := [2]int{int(s.CPUUtil / cfg.GridStep), int(s.MemUtil / cfg.GridStep)}
		b, ok := buckets[k]
		if !ok {
			b = &bucket{}
			buckets[k] = b
		}
		b.pts = append(b.pts, s)
		b.cpu += s.CPUUtil
		b.mem += s.MemUtil
	}
	var kneeX [][]float64
	var kneeY []float64
	for _, b := range buckets {
		if len(b.pts) < cfg.MinBucket {
			continue
		}
		xs := make([]float64, len(b.pts))
		ys := make([]float64, len(b.pts))
		for i, s := range b.pts {
			xs[i] = s.Workload
			ys[i] = s.TailMs
		}
		seg, err := stats.FitSegmented(xs, ys, 3)
		if err != nil || math.IsInf(seg.Knee, 1) {
			continue
		}
		n := float64(len(b.pts))
		kneeX = append(kneeX, []float64{b.cpu / n, b.mem / n})
		kneeY = append(kneeY, seg.Knee)
	}
	f := &Fitted{Microservice: microservice}
	if len(kneeY) > 0 {
		f.kneeDefault = stats.Mean(kneeY)
		if len(kneeY) >= 2 {
			if tree, err := mlearn.FitTree(kneeX, kneeY, cfg.KneeTree); err == nil {
				f.kneeTree = tree
			}
		}
	} else {
		// No bucket exhibited a knee: treat the whole range as one interval
		// with the knee beyond the observed maximum.
		maxW := 0.0
		for _, s := range samples {
			if s.Workload > maxW {
				maxW = s.Workload
			}
		}
		f.kneeDefault = maxW * 2
	}

	// 2. Split samples by their bucket's knee and fit both intervals.
	var loX, hiX [][]float64
	var loY, hiY []float64
	for _, s := range samples {
		feat := []float64{s.CPUUtil * s.Workload, s.MemUtil * s.Workload, s.Workload}
		if s.Workload <= f.Knee(s.CPUUtil, s.MemUtil) {
			loX = append(loX, feat)
			loY = append(loY, s.TailMs)
		} else {
			hiX = append(hiX, feat)
			hiY = append(hiY, s.TailMs)
		}
	}
	fitIv := func(x [][]float64, y []float64) (Interval, bool) {
		if len(y) < 4 {
			return Interval{}, false
		}
		m, err := stats.FitMulti(x, y)
		if err != nil {
			return Interval{}, false
		}
		return Interval{AlphaCPU: m.Coef[0], BetaMem: m.Coef[1], C: m.Coef[2], B: m.Intercept}, true
	}
	lo, okLo := fitIv(loX, loY)
	hi, okHi := fitIv(hiX, hiY)
	switch {
	case okLo && okHi:
		f.Low, f.High = lo, hi
	case okLo:
		f.Low, f.High = lo, lo
	case okHi:
		f.Low, f.High = hi, hi
	default:
		return nil, fmt.Errorf("profiling: %s: not enough samples in either interval", microservice)
	}
	return f, nil
}

// FitAll fits models for every microservice with enough samples; it returns
// the models plus the list of microservices that could not be fitted.
func FitAll(samples map[string][]Sample, cfg FitConfig) (map[string]Model, []string) {
	models := make(map[string]Model, len(samples))
	var failed []string
	for ms, ss := range samples {
		m, err := Fit(ms, ss, cfg)
		if err != nil {
			failed = append(failed, ms)
			continue
		}
		models[ms] = m
	}
	return models, failed
}

// Evaluate returns the prediction accuracy (1 - relative error, clamped) of
// a model over test samples — the "testing accuracy" of Fig. 10.
func Evaluate(m Model, test []Sample) float64 {
	pred := make([]float64, len(test))
	actual := make([]float64, len(test))
	for i, s := range test {
		pred[i] = m.Predict(s.Workload, s.CPUUtil, s.MemUtil)
		actual[i] = s.TailMs
	}
	return stats.Accuracy(pred, actual)
}

// Split partitions samples into train and test by fraction (time-ordered:
// the first trainFrac goes to training, mirroring the paper's 22h/2h split).
func Split(samples []Sample, trainFrac float64) (train, test []Sample, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, errors.New("profiling: trainFrac must be in (0,1)")
	}
	cut := int(float64(len(samples)) * trainFrac)
	if cut == 0 || cut == len(samples) {
		return nil, nil, errors.New("profiling: split produced an empty side")
	}
	return samples[:cut], samples[cut:], nil
}
