package sim

import "testing"

// BenchmarkEngineThroughput measures simulated requests per wall-clock
// second on a shared-microservice topology, exact vs hybrid. bench7
// (scripts/bench.sh) folds the req/s metric into BENCH_7.json and gates
// hybrid >= 3x exact.
func BenchmarkEngineThroughput(b *testing.B) {
	sc := lockstepScenario{
		services: 40, block: 4, containersPerMS: 2, hosts: 16,
		ratePerMin: 2000, durationMin: 2, seed: 1234,
	}
	for _, mode := range []SimMode{SimExact, SimHybrid} {
		name := "exact"
		if mode == SimHybrid {
			name = "hybrid"
		}
		b.Run(name, func(b *testing.B) {
			var reqs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunPartitioned(sc.build(b), PartitionOpts{Mode: mode})
				if err != nil {
					b.Fatal(err)
				}
				for _, sr := range res.PerService {
					reqs += int64(sr.Count + sr.Errors)
				}
			}
			b.ReportMetric(float64(reqs)/b.Elapsed().Seconds(), "req/s")
		})
	}
}
