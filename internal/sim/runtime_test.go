package sim

import (
	"math"
	"testing"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/workload"
)

// buildCluster places n containers for each named microservice round-robin
// over hosts.
func buildCluster(t *testing.T, hosts int, counts map[string]int) *cluster.Cluster {
	t.Helper()
	cl := cluster.New(hosts, cluster.PaperHost)
	i := 0
	for ms, n := range counts {
		for k := 0; k < n; k++ {
			if _, err := cl.Place(cluster.PaperContainer(ms), i%hosts); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	return cl
}

func singleMSConfig(t *testing.T, ratePerMin float64, containers int) Config {
	t.Helper()
	g := graph.New("svc", "A")
	return Config{
		Seed:        1,
		Cluster:     buildCluster(t, 4, map[string]int{"A": containers}),
		Profiles:    map[string]ServiceProfile{"A": {BaseMs: 2, CV: 0.5}},
		Graphs:      []*graph.Graph{g},
		Patterns:    map[string]workload.Pattern{"svc": workload.Static{Rate: ratePerMin}},
		DurationMin: 2,
		WarmupMin:   0.5,
	}
}

func TestLightLoadLatencyNearServiceTime(t *testing.T) {
	cfg := singleMSConfig(t, 600, 4) // 10 req/s over 16 threads: negligible queueing
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	sr := res.PerService["svc"]
	if sr.Count == 0 {
		t.Fatal("no requests measured")
	}
	mean := sr.Mean()
	if mean < 1.9 || mean > 4 {
		t.Fatalf("light-load mean latency = %v ms, want ~2-4", mean)
	}
}

func TestOverloadLatencyGrows(t *testing.T) {
	// One container, 4 threads, 2ms mean: capacity ~ 4*60000/2 = 120k/min.
	light := singleMSConfig(t, 20_000, 1)
	heavy := singleMSConfig(t, 110_000, 1)
	rtL, err := NewRuntime(light)
	if err != nil {
		t.Fatal(err)
	}
	rtH, err := NewRuntime(heavy)
	if err != nil {
		t.Fatal(err)
	}
	pl := rtL.Run().PerService["svc"].P95()
	ph := rtH.Run().PerService["svc"].P95()
	if ph < 2*pl {
		t.Fatalf("near-saturation P95 (%v) should far exceed light-load P95 (%v)", ph, pl)
	}
}

func TestLatencyKneeEmerges(t *testing.T) {
	// Sweep per-container workload; the latency curve must be flat-ish below
	// capacity and steep above — the Fig. 3 shape the profiler relies on.
	var p95s []float64
	rates := []float64{10_000, 40_000, 80_000, 105_000, 115_000}
	for _, rate := range rates {
		cfg := singleMSConfig(t, rate, 1)
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p95s = append(p95s, rt.Run().PerService["svc"].P95())
	}
	// Early growth is small, late growth is large.
	early := p95s[1] - p95s[0]
	late := p95s[4] - p95s[3]
	if late < 3*math.Max(early, 0.1) {
		t.Fatalf("no knee: p95s = %v", p95s)
	}
}

func TestMoreContainersReduceLatency(t *testing.T) {
	few := singleMSConfig(t, 100_000, 1)
	many := singleMSConfig(t, 100_000, 4)
	rtF, _ := NewRuntime(few)
	rtM, _ := NewRuntime(many)
	pf := rtF.Run().PerService["svc"].P95()
	pm := rtM.Run().PerService["svc"].P95()
	if pm >= pf {
		t.Fatalf("scaling out did not help: 1 ctr p95=%v, 4 ctr p95=%v", pf, pm)
	}
}

func TestSequentialVsParallelComposition(t *testing.T) {
	mkCfg := func(parallel bool) Config {
		g := graph.New("svc", "root")
		if parallel {
			g.AddStage(g.Root, "B", "C")
		} else {
			g.AddSequential(g.Root, "B", "C")
		}
		return Config{
			Seed:    2,
			Cluster: buildCluster(t, 4, map[string]int{"root": 2, "B": 2, "C": 2}),
			Profiles: map[string]ServiceProfile{
				"root": {BaseMs: 1}, "B": {BaseMs: 10}, "C": {BaseMs: 10},
			},
			Graphs:      []*graph.Graph{g},
			Patterns:    map[string]workload.Pattern{"svc": workload.Static{Rate: 600}},
			DurationMin: 2,
			WarmupMin:   0.5,
		}
	}
	rtSeq, err := NewRuntime(mkCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	rtPar, err := NewRuntime(mkCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	seq := rtSeq.Run().PerService["svc"].Mean()
	par := rtPar.Run().PerService["svc"].Mean()
	// Sequential: ~1+10+10=21; parallel: ~1+10=11 (deterministic service
	// times, so the difference is sharp).
	if seq < par+6 {
		t.Fatalf("sequential mean %v should exceed parallel mean %v by ~10ms", seq, par)
	}
}

func TestInterferenceSlowsRequests(t *testing.T) {
	mk := func(bg workload.Interference) float64 {
		cfg := singleMSConfig(t, 6000, 2)
		cfg.Interference = cluster.DefaultInterference
		for _, h := range cfg.Cluster.Hosts() {
			cfg.Cluster.SetBackground(h.ID, bg)
		}
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt.Run().PerService["svc"].Mean()
	}
	idle := mk(workload.Interference{})
	hot := mk(workload.Interference{CPU: 0.8, Mem: 0.8})
	if hot < idle*1.5 {
		t.Fatalf("interference did not slow requests: idle %v, hot %v", idle, hot)
	}
}

func TestWarmupExcluded(t *testing.T) {
	cfg := singleMSConfig(t, 6000, 2)
	cfg.DurationMin = 2
	cfg.WarmupMin = 1
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	// ~6000 req/min over 1 measured minute.
	if n := res.PerService["svc"].Count; math.Abs(float64(n)-6000) > 500 {
		t.Fatalf("measured count = %d, want ~6000 (warmup excluded)", n)
	}
	if res.SimulatedMin != 1 {
		t.Fatalf("SimulatedMin = %v", res.SimulatedMin)
	}
	// Minute samples only for the post-warmup minute.
	for _, s := range res.Samples {
		if s.Minute < 1 {
			t.Fatalf("sample from warmup minute %d", s.Minute)
		}
	}
	if len(res.Samples) == 0 {
		t.Fatal("no minute samples")
	}
}

func TestMinuteSampleContents(t *testing.T) {
	cfg := singleMSConfig(t, 12_000, 2)
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	var found bool
	for _, s := range res.Samples {
		if s.Microservice != "A" {
			continue
		}
		found = true
		if s.Containers != 2 {
			t.Fatalf("containers = %d", s.Containers)
		}
		// 12k/min over 2 containers -> ~6k per container per minute.
		if math.Abs(s.PerContainerCalls-6000) > 600 {
			t.Fatalf("per-container calls = %v", s.PerContainerCalls)
		}
		if s.TailMs <= 0 || s.MeanMs <= 0 || s.TailMs < s.MeanMs {
			t.Fatalf("latency aggregates inconsistent: %+v", s)
		}
		if s.CPUUtil < 0 || s.CPUUtil > 1 || s.MemUtil < 0 || s.MemUtil > 1 {
			t.Fatalf("utilization out of range: %+v", s)
		}
	}
	if !found {
		t.Fatal("no sample for microservice A")
	}
}

func TestServiceMSCallRates(t *testing.T) {
	g := graph.New("svc", "A")
	g.AddStage(g.Root, "B", "B2")
	cfg := Config{
		Seed:    3,
		Cluster: buildCluster(t, 2, map[string]int{"A": 2, "B": 2, "B2": 2}),
		Profiles: map[string]ServiceProfile{
			"A": {BaseMs: 1}, "B": {BaseMs: 1}, "B2": {BaseMs: 1},
		},
		Graphs:      []*graph.Graph{g},
		Patterns:    map[string]workload.Pattern{"svc": workload.Static{Rate: 3000}},
		DurationMin: 3,
		WarmupMin:   1,
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	rates := res.ServiceMSCalls["svc"]
	for _, ms := range []string{"A", "B", "B2"} {
		if math.Abs(rates[ms]-3000) > 300 {
			t.Fatalf("call rate at %s = %v, want ~3000", ms, rates[ms])
		}
	}
}

func TestPrioritySchedulingFavorsHighPriority(t *testing.T) {
	// Two services share microservice P near saturation; svc1 has priority.
	g1 := graph.New("svc1", "P")
	g2 := graph.New("svc2", "P")
	mk := func(withPriority bool) (float64, float64) {
		cfg := Config{
			Seed:     5,
			Cluster:  buildCluster(t, 2, map[string]int{"P": 1}),
			Profiles: map[string]ServiceProfile{"P": {BaseMs: 2, CV: 0.5}},
			Graphs:   []*graph.Graph{g1, g2},
			Patterns: map[string]workload.Pattern{
				"svc1": workload.Static{Rate: 55_000},
				"svc2": workload.Static{Rate: 55_000},
			},
			DurationMin: 2,
			WarmupMin:   0.5,
		}
		if withPriority {
			cfg.Priorities = map[string]map[string]int{"P": {"svc1": 0, "svc2": 1}}
			cfg.Delta = 0.05
		}
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := rt.Run()
		return res.PerService["svc1"].P95(), res.PerService["svc2"].P95()
	}
	f1, f2 := mk(false)
	p1, p2 := mk(true)
	// Under FCFS both services see similar latency; with priority svc1
	// improves at svc2's expense.
	if p1 >= f1 {
		t.Fatalf("priority did not improve svc1: fcfs=%v prio=%v", f1, p1)
	}
	if p2 <= p1 {
		t.Fatalf("low-priority service should be slower: p1=%v p2=%v", p1, p2)
	}
	_ = f2
}

func TestSLAViolationCounting(t *testing.T) {
	cfg := singleMSConfig(t, 6000, 2)
	cfg.SLAs = map[string]workload.SLA{"svc": workload.P95SLA("svc", 0.001)}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	sr := res.PerService["svc"]
	if sr.ViolationRate() < 0.99 {
		t.Fatalf("violation rate with impossible SLA = %v", sr.ViolationRate())
	}
	cfg2 := singleMSConfig(t, 6000, 2)
	cfg2.SLAs = map[string]workload.SLA{"svc": workload.P95SLA("svc", 10_000)}
	rt2, _ := NewRuntime(cfg2)
	if vr := rt2.Run().PerService["svc"].ViolationRate(); vr != 0 {
		t.Fatalf("violation rate with generous SLA = %v", vr)
	}
}

type recordingObserver struct{ calls []CallRecord }

func (o *recordingObserver) ObserveCall(c CallRecord) { o.calls = append(o.calls, c) }

func TestSpanObservation(t *testing.T) {
	g := graph.New("svc", "A")
	g.AddSequential(g.Root, "B")
	obs := &recordingObserver{}
	cfg := Config{
		Seed:           7,
		Cluster:        buildCluster(t, 2, map[string]int{"A": 2, "B": 2}),
		Profiles:       map[string]ServiceProfile{"A": {BaseMs: 1}, "B": {BaseMs: 2}},
		Graphs:         []*graph.Graph{g},
		Patterns:       map[string]workload.Pattern{"svc": workload.Static{Rate: 6000}},
		DurationMin:    2,
		WarmupMin:      0,
		SampleRate:     0.1,
		Observer:       obs,
		NetworkDelayMs: 0.1,
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	if len(obs.calls) == 0 {
		t.Fatal("no spans observed")
	}
	// Roughly 10% of ~12000 requests, two calls each.
	nTraces := map[int64]bool{}
	for _, c := range obs.calls {
		nTraces[c.TraceID] = true
		if c.ClientSend > c.ServerRecv || c.ServerRecv > c.ServerSend || c.ServerSend > c.ClientRecv {
			t.Fatalf("span timestamps out of order: %+v", c)
		}
		if c.ParentNodeID == -1 && c.Microservice != "A" {
			t.Fatalf("root call should be A: %+v", c)
		}
	}
	frac := float64(len(nTraces)) / 12000.0
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("sampled trace fraction = %v, want ~0.1", frac)
	}
	// Each sampled trace should have both calls (A and B).
	byTrace := map[int64]int{}
	for _, c := range obs.calls {
		byTrace[c.TraceID]++
	}
	for id, n := range byTrace {
		if n != 2 {
			t.Fatalf("trace %d has %d calls, want 2", id, n)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.New("svc", "A")
	base := Config{
		Cluster:     buildCluster(t, 1, map[string]int{"A": 1}),
		Profiles:    map[string]ServiceProfile{"A": {BaseMs: 1}},
		Graphs:      []*graph.Graph{g},
		Patterns:    map[string]workload.Pattern{"svc": workload.Static{Rate: 10}},
		DurationMin: 1,
	}
	if _, err := NewRuntime(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.Cluster = nil
	if _, err := NewRuntime(bad); err == nil {
		t.Fatal("nil cluster accepted")
	}
	bad = base
	bad.DurationMin = 0
	if _, err := NewRuntime(bad); err == nil {
		t.Fatal("zero duration accepted")
	}
	bad = base
	bad.Patterns = map[string]workload.Pattern{}
	if _, err := NewRuntime(bad); err == nil {
		t.Fatal("missing pattern accepted")
	}
	bad = base
	bad.Profiles = map[string]ServiceProfile{}
	if _, err := NewRuntime(bad); err == nil {
		t.Fatal("missing profile accepted")
	}
	bad = base
	bad.Cluster = cluster.New(1, cluster.PaperHost) // no containers
	if _, err := NewRuntime(bad); err == nil {
		t.Fatal("missing containers accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := singleMSConfig(t, 12_000, 2)
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt.Run().PerService["svc"].P95()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestFailureInjectionDegradesAndRecovers(t *testing.T) {
	// Two containers at moderate load; killing one doubles the survivor's
	// load for a minute, then recovery restores the tail.
	mk := func(failures []Failure) (*ServiceResult, []MinuteSample) {
		cfg := singleMSConfig(t, 80_000, 2)
		cfg.DurationMin = 3.5
		cfg.WarmupMin = 0.5
		cfg.Failures = failures
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := rt.Run()
		return res.PerService["svc"], res.Samples
	}
	healthy, _ := mk(nil)
	failed, samples := mk([]Failure{{Microservice: "A", Index: 0, AtMin: 1.5, RecoverMin: 2.5}})
	if failed.P95() <= healthy.P95() {
		t.Fatalf("failure did not raise tail: %v vs %v", failed.P95(), healthy.P95())
	}
	// During the outage the surviving container absorbs ~all calls; after
	// recovery per-container load rebalances.
	var duringMax, afterMax float64
	for _, s := range samples {
		if s.Minute == 1 && s.PerContainerCalls > duringMax {
			duringMax = s.PerContainerCalls
		}
		if s.Minute == 2 && s.PerContainerCalls > afterMax {
			afterMax = s.PerContainerCalls
		}
	}
	_ = duringMax
	_ = afterMax
	// All requests still complete (work conservation through re-routing).
	if failed.Count < healthy.Count*9/10 {
		t.Fatalf("requests lost: %d vs %d", failed.Count, healthy.Count)
	}
}

func TestFailureAllContainersDownThenRecover(t *testing.T) {
	cfg := singleMSConfig(t, 3_000, 1)
	cfg.DurationMin = 3
	cfg.WarmupMin = 0
	cfg.Failures = []Failure{{Microservice: "A", Index: 0, AtMin: 0.5, RecoverMin: 1.0}}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	sr := res.PerService["svc"]
	// Requests arriving during the blackout wait for recovery but complete.
	if sr.Count < 8000 {
		t.Fatalf("count = %d, want ~9000 (no losses)", sr.Count)
	}
	if sr.P95() < 100 {
		t.Fatalf("p95 = %v, expected large tail from the 30s blackout", sr.P95())
	}
}

func TestFailureInvalidIndexIgnored(t *testing.T) {
	cfg := singleMSConfig(t, 3_000, 1)
	cfg.Failures = []Failure{{Microservice: "A", Index: 7, AtMin: 0.5}}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res := rt.Run(); res.PerService["svc"].Count == 0 {
		t.Fatal("no requests completed")
	}
}

func TestClosedLoopThroughput(t *testing.T) {
	// users/(think+latency) law: 100 users, 1s think, ~2ms latency ->
	// ~6000 req/min.
	cfg := singleMSConfig(t, 0, 4)
	cfg.Patterns = nil
	cfg.ClosedUsers = map[string]int{"svc": 100}
	cfg.ThinkTimeMs = 1000
	cfg.DurationMin = 3
	cfg.WarmupMin = 0.5
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := rt.Run()
	sr := res.PerService["svc"]
	perMin := float64(sr.Count) / res.SimulatedMin
	want := 100.0 * 60000 / (1000 + 2)
	if math.Abs(perMin-want)/want > 0.1 {
		t.Fatalf("closed-loop rate = %v/min, want ~%v", perMin, want)
	}
}

func TestClosedLoopBoundsSaturation(t *testing.T) {
	// A deliberately under-provisioned deployment: open-loop latency would
	// grow without bound over the run; the closed loop self-throttles, so
	// the tail stays bounded by the user population.
	mkClosed := func(users int) float64 {
		cfg := singleMSConfig(t, 0, 1)
		cfg.Patterns = nil
		cfg.ClosedUsers = map[string]int{"svc": users}
		cfg.ThinkTimeMs = 20 // demand ~users*60000/22 >> capacity
		cfg.DurationMin = 2
		cfg.WarmupMin = 0.5
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt.Run().PerService["svc"].P95()
	}
	open := singleMSConfig(t, 140_000, 1) // ~1.2x capacity, open loop
	open.DurationMin = 2
	open.WarmupMin = 0.5
	rtO, err := NewRuntime(open)
	if err != nil {
		t.Fatal(err)
	}
	openP95 := rtO.Run().PerService["svc"].P95()
	closedP95 := mkClosed(120)
	if closedP95 >= openP95 {
		t.Fatalf("closed loop (%v) should bound the open-loop blow-up (%v)", closedP95, openP95)
	}
	// The closed-loop tail scales with the user population, not with time:
	// bounded by roughly users x service time.
	if closedP95 > 120*2*3 {
		t.Fatalf("closed-loop tail %v exceeds the population bound", closedP95)
	}
}

func TestClosedLoopValidation(t *testing.T) {
	cfg := singleMSConfig(t, 0, 1)
	cfg.Patterns = nil // no pattern AND no closed users: invalid
	if _, err := NewRuntime(cfg); err == nil {
		t.Fatal("missing workload accepted")
	}
	cfg.ClosedUsers = map[string]int{"svc": 10}
	if _, err := NewRuntime(cfg); err != nil {
		t.Fatalf("closed-loop config rejected: %v", err)
	}
}

func TestHostScopedFailure(t *testing.T) {
	// Two containers on two distinct hosts under heavy load; a host-scoped
	// failure (empty Microservice) takes down exactly the containers of that
	// host, halving capacity mid-run, and recovery restores them.
	mk := func(failures []Failure) *ServiceResult {
		cfg := singleMSConfig(t, 80_000, 2)
		cfg.DurationMin = 3.5
		cfg.WarmupMin = 0.5
		var victim int
		for _, c := range cfg.Cluster.Containers() {
			if c.Host.ID == 1 {
				victim++
			}
		}
		if victim == 0 {
			t.Fatal("test needs containers on host 1")
		}
		cfg.Failures = failures
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt.Run().PerService["svc"]
	}
	sr := mk([]Failure{{Host: 1, AtMin: 1.5, RecoverMin: 2.5}})
	if sr.Count == 0 {
		t.Fatal("no requests measured")
	}
	healthy := mk(nil)
	if sr.P95() <= healthy.P95() {
		t.Fatalf("host outage did not raise the tail: %v vs %v", sr.P95(), healthy.P95())
	}
	// Work conservation: the surviving hosts absorb the load.
	if sr.Count < healthy.Count*9/10 {
		t.Fatalf("requests lost: %d vs %d", sr.Count, healthy.Count)
	}
}

func TestHostScopedFailureUnknownHostIgnored(t *testing.T) {
	cfg := singleMSConfig(t, 3_000, 2)
	cfg.Failures = []Failure{{Host: 99, AtMin: 0.5}}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res := rt.Run(); res.PerService["svc"].Count == 0 {
		t.Fatal("no requests completed")
	}
}

func TestDropMinutesHideSamplesNotResults(t *testing.T) {
	run := func(drop []int) *Result {
		cfg := singleMSConfig(t, 6_000, 2)
		cfg.DurationMin = 4
		cfg.WarmupMin = 1
		cfg.DropMinutes = drop
		rt, err := NewRuntime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt.Run()
	}
	full := run(nil)
	gapped := run([]int{2})
	for _, s := range gapped.Samples {
		if s.Minute == 2 {
			t.Fatal("dropped minute still recorded")
		}
	}
	if len(gapped.Samples) >= len(full.Samples) {
		t.Fatalf("gap did not shrink samples: %d vs %d", len(gapped.Samples), len(full.Samples))
	}
	// End-to-end measurements are the ground truth and are unaffected: the
	// gap hides data from the control plane, not from the experiment.
	if gapped.PerService["svc"].Count != full.PerService["svc"].Count {
		t.Fatalf("drop minutes changed the simulation: %d vs %d requests",
			gapped.PerService["svc"].Count, full.PerService["svc"].Count)
	}
}
