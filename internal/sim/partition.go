package sim

import (
	"fmt"
	"sort"

	"erms/internal/cluster"
	"erms/internal/parallel"
)

// SimMode selects the fidelity of a partitioned run.
type SimMode int

const (
	// SimExact runs every partition on the exact discrete-event engine.
	SimExact SimMode = iota
	// SimHybrid enables the fluid fast path (Config.Fluid semantics) inside
	// every partition: far-from-knee microservices are served analytically,
	// near-knee ones exactly.
	SimHybrid
)

// PartitionOpts configures RunPartitioned.
type PartitionOpts struct {
	// Mode selects exact or hybrid fidelity. Exact mode with a single
	// sharing group is byte-identical to Runtime.Run on the same Config.
	Mode SimMode
	// Partitions caps how many sharing-group partitions advance concurrently
	// (each worker task owns a deterministic strided subset). 0 runs one
	// task per group. The value changes scheduling only — results are
	// byte-identical for any Partitions and any parallel.SetWorkers count,
	// because the partition split itself is always by sharing group.
	Partitions int
	// Fluid tunes the hybrid fast path; nil uses FluidConfig defaults.
	// Ignored in SimExact mode.
	Fluid *FluidConfig
}

// RunPartitioned executes one simulation split into sharing-group partitions
// that advance in lockstep over minute-boundary barriers on the
// internal/parallel pool.
//
// The partition unit is the service sharing group (the union-find closure of
// services connected by shared microservices — the same grouping the
// multiplexing planner uses): requests never cross group boundaries, so each
// group is an independent event stream given (a) its own seed derived from
// (Config.Seed, group index) and (b) the cross-group coupling through host
// interference. The latter is resolved conservatively at minute boundaries:
// each partition simulates on a cluster clone holding only its own
// containers, with every other partition's per-host CPU/memory footprint
// folded in as external usage (cluster.Host.SetExternalUsage), re-exchanged
// at every barrier. Within a minute a partition therefore sees the others'
// load as of the last boundary — the window-boundary synchronization the
// per-minute interference model already assumes.
//
// Determinism: the split, the per-partition seeds, and the merge order
// depend only on Config, so results are byte-identical at any worker count
// and any PartitionOpts.Partitions value. Sampled-trace observers fire after
// the run, in group order, with trace IDs offset per group so they stay
// unique across partitions.
func RunPartitioned(cfg Config, opts PartitionOpts) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var fl *FluidConfig
	if opts.Mode == SimHybrid {
		c := FluidConfig{}
		if opts.Fluid != nil {
			c = *opts.Fluid
		}
		fl = &c
	}

	groups := sharingGroups(cfg)
	if len(groups) == 1 {
		// One group: the partitioned run degenerates to the single-stream
		// engine on the original cluster — in exact mode this is the
		// byte-identical serial path.
		sub := cfg
		sub.Fluid = fl
		rt, err := NewRuntime(sub)
		if err != nil {
			return nil, err
		}
		return rt.Run(), nil
	}

	parts := make([]*partition, len(groups))
	hostN := cfg.Cluster.NumHosts()
	for gi, grp := range groups {
		p, err := buildPartition(cfg, fl, gi, grp)
		if err != nil {
			return nil, fmt.Errorf("sim: partition %d: %w", gi, err)
		}
		parts[gi] = p
	}

	// Initial external usage: every other partition's placed requests.
	exchange := func() {
		totCPU := make([]float64, hostN)
		for _, p := range parts {
			for h := range p.ownCPU {
				p.ownCPU[h] = 0
			}
			for i, c := range p.conts {
				p.ownCPU[p.contHost[i]] += c.CPUUsage()
			}
			for h := 0; h < hostN; h++ {
				totCPU[h] += p.ownCPU[h]
			}
		}
		for _, p := range parts {
			for h := 0; h < hostN; h++ {
				p.sub.Host(h).SetExternalUsage(totCPU[h]-p.ownCPU[h], p.extMem[h])
			}
		}
	}
	exchange()

	bins := opts.Partitions
	if bins <= 0 || bins > len(parts) {
		bins = len(parts)
	}
	runAll := func(fn func(*partition)) {
		// Strided bins: partition i always runs in bin i%bins, so the
		// work-to-task assignment is independent of the worker count.
		_ = parallel.ForEach(bins, func(b int) error {
			for i := b; i < len(parts); i += bins {
				fn(parts[i])
			}
			return nil
		})
	}

	for gi, p := range parts {
		rt, err := NewRuntime(p.cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: partition %d: %w", gi, err)
		}
		p.rt = rt
	}
	runAll(func(p *partition) { p.rt.setup() })

	endMs := cfg.DurationMin * 60_000
	for m := 1; m <= int(cfg.DurationMin); m++ {
		t := float64(m) * 60_000
		runAll(func(p *partition) { p.rt.advanceTo(t) })
		exchange()
	}
	runAll(func(p *partition) { p.rt.advanceTo(endMs + drainMs) })

	return mergeResults(cfg, parts), nil
}

// partition is one sharing group's slice of a partitioned run.
type partition struct {
	cfg Config
	sub *cluster.Cluster
	rt  *Runtime
	buf *bufObserver

	// conts are the clone's containers (ID order), contHost their host IDs,
	// and orig the matching original containers for final usage copy-back.
	conts    []*cluster.Container
	orig     []*cluster.Container
	contHost []int
	ownCPU   []float64
	extMem   []float64

	streamMap []int // local stream index -> Config.Streams index
}

// sharingGroups unions services that share a microservice and returns the
// groups as sorted service-index lists, ordered by smallest member.
// Microservices deployed on the cluster but absent from every graph ride
// with group 0 so their containers still produce MinuteSamples.
func sharingGroups(cfg Config) [][]int {
	n := len(cfg.Graphs)
	up := make([]int, n)
	for i := range up {
		up[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for up[x] != x {
			up[x] = up[up[x]]
			x = up[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			up[rb] = ra
		}
	}
	owner := make(map[string]int)
	for i, g := range cfg.Graphs {
		for _, ms := range g.Microservices() {
			if first, ok := owner[ms]; ok {
				union(first, i)
			} else {
				owner[ms] = i
			}
		}
	}
	byRoot := make(map[int][]int)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// buildPartition clones the cluster with only the group's containers placed
// and derives the group-local Config.
func buildPartition(cfg Config, fl *FluidConfig, gi int, grp []int) (*partition, error) {
	msSet := make(map[string]bool)
	svcSet := make(map[string]bool)
	for _, si := range grp {
		g := cfg.Graphs[si]
		svcSet[g.Service] = true
		for _, ms := range g.Microservices() {
			msSet[ms] = true
		}
	}
	if gi == 0 {
		// Orphan microservices: placed on the cluster but in no graph.
		known := make(map[string]bool)
		for _, g := range cfg.Graphs {
			for _, ms := range g.Microservices() {
				known[ms] = true
			}
		}
		for _, c := range cfg.Cluster.Containers() {
			if !known[c.Spec.Microservice] {
				msSet[c.Spec.Microservice] = true
			}
		}
	}

	hosts := cfg.Cluster.Hosts()
	sub := cluster.New(len(hosts), hosts[0].Spec)
	for _, h := range hosts {
		sh := sub.Host(h.ID)
		sh.Spec = h.Spec
		sh.Background = h.Background
	}
	p := &partition{
		sub:    sub,
		ownCPU: make([]float64, len(hosts)),
		extMem: make([]float64, len(hosts)),
	}
	for _, c := range cfg.Cluster.Containers() {
		if !msSet[c.Spec.Microservice] {
			// Static memory exchange: containers simulated elsewhere still
			// occupy their requested memory on this host.
			p.extMem[c.Host.ID] += c.Spec.MemMB
			continue
		}
		cc, err := sub.Place(c.Spec, c.Host.ID)
		if err != nil {
			return nil, err
		}
		p.conts = append(p.conts, cc)
		p.orig = append(p.orig, c)
		p.contHost = append(p.contHost, c.Host.ID)
	}
	for _, h := range hosts {
		sh := sub.Host(h.ID)
		sh.SetDown(h.Down())
		sh.SetCordoned(h.Cordoned())
	}

	sc := cfg
	sc.Seed = partitionSeed(cfg.Seed, gi)
	sc.Cluster = sub
	sc.Fluid = fl
	sc.Graphs = nil
	for _, si := range grp {
		sc.Graphs = append(sc.Graphs, cfg.Graphs[si])
	}
	sc.Failures = nil
	for _, f := range cfg.Failures {
		if f.Microservice == "" || msSet[f.Microservice] {
			sc.Failures = append(sc.Failures, f)
		}
	}
	sc.Streams = nil
	for i, s := range cfg.Streams {
		if svcSet[s.Service] {
			sc.Streams = append(sc.Streams, s)
			p.streamMap = append(p.streamMap, i)
		}
	}
	if cfg.Observer != nil {
		p.buf = &bufObserver{}
		sc.Observer = p.buf
	}
	p.cfg = sc
	return p, nil
}

// partitionSeed derives a partition's RNG seed from the run seed and the
// group index (splitmix64 finalizer over a golden-ratio offset), mirroring
// the per-index-seed contract the parallel experiment drivers use.
func partitionSeed(seed uint64, gi int) uint64 {
	z := seed + (uint64(gi)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// bufObserver buffers sampled spans during a partitioned run; they replay to
// the real observer in group order after the merge.
type bufObserver struct {
	recs []CallRecord
}

func (b *bufObserver) ObserveCall(r CallRecord) { b.recs = append(b.recs, r) }

// mergeResults folds the partitions' results deterministically (group order,
// then canonical sorts) and mirrors the clones' final container usage back
// onto the original cluster so post-run utilization reads match a serial run.
func mergeResults(cfg Config, parts []*partition) *Result {
	out := &Result{
		PerService:     make(map[string]*ServiceResult),
		ServiceMSCalls: make(map[string]map[string]float64),
		SimulatedMin:   cfg.DurationMin - cfg.WarmupMin,
		Partitions:     len(parts),
	}
	if len(cfg.Streams) > 0 {
		out.PerStream = make([]*StreamResult, len(cfg.Streams))
	}
	for _, p := range parts {
		r := p.rt.finish()
		for svc, sr := range r.PerService {
			out.PerService[svc] = sr
		}
		for svc, rates := range r.ServiceMSCalls {
			out.ServiceMSCalls[svc] = rates
		}
		out.Samples = append(out.Samples, r.Samples...)
		out.Engine.Events += r.Engine.Events
		out.Engine.JobsAllocated += r.Engine.JobsAllocated
		out.Engine.JobsRecycled += r.Engine.JobsRecycled
		if r.Engine.HeapPeak > out.Engine.HeapPeak {
			out.Engine.HeapPeak = r.Engine.HeapPeak
		}
		out.Data = out.Data.add(r.Data)
		for li, sr := range r.PerStream {
			out.PerStream[p.streamMap[li]] = sr
		}
		for _, sm := range r.StreamMinutes {
			sm.Stream = p.streamMap[sm.Stream]
			out.StreamMinutes = append(out.StreamMinutes, sm)
		}
		out.FluidContainerMinutes += r.FluidContainerMinutes
		out.ExactContainerMinutes += r.ExactContainerMinutes
		for i, c := range p.conts {
			p.orig[i].SetCPUUsage(c.CPUUsage())
		}
	}
	sort.SliceStable(out.Samples, func(i, j int) bool {
		a, b := out.Samples[i], out.Samples[j]
		if a.Minute != b.Minute {
			return a.Minute < b.Minute
		}
		return a.Microservice < b.Microservice
	})
	sort.SliceStable(out.StreamMinutes, func(i, j int) bool {
		a, b := out.StreamMinutes[i], out.StreamMinutes[j]
		if a.Minute != b.Minute {
			return a.Minute < b.Minute
		}
		return a.Stream < b.Stream
	})
	if cfg.Observer != nil {
		// Replay sampled spans in group order. Trace IDs are unique within a
		// partition; the per-group offset keeps them unique across the run.
		for gi, p := range parts {
			base := int64(gi) << 40
			for _, rec := range p.buf.recs {
				rec.TraceID += base
				cfg.Observer.ObserveCall(rec)
			}
		}
	}
	return out
}

// add sums two DataStats field-wise.
func (d DataStats) add(o DataStats) DataStats {
	d.Attempts += o.Attempts
	d.Timeouts += o.Timeouts
	d.Retries += o.Retries
	d.RetryBudgetExhausted += o.RetryBudgetExhausted
	d.BreakerOpens += o.BreakerOpens
	d.BreakerShortCircuits += o.BreakerShortCircuits
	d.Shed += o.Shed
	for i := range d.ShedByTier {
		d.ShedByTier[i] += o.ShedByTier[i]
	}
	d.CrashFailures += o.CrashFailures
	d.DeadlineSkips += o.DeadlineSkips
	d.Unavailable += o.Unavailable
	return d
}
