// Package sim is a discrete-event simulator of a microservice cluster. It
// executes service requests against dependency graphs on a simulated
// cluster: each container runs a fixed pool of worker threads, excess
// requests queue, service times are inflated by host-level resource
// interference, and parallel/sequential downstream calls compose exactly as
// in the paper's Fig. 1.
//
// The simulator substitutes for the paper's Kubernetes + DeathStarBench
// testbed. Crucially, it does not hard-code the paper's piece-wise linear
// latency model; the knee and the interference-dependent slope emerge from
// queueing at finite thread pools, and the profiler (internal/profiling)
// has to rediscover the model from simulated traces.
package sim

import "container/heap"

// event is one scheduled callback.
type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq // stable FIFO for simultaneous events
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() event   { return h[0] }

// Engine is a discrete-event clock with a pending-event heap. Time is in
// milliseconds. The zero value is not usable; call NewEngine.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap
}

// NewEngine creates an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after the given delay (>= 0) in milliseconds.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute time; times in the past run "now".
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{time: t, seq: e.seq, fn: fn})
}

// Run processes events until the queue empties or the clock passes until
// (milliseconds). Events scheduled exactly at until are executed.
func (e *Engine) Run(until float64) {
	for e.events.Len() > 0 {
		next := e.events.Peek()
		if next.time > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.time
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of queued events (for tests and diagnostics).
func (e *Engine) Pending() int { return e.events.Len() }
