// Package sim is a discrete-event simulator of a microservice cluster. It
// executes service requests against dependency graphs on a simulated
// cluster: each container runs a fixed pool of worker threads, excess
// requests queue, service times are inflated by host-level resource
// interference, and parallel/sequential downstream calls compose exactly as
// in the paper's Fig. 1.
//
// The simulator substitutes for the paper's Kubernetes + DeathStarBench
// testbed. Crucially, it does not hard-code the paper's piece-wise linear
// latency model; the knee and the interference-dependent slope emerge from
// queueing at finite thread pools, and the profiler (internal/profiling)
// has to rediscover the model from simulated traces.
package sim

// event is one scheduled callback.
type event struct {
	time float64
	seq  int64
	fn   func()
}

// eventHeap is a typed binary min-heap ordered by (time, seq). Unlike
// container/heap it moves event values directly — no interface{} boxing on
// push or pop — so scheduling an event costs zero heap allocations once the
// backing array has grown to the simulation's high-water mark.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq // stable FIFO for simultaneous events
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the closure reference
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Engine is a discrete-event clock with a pending-event heap. Time is in
// milliseconds. The zero value is not usable; call NewEngine.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap

	// Self-telemetry: plain integer counters so the hot loop stays
	// allocation-free whether or not anyone reads them.
	processed int64
	heapPeak  int
}

// NewEngine creates an engine with the clock at zero. The event heap's
// backing array is pre-sized so short simulations never reallocate it.
func NewEngine() *Engine {
	return &Engine{events: make(eventHeap, 0, 1024)}
}

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after the given delay (>= 0) in milliseconds.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the given absolute time; times in the past run "now".
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(event{time: t, seq: e.seq, fn: fn})
	if n := len(e.events); n > e.heapPeak {
		e.heapPeak = n
	}
}

// Run processes events until the queue empties or the clock passes until
// (milliseconds). Events scheduled exactly at until are executed.
func (e *Engine) Run(until float64) {
	for len(e.events) > 0 {
		if e.events[0].time > until {
			break
		}
		next := e.events.pop()
		e.now = next.time
		e.processed++
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Pending returns the number of queued events (for tests and diagnostics).
func (e *Engine) Pending() int { return len(e.events) }

// EngineStats is the engine's self-telemetry, reported through the
// simulation Result and mirrored into the erms.self.* namespace by the
// control plane's observability layer. All values are deterministic for a
// fixed seed.
type EngineStats struct {
	// Events is the number of events executed.
	Events int64
	// HeapPeak is the high-water pending-event depth.
	HeapPeak int
}

// Stats returns the engine's counters so far.
func (e *Engine) Stats() EngineStats {
	return EngineStats{Events: e.processed, HeapPeak: e.heapPeak}
}
