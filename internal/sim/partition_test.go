package sim

import (
	"fmt"
	"strings"
	"testing"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/parallel"
	"erms/internal/workload"
)

// lockstepScenario parameterizes the multi-group topology the partition and
// fidelity tests share: `services` service graphs in sharing blocks of
// `block` (each block's pool microservices are shared only within the block,
// so the run splits into ceil(services/block) partitions).
type lockstepScenario struct {
	services, block  int
	containersPerMS  int
	hosts            int
	ratePerMin       float64
	durationMin      float64
	seed             uint64
	observer         SpanObserver
	failures         []Failure
	streamsOnFirst   bool
	closedUsersFirst int // >0: service 0 becomes closed-loop with this many users
}

// build constructs a fresh Config (fresh cluster — simulation mutates
// container usage, so every run needs its own).
func (s lockstepScenario) build(t testing.TB) Config {
	t.Helper()
	if s.containersPerMS <= 0 {
		s.containersPerMS = 2
	}
	if s.hosts <= 0 {
		s.hosts = 8
	}
	if s.durationMin <= 0 {
		s.durationMin = 2
	}
	const poolPerBlock = 3
	cl := cluster.New(s.hosts, cluster.HostSpec{Cores: 32, MemGB: 64})
	profiles := make(map[string]ServiceProfile)
	patterns := make(map[string]workload.Pattern)
	slas := make(map[string]workload.SLA)
	closed := make(map[string]int)
	var graphs []*graph.Graph
	var streams []Stream
	var msOrder []string
	for i := 0; i < s.services; i++ {
		b := i / s.block
		svc := fmt.Sprintf("svc-%03d", i)
		entry := fmt.Sprintf("entry-%03d", i)
		profiles[entry] = ServiceProfile{BaseMs: 0.8, CV: 0.4}
		msOrder = append(msOrder, entry)
		g := graph.New(svc, entry)
		pool := func(k int) string {
			name := fmt.Sprintf("pool-%02d-%d", b, k%poolPerBlock)
			if _, ok := profiles[name]; !ok {
				profiles[name] = ServiceProfile{BaseMs: 1.2, CV: 0.5}
				msOrder = append(msOrder, name)
			}
			return name
		}
		kids := g.AddStage(g.Root, pool(i), pool(i+1))
		g.AddStage(kids[0], pool(i+2))
		graphs = append(graphs, g)
		patterns[svc] = workload.Static{Rate: s.ratePerMin}
		slas[svc] = workload.P95SLA(svc, 60)
		switch {
		case i == 0 && s.closedUsersFirst > 0:
			closed[svc] = s.closedUsersFirst
			delete(patterns, svc)
		case i == 0 && s.streamsOnFirst:
			delete(patterns, svc)
			streams = append(streams,
				Stream{Cohort: "crit", Service: svc, Tier: workload.TierCritical, Pattern: workload.Static{Rate: s.ratePerMin * 0.6}},
				Stream{Cohort: "shed", Service: svc, Tier: workload.TierSheddable, Pattern: workload.Static{Rate: s.ratePerMin * 0.4}},
			)
		}
	}
	host := 0
	for _, ms := range msOrder {
		for c := 0; c < s.containersPerMS; c++ {
			spec := cluster.ContainerSpec{Microservice: ms, CPU: 0.1, MemMB: 200, Threads: 4}
			if _, err := cl.Place(spec, host%s.hosts); err != nil {
				t.Fatalf("place %s: %v", ms, err)
			}
			host++
		}
	}
	return Config{
		Seed:           s.seed,
		Cluster:        cl,
		Interference:   cluster.DefaultInterference,
		Profiles:       profiles,
		Graphs:         graphs,
		Patterns:       patterns,
		SLAs:           slas,
		DurationMin:    s.durationMin,
		WarmupMin:      0.5,
		NetworkDelayMs: 0.05,
		Observer:       s.observer,
		Failures:       s.failures,
		ClosedUsers:    closed,
		Streams:        streams,
	}
}

// fingerprint renders every observable field of a Result (including the
// unexported latency reservoirs) to a canonical string, so byte-identity
// comparisons catch any divergence.
func fingerprint(res *Result, spans []CallRecord) string {
	var sb strings.Builder
	var svcs []string
	for svc := range res.PerService {
		svcs = append(svcs, svc)
	}
	sortStrings(svcs)
	for _, svc := range svcs {
		sr := res.PerService[svc]
		fmt.Fprintf(&sb, "svc %s count=%d viol=%d err=%d lat=%v\n", svc, sr.Count, sr.Violations, sr.Errors, sr.lat.Values())
	}
	for _, s := range res.Samples {
		fmt.Fprintf(&sb, "sample %+v\n", s)
	}
	for _, svc := range svcs {
		var mss []string
		for ms := range res.ServiceMSCalls[svc] {
			mss = append(mss, ms)
		}
		sortStrings(mss)
		for _, ms := range mss {
			fmt.Fprintf(&sb, "calls %s %s %.6f\n", svc, ms, res.ServiceMSCalls[svc][ms])
		}
	}
	fmt.Fprintf(&sb, "engine %+v data %+v simmin=%v parts=%d fluidcm=%d exactcm=%d\n",
		res.Engine, res.Data, res.SimulatedMin, res.Partitions, res.FluidContainerMinutes, res.ExactContainerMinutes)
	for _, sr := range res.PerStream {
		fmt.Fprintf(&sb, "stream %s c=%d v=%d e=%d shed=%d lat=%v\n", sr.Cohort, sr.Count, sr.Violations, sr.Errors, sr.Shed, sr.lat.Values())
	}
	for _, sm := range res.StreamMinutes {
		fmt.Fprintf(&sb, "streammin %+v\n", sm)
	}
	for _, r := range spans {
		fmt.Fprintf(&sb, "span %+v\n", r)
	}
	return sb.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

type recObserver struct {
	recs []CallRecord
}

func (r *recObserver) ObserveCall(c CallRecord) { r.recs = append(r.recs, c) }

// TestRunPartitionedExactIdenticalAcrossWorkersAndPartitions is the PR's
// headline determinism contract: in exact mode, the partitioned engine's
// full observable output — latency reservoirs, minute samples, call rates,
// stream rows, replayed spans — is byte-identical whether the partitions
// run on one worker or four, and whatever the Partitions cap.
func TestRunPartitionedExactIdenticalAcrossWorkersAndPartitions(t *testing.T) {
	defer parallel.SetWorkers(0)
	run := func(workers, partitions int) string {
		parallel.SetWorkers(workers)
		obs := &recObserver{}
		sc := lockstepScenario{
			services: 9, block: 3, ratePerMin: 600, seed: 42, observer: obs,
			streamsOnFirst: true,
			failures: []Failure{
				{Microservice: "pool-01-0", Index: 0, AtMin: 0.8, RecoverMin: 1.4},
				{Host: 2, AtMin: 1.1, RecoverMin: 1.6},
			},
		}
		res, err := RunPartitioned(sc.build(t), PartitionOpts{Mode: SimExact, Partitions: partitions})
		if err != nil {
			t.Fatal(err)
		}
		if res.Partitions != 3 {
			t.Fatalf("expected 3 sharing-group partitions, got %d", res.Partitions)
		}
		return fingerprint(res, obs.recs)
	}
	base := run(1, 0)
	for _, tc := range []struct{ workers, partitions int }{{4, 0}, {1, 2}, {4, 2}, {4, 1}} {
		if got := run(tc.workers, tc.partitions); got != base {
			t.Errorf("workers=%d partitions=%d diverges from workers=1 partitions=0", tc.workers, tc.partitions)
		}
	}
}

// TestRunPartitionedHybridDeterministic pins the same invariance for hybrid
// mode (the fluid fast path must not introduce worker-count dependence), and
// that the fast path actually engaged.
func TestRunPartitionedHybridDeterministic(t *testing.T) {
	defer parallel.SetWorkers(0)
	run := func(workers, partitions int) string {
		parallel.SetWorkers(workers)
		sc := lockstepScenario{services: 6, block: 2, ratePerMin: 600, seed: 7}
		res, err := RunPartitioned(sc.build(t), PartitionOpts{Mode: SimHybrid, Partitions: partitions})
		if err != nil {
			t.Fatal(err)
		}
		if res.FluidContainerMinutes == 0 {
			t.Fatal("hybrid run never used the fluid fast path")
		}
		return fingerprint(res, nil)
	}
	base := run(1, 0)
	for _, tc := range []struct{ workers, partitions int }{{4, 0}, {4, 2}} {
		if got := run(tc.workers, tc.partitions); got != base {
			t.Errorf("hybrid workers=%d partitions=%d diverges", tc.workers, tc.partitions)
		}
	}
}

// TestRunPartitionedSingleGroupMatchesSerial pins the degenerate case: one
// sharing group falls back to the single-stream engine, so exact partitioned
// output is byte-identical to Runtime.Run — including the original cluster
// being simulated in place (no clone).
func TestRunPartitionedSingleGroupMatchesSerial(t *testing.T) {
	sc := lockstepScenario{services: 3, block: 3, ratePerMin: 500, seed: 11}
	rt, err := NewRuntime(sc.build(t))
	if err != nil {
		t.Fatal(err)
	}
	serial := fingerprint(rt.Run(), nil)
	res, err := RunPartitioned(sc.build(t), PartitionOpts{Mode: SimExact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 1 {
		t.Fatalf("expected a single partition, got %d", res.Partitions)
	}
	if got := fingerprint(res, nil); got != serial {
		t.Error("single-group partitioned run diverges from the serial engine")
	}
}

// TestRunPartitionedCopiesUsageBack: after a multi-group run, the original
// cluster's container usage must reflect the clones' final state, as a
// serial run would have left it (the controller reads utilization post-run).
func TestRunPartitionedCopiesUsageBack(t *testing.T) {
	sc := lockstepScenario{services: 4, block: 2, ratePerMin: 400, seed: 3}
	cfg := sc.build(t)
	if _, err := RunPartitioned(cfg, PartitionOpts{Mode: SimExact}); err != nil {
		t.Fatal(err)
	}
	for _, c := range cfg.Cluster.Containers() {
		// Post-drain every container is idle; a serial run leaves usage 0.
		if c.CPUUsage() != 0 {
			t.Fatalf("container %d usage %v after run, want 0 (copy-back missing)", c.ID, c.CPUUsage())
		}
	}
}

// TestSharingGroups pins the union-find split itself.
func TestSharingGroups(t *testing.T) {
	sc := lockstepScenario{services: 9, block: 3, ratePerMin: 100, seed: 1}
	cfg := sc.build(t)
	groups := sharingGroups(cfg)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %v", len(groups), groups)
	}
	for gi, grp := range groups {
		want := []int{gi * 3, gi*3 + 1, gi*3 + 2}
		if fmt.Sprint(grp) != fmt.Sprint(want) {
			t.Errorf("group %d = %v, want %v", gi, grp, want)
		}
	}
}
