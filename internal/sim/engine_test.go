package sim

import (
	"testing"

	"erms/internal/stats"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(5, func() { order = append(order, 2) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(9, func() { order = append(order, 3) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 100 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestEngineRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(10.0001, func() { ran++ })
	e.Run(10)
	if ran != 1 {
		t.Fatalf("ran = %d, want exactly the event at the boundary", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(11)
	if ran != 2 {
		t.Fatalf("ran = %d after second Run", ran)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() { times = append(times, e.Now()) })
	})
	e.Run(10)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestEngineNegativeDelayClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5, func() {
		e.Schedule(-10, func() { fired = true })
	})
	e.Run(5)
	if !fired {
		t.Fatal("past-scheduled event did not run")
	}
	if e.Now() != 5 {
		t.Fatalf("clock moved backwards: %v", e.Now())
	}
}

func TestFCFSPicksOldest(t *testing.T) {
	q := []*Job{{Priority: 5}, {Priority: 0}}
	if got := (FCFS{}).Pick(q, stats.NewRNG(1)); got != 0 {
		t.Fatalf("FCFS picked %d", got)
	}
}

func TestPriorityPolicyStrictWhenDeltaZero(t *testing.T) {
	p := PriorityPolicy{Delta: 0}
	r := stats.NewRNG(1)
	q := []*Job{{Priority: 2}, {Priority: 1}, {Priority: 0}, {Priority: 0}}
	for i := 0; i < 100; i++ {
		if got := p.Pick(q, r); got != 2 {
			t.Fatalf("strict priority picked index %d", got)
		}
	}
}

func TestPriorityPolicyDeltaDistribution(t *testing.T) {
	p := PriorityPolicy{Delta: 0.2}
	r := stats.NewRNG(1)
	q := []*Job{{Priority: 1}, {Priority: 0}}
	high := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.Pick(q, r) == 1 { // index 1 holds priority 0 (highest)
			high++
		}
	}
	frac := float64(high) / n
	if frac < 0.79 || frac > 0.81 {
		t.Fatalf("high-priority share = %v, want ~0.8", frac)
	}
}

func TestPriorityPolicyThreeClasses(t *testing.T) {
	p := PriorityPolicy{Delta: 0.1}
	r := stats.NewRNG(2)
	q := []*Job{{Priority: 2}, {Priority: 1}, {Priority: 0}}
	counts := make([]int, 3)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[q[p.Pick(q, r)].Priority]++
	}
	// Expected: 0.9, 0.09, 0.01.
	want := []float64{0.9, 0.09, 0.01}
	for i, w := range want {
		got := float64(counts[i]) / n
		if got < w*0.8 || got > w*1.2 {
			t.Fatalf("class %d share = %v, want ~%v", i, got, w)
		}
	}
}

func TestPriorityPolicyWithinClassFCFS(t *testing.T) {
	p := PriorityPolicy{Delta: 0}
	r := stats.NewRNG(3)
	first := &Job{Priority: 0}
	q := []*Job{{Priority: 1}, first, {Priority: 0}}
	if got := p.Pick(q, r); q[got] != first {
		t.Fatalf("picked index %d, want the oldest job of the best class", got)
	}
}

func TestPriorityPolicySingleClass(t *testing.T) {
	p := PriorityPolicy{Delta: 0.05}
	r := stats.NewRNG(4)
	q := []*Job{{Priority: 3}, {Priority: 3}}
	for i := 0; i < 50; i++ {
		if got := p.Pick(q, r); got != 0 {
			t.Fatalf("single class picked %d", got)
		}
	}
}
