package sim

import (
	"erms/internal/stats"
	"erms/internal/workload"
)

// Job is one call waiting at or being processed by a container.
type Job struct {
	Service  string
	Priority int // 0 is highest; only meaningful under PriorityPolicy
	Enqueued float64
	// Tier is the SLO tier of the request this call belongs to, inherited
	// from the issuing cohort stream (workload.TierStandard on the untiered
	// Patterns path). Admission control sheds high-factor tiers first.
	Tier workload.Tier

	onServed func()

	// Resilience-only fields; zero on the disabled path.
	// attempt is the issuing client attempt: once it settles (timeout,
	// failure), the server drops the job at dequeue without executing it.
	attempt *attemptState
	// deadline is the absolute per-attempt deadline in ms (0 = none), used
	// by admission control.
	deadline float64
	// onFailed delivers a server-side failure (shed, crash, unavailable) to
	// the client attempt.
	onFailed func(CallErr)
}

// Policy selects which queued job a freed worker thread serves next.
type Policy interface {
	// Pick returns the index of the job to serve from the non-empty queue.
	// Jobs are ordered by arrival (index 0 is the oldest).
	Pick(queue []*Job, r *stats.RNG) int
}

// FCFS serves jobs strictly in arrival order — the default Kubernetes-like
// behaviour at shared microservices (§2.3).
type FCFS struct{}

// Pick returns the oldest job.
func (FCFS) Pick([]*Job, *stats.RNG) int { return 0 }

// PriorityPolicy implements Erms' probabilistic priority scheduling (§5.3.2):
// when a thread frees, the highest-priority class present is served with
// probability 1-Delta, the next with probability Delta*(1-Delta), and so on;
// the lowest class receives the residual probability. Within a class, jobs
// are FCFS. Delta=0 degenerates to strict priority.
type PriorityPolicy struct {
	Delta float64
}

// Pick samples a priority class geometrically and serves its oldest job.
func (p PriorityPolicy) Pick(queue []*Job, r *stats.RNG) int {
	// Collect distinct priority classes present, in ascending (best-first)
	// order, remembering the oldest job index per class. Queues are short in
	// practice (bounded by burst size), so a linear scan is fine.
	type class struct {
		prio  int
		first int
	}
	var classes []class
	for i, j := range queue {
		found := false
		for k := range classes {
			if classes[k].prio == j.Priority {
				found = true
				break
			}
		}
		if !found {
			classes = append(classes, class{prio: j.Priority, first: i})
		}
	}
	// Insertion sort by priority (few classes).
	for i := 1; i < len(classes); i++ {
		for k := i; k > 0 && classes[k].prio < classes[k-1].prio; k-- {
			classes[k], classes[k-1] = classes[k-1], classes[k]
		}
	}
	if len(classes) == 1 {
		return classes[0].first
	}
	u := r.Float64()
	acc := 0.0
	for i := 0; i < len(classes)-1; i++ {
		p := (1 - p.Delta) * pow(p.Delta, i)
		acc += p
		if u < acc {
			return classes[i].first
		}
	}
	return classes[len(classes)-1].first
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}
