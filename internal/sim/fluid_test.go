package sim

import (
	"math"
	"testing"
)

// TestHybridFidelity is the regression table guarding the fluid fast path:
// on a far-from-knee topology, hybrid per-service P95 and violation rate
// must stay within tolerance of the exact discrete engine, while actually
// serving a majority of container-minutes from the analytic model.
func TestHybridFidelity(t *testing.T) {
	cases := []struct {
		name       string
		sc         lockstepScenario
		p95RelTol  float64 // |hybrid-exact|/exact on P95
		violAbsTol float64 // absolute violation-rate difference
	}{
		{"light load", lockstepScenario{services: 6, block: 2, ratePerMin: 300, seed: 21, durationMin: 3}, 0.30, 0.05},
		{"moderate load", lockstepScenario{services: 6, block: 3, ratePerMin: 900, seed: 22, durationMin: 3}, 0.30, 0.05},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exact, err := RunPartitioned(tc.sc.build(t), PartitionOpts{Mode: SimExact})
			if err != nil {
				t.Fatal(err)
			}
			hybrid, err := RunPartitioned(tc.sc.build(t), PartitionOpts{Mode: SimHybrid})
			if err != nil {
				t.Fatal(err)
			}
			if hybrid.FluidContainerMinutes == 0 {
				t.Fatal("fluid path never engaged; fidelity table is vacuous")
			}
			if hybrid.FluidContainerMinutes <= hybrid.ExactContainerMinutes {
				t.Errorf("fluid %d <= exact %d container-minutes; expected fluid majority on this topology",
					hybrid.FluidContainerMinutes, hybrid.ExactContainerMinutes)
			}
			for svc, ex := range exact.PerService {
				hy := hybrid.PerService[svc]
				if hy == nil {
					t.Errorf("%s: missing from hybrid result", svc)
					continue
				}
				if ex.Count == 0 {
					continue
				}
				exP95, hyP95 := ex.P95(), hy.P95()
				if exP95 > 0 {
					if rel := math.Abs(hyP95-exP95) / exP95; rel > tc.p95RelTol {
						t.Errorf("%s: P95 exact=%.3fms hybrid=%.3fms rel diff %.2f > %.2f",
							svc, exP95, hyP95, rel, tc.p95RelTol)
					}
				}
				if d := math.Abs(hy.ViolationRate() - ex.ViolationRate()); d > tc.violAbsTol {
					t.Errorf("%s: violation rate exact=%.4f hybrid=%.4f diff %.4f > %.4f",
						svc, ex.ViolationRate(), hy.ViolationRate(), d, tc.violAbsTol)
				}
				// Throughput is conserved: the fluid path must not drop or
				// duplicate requests.
				if hy.Count+hy.Errors != ex.Count+ex.Errors {
					t.Errorf("%s: completed %d (hybrid) vs %d (exact)", svc, hy.Count+hy.Errors, ex.Count+ex.Errors)
				}
			}
		})
	}
}

// TestFluidEligibility pins when the analytic model may and may not be used.
func TestFluidEligibility(t *testing.T) {
	t.Run("cold topology goes fully fluid", func(t *testing.T) {
		sc := lockstepScenario{services: 4, block: 2, ratePerMin: 200, seed: 5}
		res, err := RunPartitioned(sc.build(t), PartitionOpts{Mode: SimHybrid})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExactContainerMinutes != 0 {
			t.Errorf("cold topology kept %d exact container-minutes, want 0", res.ExactContainerMinutes)
		}
	})
	t.Run("near-knee containers stay exact", func(t *testing.T) {
		// One 4-thread container per microservice at 40k req/min puts every
		// microservice's per-server utilization above 0.13; with RhoMax
		// below that, everything must be simulated discretely.
		sc := lockstepScenario{services: 2, block: 2, containersPerMS: 1, ratePerMin: 40000, seed: 5, durationMin: 1}
		res, err := RunPartitioned(sc.build(t), PartitionOpts{
			Mode:  SimHybrid,
			Fluid: &FluidConfig{RhoMax: 0.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.FluidContainerMinutes != 0 {
			t.Errorf("hot topology used the fluid path for %d container-minutes, want 0", res.FluidContainerMinutes)
		}
	})
	t.Run("resilience pins everything exact", func(t *testing.T) {
		sc := lockstepScenario{services: 4, block: 2, ratePerMin: 200, seed: 5}
		cfg := sc.build(t)
		cfg.Resilience = &Resilience{}
		res, err := RunPartitioned(cfg, PartitionOpts{Mode: SimHybrid})
		if err != nil {
			t.Fatal(err)
		}
		if res.FluidContainerMinutes != 0 {
			t.Errorf("resilience run used the fluid path for %d container-minutes, want 0", res.FluidContainerMinutes)
		}
	})
	t.Run("failures and closed loops pin microservices", func(t *testing.T) {
		sc := lockstepScenario{
			services: 4, block: 4, ratePerMin: 200, seed: 9,
			closedUsersFirst: 5,
			failures: []Failure{
				{Microservice: "pool-00-1", Index: 0, AtMin: 0.5, RecoverMin: 1.0},
			},
		}
		cfg := sc.build(t)
		rt, err := NewRuntime(withFluid(cfg))
		if err != nil {
			t.Fatal(err)
		}
		rt.Run()
		if rt.fl == nil {
			t.Fatal("fluid state missing")
		}
		// The failure-targeted microservice and every microservice reachable
		// from the closed-loop service's graph must be pinned exact.
		for _, ms := range []string{"pool-00-1", "entry-000", "pool-00-0", "pool-00-2"} {
			if !rt.fl.pinned[ms] {
				t.Errorf("%s not pinned", ms)
			}
		}
		// Open-loop services' private entries stay eligible.
		for _, ms := range []string{"entry-001", "entry-002", "entry-003"} {
			if rt.fl.pinned[ms] {
				t.Errorf("%s pinned unexpectedly", ms)
			}
		}
	})
	t.Run("host-scope failure pins every microservice on the host", func(t *testing.T) {
		sc := lockstepScenario{
			services: 2, block: 2, ratePerMin: 200, seed: 9, hosts: 2,
			failures: []Failure{{Host: 0, AtMin: 0.5, RecoverMin: 1.0}},
		}
		cfg := sc.build(t)
		rt, err := NewRuntime(withFluid(cfg))
		if err != nil {
			t.Fatal(err)
		}
		rt.Run()
		pinnedAny := false
		for _, c := range cfg.Cluster.Host(0).Containers() {
			if rt.fl.pinned[c.Spec.Microservice] {
				pinnedAny = true
			} else {
				t.Errorf("%s on failed host not pinned", c.Spec.Microservice)
			}
		}
		if !pinnedAny {
			t.Error("no microservice pinned for host-scope failure")
		}
	})
}

func withFluid(cfg Config) Config {
	fl := FluidConfig{}
	cfg.Fluid = &fl
	return cfg
}
