package sim

import (
	"math"
	"sort"

	"erms/internal/graph"
	"erms/internal/queueing"
	"erms/internal/stats"
	"erms/internal/workload"
)

// FluidConfig tunes the hybrid fluid/discrete fast path (Config.Fluid).
//
// The fidelity contract: each simulated minute, every microservice is
// classified as fluid or exact. A microservice is fluid when its containers'
// M/M/c utilization (arrival rate from the pre-materialized arrival lists,
// service rate from the profile inflated by the current host interference)
// is at or below RhoMax — i.e. the operating point sits well below the
// latency knee, where the analytic queueing model is trustworthy (the same
// observation Erms' piecewise-linear latency models rest on). Fluid calls
// draw their latency from the Erlang-C waiting-time distribution plus the
// profiled service-time distribution instead of queueing per-request events;
// whole fluid subtrees collapse to a single completion event. Near-knee
// microservices, microservices targeted by failure injection, closed-loop
// services' microservices, and every run with Resilience enabled stay exact.
//
// Known approximations, gated by the figSim fidelity harness: fluid calls
// ignore priority-queue ordering (δ-policy) and cross-minute queue carryover,
// per-minute call counts are credited at the subtree root's arrival instant,
// and fluid MinuteSamples synthesize TailMs/MeanMs from the model rather
// than from per-request observations.
type FluidConfig struct {
	// RhoMax is the per-container M/M/c utilization at or below which a
	// microservice is served from the analytic model. Default 0.6 — safely
	// below the knee for the thread counts this repo simulates.
	RhoMax float64
	// TailQuantile is the quantile synthesized into MinuteSample.TailMs for
	// fluid minutes. Default 0.95, matching the exact engine's reservoir
	// quantile.
	TailQuantile float64
	// WaitBoundMs caps analytic waiting-time draws (the exponential branch of
	// the Erlang-C wait is unbounded). Default 10000.
	WaitBoundMs float64
}

func (c FluidConfig) withDefaults() FluidConfig {
	if c.RhoMax <= 0 {
		c.RhoMax = 0.6
	}
	if c.TailQuantile <= 0 || c.TailQuantile >= 1 {
		c.TailQuantile = 0.95
	}
	if c.WaitBoundMs <= 0 {
		c.WaitBoundMs = 10_000
	}
	return c
}

// fluidModel is the per-microservice analytic model for the current minute.
type fluidModel struct {
	erlangC   float64 // P(wait > 0)
	exRate    float64 // conditional wait rate cμ−λ, per ms
	waitBound float64
	baseMs    float64 // uncontended mean service time
	cv        float64
	dist      stats.LogNormal // service-time distribution (unscaled)
	inflation float64         // interference factor at the last refresh
	meanMs    float64         // synthesized MinuteSample.MeanMs
	tailMs    float64         // synthesized MinuteSample.TailMs
	rho       float64
}

// fluidState is the runtime of the fluid fast path. It is rebuilt every
// simulated minute at the flush boundary (refresh), inside the engine's
// single-threaded event loop, so all state is unsynchronized.
type fluidState struct {
	rt       *Runtime
	cfg      FluidConfig
	minutes  int
	disabled bool // Resilience enabled: everything stays exact

	// Static after prepare().
	pinned        map[string]bool      // always-exact microservices
	arrCounts     map[string][]int     // service -> arrivals per minute
	msCallsPerMin map[string][]float64 // ms -> offered calls per minute
	subMS         map[*graph.Node][]string
	msNames       []string

	// Per-minute state, rebuilt by refresh().
	fluid   map[string]bool
	subtree map[*graph.Node]bool
	model   map[string]*fluidModel

	// minuteCalls counts fluid-path calls per microservice in the current
	// minute; flushMinute drains it next to the containers' discrete counts.
	minuteCalls map[string]int

	fluidCM int // container-minutes served from the analytic model
	exactCM int // container-minutes simulated discretely
}

func newFluidState(rt *Runtime) *fluidState {
	return &fluidState{
		rt:            rt,
		cfg:           rt.cfg.Fluid.withDefaults(),
		minutes:       int(rt.cfg.DurationMin),
		pinned:        make(map[string]bool),
		arrCounts:     make(map[string][]int),
		msCallsPerMin: make(map[string][]float64),
		subMS:         make(map[*graph.Node][]string),
		fluid:         make(map[string]bool),
		subtree:       make(map[*graph.Node]bool),
		model:         make(map[string]*fluidModel),
		minuteCalls:   make(map[string]int),
	}
}

// noteArrivals records a service's materialized arrival list; called from
// setup for every open-loop and stream arrival process.
func (f *fluidState) noteArrivals(svc string, arr []float64) {
	counts := f.arrCounts[svc]
	if counts == nil {
		counts = make([]int, f.minutes)
		f.arrCounts[svc] = counts
	}
	for _, t := range arr {
		m := int(t / 60_000)
		if m >= f.minutes {
			m = f.minutes - 1
		}
		counts[m]++
	}
}

// prepare finalizes the static eligibility inputs once all arrivals are
// known: the pinned set, the per-microservice offered load per minute, and
// the per-node subtree microservice lists.
func (f *fluidState) prepare() {
	rt := f.rt
	if rt.res != nil {
		// The resilience fault model (retries, breakers, shedding, crash
		// semantics) is inherently per-request; the fluid path would erase
		// it. Everything stays exact.
		f.disabled = true
		f.exactCM = len(rt.states) * f.minutes
		return
	}
	// Pin closed-loop services' whole graphs (their offered load is unknown
	// a priori) and every microservice touched by failure injection. Pinning
	// at microservice granularity also guarantees a fluid microservice never
	// receives discrete jobs from a pinned service sharing it — the mixing
	// would let discrete arrivals see none of the fluid load.
	hostHit := make(map[int]bool)
	for _, fail := range rt.cfg.Failures {
		if fail.Microservice != "" {
			f.pinned[fail.Microservice] = true
		} else {
			hostHit[fail.Host] = true
		}
	}
	for _, g := range rt.cfg.Graphs {
		closed := false
		if _, ok := rt.cfg.ClosedUsers[g.Service]; ok {
			if _, streamed := rt.streamsBySvc[g.Service]; !streamed {
				closed = true
			}
		}
		for _, ms := range g.Microservices() {
			if closed {
				f.pinned[ms] = true
				continue
			}
			if len(hostHit) > 0 {
				for _, cs := range rt.byMS[ms] {
					if hostHit[cs.c.Host.ID] {
						f.pinned[ms] = true
						break
					}
				}
			}
		}
	}
	for ms := range rt.byMS {
		f.msNames = append(f.msNames, ms)
		counts := f.msCallsPerMin[ms]
		if counts == nil {
			f.msCallsPerMin[ms] = make([]float64, f.minutes)
		}
	}
	sort.Strings(f.msNames)
	for _, g := range rt.cfg.Graphs {
		arr := f.arrCounts[g.Service]
		if arr == nil {
			continue
		}
		// Node multiplicity: each request visits every node of the graph
		// once (barring failures, which pin their microservices anyway).
		mult := make(map[string]int)
		for _, n := range g.PreOrder() {
			mult[n.Microservice]++
		}
		for ms, k := range mult {
			counts := f.msCallsPerMin[ms]
			if counts == nil {
				continue // containers exist but ms not placed? defensive
			}
			for m, c := range arr {
				counts[m] += float64(c * k)
			}
		}
		var flatten func(n *graph.Node) []string
		flatten = func(n *graph.Node) []string {
			out := []string{n.Microservice}
			for _, st := range n.Stages {
				for _, c := range st {
					out = append(out, flatten(c)...)
				}
			}
			return out
		}
		for _, n := range g.PreOrder() {
			f.subMS[n] = flatten(n)
		}
	}
}

// refresh reclassifies every microservice for minute m and re-fits the fluid
// models against the interference level observed at the minute boundary.
func (f *fluidState) refresh(m int) {
	if f.disabled || m >= f.minutes {
		return
	}
	rt := f.rt
	for ms := range f.fluid {
		delete(f.fluid, ms)
	}
	for n := range f.subtree {
		delete(f.subtree, n)
	}
	for _, ms := range f.msNames {
		states := rt.byMS[ms]
		if f.pinned[ms] {
			f.exactCM += len(states)
			continue
		}
		prof := rt.cfg.Profiles[ms]
		infl := 1.0
		for _, cs := range states {
			if v := rt.cfg.Interference.HostInflation(cs.c.Host); v > infl {
				infl = v
			}
		}
		lamC := f.msCallsPerMin[ms][m] / 60_000 / float64(len(states))
		threads := states[0].c.Spec.Threads
		md := f.model[ms]
		if md == nil {
			md = &fluidModel{}
			f.model[ms] = md
		}
		if prof.BaseMs <= 0 {
			// Instantaneous service: always fluid, zero latency.
			*md = fluidModel{waitBound: f.cfg.WaitBoundMs}
		} else {
			mu := 1 / (prof.BaseMs * infl)
			q := queueing.MMC{Lambda: lamC, Mu: mu, Servers: threads}
			rho := q.Rho()
			if rho > f.cfg.RhoMax {
				f.exactCM += len(states)
				continue
			}
			meanSvc := prof.BaseMs * infl
			tailSvc := meanSvc
			var dist stats.LogNormal
			if prof.CV > 0 {
				dist = stats.LogNormalFromMeanCV(prof.BaseMs, prof.CV)
				z := math.Sqrt2 * math.Erfinv(2*f.cfg.TailQuantile-1)
				tailSvc = math.Exp(dist.Mu+z*dist.Sigma) * infl
			}
			*md = fluidModel{
				erlangC:   q.ErlangCBounded(),
				exRate:    float64(threads)*mu - lamC,
				waitBound: f.cfg.WaitBoundMs,
				baseMs:    prof.BaseMs,
				cv:        prof.CV,
				dist:      dist,
				inflation: infl,
				meanMs:    q.MeanWaitBounded(f.cfg.WaitBoundMs) + meanSvc,
				tailMs:    q.WaitQuantileBounded(f.cfg.TailQuantile, f.cfg.WaitBoundMs) + tailSvc,
				rho:       rho,
			}
		}
		f.fluid[ms] = true
		f.fluidCM += len(states)
		// Reflect the model's steady-state thread occupancy into host
		// utilization so colocated exact containers see the load.
		for _, cs := range states {
			cs.c.SetCPUUsage(md.rho * cs.c.Spec.CPU)
		}
	}
	for _, g := range rt.cfg.Graphs {
		f.markSubtree(g.Root)
	}
}

// markSubtree marks nodes whose entire subtree is fluid this minute; those
// calls collapse to one completion event.
func (f *fluidState) markSubtree(n *graph.Node) bool {
	ok := f.fluid[n.Microservice]
	for _, st := range n.Stages {
		for _, c := range st {
			if !f.markSubtree(c) {
				ok = false
			}
		}
	}
	if ok {
		f.subtree[n] = true
	}
	return ok
}

// drawLatency samples one call's latency (wait + service) from the current
// analytic model, consuming the runtime's RNG deterministically.
func (f *fluidState) drawLatency(ms string) float64 {
	md := f.model[ms]
	var wait float64
	if md.erlangC > 0 {
		if u := f.rt.rng.Float64(); u > 1-md.erlangC {
			wait = -math.Log((1-u)/md.erlangC) / md.exRate
			if wait > md.waitBound || math.IsNaN(wait) {
				wait = md.waitBound
			}
		}
	}
	if md.baseMs <= 0 {
		return wait
	}
	svc := md.baseMs * md.inflation
	if md.cv > 0 {
		svc = md.dist.Sample(f.rt.rng) * md.inflation
	}
	return wait + svc
}

// issueFluidCall serves one call of a fluid microservice: a whole-fluid
// subtree collapses to a single completion event (unless the trace is
// sampled — sampled traces keep per-node spans so the profiling pipeline
// still sees them); otherwise the node's own latency is drawn analytically
// and downstream stages execute normally.
func (f *fluidState) issueFluidCall(svc string, tier workload.Tier, traceID int64, sampled bool, n *graph.Node, parentMS string, parentID, stage int, clientSend, serverRecv float64, onDone func()) {
	rt := f.rt
	if !sampled && f.subtree[n] {
		lat := f.subtreeLatency(n)
		f.creditSubtree(svc, n, serverRecv)
		rt.eng.At(serverRecv+lat+rt.cfg.NetworkDelayMs, onDone)
		return
	}
	f.credit(svc, n.Microservice, serverRecv)
	body := rt.serveBody(svc, tier, traceID, sampled, n, parentMS, parentID, stage, 0, nil, clientSend, serverRecv, onDone, nil)
	rt.eng.At(serverRecv+f.drawLatency(n.Microservice), body)
}

// subtreeLatency draws the whole subtree's latency: own wait+service plus,
// per sequential stage, the slowest child subtree including its two network
// hops. All draws happen at decision time, which preserves determinism (one
// engine, one RNG) and is what makes the collapse one event per request.
func (f *fluidState) subtreeLatency(n *graph.Node) float64 {
	total := f.drawLatency(n.Microservice)
	for _, st := range n.Stages {
		var slowest float64
		for _, c := range st {
			lat := 2*f.rt.cfg.NetworkDelayMs + f.subtreeLatency(c)
			if lat > slowest {
				slowest = lat
			}
		}
		total += slowest
	}
	return total
}

// credit accounts one fluid call for the per-minute and per-service-pair
// call counters, mirroring the discrete path's enqueue-time accounting.
func (f *fluidState) credit(svc, ms string, at float64) {
	f.minuteCalls[ms]++
	if at >= f.rt.warmMs {
		if m, ok := f.rt.svcMSCalls[svc]; ok {
			m[ms]++
		}
	}
}

// creditSubtree accounts every node of a collapsed subtree at the root's
// arrival instant.
func (f *fluidState) creditSubtree(svc string, n *graph.Node, at float64) {
	for _, ms := range f.subMS[n] {
		f.credit(svc, ms, at)
	}
}
