package sim

import (
	"fmt"

	"erms/internal/graph"
	"erms/internal/workload"
)

// Resilience enables the data-plane fault model (§DESIGN 4d): per-call
// timeout budgets with deadline propagation, budgeted retries, per-(service,
// microservice) circuit breaking, and optional admission control. A nil
// Config.Resilience (the default) keeps the historical infallible data plane
// — every call completes, runs are byte-identical to earlier releases, and
// the hot path performs no resilience bookkeeping.
type Resilience struct {
	// TimeoutSLAMultiple derives each request's end-to-end deadline from its
	// service SLA: deadline = multiple × SLA threshold. 0 falls back to
	// RequestTimeoutMs; services without an SLA use RequestTimeoutMs too.
	TimeoutSLAMultiple float64
	// RequestTimeoutMs is the absolute end-to-end deadline for services
	// without an SLA-derived one. 0 means no request deadline.
	RequestTimeoutMs float64
	// AttemptTimeoutMs is the default per-attempt timeout on every call edge
	// (overridable per edge via graph.EdgePolicy). 0 bounds attempts only by
	// the propagated request deadline.
	AttemptTimeoutMs float64
	// MaxAttempts caps attempts per call edge (first call + retries).
	// Values below 1 (including the zero value) mean 1: no retries.
	MaxAttempts int
	// RetryBackoffMs is the base retry backoff; attempt k waits
	// RetryBackoffMs·2^k·(1 + RetryJitter·U[0,1)). Default 1.
	RetryBackoffMs float64
	// RetryJitter is the jitter fraction in [0,1] applied to backoff.
	RetryJitter float64
	// RetryBudget is the token-bucket earn rate of each call edge: every
	// success earns RetryBudget tokens (e.g. 0.1 ≈ "retries may add 10% to
	// the success load") and every retry spends one. 0 disables the budget —
	// retries are unbounded, which makes naive retry amplification
	// representable.
	RetryBudget float64
	// RetryBurst caps the token bucket (and is its initial fill). Default 10.
	RetryBurst float64
	// BreakerFailureRate arms a circuit breaker per (service, microservice)
	// pair: the breaker opens when the failure fraction over its sliding
	// window reaches this rate. 0 disables circuit breaking.
	BreakerFailureRate float64
	// BreakerWindow is the sliding window size in call outcomes. Default 32.
	BreakerWindow int
	// BreakerMinSamples is the minimum outcomes in the window before the
	// breaker may trip. Default 10.
	BreakerMinSamples int
	// BreakerCooldownMs is how long an open breaker rejects calls before
	// transitioning to half-open. Default 500.
	BreakerCooldownMs float64
	// BreakerProbes is the number of trial calls admitted while half-open;
	// the first success closes the breaker, a failure re-opens it. Default 1.
	BreakerProbes int
	// Shed enables admission control: a call is rejected at enqueue when its
	// estimated queue wait makes the deadline unreachable, or exceeds
	// ShedMaxWaitMs.
	Shed bool
	// ShedMaxWaitMs is an absolute bound on estimated queue wait (0 = only
	// the deadline-derived bound sheds).
	ShedMaxWaitMs float64
	// TierShedFactors scales admission-control aggressiveness per SLO tier,
	// indexed by workload.Tier: a job's estimated queue wait is multiplied by
	// its tier's factor before the shed comparisons, so tiers with a factor
	// above 1 are shed earlier (they "see" a longer queue) and tiers below 1
	// hold on longer. The all-zero value takes the documented defaults
	// {critical: 0.25, standard: 1, sheddable: 2.5, batch: 4}; standard's
	// factor of exactly 1 keeps runs without tiered streams byte-identical
	// to the historical shed policy.
	TierShedFactors [workload.NumTiers]float64
}

// withDefaults returns a copy with zero values replaced by documented
// defaults.
func (r Resilience) withDefaults() Resilience {
	if r.MaxAttempts < 1 {
		r.MaxAttempts = 1
	}
	if r.RetryBackoffMs <= 0 {
		r.RetryBackoffMs = 1
	}
	if r.RetryBurst <= 0 {
		r.RetryBurst = 10
	}
	if r.BreakerWindow <= 0 {
		r.BreakerWindow = 32
	}
	if r.BreakerMinSamples <= 0 {
		r.BreakerMinSamples = 10
	}
	if r.BreakerCooldownMs <= 0 {
		r.BreakerCooldownMs = 500
	}
	if r.BreakerProbes <= 0 {
		r.BreakerProbes = 1
	}
	if r.TierShedFactors == ([workload.NumTiers]float64{}) {
		r.TierShedFactors = DefaultTierShedFactors
	}
	return r
}

// DefaultTierShedFactors is the default per-tier admission-control scaling:
// batch traffic is shed ~4× earlier than standard, sheddable ~2.5× earlier,
// and critical holds on 4× longer. Standard is exactly 1 so untiered runs
// match the historical shed policy bit for bit.
var DefaultTierShedFactors = [workload.NumTiers]float64{
	workload.TierCritical:  0.25,
	workload.TierStandard:  1,
	workload.TierSheddable: 2.5,
	workload.TierBatch:     4,
}

// validate rejects out-of-range resilience parameters.
func (r *Resilience) validate() error {
	switch {
	case r.TimeoutSLAMultiple < 0:
		return fmt.Errorf("sim: Resilience.TimeoutSLAMultiple %v must be >= 0", r.TimeoutSLAMultiple)
	case r.RequestTimeoutMs < 0:
		return fmt.Errorf("sim: Resilience.RequestTimeoutMs %v must be >= 0", r.RequestTimeoutMs)
	case r.AttemptTimeoutMs < 0:
		return fmt.Errorf("sim: Resilience.AttemptTimeoutMs %v must be >= 0", r.AttemptTimeoutMs)
	case r.RetryJitter < 0 || r.RetryJitter > 1:
		return fmt.Errorf("sim: Resilience.RetryJitter %v must be in [0,1]", r.RetryJitter)
	case r.RetryBudget < 0:
		return fmt.Errorf("sim: Resilience.RetryBudget %v must be >= 0", r.RetryBudget)
	case r.BreakerFailureRate < 0 || r.BreakerFailureRate > 1:
		return fmt.Errorf("sim: Resilience.BreakerFailureRate %v must be in [0,1]", r.BreakerFailureRate)
	case r.ShedMaxWaitMs < 0:
		return fmt.Errorf("sim: Resilience.ShedMaxWaitMs %v must be >= 0", r.ShedMaxWaitMs)
	}
	for t, f := range r.TierShedFactors {
		if f < 0 {
			return fmt.Errorf("sim: Resilience.TierShedFactors[%s] %v must be >= 0", workload.Tier(t), f)
		}
	}
	return nil
}

// CallErr classifies why a call edge failed. ErrNone (the zero value) is
// success.
type CallErr int

// Call outcomes.
const (
	ErrNone CallErr = iota
	// ErrTimeout: the per-attempt timeout expired before the response.
	ErrTimeout
	// ErrDeadline: the propagated request deadline had already expired, so
	// the call failed without executing.
	ErrDeadline
	// ErrCrashed: the serving container crashed with the call in flight.
	ErrCrashed
	// ErrUnavailable: every container of the microservice was down.
	ErrUnavailable
	// ErrBreakerOpen: short-circuited by an open circuit breaker.
	ErrBreakerOpen
	// ErrShed: rejected by admission control at enqueue.
	ErrShed
)

// String names the outcome.
func (e CallErr) String() string {
	switch e {
	case ErrNone:
		return "ok"
	case ErrTimeout:
		return "timeout"
	case ErrDeadline:
		return "deadline"
	case ErrCrashed:
		return "crashed"
	case ErrUnavailable:
		return "unavailable"
	case ErrBreakerOpen:
		return "breaker-open"
	case ErrShed:
		return "shed"
	default:
		return fmt.Sprintf("callerr(%d)", int(e))
	}
}

// retryable reports whether a later attempt could plausibly succeed. Expired
// deadlines cannot recover and retrying into an open breaker would burn
// attempts without touching a server.
func (e CallErr) retryable() bool {
	switch e {
	case ErrTimeout, ErrCrashed, ErrUnavailable, ErrShed:
		return true
	}
	return false
}

// DataStats aggregates the data-plane resilience counters of one run. All
// zeros when resilience is disabled.
type DataStats struct {
	// Attempts counts call attempts issued (first calls + retries).
	Attempts int
	// Timeouts counts per-attempt timeouts that fired.
	Timeouts int
	// Retries counts re-issued attempts.
	Retries int
	// RetryBudgetExhausted counts retries suppressed by an empty token
	// bucket.
	RetryBudgetExhausted int
	// BreakerOpens counts closed/half-open → open transitions.
	BreakerOpens int
	// BreakerShortCircuits counts calls rejected by an open breaker.
	BreakerShortCircuits int
	// Shed counts calls rejected by admission control.
	Shed int
	// ShedByTier splits Shed by the SLO tier of the shed call, indexed by
	// workload.Tier. Untiered runs accumulate everything under
	// workload.TierStandard.
	ShedByTier [workload.NumTiers]int
	// CrashFailures counts in-flight calls failed by a container crash.
	CrashFailures int
	// DeadlineSkips counts calls dropped without executing because the
	// propagated deadline had expired (client side) or the client had
	// already given up while the call queued (server side).
	DeadlineSkips int
	// Unavailable counts calls failed fast because zero containers of the
	// target microservice were up.
	Unavailable int
}

// attemptState is the shared settle guard of one client attempt: the first
// of {response, timeout, failure} to arrive settles it; everything later
// (including the server finishing work the client abandoned) is ignored.
type attemptState struct {
	settled bool
}

// edgeState is the per-call-edge resilience runtime: the resolved policy and
// the retry-budget token bucket.
type edgeState struct {
	timeoutMs   float64 // per-attempt timeout (0 = request deadline only)
	maxAttempts int
	earn        float64 // tokens per success (0 = unbounded retries)
	burst       float64
	tokens      float64
	breaker     *breaker // shared per (service, microservice); nil when off
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the per-(service, microservice) circuit breaker: closed → open
// when the failure fraction over a sliding window of outcomes reaches the
// threshold → half-open probes after a cooldown → closed on probe success.
type breaker struct {
	failureRate float64
	minSamples  int
	cooldownMs  float64
	maxProbes   int

	window []bool // ring buffer of outcomes; true = failure
	idx    int
	filled int
	fails  int

	state    breakerState
	openedAt float64
	probes   int
}

func newBreaker(r *Resilience) *breaker {
	return &breaker{
		failureRate: r.BreakerFailureRate,
		minSamples:  r.BreakerMinSamples,
		cooldownMs:  r.BreakerCooldownMs,
		maxProbes:   r.BreakerProbes,
		window:      make([]bool, r.BreakerWindow),
	}
}

// allow reports whether a call may be issued now, transitioning open →
// half-open after the cooldown and admitting up to maxProbes trial calls.
func (b *breaker) allow(now float64) bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now-b.openedAt < b.cooldownMs {
			return false
		}
		b.state = breakerHalfOpen
		b.probes = 1
		return true
	default: // half-open
		if b.probes < b.maxProbes {
			b.probes++
			return true
		}
		return false
	}
}

// record feeds one executed attempt's outcome into the breaker.
// Short-circuited calls are not recorded — they carry no information about
// the server. Outcomes settling while the breaker is open (attempts launched
// before it tripped) are ignored.
func (b *breaker) record(now float64, failed bool, data *DataStats) {
	switch b.state {
	case breakerOpen:
		return
	case breakerHalfOpen:
		if failed {
			b.open(now, data)
		} else {
			b.state = breakerClosed
			b.reset()
		}
		return
	}
	if b.window[b.idx] && b.filled == len(b.window) {
		b.fails--
	}
	b.window[b.idx] = failed
	b.idx = (b.idx + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
	if failed {
		b.fails++
	}
	if b.filled >= b.minSamples && float64(b.fails) >= b.failureRate*float64(b.filled) {
		b.open(now, data)
	}
}

func (b *breaker) open(now float64, data *DataStats) {
	b.state = breakerOpen
	b.openedAt = now
	b.reset()
	data.BreakerOpens++
}

func (b *breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.filled, b.fails, b.probes = 0, 0, 0, 0
}

// buildResilience resolves the per-edge policies and shared breakers for
// every node of every graph. Called once at construction when resilience is
// enabled.
func (rt *Runtime) buildResilience() {
	rt.edges = make(map[*graph.Node]*edgeState)
	rt.breakers = make(map[string]*breaker)
	for _, g := range rt.cfg.Graphs {
		for _, n := range g.PreOrder() {
			e := &edgeState{
				timeoutMs:   rt.res.AttemptTimeoutMs,
				maxAttempts: rt.res.MaxAttempts,
				earn:        rt.res.RetryBudget,
				burst:       rt.res.RetryBurst,
				tokens:      rt.res.RetryBurst,
			}
			if p := n.Policy; p != nil {
				if p.TimeoutMs > 0 {
					e.timeoutMs = p.TimeoutMs
				} else if p.TimeoutMs < 0 {
					e.timeoutMs = 0
				}
				if p.MaxAttempts != 0 {
					e.maxAttempts = p.MaxAttempts
					if e.maxAttempts < 1 {
						e.maxAttempts = 1
					}
				}
			}
			if rt.res.BreakerFailureRate > 0 {
				key := g.Service + "\x00" + n.Microservice
				br, ok := rt.breakers[key]
				if !ok {
					br = newBreaker(rt.res)
					rt.breakers[key] = br
				}
				e.breaker = br
			}
			rt.edges[n] = e
		}
	}
}

// shouldShed is the admission-control decision at enqueue: reject when the
// estimated queue wait already makes the job's deadline unreachable, or
// exceeds the absolute ShedMaxWaitMs bound. The wait estimate is scaled by
// the job's SLO-tier factor before both comparisons, which is what makes
// shedding prefer batch and sheddable traffic over standard and critical:
// under the same queue, a batch job sees a 4× wait and folds early while a
// critical job sees a quarter of it and is admitted.
func (rt *Runtime) shouldShed(cs *containerState, job *Job) bool {
	if !rt.res.Shed {
		return false
	}
	base := rt.cfg.Profiles[cs.c.Spec.Microservice].BaseMs
	wait := float64(len(cs.queue)) * base / float64(cs.c.Spec.Threads)
	if job.Tier.Valid() {
		wait *= rt.res.TierShedFactors[job.Tier]
	}
	if rt.res.ShedMaxWaitMs > 0 && wait > rt.res.ShedMaxWaitMs {
		return true
	}
	return job.deadline > 0 && rt.eng.Now()+wait+base > job.deadline
}
