package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"erms/internal/cluster"
	"erms/internal/graph"
	"erms/internal/stats"
	"erms/internal/workload"
)

// ServiceProfile describes the intrinsic cost of one microservice: the mean
// uncontended processing time per request and its coefficient of variation.
type ServiceProfile struct {
	BaseMs float64 // mean service time in milliseconds on an idle host
	CV     float64 // coefficient of variation of the service time
}

// CallRecord is one completed call between microservices, mirroring the two
// Jaeger spans the paper's tracing stack records per call (§5.1): client
// send/receive and server receive/send timestamps.
type CallRecord struct {
	TraceID            int64
	Service            string
	ParentMicroservice string // "" for the entering call from the client
	Microservice       string
	NodeID             int // position in the dependency graph
	ParentNodeID       int // -1 for the root call
	Stage              int // index of the stage within the parent's calls
	ClientSend         float64
	ServerRecv         float64
	ServerSend         float64
	ClientRecv         float64
}

// SpanObserver receives completed calls of sampled traces.
type SpanObserver interface {
	ObserveCall(CallRecord)
}

// Config configures one simulation run.
type Config struct {
	Seed uint64
	// Cluster supplies hosts and the placed containers. Required.
	Cluster *cluster.Cluster
	// Interference maps host utilization to service-time inflation.
	Interference cluster.InterferenceModel
	// Profiles gives the intrinsic service time per microservice. Required
	// for every microservice appearing in Graphs.
	Profiles map[string]ServiceProfile
	// Graphs holds one dependency graph per online service.
	Graphs []*graph.Graph
	// Patterns gives the offered load per service (requests/minute).
	Patterns map[string]workload.Pattern
	// SLAs optionally enables exact violation counting per service.
	SLAs map[string]workload.SLA
	// Priorities assigns, at each shared microservice, a priority rank per
	// service (0 = highest). Microservices present here use Erms' δ-policy;
	// all others are FCFS.
	Priorities map[string]map[string]int
	// Delta is the probabilistic priority parameter (§5.3.2); 0.05 in the
	// paper.
	Delta float64
	// DurationMin is the simulated duration in minutes. Required.
	DurationMin float64
	// WarmupMin excludes the initial transient from statistics.
	WarmupMin float64
	// NetworkDelayMs is the one-way transmission latency per call.
	NetworkDelayMs float64
	// SampleRate is the trace sampling fraction (default 0.1 as in Jaeger's
	// configuration, §5.1). Only sampled traces reach the Observer.
	SampleRate float64
	// Observer optionally receives spans of sampled traces.
	Observer SpanObserver
	// LatencySampleCap bounds per-minute per-microservice latency samples
	// (reservoir); defaults to 4096.
	LatencySampleCap int
	// Routing selects how calls are balanced across a microservice's
	// containers. The default round-robin matches typical service-mesh
	// upstream behaviour; power-of-two-choices is adaptive (it hides slow
	// containers by steering load away from them).
	Routing Routing
	// Failures injects container outages: each entry takes one container of
	// the microservice down at AtMin and restores it at RecoverMin (0 = no
	// recovery). Queued requests are re-routed to surviving containers. With
	// Resilience disabled, in-flight requests complete silently and a
	// microservice with zero survivors parks new arrivals at its first
	// container until recovery; with Resilience enabled, a crash fails its
	// in-flight requests with a retryable error (ErrCrashed) and zero
	// survivors fail new calls fast (ErrUnavailable).
	Failures []Failure
	// DropMinutes lists simulation minutes whose observability is lost: no
	// MinuteSamples are recorded and no traces starting in those minutes
	// reach the Observer (a collector outage / dropped metric windows). The
	// simulation itself is unaffected — only what the control plane sees.
	DropMinutes []int
	// ClosedUsers switches the listed services to a closed-loop client
	// population (wrk-style): each virtual user cycles request → think →
	// request, so the offered rate self-throttles under saturation instead
	// of growing queues without bound. Services present here ignore their
	// Patterns entry; achieved throughput ≈ users·60000/(think+response).
	ClosedUsers map[string]int
	// ThinkTimeMs is the mean exponential think time between a closed-loop
	// user's requests. Default 1000.
	ThinkTimeMs float64
	// Resilience enables the data-plane fault model: deadline propagation,
	// budgeted retries, circuit breaking, admission control, and crash
	// failure semantics. Nil (the default) keeps the historical infallible
	// data plane — runs are byte-identical to earlier releases.
	Resilience *Resilience
	// Fluid enables the hybrid fluid/discrete fast path: microservices whose
	// containers sit far below their latency knee (per-container M/M/c
	// utilization at or below Fluid.RhoMax, re-evaluated every simulated
	// minute) are served from the analytic queueing model instead of
	// per-request events, while near-knee, failure-targeted, and closed-loop
	// microservices keep exact discrete-event simulation. Nil (the default)
	// keeps the historical exact engine byte for byte. See FluidConfig for
	// the fidelity contract.
	Fluid *FluidConfig
	// Streams replaces Patterns with named client cohorts: each stream is an
	// independent arrival process onto one service, tagged with an SLO tier
	// that the whole request tree inherits (admission control sheds batch and
	// sheddable tiers before standard and critical). A service with at least
	// one stream ignores its Patterns entry; services without streams fall
	// back to Patterns/ClosedUsers. Per-stream outcomes land in
	// Result.PerStream and per-minute in Result.StreamMinutes. Empty (the
	// default) keeps the historical per-service workload model byte for byte.
	Streams []Stream
}

// Stream is one client cohort: an arrival pattern onto a service with an SLO
// tier and an optional cohort-specific SLA for outcome classification
// (falling back to the service SLA in Config.SLAs).
type Stream struct {
	// Cohort names the stream (for results and the timeline artifact).
	Cohort string
	// Service is the target online service; must match one of Config.Graphs.
	Service string
	// Tier is the stream's SLO tier.
	Tier workload.Tier
	// Pattern is the offered load in requests/minute.
	Pattern workload.Pattern
	// SLA optionally overrides the service SLA when classifying this
	// stream's outcomes.
	SLA *workload.SLA
}

// Failure describes one injected outage. Two scopes exist:
//
//   - Container scope (Microservice != ""): the Index-th container of the
//     microservice (ID order) goes down at AtMin and optionally recovers.
//   - Host scope (Microservice == ""): every container on host Host goes
//     down at AtMin — the in-window shadow of a node failure. Recovery, if
//     any, restores the same containers (a node rejoining before the control
//     plane reacts).
type Failure struct {
	Microservice string
	// Index selects which of the microservice's containers fails (by
	// position in ID order). Ignored for host-scoped failures.
	Index int
	// Host selects the failing host for host-scoped failures.
	Host int
	// AtMin / RecoverMin are minutes since simulation start.
	AtMin      float64
	RecoverMin float64
}

// Routing is the load-balancing policy across a microservice's containers.
type Routing int

// Routing policies.
const (
	// RouteRoundRobin cycles through containers in order.
	RouteRoundRobin Routing = iota
	// RouteP2C samples two containers and picks the less loaded one.
	RouteP2C
)

func (c *Config) validate() error {
	if c.Cluster == nil {
		return errors.New("sim: Config.Cluster is required")
	}
	if c.DurationMin <= 0 {
		return errors.New("sim: Config.DurationMin must be positive")
	}
	if c.WarmupMin < 0 {
		return fmt.Errorf("sim: Config.WarmupMin %v must be >= 0", c.WarmupMin)
	}
	if c.WarmupMin >= c.DurationMin {
		return fmt.Errorf("sim: Config.WarmupMin %v must be below DurationMin %v", c.WarmupMin, c.DurationMin)
	}
	if c.SampleRate < 0 || c.SampleRate > 1 {
		return fmt.Errorf("sim: Config.SampleRate %v must be in [0,1]", c.SampleRate)
	}
	if c.NetworkDelayMs < 0 {
		return fmt.Errorf("sim: Config.NetworkDelayMs %v must be >= 0", c.NetworkDelayMs)
	}
	if c.ThinkTimeMs < 0 {
		return fmt.Errorf("sim: Config.ThinkTimeMs %v must be >= 0", c.ThinkTimeMs)
	}
	// Delta is accepted in [0,1]: Delta=0 is the documented strict-priority
	// degeneration of the δ-policy (PriorityPolicy), which the motivation
	// sweeps exercise deliberately.
	if c.Delta < 0 || c.Delta > 1 {
		return fmt.Errorf("sim: Config.Delta %v must be in [0,1]", c.Delta)
	}
	if c.Resilience != nil {
		if err := c.Resilience.validate(); err != nil {
			return err
		}
	}
	if len(c.Graphs) == 0 {
		return errors.New("sim: no dependency graphs")
	}
	streamed := make(map[string]bool, len(c.Streams))
	for i, s := range c.Streams {
		if s.Pattern == nil {
			return fmt.Errorf("sim: Streams[%d] (%q) has no arrival pattern", i, s.Cohort)
		}
		if !s.Tier.Valid() {
			return fmt.Errorf("sim: Streams[%d] (%q) has invalid tier %d", i, s.Cohort, int(s.Tier))
		}
		found := false
		for _, g := range c.Graphs {
			if g.Service == s.Service {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("sim: Streams[%d] (%q) targets unknown service %q", i, s.Cohort, s.Service)
		}
		streamed[s.Service] = true
	}
	for _, g := range c.Graphs {
		if err := g.Validate(); err != nil {
			return err
		}
		if _, ok := c.Patterns[g.Service]; !ok && !streamed[g.Service] {
			if _, closed := c.ClosedUsers[g.Service]; !closed {
				return fmt.Errorf("sim: no workload pattern for service %s", g.Service)
			}
		}
		for _, ms := range g.Microservices() {
			if _, ok := c.Profiles[ms]; !ok {
				return fmt.Errorf("sim: no service profile for microservice %s", ms)
			}
			if len(c.Cluster.ContainersFor(ms)) == 0 {
				return fmt.Errorf("sim: no containers deployed for microservice %s", ms)
			}
		}
	}
	return nil
}

// MinuteSample is the per-minute, per-microservice aggregate the profiling
// pipeline consumes: exactly the tuple d = (L, γ, C, M) of §5.2.
type MinuteSample struct {
	Minute       int
	Microservice string
	// PerContainerCalls is γ: calls processed per container in this minute.
	PerContainerCalls float64
	// TailMs is the P95 of the microservice latency (queue + processing) of
	// calls completed this minute.
	TailMs float64
	// MeanMs is the mean microservice latency this minute.
	MeanMs float64
	// CPUUtil / MemUtil are the average utilizations of hosts holding this
	// microservice's containers, time-averaged over the minute.
	CPUUtil float64
	MemUtil float64
	// Calls is the raw number of completed calls.
	Calls int
	// Containers is the number of deployed containers.
	Containers int
}

// ServiceResult aggregates end-to-end request outcomes for one service,
// split along the workload.Outcome taxonomy: Count-Violations successes,
// Violations slow completions, Errors outright failures.
type ServiceResult struct {
	Service    string
	Count      int // completed requests (success + slow)
	Violations int // requests exceeding the SLA threshold (if an SLA was set)
	// Errors counts requests that failed outright (deadline expired, retries
	// exhausted, breaker open, shed, or crash). Always 0 with resilience
	// disabled. Failed requests contribute no latency sample.
	Errors int

	lat *stats.Reservoir
}

// P95 returns the 95th-percentile end-to-end latency in milliseconds.
func (s *ServiceResult) P95() float64 { return s.lat.Quantile(0.95) }

// P99 returns the 99th-percentile end-to-end latency.
func (s *ServiceResult) P99() float64 { return s.lat.Quantile(0.99) }

// Quantile returns an arbitrary end-to-end latency quantile.
func (s *ServiceResult) Quantile(q float64) float64 { return s.lat.Quantile(q) }

// Mean returns the mean end-to-end latency.
func (s *ServiceResult) Mean() float64 { return stats.Mean(s.lat.Values()) }

// ViolationRate returns the fraction of requests that missed their SLA:
// slow completions plus errors over everything issued. With resilience
// disabled (Errors == 0) this is Violations/Count, exactly as before.
func (s *ServiceResult) ViolationRate() float64 {
	total := s.Count + s.Errors
	if total == 0 {
		return 0
	}
	return float64(s.Violations+s.Errors) / float64(total)
}

// ErrorRate returns the fraction of requests that failed outright.
func (s *ServiceResult) ErrorRate() float64 {
	total := s.Count + s.Errors
	if total == 0 {
		return 0
	}
	return float64(s.Errors) / float64(total)
}

// Good returns the number of requests completed within the SLA threshold —
// the numerator of goodput.
func (s *ServiceResult) Good() int { return s.Count - s.Violations }

// StreamResult aggregates end-to-end outcomes for one cohort stream, using
// the stream's own SLA when set (the service SLA otherwise).
type StreamResult struct {
	Cohort  string
	Service string
	Tier    workload.Tier
	// Count is completed requests (success + slow); Violations the slow
	// subset; Errors outright failures; Shed the subset of Errors whose
	// final failure was admission-control rejection.
	Count      int
	Violations int
	Errors     int
	Shed       int

	lat *stats.Reservoir
}

// P95 returns the stream's 95th-percentile end-to-end latency.
func (s *StreamResult) P95() float64 { return s.lat.Quantile(0.95) }

// Quantile returns an arbitrary end-to-end latency quantile.
func (s *StreamResult) Quantile(q float64) float64 { return s.lat.Quantile(q) }

// Good returns requests completed within the stream's SLA.
func (s *StreamResult) Good() int { return s.Count - s.Violations }

// ViolationRate returns the fraction of issued requests that missed the SLA
// (slow completions plus errors).
func (s *StreamResult) ViolationRate() float64 {
	total := s.Count + s.Errors
	if total == 0 {
		return 0
	}
	return float64(s.Violations+s.Errors) / float64(total)
}

// ErrorRate returns the fraction of issued requests that failed outright.
func (s *StreamResult) ErrorRate() float64 {
	total := s.Count + s.Errors
	if total == 0 {
		return 0
	}
	return float64(s.Errors) / float64(total)
}

// StreamMinute is the per-minute outcome row of one stream, the raw material
// of the spec runner's timeline artifact. Issued counts requests that
// started in the minute; Completed/Good/Slow/Errors/Shed count requests
// whose outcome landed in the minute (a request issued late in minute m may
// complete in m+1).
type StreamMinute struct {
	Minute int
	// Stream indexes Config.Streams / Result.PerStream.
	Stream int
	Issued int
	// Completed = Good + Slow.
	Completed int
	Good      int
	Slow      int
	Errors    int
	// Shed is the subset of Errors rejected by admission control.
	Shed int
}

// Result is the outcome of a simulation run.
type Result struct {
	// PerService holds end-to-end latency statistics keyed by service.
	PerService map[string]*ServiceResult
	// Samples holds the per-minute profiling aggregates in time order.
	Samples []MinuteSample
	// ServiceMSCalls[svc][ms] is the observed call rate (calls per minute,
	// averaged over the measured window) that service svc imposed on
	// microservice ms — the γ_{k,i} of the multiplexing model (§5.3.2).
	ServiceMSCalls map[string]map[string]float64
	// SimulatedMin is the measured (post-warmup) duration in minutes.
	SimulatedMin float64
	// Engine is the event engine's self-telemetry for the run, deterministic
	// for a fixed seed.
	Engine RunStats
	// Data holds the data-plane resilience counters (all zero when
	// Config.Resilience is nil).
	Data DataStats
	// PerStream holds one result per Config.Streams entry, index-aligned.
	// Nil when no streams are configured.
	PerStream []*StreamResult
	// StreamMinutes holds per-minute, per-stream outcome rows in (minute,
	// stream) order — only minutes past the warmup and not dropped. Nil when
	// no streams are configured.
	StreamMinutes []StreamMinute
	// Partitions is the number of sharing-group partitions the run was split
	// into: 1 for any single-stream run, ≥ 1 for RunPartitioned.
	Partitions int
	// FluidContainerMinutes / ExactContainerMinutes decompose container
	// simulation time by fidelity: one unit is one container simulated for
	// one minute on the fluid (analytic) or exact (discrete-event) path.
	// Without Config.Fluid every container-minute is exact.
	FluidContainerMinutes int
	ExactContainerMinutes int
}

// RunStats bundles the run's engine counters with the job free-list's
// recycling balance (how many Job records were heap-allocated versus reused).
type RunStats struct {
	EngineStats
	// JobsAllocated counts Job records taken from the heap rather than the
	// free list; JobsRecycled counts returns to the free list.
	JobsAllocated int
	JobsRecycled  int
}

// containerState is the runtime queueing state of one placed container.
type containerState struct {
	c      *cluster.Container
	busy   int
	queue  []*Job
	policy Policy
	// down marks an injected outage: the container accepts no new work.
	down bool
	// minuteCalls counts calls routed here in the current minute.
	minuteCalls int
	// gen counts crashes (resilience only). Completion events capture the
	// generation they started under; a mismatch at fire time means the crash
	// already failed the job and the event is stale.
	gen int
	// inflight tracks jobs being processed (resilience only), so a crash can
	// fail them at the crash instant.
	inflight []*Job
}

func (cs *containerState) inSystem() int { return cs.busy + len(cs.queue) }

// Runtime executes one simulation.
type Runtime struct {
	cfg Config
	eng *Engine
	rng *stats.RNG

	states map[int]*containerState
	byMS   map[string][]*containerState

	// per-minute accumulation
	latByMS    map[string]*stats.Reservoir
	svcMSCalls map[string]map[string]int
	warmMs     float64
	rrNext     map[string]int
	dropMin    map[int]bool

	// jobFree recycles Job records: a job becomes unreachable as soon as its
	// onServed callback has been taken in startJob's completion event, so the
	// record returns here instead of to the GC. The runtime is single-
	// threaded (one engine, one goroutine), so a plain slice suffices.
	jobFree []*Job

	nextTrace int64
	result    *Result

	jobsAllocated int
	jobsRecycled  int

	// Resilience runtime (nil/zero when disabled — the hot path only pays
	// `rt.res != nil` checks).
	res      *Resilience
	edges    map[*graph.Node]*edgeState
	breakers map[string]*breaker
	data     DataStats

	// Cohort-stream runtime (nil when Config.Streams is empty).
	streamsBySvc map[string][]int
	streamAcc    []streamMinuteAcc

	// Fluid fast-path runtime (nil when Config.Fluid is nil — the exact
	// engine pays only `rt.fl != nil` checks).
	fl *fluidState
}

// streamMinuteAcc accumulates one stream's outcomes within the current
// minute; flushMinute drains it into Result.StreamMinutes.
type streamMinuteAcc struct {
	issued, completed, good, slow, errors, shed int
}

// getJob takes a Job from the free list (or allocates one).
func (rt *Runtime) getJob(svc string, enqueued float64) *Job {
	if n := len(rt.jobFree); n > 0 {
		j := rt.jobFree[n-1]
		rt.jobFree = rt.jobFree[:n-1]
		j.Service = svc
		j.Priority = 0
		j.Enqueued = enqueued
		return j
	}
	rt.jobsAllocated++
	return &Job{Service: svc, Enqueued: enqueued}
}

// putJob recycles a Job whose service callback has been detached.
func (rt *Runtime) putJob(j *Job) {
	j.onServed = nil
	j.onFailed = nil
	j.attempt = nil
	j.deadline = 0
	rt.jobFree = append(rt.jobFree, j)
	rt.jobsRecycled++
}

// failJob recycles the job and delivers a server-side failure to its client
// attempt; the rejection still crosses the network back.
func (rt *Runtime) failJob(j *Job, err CallErr) {
	fail := j.onFailed
	rt.putJob(j)
	if fail != nil {
		rt.eng.Schedule(rt.cfg.NetworkDelayMs, func() { fail(err) })
	}
}

// NewRuntime validates the configuration and prepares a runtime.
func NewRuntime(cfg Config) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 0.1
	}
	if cfg.LatencySampleCap <= 0 {
		cfg.LatencySampleCap = 4096
	}
	rt := &Runtime{
		cfg:        cfg,
		eng:        NewEngine(),
		rng:        stats.NewRNG(cfg.Seed),
		states:     make(map[int]*containerState),
		byMS:       make(map[string][]*containerState),
		latByMS:    make(map[string]*stats.Reservoir),
		svcMSCalls: make(map[string]map[string]int),
		warmMs:     cfg.WarmupMin * 60_000,
		rrNext:     make(map[string]int),
		dropMin:    make(map[int]bool, len(cfg.DropMinutes)),
		result: &Result{
			PerService:     make(map[string]*ServiceResult),
			ServiceMSCalls: make(map[string]map[string]float64),
		},
	}
	for _, m := range cfg.DropMinutes {
		rt.dropMin[m] = true
	}
	if cfg.Resilience != nil {
		res := cfg.Resilience.withDefaults()
		rt.res = &res
		rt.buildResilience()
	}
	for _, c := range cfg.Cluster.Containers() {
		var pol Policy = FCFS{}
		if _, shared := cfg.Priorities[c.Spec.Microservice]; shared {
			pol = PriorityPolicy{Delta: cfg.Delta}
		}
		cs := &containerState{c: c, policy: pol}
		rt.states[c.ID] = cs
		rt.byMS[c.Spec.Microservice] = append(rt.byMS[c.Spec.Microservice], cs)
	}
	for _, g := range cfg.Graphs {
		rt.result.PerService[g.Service] = &ServiceResult{
			Service: g.Service,
			lat:     stats.NewReservoir(1<<15, rt.rng.Split()),
		}
		rt.svcMSCalls[g.Service] = make(map[string]int)
	}
	if cfg.Fluid != nil {
		rt.fl = newFluidState(rt)
	}
	if len(cfg.Streams) > 0 {
		rt.streamsBySvc = make(map[string][]int)
		rt.streamAcc = make([]streamMinuteAcc, len(cfg.Streams))
		rt.result.PerStream = make([]*StreamResult, len(cfg.Streams))
		for i, s := range cfg.Streams {
			rt.result.PerStream[i] = &StreamResult{
				Cohort:  s.Cohort,
				Service: s.Service,
				Tier:    s.Tier,
				lat:     stats.NewReservoir(1<<15, rt.rng.Split()),
			}
			rt.streamsBySvc[s.Service] = append(rt.streamsBySvc[s.Service], i)
		}
	}
	return rt, nil
}

// streamSLA resolves the SLA a stream's outcomes are classified against.
func (rt *Runtime) streamSLA(si int) (workload.SLA, bool) {
	if s := rt.cfg.Streams[si].SLA; s != nil {
		return *s, true
	}
	sla, ok := rt.cfg.SLAs[rt.cfg.Streams[si].Service]
	return sla, ok
}

// Run executes the simulation and returns aggregated results.
func (rt *Runtime) Run() *Result {
	rt.setup()
	// Run past the nominal end so in-flight requests complete.
	rt.advanceTo(rt.cfg.DurationMin*60_000 + drainMs)
	return rt.finish()
}

// drainMs is how far past the nominal end the engine runs so in-flight
// requests complete.
const drainMs = 10 * 60_000

// setup schedules the whole workload — arrivals, failures, minute ticks —
// without executing any of it. Run is setup + advanceTo(end) + finish;
// RunPartitioned interleaves advanceTo calls across partitions at minute
// boundaries instead.
func (rt *Runtime) setup() {
	endMs := rt.cfg.DurationMin * 60_000
	warmMs := rt.cfg.WarmupMin * 60_000

	// Schedule request arrivals per service: open-loop Poisson replay by
	// default, or a closed-loop user population where configured. Services
	// with cohort streams run one independent arrival process per stream
	// (each with its own split RNG, in stream-index order) instead.
	for _, g := range rt.cfg.Graphs {
		g := g
		if idxs, ok := rt.streamsBySvc[g.Service]; ok {
			for _, si := range idxs {
				arr := workload.Arrivals(rt.cfg.Streams[si].Pattern, rt.rng.Split(), 0, rt.cfg.DurationMin)
				if rt.fl != nil {
					rt.fl.noteArrivals(g.Service, arr)
				}
				rt.scheduleStreamArrivals(g, si, arr, warmMs)
			}
			continue
		}
		if users, ok := rt.cfg.ClosedUsers[g.Service]; ok {
			rt.startClosedLoop(g, users, endMs, warmMs)
			continue
		}
		arr := workload.Arrivals(rt.cfg.Patterns[g.Service], rt.rng.Split(), 0, rt.cfg.DurationMin)
		if rt.fl != nil {
			rt.fl.noteArrivals(g.Service, arr)
		}
		rt.scheduleArrivals(g, arr, warmMs)
	}

	// Schedule injected container failures and recoveries.
	for _, f := range rt.cfg.Failures {
		var hit []*containerState
		if f.Microservice == "" {
			// Host scope: every container currently on the host. Containers()
			// is ID-ordered, so the schedule is deterministic.
			for _, c := range rt.cfg.Cluster.Containers() {
				if c.Host.ID == f.Host {
					if cs, ok := rt.states[c.ID]; ok {
						hit = append(hit, cs)
					}
				}
			}
		} else {
			states := rt.byMS[f.Microservice]
			if f.Index < 0 || f.Index >= len(states) {
				continue
			}
			hit = append(hit, states[f.Index])
		}
		for _, cs := range hit {
			cs := cs
			rt.eng.At(f.AtMin*60_000, func() { rt.failContainer(cs) })
			if f.RecoverMin > f.AtMin {
				rt.eng.At(f.RecoverMin*60_000, func() {
					cs.down = false
					rt.kick(cs)
				})
			}
		}
	}

	// Minute ticks for profiling aggregation. Pre-warmup minutes are flushed
	// (to reset the accumulators) but not recorded.
	firstMinute := int(math.Ceil(rt.cfg.WarmupMin))
	for m := 0; m < int(rt.cfg.DurationMin); m++ {
		m := m
		rt.eng.At(float64(m+1)*60_000, func() {
			rt.flushMinute(m, m >= firstMinute && !rt.dropMin[m])
			if rt.fl != nil {
				// Re-fit the fluid models for the minute that just opened,
				// after the flush so the closing minute's models stay intact
				// for its synthesized samples.
				rt.fl.refresh(m + 1)
			}
		})
	}

	if rt.fl != nil {
		rt.fl.prepare()
		rt.fl.refresh(0)
	}
}

// advanceTo executes all events up to and including time t (ms).
func (rt *Runtime) advanceTo(t float64) { rt.eng.Run(t) }

// finish folds the accumulators into the Result after the last advanceTo.
func (rt *Runtime) finish() *Result {
	rt.result.SimulatedMin = rt.cfg.DurationMin - rt.cfg.WarmupMin
	for svc, byMS := range rt.svcMSCalls {
		rates := make(map[string]float64, len(byMS))
		for ms, n := range byMS {
			rates[ms] = float64(n) / rt.result.SimulatedMin
		}
		rt.result.ServiceMSCalls[svc] = rates
	}
	rt.result.Engine = RunStats{
		EngineStats:   rt.eng.Stats(),
		JobsAllocated: rt.jobsAllocated,
		JobsRecycled:  rt.jobsRecycled,
	}
	rt.result.Data = rt.data
	rt.result.Partitions = 1
	if rt.fl != nil {
		rt.result.FluidContainerMinutes = rt.fl.fluidCM
		rt.result.ExactContainerMinutes = rt.fl.exactCM
	} else {
		rt.result.ExactContainerMinutes = len(rt.states) * int(rt.cfg.DurationMin)
	}
	return rt.result
}

// scheduleArrivals walks a pre-computed, sorted arrival list lazily: one
// closure per service keeps exactly one pending arrival event in the heap
// and re-arms itself for the next timestamp. workload.Arrivals fully
// consumes its RNG before returning, so laziness cannot perturb random
// streams; execution order is unchanged because events still fire in
// timestamp order.
func (rt *Runtime) scheduleArrivals(g *graph.Graph, arr []float64, warmMs float64) {
	if len(arr) == 0 {
		return
	}
	idx := 0
	var walk func()
	walk = func() {
		t := arr[idx]
		idx++
		if idx < len(arr) {
			rt.eng.At(arr[idx], walk)
		}
		rt.startRequest(g, t >= warmMs)
	}
	rt.eng.At(arr[0], walk)
}

// scheduleStreamArrivals is scheduleArrivals for one cohort stream: the same
// lazy walk, with every request tagged by the stream index.
func (rt *Runtime) scheduleStreamArrivals(g *graph.Graph, si int, arr []float64, warmMs float64) {
	if len(arr) == 0 {
		return
	}
	idx := 0
	var walk func()
	walk = func() {
		t := arr[idx]
		idx++
		if idx < len(arr) {
			rt.eng.At(arr[idx], walk)
		}
		rt.startRequestWith(g, si, t >= warmMs, nil)
	}
	rt.eng.At(arr[0], walk)
}

// startRequest begins one end-to-end request for the given service graph.
func (rt *Runtime) startRequest(g *graph.Graph, measured bool) {
	rt.startRequestWith(g, -1, measured, nil)
}

// startRequestWith additionally invokes then() when the request completes
// (used by the closed-loop client). si identifies the issuing cohort stream
// (-1 on the untiered Patterns path); stream requests propagate their SLO
// tier down the whole call tree and record per-stream outcomes on top of the
// per-service ones.
func (rt *Runtime) startRequestWith(g *graph.Graph, si int, measured bool, then func()) {
	rt.nextTrace++
	traceID := rt.nextTrace
	sampled := rt.cfg.Observer != nil && rt.rng.Float64() < rt.cfg.SampleRate
	t0 := rt.eng.Now()
	if sampled && rt.dropMin[int(t0/60_000)] {
		// Observability gap: the trace is lost before reaching the collector.
		// The sampling draw above already consumed the RNG, so gaps do not
		// perturb the random stream of the rest of the run.
		sampled = false
	}
	svc := g.Service

	tier := workload.TierStandard
	sla, hasSLA := rt.cfg.SLAs[svc]
	if si >= 0 {
		tier = rt.cfg.Streams[si].Tier
		sla, hasSLA = rt.streamSLA(si)
		rt.streamAcc[si].issued++
	}

	// The request deadline (resilience only): derived from the SLA when
	// configured, else the absolute request timeout. 0 = unbounded.
	var deadline float64
	if rt.res != nil {
		if hasSLA && rt.res.TimeoutSLAMultiple > 0 {
			deadline = t0 + rt.res.TimeoutSLAMultiple*sla.Threshold
		} else if rt.res.RequestTimeoutMs > 0 {
			deadline = t0 + rt.res.RequestTimeoutMs
		}
	}

	success := func() {
		// Fires at the client-receive instant of the root call.
		lat := rt.eng.Now() - t0
		slow := hasSLA && lat > sla.Threshold
		if measured {
			res := rt.result.PerService[svc]
			res.Count++
			res.lat.Add(lat)
			if slow {
				res.Violations++
			}
			if si >= 0 {
				sr := rt.result.PerStream[si]
				sr.Count++
				sr.lat.Add(lat)
				if slow {
					sr.Violations++
				}
			}
		}
		if si >= 0 {
			acc := &rt.streamAcc[si]
			acc.completed++
			if slow {
				acc.slow++
			} else {
				acc.good++
			}
		}
		if then != nil {
			then()
		}
	}
	var fail func(CallErr)
	if rt.res != nil {
		fail = func(err CallErr) {
			if measured {
				rt.result.PerService[svc].Errors++
				if si >= 0 {
					sr := rt.result.PerStream[si]
					sr.Errors++
					if err == ErrShed {
						sr.Shed++
					}
				}
			}
			if si >= 0 {
				acc := &rt.streamAcc[si]
				acc.errors++
				if err == ErrShed {
					acc.shed++
				}
			}
			if then != nil {
				then()
			}
		}
	}
	rt.execNode(svc, tier, traceID, sampled, g.Root, "", -1, 0, deadline, success, fail)
}

// startClosedLoop spawns a closed-loop user population for one service: each
// user issues a request, waits for the response, thinks for an exponential
// time, and repeats until the nominal end of the run.
func (rt *Runtime) startClosedLoop(g *graph.Graph, users int, endMs, warmMs float64) {
	think := rt.cfg.ThinkTimeMs
	if think <= 0 {
		think = 1000
	}
	rng := rt.rng.Split()
	var userLoop func()
	userLoop = func() {
		if rt.eng.Now() >= endMs {
			return
		}
		rt.startRequestWith(g, -1, rt.eng.Now() >= warmMs, func() {
			rt.eng.Schedule(think*rng.ExpFloat64(), userLoop)
		})
	}
	for u := 0; u < users; u++ {
		// Staggered starts spread the initial burst over one think time.
		rt.eng.At(rng.Float64()*think, userLoop)
	}
}

// execNode runs one call edge: on the infallible path (resilience disabled)
// a single attempt that always completes; with resilience enabled, an
// attempt loop with deadline propagation, breaker short-circuiting,
// per-attempt timeouts, and budgeted retries with exponential backoff.
// deadline is the absolute propagated deadline in ms (0 = none); tier is the
// issuing request's SLO tier, inherited by every downstream call. onDone
// fires on success; onFail (nil on the disabled path) receives the final
// failure.
func (rt *Runtime) execNode(svc string, tier workload.Tier, traceID int64, sampled bool, n *graph.Node, parentMS string, parentID, stage int, deadline float64, onDone func(), onFail func(CallErr)) {
	if rt.res == nil {
		rt.issueCall(svc, tier, traceID, sampled, n, parentMS, parentID, stage, 0, nil, onDone, nil)
		return
	}
	edge := rt.edges[n]
	var tryAttempt func(attempt int)
	tryAttempt = func(attempt int) {
		now := rt.eng.Now()
		// Deadline propagation: if the request cannot even reach the server
		// before its propagated deadline, fail without executing.
		if deadline > 0 && now+rt.cfg.NetworkDelayMs >= deadline {
			rt.data.DeadlineSkips++
			onFail(ErrDeadline)
			return
		}
		if br := edge.breaker; br != nil && !br.allow(now) {
			rt.data.BreakerShortCircuits++
			onFail(ErrBreakerOpen)
			return
		}
		attemptDeadline := deadline
		if edge.timeoutMs > 0 {
			if d := now + edge.timeoutMs; attemptDeadline == 0 || d < attemptDeadline {
				attemptDeadline = d
			}
		}
		at := &attemptState{}
		settle := func(err CallErr) {
			if at.settled {
				return
			}
			at.settled = true
			if br := edge.breaker; br != nil {
				br.record(rt.eng.Now(), err != ErrNone, &rt.data)
			}
			if err == ErrNone {
				if edge.earn > 0 {
					edge.tokens += edge.earn
					if edge.tokens > edge.burst {
						edge.tokens = edge.burst
					}
				}
				onDone()
				return
			}
			if attempt+1 < edge.maxAttempts && err.retryable() {
				if edge.earn == 0 || edge.tokens >= 1 {
					if edge.earn > 0 {
						edge.tokens--
					}
					backoff := rt.res.RetryBackoffMs * float64(uint(1)<<uint(attempt))
					if rt.res.RetryJitter > 0 {
						backoff *= 1 + rt.res.RetryJitter*rt.rng.Float64()
					}
					rt.data.Retries++
					rt.eng.Schedule(backoff, func() { tryAttempt(attempt + 1) })
					return
				}
				rt.data.RetryBudgetExhausted++
			}
			onFail(err)
		}
		if attemptDeadline > 0 {
			rt.eng.At(attemptDeadline, func() {
				if !at.settled {
					rt.data.Timeouts++
					settle(ErrTimeout)
				}
			})
		}
		rt.data.Attempts++
		rt.issueCall(svc, tier, traceID, sampled, n, parentMS, parentID, stage, attemptDeadline, at,
			func() { settle(ErrNone) }, settle)
	}
	tryAttempt(0)
}

// issueCall performs one attempt of a call: queue at a container of the
// node's microservice, process, then execute downstream stages sequentially
// (parallel within a stage), then signal completion. attemptDeadline bounds
// this attempt (0 = none); at is the client's settle guard (nil on the
// disabled path); onFail (nil on the disabled path) receives server-side and
// downstream failures.
func (rt *Runtime) issueCall(svc string, tier workload.Tier, traceID int64, sampled bool, n *graph.Node, parentMS string, parentID, stage int, attemptDeadline float64, at *attemptState, onDone func(), onFail func(CallErr)) {
	clientSend := rt.eng.Now()
	serverRecv := clientSend + rt.cfg.NetworkDelayMs
	ms := n.Microservice

	if rt.fl != nil && rt.fl.fluid[ms] {
		rt.fl.issueFluidCall(svc, tier, traceID, sampled, n, parentMS, parentID, stage, clientSend, serverRecv, onDone)
		return
	}

	job := rt.getJob(svc, serverRecv)
	job.Tier = tier
	if ranks, ok := rt.cfg.Priorities[ms]; ok {
		job.Priority = ranks[svc]
	}
	job.attempt = at
	job.deadline = attemptDeadline
	job.onFailed = onFail
	job.onServed = rt.serveBody(svc, tier, traceID, sampled, n, parentMS, parentID, stage, attemptDeadline, at, clientSend, serverRecv, onDone, onFail)

	rt.eng.At(serverRecv, func() { rt.enqueue(ms, job) })
}

// serveBody builds the callback that runs when a call's own processing
// completes: record the node latency, execute downstream stages, emit the
// sampled span, and resume the caller across the network. It is shared by
// the discrete path (as Job.onServed) and the fluid fast path (scheduled
// directly at the analytically drawn completion instant).
func (rt *Runtime) serveBody(svc string, tier workload.Tier, traceID int64, sampled bool, n *graph.Node, parentMS string, parentID, stage int, attemptDeadline float64, at *attemptState, clientSend, serverRecv float64, onDone func(), onFail func(CallErr)) func() {
	ms := n.Microservice
	return func() {
		// Own work done: record microservice latency (queue + processing).
		latency := rt.eng.Now() - serverRecv
		rt.recordNodeLatency(svc, ms, latency)

		// Issue downstream stages. settled flips when the call's outcome is
		// decided: on the success path at response send, on the failure path
		// at the first child failure (late siblings are ignored — their work
		// is wasted, which is exactly how retry amplification arises).
		settled := false
		var childFail func(CallErr)
		if onFail != nil {
			childFail = func(err CallErr) {
				if settled {
					return
				}
				settled = true
				rt.eng.Schedule(rt.cfg.NetworkDelayMs, func() { onFail(err) })
			}
		}
		var childDeadline float64
		if attemptDeadline > 0 {
			// The response still needs one network hop after the children
			// complete.
			childDeadline = attemptDeadline - rt.cfg.NetworkDelayMs
		}
		var runStage func(k int)
		runStage = func(k int) {
			if k >= len(n.Stages) {
				serverSend := rt.eng.Now()
				clientRecv := serverSend + rt.cfg.NetworkDelayMs
				if sampled && (at == nil || !at.settled) {
					rt.cfg.Observer.ObserveCall(CallRecord{
						TraceID:            traceID,
						Service:            svc,
						ParentMicroservice: parentMS,
						Microservice:       ms,
						NodeID:             n.ID,
						ParentNodeID:       parentID,
						Stage:              stage,
						ClientSend:         clientSend,
						ServerRecv:         serverRecv,
						ServerSend:         serverSend,
						ClientRecv:         clientRecv,
					})
				}
				settled = true
				// The caller resumes only once the response has crossed the
				// network, at clientRecv.
				rt.eng.At(clientRecv, onDone)
				return
			}
			remaining := len(n.Stages[k])
			for _, child := range n.Stages[k] {
				rt.execNode(svc, tier, traceID, sampled, child, ms, n.ID, k, childDeadline, func() {
					if settled {
						return
					}
					remaining--
					if remaining == 0 {
						runStage(k + 1)
					}
				}, childFail)
			}
		}
		runStage(0)
	}
}

// kick starts queued work on free threads (after a completion or recovery).
// With resilience enabled, jobs whose client attempt already settled (the
// per-attempt timeout fired while they queued) are dropped without executing
// — the server side of deadline propagation.
func (rt *Runtime) kick(cs *containerState) {
	for len(cs.queue) > 0 && cs.busy < cs.c.Spec.Threads {
		idx := cs.policy.Pick(cs.queue, rt.rng)
		next := cs.queue[idx]
		cs.queue = append(cs.queue[:idx], cs.queue[idx+1:]...)
		if rt.res != nil && next.attempt != nil && next.attempt.settled {
			rt.data.DeadlineSkips++
			rt.putJob(next)
			continue
		}
		rt.startJob(cs, next)
	}
}

// failContainer marks a container down and re-routes its queued work. With
// resilience enabled the crash also severs in-flight work: each processing
// request fails at the crash instant with the retryable ErrCrashed instead
// of silently completing, and completion events already in the heap become
// stale via the generation counter.
func (rt *Runtime) failContainer(cs *containerState) {
	cs.down = true
	queued := cs.queue
	cs.queue = nil
	if rt.res != nil {
		cs.gen++
		inflight := cs.inflight
		cs.inflight = nil
		cs.busy = 0
		rt.updateUsage(cs)
		for _, job := range inflight {
			rt.data.CrashFailures++
			rt.failJob(job, ErrCrashed)
		}
	}
	for _, job := range queued {
		rt.enqueue(cs.c.Spec.Microservice, job)
	}
}

// enqueue routes the job to a container of the microservice per the
// configured balancing policy and starts it if a thread is free.
func (rt *Runtime) enqueue(ms string, job *Job) {
	all := rt.byMS[ms]
	states := all
	// Skip downed containers when any replica survives. With none left the
	// behaviour is pinned per fault model: resilience disabled parks the job
	// at the first container until recovery (the historical contract);
	// resilience enabled fails fast with the retryable ErrUnavailable.
	var up []*containerState
	for _, s := range all {
		if !s.down {
			up = append(up, s)
		}
	}
	if len(up) > 0 {
		states = up
	} else if rt.res != nil {
		rt.data.Unavailable++
		rt.failJob(job, ErrUnavailable)
		return
	}
	var cs *containerState
	switch {
	case len(states) == 1:
		cs = states[0]
	case rt.cfg.Routing == RouteP2C:
		a := states[rt.rng.Intn(len(states))]
		b := states[rt.rng.Intn(len(states))]
		if a.inSystem() <= b.inSystem() {
			cs = a
		} else {
			cs = b
		}
	default: // round-robin (modulo the currently routable set)
		i := rt.rrNext[ms] % len(states)
		rt.rrNext[ms] = i + 1
		cs = states[i]
	}
	if rt.res != nil {
		if job.attempt != nil && job.attempt.settled {
			// The client gave up while the job was re-routed after a crash.
			rt.data.DeadlineSkips++
			rt.putJob(job)
			return
		}
		if rt.shouldShed(cs, job) {
			rt.data.Shed++
			if job.Tier.Valid() {
				rt.data.ShedByTier[job.Tier]++
			}
			rt.failJob(job, ErrShed)
			return
		}
	}
	cs.minuteCalls++
	if rt.eng.Now() >= rt.warmMs {
		if m, ok := rt.svcMSCalls[job.Service]; ok {
			m[ms]++
		}
	}
	if !cs.down && cs.busy < cs.c.Spec.Threads {
		rt.startJob(cs, job)
		return
	}
	cs.queue = append(cs.queue, job)
}

// startJob begins processing a job on a free thread of cs.
func (rt *Runtime) startJob(cs *containerState, job *Job) {
	cs.busy++
	rt.updateUsage(cs)

	prof := rt.cfg.Profiles[cs.c.Spec.Microservice]
	base := prof.BaseMs
	if prof.CV > 0 {
		base = stats.LogNormalFromMeanCV(prof.BaseMs, prof.CV).Sample(rt.rng)
	}
	inflation := rt.cfg.Interference.HostInflation(cs.c.Host)
	s := base * inflation

	gen := cs.gen
	if rt.res != nil {
		cs.inflight = append(cs.inflight, job)
	}
	rt.eng.Schedule(s, func() {
		if rt.res != nil {
			if cs.gen != gen {
				// The container crashed with this job in flight; the crash
				// already failed and recycled it. The completion is stale.
				return
			}
			rt.dropInflight(cs, job)
		}
		cs.busy--
		rt.updateUsage(cs)
		// Detach the callback and recycle the record before running it: the
		// callback may start downstream nodes that reuse the record.
		served := job.onServed
		rt.putJob(job)
		served()
		if !cs.down {
			rt.kick(cs)
		}
	})
}

// dropInflight removes a completing job from the container's in-flight list
// (resilience only; the list is bounded by the thread count).
func (rt *Runtime) dropInflight(cs *containerState, job *Job) {
	for i, j := range cs.inflight {
		if j == job {
			cs.inflight = append(cs.inflight[:i], cs.inflight[i+1:]...)
			return
		}
	}
}

// updateUsage reflects the container's instantaneous thread occupancy into
// cluster CPU-usage accounting, which in turn feeds host utilization and the
// interference inflation of later jobs (the dynamic feedback loop).
func (rt *Runtime) updateUsage(cs *containerState) {
	frac := float64(cs.busy) / float64(cs.c.Spec.Threads)
	cs.c.SetCPUUsage(frac * cs.c.Spec.CPU)
}

// recordNodeLatency adds one microservice latency observation for the
// current minute.
func (rt *Runtime) recordNodeLatency(svc, ms string, latency float64) {
	if rt.fl != nil && rt.fl.fluid[ms] {
		// Fluid microservices synthesize their minute samples from the
		// analytic model; the few discretely timed observations (sampled
		// traces) would be a biased subset.
		return
	}
	rv, ok := rt.latByMS[ms]
	if !ok {
		rv = stats.NewReservoir(rt.cfg.LatencySampleCap, rt.rng.Split())
		rt.latByMS[ms] = rv
	}
	rv.Add(latency)
	_ = svc
}

// flushMinute emits MinuteSamples for minute m (when record is true) and
// resets the per-minute accumulators either way.
func (rt *Runtime) flushMinute(m int, record bool) {
	mss := make([]string, 0, len(rt.byMS))
	for ms := range rt.byMS {
		mss = append(mss, ms)
	}
	sort.Strings(mss)
	for _, ms := range mss {
		states := rt.byMS[ms]
		calls := 0
		var cpu, mem float64
		for _, cs := range states {
			calls += cs.minuteCalls
			cs.minuteCalls = 0
			cpu += cs.c.Host.CPUUtil()
			mem += cs.c.Host.MemUtil()
		}
		if rt.fl != nil {
			calls += rt.fl.minuteCalls[ms]
			rt.fl.minuteCalls[ms] = 0
		}
		n := float64(len(states))
		sample := MinuteSample{
			Minute:            m,
			Microservice:      ms,
			PerContainerCalls: float64(calls) / n,
			CPUUtil:           cpu / n,
			MemUtil:           mem / n,
			Calls:             calls,
			Containers:        len(states),
		}
		if rv, ok := rt.latByMS[ms]; ok && rv.Seen() > 0 {
			sample.TailMs = rv.Quantile(0.95)
			sample.MeanMs = stats.Mean(rv.Values())
			delete(rt.latByMS, ms)
		}
		if rt.fl != nil && rt.fl.fluid[ms] && calls > 0 {
			// Fluid minutes synthesize the latency columns from the analytic
			// model that served the calls.
			md := rt.fl.model[ms]
			sample.TailMs = md.tailMs
			sample.MeanMs = md.meanMs
		}
		if record {
			rt.result.Samples = append(rt.result.Samples, sample)
		}
	}
	for si := range rt.streamAcc {
		acc := rt.streamAcc[si]
		rt.streamAcc[si] = streamMinuteAcc{}
		if record {
			rt.result.StreamMinutes = append(rt.result.StreamMinutes, StreamMinute{
				Minute:    m,
				Stream:    si,
				Issued:    acc.issued,
				Completed: acc.completed,
				Good:      acc.good,
				Slow:      acc.slow,
				Errors:    acc.errors,
				Shed:      acc.shed,
			})
		}
	}
}
